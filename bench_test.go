// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8), plus protocol micro-benchmarks. Each figure benchmark runs the
// corresponding experiment from internal/experiments at a compact scale and
// reports the headline metrics via b.ReportMetric; run cmd/zeus-bench -full
// for the larger populations.
package zeus_test

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"zeus"
	"zeus/internal/experiments"
	"zeus/internal/wire"
)

// benchScale keeps figure benchmarks fast enough for -bench=. sweeps.
var benchScale = experiments.Scale{
	AccountsPerNode:    1000,
	SubscribersPerNode: 1000,
	VotersPerNode:      1000,
	UsersPerNode:       500,
	Sessions:           300,
	Workers:            4,
	OpsPerWorker:       150,
	Duration:           400 * time.Millisecond,
	Interval:           100 * time.Millisecond,
	Packets:            1000,
}

// --- Micro-benchmarks: the two Zeus protocols and the transaction layer ---

// BenchmarkLocalWriteTx measures a fully local write transaction (owner
// executes, pipelined replication to 2 followers) — Zeus' common case.
func BenchmarkLocalWriteTx(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 4})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 128))
	n := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.BeginOn(0)
		v, err := tx.Get(1)
		if err != nil {
			b.Fatal(err)
		}
		binary.LittleEndian.PutUint64(v, uint64(i))
		if err := tx.Set(1, v); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n.WaitReplication(5 * time.Second)
}

// BenchmarkLocalWriteTxObs is BenchmarkLocalWriteTx with the observability
// registry enabled (metrics recording on every commit path, tracing off):
// the delta against BenchmarkLocalWriteTx is the full metrics overhead,
// which the PR 9 acceptance bounds at 5%.
func BenchmarkLocalWriteTxObs(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 4, Observability: true})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 128))
	n := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.BeginOn(0)
		v, err := tx.Get(1)
		if err != nil {
			b.Fatal(err)
		}
		binary.LittleEndian.PutUint64(v, uint64(i))
		if err := tx.Set(1, v); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n.WaitReplication(5 * time.Second)
	if v, _ := n.Obs().CounterValue("cmt_committed_total"); v == 0 {
		b.Fatal("observability enabled but cmt_committed_total is zero")
	}
}

// BenchmarkLocalWriteTxParallel measures fully local write transactions on
// distinct objects driven through all worker pipelines at once — the §7
// multi-core path. Each benchmark goroutine owns one object and one worker
// id (round-robin when goroutines exceed workers), so contention is exactly
// what the engine imposes, not the workload: with the per-pipe commit locks,
// striped ownership maps and sharded dispatch, sub-benchmarks should scale
// with min(workers, GOMAXPROCS); on a single-core host all rows converge.
func BenchmarkLocalWriteTxParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// DispatchShards stays on auto: min(workers, GOMAXPROCS)
			// shards, so multi-core hosts get the parallel dispatch path
			// and single-core hosts skip the pointless queue hop.
			c := zeus.New(zeus.Options{Nodes: 3, Workers: workers})
			defer c.Close()
			// Seed an object per potential goroutine: RunParallel spawns
			// GOMAXPROCS × parallelism of them.
			procs := runtime.GOMAXPROCS(0)
			par := (workers + procs - 1) / procs
			if par < 1 {
				par = 1
			}
			maxG := procs * par
			for g := 0; g < maxG; g++ {
				c.Seed(uint64(1+g), 0, make([]byte, 128))
			}
			n := c.Node(0)
			var next atomic.Uint32
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := int(next.Add(1)) - 1
				w := g % workers
				obj := uint64(1 + g)
				i := 0
				for pb.Next() {
					tx := n.BeginOn(w)
					v, err := tx.Get(obj)
					if err != nil {
						b.Fatal(err)
					}
					binary.LittleEndian.PutUint64(v, uint64(i))
					i++
					if err := tx.Set(obj, v); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			n.WaitReplication(10 * time.Second)
		})
	}
}

// BenchmarkReadOnlyTx measures a local strictly serializable read-only
// transaction on a reader replica (§5.3: no network traffic).
func BenchmarkReadOnlyTx(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 4})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 128))
	n := c.Node(1) // a reader
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.BeginRO()
		if _, err := tx.Get(1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotReadTx measures an MVCC snapshot read-only transaction on
// a reader replica (Options.SnapshotReads): one Get served from the local
// version ring at a fresh timestamp. Unlike BenchmarkReadOnlyTx this pays
// the safe-time wait — the quorum watermark exchange must cover the
// transaction's timestamp before the ring read is allowed — so per-op
// latency is interval-bound; the win is scale-out (see BenchmarkReadScale),
// not single-stream latency.
func BenchmarkSnapshotReadTx(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 4, SnapshotReads: true})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 128))
	n := c.Node(1) // a reader
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.BeginRO()
		if _, err := tx.Get(1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOwnershipTransfer measures the reliable ownership protocol: each
// iteration bounces one object between two nodes (§4: 1.5 RTT fast path).
func BenchmarkOwnershipTransfer(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 4, Workers: 2})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := c.Node(i % 2) // alternate owners 0 ↔ 1
		if err := dst.AcquireOwnership(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCommit measures back-to-back commits on one pipeline
// without waiting for replication (§5.2).
func BenchmarkPipelinedCommit(b *testing.B) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 1})
	defer c.Close()
	c.Seed(1, 0, make([]byte, 400))
	n := c.Node(0)
	buf := make([]byte, 400)
	b.SetBytes(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.BeginOn(0)
		if err := tx.Set(1, buf); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n.WaitReplication(10 * time.Second)
}

// BenchmarkWireCommitInv measures the codec on the hot replication path.
func BenchmarkWireCommitInv(b *testing.B) {
	m := &wire.CommitInv{
		Tx:        wire.TxID{Pipe: wire.PipeID{Node: 1, Worker: 2}, Local: 77},
		Epoch:     3,
		Followers: wire.BitmapOf(0, 2),
		Updates:   []wire.Update{{Obj: 42, Version: 9, Data: make([]byte, 400)}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.Marshal(m)
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table and figure benchmarks (one per paper artefact) ---

// BenchmarkTable2Summary regenerates Table 2.
func BenchmarkTable2Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows.Rows) != 4 {
			b.Fatal("table 2 incomplete")
		}
	}
}

// BenchmarkLocalityAnalysis regenerates the §8 locality numbers (Boston,
// Venmo, TPC-C).
func BenchmarkLocalityAnalysis(b *testing.B) {
	var last experiments.LocalityResult
	for i := 0; i < b.N; i++ {
		last = experiments.Locality()
	}
	b.ReportMetric(100*last.BostonRemoteHandovers6, "boston-remote-%")
	b.ReportMetric(100*last.VenmoRemote6, "venmo-remote-%")
	b.ReportMetric(100*last.TPCCCalibrated, "tpcc-remote-%")
}

// BenchmarkFig7Handovers regenerates Figure 7 (ideal vs Zeus).
func BenchmarkFig7Handovers(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(benchScale)
	}
	for _, r := range rows {
		if r.Nodes == 6 && r.HandoverPct == 5 {
			b.ReportMetric(r.ZeusTps, "zeus-tps")
			b.ReportMetric(r.IdealTps, "ideal-tps")
			b.ReportMetric(r.GapPct, "gap-%")
		}
	}
}

// BenchmarkFig8Smallbank regenerates Figure 8 (Smallbank remote sweep).
func BenchmarkFig8Smallbank(b *testing.B) {
	var rows []experiments.SweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(benchScale)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Zeus3PerNode, "zeus3@0%-tps/node")
		b.ReportMetric(rows[0].BaselinePerNode, "occ2pc@0%-tps/node")
	}
}

// BenchmarkFig9TATP regenerates Figure 9 (TATP remote sweep).
func BenchmarkFig9TATP(b *testing.B) {
	var rows []experiments.SweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(benchScale)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Zeus3PerNode, "zeus3@0%-tps/node")
		b.ReportMetric(rows[0].BaselinePerNode, "occ2pc@0%-tps/node")
	}
}

// BenchmarkFig10VoterMigration regenerates Figure 10 (bulk migration).
func BenchmarkFig10VoterMigration(b *testing.B) {
	var r experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10(benchScale)
	}
	b.ReportMetric(r.MoveRate, "moves/s")
	b.ReportMetric(float64(r.TotalVotes), "votes")
}

// BenchmarkFig11VoterConcurrent regenerates Figure 11 (migration under load).
func BenchmarkFig11VoterConcurrent(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(benchScale)
	}
	b.ReportMetric(r.HotMoveRate, "hot-moves/s")
}

// BenchmarkFig12OwnershipLatency regenerates Figure 12 (latency CDF).
func BenchmarkFig12OwnershipLatency(b *testing.B) {
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(benchScale)
	}
	b.ReportMetric(float64(r.Mean.Microseconds()), "mean-µs")
	b.ReportMetric(float64(r.P999.Microseconds()), "p99.9-µs")
}

// BenchmarkFig13Gateway regenerates Figure 13 (gateway configurations).
func BenchmarkFig13Gateway(b *testing.B) {
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13(benchScale)
	}
	b.ReportMetric(r.LocalTps, "local-tps")
	b.ReportMetric(r.BlockingTps, "blocking-tps")
	b.ReportMetric(r.Zeus1ActiveTps, "zeus1-tps")
	b.ReportMetric(r.Zeus2ActiveTps, "zeus2-tps")
}

// BenchmarkFig14SCTP regenerates Figure 14 (SCTP goodput).
func BenchmarkFig14SCTP(b *testing.B) {
	var r experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14(benchScale)
	}
	for _, row := range r.Rows {
		if row.PacketBytes == 1440 {
			b.ReportMetric(row.NoReplMbps, "norepl-Mbps@1440")
			b.ReportMetric(row.ZeusMbps, "zeus-Mbps@1440")
		}
	}
}

// BenchmarkFig15HTTPLB regenerates Figure 15 (scale-out/in).
func BenchmarkFig15HTTPLB(b *testing.B) {
	var r experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig15(benchScale)
	}
	b.ReportMetric(r.OneProxyTps, "1proxy-tps")
	b.ReportMetric(r.TwoProxyTps, "2proxy-tps")
}

// BenchmarkTransportBatching regenerates the transport ablation: frame
// batching + delayed acks against per-message frames on the same stream.
func BenchmarkTransportBatching(b *testing.B) {
	var r experiments.TransportResult
	for i := 0; i < b.N; i++ {
		r = experiments.Transport(benchScale)
	}
	b.ReportMetric(float64(r.Msgs)/float64(r.BatchedFrames), "msgs/frame")
	b.ReportMetric(float64(r.BatchedAcks)/float64(r.BatchedFrames), "acks/frame")
	b.ReportMetric(float64(r.NoDelayFrames)/float64(r.BatchedFrames), "frame-reduction-x")
}

// BenchmarkAblationScaling regenerates the worker-pipeline scaling ablation.
func BenchmarkAblationScaling(b *testing.B) {
	var r experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Scaling(benchScale)
	}
	for _, row := range r.Rows {
		if row.Workers == 8 {
			b.ReportMetric(row.Speedup, "speedup-8w")
			b.ReportMetric(row.Tps, "tps-8w")
		}
	}
}

// BenchmarkReadScale regenerates the snapshot-read scaling experiment:
// RO throughput vs reader replicas with the owner serving zero reads.
func BenchmarkReadScale(b *testing.B) {
	var r experiments.ReadScaleResult
	for i := 0; i < b.N; i++ {
		r = experiments.ReadScale(benchScale)
	}
	for _, row := range r.Rows {
		if row.WritePct == 5 && row.Replicas == 4 {
			b.ReportMetric(row.Tps, "reads/s@95-5x4r")
			b.ReportMetric(row.Speedup, "speedup-4r")
		}
	}
}

// BenchmarkAblationPipelining regenerates the design-choice ablations.
func BenchmarkAblationPipelining(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.Ablations(benchScale)
	}
	b.ReportMetric(r.PipelinedTps, "pipelined-tps")
	b.ReportMetric(r.BlockingTps, "blocking-tps")
}
