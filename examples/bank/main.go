// Bank: Smallbank-style peer-to-peer payments (§8.2). Payments inside a
// friend group stay on one node (the Venmo locality); the example verifies
// money conservation under concurrent transfers from all nodes — strict
// serializability made visible.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"zeus"
)

const accounts = 12
const initialBalance = 1000

func main() {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()

	// Four accounts per node: a friend group per region.
	for a := 0; a < accounts; a++ {
		c.Seed(uint64(a), a%3, money(initialBalance))
	}

	// Concurrent transfers: each node moves money inside its own group
	// (local transactions) and occasionally across groups (ownership
	// migration).
	var wg sync.WaitGroup
	for node := 0; node < 3; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			n := c.Node(node)
			for i := 0; i < 50; i++ {
				from := uint64(node + 3*(i%4))     // own group
				to := uint64((node+i)%3 + 3*(i%4)) // sometimes another group
				if from == to {
					continue
				}
				if err := transfer(n, node, from, to, 5); err != nil {
					log.Fatalf("node %d transfer %d→%d: %v", node, from, to, err)
				}
			}
		}(node)
	}
	wg.Wait()

	// Money conservation: the sum of all balances is unchanged. The
	// transaction closure may be retried on conflict, so it must stay
	// idempotent: record the balance inside, accumulate only after the
	// transaction committed.
	total := uint64(0)
	n0 := c.Node(0)
	for a := 0; a < accounts; a++ {
		var balance uint64
		err := n0.Update(0, func(tx *zeus.Tx) error {
			v, err := tx.Get(uint64(a))
			if err != nil {
				return err
			}
			balance = binary.LittleEndian.Uint64(v)
			return tx.Set(uint64(a), v)
		})
		if err != nil {
			log.Fatalf("audit account %d: %v", a, err)
		}
		total += balance
	}
	fmt.Printf("total money: %d (expected %d) — conservation %v\n",
		total, accounts*initialBalance, total == accounts*initialBalance)
	for i := 0; i < 3; i++ {
		fmt.Printf("node %d: %+v\n", i, c.Node(i).Stats())
	}
}

func transfer(n *zeus.Node, worker int, from, to uint64, amount uint64) error {
	return n.Update(worker, func(tx *zeus.Tx) error {
		fv, err := tx.Get(from)
		if err != nil {
			return err
		}
		tv, err := tx.Get(to)
		if err != nil {
			return err
		}
		fb := binary.LittleEndian.Uint64(fv)
		if fb < amount {
			return nil // insufficient funds: commit unchanged
		}
		if err := tx.Set(from, money(fb-amount)); err != nil {
			return err
		}
		return tx.Set(to, money(binary.LittleEndian.Uint64(tv)+amount))
	})
}

func money(v uint64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
