// Voter: live re-sharding (§8.4). Votes for a contestant execute on the
// node owning its objects; when the contestant gets too popular, the example
// migrates it — with its voters — to a fresh node while voting continues.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"zeus"
)

const (
	contestantObj = 1
	voterBase     = 1000
	voters        = 400
)

func main() {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()

	// The contestant and all its voters start on node 0.
	c.Seed(contestantObj, 0, u64(0))
	for v := 0; v < voters; v++ {
		c.Seed(voterBase+uint64(v), 0, u64(0))
	}

	// Voting load on node 0.
	var votes atomic.Uint64
	var where atomic.Int32 // which node currently serves this contestant
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			node := c.Node(int(where.Load()))
			v := voterBase + uint64(i%voters)
			err := node.Update(0, func(tx *zeus.Tx) error {
				hv, err := tx.Get(v)
				if err != nil {
					return err
				}
				cv, err := tx.Get(contestantObj)
				if err != nil {
					return err
				}
				if err := tx.Set(v, u64(val(hv)+1)); err != nil {
					return err
				}
				return tx.Set(contestantObj, u64(val(cv)+1))
			})
			if err == nil {
				votes.Add(1)
			}
			i++
		}
	}()

	time.Sleep(150 * time.Millisecond)
	before := votes.Load()
	fmt.Printf("votes before migration: %d (served by node 0)\n", before)

	// The contestant became too hot for node 0: migrate it and its voters
	// to node 2 while the voting continues.
	start := time.Now()
	n2 := c.Node(2)
	if err := n2.AcquireOwnership(contestantObj); err != nil {
		log.Fatalf("move contestant: %v", err)
	}
	where.Store(2) // the load balancer reroutes votes to node 2
	moved := 0
	for v := 0; v < voters; v++ {
		if err := n2.AcquireOwnership(voterBase + uint64(v)); err == nil {
			moved++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("migrated contestant + %d voters to node 2 in %v (%.0f obj/s)\n",
		moved, elapsed, float64(moved+1)/elapsed.Seconds())

	time.Sleep(150 * time.Millisecond)
	close(stop)
	<-done
	fmt.Printf("votes after migration: %d (now served by node 2)\n", votes.Load()-before)

	// Tally is exact despite the live migration: read it from node 2.
	var total uint64
	if err := n2.Update(0, func(tx *zeus.Tx) error {
		v, err := tx.Get(contestantObj)
		if err != nil {
			return err
		}
		total = val(v)
		return tx.Set(contestantObj, v)
	}); err != nil {
		log.Fatalf("tally: %v", err)
	}
	fmt.Printf("final tally: %d, committed votes: %d, match: %v\n",
		total, votes.Load(), total == votes.Load())
}

func u64(v uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func val(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
