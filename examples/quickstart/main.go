// Quickstart: a three-node Zeus deployment, one object, a write transaction
// that migrates ownership, and strictly serializable local reads from a
// replica.
package main

import (
	"fmt"
	"log"
	"time"

	"zeus"
)

func main() {
	// Three nodes, 3-way replication (the paper's evaluation setup).
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()

	// Node 0 creates an object; replicas land on nodes 1 and 2.
	n0 := c.Node(0)
	const account = 1001
	if err := n0.CreateObject(account, []byte("balance=100")); err != nil {
		log.Fatalf("create: %v", err)
	}

	// A write transaction on node 0: fully local (node 0 is the owner).
	if err := n0.Update(0, func(tx *zeus.Tx) error {
		v, err := tx.Get(account)
		if err != nil {
			return err
		}
		fmt.Printf("node 0 read: %s\n", v)
		return tx.Set(account, []byte("balance=150"))
	}); err != nil {
		log.Fatalf("update: %v", err)
	}

	// A write on node 2 migrates ownership there (1.5 RTT, once); every
	// subsequent transaction on node 2 is local.
	n2 := c.Node(2)
	if err := n2.Update(0, func(tx *zeus.Tx) error {
		return tx.Set(account, []byte("balance=175"))
	}); err != nil {
		log.Fatalf("remote update: %v", err)
	}
	fmt.Printf("node 2 stats after migration: %+v\n", n2.Stats())

	// Replicas serve strictly serializable read-only transactions locally,
	// with zero network traffic.
	n2.WaitReplication(2 * time.Second)
	for i := 0; i < 3; i++ {
		n := c.Node(i)
		_ = n.View(0, func(tx *zeus.Tx) error {
			v, err := tx.Get(account)
			if err != nil {
				return err
			}
			fmt.Printf("node %d local read: %s\n", i, v)
			return nil
		})
	}
}
