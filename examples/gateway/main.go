// Gateway: the legacy-application port of §8.5. The cellular packet-gateway
// control plane runs unmodified over three datastores — local memory, a
// blocking remote store, and Zeus — showing that Zeus adds replication and
// distribution without re-architecting the application (and without the
// blocking store's collapse).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"zeus/internal/apps/epcgw"
	"zeus/internal/baseline"
	"zeus/internal/cluster"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

const users = 500
const ops = 3000

func main() {
	fmt.Println("cellular gateway control plane: service-request/release mix")
	fmt.Printf("  %-28s %s\n", "datastore", "throughput")

	// 1. Local memory (no replication, no fault tolerance).
	ldb := epcgw.NewLocalDB()
	cfg := epcgw.DefaultConfig(0, 1)
	cfg.Users = users
	g := epcgw.New(cfg, ldb)
	g.SeedObjects(func(obj uint64, home int, data []byte) { ldb.Seed(obj, data) })
	fmt.Printf("  %-28s %s\n", "local memory", run(g))

	// 2. Blocking store (Redis-like): every access a blocking RPC.
	hub := transport.NewHub()
	bcfg := baseline.Config{Nodes: 1, Degree: 1}
	server := newBaselineNode(hub, 0, bcfg)
	client := newBaselineNode(hub, 1, bcfg)
	_ = server
	bg := epcgw.New(cfg, client)
	bg.SeedObjects(func(obj uint64, home int, data []byte) {
		server.Seed(wire.ObjectID(obj), 1, data)
	})
	fmt.Printf("  %-28s %s\n", "blocking store (remote RPC)", run(bg))

	// 3. Zeus: one active node plus one passive replica — replicated and
	// fault-tolerant, yet as local as the in-memory store.
	opts := cluster.DefaultOptions(2)
	opts.Degree = 2
	c := cluster.New(opts)
	defer c.Close()
	zcfg := epcgw.DefaultConfig(0, 2)
	zcfg.Users = users
	zg := epcgw.New(zcfg, c.Node(0).DB())
	zg.SeedObjects(func(obj uint64, home int, data []byte) {
		c.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
	})
	fmt.Printf("  %-28s %s\n", "Zeus (1 active + 1 passive)", run(zg))
}

func run(g *epcgw.Gateway) string {
	start := time.Now()
	done, err := g.Drive(0, ops, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatalf("drive: %v", err)
	}
	return fmt.Sprintf("%.0f ops/s (%d ops)", float64(done)/time.Since(start).Seconds(), done)
}

func newBaselineNode(hub *transport.Hub, id wire.NodeID, cfg baseline.Config) *baseline.Node {
	tr := hub.Node(id)
	r := transport.NewRouter()
	n := baseline.NewNode(id, tr, r, cfg)
	tr.SetHandler(r.Dispatch)
	return n
}
