// Handover: the paper's motivating cellular scenario (§2.2). A phone and its
// current base station are colocated by the load balancer; as the phone
// commutes, handover transactions touch the old and new station, migrating
// ownership so that subsequent service requests are local again.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"zeus"
)

const (
	phoneCtx = 100 // the phone's context object
	stationA = 200 // base station on node 0's region
	stationB = 201 // base station on node 1's region
	stationC = 202 // base station on node 2's region
)

func main() {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()

	// Initial sharding: the phone lives with station A on node 0; the
	// other stations belong to their own regions.
	c.Seed(phoneCtx, 0, ctx(0))
	c.Seed(stationA, 0, ctx(0))
	c.Seed(stationB, 1, ctx(0))
	c.Seed(stationC, 2, ctx(0))

	// Stationary phase: service requests and releases repeatedly touch the
	// same (phone, station) pair — all local after the initial placement.
	n0 := c.Node(0)
	for i := 0; i < 5; i++ {
		if err := serviceRequest(n0, stationA); err != nil {
			log.Fatalf("service request: %v", err)
		}
	}
	fmt.Printf("after stationary phase: node0 ownership moves = %d\n",
		n0.Stats().OwnershipMoves)

	// The commute: handovers A→B→C. Each handover is two transactions
	// (leave the old station, join the new one); the stations' contexts
	// migrate to the executing node exactly once.
	//
	// Mid-commute, the leader replica of the membership view service
	// crashes. The data plane never notices: ownership migrations and
	// commits need no membership decisions in the failure-free path, and
	// the surviving view replicas elect a new leader by ballot takeover,
	// so a later node failure would still be handled.
	for i, hop := range []struct{ from, to uint64 }{{stationA, stationB}, {stationB, stationC}} {
		if i == 1 {
			if err := c.KillViewReplica(0); err != nil {
				log.Fatalf("kill view replica: %v", err)
			}
			fmt.Println("membership view-service leader crashed; commute continues")
		}
		if err := handover(n0, hop.from, hop.to); err != nil {
			log.Fatalf("handover: %v", err)
		}
		fmt.Printf("handover %d→%d done\n", hop.from, hop.to)
	}

	// Stationary again at station C: local once more, no further moves.
	before := n0.Stats().OwnershipMoves
	for i := 0; i < 5; i++ {
		if err := serviceRequest(n0, stationC); err != nil {
			log.Fatalf("service request at C: %v", err)
		}
	}
	fmt.Printf("post-commute service requests caused %d extra moves (expect 0)\n",
		n0.Stats().OwnershipMoves-before)
}

// serviceRequest is one control-plane write transaction over the phone and
// its current station (§8.1).
func serviceRequest(n *zeus.Node, station uint64) error {
	return n.Update(0, func(tx *zeus.Tx) error {
		p, err := tx.Get(phoneCtx)
		if err != nil {
			return err
		}
		s, err := tx.Get(station)
		if err != nil {
			return err
		}
		if err := tx.Set(phoneCtx, bump(p)); err != nil {
			return err
		}
		return tx.Set(station, bump(s))
	})
}

// handover is the two-transaction 3GPP flow.
func handover(n *zeus.Node, oldStation, newStation uint64) error {
	if err := serviceRequest(n, oldStation); err != nil {
		return err
	}
	return serviceRequest(n, newStation)
}

func ctx(v uint64) []byte {
	b := make([]byte, 400) // the paper's ~400B contexts
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func bump(b []byte) []byte {
	v := binary.LittleEndian.Uint64(b)
	out := make([]byte, len(b))
	copy(out, b)
	binary.LittleEndian.PutUint64(out, v+1)
	return out
}
