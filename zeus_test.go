package zeus_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"zeus"
)

func TestPublicAPIQuickstart(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()
	n := c.Node(0)
	if err := n.CreateObject(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := n.Update(0, func(tx *zeus.Tx) error {
		v, err := tx.Get(1)
		if err != nil {
			return err
		}
		return tx.Set(1, append(v, '!'))
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := n.View(0, func(tx *zeus.Tx) error {
		var err error
		got, err = tx.Get(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello!" {
		t.Fatalf("got %q", got)
	}
	st := n.Stats()
	if st.Commits == 0 || st.ReadOnlyCommits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIMigrationAndLocality(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 4})
	defer c.Close()
	c.Seed(10, 0, []byte("migrate-me"))
	n3 := c.Node(3)
	if err := n3.Update(0, func(tx *zeus.Tx) error {
		return tx.Set(10, []byte("moved"))
	}); err != nil {
		t.Fatal(err)
	}
	if n3.Stats().OwnershipMoves == 0 {
		t.Fatal("no ownership move recorded")
	}
	if err := n3.AcquireOwnership(10); err != nil {
		t.Fatal(err) // already owner: fast path
	}
}

func TestPublicAPIFailover(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 4})
	defer c.Close()
	c.Seed(20, 0, []byte("survive"))
	if err := c.Node(0).Update(0, func(tx *zeus.Tx) error {
		return tx.Set(20, []byte("survive-v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).WaitReplication(2 * time.Second) {
		t.Fatal("replication stalled")
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := c.Node(3).Update(0, func(tx *zeus.Tx) error {
		var err error
		got, err = tx.Get(20)
		if err != nil {
			return err
		}
		return tx.Set(20, []byte("survive-v3"))
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "survive-v2" {
		t.Fatalf("read %q after failover", got)
	}
}

func TestPublicAPISerializableCounter(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3, Workers: 4})
	defer c.Close()
	c.Seed(30, 0, counterBytes(0))
	const perNode = 20
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := c.Node(i)
			for k := 0; k < perNode; k++ {
				if err := n.Update(i, func(tx *zeus.Tx) error {
					v, err := tx.Get(30)
					if err != nil {
						return err
					}
					return tx.Set(30, counterBytes(counterVal(v)+1))
				}); err != nil {
					t.Errorf("node %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var final uint64
	if err := c.Node(0).Update(0, func(tx *zeus.Tx) error {
		v, err := tx.Get(30)
		if err != nil {
			return err
		}
		final = counterVal(v)
		return tx.Set(30, v)
	}); err != nil {
		t.Fatal(err)
	}
	if final != 3*perNode {
		t.Fatalf("counter = %d, want %d", final, 3*perNode)
	}
}

func TestPublicAPIUnknownObject(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()
	err := c.Node(0).Update(0, func(tx *zeus.Tx) error {
		return tx.Set(999, []byte("x"))
	})
	if err == nil || zeus.IsConflict(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicAPIManualTxAndDurable(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()
	c.Seed(40, 0, []byte("d"))
	tx := c.Node(0).BeginOn(0)
	if err := tx.Set(40, []byte("d2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tx.Durable():
	case <-time.After(2 * time.Second):
		t.Fatal("durable never closed")
	}
	// Abort path.
	tx2 := c.Node(0).Begin()
	if err := tx2.Set(40, []byte("never")); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	var got []byte
	if err := c.Node(0).View(0, func(tx *zeus.Tx) error {
		var err error
		got, err = tx.Get(40)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "d2" {
		t.Fatalf("aborted write leaked: %q", got)
	}
}

func TestPublicAPISimulatedNetwork(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3, SimulatedNetwork: true})
	defer c.Close()
	c.Seed(50, 0, []byte("sim"))
	if err := c.Node(1).Update(0, func(tx *zeus.Tx) error {
		return tx.Set(50, []byte("sim2"))
	}); err != nil {
		t.Fatal(err)
	}
	if c.Messages() == 0 || c.Bytes() == 0 {
		t.Fatal("no traffic accounted on simulated fabric")
	}
}

func TestPublicAPIScaleOutAndIn(t *testing.T) {
	c := zeus.New(zeus.Options{Nodes: 3})
	defer c.Close()
	c.Seed(60, 0, []byte("scale"))
	n := c.AddNode()
	if n.ID() != 3 {
		t.Fatalf("new node id %d", n.ID())
	}
	if err := n.Update(0, func(tx *zeus.Tx) error {
		return tx.Set(60, []byte("from-new-node"))
	}); err != nil {
		t.Fatal(err)
	}
	if !n.WaitReplication(2 * time.Second) {
		t.Fatal("replication stalled")
	}
	if err := c.Leave(3); err != nil {
		t.Fatal(err)
	}
	// Survivors still serve the object.
	if err := c.Node(0).Update(0, func(tx *zeus.Tx) error {
		v, err := tx.Get(60)
		if err != nil {
			return err
		}
		if string(v) != "from-new-node" {
			return fmt.Errorf("lost scale-out write: %q", v)
		}
		return tx.Set(60, []byte("back-on-old"))
	}); err != nil {
		t.Fatal(err)
	}
}

func counterBytes(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func counterVal(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
