#!/usr/bin/env bash
# Multi-process smoke: three zeusd processes form one cluster over loopback
# TCP (each hosting one view-service replica), take a demo workload, then one
# node is SIGKILLed and restarted against its durable directory — it must be
# auto-failed out of the view by the surviving ensemble and rejoin through
# WAL recovery + state sync. Exercises the whole deployment story end to
# end: bootstrap, shared control plane, failure detection, durable restart.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN" "$WORK/data0" "$WORK/data1" "$WORK/data2"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "--- $*"; }
fail() { echo "FAIL: $*"; tail -n 40 "$WORK"/node*.log 2>/dev/null; exit 1; }

log "building zeusd + zeusctl"
go build -o "$BIN/zeusd" ./cmd/zeusd
go build -o "$BIN/zeusctl" ./cmd/zeusctl

VIEW="127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102"
PEERS="0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
status() { "$BIN/zeusctl" -view "$VIEW" -timeout 5s status; }

start_node() { # id view_host extra...
  local id=$1 vh=$2; shift 2
  "$BIN/zeusd" -id "$id" -listen "127.0.0.1:700$id" -view "$VIEW" \
    -view-host "$vh" -peers "$PEERS" -data "$WORK/data$id" \
    -lease 300ms "$@" >"$WORK/node$id.log" 2>&1 &
  PIDS+=($!)
}

log "founding 3-node cluster (each hosting one view replica)"
start_node 0 0
start_node 1 1
start_node 2 2 -demo -obs-addr 127.0.0.1:7202

log "waiting for the ensemble to commit state"
ok=
for _ in $(seq 1 50); do
  if status >"$WORK/status.txt" 2>/dev/null && grep -q 'live:.*\[0 1 2\]' "$WORK/status.txt"; then
    ok=1; break
  fi
  sleep 0.2
done
[ -n "$ok" ] || fail "founders never all live"
cat "$WORK/status.txt"

log "letting the demo workload commit"
ok=
for _ in $(seq 1 50); do
  grep -q "demo: commits=" "$WORK/node2.log" && { ok=1; break; }
  sleep 0.2
done
[ -n "$ok" ] || fail "demo never finished"
grep "demo:" "$WORK/node2.log" | tail -3

log "scraping node 2's observability endpoint"
curl -fsS "http://127.0.0.1:7202/metrics" >"$WORK/metrics.txt" || fail "metrics endpoint unreachable"
committed=$(awk '$1 == "cmt_committed_total" {print $2}' "$WORK/metrics.txt")
[ -n "$committed" ] && [ "$committed" -gt 0 ] \
  || fail "cmt_committed_total missing or zero after the demo workload (got '${committed:-}')"
log "node 2 scraped: cmt_committed_total=$committed"
curl -fsS "http://127.0.0.1:7202/debug/incidents" >"$WORK/incidents.txt" || fail "incidents endpoint unreachable"
grep -q "incidents_total 0" "$WORK/incidents.txt" \
  || fail "healthy demo run reported incidents: $(cat "$WORK/incidents.txt")"
log "fetching per-node watermarks via zeusctl metrics"
"$BIN/zeusctl" -view "$VIEW" -timeout 5s -node 2 metrics | head -2

log "SIGKILL node 1 (its view replica dies with it — quorum of 2 survives)"
kill -9 "${PIDS[1]}"

log "waiting for the ensemble to auto-fail node 1 out of the view"
ok=
for _ in $(seq 1 100); do
  if status >"$WORK/status.txt" 2>/dev/null && grep -q 'live:.*\[0 2\]' "$WORK/status.txt"; then
    ok=1; break
  fi
  sleep 0.2
done
[ -n "$ok" ] || fail "node 1 never auto-failed"
cat "$WORK/status.txt"

log "restarting node 1 from its durable state (-join: rejoin is state sync)"
"$BIN/zeusd" -id 1 -listen 127.0.0.1:7001 -view "$VIEW" -join \
  -data "$WORK/data1" -lease 300ms >"$WORK/node1.restart.log" 2>&1 &
PIDS+=($!)

log "waiting for node 1 to rejoin the committed view"
ok=
for _ in $(seq 1 100); do
  if status >"$WORK/status.txt" 2>/dev/null \
      && grep -q 'live:.*\[0 1 2\]' "$WORK/status.txt" \
      && grep -q 'barrier:  closed' "$WORK/status.txt"; then
    ok=1; break
  fi
  sleep 0.2
done
[ -n "$ok" ] || { cat "$WORK/node1.restart.log"; fail "node 1 never rejoined"; }
cat "$WORK/status.txt"

log "waiting for node 1 to finish WAL recovery + state sync"
ok=
for _ in $(seq 1 100); do
  grep -q "joined" "$WORK/node1.restart.log" && { ok=1; break; }
  sleep 0.2
done
[ -n "$ok" ] || { cat "$WORK/node1.restart.log"; fail "restart never reported state sync done"; }
grep "joined" "$WORK/node1.restart.log"

log "smoke OK: bootstrap, auto-fail, durable rejoin all verified"
