// Package zeus is a Go implementation of Zeus (Katsarakis et al., EuroSys
// '21): an in-memory, replicated, strongly-consistent transactional
// datastore that exploits access locality. Instead of running distributed
// transactions across nodes, Zeus migrates object ownership to the node
// executing a transaction (a reliable 1.5-RTT protocol) and then commits
// locally, replicating updates through pipelined, idempotent invalidations.
// Read-only transactions run locally on any replica with strict
// serializability.
//
// The package is a facade over the full implementation in internal/: the
// ownership protocol (§4 of the paper), the reliable commit protocol (§5),
// the transactional memory API (§7), a lease-based membership service, a
// simulated datacenter fabric with loss/duplication/reordering, and an
// application-level load balancer on a Hermes-replicated KV.
//
// Quick start:
//
//	c := zeus.New(zeus.Options{Nodes: 3})
//	defer c.Close()
//	n := c.Node(0)
//	_ = n.CreateObject(1, []byte("hello"))
//	err := n.Update(0, func(tx *zeus.Tx) error {
//	    v, err := tx.Get(1)
//	    if err != nil { return err }
//	    return tx.Set(1, append(v, '!'))
//	})
package zeus

import (
	"errors"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/core"
	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/obs"
	"zeus/internal/ownership"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// ErrConflict is the retryable transaction-conflict error. Run/Update retry
// it automatically; manual Commit callers should retry with back-off.
var ErrConflict = dbapi.ErrConflict

// ErrUnknownObject reports an access to an object that was never created
// (or was deleted).
var ErrUnknownObject = ownership.ErrUnknownObject

// Options configures a Zeus deployment.
type Options struct {
	// Nodes is the number of servers (default 3).
	Nodes int
	// ReplicationDegree is replicas per object, owner included (default 3,
	// as evaluated in the paper).
	ReplicationDegree int
	// Workers is the number of worker threads per node; each worker owns a
	// reliable-commit pipeline (default 8).
	Workers int
	// DispatchShards is the number of inbound handler goroutines per node
	// for keyed protocol traffic: reliable-commit messages fan out per
	// pipeline, ownership messages per object, each preserving its key's
	// FIFO while independent keys apply in parallel. 0 (the default) picks
	// min(Workers, GOMAXPROCS); any value <= 1 (e.g. -1) keeps the single
	// inline delivery goroutine.
	DispatchShards int
	// DirectoryShards partitions the ownership directory (§6.2) into hash
	// shards, each driven by up to three nodes chosen by rendezvous
	// hashing from the live view; the shard→drivers placement map is
	// replicated through the view service, so arbitration load spreads
	// across the cluster and a crashed driver's shards are re-driven after
	// its lease expires. 0 (the default) scales the shard count with the
	// host like the store's shards; negative keeps the legacy fixed
	// three-node directory (the degenerate 1-shard case).
	DirectoryShards int
	// ViewReplicas is the size of the replicated membership (view service)
	// ensemble backing the deployment (default and maximum 3 — the
	// ensemble lives in a reserved transport-id range; larger values are
	// clamped). The replicas run the Vertical-Paxos-lite protocol over
	// the cluster's fabric; the deployment tolerates the crash of any
	// minority of the actual ensemble.
	ViewReplicas int
	// SimulatedNetwork, when true, runs over the lossy simulated fabric
	// with the reliable messaging layer instead of the perfect in-process
	// hub. Configure faults via Network.
	SimulatedNetwork bool
	// Network configures the simulated fabric (loss, duplication,
	// latency); zero value = netsim defaults.
	Network netsim.Config
	// Transport tunes the reliable messaging layer over the simulated
	// fabric (frame batching, delayed acks, RTO); zero fields keep the
	// defaults derived from Network's latency scale. Ignored unless
	// SimulatedNetwork is set.
	Transport transport.ReliableConfig
	// OnOwnershipLatency observes every successful ownership request's
	// latency (the Figure 12 metric).
	OnOwnershipLatency func(time.Duration)
	// SnapshotReads enables MVCC snapshot reads: read-only transactions
	// read at a hybrid-logical-clock timestamp from per-object version
	// rings on ANY local replica, delaying until the cluster's
	// quorum-advanced safe-time covers the timestamp. Strictly
	// serializable, zero owner traffic — read throughput scales with the
	// replica count.
	SnapshotReads bool
	// SafeTimeInterval is the period of the safe-time watermark exchange
	// (default 50µs). Only meaningful with SnapshotReads.
	SafeTimeInterval time.Duration
	// Observability gives every node an obs.Registry: per-node counters and
	// latency histograms across the commit, ownership, storage and transport
	// layers, sampled per-transaction traces, and the commit-engine debt
	// watchdog. Reach a node's registry via Node.Obs. Off by default — every
	// record site then stays behind its nil check, leaving the hot paths as
	// the seed measured them.
	Observability bool
	// TraceSample samples every Nth write transaction with a per-phase
	// trace (begin → inv → ack → val → applied); the slowest traces per
	// window are kept in the registry's trace table. 0 disables. Requires
	// Observability.
	TraceSample uint64
	// WatchdogAge arms the commit-engine debt watchdog: replication debt
	// older than this threshold raises structured incidents in the
	// registry's incident log. 0 defers to the ZEUS_WATCHDOG_AGE
	// environment variable (unset = off).
	WatchdogAge time.Duration
}

// Cluster is an in-process Zeus deployment.
type Cluster struct {
	c *cluster.Cluster
}

// New starts a deployment.
func New(opts Options) *Cluster {
	co := cluster.DefaultOptions(max(opts.Nodes, 1))
	if opts.ReplicationDegree > 0 {
		co.Degree = opts.ReplicationDegree
	}
	if opts.Workers > 0 {
		co.Workers = opts.Workers
	}
	co.DispatchShards = opts.DispatchShards
	co.DirShards = opts.DirectoryShards
	co.ViewReplicas = opts.ViewReplicas
	if opts.SimulatedNetwork {
		co.Fabric = cluster.FabricSim
		co.Net = opts.Network
		if co.Net.InboxDepth == 0 {
			co.Net = netsim.DefaultConfig()
		}
		co.Reliable = opts.Transport
	}
	co.OnOwnershipLatency = opts.OnOwnershipLatency
	co.SnapshotReads = opts.SnapshotReads
	co.SafeTimeInterval = opts.SafeTimeInterval
	co.Observability = opts.Observability
	co.TraceSample = opts.TraceSample
	co.WatchdogAge = opts.WatchdogAge
	return &Cluster{c: cluster.New(co)}
}

// Close shuts the deployment down.
func (c *Cluster) Close() { c.c.Close() }

// Node returns server i.
func (c *Cluster) Node(i int) *Node { return &Node{n: c.c.Node(i)} }

// Nodes returns the deployment size.
func (c *Cluster) Nodes() int { return c.c.Nodes() }

// Kill crash-stops node i and waits for the membership view change and the
// recovery barrier (pending reliable commits of the dead node are replayed
// by the survivors before ownership requests resume).
func (c *Cluster) Kill(i int) error { return c.c.Kill(i) }

// KillViewReplica crash-stops membership view-service replica i. The
// deployment keeps working as long as a replica quorum survives; killing
// the current leader triggers a ballot takeover by the next replica.
func (c *Cluster) KillViewReplica(i int) error { return c.c.KillViewReplica(i) }

// AddNode joins a fresh node (scale-out) and returns it.
func (c *Cluster) AddNode() *Node { return &Node{n: c.c.AddNode()} }

// Leave removes node i gracefully (scale-in).
func (c *Cluster) Leave(i int) error { return c.c.Leave(i) }

// Seed bulk-installs an object with an explicit owner, bypassing the
// protocols — use for initial data loading only.
func (c *Cluster) Seed(obj uint64, owner int, data []byte) {
	c.c.SeedAt(wire.ObjectID(obj), wire.NodeID(owner), data)
}

// Messages returns the total protocol messages carried so far.
func (c *Cluster) Messages() uint64 { return c.c.Messages() }

// Bytes returns the total payload bytes carried so far.
func (c *Cluster) Bytes() uint64 { return c.c.Bytes() }

// WaitIdle blocks until every node's commit pipelines drained.
func (c *Cluster) WaitIdle(timeout time.Duration) bool { return c.c.WaitIdle(timeout) }

// Node is one Zeus server.
type Node struct {
	n *core.Node
}

// ID returns the node's id.
func (n *Node) ID() int { return int(n.n.ID()) }

// Begin starts a write transaction on an automatically assigned worker.
func (n *Node) Begin() *Tx { return &Tx{tx: n.n.Begin()} }

// BeginOn starts a write transaction on a specific worker thread (worker ids
// map onto reliable-commit pipelines).
func (n *Node) BeginOn(worker int) *Tx { return &Tx{tx: n.n.BeginOn(worker)} }

// BeginRO starts a read-only transaction: local on any replica, strictly
// serializable, no network traffic.
func (n *Node) BeginRO() *Tx { return &Tx{tx: n.n.BeginRO()} }

// CreateObject registers a new object owned by this node with the default
// placement (ReplicationDegree replicas) and replicates the initial value.
func (n *Node) CreateObject(obj uint64, data []byte) error {
	return n.n.CreateObject(wire.ObjectID(obj), data)
}

// DeleteObject unregisters an object deployment-wide.
func (n *Node) DeleteObject(obj uint64) error {
	return n.n.DeleteObject(wire.ObjectID(obj))
}

// Update runs fn in a write transaction on the given worker, retrying
// conflicts with exponential back-off.
func (n *Node) Update(worker int, fn func(*Tx) error) error {
	return dbapi.Run(n.n.DB(), worker, func(t dbapi.Txn) error {
		return fn(&Tx{tx: t.(*core.Tx)})
	})
}

// View runs fn in a read-only transaction on the given worker, retrying
// conflicts.
func (n *Node) View(worker int, fn func(*Tx) error) error {
	return dbapi.RunRO(n.n.DB(), worker, func(t dbapi.Txn) error {
		return fn(&Tx{tx: t.(*core.Tx)})
	})
}

// Stats reports this node's transaction counters.
type Stats struct {
	Commits         uint64
	Aborts          uint64
	ReadOnlyCommits uint64
	ReadOnlyAborts  uint64
	// SnapshotReads counts object reads served from the local version ring
	// by snapshot transactions (Options.SnapshotReads mode).
	SnapshotReads    uint64
	OwnershipMoves   uint64
	PendingPipelines int
}

// Stats returns a snapshot of counters.
func (n *Node) Stats() Stats {
	cs := n.n.Stats()
	os := n.n.OwnershipEngine().Stats()
	return Stats{
		Commits:          cs.Commits,
		Aborts:           cs.Aborts,
		ReadOnlyCommits:  cs.ROCommits,
		ReadOnlyAborts:   cs.ROAborts,
		SnapshotReads:    cs.SnapshotReads,
		OwnershipMoves:   os.Succeeded,
		PendingPipelines: n.n.CommitEngine().PendingSlots(),
	}
}

// AcquireOwnership migrates obj's ownership to this node explicitly (the
// bulk-migration primitive behind the paper's Voter experiments). Write
// transactions acquire ownership implicitly; this is for re-sharding tools.
func (n *Node) AcquireOwnership(obj uint64) error {
	return n.n.OwnershipEngine().AcquireOwnership(wire.ObjectID(obj))
}

// WaitReplication blocks until all pending reliable commits validated.
func (n *Node) WaitReplication(timeout time.Duration) bool {
	return n.n.WaitReplication(timeout)
}

// Obs returns this node's observability registry — counters, histograms,
// sampled traces and watchdog incidents (nil unless the deployment was built
// with Options.Observability). See internal/obs for the registry API.
func (n *Node) Obs() *obs.Registry { return n.n.Obs() }

// Tx is one transaction. Exactly one of Commit or Abort must finish it.
type Tx struct {
	tx *core.Tx
}

// Get returns the value of obj as seen by the transaction.
func (t *Tx) Get(obj uint64) ([]byte, error) { return t.tx.Get(obj) }

// Set buffers a full-object write in the transaction's private copy.
func (t *Tx) Set(obj uint64, val []byte) error { return t.tx.Set(obj, val) }

// Commit finishes the transaction; ErrConflict means retry.
func (t *Tx) Commit() error { return t.tx.Commit() }

// Abort abandons the transaction.
func (t *Tx) Abort() { t.tx.Abort() }

// Durable returns a channel closed once the transaction's updates are
// replicated to all followers (nil for read-only transactions). Applications
// need not wait — the pipeline preserves ordering — but tests may.
func (t *Tx) Durable() <-chan struct{} { return t.tx.Durable() }

// IsConflict reports whether err is the retryable conflict error.
func IsConflict(err error) bool { return errors.Is(err, ErrConflict) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
