module zeus

go 1.22
