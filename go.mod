module zeus

go 1.23
