// Command zeusctl drives a running Zeus cluster's view-service ensemble from
// the outside: inspect the committed view, admit a node, report a failure, or
// retire a member. It speaks the same wire protocol as the data nodes,
// attaching as the well-known client id on an ephemeral port (the replicas
// answer over the inbound connection, so zeusctl needs no listed address).
//
//	zeusctl -view :7100,:7101,:7102 status
//	zeusctl -view :7100,:7101,:7102 join  -node 3 -addr 127.0.0.1:7003
//	zeusctl -view :7100,:7101,:7102 fail  -node 3
//	zeusctl -view :7100,:7101,:7102 leave -node 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"zeus/internal/transport"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

func main() {
	viewFlag := flag.String("view", "", "comma-separated addresses of the view-service replicas (required)")
	node := flag.Int("node", -1, "target data node id (join/fail/leave)")
	addr := flag.String("addr", "", "advertised address of the joining node (join)")
	timeout := flag.Duration("timeout", 15*time.Second, "how long to wait for the command to take effect")
	flag.Usage = usage
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" || *viewFlag == "" {
		usage()
		os.Exit(2)
	}
	viewAddrs := splitAddrs(*viewFlag)
	replicaIDs := viewsvc.ReplicaIDs(len(viewAddrs))
	book := make(map[wire.NodeID]string, len(replicaIDs))
	for i, rid := range replicaIDs {
		book[rid] = viewAddrs[i]
	}

	tr, err := transport.NewTCP(viewsvc.ClientID, "127.0.0.1:0", book)
	if err != nil {
		log.Fatalf("zeusctl: %v", err)
	}
	defer tr.Close()
	cli := viewsvc.NewClient(viewsvc.Config{}, tr, replicaIDs, 0)
	defer cli.Close()

	// The cached state is a local zero until the ensemble answers;
	// WaitEpoch re-queries, doubling as the contact retry loop.
	deadline := time.Now().Add(*timeout)
	for !cli.Heard() {
		if time.Now().After(deadline) {
			log.Fatalf("zeusctl: no contact with view ensemble at %v", viewAddrs)
		}
		cli.WaitEpoch(cli.State().Epoch+1, 500*time.Millisecond)
	}

	switch cmd {
	case "status":
		printStatus(cli.State())
	case "join":
		requireNode(*node)
		if *addr == "" {
			log.Fatalf("zeusctl: join requires -addr (the address peers dial)")
		}
		if !cli.JoinAddr(wire.NodeID(*node), *addr) {
			log.Fatalf("zeusctl: join of node %d did not commit", *node)
		}
		fmt.Printf("node %d joined (epoch %d)\n", *node, cli.State().Epoch)
	case "fail":
		requireNode(*node)
		// Fail is asynchronous — the view change waits out the failed
		// node's lease — so poll for the committed removal.
		cli.Fail(wire.NodeID(*node))
		for cli.State().Live.Contains(wire.NodeID(*node)) {
			if time.Now().After(deadline) {
				log.Fatalf("zeusctl: node %d still live after %v", *node, *timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("node %d removed (epoch %d)\n", *node, cli.State().Epoch)
	case "leave":
		requireNode(*node)
		if !cli.Leave(wire.NodeID(*node)) {
			log.Fatalf("zeusctl: leave of node %d did not commit", *node)
		}
		fmt.Printf("node %d left (epoch %d)\n", *node, cli.State().Epoch)
	default:
		usage()
		os.Exit(2)
	}
}

func printStatus(s wire.VSState) {
	fmt.Printf("epoch:    %d (log index %d)\n", s.Epoch, s.Index)
	fmt.Printf("live:     %s\n", s.Live)
	if s.Barrier != 0 {
		fmt.Printf("barrier:  %s (epoch %d) — recovery in progress\n", s.Barrier, s.BarrierEpoch)
	} else {
		fmt.Printf("barrier:  closed (last epoch %d)\n", s.BarrierEpoch)
	}
	if !s.Placement.IsZero() {
		fmt.Printf("dirs:     %d shards\n", len(s.Placement.Shards))
	}
	for _, a := range s.Addrs {
		fmt.Printf("node %-3d  %s\n", a.Node, a.Addr)
	}
}

func requireNode(n int) {
	if n < 0 || wire.NodeID(n) > viewsvc.MaxDataNode {
		log.Fatalf("zeusctl: -node is required (0..%d)", viewsvc.MaxDataNode)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zeusctl -view addr1,addr2,addr3 <command> [flags]

commands:
  status   print the committed view: epoch, live set, recovery barrier,
           directory placement, and the replicated address book
  join     admit node -node at address -addr
  fail     report node -node failed (waits for the committed removal)
  leave    retire node -node gracefully

flags:
`)
	flag.PrintDefaults()
}
