// Command zeusctl drives a running Zeus cluster's view-service ensemble from
// the outside: inspect the committed view, admit a node, report a failure, or
// retire a member. It speaks the same wire protocol as the data nodes,
// attaching as the well-known client id on an ephemeral port (the replicas
// answer over the inbound connection, so zeusctl needs no listed address).
//
//	zeusctl -view :7100,:7101,:7102 status
//	zeusctl -view :7100,:7101,:7102 metrics -node 0
//	zeusctl -view :7100,:7101,:7102 join  -node 3 -addr 127.0.0.1:7003
//	zeusctl -view :7100,:7101,:7102 fail  -node 3
//	zeusctl -view :7100,:7101,:7102 leave -node 3
//
// status additionally pulls each live node's observability header (applied
// watermark, safe-time lag, commits, incidents) over the data plane;
// metrics pulls one node's full metric registry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"zeus/internal/transport"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

func main() {
	viewFlag := flag.String("view", "", "comma-separated addresses of the view-service replicas (required)")
	node := flag.Int("node", -1, "target data node id (join/fail/leave)")
	addr := flag.String("addr", "", "advertised address of the joining node (join)")
	timeout := flag.Duration("timeout", 15*time.Second, "how long to wait for the command to take effect")
	flag.Usage = usage
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" || *viewFlag == "" {
		usage()
		os.Exit(2)
	}
	viewAddrs := splitAddrs(*viewFlag)
	replicaIDs := viewsvc.ReplicaIDs(len(viewAddrs))
	book := make(map[wire.NodeID]string, len(replicaIDs))
	for i, rid := range replicaIDs {
		book[rid] = viewAddrs[i]
	}

	tr, err := transport.NewTCP(viewsvc.ClientID, "127.0.0.1:0", book)
	if err != nil {
		log.Fatalf("zeusctl: %v", err)
	}
	defer tr.Close()
	// Detached client + router (the zeusd pattern): view-service traffic is
	// steered to the client while ObsState replies from data nodes land in
	// obsCh for the metrics/status commands.
	router := transport.NewRouter()
	cli := viewsvc.NewClientDetached(viewsvc.Config{}, tr, replicaIDs, 0)
	defer cli.Close()
	router.HandleMany(cli.Handle, wire.KindVSCommit, wire.KindVSQuery)
	obsCh := make(chan *wire.ObsState, 8)
	router.Handle(wire.KindObsState, func(from wire.NodeID, m wire.Msg) {
		select {
		case obsCh <- m.(*wire.ObsState):
		default:
		}
	})
	tr.SetHandler(router.Dispatch)

	// The cached state is a local zero until the ensemble answers;
	// WaitEpoch re-queries, doubling as the contact retry loop.
	deadline := time.Now().Add(*timeout)
	for !cli.Heard() {
		if time.Now().After(deadline) {
			log.Fatalf("zeusctl: no contact with view ensemble at %v", viewAddrs)
		}
		cli.WaitEpoch(cli.State().Epoch+1, 500*time.Millisecond)
	}

	switch cmd {
	case "status":
		s := cli.State()
		printStatus(s)
		printNodeRows(tr, obsCh, s)
	case "metrics":
		requireNode(*node)
		st, err := fetchObs(tr, obsCh, cli.State(), wire.NodeID(*node), true, *timeout)
		if err != nil {
			log.Fatalf("zeusctl: %v", err)
		}
		fmt.Printf("# node %d  epoch=%d applied_wm=%d safe_time=%d clock=%d commits=%d incidents=%d\n",
			st.From, st.Epoch, st.AppliedWM, st.SafeTime, st.Clock, st.Commits, st.Incidents)
		os.Stdout.Write(st.Metrics)
	case "join":
		requireNode(*node)
		if *addr == "" {
			log.Fatalf("zeusctl: join requires -addr (the address peers dial)")
		}
		if !cli.JoinAddr(wire.NodeID(*node), *addr) {
			log.Fatalf("zeusctl: join of node %d did not commit", *node)
		}
		fmt.Printf("node %d joined (epoch %d)\n", *node, cli.State().Epoch)
	case "fail":
		requireNode(*node)
		// Fail is asynchronous — the view change waits out the failed
		// node's lease — so poll for the committed removal.
		cli.Fail(wire.NodeID(*node))
		for cli.State().Live.Contains(wire.NodeID(*node)) {
			if time.Now().After(deadline) {
				log.Fatalf("zeusctl: node %d still live after %v", *node, *timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("node %d removed (epoch %d)\n", *node, cli.State().Epoch)
	case "leave":
		requireNode(*node)
		if !cli.Leave(wire.NodeID(*node)) {
			log.Fatalf("zeusctl: leave of node %d did not commit", *node)
		}
		fmt.Printf("node %d left (epoch %d)\n", *node, cli.State().Epoch)
	default:
		usage()
		os.Exit(2)
	}
}

func printStatus(s wire.VSState) {
	fmt.Printf("epoch:    %d (log index %d)\n", s.Epoch, s.Index)
	fmt.Printf("live:     %s\n", s.Live)
	if s.Barrier != 0 {
		fmt.Printf("barrier:  %s (epoch %d) — recovery in progress\n", s.Barrier, s.BarrierEpoch)
	} else {
		fmt.Printf("barrier:  closed (last epoch %d)\n", s.BarrierEpoch)
	}
	if !s.Placement.IsZero() {
		fmt.Printf("dirs:     %d shards\n", len(s.Placement.Shards))
	}
	for _, a := range s.Addrs {
		fmt.Printf("node %-3d  %s\n", a.Node, a.Addr)
	}
}

// printNodeRows polls every live node over ObsPull and prints its applied
// watermark, safe-time lag and commit/incident counts — the per-node health
// row of `zeusctl status`. Nodes that do not answer in time (e.g. still
// recovering) are reported as unreachable rather than failing the command.
func printNodeRows(tr *transport.TCP, ch chan *wire.ObsState, s wire.VSState) {
	for _, id := range s.Live.Nodes() {
		st, err := fetchObs(tr, ch, s, id, false, 2*time.Second)
		if err != nil {
			fmt.Printf("node %-3d  (no obs reply: %v)\n", id, err)
			continue
		}
		lag := "-"
		if st.SafeTime > 0 && st.Clock > st.SafeTime {
			lag = time.Duration(st.Clock - st.SafeTime).String()
		}
		fmt.Printf("node %-3d  applied_wm=%-12d safe_lag=%-10s commits=%-8d incidents=%d\n",
			id, st.AppliedWM, lag, st.Commits, st.Incidents)
	}
}

// fetchObs pulls one node's observability state: resolve the node's address
// from the replicated book, send ObsPull (full = include the rendered
// metrics) and wait for the matching reply, re-sending until the deadline.
func fetchObs(tr *transport.TCP, ch chan *wire.ObsState, s wire.VSState, node wire.NodeID, full bool, timeout time.Duration) (*wire.ObsState, error) {
	addr := ""
	for _, a := range s.Addrs {
		if a.Node == node {
			addr = a.Addr
		}
	}
	if addr == "" {
		return nil, fmt.Errorf("no address for node %d in the replicated book", node)
	}
	tr.SetAddr(node, addr)
	deadline := time.Now().Add(timeout)
	for {
		_ = tr.Send(node, &wire.ObsPull{From: viewsvc.ClientID, Full: full})
		select {
		case st := <-ch:
			if st.From == node {
				return st, nil
			}
		case <-time.After(300 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node %d did not answer within %v", node, timeout)
		}
	}
}

func requireNode(n int) {
	if n < 0 || wire.NodeID(n) > viewsvc.MaxDataNode {
		log.Fatalf("zeusctl: -node is required (0..%d)", viewsvc.MaxDataNode)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zeusctl -view addr1,addr2,addr3 <command> [flags]

commands:
  status   print the committed view: epoch, live set, recovery barrier,
           directory placement, the replicated address book, and each live
           node's applied watermark / safe-time lag / commit count
  metrics  pull node -node's full metrics registry (text rendering)
  join     admit node -node at address -addr
  fail     report node -node failed (waits for the committed removal)
  leave    retire node -node gracefully

flags:
`)
	flag.PrintDefaults()
}
