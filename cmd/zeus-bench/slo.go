package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"zeus/internal/experiments"
)

// sloP99Tolerance is the default allowed p99 growth factor for the SLO
// compare gate: new_p99 may reach old_p99 × (1 + tolerance). The band is
// deliberately wide — 3× at the default 2.0 — because the baseline is
// recorded on a 1-vCPU host while CI runners differ in core count, scheduler
// noise and co-tenancy, and short quick-scale runs put few thousand samples
// in the tail buckets. It still catches the failure mode the gate exists
// for: a stall-class regression (wedged pipeline, lost wakeup, runaway
// retry) inflates p99 by orders of magnitude, not tens of percent. A
// baseline file can override it via "p99_tolerance".
const sloP99Tolerance = 2.0

// sloP99Floor is the absolute arm of the gate: a row only counts as a
// regression when its new p99 also exceeds this. Healthy quick-scale p99s on
// this matrix sit at 0.5–15 ms, where scheduler noise on a shared CI core
// routinely swings 3–4× between runs — ratios alone are meaningless at that
// scale. 25 ms is 10% of the 250 ms in-run p99 objective: comfortably above
// the noise band, far below any stall. Override via "p99_floor_ns".
const sloP99Floor = 25 * time.Millisecond

// sloRecordRow is one matrix point's percentiles in an SLO record.
type sloRecordRow struct {
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
	Tps    float64 `json:"tps"`
	Pass   bool    `json:"pass"`
}

// sloRecord mirrors BENCH_SLO.json: the tracked open-loop percentile
// baseline, keyed by workload/fabric/n<nodes>/r<rate>/<arrival>.
type sloRecord struct {
	Label        string                  `json:"label"`
	Recorded     string                  `json:"recorded"`
	Host         string                  `json:"host"`
	Command      string                  `json:"command"`
	Note         string                  `json:"note"`
	P99Tolerance float64                 `json:"p99_tolerance"`
	P99FloorNS   int64                   `json:"p99_floor_ns"`
	Rows         map[string]sloRecordRow `json:"rows"`
}

// writeSLORecord serializes a matrix run for the -compare -slo gate.
func writeSLORecord(path, label string, r experiments.SLOResult) error {
	rec := sloRecord{
		Label:        label,
		Recorded:     time.Now().UTC().Format(time.RFC3339),
		Host:         fmt.Sprintf("%d-core %s/%s (GOMAXPROCS=%d)", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH, r.MaxProcs),
		Command:      "go run ./cmd/zeus-bench -experiment slo -slo-out " + path,
		Note:         "open-loop intended-send-time percentiles; -compare -slo flags a row only when p99 grows past old × (1+p99_tolerance) AND exceeds p99_floor_ns",
		P99Tolerance: sloP99Tolerance,
		P99FloorNS:   int64(sloP99Floor),
		Rows:         make(map[string]sloRecordRow, len(r.Rows)),
	}
	for _, row := range r.Rows {
		rec.Rows[row.Key()] = sloRecordRow{
			P50NS:  row.P50.Nanoseconds(),
			P99NS:  row.P99.Nanoseconds(),
			P999NS: row.P999.Nanoseconds(),
			MaxNS:  row.Max.Nanoseconds(),
			Tps:    row.Throughput,
			Pass:   row.Pass,
		}
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func loadSLORecord(path string) (sloRecord, error) {
	var r sloRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("zeus-bench: %w", err)
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("zeus-bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// compareSLORecords prints the p99 delta per matrix row and gates: a row
// whose new p99 exceeds old_p99 × (1 + tolerance) AND the absolute floor is
// a regression, and a row that failed its own in-run SLO (incidents
// included) fails outright.
func compareSLORecords(w io.Writer, oldPath, newPath string) error {
	oldRec, err := loadSLORecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadSLORecord(newPath)
	if err != nil {
		return err
	}
	tol := oldRec.P99Tolerance
	if tol <= 0 {
		tol = sloP99Tolerance
	}
	floor := time.Duration(oldRec.P99FloorNS)
	if floor <= 0 {
		floor = sloP99Floor
	}
	fmt.Fprintf(w, "SLO delta: %s (%s)\n    →      %s (%s)   [p99 gate: ≤ old × %.1f, floor %v]\n",
		oldRec.Label, oldRec.Recorded, newRec.Label, newRec.Recorded, 1+tol, floor)
	keys := make([]string, 0, len(oldRec.Rows))
	for k := range oldRec.Rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failures []string
	for _, k := range keys {
		o := oldRec.Rows[k]
		n, ok := newRec.Rows[k]
		if !ok {
			fmt.Fprintf(w, "  %-34s p99 %8s  →  (absent)\n", k, time.Duration(o.P99NS))
			continue
		}
		delta := 0.0
		if o.P99NS > 0 {
			delta = float64(n.P99NS-o.P99NS) / float64(o.P99NS)
		}
		mark := ""
		if o.P99NS > 0 && float64(n.P99NS) > float64(o.P99NS)*(1+tol) && time.Duration(n.P99NS) > floor {
			mark = "  REGRESSION (p99 gate)"
			failures = append(failures, fmt.Sprintf("%s p99 %+.0f%%", k, 100*delta))
		}
		if !n.Pass {
			mark += "  FAILED in-run SLO"
			failures = append(failures, fmt.Sprintf("%s failed its in-run SLO", k))
		}
		fmt.Fprintf(w, "  %-34s p99 %8s  →  %8s  (%+.0f%%)%s\n",
			k, time.Duration(o.P99NS), time.Duration(n.P99NS), 100*delta, mark)
	}
	added := make([]string, 0, len(newRec.Rows))
	for k := range newRec.Rows {
		if _, ok := oldRec.Rows[k]; !ok {
			added = append(added, k)
		}
	}
	sort.Strings(added)
	for _, k := range added {
		n := newRec.Rows[k]
		fmt.Fprintf(w, "  %-34s      (new)  →  %8s\n", k, time.Duration(n.P99NS))
		if !n.Pass {
			failures = append(failures, fmt.Sprintf("%s failed its in-run SLO", k))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("zeus-bench: SLO gate failed: %s", strings.Join(failures, ", "))
	}
	return nil
}
