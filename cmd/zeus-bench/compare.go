package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchRecord mirrors the BENCH_BASELINE.json / BENCH_AFTER.json layout that
// the repo tracks across PRs; only the fields -compare consumes are decoded.
type benchRecord struct {
	Label      string `json:"label"`
	Recorded   string `json:"recorded"`
	Benchmarks map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func loadRecord(path string) (benchRecord, error) {
	var r benchRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("zeus-bench: %w", err)
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("zeus-bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// gatedPrefixes are the read-path benchmarks -compare treats as regression
// gates, not just informational deltas: the snapshot-read work promises that
// classic RO transactions stay fast and that the readscale artefacts do not
// silently decay. A >10% ns/op regression on any of these fails the compare
// (and with it the CI bench-smoke job).
var gatedPrefixes = []string{
	"BenchmarkReadOnlyTx",
	"BenchmarkSnapshotReadTx",
	"BenchmarkReadScale",
}

// gateThreshold is the allowed ns/op growth on gated benchmarks (run-to-run
// noise on the shared recording host is ±10%).
const gateThreshold = 0.10

func gated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compareRecords prints the ns/op delta between two benchmark records — the
// CI bench-smoke step runs this so a PR's effect on the tracked benchmarks
// shows up in the job log without digging through artefacts. Read-path
// benchmarks (gatedPrefixes) additionally gate: a regression beyond
// gateThreshold returns an error.
func compareRecords(w io.Writer, oldPath, newPath string) error {
	oldRec, err := loadRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadRecord(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark delta: %s (%s)\n         →       %s (%s)\n",
		oldRec.Label, oldRec.Recorded, newRec.Label, newRec.Recorded)
	names := make([]string, 0, len(oldRec.Benchmarks))
	for name := range oldRec.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		o := oldRec.Benchmarks[name].NsPerOp
		n, ok := newRec.Benchmarks[name]
		if !ok || o <= 0 {
			fmt.Fprintf(w, "  %-28s %10.0f ns/op  →  (absent)\n", name, o)
			continue
		}
		delta := (n.NsPerOp - o) / o
		mark := ""
		if gated(name) && delta > gateThreshold {
			mark = "  REGRESSION (read-path gate)"
			regressions = append(regressions,
				fmt.Sprintf("%s +%.1f%%", name, 100*delta))
		}
		fmt.Fprintf(w, "  %-28s %10.0f ns/op  →  %10.0f ns/op  (%+.1f%%)%s\n",
			name, o, n.NsPerOp, 100*delta, mark)
	}
	added := make([]string, 0, len(newRec.Benchmarks))
	for name := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "  %-28s       (new)        →  %10.0f ns/op\n", name, newRec.Benchmarks[name].NsPerOp)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("zeus-bench: read-path benchmarks regressed beyond %.0f%%: %s",
			100*gateThreshold, strings.Join(regressions, ", "))
	}
	return nil
}
