package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// benchRecord mirrors the BENCH_BASELINE.json / BENCH_AFTER.json layout that
// the repo tracks across PRs; only the fields -compare consumes are decoded.
type benchRecord struct {
	Label      string `json:"label"`
	Recorded   string `json:"recorded"`
	Benchmarks map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func loadRecord(path string) (benchRecord, error) {
	var r benchRecord
	b, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("zeus-bench: %w", err)
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("zeus-bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// compareRecords prints the ns/op delta between two benchmark records — the
// CI bench-smoke step runs this so a PR's effect on the tracked benchmarks
// shows up in the job log without digging through artefacts.
func compareRecords(w io.Writer, oldPath, newPath string) error {
	oldRec, err := loadRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadRecord(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark delta: %s (%s)\n         →       %s (%s)\n",
		oldRec.Label, oldRec.Recorded, newRec.Label, newRec.Recorded)
	names := make([]string, 0, len(oldRec.Benchmarks))
	for name := range oldRec.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldRec.Benchmarks[name].NsPerOp
		n, ok := newRec.Benchmarks[name]
		if !ok || o <= 0 {
			fmt.Fprintf(w, "  %-28s %10.0f ns/op  →  (absent)\n", name, o)
			continue
		}
		fmt.Fprintf(w, "  %-28s %10.0f ns/op  →  %10.0f ns/op  (%+.1f%%)\n",
			name, o, n.NsPerOp, 100*(n.NsPerOp-o)/o)
	}
	added := make([]string, 0, len(newRec.Benchmarks))
	for name := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "  %-28s       (new)        →  %10.0f ns/op\n", name, newRec.Benchmarks[name].NsPerOp)
	}
	return nil
}
