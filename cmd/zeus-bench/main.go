// Command zeus-bench regenerates the paper's evaluation artefacts (§8):
// every table and figure, plus the ablation studies and the repo's own
// regression experiments.
//
// Usage:
//
//	zeus-bench -experiment all
//	zeus-bench -experiment fig8 -full
//	zeus-bench -experiment slo -slo-out BENCH_SLO.json
//	zeus-bench -compare -slo -slo-new /tmp/slo.json
//	zeus-bench -list
//
// Experiments: tab2, locality, fig7 … fig15, ablation, transport, scaling,
// directory, readscale, slo, all. The default scale finishes in seconds;
// -full runs the larger populations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zeus/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (tab2, locality, fig7..fig15, ablation, transport, scaling, directory, readscale, slo, all)")
	full := flag.Bool("full", false, "run the full-scale configuration (slower)")
	list := flag.Bool("list", false, "list available experiments")
	compare := flag.Bool("compare", false, "compare two benchmark JSON records and print the delta")
	oldFile := flag.String("old", "BENCH_BASELINE.json", "baseline record for -compare")
	newFile := flag.String("new", "BENCH_AFTER.json", "current record for -compare")
	sloCmp := flag.Bool("slo", false, "with -compare: gate open-loop SLO records instead of go-bench records")
	sloOld := flag.String("slo-old", "BENCH_SLO.json", "baseline SLO record for -compare -slo")
	sloNew := flag.String("slo-new", "SLO_AFTER.json", "current SLO record for -compare -slo")
	sloOut := flag.String("slo-out", "", "with -experiment slo: write the matrix percentiles to this JSON record")
	flag.Parse()

	if *compare {
		var err error
		if *sloCmp {
			err = compareSLORecords(os.Stdout, *sloOld, *sloNew)
		} else {
			err = compareRecords(os.Stdout, *oldFile, *newFile)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Println("available experiments:")
		for _, e := range order {
			fmt.Printf("  %-9s %s\n", e.name, e.desc)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	want := strings.ToLower(*exp)
	ran := 0
	failed := false
	for _, e := range order {
		if want != "all" && want != e.name {
			continue
		}
		if e.name == "slo" {
			r := experiments.SLOExp(scale)
			r.Print(os.Stdout)
			if *sloOut != "" {
				label := "slo " + scaleName(*full)
				if err := writeSLORecord(*sloOut, label, r); err != nil {
					fmt.Fprintln(os.Stderr, "zeus-bench:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", *sloOut)
			}
			if !r.Pass() {
				failed = true
			}
		} else {
			e.run(scale)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "zeus-bench: SLO matrix failed (see rows marked FAIL)")
		os.Exit(1)
	}
}

func scaleName(full bool) string {
	if full {
		return "full"
	}
	return "quick"
}

type entry struct {
	name string
	desc string
	run  func(experiments.Scale)
}

var order = []entry{
	{"tab2", "Table 2: benchmark summary", func(experiments.Scale) {
		experiments.Table2().Print(os.Stdout)
	}},
	{"locality", "§8 locality analyses (Boston, Venmo, TPC-C)", func(experiments.Scale) {
		experiments.Locality().Print(os.Stdout)
	}},
	{"fig7", "Handovers: all-local ideal vs Zeus", func(s experiments.Scale) {
		experiments.PrintFig7(os.Stdout, experiments.Fig7(s))
	}},
	{"fig8", "Smallbank vs % remote writes (Zeus vs OCC+2PC)", func(s experiments.Scale) {
		experiments.PrintSweep(os.Stdout, "Figure 8: Smallbank while varying remote write transactions", experiments.Fig8(s))
	}},
	{"fig9", "TATP vs % remote writes (Zeus vs OCC+2PC)", func(s experiments.Scale) {
		experiments.PrintSweep(os.Stdout, "Figure 9: TATP while varying remote write transactions", experiments.Fig9(s))
	}},
	{"fig10", "Voter: bulk object migration under load", func(s experiments.Scale) {
		experiments.Fig10(s).Print(os.Stdout)
	}},
	{"fig11", "Voter: votes concurrent with hot-object moves", func(s experiments.Scale) {
		experiments.Fig11(s).Print(os.Stdout)
	}},
	{"fig12", "CDF of ownership request latency", func(s experiments.Scale) {
		experiments.Fig12(s).Print(os.Stdout)
	}},
	{"fig13", "Packet gateway control plane (4 configurations)", func(s experiments.Scale) {
		experiments.Fig13(s).Print(os.Stdout)
	}},
	{"fig14", "SCTP throughput with/without replication", func(s experiments.Scale) {
		experiments.Fig14(s).Print(os.Stdout)
	}},
	{"fig15", "Nginx-style LB under scale-out/in", func(s experiments.Scale) {
		experiments.Fig15(s).Print(os.Stdout)
	}},
	{"ablation", "Pipelining / replication degree / loss ablations", func(s experiments.Scale) {
		experiments.Ablations(s).Print(os.Stdout)
	}},
	{"transport", "Transport frame batching + delayed acks vs per-message frames", func(s experiments.Scale) {
		experiments.Transport(s).Print(os.Stdout)
	}},
	{"scaling", "Worker-pipeline scaling: local write tx with 1→8 workers", func(s experiments.Scale) {
		experiments.Scaling(s).Print(os.Stdout)
	}},
	{"directory", "Sharded ownership directory: REQ throughput vs shard count", func(s experiments.Scale) {
		experiments.Directory(s).Print(os.Stdout)
	}},
	{"readscale", "MVCC snapshot reads: RO throughput vs reader replicas (95/5 and 100/0)", func(s experiments.Scale) {
		experiments.ReadScale(s).Print(os.Stdout)
	}},
	{"slo", "Open-loop SLO matrix: omission-safe latency over app workloads (netsim + TCP)", func(s experiments.Scale) {
		// Handled specially in main so -slo-out and the pass/fail exit
		// code apply; this entry exists for -list and ordering.
		experiments.SLOExp(s).Print(os.Stdout)
	}},
}
