package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRec(t *testing.T, dir, name string, rec sloRecord) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareSLORecords(t *testing.T) {
	dir := t.TempDir()
	base := sloRecord{
		Label:        "base",
		P99Tolerance: 2.0,
		P99FloorNS:   25_000_000,
		Rows: map[string]sloRecordRow{
			"epcgw/netsim/n3/r1000/const":  {P99NS: 10_000_000, Pass: true},
			"httplb/netsim/n3/r1000/const": {P99NS: 2_000_000, Pass: true},
		},
	}
	oldPath := writeRec(t, dir, "old.json", base)

	// Within tolerance (2.9× < 3×): passes.
	ok := base
	ok.Rows = map[string]sloRecordRow{
		"epcgw/netsim/n3/r1000/const":  {P99NS: 29_000_000, Pass: true},
		"httplb/netsim/n3/r1000/const": {P99NS: 1_500_000, Pass: true},
	}
	var buf bytes.Buffer
	if err := compareSLORecords(&buf, oldPath, writeRec(t, dir, "ok.json", ok)); err != nil {
		t.Fatalf("within-tolerance compare failed: %v\n%s", err, buf.String())
	}

	// Beyond tolerance but under the absolute floor: sub-stall-scale noise
	// (2ms → 20ms is 10×, still under 25ms) must not fire the gate.
	noisy := base
	noisy.Rows = map[string]sloRecordRow{
		"epcgw/netsim/n3/r1000/const":  {P99NS: 10_000_000, Pass: true},
		"httplb/netsim/n3/r1000/const": {P99NS: 20_000_000, Pass: true},
	}
	buf.Reset()
	if err := compareSLORecords(&buf, oldPath, writeRec(t, dir, "noisy.json", noisy)); err != nil {
		t.Fatalf("sub-floor swing gated as regression: %v\n%s", err, buf.String())
	}

	// Beyond tolerance (4× > 3×) and above the floor: the p99 gate fires.
	bad := base
	bad.Rows = map[string]sloRecordRow{
		"epcgw/netsim/n3/r1000/const":  {P99NS: 40_000_000, Pass: true},
		"httplb/netsim/n3/r1000/const": {P99NS: 2_000_000, Pass: true},
	}
	buf.Reset()
	err := compareSLORecords(&buf, oldPath, writeRec(t, dir, "bad.json", bad))
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("p99 regression not gated: err=%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("regression row not marked:\n%s", buf.String())
	}

	// A row that failed its own in-run SLO fails even with a fine p99.
	inrun := base
	inrun.Rows = map[string]sloRecordRow{
		"epcgw/netsim/n3/r1000/const":  {P99NS: 10_000_000, Pass: false},
		"httplb/netsim/n3/r1000/const": {P99NS: 2_000_000, Pass: true},
	}
	buf.Reset()
	if err := compareSLORecords(&buf, oldPath, writeRec(t, dir, "inrun.json", inrun)); err == nil {
		t.Fatalf("in-run SLO failure not gated:\n%s", buf.String())
	}
}
