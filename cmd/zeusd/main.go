// Command zeusd runs one Zeus datastore node over real TCP sockets — the
// multi-process testbed. Each process hosts one node; peers are listed as
// id=host:port pairs. A tiny demo workload (-demo) exercises creation,
// cross-node ownership migration and read-only reads once all peers are up.
//
// Example (three shells):
//
//	zeusd -id 0 -listen :7000 -peers 0=:7000,1=:7001,2=:7002 -demo
//	zeusd -id 1 -listen :7001 -peers 0=:7000,1=:7001,2=:7002
//	zeusd -id 2 -listen :7002 -peers 0=:7000,1=:7001,2=:7002
//
// The membership service is static in this mode (all listed peers are
// assumed live): each process self-hosts a private view-service ensemble
// (see internal/viewsvc) seeded with the peer list. Dynamic failure handling
// across processes requires pointing every node at one shared ensemble,
// which the in-process harness (internal/cluster) demonstrates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zeus/internal/core"
	"zeus/internal/membership"
	"zeus/internal/ownership"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

func main() {
	id := flag.Int("id", 0, "this node's id")
	listen := flag.String("listen", ":7000", "listen address")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port pairs for all nodes")
	degree := flag.Int("degree", 3, "replication degree")
	workers := flag.Int("workers", 8, "worker threads")
	dirShards := flag.Int("dir-shards", 0, "ownership-directory shard count (0 = legacy fixed 3-node directory; every process MUST pass the same value)")
	demo := flag.Bool("demo", false, "run a small demo workload after startup")
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("zeusd: %v", err)
	}
	var members wire.Bitmap
	for nid := range peers {
		members = members.Add(nid)
	}
	if !members.Contains(wire.NodeID(*id)) {
		log.Fatalf("zeusd: own id %d missing from -peers", *id)
	}

	tr, err := transport.NewTCP(wire.NodeID(*id), *listen, peers)
	if err != nil {
		log.Fatalf("zeusd: %v", err)
	}
	defer tr.Close()

	mgr := membership.NewManager(membership.Config{Lease: 50 * time.Millisecond, DirShards: *dirShards}, members)
	defer mgr.Close()
	agent := mgr.Agent(wire.NodeID(*id))

	dirs := wire.Bitmap(0)
	for i, n := range members.Nodes() {
		if i < 3 {
			dirs = dirs.Add(n)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Degree = *degree
	cfg.Workers = *workers
	cfg.Ownership = ownership.DefaultConfig(dirs)
	// Sharded directory (§6.2): each process self-hosts its view service,
	// so the replicated placement is only consistent across processes when
	// every zeusd is started with the same -dir-shards value and peer list.
	cfg.DirectoryShards = *dirShards
	node := core.NewNode(wire.NodeID(*id), tr, agent, cfg)
	defer node.Close()

	log.Printf("zeusd: node %d listening on %s, %d peers, directory %s",
		*id, tr.Addr(), members.Count(), dirs)

	if *demo {
		runDemo(node, members)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("zeusd: node %d shutting down", *id)
}

func parsePeers(s string) (map[wire.NodeID]string, error) {
	out := make(map[wire.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("-peers required")
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		out[wire.NodeID(id)] = kv[1]
	}
	return out, nil
}

func runDemo(node *core.Node, members wire.Bitmap) {
	time.Sleep(time.Second) // let peers come up
	const obj = 42
	if err := node.CreateObject(obj, []byte("created-by-demo")); err != nil {
		log.Printf("demo: create: %v (another node may own it already)", err)
	}
	for i := 0; i < 5; i++ {
		tx := node.BeginOn(0)
		v, err := tx.Get(obj)
		if err != nil {
			tx.Abort()
			log.Printf("demo: get: %v", err)
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if err := tx.Set(obj, append(v, '.')); err != nil {
			tx.Abort()
			log.Printf("demo: set: %v", err)
			continue
		}
		if err := tx.Commit(); err != nil {
			log.Printf("demo: commit: %v", err)
			continue
		}
		log.Printf("demo: committed write %d (value now %d bytes)", i+1, len(v)+1)
	}
	st := node.Stats()
	log.Printf("demo: commits=%d aborts=%d", st.Commits, st.Aborts)
}
