// Command zeusd runs one Zeus datastore node over real TCP sockets — the
// multi-process deployment. Every process attaches to ONE shared view-service
// ensemble (three replicas hosted by designated zeusd processes, -view-host,
// or by dedicated -view-only processes), so membership, failure detection,
// the recovery barrier and the directory placement are quorum-committed
// cluster state rather than per-process assumption.
//
// Founding a three-node cluster, each node hosting one view replica
// (three shells; identical -peers, -view and -dir-shards everywhere):
//
//	zeusd -id 0 -listen :7000 -view :7100,:7101,:7102 -view-host 0 -peers 0=:7000,1=:7001,2=:7002 -data /var/zeus/0
//	zeusd -id 1 -listen :7001 -view :7100,:7101,:7102 -view-host 1 -peers 0=:7000,1=:7001,2=:7002 -data /var/zeus/1
//	zeusd -id 2 -listen :7002 -view :7100,:7101,:7102 -view-host 2 -peers 0=:7000,1=:7001,2=:7002 -data /var/zeus/2
//
// Joining a running cluster needs no peer list — the replicated address book
// supplies it:
//
//	zeusd -id 3 -listen :7003 -view :7100,:7101,:7102 -join -data /var/zeus/3
//
// Restarting a crashed node is the same join command: the process first
// recovers its store from the WAL + snapshot in -data, rejoins the view, and
// delta-syncs divergent objects from the current owners (state sync) before
// serving. A process with -view-only hosts just its view replica and no data
// node. Use cmd/zeusctl to inspect or drive the ensemble from outside.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zeus/internal/core"
	"zeus/internal/membership"
	"zeus/internal/obs"
	"zeus/internal/ownership"
	"zeus/internal/storage/filestorage"
	"zeus/internal/transport"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

func main() {
	id := flag.Int("id", 0, "this node's data-plane id (0..59)")
	listen := flag.String("listen", ":7000", "data-plane listen address")
	advertise := flag.String("advertise", "", "address peers should dial (default: -listen)")
	viewFlag := flag.String("view", "", "comma-separated addresses of the view-service replicas (required)")
	viewHost := flag.Int("view-host", -1, "host view replica k (0-based index into -view) in this process")
	viewListen := flag.String("view-listen", "", "listen address for the hosted view replica (default: the -view entry it serves)")
	viewOnly := flag.Bool("view-only", false, "host only the view replica, no data node")
	peersFlag := flag.String("peers", "", "founding members as id=host:port pairs (bootstrap only; joiners omit it)")
	join := flag.Bool("join", false, "join a running cluster (or rejoin after a crash) instead of founding one")
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots); empty = memory only")
	degree := flag.Int("degree", 3, "replication degree")
	workers := flag.Int("workers", 8, "worker threads")
	dirShards := flag.Int("dir-shards", 0, "ownership-directory shard count (0 = service default; every process MUST pass the same value)")
	lease := flag.Duration("lease", 500*time.Millisecond, "membership lease (failure detection horizon)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP listen address (/metrics, /debug/trace, /debug/incidents); empty = off")
	traceSample := flag.Uint64("trace-sample", 0, "sample every Nth write transaction with a per-phase trace (0 = off; needs -obs-addr)")
	watchdogAge := flag.Duration("watchdog-age", 0, "commit-debt watchdog threshold (0 = ZEUS_WATCHDOG_AGE or off)")
	demo := flag.Bool("demo", false, "run a small demo workload after startup")
	flag.Parse()

	viewAddrs := splitAddrs(*viewFlag)
	if len(viewAddrs) == 0 {
		log.Fatalf("zeusd: -view is required (the shared ensemble is the cluster's control plane)")
	}
	replicaIDs := viewsvc.ReplicaIDs(len(viewAddrs))

	var peers map[wire.NodeID]string
	var err error
	if *peersFlag != "" {
		if peers, err = parsePeers(*peersFlag); err != nil {
			log.Fatalf("zeusd: %v", err)
		}
	} else if !*join && !*viewOnly {
		log.Fatalf("zeusd: founding a cluster requires -peers (use -join to attach to a running one)")
	}
	var members wire.Bitmap
	var initialAddrs []wire.NodeAddr
	for nid, addr := range peers {
		members = members.Add(nid)
		initialAddrs = append(initialAddrs, wire.NodeAddr{Node: nid, Addr: addr})
	}
	sort.Slice(initialAddrs, func(i, j int) bool { return initialAddrs[i].Node < initialAddrs[j].Node })

	vcfg := viewsvc.Config{
		Lease:        *lease,
		DirShards:    *dirShards,
		InitialAddrs: initialAddrs,
		// Nobody reports a SIGKILLed process: the ensemble leader detects
		// silent nodes by lease expiry and proposes the failure itself.
		AutoFail: true,
	}

	// Hosted view replica (a designated zeusd or a -view-only process): its
	// own listener and transport identity at the top of the id space.
	if *viewHost >= 0 {
		if *viewHost >= len(viewAddrs) {
			log.Fatalf("zeusd: -view-host %d out of range (%d view replicas)", *viewHost, len(viewAddrs))
		}
		if peers == nil {
			log.Fatalf("zeusd: hosting a view replica requires -peers (the ensemble seeds the founding view)")
		}
		vln := *viewListen
		if vln == "" {
			vln = viewAddrs[*viewHost]
		}
		book := make(map[wire.NodeID]string, len(replicaIDs))
		for i, rid := range replicaIDs {
			book[rid] = viewAddrs[i]
		}
		vtr, err := transport.NewTCP(replicaIDs[*viewHost], vln, book)
		if err != nil {
			log.Fatalf("zeusd: view replica listener: %v", err)
		}
		defer vtr.Close()
		r := viewsvc.NewReplica(vcfg, replicaIDs, *viewHost, vtr, members)
		defer r.Close()
		log.Printf("zeusd: view replica %d serving on %s", *viewHost, vtr.Addr())
	}

	if *viewOnly {
		waitSignal()
		log.Printf("zeusd: view replica shutting down")
		return
	}

	if *id < 0 || wire.NodeID(*id) > viewsvc.MaxDataNode {
		log.Fatalf("zeusd: -id %d out of range (0..%d)", *id, viewsvc.MaxDataNode)
	}
	self := wire.NodeID(*id)
	if peers != nil {
		if _, ok := peers[self]; !ok {
			log.Fatalf("zeusd: own id %d missing from -peers", *id)
		}
	}
	adv := *advertise
	if adv == "" {
		adv = *listen
	}

	// One socket carries both planes: the data node's transport doubles as
	// the view-service client endpoint, with the router steering VS traffic
	// to the client. The book starts with the ensemble plus any founding
	// peers; the replicated address book extends it as nodes join.
	book := make(map[wire.NodeID]string, len(replicaIDs)+len(peers))
	for i, rid := range replicaIDs {
		book[rid] = viewAddrs[i]
	}
	for nid, addr := range peers {
		if nid != self {
			book[nid] = addr
		}
	}
	tr, err := transport.NewTCP(self, *listen, book)
	if err != nil {
		log.Fatalf("zeusd: %v", err)
	}
	defer tr.Close()

	cli := viewsvc.NewClientDetached(vcfg, tr, replicaIDs, members)
	mgr := membership.NewManagerOver(membership.Config{Lease: *lease, DirShards: *dirShards}, cli)
	defer mgr.Close()
	agent := mgr.Agent(self)

	cfg := core.DefaultConfig()
	cfg.Degree = *degree
	cfg.Workers = *workers
	cfg.DirectoryShards = *dirShards
	cfg.Ownership = ownership.DefaultConfig(firstThree(members))
	if *dataDir != "" {
		stg, err := filestorage.Open(*dataDir)
		if err != nil {
			log.Fatalf("zeusd: open data dir: %v", err)
		}
		cfg.Storage = stg
	}
	if *obsAddr != "" {
		cfg.Obs = obs.NewRegistry()
		cfg.TraceSample = *traceSample
		cfg.Obs.CounterFunc("tcp_decode_drops_total", tr.DecodeDrops)
		cli.SetObs(cfg.Obs)
	}
	cfg.WatchdogAge = *watchdogAge
	node := core.NewNode(self, tr, agent, cfg)
	defer node.Close()
	if *obsAddr != "" {
		serveObs(*obsAddr, node.Obs())
	}
	// The router owns the shared socket's handler; view-service pushes and
	// query replies are steered to the detached client here.
	node.Router().HandleMany(cli.Handle, wire.KindVSCommit, wire.KindVSQuery)

	if *join {
		if err := joinCluster(node, tr, mgr, cli, self, adv, *dirShards); err != nil {
			log.Fatalf("zeusd: %v", err)
		}
	} else if *dataDir != "" && node.Incarnation() > 1 {
		// A founder restarted over an existing data dir (the durable
		// incarnation counter says a previous lifetime used it). It takes
		// the same path as an explicit rejoin: leave-then-join bumps the
		// epoch and has the survivors replay whatever the previous
		// incarnation left mid-flight, then state sync re-arms the
		// recovered objects against the current owners.
		if err := joinCluster(node, tr, mgr, cli, self, adv, *dirShards); err != nil {
			log.Fatalf("zeusd: founder rejoin: %v", err)
		}
	}

	go watchClusterState(tr, mgr, cli, self, *dirShards)

	log.Printf("zeusd: node %d serving on %s (advertised %s), view %v, epoch %d, live %s",
		*id, tr.Addr(), adv, viewAddrs, mgr.View().Epoch, mgr.View().Live)

	if *demo {
		runDemo(node, mgr.View().Live)
	}

	waitSignal()
	log.Printf("zeusd: node %d shutting down", *id)
}

// joinCluster attaches this node to a running deployment: contact the
// ensemble, adopt its address book, verify the directory configuration,
// evict any still-live previous incarnation of itself (leave-then-join),
// commit the join, and state-sync whatever the local WAL recovered.
func joinCluster(node *core.Node, tr *transport.TCP, mgr *membership.Manager, cli *viewsvc.Client, self wire.NodeID, adv string, dirShards int) error {
	// First contact: the cached state is a local seed (empty, for a joiner)
	// until the ensemble answers. WaitEpoch re-queries as a lost-push
	// backstop, so driving it doubles as the contact retry loop.
	deadline := time.Now().Add(15 * time.Second)
	for !cli.Heard() {
		if time.Now().After(deadline) {
			return fmt.Errorf("no contact with view ensemble (is it running?)")
		}
		cli.WaitEpoch(mgr.View().Epoch+1, 500*time.Millisecond)
	}
	s := mgr.State()
	if err := checkPlacement(s, dirShards); err != nil {
		return err
	}
	applyAddrs(tr, s, self)

	// Restart eviction: a crashed process can be back before the failure
	// detector noticed, so the previous incarnation still sits in the Live
	// set and its unfinished replication state is still held by the
	// survivors. Committing an explicit Leave first bumps the epoch and
	// opens the recovery barrier — the survivors replay this incarnation's
	// stranded R-INVs and validate what the crash left mid-flight — before
	// the rejoin commits. The old "already live, nothing to commit" fast
	// path skipped all of that: those slots stayed stored forever at the
	// followers, and on memory-only nodes the unbumped epoch let the new
	// pipes alias the previous incarnation's PipeIDs.
	if s.Live.Contains(self) {
		before := s.Epoch
		if !cli.Leave(self) {
			return fmt.Errorf("pre-join leave did not commit (no ensemble quorum?)")
		}
		if !mgr.WaitEpoch(before+1, 10*time.Second) {
			return fmt.Errorf("pre-join leave view change timed out")
		}
		s = mgr.State()
	}
	before := s.Epoch
	if !cli.JoinAddr(self, adv) {
		return fmt.Errorf("join did not commit (no ensemble quorum?)")
	}
	if !mgr.WaitEpoch(before+1, 10*time.Second) {
		return fmt.Errorf("join view change timed out")
	}
	// Rejoin is state sync, not cold start: recovered objects re-arm at the
	// owners' current versions; exclusively-owned ones are reclaimed.
	if err := node.StateSync(15 * time.Second); err != nil {
		return fmt.Errorf("state sync: %w", err)
	}
	log.Printf("zeusd: node %d joined (recovered %d objects from WAL, state sync complete)", self, node.Recovered())
	return nil
}

// watchClusterState follows the replicated state: new addresses extend the
// transport's book, and a directory-shard disagreement (this process was
// started with a -dir-shards that contradicts the committed placement) is
// fatal — serving would split-brain the ownership directory.
func watchClusterState(tr *transport.TCP, mgr *membership.Manager, cli *viewsvc.Client, self wire.NodeID, dirShards int) {
	for {
		time.Sleep(200 * time.Millisecond)
		if !cli.Heard() {
			continue
		}
		s := mgr.State()
		if err := checkPlacement(s, dirShards); err != nil {
			log.Fatalf("zeusd: %v", err)
		}
		applyAddrs(tr, s, self)
	}
}

func checkPlacement(s wire.VSState, dirShards int) error {
	if dirShards > 0 && !s.Placement.IsZero() && len(s.Placement.Shards) != dirShards {
		return fmt.Errorf("-dir-shards %d disagrees with the replicated placement (%d shards); every process must use the same value",
			dirShards, len(s.Placement.Shards))
	}
	return nil
}

func applyAddrs(tr *transport.TCP, s wire.VSState, self wire.NodeID) {
	if tr == nil {
		return
	}
	for _, a := range s.Addrs {
		if a.Node != self && a.Addr != "" {
			tr.SetAddr(a.Node, a.Addr)
		}
	}
}

// serveObs exposes the node's registry over HTTP: /metrics (the full text
// rendering), /debug/trace (the slowest sampled transactions of the current
// window) and /debug/incidents (the watchdog's recent incidents). Scrape
// endpoints only — rendering walks the registry at request time, the hot
// paths never see the server.
func serveObs(addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Traces.WriteText(w)
	})
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Incidents.WriteText(w)
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("zeusd: obs server on %s: %v", addr, err)
		}
	}()
	log.Printf("zeusd: obs endpoints on http://%s/{metrics,debug/trace,debug/incidents}", addr)
}

func waitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
}

// firstThree picks the directory nodes for the legacy static directory (the
// sharded directory ignores it): the three lowest founding ids.
func firstThree(members wire.Bitmap) wire.Bitmap {
	var dirs wire.Bitmap
	for i, n := range members.Nodes() {
		if i == 3 {
			break
		}
		dirs = dirs.Add(n)
	}
	if dirs == 0 {
		dirs = wire.BitmapOf(0, 1, 2)
	}
	return dirs
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parsePeers parses "id=host:port,..." into an address book. Duplicate node
// ids and duplicate addresses are both configuration errors: either would
// silently drop a peer (last one wins) and leave the cluster half-connected.
func parsePeers(s string) (map[wire.NodeID]string, error) {
	out := make(map[wire.NodeID]string)
	seenAddr := make(map[string]wire.NodeID)
	if s == "" {
		return nil, fmt.Errorf("-peers required")
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		if id < 0 || wire.NodeID(id) > viewsvc.MaxDataNode {
			return nil, fmt.Errorf("peer id %d out of range (0..%d)", id, viewsvc.MaxDataNode)
		}
		nid := wire.NodeID(id)
		if prev, dup := out[nid]; dup {
			return nil, fmt.Errorf("duplicate peer id %d (%s and %s)", id, prev, kv[1])
		}
		if prev, dup := seenAddr[kv[1]]; dup {
			return nil, fmt.Errorf("duplicate peer address %s (nodes %d and %d)", kv[1], prev, id)
		}
		out[nid] = kv[1]
		seenAddr[kv[1]] = nid
	}
	return out, nil
}

func runDemo(node *core.Node, members wire.Bitmap) {
	time.Sleep(time.Second) // let peers come up
	const obj = 42
	if err := node.CreateObject(obj, []byte("created-by-demo")); err != nil {
		log.Printf("demo: create: %v (another node may own it already)", err)
	}
	for i := 0; i < 5; i++ {
		tx := node.BeginOn(0)
		v, err := tx.Get(obj)
		if err != nil {
			tx.Abort()
			log.Printf("demo: get: %v", err)
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if err := tx.Set(obj, append(v, '.')); err != nil {
			tx.Abort()
			log.Printf("demo: set: %v", err)
			continue
		}
		if err := tx.Commit(); err != nil {
			log.Printf("demo: commit: %v", err)
			continue
		}
		log.Printf("demo: committed write %d (value now %d bytes)", i+1, len(v)+1)
	}
	st := node.Stats()
	log.Printf("demo: commits=%d aborts=%d (live %s)", st.Commits, st.Aborts, members)
}
