package main

import (
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=127.0.0.1:7002")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if len(peers) != 3 {
		t.Fatalf("got %d peers, want 3", len(peers))
	}
	if peers[1] != "127.0.0.1:7001" {
		t.Fatalf("peer 1 = %q", peers[1])
	}
}

func TestParsePeersRejectsBadInput(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"", "-peers required"},
		{"0:127.0.0.1:7000", "want id=host:port"},
		{"x=127.0.0.1:7000", "bad peer id"},
		{"99=127.0.0.1:7000", "out of range"},
		{"-1=127.0.0.1:7000", "out of range"},
		{"0=:7000,0=:7001", "duplicate peer id 0"},
		{"0=:7000,1=:7000", "duplicate peer address :7000"},
	}
	for _, c := range cases {
		if _, err := parsePeers(c.in); err == nil {
			t.Errorf("parsePeers(%q): no error, want %q", c.in, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parsePeers(%q) = %v, want substring %q", c.in, err, c.want)
		}
	}
}
