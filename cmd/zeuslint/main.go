// Command zeuslint runs the Zeus concurrency-contract analyzers
// (internal/lint) over the given package patterns — a multichecker in the
// spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// standard library only.
//
// Usage:
//
//	zeuslint [-rules rule1,rule2] [packages]
//
// With no packages, ./... is analyzed. Exit status is 1 when findings
// remain after //lint:allow waivers, 2 on operational errors. CI runs
// `go run ./cmd/zeuslint ./...` as a required job: the tree ships
// lint-clean, so every finding is either a real contract violation or needs
// an explicit, justified waiver.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zeus/internal/lint"
	"zeus/internal/lint/analysis"
	"zeus/internal/lint/loader"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zeuslint [-rules rule1,rule2] [packages]\n\nrules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "zeuslint: unknown rule %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeuslint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeuslint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zeuslint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
