// Package safetime derives the quorum-advanced safe-time that backs MVCC
// snapshot reads (the Spanner-style "read at T, delay while lagging" scheme
// grafted onto Zeus's reliable commit plane).
//
// Two pieces:
//
//   - Clock: a hybrid-logical clock in nanoseconds. Every reliable commit is
//     stamped with a commit timestamp (CTS) drawn from the coordinator's
//     Clock; receivers merge observed CTSs back in, so causally-related
//     commits carry strictly increasing timestamps even across owner
//     migration.
//   - Tracker: the per-node applied-watermark table. Each node n advertises
//     a watermark W_n = "every reliable commit this node coordinates or has
//     accepted with CTS ≤ W_n is applied (and ring-published) at all its
//     followers". The safe-time S = min over live nodes of W_n, made
//     monotone. Any replica may serve a strictly-serializable snapshot read
//     at T once its local watermark reaches T, because S ≥ T implies every
//     commit that could order before T has been applied everywhere.
//
// Epoch fencing: watermarks are only comparable within a membership epoch.
// On a view change the table resets, and when the change removed nodes the
// tracker freezes S until the recovery barrier closes (Resume). The frozen
// S stays safe — a dead node's last advertised W bounded S below any commit
// it left unfinished — and the reset forces fresh, current-epoch reports
// from every live node (including rejoiners, whose state-sync install must
// complete first) before S moves again.
package safetime

import (
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/wire"
)

// Clock is a hybrid-logical clock over uint64 nanoseconds. The zero Clock
// is ready to use. All methods are safe for concurrent use.
type Clock struct {
	last atomic.Uint64
}

// Next mints a new timestamp: strictly greater than every timestamp this
// clock has minted or observed, and at least the wall clock. Deployments in
// this repository share one host (in-process cluster, multi-process on one
// machine), so wall clocks agree exactly; the logical component alone
// already guarantees correctness, wall time only keeps timestamps humane.
func (c *Clock) Next() uint64 {
	now := uint64(time.Now().UnixNano())
	for {
		last := c.last.Load()
		next := now
		if next <= last {
			next = last + 1
		}
		if c.last.CompareAndSwap(last, next) {
			return next
		}
	}
}

// Update merges an observed timestamp: after Update(x), Next returns > x.
func (c *Clock) Update(x uint64) {
	for {
		last := c.last.Load()
		if x <= last || c.last.CompareAndSwap(last, x) {
			return
		}
	}
}

// Now returns the largest timestamp minted or observed so far (0 if none).
func (c *Clock) Now() uint64 { return c.last.Load() }

// Tracker folds per-node watermark reports into the monotone safe-time.
type Tracker struct {
	mu     sync.Mutex
	epoch  wire.Epoch
	live   wire.Bitmap
	wm     map[wire.NodeID]uint64 // current-epoch reports only
	paused bool                   // view change with removals; wait for Resume

	safe atomic.Uint64 // monotone published safe-time
}

// NewTracker returns a Tracker that accepts no reports until the first
// OnViewChange installs an epoch and live set.
func NewTracker() *Tracker {
	return &Tracker{wm: make(map[wire.NodeID]uint64)}
}

// Observe records node from's applied watermark, reported in epoch. Reports
// from any epoch other than the tracker's current one are dropped — a stale
// watermark from before a migration could vouch for versions the new owner
// has already superseded. Watermarks regress only across epochs (the table
// was reset); within an epoch Observe keeps the max.
func (t *Tracker) Observe(from wire.NodeID, epoch wire.Epoch, wm uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch != t.epoch || !t.live.Contains(from) {
		return
	}
	if old, ok := t.wm[from]; !ok || wm > old {
		t.wm[from] = wm
	}
	t.advanceLocked()
}

// advanceLocked recomputes S. It moves only when every live node has
// reported in the current epoch and the tracker is not paused.
func (t *Tracker) advanceLocked() {
	if t.paused || t.live == 0 {
		return
	}
	min := ^uint64(0)
	for _, n := range t.live.Nodes() {
		w, ok := t.wm[n]
		if !ok {
			return
		}
		if w < min {
			min = w
		}
	}
	for {
		cur := t.safe.Load()
		if min <= cur || t.safe.CompareAndSwap(cur, min) {
			return
		}
	}
}

// OnViewChange installs the new epoch and live set. The watermark table
// resets unconditionally (cross-epoch watermarks are not comparable); if the
// change removed nodes the tracker additionally pauses until Resume, i.e.
// until the recovery barrier (replays + state sync) closes.
func (t *Tracker) OnViewChange(epoch wire.Epoch, live wire.Bitmap, removed wire.Bitmap) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = epoch
	t.live = live
	t.wm = make(map[wire.NodeID]uint64)
	if removed.Count() > 0 {
		t.paused = true
	}
}

// Resume lifts the pause set by a view change with removals, once the
// epoch's recovery barrier has closed. A Resume for a stale epoch is
// ignored (a newer view change superseded it).
func (t *Tracker) Resume(epoch wire.Epoch) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch != t.epoch {
		return
	}
	t.paused = false
	t.advanceLocked()
}

// Safe returns the current safe-time. Monotone: never decreases, across
// view changes included.
func (t *Tracker) Safe() uint64 { return t.safe.Load() }

// Epoch returns the tracker's current epoch (for tests and debugging).
func (t *Tracker) Epoch() wire.Epoch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}
