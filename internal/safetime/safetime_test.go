package safetime

import (
	"sync"
	"testing"

	"zeus/internal/wire"
)

func TestClockStrictlyIncreasing(t *testing.T) {
	var c Clock
	prev := c.Next()
	for i := 0; i < 10000; i++ {
		n := c.Next()
		if n <= prev {
			t.Fatalf("Next not strictly increasing: %d then %d", prev, n)
		}
		prev = n
	}
}

func TestClockUpdateMerges(t *testing.T) {
	var c Clock
	far := c.Next() + 1e18
	c.Update(far)
	if n := c.Next(); n <= far {
		t.Fatalf("Next after Update(%d) = %d, want > observed", far, n)
	}
	// Updating backwards is a no-op.
	cur := c.Now()
	c.Update(1)
	if c.Now() != cur {
		t.Fatalf("backwards Update moved the clock")
	}
}

func TestClockConcurrentUnique(t *testing.T) {
	var c Clock
	const g, per = 8, 2000
	out := make([][]uint64, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts := make([]uint64, per)
			for j := range ts {
				ts[j] = c.Next()
			}
			out[i] = ts
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, g*per)
	for _, ts := range out {
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
}

func TestTrackerAdvancesOnFullQuorum(t *testing.T) {
	tr := NewTracker()
	live := wire.BitmapOf(0, 1, 2)
	tr.OnViewChange(1, live, 0)

	tr.Observe(0, 1, 100)
	tr.Observe(1, 1, 90)
	if s := tr.Safe(); s != 0 {
		t.Fatalf("safe advanced to %d before all live nodes reported", s)
	}
	tr.Observe(2, 1, 80)
	if s := tr.Safe(); s != 80 {
		t.Fatalf("safe = %d, want min(100,90,80) = 80", s)
	}
	// Laggard catches up: safe follows the new min.
	tr.Observe(2, 1, 95)
	if s := tr.Safe(); s != 90 {
		t.Fatalf("safe = %d, want 90", s)
	}
}

func TestTrackerMonotone(t *testing.T) {
	tr := NewTracker()
	tr.OnViewChange(1, wire.BitmapOf(0, 1), 0)
	tr.Observe(0, 1, 100)
	tr.Observe(1, 1, 100)
	if s := tr.Safe(); s != 100 {
		t.Fatalf("safe = %d, want 100", s)
	}
	// A join resets the table; safe must hold at 100, not regress, even
	// when the new epoch's reports start lower.
	tr.OnViewChange(2, wire.BitmapOf(0, 1, 2), 0)
	if s := tr.Safe(); s != 100 {
		t.Fatalf("safe regressed to %d across view change", s)
	}
	tr.Observe(0, 2, 50)
	tr.Observe(1, 2, 50)
	tr.Observe(2, 2, 50)
	if s := tr.Safe(); s != 100 {
		t.Fatalf("safe regressed to %d from low new-epoch reports", s)
	}
	tr.Observe(2, 2, 120)
	tr.Observe(0, 2, 120)
	tr.Observe(1, 2, 120)
	if s := tr.Safe(); s != 120 {
		t.Fatalf("safe = %d, want 120", s)
	}
}

func TestTrackerEpochFencing(t *testing.T) {
	tr := NewTracker()
	tr.OnViewChange(2, wire.BitmapOf(0, 1), 0)
	// Stale-epoch and future-epoch reports are dropped.
	tr.Observe(0, 1, 500)
	tr.Observe(1, 3, 500)
	tr.Observe(0, 2, 10)
	tr.Observe(1, 2, 10)
	if s := tr.Safe(); s != 10 {
		t.Fatalf("safe = %d, want 10 (cross-epoch reports must not count)", s)
	}
	// Reports from non-live nodes are dropped too.
	tr.Observe(5, 2, 999)
	if s := tr.Safe(); s != 10 {
		t.Fatalf("safe = %d after non-live report, want 10", s)
	}
}

func TestTrackerPausesOnRemovalUntilResume(t *testing.T) {
	tr := NewTracker()
	tr.OnViewChange(1, wire.BitmapOf(0, 1, 2), 0)
	tr.Observe(0, 1, 40)
	tr.Observe(1, 1, 40)
	tr.Observe(2, 1, 40)
	if s := tr.Safe(); s != 40 {
		t.Fatalf("safe = %d, want 40", s)
	}

	// Node 2 dies: epoch 2, removal ⇒ paused.
	tr.OnViewChange(2, wire.BitmapOf(0, 1), wire.BitmapOf(2))
	tr.Observe(0, 2, 200)
	tr.Observe(1, 2, 200)
	if s := tr.Safe(); s != 40 {
		t.Fatalf("safe advanced to %d while paused for recovery", s)
	}

	// Stale resume is ignored.
	tr.Resume(1)
	if s := tr.Safe(); s != 40 {
		t.Fatalf("stale Resume unpaused: safe = %d", s)
	}

	tr.Resume(2)
	if s := tr.Safe(); s != 200 {
		t.Fatalf("safe = %d after Resume, want 200", s)
	}
}

func TestTrackerResumeBeforeReportsStaysPut(t *testing.T) {
	tr := NewTracker()
	tr.OnViewChange(1, wire.BitmapOf(0, 1), 0)
	tr.Observe(0, 1, 30)
	tr.Observe(1, 1, 30)
	tr.OnViewChange(2, wire.BitmapOf(0), wire.BitmapOf(1))
	tr.Resume(2)
	if s := tr.Safe(); s != 30 {
		t.Fatalf("safe = %d after Resume with empty table, want 30", s)
	}
	tr.Observe(0, 2, 60)
	if s := tr.Safe(); s != 60 {
		t.Fatalf("safe = %d, want 60", s)
	}
}
