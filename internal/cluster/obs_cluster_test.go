package cluster

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/dbapi"
	"zeus/internal/wire"
)

// TestObsOwnerKillRecordsBarrier kills the owner of a hot object under load
// on an observability-enabled cluster and checks the view-service client's
// metrics captured the event: at least one recovery-barrier duration sample
// and at least one epoch change. This is the paper's "recovery pause" made
// measurable (ISSUE PR 9 satellite).
func TestObsOwnerKillRecordsBarrier(t *testing.T) {
	opts := DefaultOptions(4)
	opts.Observability = true
	c := New(opts)
	defer c.Close()
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(0))

	var committed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, node := range []int{0, 1} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := dbapi.Run(db, node, func(tx dbapi.Txn) error {
					v, err := tx.Get(1)
					if err != nil {
						return err
					}
					return tx.Set(1, u64c(fromU64c(v)+1))
				})
				if err == nil {
					committed.Add(1)
				}
			}
		}(node)
	}

	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	barrier, ok := c.ViewObs().HistogramSnapshot("vs_barrier_ns")
	if !ok || barrier.Count == 0 {
		t.Fatalf("owner kill recorded no vs_barrier_ns sample (ok=%v count=%d)", ok, barrier.Count)
	}
	if ec, _ := c.ViewObs().CounterValue("vs_epoch_changes_total"); ec == 0 {
		t.Fatal("owner kill recorded no vs_epoch_changes_total")
	}
	// The survivors' commit counters must corroborate the load loop: the
	// registry scrape and the engine atomics are the same numbers.
	var scraped uint64
	for _, node := range []int{0, 1} {
		v, ok := c.Obs(node).CounterValue("core_commits_total")
		if !ok {
			t.Fatalf("node %d registry missing core_commits_total", node)
		}
		scraped += v
	}
	if scraped < committed.Load() {
		t.Fatalf("registries scraped %d commits, load loop committed %d", scraped, committed.Load())
	}
}

// TestObsHappyPathNoIncidents runs a healthy write workload with the debt
// watchdog armed at a tight threshold: a cluster with nothing wrong must
// produce ZERO incidents, and the commit metrics must show the work happened.
func TestObsHappyPathNoIncidents(t *testing.T) {
	opts := DefaultOptions(3)
	opts.Observability = true
	opts.WatchdogAge = 250 * time.Millisecond
	c := New(opts)
	defer c.Close()
	c.SeedAt(1, 0, u64c(0))

	db := c.Node(0).DB()
	for i := 0; i < 100; i++ {
		err := dbapi.Run(db, i%c.opts.Workers, func(tx dbapi.Txn) error {
			v, err := tx.Get(1)
			if err != nil {
				return err
			}
			return tx.Set(1, u64c(fromU64c(v)+1))
		})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !c.WaitIdle(5 * time.Second) {
		t.Fatal("pipelines did not drain")
	}
	// One more watchdog scan period for good measure: a drained pipeline has
	// no debt, so even a scan that races the last completion stays quiet.
	time.Sleep(opts.WatchdogAge / 2)

	for i := 0; i < 3; i++ {
		reg := c.Obs(i)
		if n := reg.Incidents.Total(); n != 0 {
			t.Fatalf("node %d reported %d incidents on a healthy run: %+v", i, n, reg.Incidents.Recent())
		}
	}
	if v, _ := c.Obs(0).CounterValue("cmt_committed_total"); v == 0 {
		t.Fatal("cmt_committed_total is zero after 100 commits")
	}
	if snap, ok := c.Obs(0).HistogramSnapshot("cmt_applied_ns"); !ok || snap.Count == 0 {
		t.Fatalf("cmt_applied_ns recorded nothing (ok=%v)", ok)
	}
}

// TestObsTracePhaseBreakdown samples every write transaction and checks a
// real cluster commit produces the complete phase breakdown the ISSUE
// promises: begin → inv → ack → val → applied, in order, on the
// coordinator's trace table.
func TestObsTracePhaseBreakdown(t *testing.T) {
	opts := DefaultOptions(3)
	opts.Observability = true
	opts.TraceSample = 1
	c := New(opts)
	defer c.Close()
	c.SeedAt(7, 0, u64c(0))

	n := c.Node(0)
	for i := 0; i < 4; i++ {
		tx := n.Begin()
		v, err := tx.Get(7)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Set(7, u64c(fromU64c(v)+1)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if d := tx.Durable(); d != nil {
			<-d
		}
	}

	want := []string{"begin", "inv", "ack", "val", "applied"}
	for _, rec := range c.Obs(0).Traces.Slowest() {
		got := make([]string, 0, len(rec.Events))
		for _, e := range rec.Events {
			got = append(got, e.Label)
		}
		if strings.Join(got, " ") == strings.Join(want, " ") {
			return // complete breakdown found
		}
	}
	t.Fatalf("no trace with the complete phase breakdown %v; table: %+v",
		want, c.Obs(0).Traces.Slowest())
}
