package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/dbapi"
	"zeus/internal/wire"
)

// dirTortureOpts builds a 5-node lossy FabricSim cluster with a 16-shard
// directory: 5 nodes (not 4) so that a pure directory driver — neither a
// replica of the hot objects nor a writer — exists and can be crashed in
// isolation, and every shard still has a full 3-driver set afterwards.
func dirTortureOpts() Options {
	opts := tortureOpts()
	opts.Nodes = 5
	opts.DirShards = 16
	return opts
}

// dirHotObjects are the counters the writers hammer. Values are seeded to 1
// so value == t_version throughout, giving the checker exact footprints.
var dirHotObjects = []wire.ObjectID{1, 2, 3, 4, 5, 6}

// startDirLoad runs increment transactions over the hot objects from nodes 0
// and 1. Every alternation of the writer node forces an ownership REQ, so
// the directory is on the hot path of every single commit.
func startDirLoad(c *Cluster, history *[]checker.Tx, hmu *sync.Mutex,
	committed *[8]atomic.Uint64, stop chan struct{}, wg *sync.WaitGroup) {
	for _, node := range []int{0, 1} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			i := node
			for {
				select {
				case <-stop:
					return
				default:
				}
				obj := dirHotObjects[i%len(dirHotObjects)]
				i += 1 + node
				var read uint64
				start := time.Now().UnixNano()
				err := dbapi.Run(db, node, func(tx dbapi.Txn) error {
					v, err := tx.Get(uint64(obj))
					if err != nil {
						return err
					}
					read = fromU64c(v)
					return tx.Set(uint64(obj), u64c(read+1))
				})
				if err != nil {
					continue
				}
				end := time.Now().UnixNano()
				committed[obj].Add(1)
				hmu.Lock()
				*history = append(*history, checker.Tx{
					ID: len(*history), Start: start, End: end,
					Reads:  []checker.Access{{Obj: uint64(obj), Ver: read}},
					Writes: []checker.Access{{Obj: uint64(obj), Ver: read + 1}},
				})
				hmu.Unlock()
			}
		}(node)
	}
}

// assertDirInvariants checks the post-crash invariants shared by both
// torture tests: shard re-placement (no shard driven by the dead node, full
// driver sets from the survivors), no lost ownership grants or updates (per
// counter: final value == 1 + committed increments), completed arb-replays
// (no arbitration left pending anywhere), and a strictly serializable
// history.
func assertDirInvariants(t *testing.T, c *Cluster, dead wire.NodeID,
	history []checker.Tx, committed *[8]atomic.Uint64) {
	t.Helper()

	// Shard re-placement through the replicated view service.
	p := c.Manager().Placement()
	if p == nil || p.IsZero() {
		t.Fatal("no replicated placement")
	}
	if len(p.Shards) != 16 {
		t.Fatalf("shard count drifted: %d", len(p.Shards))
	}
	live := c.Live()
	wantDegree := 3
	if live.Count() < 3 {
		wantDegree = live.Count()
	}
	for s, ds := range p.Shards {
		if ds.Contains(dead) {
			t.Fatalf("shard %d still driven by dead node %d", s, dead)
		}
		if ds.Count() != wantDegree {
			t.Fatalf("shard %d has %d drivers, want %d", s, ds.Count(), wantDegree)
		}
		if ds.Intersect(live) != ds {
			t.Fatalf("shard %d drivers %v outside live set %v", s, ds, live)
		}
	}

	// No lost ownership grants / lost updates: each counter's final value
	// equals 1 (seed) + committed increments for it.
	for _, obj := range dirHotObjects {
		var final uint64
		err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
			v, err := tx.Get(uint64(obj))
			if err != nil {
				return err
			}
			final = fromU64c(v)
			return tx.Set(uint64(obj), v)
		})
		if err != nil {
			// Pending-commit wedge trace (ZEUS_WEDGE_DUMP, ROADMAP liveness bug).
			c.MaybeWedgeDump(fmt.Sprintf("directory-torture final read of %d: %v", obj, err))
			t.Fatalf("final read of %d: %v", obj, err)
		}
		if want := committed[obj].Load() + 1; final != want {
			t.Fatalf("obj %d: counter=%d committed+seed=%d (lost updates)", obj, final, want)
		}
	}

	// Arb-replay completion: once traffic stopped and pipelines drained, no
	// live node may hold a pending arbitration for a hot object.
	if !c.WaitIdle(10 * time.Second) {
		t.Fatal("commit pipelines never drained")
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, obj := range dirHotObjects {
	nodeLoop:
		for _, id := range live.Nodes() {
			for {
				o, ok := c.nodes[id].Store().Get(obj)
				if !ok {
					continue nodeLoop
				}
				o.Mu.Lock()
				pending := o.Pending != nil
				o.Mu.Unlock()
				if !pending {
					continue nodeLoop
				}
				if time.Now().After(deadline) {
					t.Fatalf("obj %d: node %d stuck with a pending arbitration", obj, id)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Strict serializability of the committed history.
	if err := checker.Check(history); err != nil {
		t.Fatalf("history not strictly serializable: %v", err)
	}
}

// TestDirectoryDriverCrashUnderLoad crashes a PURE directory driver — a node
// that replicates none of the hot objects and runs no writer — mid-Acquire
// under lossy-netsim load. The shards it drove must be re-driven by the
// survivors (after its lease expires), the replacement drivers must sync the
// shard metadata, in-flight arbitrations must heal via arb-replay, and no
// ownership grant or committed update may be lost.
func TestDirectoryDriverCrashUnderLoad(t *testing.T) {
	c := New(dirTortureOpts())
	defer c.Close()
	// Hot objects owned by node 4 with readers {0,1}: nodes 2 and 3 hold no
	// replica. Node 3 is the victim — by rendezvous it drives several of
	// the 16 shards but serves no data.
	for _, obj := range dirHotObjects {
		c.Seed(obj, 4, wire.BitmapOf(0, 1), u64c(1))
	}

	var hmu sync.Mutex
	var history []checker.Tx
	var committed [8]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	startDirLoad(c, &history, &hmu, &committed, stop, &wg)

	time.Sleep(15 * time.Millisecond) // REQ traffic flowing, arbitrations in flight

	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}

	// Keep acquiring through the re-placed directory.
	time.Sleep(15 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The replacement drivers must have pulled (or force-readied) the
	// shards node 3 drove.
	pulls := uint64(0)
	for _, id := range c.Live().Nodes() {
		if svc := c.nodes[id].DirectoryService(); svc != nil {
			st := svc.Stats()
			pulls += st.Pulls
			if st.Syncing != 0 {
				t.Fatalf("node %d still syncing %d shards after recovery", id, st.Syncing)
			}
		}
	}
	if pulls == 0 {
		t.Fatal("no shard metadata pulls despite a driver crash")
	}

	hmu.Lock()
	defer hmu.Unlock()
	assertDirInvariants(t, c, 3, history, &committed)
	if committed[dirHotObjects[0]].Load() == 0 {
		t.Fatal("no transactions committed on the first hot object")
	}
}

// TestDirectoryViewLeaderCrashMidAcquire crashes the view-service LEADER
// while Acquire-heavy load runs — the placement authority itself fails out
// from under the directory — then kills a directory driver THROUGH the new
// leader. Placement must keep evolving (ballot takeover adopts it with the
// rest of the state) and all directory invariants must hold.
func TestDirectoryViewLeaderCrashMidAcquire(t *testing.T) {
	c := New(dirTortureOpts())
	defer c.Close()
	for _, obj := range dirHotObjects {
		c.Seed(obj, 4, wire.BitmapOf(0, 1), u64c(1))
	}

	var hmu sync.Mutex
	var history []checker.Tx
	var committed [8]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	startDirLoad(c, &history, &hmu, &committed, stop, &wg)

	time.Sleep(10 * time.Millisecond)

	// Crash the view-service leader mid-load; wait for the takeover.
	leader := waitLeader(t, c, -1, 5*time.Second)
	if err := c.KillViewReplica(leader); err != nil {
		t.Fatal(err)
	}
	waitLeader(t, c, leader, 5*time.Second)
	time.Sleep(10 * time.Millisecond)

	// Kill a directory driver through the NEW leader: lease wait, view
	// change, barrier AND placement recompute all flow through it.
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	close(stop)
	wg.Wait()

	hmu.Lock()
	defer hmu.Unlock()
	assertDirInvariants(t, c, 3, history, &committed)
	if len(history) == 0 {
		t.Fatal("no transactions committed at all")
	}
}
