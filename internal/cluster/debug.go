package cluster

import (
	"fmt"
	"io"
	"os"
	"sort"

	"zeus/internal/wire"
)

// WedgeDumpEnv arms MaybeWedgeDump: when set (any non-empty value), a torture
// test whose final read exhausts its retries dumps every node's commit-engine
// invariant snapshot to stderr before failing. The CI race job sets it, so
// the ~1/60 pending-commit wedge flake (ROADMAP liveness bug) leaves a trace
// — which slot pins PendingCommits, on whose pipe, in which epoch — instead
// of only a retry-exhausted error.
const WedgeDumpEnv = "ZEUS_WEDGE_DUMP"

// WedgeDump writes every node's commit-engine state (open coordinator slots,
// stored/buffered follower R-INVs, the replay table, objects with commit
// debt) to w, in node order. Safe on a live or wedged cluster: each engine
// takes its pipe/object locks briefly and in isolation.
func (c *Cluster) WedgeDump(w io.Writer, context string) {
	fmt.Fprintf(w, "==== wedge dump (%s) ====\n", context)
	ids := make([]wire.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.nodes[id].CommitEngine().DumpState(w)
	}
	fmt.Fprintf(w, "==== end wedge dump ====\n")
}

// MaybeWedgeDump dumps to stderr when ZEUS_WEDGE_DUMP is set in the
// environment; it reports whether a dump was written.
func (c *Cluster) MaybeWedgeDump(context string) bool {
	if os.Getenv(WedgeDumpEnv) == "" {
		return false
	}
	c.WedgeDump(os.Stderr, context)
	return true
}
