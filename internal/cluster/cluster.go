// Package cluster assembles an in-process Zeus deployment: N core nodes over
// either the perfect in-memory fabric (Hub) or the lossy simulated network
// (netsim + reliable transport), one membership manager, and helpers for
// failure injection, scale-out and bulk data seeding.
//
// This is the substitute for the paper's six-server testbed: benchmarks and
// experiments run against a Cluster.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"zeus/internal/core"
	"zeus/internal/membership"
	"zeus/internal/netsim"
	"zeus/internal/obs"
	"zeus/internal/ownership"
	"zeus/internal/retry"
	"zeus/internal/shardmap"
	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

// FabricKind selects the network substrate.
type FabricKind int

const (
	// FabricMem is the perfect in-process hub (fast; unit tests, benches).
	FabricMem FabricKind = iota
	// FabricSim is the lossy simulated network under the reliable
	// transport (protocol stress, fault injection).
	FabricSim
	// FabricTCP runs every endpoint over real loopback TCP sockets
	// (transport.TCP with ":0" listeners and an in-process address book):
	// in-process nodes, real syscalls — the load harness's "over TCP"
	// configuration. Failure injection (Kill, Leave, KillViewReplica) is
	// unsupported: TCP has no SetDown switch.
	FabricTCP
)

// Options configures a cluster.
type Options struct {
	Nodes   int
	Degree  int
	Workers int
	// DispatchShards forwards to core.Config: handler goroutines for keyed
	// inbound traffic (0 = min(Workers, GOMAXPROCS), <=1 inline, negative
	// forces inline).
	DispatchShards int
	Fabric         FabricKind
	// Net configures the simulated fabric (FabricSim only).
	Net netsim.Config
	// Reliable overrides the reliable transport's tuning for FabricSim
	// clusters (batching thresholds, flush interval, delayed acks, RTO).
	// Zero fields keep the defaults derived from Net's latency scale.
	Reliable transport.ReliableConfig
	// Lease is the membership lease duration.
	Lease time.Duration
	// ViewReplicas is the view-service ensemble size (default 3; values
	// above 3 clamp — the reserved transport-id range 61..63 caps the
	// ensemble). The replicas live on the cluster's own fabric, so
	// fault-injection tests can crash them like any node.
	ViewReplicas int
	// View overrides the view-service tuning (heartbeat, takeover,
	// client retry). Zero fields derive from Lease.
	View viewsvc.Config
	// DirShards partitions the ownership directory into hash shards
	// (§6.2), each driven by up to three nodes rendezvous-hashed from the
	// live view, with the shard→drivers placement replicated through the
	// view service. 0 picks the host-scaled default
	// (shardmap.ScaledCount); negative — or an explicit DirNodes — keeps
	// the legacy fixed directory (the 1-shard compat shim).
	DirShards int
	// DirNodes overrides the directory placement with a fixed driver set
	// (default: first 3 nodes). Setting it selects the legacy static
	// directory; leave it zero to use the sharded directory.
	DirNodes wire.Bitmap
	// TrimReplicas / AutoAcquireRead forward to core.Config.
	TrimReplicas    bool
	AutoAcquireRead bool
	// SnapshotReads / SafeTimeInterval forward to core.Config: MVCC
	// snapshot reads from any replica at the quorum-advanced safe-time.
	SnapshotReads    bool
	SafeTimeInterval time.Duration
	// OwnershipDeadline bounds blocking ownership acquisitions.
	OwnershipDeadline time.Duration
	// OnOwnershipLatency observes ownership request latencies (Fig. 12).
	OnOwnershipLatency func(time.Duration)
	// Storage builds the per-node durable storage driver; nil keeps nodes
	// memory-only. The cluster memoizes the driver per node id, so a
	// restarted node recovers from the SAME driver its previous
	// incarnation wrote (drivers exposing Reopen() — memstorage — are
	// reopened across the in-process restart).
	Storage func(wire.NodeID) storage.Storage
	// Observability gives every node its own obs.Registry (metrics, traces,
	// incidents — reachable via Cluster.Obs) plus a cluster-level registry
	// for the shared view-service client (ViewObs). FabricSim endpoints
	// additionally scrape their reliable-transport counters into the node's
	// registry. Off by default: benchmarks measure the nil-registry paths
	// unless they opt in.
	Observability bool
	// TraceSample forwards to core.Config: sample every Nth write
	// transaction with a per-phase trace. Requires Observability.
	TraceSample uint64
	// WatchdogAge forwards to core.Config: arm the commit-engine debt
	// watchdog at this slot-age threshold (0 defers to ZEUS_WATCHDOG_AGE).
	WatchdogAge time.Duration
}

// DefaultOptions mirrors the paper's setup: 3-way replication, directory on
// the first three nodes.
func DefaultOptions(nodes int) Options {
	return Options{
		Nodes:           nodes,
		Degree:          3,
		Workers:         8,
		Fabric:          FabricMem,
		Lease:           2 * time.Millisecond,
		TrimReplicas:    true,
		AutoAcquireRead: true,
	}
}

// Cluster is an in-process Zeus deployment.
type Cluster struct {
	opts      Options
	hub       *transport.Hub
	net       *netsim.Network
	mgr       *membership.Manager
	views     *viewsvc.Ensemble
	vsIDs     []wire.NodeID
	mu        sync.RWMutex // guards nodes/trs: Restart races test load loops
	nodes     map[wire.NodeID]*core.Node
	trs       map[wire.NodeID]transport.Transport
	stores    map[wire.NodeID]storage.Storage // retained across Restart
	dirs      wire.Bitmap
	dirShards int // > 0: sharded directory; <= 0: legacy static DirNodes

	// viewObs (Options.Observability only) holds the shared view-service
	// client's metrics — epoch changes, recovery-barrier durations, lease
	// renew lag — which belong to the cluster, not to any one node.
	viewObs *obs.Registry

	// FabricTCP state: the address book maps every started endpoint to its
	// ":0"-bound listen address, and tcpTrs tracks the live transports so a
	// new endpoint's address propagates to all earlier ones (endpoints are
	// created before they carry traffic, so propagation is race-free).
	tcpMu   sync.Mutex
	tcpBook map[wire.NodeID]string
	tcpTrs  []*transport.TCP
}

// New builds and starts a cluster.
func New(opts Options) *Cluster {
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.Degree <= 0 {
		opts.Degree = 3
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Lease <= 0 {
		opts.Lease = 2 * time.Millisecond
	}
	if opts.Nodes > int(viewsvc.MaxDataNode)+1 {
		panic(fmt.Sprintf("cluster: at most %d data nodes (ids above are reserved for the view service)", viewsvc.MaxDataNode+1))
	}
	if opts.ViewReplicas <= 0 {
		opts.ViewReplicas = 3
	}
	if opts.ViewReplicas > 3 {
		opts.ViewReplicas = 3
	}
	var members wire.Bitmap
	for i := 0; i < opts.Nodes; i++ {
		members = members.Add(wire.NodeID(i))
	}
	dirs := opts.DirNodes
	if dirs == 0 {
		n := 3
		if opts.Nodes < 3 {
			n = opts.Nodes
		}
		for i := 0; i < n; i++ {
			dirs = dirs.Add(wire.NodeID(i))
		}
	}
	// Directory sharding (§6.2): the default is the sharded directory at
	// host scale; an explicit DirNodes set — which pins the driver set, as
	// documented — or a negative DirShards keeps the legacy fixed
	// directory as the compat shim.
	dirShards := opts.DirShards
	if opts.DirNodes != 0 {
		dirShards = -1
	}
	if dirShards == 0 {
		dirShards = shardmap.ScaledCount(runtime.GOMAXPROCS(0))
	}
	c := &Cluster{
		opts:      opts,
		nodes:     make(map[wire.NodeID]*core.Node),
		trs:       make(map[wire.NodeID]transport.Transport),
		stores:    make(map[wire.NodeID]storage.Storage),
		dirs:      dirs,
		dirShards: dirShards,
	}
	switch opts.Fabric {
	case FabricSim:
		c.net = netsim.New(opts.Net)
	case FabricTCP:
		c.tcpBook = make(map[wire.NodeID]string)
	default:
		c.hub = transport.NewHub()
	}
	// View service first: the ensemble and the membership client live on
	// reserved endpoint ids of the same fabric as the data nodes, so every
	// membership decision (epoch bump, lease expiry, recovery barrier)
	// crosses the wire — and tests can crash view replicas like any node.
	vcfg := c.opts.View
	if vcfg.Lease <= 0 {
		vcfg.Lease = opts.Lease
	}
	if c.dirShards > 0 && vcfg.DirShards <= 0 {
		vcfg.DirShards = c.dirShards
	}
	c.vsIDs = viewsvc.ReplicaIDs(opts.ViewReplicas)
	vtrs := make([]transport.Transport, len(c.vsIDs))
	for i, id := range c.vsIDs {
		vtrs[i] = c.endpoint(id)
	}
	c.views = viewsvc.StartEnsemble(vcfg, c.vsIDs, vtrs, members)
	cli := viewsvc.NewClient(vcfg, c.endpoint(viewsvc.ClientID), c.vsIDs, members)
	if opts.Observability {
		c.viewObs = obs.NewRegistry()
		cli.SetObs(c.viewObs)
	}
	c.mgr = membership.NewManagerOver(membership.Config{Lease: opts.Lease}, cli)
	for i := 0; i < opts.Nodes; i++ {
		c.startNode(wire.NodeID(i))
	}
	return c
}

// endpoint attaches a transport for id to the cluster's fabric.
func (c *Cluster) endpoint(id wire.NodeID) transport.Transport {
	if c.net != nil {
		return transport.NewReliable(c.net.Endpoint(id), c.reliableCfg())
	}
	if c.tcpBook != nil {
		return c.tcpEndpoint(id)
	}
	return c.hub.Node(id)
}

// tcpEndpoint starts a loopback TCP listener for id and threads its address
// through the in-process book: the new transport gets every existing peer's
// address, and every existing transport learns the new one — the same
// propagation zeusd gets from the replicated address book, minus the wire.
func (c *Cluster) tcpEndpoint(id wire.NodeID) transport.Transport {
	c.tcpMu.Lock()
	defer c.tcpMu.Unlock()
	tr, err := transport.NewTCP(id, "127.0.0.1:0", c.tcpBook)
	if err != nil {
		panic(fmt.Sprintf("cluster: tcp endpoint %d: %v", id, err))
	}
	addr := tr.Addr()
	c.tcpBook[id] = addr
	for _, peer := range c.tcpTrs {
		peer.SetAddr(id, addr)
	}
	c.tcpTrs = append(c.tcpTrs, tr)
	return tr
}

// reliableCfg derives the reliable-transport tuning from the fabric's
// latency scale (FabricSim only).
func (c *Cluster) reliableCfg() transport.ReliableConfig {
	rc := c.opts.Reliable
	if rc.RTO <= 0 {
		rc.RTO = transport.DefaultReliableConfig().RTO
		// Scale the initial retransmission timeout with the fabric's
		// latency so slow-motion fabrics do not trigger spurious
		// retransmits before the adaptive estimator has RTT samples;
		// the floor keeps the adapted RTO above one round trip.
		if rto := 4*c.opts.Net.MaxLatency + 2*time.Millisecond; rto > rc.RTO {
			rc.RTO = rto
		}
	}
	if rc.MinRTO <= 0 {
		if min := 2 * c.opts.Net.MaxLatency; min > rc.MinRTO {
			rc.MinRTO = min // NewReliable floors this at 2×FlushInterval
		}
	}
	if rc.DeliveryDepth <= 0 {
		rc.DeliveryDepth = transport.DefaultReliableConfig().DeliveryDepth
	}
	return rc
}

func (c *Cluster) startNode(id wire.NodeID) *core.Node {
	tr := c.endpoint(id)
	ocfg := ownership.DefaultConfig(c.dirs)
	if c.opts.OwnershipDeadline > 0 {
		ocfg.Deadline = c.opts.OwnershipDeadline
	}
	ocfg.OnLatency = c.opts.OnOwnershipLatency
	renew := c.opts.Lease / 3
	if renew < time.Millisecond {
		renew = time.Millisecond
	}
	cfg := core.Config{
		Degree:           c.opts.Degree,
		Workers:          c.opts.Workers,
		DispatchShards:   c.opts.DispatchShards,
		TrimReplicas:     c.opts.TrimReplicas,
		AutoAcquireRead:  c.opts.AutoAcquireRead,
		LeaseRenewEvery:  renew,
		Ownership:        ocfg,
		SnapshotReads:    c.opts.SnapshotReads,
		SafeTimeInterval: c.opts.SafeTimeInterval,
	}
	if c.dirShards > 0 {
		cfg.DirectoryShards = c.dirShards
	}
	if c.opts.Observability {
		cfg.Obs = obs.NewRegistry()
		cfg.TraceSample = c.opts.TraceSample
		cfg.WatchdogAge = c.opts.WatchdogAge
		if rel, ok := tr.(*transport.Reliable); ok {
			// FabricSim: the node's reliable endpoint scrapes its frame
			// counters into the same registry (FabricMem's hub is perfect
			// and carries cluster-wide totals via Messages/Bytes instead).
			rel.RegisterObs(cfg.Obs)
		}
	}
	if c.opts.Storage != nil {
		stg, retained := c.stores[id]
		if !retained {
			stg = c.opts.Storage(id)
			c.stores[id] = stg
		} else if ro, ok := stg.(interface{ Reopen() }); ok {
			// The previous incarnation Closed the driver on shutdown; an
			// in-process restart reopens the same instance (memstorage)
			// the way a real process re-Opens its data directory.
			ro.Reopen()
		}
		cfg.Storage = stg
	}
	n := core.NewNode(id, tr, c.mgr.Agent(id), cfg)
	c.mu.Lock()
	c.nodes[id] = n
	c.trs[id] = tr
	c.mu.Unlock()
	return n
}

// Node returns node i.
func (c *Cluster) Node(i int) *core.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[wire.NodeID(i)]
}

// Nodes returns the number of nodes ever started.
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Manager exposes the membership manager.
func (c *Cluster) Manager() *membership.Manager { return c.mgr }

// Obs returns node i's observability registry (nil unless the cluster was
// built with Options.Observability, or ZEUS_WATCHDOG_AGE armed a private
// one).
func (c *Cluster) Obs(i int) *obs.Registry {
	n := c.Node(i)
	if n == nil {
		return nil
	}
	return n.Obs()
}

// ViewObs returns the cluster-level registry holding the shared view-service
// client's metrics (nil without Options.Observability).
func (c *Cluster) ViewObs() *obs.Registry { return c.viewObs }

// ViewService exposes the view-service ensemble (tests and tooling).
func (c *Cluster) ViewService() *viewsvc.Ensemble { return c.views }

// setDown toggles fabric reachability for id. It reports false on
// FabricTCP, which has no down switch (real sockets cannot be severed
// in-process without closing them for good).
func (c *Cluster) setDown(id wire.NodeID, down bool) bool {
	switch {
	case c.net != nil:
		c.net.SetDown(id, down)
	case c.hub != nil:
		c.hub.SetDown(id, down)
	default:
		return false
	}
	return true
}

// KillViewReplica crash-stops view-service replica k (0-based ensemble
// index). The data plane must keep working as long as a replica quorum
// survives; killing the leader triggers a ballot takeover.
func (c *Cluster) KillViewReplica(k int) error {
	if k < 0 || k >= len(c.vsIDs) {
		return fmt.Errorf("cluster: no view replica %d", k)
	}
	if !c.setDown(c.vsIDs[k], true) {
		return fmt.Errorf("cluster: failure injection unsupported on the TCP fabric")
	}
	return nil
}

// Live returns the current live set.
func (c *Cluster) Live() wire.Bitmap { return c.mgr.View().Live }

// Dirs returns the legacy static directory node set (the compat shim's
// driver set). Sharded deployments resolve drivers per object — see
// DirDrivers.
func (c *Cluster) Dirs() wire.Bitmap { return c.dirs }

// DirShards returns the directory shard count (1 for the legacy static
// directory).
func (c *Cluster) DirShards() int {
	if c.dirShards > 0 {
		return c.dirShards
	}
	return 1
}

// DirDrivers returns the arbitration driver set for obj under the current
// placement (the static set on legacy deployments).
func (c *Cluster) DirDrivers(obj wire.ObjectID) wire.Bitmap {
	if c.dirShards > 0 {
		if p := c.mgr.Placement(); p != nil && !p.IsZero() {
			return p.DriversFor(obj)
		}
	}
	return c.dirs
}

// Kill crash-stops node i and waits for the view change and the recovery
// barrier to complete.
func (c *Cluster) Kill(i int) error {
	id := wire.NodeID(i)
	if !c.setDown(id, true) {
		return fmt.Errorf("cluster: failure injection unsupported on the TCP fabric")
	}
	before := c.mgr.View().Epoch
	c.mgr.Fail(id)
	if !c.mgr.WaitEpoch(before+1, 5*time.Second) {
		return fmt.Errorf("cluster: view change after killing %d timed out", i)
	}
	if !c.waitRecoveryDrained(5 * time.Second) {
		return fmt.Errorf("cluster: recovery barrier after killing %d timed out", i)
	}
	return nil
}

// errRecoveryPending drives waitRecoveryDrained's retry.Do poll; never
// escapes.
var errRecoveryPending = fmt.Errorf("cluster: recovery barrier open")

// waitRecoveryDrained polls the manager's recovery barrier through the
// shared retry machinery (fixed 200 µs probes, bounded by timeout); it
// reports whether the barrier closed in time.
func (c *Cluster) waitRecoveryDrained(timeout time.Duration) bool {
	err := retry.Do(nil, retry.Policy{
		InitialBackoff: 200 * time.Microsecond,
		MaxBackoff:     200 * time.Microsecond,
		Multiplier:     1,
		Jitter:         -1,
		MaxElapsed:     timeout,
	}, nil, func(int) error {
		if c.mgr.RecoveryPending() {
			return errRecoveryPending
		}
		return nil
	})
	return err == nil
}

// Restart reincarnates a previously Killed node from its retained durable
// storage, mirroring a real process restart: tear down what is left of the
// old instance (the fabric endpoint survives), recover the store from the
// WAL + snapshot, rejoin the view, and delta-sync divergent objects from the
// current owners. Returns the new node once it is serving.
func (c *Cluster) Restart(i int) (*core.Node, error) {
	id := wire.NodeID(i)
	c.mu.RLock()
	old, ok := c.nodes[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no node %d to restart", i)
	}
	// The old instance died mid-flight; release its engines and its WAL
	// without closing the shared fabric endpoint the new instance reuses.
	old.Shutdown(false)
	if !c.setDown(id, false) {
		return nil, fmt.Errorf("cluster: restart unsupported on the TCP fabric")
	}
	// A fresh agent: the dead instance's callbacks must not see the
	// rejoin's view changes.
	c.mgr.ResetAgent(id)
	n := c.startNode(id)
	// Join BEFORE sync: ownership transfers skip the data payload for
	// requesters already in the replica set, which is only sound if every
	// commit invalidates them — and commits only wait on LIVE replicas. A
	// node that state-synced while still outside the view could re-arm a
	// copy as valid and then miss the very next commit, leaving it
	// stale-but-valid in the set. Joining first closes that window: once
	// live, every commit reaches the node, and a sync answer that lost the
	// race against a newer invalidation is dropped by its version guard.
	before := c.mgr.View().Epoch
	c.mgr.Join(id)
	if !c.mgr.WaitEpoch(before+1, 5*time.Second) {
		return n, fmt.Errorf("cluster: rejoin view change for %d timed out", i)
	}
	if err := n.StateSync(5 * time.Second); err != nil {
		return n, err
	}
	return n, nil
}

// AddNode starts a fresh node with the next id and joins it to the
// membership (scale-out, Fig. 15).
func (c *Cluster) AddNode() *core.Node {
	id := wire.NodeID(c.Nodes())
	n := c.startNode(id)
	c.mgr.Join(id)
	return n
}

// Leave removes node i gracefully (scale-in) and waits for recovery.
func (c *Cluster) Leave(i int) error {
	id := wire.NodeID(i)
	before := c.mgr.View().Epoch
	c.mgr.Leave(id)
	if !c.mgr.WaitEpoch(before+1, 5*time.Second) {
		return fmt.Errorf("cluster: leave view change timed out")
	}
	if !c.waitRecoveryDrained(5 * time.Second) {
		return fmt.Errorf("cluster: recovery barrier after leave timed out")
	}
	// On the TCP fabric the departed node cannot be isolated in place; the
	// membership leave already removed it from the view, which is all the
	// harness workloads need.
	c.setDown(id, true)
	return nil
}

// Close shuts everything down.
func (c *Cluster) Close() {
	c.mu.RLock()
	nodes := make([]*core.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.RUnlock()
	for _, n := range nodes {
		n.Close()
	}
	c.mgr.Close()
	c.views.Close()
	if c.net != nil {
		c.net.Close()
	}
	// FabricTCP: close any listeners still open (node/view shutdown closes
	// its own endpoints; Close is idempotent, so double closes are safe).
	c.tcpMu.Lock()
	trs := c.tcpTrs
	c.tcpTrs = nil
	c.tcpMu.Unlock()
	for _, tr := range trs {
		tr.Close()
	}
}

// Messages returns total messages carried (FabricMem only; 0 otherwise).
func (c *Cluster) Messages() uint64 {
	if c.hub != nil {
		return c.hub.Messages()
	}
	if c.net != nil {
		return c.net.Stats().Sent
	}
	return 0
}

// Bytes returns total payload bytes carried.
func (c *Cluster) Bytes() uint64 {
	if c.hub != nil {
		return c.hub.Bytes()
	}
	if c.net != nil {
		return c.net.Stats().Bytes
	}
	return 0
}

// Seed bulk-installs an object without running the protocols: the replica
// set is written into the owner, the readers and the directory, and the
// initial value into every replica. This models the benchmarks' initial
// sharding (the paper: "The initial sharding of all systems is the same").
func (c *Cluster) Seed(obj wire.ObjectID, owner wire.NodeID, readers wire.Bitmap, data []byte) {
	reps := wire.ReplicaSet{Owner: owner, Readers: readers.Remove(owner)}
	ts := wire.OTS{Ver: 1, Node: owner}
	// Directory entries land at the object's arbitration drivers; the
	// legacy dirs set is seeded too so compat tooling keeps seeing entries
	// at the first three nodes (a stale never-driving entry is inert).
	targets := reps.All().Union(c.dirs).Union(c.DirDrivers(obj))
	for _, id := range targets.Nodes() {
		n := c.Node(int(id))
		if n == nil {
			continue
		}
		o, _ := n.Store().GetOrCreate(obj)
		o.Mu.Lock()
		o.Replicas = reps
		o.OTS = ts
		o.OState = store.OValid
		o.Level = reps.LevelOf(id)
		if o.Level != wire.NonReplica {
			o.Data = append([]byte(nil), data...)
			o.SetTLocked(1, store.TValid)
			// Arm the snapshot-read ring with a floor timestamp: HLC
			// timestamps are wall-clock-scale, so CTS 1 orders the seeded
			// version below every commit the cluster will ever mint while
			// keeping it visible to any snapshot (ts >= 1).
			o.CommitCTS = 1
			o.PublishRingLocked(1, 1, o.Data)
		}
		o.Mu.Unlock()
	}
}

// SeedRange seeds objects [from, from+count) round-robin across owners with
// the default degree-1 readers after each owner, all with the same value.
func (c *Cluster) SeedRange(from wire.ObjectID, count int, data []byte) {
	live := c.Live().Nodes()
	for i := 0; i < count; i++ {
		obj := from + wire.ObjectID(i)
		owner := live[i%len(live)]
		c.Seed(obj, owner, c.defaultReaders(owner), data)
	}
}

// SeedAt seeds one object at an explicit owner with default readers.
func (c *Cluster) SeedAt(obj wire.ObjectID, owner wire.NodeID, data []byte) {
	c.Seed(obj, owner, c.defaultReaders(owner), data)
}

func (c *Cluster) defaultReaders(owner wire.NodeID) wire.Bitmap {
	live := c.Live().Nodes()
	var readers wire.Bitmap
	start := 0
	for i, nd := range live {
		if nd == owner {
			start = i + 1
			break
		}
	}
	for i := 0; i < len(live) && readers.Count() < c.opts.Degree-1; i++ {
		cand := live[(start+i)%len(live)]
		if cand != owner {
			readers = readers.Add(cand)
		}
	}
	return readers
}

// WaitIdle waits for every node's commit pipelines to drain.
func (c *Cluster) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	c.mu.RLock()
	nodes := make([]*core.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.RUnlock()
	for _, n := range nodes {
		left := time.Until(deadline)
		if left <= 0 || !n.CommitEngine().WaitIdle(left) {
			return false
		}
	}
	return true
}
