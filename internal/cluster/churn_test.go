package cluster

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/wire"
)

func u64c(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func fromU64c(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// TestKillOwnerUnderLoad crashes the owner of a hot object while survivors
// keep incrementing it. Every increment acknowledged as committed before or
// after the crash must survive; the final counter equals the committed count.
// Runs with observability on: the liveness checks read the per-node metric
// registries instead of hand-rolled engine stats.
func TestKillOwnerUnderLoad(t *testing.T) {
	opts := DefaultOptions(4)
	opts.Observability = true
	c := New(opts)
	defer c.Close()
	// Owner is node 3; readers are nodes 0 and 1 (defaults put them after
	// the owner in the live ring: 0,1).
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(0))

	var committed atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, node := range []int{0, 1} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := dbapi.Run(db, node, func(tx dbapi.Txn) error {
					v, err := tx.Get(1)
					if err != nil {
						return err
					}
					return tx.Set(1, u64c(fromU64c(v)+1))
				})
				if err == nil {
					committed.Add(1)
				}
			}
		}(node)
	}

	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Read the final value from whichever survivor owns it now.
	var final uint64
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(1)
		if err != nil {
			return err
		}
		final = fromU64c(v)
		return tx.Set(1, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != committed.Load() {
		t.Fatalf("lost updates across owner crash: counter=%d committed=%d",
			final, committed.Load())
	}
	// Liveness via the registries: the survivors' scraped commit counters
	// must show the load ran, and the view-service client must have measured
	// the recovery barrier the kill opened.
	var scraped uint64
	for _, node := range []int{0, 1} {
		v, _ := c.Obs(node).CounterValue("core_commits_total")
		scraped += v
	}
	if scraped == 0 {
		t.Fatal("no transactions committed at all (core_commits_total zero on both survivors)")
	}
	if barrier, ok := c.ViewObs().HistogramSnapshot("vs_barrier_ns"); !ok || barrier.Count == 0 {
		t.Fatal("owner kill left no vs_barrier_ns sample")
	}
}

// TestKillDirectoryNodeOwnershipContinues crashes one of the three directory
// replicas; ownership requests keep succeeding through the surviving ones.
func TestKillDirectoryNodeOwnershipContinues(t *testing.T) {
	c := New(DefaultOptions(5))
	defer c.Close()
	c.SeedAt(2, 3, []byte("dir-test"))
	if err := c.Kill(1); err != nil { // node 1 is a directory node
		t.Fatal(err)
	}
	// Ownership transfer must still work via directory nodes 0 and 2.
	err := dbapi.Run(c.Node(4).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(2, []byte("after-dir-crash"))
	})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := c.Node(4).Store().Get(2)
	if !ok {
		t.Fatal("object missing at new owner")
	}
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Level != wire.Owner {
		t.Fatalf("level = %v", o.Level)
	}
}

// TestLossyFabricOwnershipChurn runs ownership ping-pong over a lossy,
// duplicating fabric: the reliable messaging layer must mask every fault.
func TestLossyFabricOwnershipChurn(t *testing.T) {
	opts := DefaultOptions(3)
	opts.Fabric = FabricSim
	opts.Workers = 2
	opts.Net = netsim.Config{
		Seed:       11,
		MinLatency: 2 * time.Microsecond,
		MaxLatency: 40 * time.Microsecond,
		LossProb:   0.05,
		DupProb:    0.05,
		InboxDepth: 1 << 14,
	}
	c := New(opts)
	defer c.Close()
	c.SeedAt(3, 0, u64c(0))
	// Counter bounce across all three nodes.
	for round := 0; round < 15; round++ {
		node := round % 3
		err := dbapi.Run(c.Node(node).DB(), 0, func(tx dbapi.Txn) error {
			v, err := tx.Get(3)
			if err != nil {
				return err
			}
			return tx.Set(3, u64c(fromU64c(v)+1))
		})
		if err != nil {
			t.Fatalf("round %d on node %d: %v", round, node, err)
		}
	}
	var final uint64
	if err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(3)
		if err != nil {
			return err
		}
		final = fromU64c(v)
		return tx.Set(3, v)
	}); err != nil {
		t.Fatal(err)
	}
	if final != 15 {
		t.Fatalf("lossy fabric lost increments: %d/15", final)
	}
}

// TestSequentialKills removes two nodes one after the other; the deployment
// keeps operating with the remaining quorum of directory nodes.
func TestSequentialKills(t *testing.T) {
	c := New(DefaultOptions(5))
	defer c.Close()
	c.SeedAt(4, 4, []byte("s"))
	if err := c.Kill(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	if c.Live().Count() != 3 {
		t.Fatalf("live = %v", c.Live())
	}
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(4, []byte("still-alive"))
	})
	if err != nil {
		t.Fatal(err)
	}
}
