package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/dbapi"
	"zeus/internal/storage"
	"zeus/internal/storage/memstorage"
	"zeus/internal/wire"
)

// TestCrashRestartTorture is the durable-recovery end-to-end: a node is
// crash-stopped mid-load, restarted against the WAL + snapshot its previous
// incarnation wrote, and must come back through state sync with nothing
// lost:
//
//   - objects the dead node exclusively owned (no survivor touched them)
//     are reclaimed from durable state with their committed values;
//   - objects that migrated or advanced while it was down are re-armed at
//     the owners' current versions;
//   - the full committed history — before, during and after the crash —
//     stays strictly serializable;
//   - every committed increment is readable afterwards from both a survivor
//     and the restarted node.
func TestCrashRestartTorture(t *testing.T) {
	opts := DefaultOptions(4)
	opts.Storage = func(wire.NodeID) storage.Storage { return memstorage.New() }
	c := New(opts)
	defer c.Close()

	// Counter objects: value == number of committed increments. Objects
	// 100..111 take load from the survivors; 200..203 are written only by
	// node 3 and then left alone, so its restart must reclaim them.
	var (
		histMu sync.Mutex
		hist   []checker.Tx
		clock  atomic.Int64
		txid   atomic.Int64
	)

	const loadBase, loadN = wire.ObjectID(100), 12
	const soloBase, soloN = wire.ObjectID(200), 4
	for i := 0; i < loadN; i++ {
		c.SeedAt(loadBase+wire.ObjectID(i), wire.NodeID(i%4), u64c(0))
	}
	for i := 0; i < soloN; i++ {
		c.SeedAt(soloBase+wire.ObjectID(i), 3, u64c(0))
	}

	counts := make(map[wire.ObjectID]*atomic.Uint64)
	for i := 0; i < loadN; i++ {
		counts[loadBase+wire.ObjectID(i)] = &atomic.Uint64{}
	}

	// increment bumps obj by 1 on node, recording the committed footprint.
	increment := func(node int, obj wire.ObjectID) bool {
		start := clock.Add(1)
		var readVer uint64
		err := dbapi.Run(c.Node(node).DB(), node, func(tx dbapi.Txn) error {
			v, err := tx.Get(uint64(obj))
			if err != nil {
				return err
			}
			readVer = fromU64c(v) + 1 // seeded value 0 <=> version 1
			return tx.Set(uint64(obj), u64c(fromU64c(v)+1))
		})
		if err != nil {
			return false
		}
		end := clock.Add(1)
		histMu.Lock()
		hist = append(hist, checker.Tx{
			ID: int(txid.Add(1)), Start: start, End: end,
			Reads:  []checker.Access{{Obj: uint64(obj), Ver: readVer}},
			Writes: []checker.Access{{Obj: uint64(obj), Ver: readVer + 1}},
		})
		histMu.Unlock()
		if ctr := counts[obj]; ctr != nil {
			ctr.Add(1)
		}
		return true
	}

	// Phase 0: node 3 writes its solo objects, fully replicates, and
	// snapshots — the snapshot is what lets recovery prove "I owned these".
	soloWrites := 3
	for i := 0; i < soloN; i++ {
		for k := 0; k < soloWrites; k++ {
			if !increment(3, soloBase+wire.ObjectID(i)) {
				t.Fatalf("solo write %d on object %d failed", k, soloBase+wire.ObjectID(i))
			}
		}
	}
	if !c.Node(3).WaitReplication(5 * time.Second) {
		t.Fatal("solo writes did not replicate")
	}
	if err := c.Node(3).SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Phase 1: survivors hammer the load objects while node 3 serves as
	// owner/follower; then the crash.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, node := range []int{0, 1, 2} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			r := uint64(node)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*6364136223846793005 + 1
				increment(node, loadBase+wire.ObjectID(r%loadN))
				// Pace the load: the checker's real-time edge pass is
				// quadratic in history length, so an unthrottled loop
				// turns verification into the slowest part of the test.
				time.Sleep(500 * time.Microsecond)
			}
		}(node)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	// Phase 2: restart node 3 from its retained storage, under load.
	n3, err := c.Restart(3)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if n3.Recovered() == 0 {
		t.Fatal("restarted node recovered nothing from its WAL")
	}
	if p := n3.SyncPending(); p != 0 {
		t.Fatalf("state sync incomplete: %d objects pending", p)
	}

	// Phase 3: the restarted node takes writes again.
	for i := 0; i < 10; i++ {
		increment(3, loadBase+wire.ObjectID(i%loadN))
	}
	close(stop)
	wg.Wait()
	if !c.WaitIdle(5 * time.Second) {
		t.Fatal("pipelines did not drain")
	}

	// No lost grants: the solo objects must have come back owned by node 3
	// (nobody else claimed them while it was down).
	for i := 0; i < soloN; i++ {
		obj := soloBase + wire.ObjectID(i)
		o, ok := n3.Store().Get(obj)
		if !ok {
			t.Fatalf("solo object %d missing after restart", obj)
		}
		o.Mu.Lock()
		lvl, owner := o.Level, o.Replicas.Owner
		o.Mu.Unlock()
		if lvl != wire.Owner || owner != 3 {
			t.Fatalf("solo object %d not reclaimed: level=%v owner=%v", obj, lvl, owner)
		}
	}

	// Every committed increment must be readable — from a survivor and from
	// the restarted node.
	readOn := func(node int, obj wire.ObjectID) uint64 {
		var got uint64
		err := dbapi.Run(c.Node(node).DB(), 0, func(tx dbapi.Txn) error {
			v, err := tx.Get(uint64(obj))
			if err != nil {
				return err
			}
			got = fromU64c(v)
			return nil
		})
		if err != nil {
			t.Fatalf("read %d on node %d: %v", obj, node, err)
		}
		return got
	}
	for i := 0; i < loadN; i++ {
		obj := loadBase + wire.ObjectID(i)
		want := counts[obj].Load()
		if got := readOn(0, obj); got != want {
			t.Fatalf("object %d on survivor: value %d, committed %d", obj, got, want)
		}
		if got := readOn(3, obj); got != want {
			t.Fatalf("object %d on restarted node: value %d, committed %d", obj, got, want)
		}
	}
	for i := 0; i < soloN; i++ {
		obj := soloBase + wire.ObjectID(i)
		if got := readOn(3, obj); got != uint64(soloWrites) {
			t.Fatalf("solo object %d: value %d, committed %d", obj, got, soloWrites)
		}
	}

	// The recorded history — spanning the crash and the restart — must be
	// strictly serializable.
	histMu.Lock()
	defer histMu.Unlock()
	if err := checker.Check(hist); err != nil {
		t.Fatalf("history not strictly serializable: %v", err)
	}
	if len(hist) < 50 {
		t.Fatalf("history suspiciously small: %d committed transactions", len(hist))
	}
}
