package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

// tortureOpts builds a 4-node FabricSim cluster with a lossy fabric and a
// fast-failover view service.
func tortureOpts() Options {
	opts := DefaultOptions(4)
	opts.Fabric = FabricSim
	opts.Workers = 2
	opts.Lease = 3 * time.Millisecond
	opts.Net = netsim.Config{
		Seed:       23,
		MinLatency: 2 * time.Microsecond,
		MaxLatency: 50 * time.Microsecond,
		LossProb:   0.02,
		DupProb:    0.01,
		InboxDepth: 1 << 14,
	}
	opts.View = viewsvc.Config{
		Lease:         3 * time.Millisecond,
		Heartbeat:     2 * time.Millisecond,
		TakeoverAfter: 15 * time.Millisecond,
	}
	return opts
}

// waitLeader polls until some replica other than exclude claims leadership.
func waitLeader(t *testing.T, c *Cluster, exclude int, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if li := c.ViewService().LeaderIndex(); li >= 0 && li != exclude {
			return li
		}
		if time.Now().After(deadline) {
			t.Fatalf("no view-service leader (excluding %d)", exclude)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestViewServiceLeaderFailover is the membership-churn torture test: it
// crashes the view-service LEADER while KillOwnerUnderLoad-style traffic
// runs, requires a ballot takeover by a surviving replica, then kills a data
// node (the hot object's owner) THROUGH the new leader and checks that
//
//   - epochs observed by the data plane stay strictly monotonic,
//   - the dead node's lease expires before the view installs,
//   - the recovery barrier completes,
//   - no committed increment is lost and the recorded history is strictly
//     serializable per internal/checker.
func TestViewServiceLeaderFailover(t *testing.T) {
	c := New(tortureOpts())
	defer c.Close()
	// Counter seeded so that value == t_version: every committed increment
	// bumps both by one, giving the checker exact read/write footprints.
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(1))

	// Epoch/install observer on a survivor's agent.
	type install struct {
		epoch   wire.Epoch
		removed wire.Bitmap
		at      time.Time
	}
	var instMu sync.Mutex
	var installs []install
	c.Node(0).Agent().OnChange(func(_, next wire.View, removed wire.Bitmap) {
		instMu.Lock()
		installs = append(installs, install{epoch: next.Epoch, removed: removed, at: time.Now()})
		instMu.Unlock()
	})

	// KillOwnerUnderLoad-style traffic with a checker history.
	var hmu sync.Mutex
	var history []checker.Tx
	var committed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, node := range []int{0, 1} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var read uint64
				start := time.Now().UnixNano()
				err := dbapi.Run(db, node, func(tx dbapi.Txn) error {
					v, err := tx.Get(1)
					if err != nil {
						return err
					}
					read = fromU64c(v)
					return tx.Set(1, u64c(read+1))
				})
				if err != nil {
					continue
				}
				end := time.Now().UnixNano()
				committed.Add(1)
				hmu.Lock()
				history = append(history, checker.Tx{
					ID: len(history), Start: start, End: end,
					Reads:  []checker.Access{{Obj: 1, Ver: read}},
					Writes: []checker.Access{{Obj: 1, Ver: read + 1}},
				})
				hmu.Unlock()
			}
		}(node)
	}

	time.Sleep(10 * time.Millisecond)

	// Crash the view-service leader mid-load and wait for the takeover.
	leader := waitLeader(t, c, -1, 5*time.Second)
	if err := c.KillViewReplica(leader); err != nil {
		t.Fatal(err)
	}
	waitLeader(t, c, leader, 5*time.Second)

	// Keep load running through the takeover window.
	time.Sleep(10 * time.Millisecond)

	// Now kill the hot object's owner. The view change, lease wait and
	// recovery barrier must all flow through the NEW view leader. Renew the
	// node's lease first so lease-before-install is measurable.
	c.Node(3).Agent().Renew()
	lease := c.opts.Lease
	killStart := time.Now()
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	if c.mgr.RecoveryPending() {
		t.Fatal("recovery barrier still open after Kill returned")
	}

	time.Sleep(15 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Lease-before-install: the view removing node 3 must not install
	// before the (just renewed) lease ran out.
	instMu.Lock()
	var killInstall *install
	for i := range installs {
		if installs[i].removed.Contains(3) {
			killInstall = &installs[i]
			break
		}
	}
	epochs := make([]wire.Epoch, len(installs))
	for i, in := range installs {
		epochs[i] = in.epoch
	}
	instMu.Unlock()
	if killInstall == nil {
		t.Fatalf("no view install removed node 3 (installs: %v)", epochs)
	}
	if early := killInstall.at.Sub(killStart); early < lease*7/10 {
		t.Fatalf("view removing node 3 installed after only %v (lease %v)", early, lease)
	}

	// Epoch monotonicity at the data plane.
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epochs not strictly monotonic: %v", epochs)
		}
	}

	// No lost updates: the counter equals the committed count (counter
	// starts at 1, value == version).
	var final uint64
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(1)
		if err != nil {
			return err
		}
		final = fromU64c(v)
		return tx.Set(1, v)
	})
	if err != nil {
		// The carried-over pending-commit wedge flake dies here after
		// exhausting NackPendingCommit retries; leave a trace (ZEUS_WEDGE_DUMP).
		c.MaybeWedgeDump("leader-takeover final read: " + err.Error())
		t.Fatal(err)
	}
	if final != committed.Load()+1 {
		t.Fatalf("lost updates across failover: counter=%d committed=%d", final, committed.Load())
	}
	if committed.Load() == 0 {
		t.Fatal("no transactions committed at all")
	}

	// Strict serializability of the committed history.
	hmu.Lock()
	defer hmu.Unlock()
	if err := checker.Check(history); err != nil {
		t.Fatalf("history not strictly serializable: %v", err)
	}
}

// TestViewServiceFollowerCrashUnderLoad kills a non-leader view replica
// mid-load: no takeover is needed, the quorum survives, and a data-node kill
// keeps working.
func TestViewServiceFollowerCrashUnderLoad(t *testing.T) {
	c := New(tortureOpts())
	defer c.Close()
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(0))

	var committed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, node := range []int{0, 1} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := dbapi.Run(db, node, func(tx dbapi.Txn) error {
					v, err := tx.Get(1)
					if err != nil {
						return err
					}
					return tx.Set(1, u64c(fromU64c(v)+1))
				}); err == nil {
					committed.Add(1)
				}
			}
		}(node)
	}

	time.Sleep(5 * time.Millisecond)
	leader := waitLeader(t, c, -1, 5*time.Second)
	if err := c.KillViewReplica((leader + 2) % 3); err != nil { // a follower
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	var final uint64
	if err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(1)
		if err != nil {
			return err
		}
		final = fromU64c(v)
		return tx.Set(1, v)
	}); err != nil {
		// The carried-over pending-commit wedge flake dies here after
		// exhausting NackPendingCommit retries; leave a trace (ZEUS_WEDGE_DUMP).
		c.MaybeWedgeDump("follower-crash final read: " + err.Error())
		t.Fatal(err)
	}
	if final != committed.Load() {
		t.Fatalf("lost updates: counter=%d committed=%d", final, committed.Load())
	}
	if waitLeader(t, c, -1, time.Second) < 0 {
		t.Fatal("quorum lost after a single follower crash")
	}
}
