package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/dbapi"
	"zeus/internal/storage"
	"zeus/internal/storage/memstorage"
	"zeus/internal/wire"
)

func snapshotOptions(nodes int) Options {
	opts := DefaultOptions(nodes)
	opts.SnapshotReads = true
	return opts
}

// TestSnapshotReadsFromReplicaNoOwnerTraffic is the headline property: a
// reader replica serves strictly-serializable snapshot reads entirely from
// its local version ring — the owner is never contacted, and writes
// committed at the owner become visible to fresh snapshots once the
// safe-time covers them.
func TestSnapshotReadsFromReplicaNoOwnerTraffic(t *testing.T) {
	c := New(snapshotOptions(4))
	defer c.Close()
	// Owner node 3, reader replicas 0 and 1; node 2 holds nothing.
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(7))

	readOn := func(node int) (uint64, error) {
		var got uint64
		err := dbapi.RunRO(c.Node(node).DB(), node, func(tx dbapi.Txn) error {
			v, err := tx.Get(1)
			if err != nil {
				return err
			}
			got = fromU64c(v)
			return nil
		})
		return got, err
	}

	if got, err := readOn(0); err != nil || got != 7 {
		t.Fatalf("replica snapshot read: got %d, err %v", got, err)
	}

	// Write through the owner, then a FRESH snapshot on the replica must
	// observe it (its timestamp is minted after the commit's CTS).
	err := dbapi.Run(c.Node(3).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(1, u64c(8))
	})
	if err != nil {
		t.Fatalf("owner write: %v", err)
	}
	if got, err := readOn(1); err != nil || got != 8 {
		t.Fatalf("replica snapshot read after write: got %d, err %v", got, err)
	}

	// Zero owner traffic: the reading replicas issued no ownership
	// requests at all, and every read was served from the ring.
	for _, node := range []int{0, 1} {
		if reqs := c.Node(node).OwnershipEngine().Stats().Requests; reqs != 0 {
			t.Fatalf("node %d issued %d ownership requests for snapshot reads", node, reqs)
		}
		if sr := c.Node(node).Stats().SnapshotReads; sr == 0 {
			t.Fatalf("node %d served no ring reads", node)
		}
	}
	if sr := c.Node(3).Stats().SnapshotReads; sr != 0 {
		t.Fatalf("owner served %d snapshot reads, want 0", sr)
	}
}

// TestSnapshotReadNonReplicaRefuses verifies snapshot mode never generates
// ownership traffic: a non-replica refuses the read outright instead of
// auto-acquiring reader level.
func TestSnapshotReadNonReplicaRefuses(t *testing.T) {
	c := New(snapshotOptions(4))
	defer c.Close()
	c.Seed(1, 3, wire.BitmapOf(0, 1), u64c(1))

	err := dbapi.RunRO(c.Node(2).DB(), 0, func(tx dbapi.Txn) error {
		_, err := tx.Get(1)
		return err
	})
	if err != dbapi.ErrNoReplica {
		t.Fatalf("non-replica snapshot read: err %v, want ErrNoReplica", err)
	}
	if reqs := c.Node(2).OwnershipEngine().Stats().Requests; reqs != 0 {
		t.Fatalf("non-replica issued %d ownership requests", reqs)
	}
}

// TestSafeTimeAdvancesMonotone checks the safe-time plane end to end: the
// quorum-advanced safe-time catches up to freshly minted timestamps and
// never regresses, across a view change included.
func TestSafeTimeAdvancesMonotone(t *testing.T) {
	c := New(snapshotOptions(4))
	defer c.Close()
	c.SeedRange(1, 8, u64c(0))

	target := c.Node(0).Clock().Next()
	deadline := time.Now().Add(5 * time.Second)
	for c.Node(0).SafeTime() < target {
		if time.Now().After(deadline) {
			t.Fatalf("safe-time stuck at %d, want >= %d", c.Node(0).SafeTime(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Monotonicity across a removal: sample while a node dies and the
	// recovery barrier runs.
	stop := make(chan struct{})
	var regressed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Node(0).SafeTime()
			if s < last {
				regressed.Store(true)
				return
			}
			last = s
		}
	}()
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if regressed.Load() {
		t.Fatal("safe-time regressed across a view change")
	}

	// And it advances again in the shrunken view.
	target = c.Node(0).Clock().Next()
	deadline = time.Now().Add(5 * time.Second)
	for c.Node(0).SafeTime() < target {
		if time.Now().After(deadline) {
			t.Fatalf("safe-time stuck after view change at %d, want >= %d",
				c.Node(0).SafeTime(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSnapshotTortureOwnerKillRestart is the snapshot-read torture: two
// counters are always incremented together (invariant a == b), snapshot
// readers on every node record what they observe, the seeded owner is
// crash-stopped mid-load and later restarted from its WAL. The whole
// recorded history — writes and snapshot reads, before, during and after
// the crash — must be strictly serializable, and every snapshot must
// observe the invariant; a restarted node serving a stale ring entry would
// fail both.
func TestSnapshotTortureOwnerKillRestart(t *testing.T) {
	opts := snapshotOptions(4)
	opts.Storage = func(wire.NodeID) storage.Storage { return memstorage.New() }
	c := New(opts)
	defer c.Close()

	const objA, objB = wire.ObjectID(1), wire.ObjectID(2)
	c.Seed(objA, 3, wire.BitmapOf(0, 1), u64c(0))
	c.Seed(objB, 3, wire.BitmapOf(0, 1), u64c(0))

	var (
		histMu sync.Mutex
		hist   []checker.Tx
		clock  atomic.Int64
		txid   atomic.Int64
	)
	record := func(start, end int64, reads, writes []checker.Access) {
		histMu.Lock()
		hist = append(hist, checker.Tx{
			ID: int(txid.Add(1)), Start: start, End: end,
			Reads: reads, Writes: writes,
		})
		histMu.Unlock()
	}

	// increment bumps BOTH counters in one transaction. Values are seeded
	// 0 at version 1, every write installs exactly the next version, so
	// value k <=> version k+1 throughout.
	increment := func(node int) bool {
		start := clock.Add(1)
		var va, vb uint64
		err := dbapi.Run(c.Node(node).DB(), node, func(tx dbapi.Txn) error {
			a, err := tx.Get(uint64(objA))
			if err != nil {
				return err
			}
			b, err := tx.Get(uint64(objB))
			if err != nil {
				return err
			}
			va, vb = fromU64c(a)+1, fromU64c(b)+1
			if err := tx.Set(uint64(objA), u64c(va)); err != nil {
				return err
			}
			return tx.Set(uint64(objB), u64c(vb))
		})
		if err != nil {
			return false
		}
		end := clock.Add(1)
		record(start, end,
			[]checker.Access{{Obj: uint64(objA), Ver: va}, {Obj: uint64(objB), Ver: vb}},
			[]checker.Access{{Obj: uint64(objA), Ver: va + 1}, {Obj: uint64(objB), Ver: vb + 1}})
		return true
	}

	// snapRead records one snapshot observation of both counters; a node
	// that is (currently) no replica, or cannot catch up, is skipped.
	snapRead := func(node int) {
		start := clock.Add(1)
		var a, b uint64
		err := dbapi.RunRO(c.Node(node).DB(), node, func(tx dbapi.Txn) error {
			av, err := tx.Get(uint64(objA))
			if err != nil {
				return err
			}
			bv, err := tx.Get(uint64(objB))
			if err != nil {
				return err
			}
			a, b = fromU64c(av), fromU64c(bv)
			return nil
		})
		if err != nil {
			return
		}
		end := clock.Add(1)
		if a != b {
			t.Errorf("snapshot on node %d tore the invariant: a=%d b=%d", node, a, b)
		}
		record(start, end,
			[]checker.Access{{Obj: uint64(objA), Ver: a + 1}, {Obj: uint64(objB), Ver: b + 1}},
			nil)
	}

	stop := make(chan struct{})
	stopWrites := make(chan struct{})
	var wg, writeWG sync.WaitGroup
	for _, node := range []int{0, 1} {
		writeWG.Add(1)
		go func(node int) {
			defer writeWG.Done()
			for {
				select {
				case <-stopWrites:
					return
				default:
				}
				increment(node)
				// Pace the load: the checker's real-time pass is
				// quadratic in history length.
				time.Sleep(500 * time.Microsecond)
			}
		}(node)
	}
	for _, node := range []int{0, 1, 2} {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snapRead(node)
				time.Sleep(300 * time.Microsecond)
			}
		}(node)
	}

	time.Sleep(20 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	// Quiesce the writers for the restart window: state sync needs the
	// current owner to present a validated (not perpetually mid-pipeline)
	// object. Snapshot readers keep running throughout.
	close(stopWrites)
	writeWG.Wait()

	n3, err := c.Restart(3)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if p := n3.SyncPending(); p != 0 {
		t.Fatalf("state sync incomplete: %d objects pending", p)
	}

	// The restarted node must serve CURRENT snapshots (its rings were
	// reset at recovery and re-armed by state sync and live commits) while
	// writes resume around it — a stale ring entry would break the
	// checker's real-time edges below.
	for i := 0; i < 20; i++ {
		increment(i % 2)
		snapRead(3)
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	if !c.WaitIdle(5 * time.Second) {
		t.Fatal("pipelines did not drain")
	}

	histMu.Lock()
	defer histMu.Unlock()
	var snaps int
	for _, tx := range hist {
		if tx.Writes == nil {
			snaps++
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshot reads committed at all")
	}
	if err := checker.Check(hist); err != nil {
		t.Fatalf("history not strictly serializable: %v", err)
	}
}
