package cluster

import (
	"testing"
	"time"

	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/store"
	"zeus/internal/wire"
)

func TestDefaultsAndAccessors(t *testing.T) {
	c := New(DefaultOptions(4))
	defer c.Close()
	if c.Nodes() != 4 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
	if c.Dirs() != wire.BitmapOf(0, 1, 2) {
		t.Fatalf("dirs = %v", c.Dirs())
	}
	if c.Live().Count() != 4 {
		t.Fatalf("live = %v", c.Live())
	}
	if c.Node(0) == nil || c.Node(0).ID() != 0 {
		t.Fatal("node accessor broken")
	}
	if c.Manager() == nil {
		t.Fatal("no manager")
	}
}

func TestSmallClusterDirsClamped(t *testing.T) {
	c := New(DefaultOptions(2))
	defer c.Close()
	if c.Dirs().Count() != 2 {
		t.Fatalf("dirs on 2-node cluster = %v", c.Dirs())
	}
}

func TestSeedEstablishesReplicasAndDirectory(t *testing.T) {
	c := New(DefaultOptions(4))
	defer c.Close()
	c.Seed(5, 3, wire.BitmapOf(0, 1), []byte("seeded"))
	// Owner.
	o, ok := c.Node(3).Store().Get(5)
	if !ok {
		t.Fatal("owner has no object")
	}
	o.Mu.Lock()
	if o.Level != wire.Owner || string(o.Data) != "seeded" || o.TState != store.TValid {
		t.Fatalf("owner state: %v %q %v", o.Level, o.Data, o.TState)
	}
	o.Mu.Unlock()
	// Readers.
	for _, r := range []int{0, 1} {
		ro, ok := c.Node(r).Store().Get(5)
		if !ok {
			t.Fatalf("reader %d missing object", r)
		}
		ro.Mu.Lock()
		if ro.Level != wire.Reader || string(ro.Data) != "seeded" {
			t.Fatalf("reader %d state: %v %q", r, ro.Level, ro.Data)
		}
		ro.Mu.Unlock()
	}
	// Directory entry exists on node 2 even though it is a non-replica.
	d, ok := c.Node(2).Store().Get(5)
	if !ok {
		t.Fatal("dir node missing entry")
	}
	d.Mu.Lock()
	defer d.Mu.Unlock()
	if d.Replicas.Owner != 3 || d.Level != wire.NonReplica {
		t.Fatalf("dir entry: %+v", d.Replicas)
	}
}

func TestSeedRangeRoundRobin(t *testing.T) {
	c := New(DefaultOptions(3))
	defer c.Close()
	c.SeedRange(100, 9, []byte("rr"))
	for i := 0; i < 9; i++ {
		owner := wire.NodeID(i % 3)
		o, ok := c.Node(int(owner)).Store().Get(wire.ObjectID(100 + i))
		if !ok {
			t.Fatalf("obj %d missing at node %d", 100+i, owner)
		}
		o.Mu.Lock()
		lvl := o.Level
		o.Mu.Unlock()
		if lvl != wire.Owner {
			t.Fatalf("obj %d level %v at node %d", 100+i, lvl, owner)
		}
	}
}

func TestKillRunsRecoveryBarrier(t *testing.T) {
	c := New(DefaultOptions(4))
	defer c.Close()
	c.SeedAt(7, 3, []byte("k"))
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	if c.Live().Contains(3) {
		t.Fatal("killed node still live")
	}
	if c.Manager().RecoveryPending() {
		t.Fatal("recovery barrier still open")
	}
	// Survivors can take over the ownerless object.
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(7, []byte("taken"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeJoinsAndWorks(t *testing.T) {
	c := New(DefaultOptions(3))
	defer c.Close()
	c.SeedAt(9, 0, []byte("j"))
	n := c.AddNode()
	if n.ID() != 3 || !c.Live().Contains(3) {
		t.Fatalf("join failed: id=%d live=%v", n.ID(), c.Live())
	}
	err := dbapi.Run(n.DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(9, []byte("from-joiner"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLeaveDrainsAndRemoves(t *testing.T) {
	c := New(DefaultOptions(4))
	defer c.Close()
	c.SeedAt(11, 3, []byte("l"))
	if err := dbapi.Run(c.Node(3).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(11, []byte("l2"))
	}); err != nil {
		t.Fatal(err)
	}
	c.Node(3).WaitReplication(2 * time.Second)
	if err := c.Leave(3); err != nil {
		t.Fatal(err)
	}
	if c.Live().Contains(3) {
		t.Fatal("left node still live")
	}
	// Remaining nodes serve the data.
	var got []byte
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(11)
		got = v
		if err != nil {
			return err
		}
		return tx.Set(11, v)
	})
	if err != nil || string(got) != "l2" {
		t.Fatalf("post-leave read: %q %v", got, err)
	}
}

func TestWaitIdleAndTrafficCounters(t *testing.T) {
	c := New(DefaultOptions(3))
	defer c.Close()
	c.SeedAt(13, 0, []byte("w"))
	if err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(13, []byte("w2"))
	}); err != nil {
		t.Fatal(err)
	}
	if !c.WaitIdle(2 * time.Second) {
		t.Fatal("WaitIdle timed out")
	}
	if c.Messages() == 0 || c.Bytes() == 0 {
		t.Fatal("no traffic recorded on mem fabric")
	}
}

func TestSimFabricCluster(t *testing.T) {
	opts := DefaultOptions(3)
	opts.Fabric = FabricSim
	opts.Net = netsim.Config{Seed: 5, MaxLatency: 30 * time.Microsecond, LossProb: 0.02, InboxDepth: 1 << 14}
	c := New(opts)
	defer c.Close()
	c.SeedAt(15, 0, []byte("sim"))
	if err := dbapi.Run(c.Node(1).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(15, []byte("sim2"))
	}); err != nil {
		t.Fatal(err)
	}
	if c.Messages() == 0 {
		t.Fatal("sim fabric carried no messages")
	}
}

func TestOwnershipLatencyHookWiring(t *testing.T) {
	var n int
	opts := DefaultOptions(3)
	opts.OnOwnershipLatency = func(time.Duration) { n++ }
	c := New(opts)
	defer c.Close()
	c.SeedAt(17, 0, []byte("h"))
	if err := dbapi.Run(c.Node(2).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(17, []byte("h2"))
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("latency hook never fired")
	}
}

func TestTCPFabricCluster(t *testing.T) {
	opts := DefaultOptions(3)
	opts.Fabric = FabricTCP
	c := New(opts)
	defer c.Close()
	c.SeedAt(25, 0, []byte("tcp"))
	// A remote write commits over real loopback sockets.
	if err := dbapi.Run(c.Node(1).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(25, []byte("tcp2"))
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := dbapi.RunRO(c.Node(2).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(25)
		got = append([]byte(nil), v...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "tcp2" {
		t.Fatalf("read %q over TCP fabric, want %q", got, "tcp2")
	}
	// Failure injection is a simulator capability; real sockets refuse it
	// rather than silently doing nothing.
	if err := c.Kill(1); err == nil {
		t.Fatal("Kill on the TCP fabric should report unsupported")
	}
	if _, err := c.Restart(1); err == nil {
		t.Fatal("Restart on the TCP fabric should report unsupported")
	}
}
