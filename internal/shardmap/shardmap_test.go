package shardmap

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCOWGetOrCreateReturnsOneInstance(t *testing.T) {
	var m COW[int, *int]
	const goroutines = 16
	var made atomic.Int32
	results := make([]*int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = m.GetOrCreate(7, func() *int {
				made.Add(1)
				v := new(int)
				return v
			})
		}(g)
	}
	wg.Wait()
	if made.Load() != 1 {
		t.Fatalf("mk ran %d times, want 1", made.Load())
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different instance", g)
		}
	}
	if v, ok := m.Get(7); !ok || v != results[0] {
		t.Fatalf("Get after GetOrCreate: %v %v", v, ok)
	}
	if _, ok := m.Get(8); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestCOWInsertPreservesExistingEntries(t *testing.T) {
	var m COW[int, int]
	for i := 0; i < 100; i++ {
		m.GetOrCreate(i, func() int { return i * 10 })
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	seen := 0
	m.Range(func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("entry %d = %d", k, v)
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Fatalf("Range visited %d", seen)
	}
}

func TestStripedUpdateContract(t *testing.T) {
	s := NewStriped[uint64, string](Mix64)

	// store=true inserts.
	s.Update(1, func(v string, ok bool) (string, bool, bool) {
		if ok {
			t.Fatal("unexpected existing value")
		}
		return "a", true, false
	})
	if v, ok := s.Get(1); !ok || v != "a" {
		t.Fatalf("after insert: %q %v", v, ok)
	}
	// store=false, del=false keeps.
	s.Update(1, func(v string, ok bool) (string, bool, bool) {
		if !ok || v != "a" {
			t.Fatalf("keep saw %q %v", v, ok)
		}
		return "ignored", false, false
	})
	if v, _ := s.Get(1); v != "a" {
		t.Fatalf("keep mutated value to %q", v)
	}
	// store=false, del=true deletes.
	s.Update(1, func(string, bool) (string, bool, bool) { return "", false, true })
	if _, ok := s.Get(1); ok {
		t.Fatal("delete left the entry")
	}
	// store wins over del.
	s.Update(2, func(string, bool) (string, bool, bool) { return "b", true, true })
	if v, ok := s.Get(2); !ok || v != "b" {
		t.Fatalf("store+del: %q %v", v, ok)
	}
}

func TestStripedConcurrentDisjointKeys(t *testing.T) {
	s := NewStriped[uint64, int](Mix64)
	const keys = 128
	var wg sync.WaitGroup
	for k := uint64(0); k < keys; k++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Update(k, func(v int, ok bool) (int, bool, bool) { return v + 1, true, false })
			}
		}(k)
	}
	wg.Wait()
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	s.Range(func(k uint64, v int) bool {
		if v != 100 {
			t.Fatalf("key %d = %d, want 100 (lost striped updates)", k, v)
		}
		return true
	})
	for k := uint64(0); k < keys; k++ {
		s.Delete(k)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after deletes = %d", s.Len())
	}
}
