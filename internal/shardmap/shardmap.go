// Package shardmap provides the two small concurrent-map shapes the Zeus
// hot paths are built on after the per-engine global locks were stripped
// (§5.2/§7: worker pipelines must never serialize on shared engine state):
//
//   - COW: a copy-on-write map with lock-free reads. Lookups cost one atomic
//     pointer load; inserts copy the map under a mutex. The right shape for
//     small, almost-static key sets read on every message — commit pipelines
//     (one per worker per node) are created once and looked up millions of
//     times.
//   - Striped: a fixed-stripe hash of mutex-guarded maps. Both lookups and
//     updates lock only their stripe, so operations on different objects or
//     requests proceed in parallel. The right shape for churning key sets —
//     pending ownership requests, overtaking-VAL stashes.
package shardmap

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// COW is a copy-on-write map: Get is a lock-free atomic load, mutations
// replace the whole map under a mutex. Zero value is ready to use.
type COW[K comparable, V any] struct {
	mu sync.Mutex
	m  atomic.Pointer[map[K]V]
}

// Get returns the value for k, lock-free.
func (c *COW[K, V]) Get(k K) (V, bool) {
	if m := c.m.Load(); m != nil {
		v, ok := (*m)[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// GetOrCreate returns the value for k, inserting mk() if absent. Creation is
// serialized; mk runs at most once per inserted key.
func (c *COW[K, V]) GetOrCreate(k K, mk func() V) V {
	if v, ok := c.Get(k); ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.m.Load()
	if old != nil {
		if v, ok := (*old)[k]; ok {
			return v
		}
	}
	next := make(map[K]V, 1+lenOf(old))
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	v := mk()
	next[k] = v
	c.m.Store(&next)
	return v
}

// Range calls fn for every entry of the current snapshot. Entries inserted
// concurrently may or may not be visited; fn must not mutate the map.
func (c *COW[K, V]) Range(fn func(K, V) bool) {
	m := c.m.Load()
	if m == nil {
		return
	}
	for k, v := range *m {
		if !fn(k, v) {
			return
		}
	}
}

// Len returns the size of the current snapshot.
func (c *COW[K, V]) Len() int { return lenOf(c.m.Load()) }

func lenOf[K comparable, V any](m *map[K]V) int {
	if m == nil {
		return 0
	}
	return len(*m)
}

// ScaledCount is the shared shard/stripe sizing policy for the concurrent
// maps Zeus hot paths are built on (this package's stripes, the store's
// shards): 8 per processor keeps lock contention negligible under full
// worker fan-out, clamped to a power of two in [64, 1024] — 64 matches the
// old compile-time constant, so small hosts behave exactly as before, and
// the cap bounds per-map memory on huge ones.
func ScaledCount(procs int) int {
	n := 64
	for n < 8*procs && n < 1024 {
		n <<= 1
	}
	return n
}

// stripeCount scales with the host (see ScaledCount).
var stripeCount = ScaledCount(runtime.GOMAXPROCS(0))

type stripe[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// Striped is a hash map split into stripeCount independently locked stripes.
// The zero value is NOT ready; use NewStriped.
type Striped[K comparable, V any] struct {
	stripes []stripe[K, V]
	mask    uint64
	hash    func(K) uint64
}

// NewStriped creates a striped map with the given key hash. Fibonacci-mix the
// hash input if keys are dense integers.
func NewStriped[K comparable, V any](hash func(K) uint64) *Striped[K, V] {
	s := &Striped[K, V]{
		stripes: make([]stripe[K, V], stripeCount),
		mask:    uint64(stripeCount - 1),
		hash:    hash,
	}
	for i := range s.stripes {
		s.stripes[i].m = make(map[K]V)
	}
	return s
}

func (s *Striped[K, V]) stripe(k K) *stripe[K, V] {
	return &s.stripes[s.hash(k)&s.mask]
}

// Get returns the value for k.
func (s *Striped[K, V]) Get(k K) (V, bool) {
	st := s.stripe(k)
	st.mu.Lock()
	v, ok := st.m[k]
	st.mu.Unlock()
	return v, ok
}

// Put inserts or replaces the value for k.
func (s *Striped[K, V]) Put(k K, v V) {
	st := s.stripe(k)
	st.mu.Lock()
	st.m[k] = v
	st.mu.Unlock()
}

// Delete removes k.
func (s *Striped[K, V]) Delete(k K) {
	st := s.stripe(k)
	st.mu.Lock()
	delete(st.m, k)
	st.mu.Unlock()
}

// Update runs fn with the stripe locked, passing the current value (or the
// zero value) and whether k was present; fn's return value is stored when
// store is true, and k is deleted when store is false but del is true.
// This is the striped analogue of a check-and-act sequence under one mutex.
func (s *Striped[K, V]) Update(k K, fn func(v V, ok bool) (nv V, store, del bool)) {
	st := s.stripe(k)
	st.mu.Lock()
	v, ok := st.m[k]
	nv, store, del := fn(v, ok)
	if store {
		st.m[k] = nv
	} else if del {
		delete(st.m, k)
	}
	st.mu.Unlock()
}

// Range calls fn for every entry, one stripe at a time (each stripe is
// snapshotted under its lock, then released before fn runs).
func (s *Striped[K, V]) Range(fn func(K, V) bool) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		keys := make([]K, 0, len(st.m))
		vals := make([]V, 0, len(st.m))
		for k, v := range st.m {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		st.mu.Unlock()
		for j := range keys {
			if !fn(keys[j], vals[j]) {
				return
			}
		}
	}
}

// Len returns the total entry count (taken stripe by stripe; approximate
// under concurrent mutation).
func (s *Striped[K, V]) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		n += len(s.stripes[i].m)
		s.stripes[i].mu.Unlock()
	}
	return n
}

// Mix64 is a Fibonacci/SplitMix-style integer mixer for dense keys.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
