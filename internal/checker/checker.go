// Package checker verifies strict serializability of recorded transaction
// histories — the executable counterpart of the paper's TLA+ model checking
// (§8, "Formal verification").
//
// It exploits the fact that Zeus objects are versioned with consecutive
// integers: given each transaction's read set (object → version observed)
// and write set (object → version installed), the history is serializable
// iff the version-induced precedence graph is acyclic, and *strictly*
// serializable iff it stays acyclic after adding real-time edges (T1 → T2
// whenever T1 responded before T2 was invoked). Both conditions are exact,
// not heuristic, under the consecutive-version discipline.
//
// Precedence edges:
//
//	w→w: writer of (obj, v)   → writer of (obj, v+1)
//	w→r: writer of (obj, v)   → reader of (obj, v)
//	r→w: reader of (obj, v)   → writer of (obj, v+1)
//	rt : T1 → T2 when T1.End < T2.Start
package checker

import (
	"fmt"
	"sort"
)

// Access is one versioned object access.
type Access struct {
	Obj uint64
	Ver uint64
}

// Tx is one committed transaction's footprint.
type Tx struct {
	// ID is a unique transaction identifier (for reporting).
	ID int
	// Start and End bound the transaction in real time (any monotonic
	// unit; only comparisons matter).
	Start, End int64
	// Reads holds (object, version observed); Writes holds (object,
	// version installed). A read-modify-write appears in both.
	Reads  []Access
	Writes []Access
}

// Violation describes a failed check.
type Violation struct {
	Kind  string
	Cycle []int // transaction IDs forming a cycle, when applicable
	Msg   string
}

func (v *Violation) Error() string {
	if len(v.Cycle) > 0 {
		return fmt.Sprintf("checker: %s: cycle %v: %s", v.Kind, v.Cycle, v.Msg)
	}
	return fmt.Sprintf("checker: %s: %s", v.Kind, v.Msg)
}

// Check verifies strict serializability; nil means the history is strictly
// serializable.
func Check(txs []Tx) error {
	if err := checkUniqueWriters(txs); err != nil {
		return err
	}
	g, err := buildGraph(txs, true)
	if err != nil {
		return err
	}
	if cyc := findCycle(g, txs); cyc != nil {
		return &Violation{Kind: "strict-serializability", Cycle: cyc,
			Msg: "no serial order consistent with versions and real time"}
	}
	return nil
}

// CheckSerializable verifies plain serializability (ignores real time).
func CheckSerializable(txs []Tx) error {
	if err := checkUniqueWriters(txs); err != nil {
		return err
	}
	g, err := buildGraph(txs, false)
	if err != nil {
		return err
	}
	if cyc := findCycle(g, txs); cyc != nil {
		return &Violation{Kind: "serializability", Cycle: cyc,
			Msg: "no serial order consistent with versions"}
	}
	return nil
}

// checkUniqueWriters rejects two transactions installing the same version.
func checkUniqueWriters(txs []Tx) error {
	writers := map[Access]int{}
	for i, t := range txs {
		for _, w := range t.Writes {
			if prev, dup := writers[w]; dup {
				return &Violation{Kind: "duplicate-version",
					Msg: fmt.Sprintf("tx %d and tx %d both installed obj %d v%d",
						txs[prev].ID, t.ID, w.Obj, w.Ver)}
			}
			writers[w] = i
		}
	}
	return nil
}

func buildGraph(txs []Tx, realTime bool) ([][]int, error) {
	n := len(txs)
	adj := make([][]int, n)
	add := func(a, b int) {
		if a != b {
			adj[a] = append(adj[a], b)
		}
	}
	writer := map[Access]int{}
	for i, t := range txs {
		for _, w := range t.Writes {
			writer[w] = i
		}
	}
	for i, t := range txs {
		// w→w and r→w edges via version succession.
		for _, w := range t.Writes {
			if next, ok := writer[Access{w.Obj, w.Ver + 1}]; ok {
				add(i, next)
			}
		}
		for _, r := range t.Reads {
			// The read observed version r.Ver: order after its writer…
			if src, ok := writer[Access{r.Obj, r.Ver}]; ok {
				add(src, i)
			}
			// …and before the writer of the next version.
			if next, ok := writer[Access{r.Obj, r.Ver + 1}]; ok {
				add(i, next)
			}
		}
	}
	if realTime {
		// Real-time edges. Sort by end time to add only the necessary
		// O(n log n + edges) precedence: every tx points to all txs that
		// start after it ends; to bound edges we link each tx to the
		// earliest-starting subsequent txs transitively via sorting.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return txs[order[a]].Start < txs[order[b]].Start })
		for i := 0; i < n; i++ {
			for _, j := range order {
				if txs[i].End < txs[j].Start {
					add(i, j)
					break // transitivity covers later starters
				}
			}
		}
	}
	return adj, nil
}

// findCycle returns the IDs of a cycle, or nil when acyclic.
func findCycle(adj [][]int, txs []Tx) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge: recover the cycle u→…→v.
				cycle = []int{txs[v].ID}
				for x := u; x != v && x != -1; x = parent[x] {
					cycle = append(cycle, txs[x].ID)
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for i := range adj {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}
