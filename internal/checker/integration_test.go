package checker_test

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/cluster"
	"zeus/internal/dbapi"
)

// TestZeusHistoryStrictlySerializable runs concurrent multi-object
// increments across a live Zeus cluster, records every committed
// transaction's versioned footprint, and feeds the history to the checker —
// the executable analogue of the paper's model-checked invariants.
func TestZeusHistoryStrictlySerializable(t *testing.T) {
	opts := cluster.DefaultOptions(3)
	opts.Workers = 4
	c := cluster.New(opts)
	defer c.Close()

	// Counters whose value IS their version: every write bumps by one.
	objs := []uint64{1, 2, 3}
	for _, o := range objs {
		c.SeedAt(wireObj(o), 0, u64(1)) // seeded as version 1
	}

	var mu sync.Mutex
	var history []checker.Tx
	nextID := 0

	record := func(tx checker.Tx) {
		mu.Lock()
		tx.ID = nextID
		nextID++
		history = append(history, tx)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for node := 0; node < 3; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			db := c.Node(node).DB()
			for i := 0; i < 15; i++ {
				a := objs[(node+i)%3]
				b := objs[(node+i+1)%3]
				if a == b {
					continue
				}
				rec, ok := incrementBoth(db, node, a, b)
				if !ok {
					t.Errorf("node %d op %d never committed", node, i)
					return
				}
				record(rec)
			}
		}(node)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := checker.Check(history); err != nil {
		t.Fatalf("history of %d transactions not strictly serializable: %v",
			len(history), err)
	}
	if err := checker.CheckSerializable(history); err != nil {
		t.Fatalf("history not even serializable: %v", err)
	}
}

// incrementBoth atomically bumps two counters, returning the versioned
// footprint of the successful attempt. Conflicts retry under the standard
// application loop (dbapi.Run): back-off matters here — a tight retry spin
// burns through the owner's transfer-fairness yield window (§6.2) faster
// than contending nodes can complete a handover, which livelocks the test
// on slow (-race, single-core) hosts.
func incrementBoth(db dbapi.DB, worker int, a, b uint64) (checker.Tx, bool) {
	var rec checker.Tx
	err := dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		start := time.Now().UnixNano()
		av, err := tx.Get(a)
		if err != nil {
			return err
		}
		bv, err := tx.Get(b)
		if err != nil {
			return err
		}
		aVer, bVer := val(av), val(bv)
		if err := tx.Set(a, u64(aVer+1)); err != nil {
			return err
		}
		if err := tx.Set(b, u64(bVer+1)); err != nil {
			return err
		}
		rec = checker.Tx{
			Start: start, End: 0, // End stamped after Commit returns
			Reads:  []checker.Access{{Obj: a, Ver: aVer}, {Obj: b, Ver: bVer}},
			Writes: []checker.Access{{Obj: a, Ver: aVer + 1}, {Obj: b, Ver: bVer + 1}},
		}
		return nil
	})
	if err != nil {
		return checker.Tx{}, false
	}
	rec.End = time.Now().UnixNano()
	return rec, true
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func val(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
