package checker

import (
	"strings"
	"testing"
)

func TestEmptyAndSingleHistories(t *testing.T) {
	if err := Check(nil); err != nil {
		t.Fatal(err)
	}
	h := []Tx{{ID: 1, Start: 0, End: 1,
		Reads:  []Access{{Obj: 1, Ver: 0}},
		Writes: []Access{{Obj: 1, Ver: 1}}}}
	if err := Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCounterOK(t *testing.T) {
	var h []Tx
	for i := 0; i < 10; i++ {
		h = append(h, Tx{
			ID: i, Start: int64(i * 10), End: int64(i*10 + 5),
			Reads:  []Access{{Obj: 1, Ver: uint64(i)}},
			Writes: []Access{{Obj: 1, Ver: uint64(i + 1)}},
		})
	}
	if err := Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// Two transactions read version 1 and both "increment": one installs
	// v2, the other v3 — but the v3 writer read v1, not v2: lost update.
	h := []Tx{
		{ID: 1, Start: 0, End: 10,
			Reads: []Access{{1, 1}}, Writes: []Access{{1, 2}}},
		{ID: 2, Start: 0, End: 10,
			Reads: []Access{{1, 1}}, Writes: []Access{{1, 3}}},
	}
	err := CheckSerializable(h)
	if err == nil {
		t.Fatal("lost update not detected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWriteSkewDetected(t *testing.T) {
	// Classic write skew: T1 reads x@1,y@1 writes x@2; T2 reads x@1,y@1
	// writes y@2. Each read the other's overwritten version → r-w edges in
	// both directions → cycle.
	h := []Tx{
		{ID: 1, Start: 0, End: 10,
			Reads:  []Access{{1, 1}, {2, 1}},
			Writes: []Access{{1, 2}}},
		{ID: 2, Start: 0, End: 10,
			Reads:  []Access{{1, 1}, {2, 1}},
			Writes: []Access{{2, 2}}},
	}
	if err := CheckSerializable(h); err == nil {
		t.Fatal("write skew not detected")
	}
}

func TestRealTimeViolationDetected(t *testing.T) {
	// T1 writes v2 and completes; T2 starts afterwards but reads v1:
	// serializable (T2 before T1) yet not *strictly* serializable.
	h := []Tx{
		{ID: 1, Start: 0, End: 10,
			Reads: []Access{{1, 1}}, Writes: []Access{{1, 2}}},
		{ID: 2, Start: 20, End: 30,
			Reads: []Access{{1, 1}}},
	}
	if err := CheckSerializable(h); err != nil {
		t.Fatalf("plain serializability should pass: %v", err)
	}
	if err := Check(h); err == nil {
		t.Fatal("stale read after real-time completion not detected")
	}
}

func TestDuplicateVersionDetected(t *testing.T) {
	h := []Tx{
		{ID: 1, Start: 0, End: 1, Writes: []Access{{1, 2}}},
		{ID: 2, Start: 2, End: 3, Writes: []Access{{1, 2}}},
	}
	err := Check(h)
	if err == nil || !strings.Contains(err.Error(), "duplicate-version") {
		t.Fatalf("duplicate version not detected: %v", err)
	}
}

func TestConcurrentInterleavingOK(t *testing.T) {
	// Overlapping transactions on different objects with a shared reader:
	// a legal concurrent history.
	h := []Tx{
		{ID: 1, Start: 0, End: 100, Reads: []Access{{1, 0}}, Writes: []Access{{1, 1}}},
		{ID: 2, Start: 0, End: 100, Reads: []Access{{2, 0}}, Writes: []Access{{2, 1}}},
		{ID: 3, Start: 50, End: 150, Reads: []Access{{1, 1}, {2, 0}}},
		{ID: 4, Start: 120, End: 200, Reads: []Access{{1, 1}, {2, 1}}},
	}
	if err := Check(h); err != nil {
		t.Fatal(err)
	}
}

func TestMultiObjectAtomicityViolation(t *testing.T) {
	// T1 writes x@2 and y@2 atomically. T2 observes x@2 with y@1 — it saw
	// half of T1. T3 then observes y@2 having responded... make the cycle:
	// T2 reads x@2 (after T1) and y@1 (before T1): T1→T2 and T2→T1.
	h := []Tx{
		{ID: 1, Start: 0, End: 10,
			Reads:  []Access{{1, 1}, {2, 1}},
			Writes: []Access{{1, 2}, {2, 2}}},
		{ID: 2, Start: 5, End: 15,
			Reads: []Access{{1, 2}, {2, 1}}},
	}
	if err := CheckSerializable(h); err == nil {
		t.Fatal("torn multi-object read not detected")
	}
}

func TestBlindWriteChainsOK(t *testing.T) {
	h := []Tx{
		{ID: 1, Start: 0, End: 1, Writes: []Access{{1, 1}}},
		{ID: 2, Start: 2, End: 3, Writes: []Access{{1, 2}}},
		{ID: 3, Start: 4, End: 5, Reads: []Access{{1, 2}}},
	}
	if err := Check(h); err != nil {
		t.Fatal(err)
	}
}
