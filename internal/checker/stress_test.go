package checker_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"zeus/internal/checker"
	"zeus/internal/cluster"
	"zeus/internal/dbapi"
)

// TestParallelPipelinesStrictlySerializable is the concurrency stress for the
// lock-stripped engines: every worker of every node runs transactions at
// once, with sharded dispatch forced on so the per-pipe/per-object handler
// goroutines are exercised even on single-core (-race) hosts. Each worker
// hammers a private object (disjoint keys: independent pipelines must never
// interfere) and, every few ops, a shared counter (overlapping keys:
// ownership arbitration + local-commit conflicts under full concurrency).
// The committed history must be strictly serializable.
func TestParallelPipelinesStrictlySerializable(t *testing.T) {
	const (
		nodes     = 3
		workers   = 4
		opsPerWkr = 10
		sharedN   = 2
	)
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = workers
	opts.DispatchShards = workers // force sharded dispatch regardless of GOMAXPROCS
	c := cluster.New(opts)
	defer c.Close()

	// Shared counters (contended) and one private counter per (node, worker)
	// (disjoint). Values double as versions: seeded as version 1.
	for s := 0; s < sharedN; s++ {
		c.SeedAt(wireObj(uint64(1+s)), 0, u64(1))
	}
	private := func(node, worker int) uint64 { return uint64(100 + node*16 + worker) }
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			c.SeedAt(wireObj(private(n, w)), wireNode(n), u64(1))
		}
	}

	var mu sync.Mutex
	var history []checker.Tx
	committed := make(map[uint64]int) // obj -> committed increments
	record := func(tx checker.Tx) {
		mu.Lock()
		tx.ID = len(history)
		history = append(history, tx)
		for _, wr := range tx.Writes {
			committed[wr.Obj]++
		}
		mu.Unlock()
	}

	increment := func(db dbapi.DB, worker int, obj uint64) error {
		var rec checker.Tx
		err := dbapi.Run(db, worker, func(tx dbapi.Txn) error {
			start := time.Now().UnixNano()
			v, err := tx.Get(obj)
			if err != nil {
				return err
			}
			ver := val(v)
			if err := tx.Set(obj, u64(ver+1)); err != nil {
				return err
			}
			rec = checker.Tx{
				Start:  start,
				Reads:  []checker.Access{{Obj: obj, Ver: ver}},
				Writes: []checker.Access{{Obj: obj, Ver: ver + 1}},
			}
			return nil
		})
		if err != nil {
			return err
		}
		rec.End = time.Now().UnixNano()
		record(rec)
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, nodes*workers)
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				db := c.Node(n).DB()
				for i := 0; i < opsPerWkr; i++ {
					obj := private(n, w)
					if i%3 == 2 {
						obj = uint64(1 + (n+w+i)%sharedN)
					}
					if err := increment(db, w, obj); err != nil {
						errs <- fmt.Errorf("node %d worker %d op %d obj %d: %w", n, w, i, obj, err)
						return
					}
				}
			}(n, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := checker.Check(history); err != nil {
		t.Fatalf("history of %d transactions not strictly serializable: %v",
			len(history), err)
	}

	// Drain the pipelines before auditing: replication is asynchronous
	// (§5.2), so replicas may legitimately lag the committed history until
	// the coordinators' slots validate. A pipeline that cannot drain (e.g.
	// a message stranded in a coalescer) is itself a liveness bug.
	if !c.WaitIdle(10 * time.Second) {
		t.Fatal("commit pipelines did not drain (stranded slots)")
	}

	// Every committed increment must be visible in the final values.
	mu.Lock()
	defer mu.Unlock()
	for obj, n := range committed {
		var final uint64
		err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
			v, err := tx.Get(obj)
			if err != nil {
				return err
			}
			final = val(v)
			return nil
		})
		if err != nil {
			t.Fatalf("final read of %d: %v", obj, err)
		}
		if final != uint64(1+n) {
			t.Fatalf("obj %d: final value %d, want %d (lost updates)", obj, final, 1+n)
		}
	}
}
