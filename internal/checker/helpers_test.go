package checker_test

import "zeus/internal/wire"

func wireObj(o uint64) wire.ObjectID { return wire.ObjectID(o) }
