package checker_test

import "zeus/internal/wire"

func wireObj(o uint64) wire.ObjectID { return wire.ObjectID(o) }

func wireNode(n int) wire.NodeID { return wire.NodeID(n) }
