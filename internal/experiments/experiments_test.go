package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny is a minimal scale so every experiment completes in test time.
var tiny = Scale{
	AccountsPerNode:    300,
	SubscribersPerNode: 300,
	VotersPerNode:      400,
	UsersPerNode:       200,
	Sessions:           100,
	Workers:            2,
	OpsPerWorker:       40,
	Duration:           250 * time.Millisecond,
	Interval:           50 * time.Millisecond,
	Packets:            1500,
}

func renders(t *testing.T, print func(*bytes.Buffer), want ...string) {
	t.Helper()
	var buf bytes.Buffer
	print(&buf)
	out := buf.String()
	if out == "" {
		t.Fatal("empty rendering")
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Handovers", "TATP")
}

func TestLocalityExperiment(t *testing.T) {
	r := Locality()
	if r.BostonRemoteHandovers6 <= r.BostonRemoteHandovers3 {
		t.Fatalf("boston fractions not monotonic: %+v", r)
	}
	if r.VenmoRemote3 <= 0 || r.VenmoRemote6 <= r.VenmoRemote3 {
		t.Fatalf("venmo fractions wrong: %+v", r)
	}
	if r.TPCCCalibrated < 0.02 || r.TPCCCalibrated > 0.03 {
		t.Fatalf("tpcc calibrated %.4f", r.TPCCCalibrated)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Venmo", "TPC-C")
}

func TestFig7Experiment(t *testing.T) {
	rows := Fig7(tiny)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IdealTps <= 0 || r.ZeusTps <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
		// At the tiny test scale timing noise dominates; only require the
		// two configurations to be within an order of magnitude. The
		// paper-shape assertion (Zeus within ~10% of ideal) is checked by
		// the full-scale harness (cmd/zeus-bench, EXPERIMENTS.md).
		if r.ZeusTps > r.IdealTps*10 || r.IdealTps > r.ZeusTps*10 {
			t.Fatalf("ideal vs zeus diverge beyond noise: %+v", r)
		}
	}
	renders(t, func(b *bytes.Buffer) { PrintFig7(b, rows) }, "Figure 7")
}

func TestFig8Experiment(t *testing.T) {
	rows := Fig8(tiny)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Zeus3PerNode <= 0 || rows[0].BaselinePerNode <= 0 {
		t.Fatalf("zero tput at 0%% remote: %+v", rows[0])
	}
	// The paper's shape: Zeus wins clearly at 0% remote (local txs vs
	// distributed commit). Allow tight-noise slack at the tiny scale.
	if rows[0].Zeus3PerNode < rows[0].BaselinePerNode*0.7 {
		t.Fatalf("Zeus slower than distributed commit at 0%% remote: %+v", rows[0])
	}
	// Zeus throughput decays as remote fraction rises (with noise slack).
	if rows[len(rows)-1].Zeus3PerNode > rows[0].Zeus3PerNode*1.3 {
		t.Fatalf("Zeus did not decay with remote fraction: first %+v last %+v",
			rows[0], rows[len(rows)-1])
	}
	renders(t, func(b *bytes.Buffer) { PrintSweep(b, "Figure 8: Smallbank", rows) }, "remote-%")
}

func TestFig9Experiment(t *testing.T) {
	rows := Fig9(tiny)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Zeus3PerNode < rows[0].BaselinePerNode*0.7 {
		t.Fatalf("Zeus slower than baseline at 0%% remote on read-heavy TATP: %+v", rows[0])
	}
}

func TestFig10Experiment(t *testing.T) {
	r := Fig10(tiny)
	if r.Moved == 0 || r.MoveRate <= 0 {
		t.Fatalf("no migration: %+v", r)
	}
	if len(r.Samples) == 0 || r.TotalVotes == 0 {
		t.Fatalf("no load: moved=%d votes=%d", r.Moved, r.TotalVotes)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 10", "move rate")
}

func TestFig11Experiment(t *testing.T) {
	r := Fig11(tiny)
	if r.HotMoved == 0 {
		t.Fatalf("no hot objects moved: %+v", r)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 11")
}

func TestFig12Experiment(t *testing.T) {
	r := Fig12(tiny)
	if r.Count == 0 {
		t.Fatal("no ownership latencies collected")
	}
	if r.P50 > r.P99 || r.P99 > r.Max {
		t.Fatalf("percentiles out of order: %+v", r)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 12")
}

func TestFig13Experiment(t *testing.T) {
	r := Fig13(tiny)
	if r.LocalTps <= 0 || r.BlockingTps <= 0 || r.Zeus1ActiveTps <= 0 || r.Zeus2ActiveTps <= 0 {
		t.Fatalf("zero throughput: %+v", r)
	}
	// Paper shape: the blocking store is the slowest configuration.
	if r.BlockingTps > r.Zeus1ActiveTps {
		t.Fatalf("blocking store beat Zeus: %+v", r)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 13")
}

func TestFig14Experiment(t *testing.T) {
	r := Fig14(tiny)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.NoReplMbps <= 0 || row.ZeusMbps <= 0 {
			t.Fatalf("zero goodput: %+v", row)
		}
		// Replication costs throughput (paper: ~40% at 1440B). At the
		// tiny test scale allow generous noise; only a large inversion
		// indicates a real problem. Under race the margin widens: the
		// zero-copy FabricMem commit path made the replicated run
		// materially faster while the unreplicated measurement keeps its
		// occasional instrumentation-induced collapses on starved hosts.
		margin := 2.0
		if raceEnabled {
			margin = 4.0
		}
		if row.ZeusMbps > row.NoReplMbps*margin {
			t.Fatalf("replicated much faster than unreplicated: %+v", row)
		}
	}
	// Larger packets give higher goodput.
	if r.Rows[1].ZeusMbps < r.Rows[0].ZeusMbps {
		t.Fatalf("1440B slower than 150B: %+v", r.Rows)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 14")
}

func TestFig15Experiment(t *testing.T) {
	r := Fig15(tiny)
	if r.OneProxyTps <= 0 || r.TwoProxyTps <= 0 || r.BackToOneTps <= 0 {
		t.Fatalf("zero rate: %+v", r)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Figure 15")
}

func TestAblationsExperiment(t *testing.T) {
	r := Ablations(tiny)
	if r.PipelinedTps <= 0 || r.BlockingTps <= 0 {
		t.Fatalf("zero tput: %+v", r)
	}
	// Pipelining must not be slower than blocking on every-tx replication.
	if r.PipelinedTps < r.BlockingTps*0.8 {
		t.Fatalf("pipelining slower than blocking: %+v", r)
	}
	for _, d := range []int{1, 2, 3} {
		if r.DegreeTps[d] <= 0 {
			t.Fatalf("degree %d zero tput", d)
		}
	}
	for _, l := range []int{0, 1, 5} {
		if r.LossTps[l] <= 0 {
			t.Fatalf("loss %d%% zero tput (messaging layer failed)", l)
		}
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Ablations")
}

func TestScalingExperiment(t *testing.T) {
	r := Scaling(tiny)
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Tps <= 0 || row.Ops <= 0 {
			t.Fatalf("workers=%d: empty row %+v", row.Workers, row)
		}
	}
	if r.Rows[0].Workers != 1 || r.Rows[0].Speedup != 1 {
		t.Fatalf("baseline row malformed: %+v", r.Rows[0])
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Scaling", "workers=8")
}

func TestReadScaleExperiment(t *testing.T) {
	r := ReadScale(tiny)
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 rows (2 mixes x 3 replica counts), got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ReadOps <= 0 || row.Tps <= 0 {
			t.Fatalf("empty row: %+v", row)
		}
		// The headline invariants hold at every point: snapshot reads are
		// served entirely by the reader replicas (zero ring reads at the
		// owner) and generate zero ownership traffic.
		if row.OwnerRingReads != 0 {
			t.Fatalf("owner served %d ring reads: %+v", row.OwnerRingReads, row)
		}
		if row.ReaderOwnReqs != 0 {
			t.Fatalf("readers issued %d ownership requests: %+v", row.ReaderOwnReqs, row)
		}
		if row.WritePct == 0 && row.WriteOps != 0 {
			t.Fatalf("100/0 mix committed writes: %+v", row)
		}
		if row.WritePct > 0 && row.WriteOps == 0 {
			t.Fatalf("95/5 mix committed no writes: %+v", row)
		}
	}
	if r.Rows[0].Replicas != 1 || r.Rows[0].Speedup != 1 {
		t.Fatalf("baseline row malformed: %+v", r.Rows[0])
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Readscale", "replicas=4", "mix  95/5")
}

func TestTransportExperiment(t *testing.T) {
	r := Transport(tiny)
	if r.Msgs == 0 || r.BatchedFrames == 0 || r.NoDelayFrames == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.BatchedFrames*4 > r.Msgs {
		t.Fatalf("batching inert: %d frames for %d msgs", r.BatchedFrames, r.Msgs)
	}
	// Race instrumentation slows delivery enough that delayed-ack timers
	// fire before the every-8th-frame counter does; only the un-instrumented
	// build asserts the tight coalescing ratio (see race_off.go).
	ackBound := 0.5
	if raceEnabled {
		ackBound = 4.0
	}
	if ratio := float64(r.BatchedAcks) / float64(r.BatchedFrames); ratio >= ackBound {
		t.Fatalf("ack coalescing inert: %.2f pure acks per data frame", ratio)
	}
	if r.NoDelayFrames != r.Msgs {
		t.Fatalf("no-delay mode must send one frame per message: %d frames for %d msgs", r.NoDelayFrames, r.Msgs)
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "Transport")
}

func TestSLOExperiment(t *testing.T) {
	r := SLOExp(tiny)
	if len(r.Rows) != 11 {
		t.Fatalf("matrix has %d rows, want 11", len(r.Rows))
	}
	if got, want := r.Rows[0].Key(), "epcgw/netsim/n3/r1000/const"; got != want {
		t.Fatalf("row key %q, want %q (SLO records are keyed on this)", got, want)
	}
	for _, row := range r.Rows {
		if row.Offered == 0 || row.Completed == 0 {
			t.Fatalf("row %s issued nothing: offered=%d done=%d", row.Key(), row.Offered, row.Completed)
		}
		if uint64(row.Offered) != row.Completed+row.Errors {
			t.Fatalf("row %s dropped slots: offered=%d done=%d err=%d — open loop must account for every arrival",
				row.Key(), row.Offered, row.Completed, row.Errors)
		}
		if !row.Pass {
			t.Errorf("row %s failed: %v (health: incidents=%d)", row.Key(), row.Violations, row.Health.Incidents)
		}
	}
	renders(t, func(b *bytes.Buffer) { r.Print(b) }, "SLO", "PASS", "tcp", "poisson", "ack_p99")
}
