package experiments

import (
	"fmt"
	"io"

	"zeus/internal/bench"
)

// Fig7Row is one bar group of Figure 7: Handovers, all-local ideal vs Zeus.
type Fig7Row struct {
	Nodes       int
	HandoverPct float64
	IdealTps    float64
	ZeusTps     float64
	GapPct      float64 // how far Zeus is from ideal (paper: 4–9 %)
}

// Fig7 runs the Handovers benchmark on 3 and 6 nodes at 2.5 % and 5 %
// handover ratios, against the all-local ideal.
func Fig7(s Scale) []Fig7Row {
	// Discard one run to absorb process warm-up (see sweep).
	warm := s
	warm.OpsPerWorker = s.OpsPerWorker / 2
	_ = runHandovers(warm, 3, 0.025, false)
	var rows []Fig7Row
	for _, nodes := range []int{3, 6} {
		for _, ratio := range []float64{0.025, 0.05} {
			ideal := runHandovers(s, nodes, ratio, true)
			zeus := runHandovers(s, nodes, ratio, false)
			gap := 0.0
			if ideal > 0 {
				gap = 100 * (ideal - zeus) / ideal
			}
			rows = append(rows, Fig7Row{
				Nodes: nodes, HandoverPct: ratio * 100,
				IdealTps: ideal, ZeusTps: zeus, GapPct: gap,
			})
		}
	}
	return rows
}

// runHandovers uses the in-memory fabric: Figure 7 compares Zeus against its
// own all-local ideal, so the signal is the fraction of work spent on
// ownership migrations rather than absolute network cost.
func runHandovers(s Scale, nodes int, ratio float64, ideal bool) float64 {
	c := newZeus(nodes, s.Workers)
	defer c.Close()
	cfg := bench.DefaultHandoverConfig(nodes)
	cfg.UsersPerNode = s.UsersPerNode
	cfg.HandoverRatio = ratio
	cfg.Ideal = ideal
	h := bench.NewHandovers(cfg)
	h.Seed(bench.ZeusSeeder(c))
	r := bench.Runner{
		Name: "handovers", DBs: bench.ZeusDBs(c, nodes),
		WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 11,
	}
	return r.Run(h.MakeOp).Tps()
}

// PrintFig7 renders the figure.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	printHeader(w, "Figure 7: Handovers — all-local (ideal) vs Zeus")
	for _, r := range rows {
		fmt.Fprintf(w, "  %d nodes, %.1f%% handovers: ideal %-12s zeus %-12s (gap %.1f%%, paper: 4–9%%)\n",
			r.Nodes, r.HandoverPct, fmtTps(r.IdealTps), fmtTps(r.ZeusTps), r.GapPct)
	}
}

// SweepRow is one x-point of Figures 8/9: throughput per node while varying
// the fraction of remote write transactions.
type SweepRow struct {
	RemotePct       float64
	Zeus3PerNode    float64
	Zeus6PerNode    float64
	BaselinePerNode float64 // OCC+2PC distributed commit (FaSST/FaRM-style)
}

// Fig8 sweeps Smallbank over remote-write fractions (paper: 0–20 %).
func Fig8(s Scale) []SweepRow {
	return sweep(s, []float64{0, 0.05, 0.10, 0.20}, runSmallbank)
}

// Fig9 sweeps TATP over remote-write fractions (paper: 0–40 %).
func Fig9(s Scale) []SweepRow {
	return sweep(s, []float64{0, 0.05, 0.10, 0.20, 0.40}, runTATP)
}

func sweep(s Scale, fracs []float64, run func(s Scale, nodes int, frac float64, baseline bool) float64) []SweepRow {
	// Discard one full run first: it absorbs process-level warm-up
	// (allocator growth, GC steady-state) that would otherwise skew the
	// first sweep points.
	warm := s
	warm.OpsPerWorker = s.OpsPerWorker / 2
	_ = run(warm, 3, fracs[0], false)
	_ = run(warm, 3, fracs[0], true)
	var rows []SweepRow
	for _, f := range fracs {
		rows = append(rows, SweepRow{
			RemotePct:       f * 100,
			Zeus3PerNode:    run(s, 3, f, false),
			Zeus6PerNode:    run(s, 6, f, false),
			BaselinePerNode: run(s, 3, f, true),
		})
	}
	return rows
}

func runSmallbank(s Scale, nodes int, frac float64, baselineSys bool) float64 {
	cfg := bench.DefaultSmallbankConfig(nodes)
	cfg.AccountsPerNode = s.AccountsPerNode
	cfg.RemoteWriteFrac = frac
	sb := bench.NewSmallbank(cfg)
	if baselineSys {
		d := bench.NewBaselineDeploymentSim(nodes, 3, simNetConfig())
		defer d.Close()
		sb.Seed(d.Seeder())
		r := bench.Runner{Name: "sb-baseline", DBs: d.DBs(), WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 21}
		return r.Run(sb.MakeOp).TpsPerNode()
	}
	c := newZeusSim(nodes, s.Workers)
	defer c.Close()
	sb.Seed(bench.ZeusSeeder(c))
	r := bench.Runner{Name: "sb-zeus", DBs: bench.ZeusDBs(c, nodes), WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 21}
	return r.Run(sb.MakeOp).TpsPerNode()
}

func runTATP(s Scale, nodes int, frac float64, baselineSys bool) float64 {
	cfg := bench.DefaultTATPConfig(nodes)
	cfg.SubscribersPerNode = s.SubscribersPerNode
	cfg.RemoteWriteFrac = frac
	tp := bench.NewTATP(cfg)
	if baselineSys {
		d := bench.NewBaselineDeploymentSim(nodes, 3, simNetConfig())
		defer d.Close()
		tp.Seed(d.Seeder())
		r := bench.Runner{Name: "tatp-baseline", DBs: d.DBs(), WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 22}
		return r.Run(tp.MakeOp).TpsPerNode()
	}
	c := newZeusSim(nodes, s.Workers)
	defer c.Close()
	tp.Seed(bench.ZeusSeeder(c))
	r := bench.Runner{Name: "tatp-zeus", DBs: bench.ZeusDBs(c, nodes), WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 22}
	return r.Run(tp.MakeOp).TpsPerNode()
}

// PrintSweep renders Figures 8/9.
func PrintSweep(w io.Writer, title string, rows []SweepRow) {
	printHeader(w, title)
	fmt.Fprintf(w, "  %-10s %-14s %-14s %-14s\n", "remote-%", "zeus-3/node", "zeus-6/node", "occ2pc/node")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10.0f %-14s %-14s %-14s\n",
			r.RemotePct, fmtTps(r.Zeus3PerNode), fmtTps(r.Zeus6PerNode), fmtTps(r.BaselinePerNode))
	}
}
