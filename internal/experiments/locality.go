package experiments

import (
	"fmt"
	"io"

	"zeus/internal/bench"
	"zeus/internal/mobility"
)

// Table2Result is the benchmark-characteristics table (Table 2).
type Table2Result struct {
	Rows []bench.BenchmarkInfo
}

// Table2 returns the paper's Table 2.
func Table2() Table2Result { return Table2Result{Rows: bench.Table2()} }

// Print renders the table.
func (r Table2Result) Print(w io.Writer) {
	printHeader(w, "Table 2: summary of evaluated benchmarks")
	for _, row := range r.Rows {
		fmt.Fprintln(w, " ", row)
	}
}

// LocalityResult is the §8 "Locality in workloads" analysis: the fraction of
// remote transactions in the three studied workloads.
type LocalityResult struct {
	// Boston cellular handovers.
	BostonRemoteHandovers3 float64 // remote handover fraction, 3 nodes
	BostonRemoteHandovers6 float64 // paper: up to 6.2 % on 6 nodes
	BostonRemoteTx         float64 // 5 % handovers × remote fraction (paper: 0.31 %)
	// Venmo payments.
	VenmoRemote3 float64 // paper: 0.7 %
	VenmoRemote6 float64 // paper: 1.2 %
	// TPC-C closed form.
	TPCCSpec       float64 // spec-mix formula
	TPCCCalibrated float64 // paper-calibrated (≈2.45 %)
}

// Locality runs the three analyses.
func Locality() LocalityResult {
	const trips = 20000
	const payments = 300000
	m3 := mobility.New(mobility.DefaultConfig(3))
	m6 := mobility.New(mobility.DefaultConfig(6))
	v3 := bench.NewVenmoGraph(bench.DefaultVenmoConfig(3))
	v6 := bench.NewVenmoGraph(bench.DefaultVenmoConfig(6))
	p := bench.DefaultTPCCParams(6)
	return LocalityResult{
		BostonRemoteHandovers3: m3.Analyze(trips).RemoteFraction(),
		BostonRemoteHandovers6: m6.Analyze(trips).RemoteFraction(),
		BostonRemoteTx:         m6.RemoteTransactionFraction(0.05, trips),
		VenmoRemote3:           v3.Analyze(payments).RemoteFraction(),
		VenmoRemote6:           v6.Analyze(payments).RemoteFraction(),
		TPCCSpec:               p.RemoteFraction(),
		TPCCCalibrated:         p.PaperCalibrated(),
	}
}

// Print renders the analysis with the paper's reference numbers.
func (r LocalityResult) Print(w io.Writer) {
	printHeader(w, "Locality in workloads (§8)")
	fmt.Fprintf(w, "  Boston handovers: remote %.1f%% @3 nodes, %.1f%% @6 nodes (paper: up to 6.2%% @6)\n",
		100*r.BostonRemoteHandovers3, 100*r.BostonRemoteHandovers6)
	fmt.Fprintf(w, "  Boston remote transactions @5%% handovers: %.2f%% (paper: 0.31%%)\n", 100*r.BostonRemoteTx)
	fmt.Fprintf(w, "  Venmo payments:  remote %.2f%% @3 nodes (paper 0.7%%), %.2f%% @6 nodes (paper 1.2%%)\n",
		100*r.VenmoRemote3, 100*r.VenmoRemote6)
	fmt.Fprintf(w, "  TPC-C:           spec formula %.2f%%, paper-calibrated %.2f%% (paper: 2.45%%)\n",
		100*r.TPCCSpec, 100*r.TPCCCalibrated)
}
