// Package experiments reproduces every table and figure of the paper's
// evaluation (§8). Each experiment is a function from a Scale (how big to
// run) to a printable result; cmd/zeus-bench and the repository's root
// benchmarks are thin wrappers around these.
//
// Absolute numbers differ from the paper — the substrate is an in-process
// simulated fabric, not a 40 Gbps DPDK testbed — but the comparisons (who
// wins, by what factor, where the crossovers fall) reproduce the paper's
// shapes. EXPERIMENTS.md records paper-vs-measured for every artefact.
package experiments

import (
	"fmt"
	"io"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/netsim"
	"zeus/internal/wire"
)

// Scale sizes an experiment run.
type Scale struct {
	// Entities per node for the OLTP workloads.
	AccountsPerNode    int
	SubscribersPerNode int
	VotersPerNode      int
	UsersPerNode       int
	Sessions           int
	// Load shape.
	Workers      int
	OpsPerWorker int
	// Timeline experiments.
	Duration time.Duration
	Interval time.Duration
	// SCTP transfer size (packets).
	Packets int
}

// Quick is the CI/benchmark scale (sub-second figures). Workers is kept low
// so the figure shapes survive CPU-oversubscribed hosts; raise it (or use
// Full) on many-core machines.
var Quick = Scale{
	AccountsPerNode:    2000,
	SubscribersPerNode: 2000,
	VotersPerNode:      2000,
	UsersPerNode:       1000,
	Sessions:           500,
	Workers:            2,
	OpsPerWorker:       400,
	Duration:           600 * time.Millisecond,
	Interval:           100 * time.Millisecond,
	Packets:            2000,
}

// Full is the CLI scale (seconds per figure, larger populations).
var Full = Scale{
	AccountsPerNode:    50000,
	SubscribersPerNode: 50000,
	VotersPerNode:      50000,
	UsersPerNode:       20000,
	Sessions:           5000,
	Workers:            8,
	OpsPerWorker:       3000,
	Duration:           6 * time.Second,
	Interval:           500 * time.Millisecond,
	Packets:            50000,
}

// newZeus builds a Zeus cluster over the perfect in-memory fabric (protocol
// dynamics experiments: migrations, latency CDFs, timelines).
func newZeus(nodes, workers int) *cluster.Cluster {
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = workers
	return cluster.New(opts)
}

// simNetConfig is the latency model for the throughput comparisons. It is a
// "slow-motion" fabric: 2–4 ms one-way latency (vs the paper testbed's tens
// of µs), chosen so that host timer granularity cannot distort the relative
// costs. Round trips dominate exactly the operations the paper says they
// dominate — remote accesses and blocking distributed commits — while Zeus'
// local pipelined transactions pay none, so the Figures 8/9/13 comparisons
// keep their shape with absolute numbers scaled down uniformly.
func simNetConfig() netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.MinLatency = 2 * time.Millisecond
	cfg.MaxLatency = 4 * time.Millisecond
	return cfg
}

// newZeusSim builds a Zeus cluster over the simulated fabric.
func newZeusSim(nodes, workers int) *cluster.Cluster {
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = workers
	opts.Fabric = cluster.FabricSim
	opts.Net = simNetConfig()
	return cluster.New(opts)
}

// fmtTps renders a throughput in human units.
func fmtTps(tps float64) string {
	switch {
	case tps >= 1e6:
		return fmt.Sprintf("%.2f Mtps", tps/1e6)
	case tps >= 1e3:
		return fmt.Sprintf("%.1f Ktps", tps/1e3)
	default:
		return fmt.Sprintf("%.0f tps", tps)
	}
}

// Table rendering helper.
func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// Conversion helpers for the wire id types.
func wireObj(o uint64) wire.ObjectID { return wire.ObjectID(o) }
func wireNode(n int) wire.NodeID     { return wire.NodeID(n) }
