package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"zeus/internal/apps/epcgw"
	"zeus/internal/apps/httplb"
	"zeus/internal/apps/sctpsim"
	"zeus/internal/bench"
	"zeus/internal/cluster"
	"zeus/internal/wire"
)

// Fig13Result is the packet-gateway control-plane comparison (§8.5,
// Figure 13): throughput of the four datastore configurations.
type Fig13Result struct {
	LocalTps       float64 // local memory, no replication
	BlockingTps    float64 // Redis-like blocking store (remote RPC per access)
	Zeus1ActiveTps float64 // Zeus, 1 active + 1 passive replica
	Zeus2ActiveTps float64 // Zeus, 2 active nodes (paper: +60 %)
}

// Fig13 runs the gateway on all four backends.
func Fig13(s Scale) Fig13Result {
	users := s.UsersPerNode
	ops := s.OpsPerWorker

	run := func(gws []*epcgw.Gateway, workers int) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		total := 0
		var mu sync.Mutex
		for gi, g := range gws {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(g *epcgw.Gateway, gi, w int) {
					defer wg.Done()
					done, _ := g.Drive(w, ops, rand.New(rand.NewSource(int64(gi*100+w))))
					mu.Lock()
					total += done
					mu.Unlock()
				}(g, gi, w)
			}
		}
		wg.Wait()
		return float64(total) / time.Since(start).Seconds()
	}

	// 1. Local memory: one gateway, one worker per user partition (the
	// real gateway's single-threaded local mode).
	ldb := epcgw.NewLocalDB()
	lcfg := epcgw.DefaultConfig(0, 1)
	lcfg.Users = users
	lg := epcgw.New(lcfg, ldb)
	lg.SeedObjects(func(obj uint64, home int, data []byte) { ldb.Seed(obj, data) })
	localTps := run([]*epcgw.Gateway{lg}, 1)

	// 2. Blocking store: baseline with a single primary (node 0) and the
	// gateway running on node 1 — every access is a blocking RPC over the
	// simulated fabric (real round-trip latency, like the paper's Redis).
	d := bench.NewBaselineDeploymentSim(2, 1, simNetConfig())
	bcfg := epcgw.DefaultConfig(0, 1)
	bcfg.Users = users
	bg := epcgw.New(bcfg, d.Nodes[1])
	bg.SeedObjects(func(obj uint64, home int, data []byte) {
		d.Nodes[0].Seed(wire.ObjectID(obj), 1, data)
	})
	blockingTps := run([]*epcgw.Gateway{bg}, 1)
	d.Close()

	// 3. Zeus, 1 active + 1 passive.
	c1 := clusterFor(2, s.Workers)
	zcfg := epcgw.DefaultConfig(0, 2)
	zcfg.Users = users
	zg := epcgw.New(zcfg, c1.Node(0).DB())
	zg.SeedObjects(func(obj uint64, home int, data []byte) {
		c1.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
	})
	zeus1Tps := run([]*epcgw.Gateway{zg}, 1)
	c1.Close()

	// 4. Zeus, 2 active nodes, each the other's replica.
	c2 := clusterFor(2, s.Workers)
	var gws []*epcgw.Gateway
	for n := 0; n < 2; n++ {
		cfg := epcgw.DefaultConfig(n, 2)
		cfg.Users = users
		g := epcgw.New(cfg, c2.Node(n).DB())
		g.SeedObjects(func(obj uint64, home int, data []byte) {
			c2.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
		})
		gws = append(gws, g)
	}
	zeus2Tps := run(gws, 1)
	c2.Close()

	return Fig13Result{
		LocalTps: localTps, BlockingTps: blockingTps,
		Zeus1ActiveTps: zeus1Tps, Zeus2ActiveTps: zeus2Tps,
	}
}

func clusterFor(nodes, workers int) *cluster.Cluster {
	opts := cluster.DefaultOptions(nodes)
	opts.Degree = 2
	opts.Workers = workers
	return cluster.New(opts)
}

// Print renders the comparison.
func (r Fig13Result) Print(w io.Writer) {
	printHeader(w, "Figure 13: cellular packet gateway control plane")
	fmt.Fprintf(w, "  local memory        : %s\n", fmtTps(r.LocalTps))
	fmt.Fprintf(w, "  blocking store      : %s   (paper: well below local)\n", fmtTps(r.BlockingTps))
	fmt.Fprintf(w, "  Zeus 1 active+1 pass: %s   (paper: ≈ local memory)\n", fmtTps(r.Zeus1ActiveTps))
	fmt.Fprintf(w, "  Zeus 2 active       : %s   (paper: ≈ +60%% over 1 active)\n", fmtTps(r.Zeus2ActiveTps))
}

// Fig14Result is the SCTP port measurement (§8.5, Figure 14): goodput with
// and without replication for two packet sizes.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Row is one packet-size group.
type Fig14Row struct {
	PacketBytes int
	NoReplMbps  float64
	ZeusMbps    float64
}

// Fig14 transfers a single flow through the SCTP-like association.
func Fig14(s Scale) Fig14Result {
	var rows []Fig14Row
	for _, pkt := range []int{150, 1440} {
		row := Fig14Row{PacketBytes: pkt}
		for _, degree := range []int{1, 2} {
			opts := cluster.DefaultOptions(2)
			opts.Degree = degree
			opts.Workers = s.Workers
			c := cluster.New(opts)
			cfg := sctpsim.DefaultConfig()
			c.SeedAt(wire.ObjectID(1), 0, sctpsim.InitialState(cfg).Encode(cfg.StateSize))
			a := sctpsim.New(cfg, c.Node(0).DB(), 1, 0)
			start := time.Now()
			res, err := a.Transfer(s.Packets, pkt)
			elapsed := time.Since(start)
			c.Close()
			if err != nil {
				continue
			}
			mbps := float64(res.Bytes) * 8 / elapsed.Seconds() / 1e6
			if degree == 1 {
				row.NoReplMbps = mbps
			} else {
				row.ZeusMbps = mbps
			}
		}
		rows = append(rows, row)
	}
	return Fig14Result{Rows: rows}
}

// Print renders the comparison.
func (r Fig14Result) Print(w io.Writer) {
	printHeader(w, "Figure 14: SCTP throughput (single flow, per-packet state transactions)")
	for _, row := range r.Rows {
		drop := 0.0
		if row.NoReplMbps > 0 {
			drop = 100 * (row.NoReplMbps - row.ZeusMbps) / row.NoReplMbps
		}
		fmt.Fprintf(w, "  %4dB packets: no-repl %8.1f Mbps   zeus %8.1f Mbps   (drop %.0f%%; paper: ~40%% @1440B)\n",
			row.PacketBytes, row.NoReplMbps, row.ZeusMbps, drop)
	}
}

// Fig15Result is the Nginx-style scale-out/in timeline (§8.5, Figure 15).
type Fig15Result struct {
	Interval time.Duration
	// Phases: rate with 1 proxy, with 2 proxies (scale-out), back to 1.
	OneProxyTps  float64
	TwoProxyTps  float64
	BackToOneTps float64
	Misses       uint64
}

// Fig15 measures session-persistent HTTP routing through Zeus while scaling
// a second proxy node out and back in.
func Fig15(s Scale) Fig15Result {
	opts := cluster.DefaultOptions(2)
	opts.Degree = 2
	opts.Workers = s.Workers
	c := cluster.New(opts)
	defer c.Close()

	cfg := httplb.DefaultConfig(0, 2)
	cfg.Sessions = s.Sessions
	p0 := httplb.New(cfg, c.Node(0).DB())
	p0.SeedObjects(func(obj uint64, home int, data []byte) {
		c.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
	})
	p1 := httplb.New(cfg, c.Node(1).DB())

	drive := func(proxies []*httplb.Proxy, d time.Duration) float64 {
		var total uint64
		var mu sync.Mutex
		var wg sync.WaitGroup
		stop := make(chan struct{})
		time.AfterFunc(d, func() { close(stop) })
		start := time.Now()
		for pi, p := range proxies {
			for w := 0; w < s.Workers; w++ {
				wg.Add(1)
				go func(p *httplb.Proxy, pi, w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(pi*100 + w)))
					n := uint64(0)
					for {
						select {
						case <-stop:
							mu.Lock()
							total += n
							mu.Unlock()
							return
						default:
						}
						if _, err := p.Handle(w, rng.Intn(s.Sessions), rng); err == nil {
							n++
						}
					}
				}(p, pi, w)
			}
		}
		wg.Wait()
		return float64(total) / time.Since(start).Seconds()
	}

	third := s.Duration / 3
	one := drive([]*httplb.Proxy{p0}, third)
	two := drive([]*httplb.Proxy{p0, p1}, third) // scale-out
	back := drive([]*httplb.Proxy{p0}, third)    // scale-in
	_, misses := p0.Stats()
	return Fig15Result{
		Interval: s.Interval, OneProxyTps: one, TwoProxyTps: two,
		BackToOneTps: back, Misses: misses,
	}
}

// Print renders the phases.
func (r Fig15Result) Print(w io.Writer) {
	printHeader(w, "Figure 15: Nginx-style session persistence under scale-out/in")
	fmt.Fprintf(w, "  1 proxy : %s\n", fmtTps(r.OneProxyTps))
	fmt.Fprintf(w, "  2 proxies (scale-out): %s\n", fmtTps(r.TwoProxyTps))
	fmt.Fprintf(w, "  1 proxy (scale-in)  : %s\n", fmtTps(r.BackToOneTps))
	fmt.Fprintf(w, "  assignment misses=%d (sessions assigned once, sticky after)\n", r.Misses)
}
