package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"zeus/internal/netsim"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// TransportResult is the transport-batching ablation: the same one-way
// message stream over the lossy-capable reliable transport with batching and
// delayed acks on (the default) versus off (NoDelay, the pre-batching
// behaviour). The paper's messaging layer lives below every protocol number
// in §8, so frames-per-message and acks-per-frame are the constant factors
// Didona et al. argue dominate systems like this.
type TransportResult struct {
	Msgs uint64

	BatchedFrames   uint64  // data frames (batching on)
	BatchedAcks     uint64  // pure-ack frames (batching on)
	BatchedMsgsPerS float64 // delivered throughput (batching on)

	NoDelayFrames   uint64
	NoDelayAcks     uint64
	NoDelayMsgsPerS float64
}

// Transport runs the batching ablation on a clean two-node fabric.
func Transport(s Scale) TransportResult {
	msgs := uint64(s.OpsPerWorker) * 25
	if msgs < 2000 {
		msgs = 2000
	}
	res := TransportResult{Msgs: msgs}
	run := func(noDelay bool) (frames, acks uint64, rate float64) {
		n := netsim.New(netsim.Config{
			Seed:       11,
			MinLatency: 5 * time.Microsecond,
			MaxLatency: 20 * time.Microsecond,
			InboxDepth: 1 << 15,
		})
		defer n.Close()
		rc := transport.ReliableConfig{RTO: 2 * time.Millisecond, NoDelay: noDelay}
		a := transport.NewReliable(n.Endpoint(0), rc)
		b := transport.NewReliable(n.Endpoint(1), rc)
		defer a.Close()
		defer b.Close()
		done := make(chan struct{})
		var got atomic.Uint64
		b.SetHandler(func(wire.NodeID, wire.Msg) {
			if got.Add(1) == msgs {
				close(done)
			}
		})
		start := time.Now()
		for i := uint64(0); i < msgs; i++ {
			_ = a.Send(1, &wire.CommitVal{Tx: wire.TxID{Local: i}})
		}
		a.Flush()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
		}
		elapsed := time.Since(start)
		return a.DataFramesSent(), b.PureAcksSent(), float64(got.Load()) / elapsed.Seconds()
	}
	res.BatchedFrames, res.BatchedAcks, res.BatchedMsgsPerS = run(false)
	res.NoDelayFrames, res.NoDelayAcks, res.NoDelayMsgsPerS = run(true)
	return res
}

// Print renders the ablation.
func (r TransportResult) Print(w io.Writer) {
	printHeader(w, "Transport: frame batching + delayed acks vs per-message frames")
	row := func(name string, frames, acks uint64, rate float64) {
		fmt.Fprintf(w, "  %-10s %7d msgs  %6d data frames (%.1f msg/frame)  %6d pure acks (%.2f ack/frame)  %s msg/s\n",
			name, r.Msgs, frames, float64(r.Msgs)/float64(frames), acks,
			float64(acks)/float64(frames), fmtTps(rate))
	}
	row("batched", r.BatchedFrames, r.BatchedAcks, r.BatchedMsgsPerS)
	row("no-delay", r.NoDelayFrames, r.NoDelayAcks, r.NoDelayMsgsPerS)
	fmt.Fprintf(w, "  frame reduction %.1fx, ack reduction %.1fx\n",
		float64(r.NoDelayFrames)/float64(r.BatchedFrames),
		float64(r.NoDelayAcks)/float64(max64(r.BatchedAcks, 1)))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
