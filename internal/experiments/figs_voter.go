package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"zeus/internal/bench"
	"zeus/internal/cluster"
	"zeus/internal/dbapi"
	"zeus/internal/obs"
	"zeus/internal/wire"
)

// latQuantiles folds a latency histogram snapshot into the _p50/_p99/_p999
// fields every experiment reports (the same quantile estimator the obs
// registry renders and the load harness gates on).
type latQuantiles struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

func quantilesOf(s obs.HistSnapshot) latQuantiles {
	q := latQuantiles{
		Count: s.Count,
		P50:   time.Duration(s.Quantile(0.50)),
		P99:   time.Duration(s.Quantile(0.99)),
		P999:  time.Duration(s.Quantile(0.999)),
		Max:   time.Duration(s.Max()),
	}
	if s.Count > 0 {
		q.Mean = time.Duration(s.Sum / s.Count)
	}
	return q
}

func (q latQuantiles) String() string {
	return fmt.Sprintf("latency_p50=%v latency_p99=%v latency_p999=%v max=%v",
		q.P50.Round(time.Microsecond), q.P99.Round(time.Microsecond),
		q.P999.Round(time.Microsecond), q.Max.Round(time.Microsecond))
}

// Fig10Result is the Voter bulk-migration experiment (§8.4, Figure 10): a
// voter population entirely on node 0, moved wholesale to node 1 and then to
// node 2 while the vote load keeps running; votes follow the objects.
type Fig10Result struct {
	Voters     int
	Interval   time.Duration
	Samples    [][]uint64 // per-interval committed votes per node
	Moved      int
	MoveRate   float64 // objects/second for a single mover worker
	TotalVotes uint64
	// Latency summarizes committed-vote service latency (obs histogram).
	Latency latQuantiles
}

// voterExperiment is the shared machinery of Figures 10–12.
type voterExperiment struct {
	c        *cluster.Cluster
	nodes    int
	voters   int
	voterObj func(i int) uint64
	// location: voters with index < progress are at dst; others at src.
	src, dst atomic.Int32
	progress atomic.Int64
}

func newVoterExperiment(s Scale, nodes int, onLat func(time.Duration)) *voterExperiment {
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = s.Workers
	opts.OnOwnershipLatency = onLat
	c := cluster.New(opts)
	v := &voterExperiment{c: c, nodes: nodes, voters: s.VotersPerNode}
	v.voterObj = func(i int) uint64 { return 1_000_000 + uint64(i) }
	// All voters start on node 0 (the paper's setup).
	for i := 0; i < v.voters; i++ {
		c.SeedAt(wire.ObjectID(v.voterObj(i)), 0, bench.Pad(0, 32))
	}
	// One contestant-total object per (node, worker) pair so vote totals
	// never serialize across workers.
	for n := 0; n < nodes; n++ {
		for w := 0; w < s.Workers; w++ {
			c.SeedAt(wire.ObjectID(v.contestantObj(n, w, s.Workers)), wire.NodeID(n), bench.Pad(0, 32))
		}
	}
	v.src.Store(0)
	v.dst.Store(0)
	return v
}

func (v *voterExperiment) contestantObj(node, worker, workers int) uint64 {
	return 500_000 + uint64(node*workers+worker)
}

// pickVoter returns a voter index currently located at node, or -1.
func (v *voterExperiment) pickVoter(node int, rng *rand.Rand) int {
	p := int(v.progress.Load())
	src, dst := int(v.src.Load()), int(v.dst.Load())
	switch {
	case node == dst && p > 0:
		return rng.Intn(p)
	case node == src && p < v.voters:
		return p + rng.Intn(v.voters-p)
	default:
		return -1
	}
}

// makeOp builds the vote operation for one node: vote for a voter currently
// located here plus this worker's contestant total.
func (v *voterExperiment) makeOp(workers int) func(node int, db dbapi.DB) bench.Op {
	return func(node int, db dbapi.DB) bench.Op {
		return func(worker int, rng *rand.Rand) error {
			i := v.pickVoter(node, rng)
			if i < 0 {
				// No voters here right now (pre/post migration):
				// idle briefly; not counted as a committed vote.
				time.Sleep(200 * time.Microsecond)
				return dbapi.ErrConflict
			}
			voter := v.voterObj(i)
			contestant := v.contestantObj(node, worker, workers)
			return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
				hv, err := tx.Get(voter)
				if err != nil {
					return err
				}
				cv, err := tx.Get(contestant)
				if err != nil {
					return err
				}
				if err := tx.Set(voter, bench.Pad(bench.FromU64(hv)+1, 32)); err != nil {
					return err
				}
				return tx.Set(contestant, bench.Pad(bench.FromU64(cv)+1, 32))
			})
		}
	}
}

// moveAll migrates every voter object to dstNode with one mover worker,
// updating progress so the load follows; returns the migration rate.
func (v *voterExperiment) moveAll(dstNode int) (int, float64) {
	v.dst.Store(int32(dstNode))
	v.progress.Store(0)
	dst := v.c.Node(dstNode)
	start := time.Now()
	moved := 0
	for i := 0; i < v.voters; i++ {
		if err := dst.OwnershipEngine().AcquireOwnership(wire.ObjectID(v.voterObj(i))); err == nil {
			moved++
		}
		v.progress.Store(int64(i + 1))
	}
	elapsed := time.Since(start)
	v.src.Store(int32(dstNode))
	rate := float64(moved) / elapsed.Seconds()
	return moved, rate
}

// Fig10 runs the migration-under-load experiment on 3 nodes.
func Fig10(s Scale) Fig10Result {
	v := newVoterExperiment(s, 3, nil)
	defer v.c.Close()
	var moved int
	var rate float64
	moverDone := make(chan struct{})
	go func() {
		defer close(moverDone)
		// Let the load warm up, then move 0→1, then 1→2.
		time.Sleep(s.Duration / 4)
		m1, r1 := v.moveAll(1)
		time.Sleep(s.Duration / 8)
		m2, r2 := v.moveAll(2)
		moved = m1 + m2
		rate = (r1 + r2) / 2
	}()
	lats := &obs.Histogram{}
	tr := bench.TimedRunner{
		Name: "fig10", DBs: bench.ZeusDBs(v.c, 3),
		WorkersPerNode: s.Workers, Duration: s.Duration, Seed: 31,
		Latencies: lats,
	}
	samples, total := tr.RunTimed(v.makeOp(s.Workers), s.Interval)
	<-moverDone // migrations may outlast the load window
	return Fig10Result{
		Voters: v.voters, Interval: s.Interval, Samples: samples,
		Moved: moved, MoveRate: rate, TotalVotes: total.Ops,
		Latency: quantilesOf(lats.Snapshot()),
	}
}

// Print renders the timeline.
func (r Fig10Result) Print(w io.Writer) {
	printHeader(w, "Figure 10: Voter — moving all voter objects across nodes under load")
	fmt.Fprintf(w, "  voters=%d, moved=%d, single-worker move rate=%.0f obj/s (paper: 25k obj/s/worker)\n",
		r.Voters, r.Moved, r.MoveRate)
	fmt.Fprintf(w, "  per-%v committed votes per node:\n", r.Interval)
	for i, row := range r.Samples {
		fmt.Fprintf(w, "   t=%-6s node0=%-8d node1=%-8d node2=%-8d\n",
			time.Duration(i+1)*r.Interval, row[0], row[1], row[2])
	}
	fmt.Fprintf(w, "  total votes: %d\n", r.TotalVotes)
	fmt.Fprintf(w, "  vote %s\n", r.Latency)
}

// Fig11Result is the concurrent-migration experiment (§8.4, Figure 11): a
// hot contestant's voters migrate while the rest of the system sustains its
// load; migration must not dent the background throughput.
type Fig11Result struct {
	Interval         time.Duration
	Samples          [][]uint64
	HotMoved         int
	HotMoveRate      float64
	BackgroundBefore float64 // background tps while migration idle
	BackgroundDuring float64 // background tps while migrating
	// Latency summarizes committed-vote service latency across both phases.
	Latency latQuantiles
}

// Fig11 runs the hot-object migration concurrently with steady load.
func Fig11(s Scale) Fig11Result {
	// Background: a plain voter workload across 3 nodes.
	c := newZeus(3, s.Workers)
	defer c.Close()
	cfg := bench.DefaultVoterConfig(3)
	cfg.VotersPerNode = s.VotersPerNode
	vt := bench.NewVoter(cfg)
	vt.Seed(bench.ZeusSeeder(c))
	// Hot set: a dedicated block of voters on node 0, moved by one worker.
	hot := s.VotersPerNode / 10
	if hot < 100 {
		hot = 100
	}
	hotObj := func(i int) uint64 { return 2_000_000 + uint64(i) }
	for i := 0; i < hot; i++ {
		c.SeedAt(wire.ObjectID(hotObj(i)), 0, bench.Pad(0, 32))
	}

	var hotMoved atomic.Int64
	var hotRate float64
	var migrating atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(s.Duration / 4)
		migrating.Store(true)
		start := time.Now()
		for _, dst := range []int{1, 2} {
			for i := 0; i < hot; i++ {
				if err := c.Node(dst).OwnershipEngine().AcquireOwnership(wire.ObjectID(hotObj(i))); err == nil {
					hotMoved.Add(1)
				}
			}
		}
		hotRate = float64(hotMoved.Load()) / time.Since(start).Seconds()
		migrating.Store(false)
	}()

	var duringOps, duringNs, beforeOps, beforeNs atomic.Int64
	lats := &obs.Histogram{}
	tr := bench.TimedRunner{
		Name: "fig11", DBs: bench.ZeusDBs(c, 3),
		WorkersPerNode: s.Workers, Duration: s.Duration, Seed: 32,
		Latencies: lats,
	}
	makeOp := func(node int, db dbapi.DB) bench.Op {
		inner := vt.MakeOp(node, db)
		return func(worker int, rng *rand.Rand) error {
			t0 := time.Now()
			err := inner(worker, rng)
			dt := time.Since(t0).Nanoseconds()
			if err == nil {
				if migrating.Load() {
					duringOps.Add(1)
					duringNs.Add(dt)
				} else {
					beforeOps.Add(1)
					beforeNs.Add(dt)
				}
			}
			return err
		}
	}
	samples, _ := tr.RunTimed(makeOp, s.Interval)
	<-done

	// Per-op service rate (ops per busy-second): comparable across phases
	// of different lengths; a migration-induced dent would show here.
	tput := func(ops, ns int64) float64 {
		if ns == 0 {
			return 0
		}
		return float64(ops) / (float64(ns) / 1e9)
	}
	return Fig11Result{
		Interval: s.Interval, Samples: samples,
		HotMoved: int(hotMoved.Load()), HotMoveRate: hotRate,
		BackgroundBefore: tput(beforeOps.Load(), beforeNs.Load()),
		BackgroundDuring: tput(duringOps.Load(), duringNs.Load()),
		Latency:          quantilesOf(lats.Snapshot()),
	}
}

// Print renders the experiment.
func (r Fig11Result) Print(w io.Writer) {
	printHeader(w, "Figure 11: Voter — votes concurrent with hot-object migration")
	fmt.Fprintf(w, "  hot objects moved=%d at %.0f obj/s by one worker (paper: 25k obj/s)\n",
		r.HotMoved, r.HotMoveRate)
	fmt.Fprintf(w, "  background per-op throughput: before %.0f op/s, during migration %.0f op/s\n",
		r.BackgroundBefore, r.BackgroundDuring)
	fmt.Fprintf(w, "  vote %s\n", r.Latency)
	fmt.Fprintf(w, "  per-%v committed votes per node:\n", r.Interval)
	for i, row := range r.Samples {
		fmt.Fprintf(w, "   t=%-6s node0=%-8d node1=%-8d node2=%-8d\n",
			time.Duration(i+1)*r.Interval, row[0], row[1], row[2])
	}
}

// Fig12Result is the ownership-latency CDF (§8.4, Figure 12), summarized
// through the same log-linear obs histogram every latency artefact uses
// (quantiles are bucket upper bounds, relative error ≤ 1/4).
type Fig12Result struct {
	latQuantiles
}

// Fig12 harvests ownership-request latencies during a bulk migration under
// load (the paper's "moving 100K hot voters" case).
func Fig12(s Scale) Fig12Result {
	ownLat := &obs.Histogram{}
	v := newVoterExperiment(s, 3, func(d time.Duration) {
		ownLat.Record(uint64(d))
	})
	defer v.c.Close()
	go func() {
		time.Sleep(s.Duration / 4)
		v.moveAll(1)
	}()
	tr := bench.TimedRunner{
		Name: "fig12", DBs: bench.ZeusDBs(v.c, 3),
		WorkersPerNode: s.Workers, Duration: s.Duration, Seed: 33,
	}
	tr.RunTimed(v.makeOp(s.Workers), s.Interval)
	return Fig12Result{quantilesOf(ownLat.Snapshot())}
}

// Print renders the CDF summary.
func (r Fig12Result) Print(w io.Writer) {
	printHeader(w, "Figure 12: CDF of ownership request latency")
	fmt.Fprintf(w, "  samples=%d mean=%v %s\n",
		r.Count, r.Mean.Round(time.Microsecond), r.latQuantiles)
	fmt.Fprintf(w, "  (paper: mean 17–29 µs, p99.9 36–83 µs on 40Gb DPDK hardware)\n")
}
