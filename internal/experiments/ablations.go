package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"zeus/internal/bench"
	"zeus/internal/cluster"
	"zeus/internal/dbapi"
	"zeus/internal/netsim"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// the pipelined reliable commit (§5.2), the replication-degree trade-off
// (§3.1), and fault tolerance of the messaging layer (§3.1).
type AblationResult struct {
	// Pipelining: same write stream with and without waiting for
	// replication per transaction (the paper's core programmability and
	// performance claim — distributed commit blocks, Zeus does not).
	// Unlike the single-run sweeps below, this pair is measured best-of-3
	// with an op floor of 200/worker (both modes identically), because the
	// Pipelined/Blocking *ratio* is asserted by tests and single short
	// runs measure scheduler noise; compare the two against each other,
	// not against DegreeTps/LossTps.
	PipelinedTps float64
	BlockingTps  float64
	// Replication degree sweep (degree → tps).
	DegreeTps map[int]float64
	// Loss-rate sweep over the simulated fabric (loss % → tps); correct
	// completion under loss demonstrates the reliable messaging layer.
	LossTps map[int]float64
}

// Ablations runs all three studies.
func Ablations(s Scale) AblationResult {
	res := AblationResult{DegreeTps: map[int]float64{}, LossTps: map[int]float64{}}

	// --- Pipelining on/off ---
	// Short streams measure goroutine startup more than the protocols, so
	// the pair gets an op floor and the best of three runs each — the
	// standard de-noising for a throughput comparison on a shared host.
	{
		ps := s
		if ps.OpsPerWorker < 200 {
			ps.OpsPerWorker = 200
		}
		for i := 0; i < 3; i++ {
			c := newZeus(3, ps.Workers)
			if tps := ablationWriteStream(c, ps, false); tps > res.PipelinedTps {
				res.PipelinedTps = tps
			}
			c.Close()
			c2 := newZeus(3, ps.Workers)
			if tps := ablationWriteStream(c2, ps, true); tps > res.BlockingTps {
				res.BlockingTps = tps
			}
			c2.Close()
		}
	}

	// --- Replication degree ---
	for _, degree := range []int{1, 2, 3} {
		opts := cluster.DefaultOptions(3)
		opts.Degree = degree
		opts.Workers = s.Workers
		c := cluster.New(opts)
		res.DegreeTps[degree] = ablationWriteStream(c, s, false)
		c.Close()
	}

	// --- Loss tolerance ---
	for _, lossPct := range []int{0, 1, 5} {
		opts := cluster.DefaultOptions(3)
		opts.Workers = 2
		opts.Fabric = cluster.FabricSim
		opts.Net = netsim.Config{
			Seed:       int64(lossPct) + 1,
			MinLatency: 5 * time.Microsecond,
			MaxLatency: 30 * time.Microsecond,
			LossProb:   float64(lossPct) / 100,
			DupProb:    float64(lossPct) / 200,
			InboxDepth: 1 << 14,
		}
		c := cluster.New(opts)
		small := s
		small.OpsPerWorker = s.OpsPerWorker / 4
		if small.OpsPerWorker < 20 {
			small.OpsPerWorker = 20
		}
		small.Workers = 2
		res.LossTps[lossPct] = ablationWriteStream(c, small, false)
		c.Close()
	}
	return res
}

// ablationWriteStream runs a per-worker private-object write stream — pure
// reliable-commit throughput with no contention — optionally waiting for
// replication after every transaction (blocking mode).
func ablationWriteStream(c *cluster.Cluster, s Scale, blocking bool) float64 {
	nodes := c.Nodes()
	// One private object per (node, worker).
	obj := func(node, worker int) uint64 {
		return 3_000_000 + uint64(node*1000+worker)
	}
	for n := 0; n < nodes; n++ {
		for w := 0; w < s.Workers; w++ {
			c.SeedAt(wireObj(obj(n, w)), wireNode(n), bench.Pad(0, 128))
		}
	}
	r := bench.Runner{
		Name: "ablation", DBs: bench.ZeusDBs(c, nodes),
		WorkersPerNode: s.Workers, OpsPerWorker: s.OpsPerWorker, Seed: 41,
	}
	res := r.Run(func(node int, db dbapi.DB) bench.Op {
		zn := c.Node(node)
		return func(worker int, rng *rand.Rand) error {
			o := obj(node, worker)
			tx := zn.BeginOn(worker)
			v, err := tx.Get(o)
			if err != nil {
				tx.Abort()
				return err
			}
			if err := tx.Set(o, bench.Pad(bench.FromU64(v)+1, 128)); err != nil {
				tx.Abort()
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			if blocking {
				// No-pipelining ablation: wait for the reliable
				// commit like a conventional datastore would.
				if d := tx.Durable(); d != nil {
					<-d
				}
			}
			return nil
		}
	})
	return res.Tps()
}

// Print renders the ablations.
func (r AblationResult) Print(w io.Writer) {
	printHeader(w, "Ablations: pipelining, replication degree, loss tolerance")
	speedup := 0.0
	if r.BlockingTps > 0 {
		speedup = r.PipelinedTps / r.BlockingTps
	}
	fmt.Fprintf(w, "  pipelined commit : %s\n", fmtTps(r.PipelinedTps))
	fmt.Fprintf(w, "  blocking commit  : %s  (pipelining speedup %.1fx)\n", fmtTps(r.BlockingTps), speedup)
	for _, d := range []int{1, 2, 3} {
		fmt.Fprintf(w, "  replication degree %d: %s\n", d, fmtTps(r.DegreeTps[d]))
	}
	for _, l := range []int{0, 1, 5} {
		fmt.Fprintf(w, "  %d%% message loss: %s (all transactions complete)\n", l, fmtTps(r.LossTps[l]))
	}
}
