package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/loadgen"
	"zeus/internal/obs"
)

// DefaultSLO is the in-run latency objective for every matrix point: wide
// enough that a healthy run on a loaded 1-vCPU CI host passes with margin
// (quick-scale p99s sit well under 10 ms), tight enough that a wedged
// pipeline — the multi-second stalls the watchdog files incidents for —
// fails the row outright. Regression detection at finer grain is the
// BENCH_SLO.json compare gate's job, not this absolute band's.
var DefaultSLO = loadgen.SLO{
	P50:          100 * time.Millisecond,
	P99:          250 * time.Millisecond,
	P999:         500 * time.Millisecond,
	MaxErrorRate: 0.01,
}

// SLORow is one point of the workload × fabric × node-count × arrival-rate
// matrix: an open-loop run over a real application workload with
// coordinated-omission-safe latency measured from intended send time.
type SLORow struct {
	Workload string
	Fabric   string // mem | netsim | tcp
	Nodes    int
	Rate     float64 // aggregate offered arrivals/second
	Arrival  string  // const | poisson

	Offered    int
	Completed  uint64
	Errors     uint64
	Throughput float64 // completed/s over the whole run

	// Intended-send-time latency (the omission-safe histogram).
	P50, P99, P999, Max time.Duration
	// ServiceP99 is the closed-loop view of the same run (actual-send
	// clock): the gap to P99 is the queueing a closed-loop harness hides.
	ServiceP99 time.Duration
	// Phase attribution from the per-transaction trace spans: commit
	// begin→quorum-ack and begin→applied p99s, so a tail excursion
	// decomposes into pipeline vs above-engine queueing.
	AckP99, AppliedP99 time.Duration

	Health     loadgen.Health
	Violations []string
	Pass       bool
	// SlowTraces holds the slowest sampled per-phase traces, kept only for
	// failed rows (the diagnosis attached to the SLO miss).
	SlowTraces []obs.TraceRecord
}

// Key names the row in SLO records (BENCH_SLO.json).
func (r SLORow) Key() string {
	return fmt.Sprintf("%s/%s/n%d/r%g/%s", r.Workload, r.Fabric, r.Nodes, r.Rate, r.Arrival)
}

// SLOResult is the full matrix run.
type SLOResult struct {
	MaxProcs int
	Drivers  int // drivers used on the 3-node rows (GOMAXPROCS-partitioned)
	Rows     []SLORow
}

// Pass reports whether every row met its SLO with zero watchdog incidents.
func (r SLOResult) Pass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// SLOExp runs the open-loop SLO matrix: the three §8.5 application ports
// (epcgw, httplb, sctp) and the handover pattern over the simulated fabric
// at two arrival rates, a node-count + Poisson point, and the epcgw workload
// again over real loopback TCP sockets. Quick scale keeps each run at
// Scale.Duration; -full stretches the schedules accordingly.
func SLOExp(s Scale) SLOResult {
	res := SLOResult{MaxProcs: runtime.GOMAXPROCS(0), Drivers: sloDrivers(3)}
	lowRate, highRate := 1000.0, 4000.0
	type point struct {
		wl      func(nodes int) loadgen.Workload
		fabric  cluster.FabricKind
		nodes   int
		rate    float64
		arrival loadgen.Arrival
	}
	sctp := func(nodes int) loadgen.Workload {
		return loadgen.SCTP(nodes, 4*s.Workers*sloDrivers(nodes)/nodes)
	}
	points := []point{
		{loadgen.EPCGW, cluster.FabricSim, 3, lowRate, loadgen.ConstantRate{}},
		{loadgen.EPCGW, cluster.FabricSim, 3, highRate, loadgen.ConstantRate{}},
		{loadgen.HTTPLB, cluster.FabricSim, 3, lowRate, loadgen.ConstantRate{}},
		{loadgen.HTTPLB, cluster.FabricSim, 3, highRate, loadgen.ConstantRate{}},
		{sctp, cluster.FabricSim, 3, lowRate, loadgen.ConstantRate{}},
		{sctp, cluster.FabricSim, 3, highRate, loadgen.ConstantRate{}},
		{loadgen.Handover, cluster.FabricSim, 3, lowRate, loadgen.ConstantRate{}},
		{loadgen.Handover, cluster.FabricSim, 3, highRate, loadgen.ConstantRate{}},
		// Node-count axis + stochastic arrivals.
		{loadgen.EPCGW, cluster.FabricSim, 5, highRate, loadgen.Poisson{}},
		// Real loopback TCP sockets under the same harness.
		{loadgen.EPCGW, cluster.FabricTCP, 3, lowRate, loadgen.ConstantRate{}},
		{loadgen.EPCGW, cluster.FabricTCP, 3, highRate, loadgen.ConstantRate{}},
	}
	for _, p := range points {
		res.Rows = append(res.Rows, sloPoint(s, p.wl(p.nodes), p.fabric, p.nodes, p.rate, p.arrival))
	}
	return res
}

// sloDrivers partitions the schedule across GOMAXPROCS, rounded up to a
// multiple of the node count so every node is driven — the multi-core runner
// mode (one driver group per core on big hosts, one per node at minimum).
func sloDrivers(nodes int) int {
	d := runtime.GOMAXPROCS(0)
	if d < nodes {
		return nodes
	}
	return (d + nodes - 1) / nodes * nodes
}

func fabricName(k cluster.FabricKind) string {
	switch k {
	case cluster.FabricSim:
		return "netsim"
	case cluster.FabricTCP:
		return "tcp"
	}
	return "mem"
}

// sloPoint runs one matrix point end to end: build the cluster, seed the
// workload, run the open-loop schedule, drain, and fold the obs registries
// into the row (health cross-check, phase attribution, SLO verdict).
func sloPoint(s Scale, wl loadgen.Workload, fabric cluster.FabricKind, nodes int, rate float64, arrival loadgen.Arrival) SLORow {
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = s.Workers
	opts.Fabric = fabric
	if fabric == cluster.FabricSim {
		opts.Net = simNetConfig()
	}
	opts.Observability = true
	opts.TraceSample = 16
	c := cluster.New(opts)
	defer c.Close()
	wl.Seed(func(obj uint64, home int, data []byte) {
		c.SeedAt(wireObj(obj), wireNode(home), data)
	})

	drivers := sloDrivers(nodes)
	res := loadgen.Run(loadgen.Config{
		Name:             wl.Name,
		Rate:             rate,
		Arrival:          arrival,
		Duration:         s.Duration,
		Drivers:          drivers,
		WorkersPerDriver: s.Workers,
		Seed:             42,
	}, func(driver int) loadgen.Op {
		node := driver % nodes
		lane := driver / nodes
		inner := wl.MakeOp(node, c.Node(node).DB())
		return func(worker, client int, rng *rand.Rand) error {
			// Lanes offset their worker ids so co-located driver groups use
			// distinct pipelines (and distinct per-worker workload state).
			return inner(lane*s.Workers+worker, client, rng)
		}
	})
	c.WaitIdle(10 * time.Second)

	regs := make([]*obs.Registry, 0, nodes+1)
	for i := 0; i < nodes; i++ {
		regs = append(regs, c.Obs(i))
	}
	regs = append(regs, c.ViewObs())
	health := loadgen.CollectHealth(regs...)
	phases := loadgen.Phases(regs...)
	ackPhase, appliedPhase := phases["cmt_ack_ns"], phases["cmt_applied_ns"]

	row := SLORow{
		Workload:   wl.Name,
		Fabric:     fabricName(fabric),
		Nodes:      nodes,
		Rate:       rate,
		Arrival:    res.Arrival,
		Offered:    res.Offered,
		Completed:  res.Completed,
		Errors:     res.Errors,
		Throughput: res.Throughput(),
		P50:        time.Duration(res.Latency.Quantile(0.50)),
		P99:        time.Duration(res.Latency.Quantile(0.99)),
		P999:       time.Duration(res.Latency.Quantile(0.999)),
		Max:        time.Duration(res.Latency.Max()),
		ServiceP99: time.Duration(res.Service.Quantile(0.99)),
		AckP99:     time.Duration(ackPhase.Quantile(0.99)),
		AppliedP99: time.Duration(appliedPhase.Quantile(0.99)),
		Health:     health,
		Violations: DefaultSLO.Check(res),
	}
	// A healthy run has zero watchdog incidents (the multiproc smoke's
	// /metrics assertion, in-process); incidents fail the row even when the
	// latency objectives were met, and the incident list travels with it.
	if !health.Healthy() {
		row.Violations = append(row.Violations,
			fmt.Sprintf("%d watchdog incidents on a healthy-run assertion", health.Incidents))
	}
	row.Pass = len(row.Violations) == 0
	if !row.Pass {
		row.SlowTraces = loadgen.SlowTraces(4, regs...)
	}
	return row
}

// Print renders the matrix with one pass/fail line per row; failed rows get
// their violations, the health errata (incident list, retransmits, NACK
// reasons) and the slowest sampled traces.
func (r SLOResult) Print(w io.Writer) {
	printHeader(w, fmt.Sprintf(
		"SLO: open-loop latency over application workloads (GOMAXPROCS=%d, drivers=%d)", r.MaxProcs, r.Drivers))
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %-8s %-6s n%d %6.0f/s %-7s offered=%-6d done=%-6d err=%-3d %s  %s ack_p99=%v applied_p99=%v  [%s]\n",
			row.Workload, row.Fabric, row.Nodes, row.Rate, row.Arrival,
			row.Offered, row.Completed, row.Errors, fmtTps(row.Throughput),
			fmtLat(row), row.AckP99.Round(time.Microsecond), row.AppliedP99.Round(time.Microsecond), verdict)
		if !row.Pass {
			for _, v := range row.Violations {
				fmt.Fprintf(w, "    violation: %s\n", v)
			}
			fmt.Fprintf(w, "    closed-loop service_p99=%v — the gap to p99 is queueing the open loop charged\n",
				row.ServiceP99.Round(time.Microsecond))
			row.Health.WriteText(w)
			for _, tr := range row.SlowTraces {
				fmt.Fprintf(w, "    trace reqid=%d total=%v", tr.ReqID, tr.Total)
				for _, e := range tr.Events {
					fmt.Fprintf(w, " %s=+%v", e.Label, e.At)
				}
				fmt.Fprintln(w)
			}
		}
	}
	if r.MaxProcs == 1 {
		fmt.Fprintf(w, "  (single-core host: driver groups time-share one CPU — the matrix checks omission-safe measurement and SLO gating, not parallel speedup)\n")
	}
}

func fmtLat(row SLORow) string {
	return fmt.Sprintf("p50=%v p99=%v p999=%v max=%v",
		row.P50.Round(time.Microsecond), row.P99.Round(time.Microsecond),
		row.P999.Round(time.Microsecond), row.Max.Round(time.Microsecond))
}
