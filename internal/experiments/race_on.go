//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// See race_off.go for why experiment assertions consult it.
const raceEnabled = true
