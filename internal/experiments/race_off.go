//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// Timing-sensitive experiment assertions (delayed-ack coalescing ratios on a
// microsecond-latency simulated fabric) loosen their thresholds under race:
// the instrumentation slows delivery enough that ack timers fire before the
// coalescing counters do, which is measurement noise, not a regression.
const raceEnabled = false
