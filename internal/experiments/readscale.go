package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/dbapi"
	"zeus/internal/wire"
)

// ReadScaleRow is one point of the snapshot-read scaling experiment: a
// read/write mix at a given number of reader replicas.
type ReadScaleRow struct {
	WritePct int // writes as % of committed operations (0 or 5)
	Replicas int // reader replicas serving snapshots (owner excluded)
	ReadOps  int
	WriteOps int
	Elapsed  time.Duration
	Tps      float64 // snapshot reads per second
	Speedup  float64 // vs the 1-replica row of the same mix

	// The zero-owner-traffic invariants, asserted by the smoke test:
	// snapshot reads never touch the owner (it serves no ring reads for
	// this workload) and never generate ownership requests at the readers.
	OwnerRingReads uint64
	ReaderOwnReqs  uint64
}

// ReadScaleResult is the MVCC snapshot-read scaling experiment. Classic Zeus
// read-only transactions (§5.3) are already local, but they validate against
// the object's live seqlock word, so a write-heavy owner can starve them into
// retries; snapshot mode reads an immutable version-ring entry at a
// quorum-advanced safe-time instead. The claim under test: read throughput
// scales with the number of reader replicas because every replica serves
// snapshots from local memory and the owner sees ZERO read traffic — adding
// a replica adds read capacity without adding owner load. On a single-core
// host the sweep degenerates to a fairness check (rows within noise);
// MaxProcs records which regime produced the numbers.
type ReadScaleResult struct {
	MaxProcs int
	Rows     []ReadScaleRow
}

// ReadScale runs the snapshot-read scaling sweep: 100/0 and 95/5
// read/write mixes, each with 1, 2 and 4 reader replicas on a fixed 5-node
// cluster (constant safe-time quorum; only the replica placement varies).
func ReadScale(s Scale) ReadScaleResult {
	res := ReadScaleResult{MaxProcs: runtime.GOMAXPROCS(0)}
	for _, writePct := range []int{0, 5} {
		base := len(res.Rows)
		for _, replicas := range []int{1, 2, 4} {
			row := readScalePoint(s, writePct, replicas)
			if len(res.Rows) > base {
				row.Speedup = row.Tps / res.Rows[base].Tps
			} else {
				row.Speedup = 1
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func readScalePoint(s Scale, writePct, replicas int) ReadScaleRow {
	const (
		nodes      = 5
		objects    = 64
		payload    = 128
		readsPerTx = 8
	)
	owner := nodes - 1
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = s.Workers
	opts.SnapshotReads = true
	// The zero-owner-traffic invariants are read from the per-node obs
	// registries (core_snapshot_reads_total / own_requests_total) instead of
	// ad-hoc engine stats — the experiment doubles as a live check that the
	// instrumented paths count correctly.
	opts.Observability = true
	c := cluster.New(opts)
	defer c.Close()

	var readerSet wire.Bitmap
	for i := 0; i < replicas; i++ {
		readerSet = readerSet.Add(wire.NodeID(i))
	}
	for o := 1; o <= objects; o++ {
		c.Seed(wire.ObjectID(o), wire.NodeID(owner), readerSet, make([]byte, payload))
	}

	roTxs := s.OpsPerWorker
	if roTxs < 50 {
		roTxs = 50
	}
	var reads, writes atomic.Int64

	// The writer runs at the owner (the paper's locality model: writes where
	// ownership lives, reads anywhere) and paces itself off the global read
	// counter so committed operations track the requested mix.
	stopWriter := make(chan struct{})
	var writerWG sync.WaitGroup
	if writePct > 0 {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			n := c.Node(owner)
			rng := rand.New(rand.NewSource(1))
			for {
				select {
				case <-stopWriter:
					return
				default:
				}
				target := int(reads.Load()) * writePct / (100 - writePct)
				if int(writes.Load()) >= target {
					runtime.Gosched()
					continue
				}
				obj := uint64(1 + rng.Intn(objects))
				err := dbapi.Run(n.DB(), 0, func(tx dbapi.Txn) error {
					v, err := tx.Get(obj)
					if err != nil {
						return err
					}
					return tx.Set(obj, v)
				})
				if err == nil {
					writes.Add(1)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for node := 0; node < replicas; node++ {
		for w := 0; w < s.Workers; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				n := c.Node(node)
				rng := rand.New(rand.NewSource(int64(1 + node*64 + w)))
				for i := 0; i < roTxs; i++ {
					err := dbapi.RunRO(n.DB(), w, func(tx dbapi.Txn) error {
						for r := 0; r < readsPerTx; r++ {
							if _, err := tx.Get(uint64(1 + rng.Intn(objects))); err != nil {
								return err
							}
						}
						return nil
					})
					if err == nil {
						reads.Add(readsPerTx)
					}
				}
			}(node, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWriter)
	writerWG.Wait()
	c.WaitIdle(10 * time.Second)

	row := ReadScaleRow{
		WritePct: writePct,
		Replicas: replicas,
		ReadOps:  int(reads.Load()),
		WriteOps: int(writes.Load()),
		Elapsed:  elapsed,
		Tps:      float64(reads.Load()) / elapsed.Seconds(),
	}
	row.OwnerRingReads, _ = c.Obs(owner).CounterValue("core_snapshot_reads_total")
	for i := 0; i < replicas; i++ {
		reqs, _ := c.Obs(i).CounterValue("own_requests_total")
		row.ReaderOwnReqs += reqs
	}
	return row
}

// Print renders the experiment.
func (r ReadScaleResult) Print(w io.Writer) {
	printHeader(w, fmt.Sprintf("Readscale: snapshot reads vs reader replicas (GOMAXPROCS=%d)", r.MaxProcs))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  mix %3d/%d  replicas=%d  %7d reads (%5d writes) in %8s  %s  speedup %.2fx  owner-ring-reads=%d reader-own-reqs=%d\n",
			100-row.WritePct, row.WritePct, row.Replicas, row.ReadOps, row.WriteOps,
			row.Elapsed.Round(time.Millisecond), fmtTps(row.Tps), row.Speedup,
			row.OwnerRingReads, row.ReaderOwnReqs)
	}
	if r.MaxProcs == 1 {
		fmt.Fprintf(w, "  (single-core host: the sweep checks zero owner traffic and fairness, not speedup)\n")
	}
}
