package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/wire"
)

// DirectoryRow is one point of the directory-sharding ablation.
type DirectoryRow struct {
	Label    string
	Shards   int
	Acquired uint64 // successful ownership acquisitions
	Requests uint64 // REQ attempts issued
	Nacks    uint64
	Timeouts uint64
	Elapsed  time.Duration
	Tps      float64 // acquisitions per second
	Speedup  float64 // vs the 1-shard row
}

// DirectoryResult is the sharded-directory ablation (§6.2): the same
// hot-directory workload — every node fighting for ownership of a pool of
// hot objects, so ownership REQs (not commits) dominate — swept across
// directory shard counts, plus the pre-sharding fixed-DirNodes path as the
// compat baseline. With one shard all arbitration funnels through one
// driver set exactly like the legacy directory (the two rows should match);
// as shards grow, arbitration spreads across the cluster and REQ throughput
// should scale with cores. On a single-core host the sweep degenerates to a
// flat-not-degrading check; MaxProcs records the regime.
type DirectoryResult struct {
	MaxProcs int
	Nodes    int
	Objects  int
	Rows     []DirectoryRow
}

// sumOwnStats totals the ownership-engine counters across the cluster.
func sumOwnStats(c *cluster.Cluster, nodes int) (t struct {
	Requests, Succeeded, Nacks, Timeouts uint64
}) {
	for i := 0; i < nodes; i++ {
		s := c.Node(i).OwnershipEngine().Stats()
		t.Requests += s.Requests
		t.Succeeded += s.Succeeded
		t.Nacks += s.Nacks
		t.Timeouts += s.Timeouts
	}
	return t
}

// Directory runs the directory-sharding ablation on a 6-node in-memory
// cluster (the paper's testbed size).
func Directory(s Scale) DirectoryResult {
	const nodes = 6
	objects := 8 * nodes
	dur := s.Duration
	if dur <= 0 {
		dur = 500 * time.Millisecond
	}
	configs := []struct {
		label  string
		shards int
	}{
		{"legacy DirNodes", -1}, // pre-sharding fixed three-node directory
		{"1 shard", 1},
		{"4 shards", 4},
		{"16 shards", 16},
		{"64 shards", 64},
	}
	res := DirectoryResult{MaxProcs: runtime.GOMAXPROCS(0), Nodes: nodes, Objects: objects}
	for _, cfg := range configs {
		opts := cluster.DefaultOptions(nodes)
		opts.Workers = s.Workers
		opts.DirShards = cfg.shards
		c := cluster.New(opts)
		c.SeedRange(1, objects, make([]byte, 64))

		before := sumOwnStats(c, nodes)

		// Acquire stormers: every node walks the hot-object pool with its
		// own stride, so each object's ownership keeps ping-ponging between
		// nodes and (almost) every acquisition issues a REQ.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		workers := s.Workers
		if workers <= 0 {
			workers = 2
		}
		start := time.Now()
		for n := 0; n < nodes; n++ {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(n, w int) {
					defer wg.Done()
					eng := c.Node(n).OwnershipEngine()
					i := n + w*nodes
					for {
						select {
						case <-stop:
							return
						default:
						}
						obj := wire.ObjectID(1 + i%objects)
						i += 1 + n // node-specific stride keeps acquirers colliding
						_ = eng.AcquireOwnership(obj)
					}
				}(n, w)
			}
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)

		after := sumOwnStats(c, nodes)
		c.Close()

		shards := cfg.shards
		if shards < 0 {
			shards = 1
		}
		row := DirectoryRow{
			Label:    cfg.label,
			Shards:   shards,
			Acquired: after.Succeeded - before.Succeeded,
			Requests: after.Requests - before.Requests,
			Nacks:    after.Nacks - before.Nacks,
			Timeouts: after.Timeouts - before.Timeouts,
			Elapsed:  elapsed,
		}
		row.Tps = float64(row.Acquired) / elapsed.Seconds()
		res.Rows = append(res.Rows, row)
	}
	// Speedup vs the 1-shard row (index 1).
	if base := res.Rows[1].Tps; base > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = res.Rows[i].Tps / base
		}
	}
	return res
}

// Print renders the ablation.
func (r DirectoryResult) Print(w io.Writer) {
	printHeader(w, fmt.Sprintf(
		"Directory sharding: ownership-REQ throughput vs shard count (%d nodes, %d hot objects, GOMAXPROCS=%d)",
		r.Nodes, r.Objects, r.MaxProcs))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-15s %8d acquired in %8s  %s acq/s  (reqs %d, nacks %d, timeouts %d)  vs 1-shard %.2fx\n",
			row.Label, row.Acquired, row.Elapsed.Round(time.Millisecond),
			fmtTps(row.Tps), row.Requests, row.Nacks, row.Timeouts, row.Speedup)
	}
	if r.MaxProcs == 1 {
		fmt.Fprintf(w, "  (single-core host: arbitration cannot parallelize; the sweep checks flat-not-degrading)\n")
	}
}
