package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/wire"
)

// ScalingRow is one point of the worker-scaling ablation.
type ScalingRow struct {
	Workers int
	Ops     int
	Elapsed time.Duration
	Tps     float64
	NsPerOp float64
	Speedup float64 // vs the 1-worker row
}

// ScalingResult is the multi-core scaling ablation: the same fully-local
// write-transaction workload (each worker hammering its own object, the
// paper's locality sweet spot) with 1→8 worker pipelines driven
// concurrently. After the engine lock split (per-pipe commit state, striped
// ownership maps, per-pipe/per-object sharded dispatch) the only shared
// state between workers is the store shard and the transport, so throughput
// should track min(workers, cores) — the §7 argument that worker threads
// never block each other. On a single-core host the sweep degenerates to a
// fairness check (all rows within noise of each other); the MaxProcs field
// records which regime produced the numbers.
type ScalingResult struct {
	MaxProcs int
	Rows     []ScalingRow
}

// Scaling runs the worker-scaling ablation on a 3-node in-memory cluster.
func Scaling(s Scale) ScalingResult {
	ops := s.OpsPerWorker * 10
	if ops < 2000 {
		ops = 2000
	}
	res := ScalingResult{MaxProcs: runtime.GOMAXPROCS(0)}
	for _, workers := range []int{1, 2, 4, 8} {
		opts := cluster.DefaultOptions(3)
		opts.Workers = workers
		// DispatchShards stays on auto (min(workers, GOMAXPROCS)): the
		// sweep measures the deployment-default configuration per worker
		// count, which shards on multi-core hosts and stays inline on
		// single-core ones.
		c := cluster.New(opts)

		// One hot object per worker, all owned by node 0: disjoint write
		// streams through disjoint pipelines.
		for w := 0; w < workers; w++ {
			c.SeedAt(wire.ObjectID(1+w), 0, make([]byte, 128))
		}
		n := c.Node(0)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				obj := uint64(1 + w)
				buf := make([]byte, 128)
				for i := 0; i < ops; i++ {
					tx := n.BeginOn(w)
					if _, err := tx.Get(obj); err != nil {
						tx.Abort()
						continue
					}
					buf[0] = byte(i)
					if err := tx.Set(obj, buf); err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		n.WaitReplication(10 * time.Second)
		c.Close()

		total := ops * workers
		row := ScalingRow{
			Workers: workers,
			Ops:     total,
			Elapsed: elapsed,
			Tps:     float64(total) / elapsed.Seconds(),
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(total),
		}
		if len(res.Rows) > 0 {
			row.Speedup = row.Tps / res.Rows[0].Tps
		} else {
			row.Speedup = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the ablation.
func (r ScalingResult) Print(w io.Writer) {
	printHeader(w, fmt.Sprintf("Scaling: local write tx vs worker pipelines (GOMAXPROCS=%d)", r.MaxProcs))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  workers=%d  %7d ops in %8s  %s tx/s  %7.0f ns/op  speedup %.2fx\n",
			row.Workers, row.Ops, row.Elapsed.Round(time.Millisecond),
			fmtTps(row.Tps), row.NsPerOp, row.Speedup)
	}
	if r.MaxProcs == 1 {
		fmt.Fprintf(w, "  (single-core host: the sweep checks fairness, not speedup)\n")
	}
}
