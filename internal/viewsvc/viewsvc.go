// Package viewsvc implements the replicated membership (view) service the
// paper assumes (§3.1): a fault-tolerant, lease-protected authority that
// drives membership epochs and the post-failure recovery barrier (§5.1).
//
// The service is a small leader-driven replicated state machine in the style
// of Vertical Paxos — "Vertical-Paxos-lite":
//
//   - A fixed ensemble of replicas (three in production shape) orders
//     commands (node fail / join / leave, recovery-barrier reports) into a
//     quorum-acknowledged sequence.
//   - Ballots order leaderships: the leader for ballot b is replica b mod n.
//     Replicas promise ballots Paxos-style, so two leaderships can never
//     both reach quorum for the same index.
//   - Every command carries its full post-state (wire.VSState: epoch, live
//     set, open recovery barrier) instead of a log delta. Replication and
//     leader takeover are therefore state transfer keyed by a strictly
//     increasing commit index — no log replay, no snapshotting machinery.
//   - Failed nodes leave the view only after their lease expired at the
//     leader (lease table replicated via multicast renewals), preserving the
//     paper's "views change only after leases run out" invariant.
//
// Everything crosses the wire: replicas and clients talk VS-PROPOSE /
// VS-ACCEPT / VS-COMMIT / VS-LEASE / VS-QUERY messages over any
// transport.Transport (the in-process hub, the reliable transport over the
// simulated fabric, or TCP). Clients (package membership's Manager facade)
// multicast proposals to every replica — only the leader acts, commands are
// deduplicated against the committed state, so retries and duplicates are
// harmless — and receive committed states as pushes.
//
// Leader failure: backups detect heartbeat silence and take over with a
// higher ballot staggered by rank, adopt the highest committed state and any
// accepted-but-uncommitted entry from a promise quorum, re-publish the
// committed state, and resume. Data-plane view changes keep flowing through
// the new leader; clients never need to locate the leader explicitly.
package viewsvc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/shardmap"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Config tunes the service.
type Config struct {
	// Lease is how long a data node's lease outlives its last renewal; a
	// failure report is applied only after the lease expired.
	Lease time.Duration
	// DirShards is the shard count of the sharded ownership directory
	// (§6.2) whose placement map the service replicates as part of its
	// state. Default: scaled with the host like the store's shards
	// (shardmap.ScaledCount). Every replica of one ensemble must agree —
	// the value only seeds the initial state; afterwards the committed
	// placement is authoritative.
	DirShards int
	// DirDegree is the target driver count per directory shard (default 3,
	// the paper's directory replication degree; clamped to the live set).
	DirDegree int
	// Heartbeat is the leader's heartbeat period towards the other
	// replicas. Default: Lease/2 clamped to [1ms, 25ms].
	Heartbeat time.Duration
	// TakeoverAfter is how long a backup tolerates heartbeat silence
	// before starting a ballot takeover; backup k behind the leader waits
	// k*TakeoverAfter so the next-in-line wins uncontested. Default:
	// max(6*Heartbeat, 10ms).
	TakeoverAfter time.Duration
	// RetryEvery paces client-side proposal retry loops. Default:
	// max(Lease/2, 2ms).
	RetryEvery time.Duration
	// InitialAddrs seeds the replicated address book (VSState.Addrs) with
	// the deployment's bootstrap endpoints: every replica and client of one
	// ensemble must be seeded identically (like DirShards, the value only
	// seeds the initial state; committed VSJoin commands carrying addresses
	// are authoritative afterwards).
	InitialAddrs []wire.NodeAddr
	// AutoFail makes the leader propose VSFail for live data nodes whose
	// lease renewals went silent for 2×Lease. In-process deployments leave
	// it off (tests report failures explicitly); multi-process deployments
	// (zeusd) turn it on — nobody else notices a SIGKILLed process.
	AutoFail bool
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 10 * time.Millisecond
	}
	if c.DirShards <= 0 {
		c.DirShards = shardmap.ScaledCount(runtime.GOMAXPROCS(0))
	}
	if c.DirShards > wire.MaxDirShards {
		c.DirShards = wire.MaxDirShards
	}
	if c.DirDegree <= 0 {
		c.DirDegree = 3
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.Lease / 2
		// The floor keeps millisecond-scale simulation leases from turning
		// the control plane into a busy loop on starved hosts; TakeoverAfter
		// floors at 10ms, so five beats still fit a takeover window.
		if c.Heartbeat < 2*time.Millisecond {
			c.Heartbeat = 2 * time.Millisecond
		}
		if c.Heartbeat > 25*time.Millisecond {
			c.Heartbeat = 25 * time.Millisecond
		}
	}
	if c.TakeoverAfter <= 0 {
		c.TakeoverAfter = 6 * c.Heartbeat
		if c.TakeoverAfter < 10*time.Millisecond {
			c.TakeoverAfter = 10 * time.Millisecond
		}
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = c.Lease / 2
		if c.RetryEvery < 2*time.Millisecond {
			c.RetryEvery = 2 * time.Millisecond
		}
		if c.RetryEvery > 50*time.Millisecond {
			c.RetryEvery = 50 * time.Millisecond
		}
	}
	return c
}

// entry is an accepted-but-uncommitted command with its post-state.
type entry struct {
	ballot    uint64
	cmd       wire.VSCommand
	state     wire.VSState
	done      bool       // this command closes the recovery barrier
	doneEpoch wire.Epoch // the barrier's epoch, when done
}

// Replica is one member of the view-service ensemble.
type Replica struct {
	cfg Config
	ids []wire.NodeID // ensemble transport ids; leader(b) = ids[b%n]
	idx int
	tr  transport.Transport

	mu       sync.Mutex
	promised uint64 // highest ballot promised (never accept below it)
	ballot   uint64 // current leadership ballot
	leading  bool   // this replica is the active leader for ballot
	state    wire.VSState
	acc      *entry      // accepted, uncommitted entry
	accAcked wire.Bitmap // replica indices that acked acc (leader side)
	queue    []wire.VSCommand
	pendFail map[wire.NodeID]*time.Timer // lease waits for reported failures
	subs     wire.Bitmap                 // client endpoints to push commits to

	// Candidacy (ballot takeover) state.
	candBallot  uint64
	candSince   time.Time
	promises    wire.Bitmap
	bestState   wire.VSState
	bestAcc     *entry
	bestAccBlt  uint64
	lastContact atomic.Int64 // unix nanos of last leader sign of life

	// Lease renewals, one atomic slot per node: renewals never take mu, so
	// they cannot contend with (or on) the state machine.
	renewals [wire.MaxNodes]atomic.Int64

	closed chan struct{}
	once   sync.Once
}

// NewReplica starts ensemble member idx (of ids) on tr, serving the initial
// view {epoch 1, members}. The replica installs its handler on tr.
func NewReplica(cfg Config, ids []wire.NodeID, idx int, tr transport.Transport, members wire.Bitmap) *Replica {
	r := &Replica{
		cfg:      cfg.withDefaults(),
		ids:      append([]wire.NodeID(nil), ids...),
		idx:      idx,
		tr:       tr,
		leading:  idx == 0, // ballot 0's leader
		pendFail: make(map[wire.NodeID]*time.Timer),
		closed:   make(chan struct{}),
	}
	r.state = wire.VSState{
		Index: 0, Epoch: 1, Live: members,
		Placement: wire.ComputePlacement(r.cfg.DirShards, r.cfg.DirDegree, 1, members),
		Addrs:     append([]wire.NodeAddr(nil), r.cfg.InitialAddrs...),
	}
	now := time.Now().UnixNano()
	for _, n := range members.Nodes() {
		r.renewals[n].Store(now)
	}
	r.lastContact.Store(now)
	tr.SetHandler(r.handle)
	go r.loop()
	return r
}

// Close stops the replica (its transport stays owned by the caller).
func (r *Replica) Close() {
	r.once.Do(func() {
		close(r.closed)
		r.mu.Lock()
		for _, t := range r.pendFail {
			t.Stop()
		}
		r.mu.Unlock()
	})
}

// Ballot returns the replica's current ballot (tests and leader probes).
func (r *Replica) Ballot() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ballot
}

// Leading reports whether this replica believes it is the active leader.
func (r *Replica) Leading() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leading
}

// State returns the replica's committed state.
func (r *Replica) State() wire.VSState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *Replica) quorum() int { return len(r.ids)/2 + 1 }

func (r *Replica) leaderIdx(ballot uint64) int { return int(ballot % uint64(len(r.ids))) }

// othersLocked returns the transport ids of the other ensemble members.
func (r *Replica) others() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(r.ids)-1)
	for i, id := range r.ids {
		if i != r.idx {
			out = append(out, id)
		}
	}
	return out
}

func (r *Replica) multicast(m wire.Msg) {
	_ = transport.Multicast(r.tr, r.others(), m)
	transport.Flush(r.tr)
}

// handle dispatches one inbound view-service message.
func (r *Replica) handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.VSPropose:
		r.handlePropose(from, v)
	case *wire.VSAccept:
		switch v.Phase {
		case wire.VSPhaseAccept:
			r.handleAccept(from, v)
		case wire.VSPhaseAck:
			r.handleAck(from, v)
		case wire.VSPhasePrepare:
			r.handlePrepare(from, v)
		case wire.VSPhasePromise:
			r.handlePromise(from, v)
		}
	case *wire.VSCommit:
		r.handleCommit(v)
	case *wire.VSLeaseMsg:
		r.handleLease(from, v)
	case *wire.VSQuery:
		r.handleQuery(from, v)
	}
}

// ---------------------------------------------------------------------------
// Leader: proposals, lease waits, replication.
// ---------------------------------------------------------------------------

func (r *Replica) handlePropose(from wire.NodeID, m *wire.VSPropose) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = r.subs.Add(from)
	if !r.leading {
		return
	}
	cmd := m.Cmd
	if !r.applicableLocked(cmd) || r.inFlightLocked(cmd) {
		return
	}
	if cmd.Op == wire.VSFail {
		// Lease protection (§3.1): the view change is deferred until the
		// failed node's lease expired. The timer re-checks leadership and
		// state when it fires; a client whose leader died mid-wait simply
		// re-proposes to the next leader. A node this replica has never
		// seen renew (e.g. it joined while this replica healed via state
		// transfer, skipping the VSJoin commit that seeds the table) is
		// conservatively treated as renewed NOW — waiting a full lease is
		// always safe; cutting one short never is.
		if _, dup := r.pendFail[cmd.Node]; dup {
			return
		}
		nanos := r.renewals[cmd.Node].Load()
		last := time.Unix(0, nanos)
		if nanos == 0 {
			last = time.Now()
		}
		wait := time.Until(last.Add(r.cfg.Lease))
		if wait < 0 {
			wait = 0
		}
		node := cmd.Node
		r.pendFail[node] = time.AfterFunc(wait, func() {
			r.mu.Lock()
			delete(r.pendFail, node)
			if r.leading && r.applicableLocked(cmd) && !r.inFlightLocked(cmd) {
				r.queue = append(r.queue, cmd)
				r.popQueueLocked()
			}
			r.mu.Unlock()
		})
		return
	}
	r.queue = append(r.queue, cmd)
	r.popQueueLocked()
}

// applicableLocked reports whether cmd would change the committed state.
func (r *Replica) applicableLocked(cmd wire.VSCommand) bool {
	s := &r.state
	switch cmd.Op {
	case wire.VSFail, wire.VSLeave:
		return s.Live.Contains(cmd.Node)
	case wire.VSJoin:
		return !s.Live.Contains(cmd.Node)
	case wire.VSRecoveryDone:
		return s.Barrier != 0 && cmd.Epoch == s.BarrierEpoch && s.Barrier.Contains(cmd.Node)
	}
	return false
}

// inFlightLocked reports whether an equal command is queued or accepted.
func (r *Replica) inFlightLocked(cmd wire.VSCommand) bool {
	if r.acc != nil && r.acc.cmd == cmd {
		return true
	}
	for _, q := range r.queue {
		if q == cmd {
			return true
		}
	}
	return false
}

// applyCmd computes the post-state of cmd over s. ok is false for no-ops.
// Live-set changes deterministically recompute the directory placement
// (§6.2) as part of the same command, so the shard→drivers map is
// quorum-committed with the view it belongs to: a crashed driver's shards
// are re-driven exactly when its lease-protected removal commits, and a
// leader takeover adopts placement together with membership (state
// transfer, no separate consensus).
func applyCmd(s wire.VSState, cmd wire.VSCommand) (next wire.VSState, ok, done bool, doneEpoch wire.Epoch) {
	next = s
	next.Index++
	switch cmd.Op {
	case wire.VSFail, wire.VSLeave:
		if !s.Live.Contains(cmd.Node) {
			return s, false, false, 0
		}
		next.Live = s.Live.Remove(cmd.Node)
		next.Epoch = s.Epoch + 1
		next.Placement = s.Placement.Recompute(next.Epoch, next.Live)
		// Post-failure barrier (§5.1): every surviving node must replay
		// the dead node's pending reliable commits and report done.
		next.Barrier = next.Live
		next.BarrierEpoch = next.Epoch
		return next, true, false, 0
	case wire.VSJoin:
		if s.Live.Contains(cmd.Node) {
			return s, false, false, 0
		}
		next.Live = s.Live.Add(cmd.Node)
		next.Epoch = s.Epoch + 1
		next.Placement = s.Placement.Recompute(next.Epoch, next.Live)
		if cmd.Addr != "" {
			// Joins carry the node's advertised endpoint; the address book
			// commits with the view it belongs to (copy-on-write — states
			// share the slice across replicas and pushes).
			next.Addrs = setAddr(s.Addrs, cmd.Node, cmd.Addr)
		}
		return next, true, false, 0
	case wire.VSRecoveryDone:
		if s.Barrier == 0 || cmd.Epoch != s.BarrierEpoch || !s.Barrier.Contains(cmd.Node) {
			return s, false, false, 0
		}
		next.Barrier = s.Barrier.Remove(cmd.Node)
		return next, true, next.Barrier == 0, next.BarrierEpoch
	}
	return s, false, false, 0
}

// setAddr returns a copy of the address book with node's endpoint set or
// replaced. Published books are immutable, so updates always copy.
func setAddr(book []wire.NodeAddr, node wire.NodeID, addr string) []wire.NodeAddr {
	out := make([]wire.NodeAddr, 0, len(book)+1)
	replaced := false
	for _, a := range book {
		if a.Node == node {
			a.Addr = addr
			replaced = true
		}
		out = append(out, a)
	}
	if !replaced {
		out = append(out, wire.NodeAddr{Node: node, Addr: addr})
	}
	return out
}

// popQueueLocked starts replicating the next queued command if none is in
// flight. Single-entry pipelining keeps takeover trivial (at most one
// uncommitted entry exists ensemble-wide per ballot).
func (r *Replica) popQueueLocked() {
	for r.acc == nil && len(r.queue) > 0 {
		cmd := r.queue[0]
		r.queue = r.queue[1:]
		next, ok, done, doneEpoch := applyCmd(r.state, cmd)
		if !ok {
			continue
		}
		r.acc = &entry{ballot: r.ballot, cmd: cmd, state: next, done: done, doneEpoch: doneEpoch}
		r.accAcked = wire.BitmapOf(wire.NodeID(r.idx))
		if len(r.ids) > 1 {
			r.multicast(&wire.VSAccept{
				Ballot: r.ballot, Phase: wire.VSPhaseAccept, Cmd: cmd, State: next,
			})
		}
		if r.accAcked.Count() >= r.quorum() {
			r.commitLocked()
		}
	}
}

// handleAccept runs at a follower replica: accept the entry if the ballot is
// current, adopt newer ballots, and ack to the leader.
func (r *Replica) handleAccept(from wire.NodeID, m *wire.VSAccept) {
	r.mu.Lock()
	if m.Ballot < r.promised {
		r.mu.Unlock()
		return
	}
	r.adoptBallotLocked(m.Ballot)
	r.lastContact.Store(time.Now().UnixNano())
	if m.State.Index > r.state.Index {
		r.acc = &entry{ballot: m.Ballot, cmd: m.Cmd, state: m.State}
	}
	r.mu.Unlock()
	_ = r.tr.Send(from, &wire.VSAccept{Ballot: m.Ballot, Phase: wire.VSPhaseAck, State: m.State})
	transport.Flush(r.tr)
}

// adoptBallotLocked moves to a newer ballot, dropping leadership and any
// pending lease waits (the new leader re-arms them from re-proposals).
func (r *Replica) adoptBallotLocked(b uint64) {
	if b > r.promised {
		r.promised = b
	}
	if b > r.ballot {
		r.ballot = b
		if r.leading {
			r.leading = false
			for n, t := range r.pendFail {
				t.Stop()
				delete(r.pendFail, n)
			}
			r.queue = nil
		}
		r.candBallot = 0
	}
}

// handleAck runs at the leader: count follower acks, commit on quorum.
func (r *Replica) handleAck(from wire.NodeID, m *wire.VSAccept) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.leading || m.Ballot != r.ballot || r.acc == nil || m.State.Index != r.acc.state.Index {
		return
	}
	for i, id := range r.ids {
		if id == from {
			r.accAcked = r.accAcked.Add(wire.NodeID(i))
		}
	}
	if r.accAcked.Count() >= r.quorum() {
		r.commitLocked()
	}
}

// commitLocked installs the accepted entry as committed state and announces
// it to replicas and every subscribed client, then starts the next command.
func (r *Replica) commitLocked() {
	e := r.acc
	r.acc = nil
	r.state = e.state
	r.applySideEffectsLocked(e.cmd)
	msg := &wire.VSCommit{
		Ballot: r.ballot, Cmd: e.cmd, State: e.state,
		BarrierDone: e.done, DoneEpoch: e.doneEpoch,
	}
	dsts := r.others()
	for _, s := range r.subs.Nodes() {
		dsts = append(dsts, s)
	}
	_ = transport.Multicast(r.tr, dsts, msg)
	transport.Flush(r.tr)
	r.popQueueLocked()
}

// applySideEffectsLocked runs local bookkeeping for a committed command.
func (r *Replica) applySideEffectsLocked(cmd wire.VSCommand) {
	switch cmd.Op {
	case wire.VSJoin:
		r.renewals[cmd.Node].Store(time.Now().UnixNano())
	case wire.VSFail, wire.VSLeave:
		if t, ok := r.pendFail[cmd.Node]; ok {
			t.Stop()
			delete(r.pendFail, cmd.Node)
		}
	}
}

// handleCommit runs at followers: adopt the committed state (state transfer;
// the Index guard makes duplicates and reordering harmless).
func (r *Replica) handleCommit(m *wire.VSCommit) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adoptBallotLocked(m.Ballot)
	r.lastContact.Store(time.Now().UnixNano())
	if m.State.Index > r.state.Index {
		r.state = m.State
		r.applySideEffectsLocked(m.Cmd)
		if r.acc != nil && r.acc.state.Index <= r.state.Index {
			r.acc = nil
		}
	}
}

// ---------------------------------------------------------------------------
// Leases and heartbeats.
// ---------------------------------------------------------------------------

func (r *Replica) handleLease(from wire.NodeID, m *wire.VSLeaseMsg) {
	if m.Heartbeat {
		r.mu.Lock()
		r.adoptBallotLocked(m.Ballot)
		if m.Ballot == r.ballot {
			r.lastContact.Store(time.Now().UnixNano())
		}
		r.mu.Unlock()
		return
	}
	// Renewal: one atomic store per renewed node, no state-machine lock —
	// renewals proceed in parallel (the "striped lease table").
	now := time.Now().UnixNano()
	for _, n := range m.Nodes.Nodes() {
		r.renewals[n].Store(now)
	}
	r.mu.Lock()
	r.subs = r.subs.Add(from)
	r.mu.Unlock()
}

func (r *Replica) handleQuery(from wire.NodeID, m *wire.VSQuery) {
	if m.Resp {
		return
	}
	r.mu.Lock()
	r.subs = r.subs.Add(from)
	resp := &wire.VSQuery{Resp: true, Ballot: r.ballot, State: r.state}
	r.mu.Unlock()
	_ = r.tr.Send(from, resp)
	transport.Flush(r.tr)
}

// ---------------------------------------------------------------------------
// Heartbeat / takeover loop.
// ---------------------------------------------------------------------------

func (r *Replica) loop() {
	t := time.NewTicker(r.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
		}
		r.tick()
	}
}

func (r *Replica) tick() {
	r.mu.Lock()
	if r.leading {
		// Heartbeat and re-drive the in-flight entry (covers accepts lost
		// to a replica that was briefly unreachable).
		if len(r.ids) > 1 {
			r.multicast(&wire.VSLeaseMsg{Heartbeat: true, Ballot: r.ballot})
			if r.acc != nil {
				r.multicast(&wire.VSAccept{
					Ballot: r.ballot, Phase: wire.VSPhaseAccept,
					Cmd: r.acc.cmd, State: r.acc.state,
				})
			}
		}
		if r.cfg.AutoFail {
			r.autoFailLocked()
		}
		r.mu.Unlock()
		return
	}
	// Backup: take over when the leader has been silent too long. The
	// wait is staggered by distance from the current leader so the
	// next-in-line usually wins without a ballot duel.
	silence := time.Since(time.Unix(0, r.lastContact.Load()))
	dist := (r.idx - r.leaderIdx(r.ballot) + len(r.ids)) % len(r.ids)
	if dist == 0 {
		dist = len(r.ids) // deposed leader: try last
	}
	wait := time.Duration(dist) * r.cfg.TakeoverAfter
	retrying := r.candBallot != 0 && time.Since(r.candSince) > 2*r.cfg.TakeoverAfter
	if silence < wait || (r.candBallot != 0 && !retrying) {
		r.mu.Unlock()
		return
	}
	b := r.ballot + 1
	if b <= r.promised {
		b = r.promised + 1
	}
	for r.leaderIdx(b) != r.idx {
		b++
	}
	r.promised = b
	r.candBallot = b
	r.candSince = time.Now()
	r.promises = wire.BitmapOf(wire.NodeID(r.idx))
	r.bestState = r.state
	r.bestAcc = r.acc
	if r.acc != nil {
		r.bestAccBlt = r.acc.ballot
	}
	if len(r.ids) == 1 {
		r.becomeLeaderLocked()
		r.mu.Unlock()
		return
	}
	r.multicast(&wire.VSAccept{Ballot: b, Phase: wire.VSPhasePrepare})
	r.mu.Unlock()
}

// autoFailLocked (Config.AutoFail) proposes VSFail for every live data node
// whose renewals have been silent for 2×Lease — the failure detector of a
// real multi-process deployment, where a SIGKILLed process stops renewing
// and nothing else reports it. A node this replica has never seen renew is
// seeded as renewed NOW (same conservatism as the propose path: waiting a
// full extra lease is always safe). The proposal goes through the normal
// queue, so the commit is still quorum-replicated and deduplicated.
func (r *Replica) autoFailLocked() {
	now := time.Now()
	for _, n := range r.state.Live.Nodes() {
		nanos := r.renewals[n].Load()
		if nanos == 0 {
			r.renewals[n].Store(now.UnixNano())
			continue
		}
		if now.Sub(time.Unix(0, nanos)) < 2*r.cfg.Lease {
			continue
		}
		cmd := wire.VSCommand{Op: wire.VSFail, Node: n}
		if _, dup := r.pendFail[n]; dup || r.inFlightLocked(cmd) {
			continue
		}
		// The lease is already more than one Lease stale, so the §3.1
		// wait is served; queue the failure directly.
		r.queue = append(r.queue, cmd)
	}
	r.popQueueLocked()
}

// handlePrepare promises the candidate's ballot and returns this replica's
// committed state plus any accepted-but-uncommitted entry.
func (r *Replica) handlePrepare(from wire.NodeID, m *wire.VSAccept) {
	r.mu.Lock()
	if m.Ballot < r.promised {
		r.mu.Unlock()
		return // already promised a higher ballot
	}
	r.promised = m.Ballot
	r.leading = false
	r.candBallot = 0
	r.lastContact.Store(time.Now().UnixNano()) // grace for the candidate
	resp := &wire.VSAccept{Ballot: m.Ballot, Phase: wire.VSPhasePromise, State: r.state}
	if r.acc != nil {
		resp.HasAcc = true
		resp.AccBallot = r.acc.ballot
		resp.AccCmd = r.acc.cmd
		resp.AccState = r.acc.state
	}
	r.mu.Unlock()
	_ = r.tr.Send(from, resp)
	transport.Flush(r.tr)
}

func (r *Replica) handlePromise(from wire.NodeID, m *wire.VSAccept) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.candBallot == 0 || m.Ballot != r.candBallot || r.leading {
		return
	}
	for i, id := range r.ids {
		if id == from {
			r.promises = r.promises.Add(wire.NodeID(i))
		}
	}
	if m.State.Index > r.bestState.Index {
		r.bestState = m.State
	}
	if m.HasAcc && (r.bestAcc == nil || m.AccBallot > r.bestAccBlt) {
		r.bestAcc = &entry{ballot: m.AccBallot, cmd: m.AccCmd, state: m.AccState}
		r.bestAccBlt = m.AccBallot
	}
	if r.promises.Count() >= r.quorum() {
		r.becomeLeaderLocked()
	}
}

// becomeLeaderLocked completes a takeover: adopt the highest committed state
// seen in the promise quorum, re-publish it (clients that missed the old
// leader's final pushes resynchronize), and re-drive any orphaned entry
// through the normal proposal path (commands are idempotent, so re-proposing
// against the adopted state is safe even if the entry actually committed).
func (r *Replica) becomeLeaderLocked() {
	r.ballot = r.candBallot
	r.candBallot = 0
	r.leading = true
	if r.bestState.Index > r.state.Index {
		r.state = r.bestState
	}
	if orphan := r.bestAcc; orphan != nil {
		r.bestAcc = nil
		if r.applicableLocked(orphan.cmd) && !r.inFlightLocked(orphan.cmd) {
			r.queue = append(r.queue, orphan.cmd)
		}
	}
	r.acc = nil
	msg := &wire.VSCommit{Ballot: r.ballot, Cmd: wire.VSCommand{Op: wire.VSNoop}, State: r.state}
	dsts := r.others()
	for _, s := range r.subs.Nodes() {
		dsts = append(dsts, s)
	}
	_ = transport.Multicast(r.tr, dsts, msg)
	transport.Flush(r.tr)
	r.popQueueLocked()
}
