package viewsvc

import (
	"testing"
	"time"

	"zeus/internal/transport"
	"zeus/internal/wire"
)

// rig is a hub-backed ensemble plus a client for protocol-level tests.
type rig struct {
	hub *transport.Hub
	ens *Ensemble
	cli *Client
}

func newRig(t *testing.T, replicas int, members wire.Bitmap, cfg Config) *rig {
	t.Helper()
	hub := transport.NewHub()
	ids := ReplicaIDs(replicas)
	trs := make([]transport.Transport, len(ids))
	for i, id := range ids {
		trs[i] = hub.Node(id)
	}
	ens := StartEnsemble(cfg, ids, trs, members)
	cli := NewClient(cfg, hub.Node(ClientID), ids, members)
	r := &rig{hub: hub, ens: ens, cli: cli}
	t.Cleanup(func() {
		cli.Close()
		ens.Close()
	})
	return r
}

func TestQuorumCommitUpdatesClient(t *testing.T) {
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), Config{Lease: time.Millisecond})
	r.cli.Join(7)
	v := r.cli.View()
	if v.Epoch != 2 || !v.Live.Contains(7) {
		t.Fatalf("post-join view: %+v", v)
	}
	// Every replica converges on the committed state.
	deadline := time.Now().Add(time.Second)
	for i := 0; i < r.ens.Size(); i++ {
		for r.ens.Replica(i).State().Index != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never committed: %+v", i, r.ens.Replica(i).State())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestDuplicateProposalsCommitOnce(t *testing.T) {
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), Config{Lease: time.Millisecond})
	// Multicast the same join several times by hand: the leader must
	// deduplicate against state, queue and accepted entry.
	for i := 0; i < 5; i++ {
		_ = transport.Multicast(r.cli.tr, r.cli.replicas, &wire.VSPropose{Cmd: wire.VSCommand{Op: wire.VSJoin, Node: 9}})
	}
	if !r.cli.WaitEpoch(2, time.Second) {
		t.Fatal("join never committed")
	}
	time.Sleep(5 * time.Millisecond)
	if e := r.cli.View().Epoch; e != 2 {
		t.Fatalf("duplicate proposals bumped epoch to %d", e)
	}
}

func TestFollowerCrashQuorumSurvives(t *testing.T) {
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), Config{Lease: time.Millisecond})
	r.hub.SetDown(r.ens.IDs()[2], true) // a follower, not the leader
	r.cli.Leave(2)
	v := r.cli.View()
	if v.Live.Contains(2) || v.Epoch != 2 {
		t.Fatalf("leave through 2/3 quorum failed: %+v", v)
	}
}

func TestLeaderCrashBallotTakeover(t *testing.T) {
	cfg := Config{Lease: time.Millisecond, Heartbeat: time.Millisecond, TakeoverAfter: 5 * time.Millisecond}
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), cfg)
	if r.ens.LeaderIndex() != 0 {
		t.Fatalf("initial leader = %d, want 0", r.ens.LeaderIndex())
	}
	r.hub.SetDown(r.ens.IDs()[0], true)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if li := r.ens.LeaderIndex(); li > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no ballot takeover after leader crash")
		}
		time.Sleep(time.Millisecond)
	}
	// The new leader must make progress: commit a membership change.
	r.cli.Join(5)
	if v := r.cli.View(); !v.Live.Contains(5) {
		t.Fatalf("post-takeover join failed: %+v", v)
	}
	// Ballots are strictly above the old leadership.
	li := r.ens.LeaderIndex()
	if b := r.ens.Replica(li).Ballot(); b == 0 || int(b%3) != li {
		t.Fatalf("leader %d has inconsistent ballot %d", li, b)
	}
}

func TestBarrierAcrossTakeover(t *testing.T) {
	cfg := Config{Lease: time.Millisecond, Heartbeat: time.Millisecond, TakeoverAfter: 5 * time.Millisecond}
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), cfg)
	r.cli.Fail(2)
	if !r.cli.WaitEpoch(2, time.Second) {
		t.Fatal("fail never committed")
	}
	if !r.cli.RecoveryPending() {
		t.Fatal("failure must open the recovery barrier")
	}
	// Leader dies while the barrier is open; reports must still close it
	// through the next leader.
	r.hub.SetDown(r.ens.IDs()[0], true)
	r.cli.ReportRecoveryDone(2, 0)
	r.cli.ReportRecoveryDone(2, 1)
	deadline := time.Now().Add(2 * time.Second)
	for r.cli.RecoveryPending() {
		if time.Now().After(deadline) {
			t.Fatal("barrier never closed after leader takeover")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPlacementRidesTheStateMachine pins the sharded-directory contract
// (§6.2): the placement map is part of the committed state, recomputed on
// every live-set change, and adopted across a ballot takeover like the rest
// of the state.
func TestPlacementRidesTheStateMachine(t *testing.T) {
	cfg := Config{Lease: time.Millisecond, Heartbeat: time.Millisecond,
		TakeoverAfter: 5 * time.Millisecond, DirShards: 8, DirDegree: 3}
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2, 3), cfg)

	p := r.cli.State().Placement
	if len(p.Shards) != 8 || p.Epoch != 1 {
		t.Fatalf("initial placement: %d shards, epoch %d", len(p.Shards), p.Epoch)
	}
	want := wire.ComputePlacement(8, 3, 1, wire.BitmapOf(0, 1, 2, 3))
	for s := range p.Shards {
		if p.Shards[s] != want.Shards[s] {
			t.Fatalf("initial shard %d = %v, want %v", s, p.Shards[s], want.Shards[s])
		}
	}

	// A committed failure recomputes the placement with the view.
	r.cli.Fail(3)
	if !r.cli.WaitEpoch(2, time.Second) {
		t.Fatal("fail never committed")
	}
	p = r.cli.State().Placement
	if p.Epoch != 2 {
		t.Fatalf("placement epoch after fail: %d", p.Epoch)
	}
	for s, ds := range p.Shards {
		if ds.Contains(3) {
			t.Fatalf("shard %d still driven by failed node: %v", s, ds)
		}
		if ds != wire.BitmapOf(0, 1, 2) {
			t.Fatalf("shard %d drivers %v, want all three survivors", s, ds)
		}
	}

	// Placement survives a leader takeover (state transfer, no recompute
	// drift) and keeps evolving through the new leader.
	r.hub.SetDown(r.ens.IDs()[0], true)
	r.cli.Join(5)
	deadline := time.Now().Add(2 * time.Second)
	for r.cli.State().Placement.Epoch != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("placement never advanced through the new leader: %+v", r.cli.State().Placement)
		}
		time.Sleep(time.Millisecond)
	}
	p = r.cli.State().Placement
	joined := 0
	for _, ds := range p.Shards {
		if ds.Count() != 3 {
			t.Fatalf("shard degree broken after join: %v", ds)
		}
		if ds.Contains(5) {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("joined node drives no shards")
	}
}

func TestRenewalsLockFree(t *testing.T) {
	r := newRig(t, 3, wire.BitmapOf(0, 1, 2), Config{Lease: 50 * time.Millisecond})
	// Concurrent renewals from all nodes: must not race (run under -race)
	// and must reach the replicas' lease tables.
	done := make(chan struct{})
	for n := wire.NodeID(0); n < 3; n++ {
		go func(n wire.NodeID) {
			for i := 0; i < 100; i++ {
				r.cli.Renew(n)
			}
			done <- struct{}{}
		}(n)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}
