package viewsvc

import (
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Reserved transport ids for the view service on a shared fabric: the
// ensemble lives at the top of the NodeID space so data nodes (0..MaxDataNode)
// never collide with it.
const (
	// ClientID is the conventional endpoint id for a deployment's client.
	ClientID wire.NodeID = 60
	// MaxDataNode is the largest data-node id on a fabric that also hosts
	// the view service.
	MaxDataNode wire.NodeID = ClientID - 1
)

// ReplicaIDs returns the reserved transport ids for an n-replica ensemble
// (61, 62, 63 for the production-shape three replicas).
func ReplicaIDs(n int) []wire.NodeID {
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(61 + i)
	}
	return ids
}

// Ensemble owns a set of running replicas and their transports.
type Ensemble struct {
	replicas []*Replica
	trs      []transport.Transport
	ids      []wire.NodeID
}

// StartEnsemble boots one replica per transport (trs[i] serves ids[i]) with
// the initial view {epoch 1, members}. The caller picks the fabric: hub
// endpoints for in-process deployments, reliable transports over netsim for
// fault-injection tests, TCP for real ones.
func StartEnsemble(cfg Config, ids []wire.NodeID, trs []transport.Transport, members wire.Bitmap) *Ensemble {
	e := &Ensemble{ids: append([]wire.NodeID(nil), ids...), trs: trs}
	for i, tr := range trs {
		e.replicas = append(e.replicas, NewReplica(cfg, ids, i, tr, members))
	}
	return e
}

// IDs returns the ensemble's transport ids.
func (e *Ensemble) IDs() []wire.NodeID { return e.ids }

// Size returns the replica count.
func (e *Ensemble) Size() int { return len(e.replicas) }

// Replica returns ensemble member i (tests).
func (e *Ensemble) Replica(i int) *Replica { return e.replicas[i] }

// LeaderIndex returns the index of the replica with the highest ballot that
// believes it is leading, or -1 when no replica currently claims leadership.
func (e *Ensemble) LeaderIndex() int {
	best, bestBallot := -1, uint64(0)
	for i, r := range e.replicas {
		r.mu.Lock()
		if r.leading && (best == -1 || r.ballot > bestBallot) {
			best, bestBallot = i, r.ballot
		}
		r.mu.Unlock()
	}
	return best
}

// Close stops every replica and closes their transports.
func (e *Ensemble) Close() {
	for _, r := range e.replicas {
		r.Close()
	}
	for _, tr := range e.trs {
		_ = tr.Close()
	}
}
