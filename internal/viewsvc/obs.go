package viewsvc

import (
	"time"

	"zeus/internal/obs"
)

// clientObs caches the view-service client's metric handles (resolved once
// at wiring time — see commit.engineObs for the discipline).
type clientObs struct {
	reg *obs.Registry

	// epochChanges counts installed view changes; barrierNS is the
	// recovery-barrier duration (epoch bump with removed nodes → barrier
	// cleared) — the paper's "recovery pause" made measurable.
	epochChanges *obs.Counter
	barrierNS    *obs.Histogram
	// renewLagNS is the gap between consecutive lease-renewal multicasts;
	// a lag approaching the lease is a node about to be suspected.
	renewLagNS *obs.Histogram

	// barrierStart is touched only from the pump goroutine (state installs
	// are serialized there), so it needs no lock.
	barrierStart time.Time
}

// SetObs wires the observability registry. Must be called before the client
// processes ensemble traffic (wiring time): Renew and pump read c.obs
// without synchronization.
func (c *Client) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	c.obs = &clientObs{
		reg:          r,
		epochChanges: r.Counter("vs_epoch_changes_total"),
		barrierNS:    r.Histogram("vs_barrier_ns"),
		renewLagNS:   r.Histogram("vs_renew_lag_ns"),
	}
	r.GaugeFunc("vs_epoch", func() int64 { return int64(c.View().Epoch) })
	r.GaugeFunc("vs_live_nodes", func() int64 { return int64(c.View().Live.Count()) })
}
