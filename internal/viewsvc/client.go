package viewsvc

import (
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/retry"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Client is a deployment's handle on the view service: it caches the last
// committed state, receives state pushes (VSCommit), proposes membership
// commands, renews data-node leases, and reports recovery-barrier progress.
//
// Clients never locate the leader: every proposal is multicast to the whole
// ensemble (only the leader acts; commands are deduplicated against the
// committed state) and retried until its effect is visible in the cached
// state, which makes proposals survive leader failure and ballot takeover
// without any redirect machinery.
type Client struct {
	cfg      Config
	tr       transport.Transport
	replicas []wire.NodeID
	ownsTr   bool // Close closes tr only when the client installed on it

	mu    sync.Mutex
	state wire.VSState
	heard bool // a state from the ensemble (vs the local seed) installed

	onView      func(old, next wire.View, removed wire.Bitmap)
	onRecovered func(wire.Epoch)
	onState     func(wire.VSState)

	// Renewal coalescing, entirely atomic — concurrent renewals never
	// serialize on the client mutex (or any mutex): Renew sets the node's
	// bit in renewPending; one multicast per throttle window carries the
	// whole bitmap (so renewal wire traffic is independent of the node
	// count), sent inline by whichever renewal crosses the window first
	// and swept by a background ticker for bits set inside it.
	renewPending atomic.Uint64
	renewFlushed atomic.Int64 // unix nanos of the last renewal multicast

	events chan wire.VSState
	closed chan struct{}
	once   sync.Once

	// obs, when set (SetObs, wiring time), holds the cached metric
	// handles; nil keeps the seed paths.
	obs *clientObs
}

// NewClient attaches a client to the ensemble at ids over tr, seeded with
// the deployment's initial view {epoch 1, members}. The client installs its
// handler on tr and subscribes to commit pushes with an initial query.
func NewClient(cfg Config, tr transport.Transport, ids []wire.NodeID, members wire.Bitmap) *Client {
	return newClient(cfg, tr, ids, members, true)
}

// NewClientDetached is NewClient for callers that own the transport's
// handler themselves — a zeusd process routes data-plane and view-service
// traffic through one Router over one socket. The client installs nothing;
// route KindVSCommit and KindVSQuery to Handle. Close leaves the shared
// transport open.
func NewClientDetached(cfg Config, tr transport.Transport, ids []wire.NodeID, members wire.Bitmap) *Client {
	return newClient(cfg, tr, ids, members, false)
}

func newClient(cfg Config, tr transport.Transport, ids []wire.NodeID, members wire.Bitmap, install bool) *Client {
	c := &Client{
		cfg:      cfg.withDefaults(),
		tr:       tr,
		replicas: append([]wire.NodeID(nil), ids...),
		ownsTr:   install,
		events:   make(chan wire.VSState, 1024),
		closed:   make(chan struct{}),
	}
	c.state = wire.VSState{
		Index: 0, Epoch: 1, Live: members,
		Placement: wire.ComputePlacement(c.cfg.DirShards, c.cfg.DirDegree, 1, members),
		Addrs:     append([]wire.NodeAddr(nil), c.cfg.InitialAddrs...),
	}
	if install {
		tr.SetHandler(c.Handle)
	}
	go c.pump()
	go c.renewLoop()
	c.query()
	return c
}

// Close stops the client's goroutines (and its transport, when owned).
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.closed)
		if c.ownsTr {
			_ = c.tr.Close()
		}
	})
}

// OnView registers the (single) view-change callback; it runs on the
// client's notification goroutine, in commit order.
func (c *Client) OnView(fn func(old, next wire.View, removed wire.Bitmap)) {
	c.mu.Lock()
	c.onView = fn
	c.mu.Unlock()
}

// OnRecovered registers the (single) barrier-completion callback.
func (c *Client) OnRecovered(fn func(wire.Epoch)) {
	c.mu.Lock()
	c.onRecovered = fn
	c.mu.Unlock()
}

// OnState registers the (single) raw-state callback: it runs for every newly
// installed committed state, BEFORE the view/recovered callbacks that state
// implies — consumers of replicated side-state (the directory placement)
// must be current by the time the view-change machinery reacts.
func (c *Client) OnState(fn func(wire.VSState)) {
	c.mu.Lock()
	c.onState = fn
	c.mu.Unlock()
}

// View returns the cached committed view.
func (c *Client) View() wire.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wire.View{Epoch: c.state.Epoch, Live: c.state.Live}
}

// State returns the full cached committed state.
func (c *Client) State() wire.VSState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Heard reports whether the client has installed at least one state actually
// received from the ensemble — first contact. Until then State() is only the
// local seed (for an unseeded client: empty), so external tooling and
// joiners gate on Heard before trusting the cached view.
func (c *Client) Heard() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heard
}

// RecoveryPending reports whether a recovery barrier is open.
func (c *Client) RecoveryPending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.Barrier != 0
}

// epochPollPolicy paces WaitEpoch's cached-state poll: fixed 200 µs probes
// (retrydiscipline: engine pacing goes through internal/retry); the query
// backstop keeps its own coarser RetryEvery cadence.
var epochPollPolicy = retry.Policy{
	InitialBackoff: 200 * time.Microsecond,
	MaxBackoff:     200 * time.Microsecond,
	Multiplier:     1,
	Jitter:         -1,
}

// WaitEpoch blocks until the cached epoch reaches e or timeout elapses,
// querying the ensemble periodically as a lost-push backstop.
func (c *Client) WaitEpoch(e wire.Epoch, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	nextQuery := time.Now().Add(c.cfg.RetryEvery)
	poll := epochPollPolicy.Start()
	for {
		c.mu.Lock()
		cur := c.state.Epoch
		c.mu.Unlock()
		if cur >= e {
			return true
		}
		now := time.Now()
		if now.After(deadline) {
			return false
		}
		if now.After(nextQuery) {
			c.query()
			nextQuery = now.Add(c.cfg.RetryEvery)
		}
		wait, _ := poll.Next()
		_ = retry.Sleep(nil, wait, nil)
	}
}

// Renew renews node's lease: an atomic bit set, plus — at most once per
// throttle window across ALL nodes — one bitmap multicast. No lock anywhere.
func (c *Client) Renew(node wire.NodeID) {
	if node >= wire.MaxNodes {
		return
	}
	c.renewPending.Or(1 << node)
	now := time.Now().UnixNano()
	last := c.renewFlushed.Load()
	if now-last < int64(c.cfg.Lease/4) {
		return // a recent flush covers us; the sweeper sends the rest
	}
	if c.renewFlushed.CompareAndSwap(last, now) {
		if ob := c.obs; ob != nil && last != 0 && now > last {
			ob.renewLagNS.Record(uint64(now - last))
		}
		c.flushRenewals()
	}
}

// flushRenewals multicasts (and clears) the pending renewal bitmap.
func (c *Client) flushRenewals() {
	bits := c.renewPending.Swap(0)
	if bits == 0 {
		return
	}
	_ = transport.Multicast(c.tr, c.replicas, &wire.VSLeaseMsg{Nodes: wire.Bitmap(bits)})
	transport.Flush(c.tr)
}

// renewLoop sweeps renewal bits that arrived inside a throttle window. The
// floor keeps idle clients from ticking hot on millisecond-scale leases
// (the inline flush in Renew covers first renewals immediately).
func (c *Client) renewLoop() {
	every := c.cfg.Lease / 4
	if every < 2*time.Millisecond {
		every = 2 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			if c.renewPending.Load() != 0 {
				now := time.Now().UnixNano()
				prev := c.renewFlushed.Swap(now)
				if ob := c.obs; ob != nil && prev != 0 && now > prev {
					ob.renewLagNS.Record(uint64(now - prev))
				}
				c.flushRenewals()
			}
		}
	}
}

// Fail reports a crashed node. It returns immediately (the view change
// happens after the lease expires); a background loop re-proposes until the
// node has left the view, so the report survives view-service leader crashes.
func (c *Client) Fail(node wire.NodeID) {
	go c.driveUntil(wire.VSCommand{Op: wire.VSFail, Node: node}, func(s wire.VSState) bool {
		return !s.Live.Contains(node)
	}, c.cfg.Lease+10*time.Second)
}

// Join adds a node (scale-out) and blocks until the view reflects it.
// It reports false if the ensemble could not commit the change in time
// (e.g. no replica quorum survives).
func (c *Client) Join(node wire.NodeID) bool {
	return c.JoinAddr(node, "")
}

// JoinAddr is Join carrying the node's advertised endpoint: the committed
// state records it in the replicated address book (VSState.Addrs), so
// joiners discover peers from the ensemble instead of static peer lists.
func (c *Client) JoinAddr(node wire.NodeID, addr string) bool {
	return c.driveUntil(wire.VSCommand{Op: wire.VSJoin, Node: node, Addr: addr}, func(s wire.VSState) bool {
		return s.Live.Contains(node)
	}, 5*time.Second)
}

// Leave removes a node gracefully and blocks until the view reflects it;
// false means the ensemble could not commit the change in time.
func (c *Client) Leave(node wire.NodeID) bool {
	return c.driveUntil(wire.VSCommand{Op: wire.VSLeave, Node: node}, func(s wire.VSState) bool {
		return !s.Live.Contains(node)
	}, 5*time.Second)
}

// ReportRecoveryDone records that node finished replaying pending reliable
// commits for epoch. Retried in the background until the barrier no longer
// expects the node.
func (c *Client) ReportRecoveryDone(epoch wire.Epoch, node wire.NodeID) {
	go c.driveUntil(wire.VSCommand{Op: wire.VSRecoveryDone, Node: node, Epoch: epoch}, func(s wire.VSState) bool {
		// Only a state that has SEEN this barrier can prove the report landed.
		// The report is made from inside the pump's view-change callbacks,
		// before the state that opened the barrier is installed in the cache —
		// so a cache with no barrier at all (BarrierEpoch < epoch) is merely
		// stale, and reading its Barrier == 0 as success would drop the report
		// and wedge the barrier. BarrierEpoch > epoch means a newer failure
		// superseded this barrier and the report is moot.
		return s.BarrierEpoch > epoch || (s.BarrierEpoch == epoch && !s.Barrier.Contains(node))
	}, 10*time.Second)
}

// driveUntil multicasts cmd to the ensemble until the cached state satisfies
// done, reporting whether it did before the deadline (false ⇒ the ensemble
// made no progress, e.g. quorum lost). Commands are deduplicated leader-side,
// so the retries cost only wire traffic.
func (c *Client) driveUntil(cmd wire.VSCommand, done func(wire.VSState) bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		s := c.state
		c.mu.Unlock()
		if done(s) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		_ = transport.Multicast(c.tr, c.replicas, &wire.VSPropose{Cmd: cmd})
		transport.Flush(c.tr)
		// Fine-grained wait: re-check the cache well before the next
		// re-proposal is due (the command usually commits in microseconds).
		next := time.Now().Add(c.cfg.RetryEvery)
		for time.Now().Before(next) {
			c.mu.Lock()
			s = c.state
			c.mu.Unlock()
			if done(s) {
				return true
			}
			select {
			case <-c.closed:
				return false
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// query asks every replica for its committed state (the responses heal any
// missed push; the Index guard drops stale ones).
func (c *Client) query() {
	_ = transport.Multicast(c.tr, c.replicas, &wire.VSQuery{})
	transport.Flush(c.tr)
}

// Handle consumes one view-service message; it is the transport handler of
// attached clients and the Router target of detached ones.
func (c *Client) Handle(_ wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.VSCommit:
		c.enqueue(v.State)
	case *wire.VSQuery:
		if v.Resp {
			c.enqueue(v.State)
		}
	}
}

// enqueue hands a received committed state to the pump. Installation happens
// THERE, not here: the cached state (what View/WaitEpoch/RecoveryPending
// observe) must only advance after the callbacks for everything it implies
// have run, otherwise a caller polling RecoveryPending could see the barrier
// closed while the recovered callbacks are still in flight and read
// not-yet-recovered engine state.
func (c *Client) enqueue(s wire.VSState) {
	select {
	case c.events <- s:
	case <-c.closed:
	}
}

// pump serializes state installation and notification delivery in commit
// order (view changes strictly before the barrier completion that follows
// them). Barrier completion is derived from the state *transition*
// (open → closed), not from the VSCommit flag: a query response from a
// lagging replica may deliver the closing state before (and thereby
// suppress, via the Index guard) the leader's flagged push, and the
// transition rule also covers a client that healed across several missed
// commits in one jump.
func (c *Client) pump() {
	for {
		var s wire.VSState
		select {
		case <-c.closed:
			return
		case s = <-c.events:
		}
		c.mu.Lock()
		// Index guard, with one exception: the very first state actually
		// received from the ensemble is installed even at the seed's index.
		// A founded-but-idle ensemble has committed nothing (renewals are
		// lease-table multicasts, not log commands), so its query responses
		// carry Index 0 — a fresh client (zeusctl, a joining zeusd) would
		// otherwise never learn the live set or the address book. Equal-
		// index adoption is safe: the content matches any honest seed, no
		// view-change or recovery edge can derive from it, and Heard lets
		// callers use first contact as the readiness signal.
		if s.Index < c.state.Index || (s.Index == c.state.Index && c.heard) {
			c.mu.Unlock()
			continue
		}
		old := wire.View{Epoch: c.state.Epoch, Live: c.state.Live}
		oldBarrier := c.state.Barrier
		next := wire.View{Epoch: s.Epoch, Live: s.Live}
		removed := old.Live &^ next.Live
		viewChanged := next.Epoch > old.Epoch
		recovered := s.Barrier == 0 && (oldBarrier != 0 || (viewChanged && removed != 0))
		onView, onRecovered, onState := c.onView, c.onRecovered, c.onState
		c.mu.Unlock()
		if ob := c.obs; ob != nil {
			if viewChanged {
				ob.epochChanges.Inc()
				if removed != 0 {
					ob.barrierStart = time.Now()
				}
			}
			if recovered {
				if ob.barrierStart.IsZero() {
					// Recovery completed within one state push: the
					// barrier was never observed open, but the owner-kill
					// still recovered — record a zero-length barrier so
					// every recovery leaves a sample.
					ob.barrierNS.Record(0)
				} else {
					ob.barrierNS.RecordSince(ob.barrierStart)
					ob.barrierStart = time.Time{}
				}
			}
		}
		// Callbacks first, install second: by the time WaitEpoch or
		// RecoveryPending observe the new state, its consequences (engine
		// pause/recovery/resume) have fully propagated.
		if onState != nil {
			onState(s)
		}
		if viewChanged && onView != nil {
			onView(old, next, removed)
		}
		if recovered && onRecovered != nil {
			onRecovered(s.BarrierEpoch)
		}
		c.mu.Lock()
		c.state = s
		c.heard = true
		c.mu.Unlock()
	}
}
