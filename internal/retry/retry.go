// Package retry is the unified reliability/retry subsystem shared by the
// three layers that previously each grew an ad-hoc retry loop:
//
//   - transport.Reliable's retransmitter (adaptive RTO, see RTOEstimator),
//   - the ownership engine's NACK back-off loop (§6.2 deadlock circumvention),
//   - dbapi.Run's application-level conflict-retry loop.
//
// A Policy describes when to give up and how to back off; a Retrier is one
// policy execution (attempt counter, current back-off, elapsed-time budget).
// Policies are deadline- and context-aware so callers riding through a crash
// recovery (membership epoch bump + replay, §5.1) keep retrying instead of
// surfacing transient aborts to the application.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrExhausted is returned by Do when the policy's attempt or elapsed budget
// is spent. It is always wrapped around (joined with) the last attempt error.
var ErrExhausted = errors.New("retry: policy exhausted")

// Policy describes a retry strategy. The zero value is usable: it retries
// forever with a 2 µs initial back-off doubling to 2 ms, full jitter.
type Policy struct {
	// InitialBackoff is the back-off before the second attempt.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of the current back-off added uniformly at
	// random (default 1: sleep in [backoff, 2*backoff)). Zero-jitter
	// policies must set it negative; 0 means "use default".
	Jitter float64
	// MaxAttempts bounds the number of attempts; 0 means unlimited.
	MaxAttempts int
	// MaxElapsed bounds the total time across attempts and back-offs
	// measured from the first Next call; 0 means unlimited.
	MaxElapsed time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 2 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff < p.InitialBackoff {
		p.MaxBackoff = p.InitialBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 1
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Start begins one execution of the policy.
func (p Policy) Start() *Retrier {
	return &Retrier{p: p.withDefaults()}
}

// Retrier tracks one policy execution. Not safe for concurrent use.
type Retrier struct {
	p       Policy
	attempt int
	backoff time.Duration
	start   time.Time
}

// Attempt returns the number of completed attempts.
func (r *Retrier) Attempt() int { return r.attempt }

// Next records a failed attempt and reports whether the policy allows another
// one, along with the jittered back-off to wait first. ok=false means the
// policy is exhausted.
func (r *Retrier) Next() (wait time.Duration, ok bool) {
	now := time.Now()
	if r.attempt == 0 {
		r.start = now
		r.backoff = r.p.InitialBackoff
	}
	r.attempt++
	if r.p.MaxAttempts > 0 && r.attempt >= r.p.MaxAttempts {
		return 0, false
	}
	if r.p.MaxElapsed > 0 && now.Sub(r.start) >= r.p.MaxElapsed {
		return 0, false
	}
	wait = r.backoff
	if r.p.Jitter > 0 {
		wait += time.Duration(rand.Int63n(int64(float64(r.backoff)*r.p.Jitter) + 1))
	}
	r.backoff = time.Duration(float64(r.backoff) * r.p.Multiplier)
	if r.backoff > r.p.MaxBackoff {
		r.backoff = r.p.MaxBackoff
	}
	// Never sleep past the elapsed budget.
	if r.p.MaxElapsed > 0 {
		if left := r.p.MaxElapsed - now.Sub(r.start); wait > left {
			wait = left
		}
	}
	return wait, true
}

// Sleep waits for d, returning early when ctx is done (with its error) or
// when wake fires (nil). Either channel may be nil.
func Sleep(ctx context.Context, d time.Duration, wake <-chan struct{}) error {
	if d <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	if ctxDone == nil && wake == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-wake:
		return nil
	case <-ctxDone:
		return ctx.Err()
	}
}

// Do runs fn until it returns nil, a non-retryable error, ctx is cancelled,
// or the policy is exhausted. retryable classifies errors (nil means every
// error is retryable). On exhaustion the last error is returned joined with
// ErrExhausted so callers can match either.
func Do(ctx context.Context, p Policy, retryable func(error) bool, fn func(attempt int) error) error {
	r := p.Start()
	for {
		err := fn(r.Attempt())
		if err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		wait, ok := r.Next()
		if !ok {
			return errors.Join(ErrExhausted, err)
		}
		if serr := Sleep(ctx, wait, nil); serr != nil {
			return errors.Join(serr, err)
		}
	}
}
