package retry

import (
	"sync"
	"time"
)

// RTOEstimator computes an adaptive retransmission timeout from RTT samples,
// following RFC 6298 (TCP): SRTT/RTTVAR smoothing with RTO = SRTT + 4*RTTVAR,
// clamped to [Min, Max], and exponential back-off while retransmitting.
//
// Callers must apply Karn's rule themselves: only feed Observe with samples
// from frames that were never retransmitted (a retransmitted frame's ACK is
// ambiguous). A fresh sample resets the retransmission back-off.
//
// Safe for concurrent use.
type RTOEstimator struct {
	mu      sync.Mutex
	srtt    time.Duration
	rttvar  time.Duration
	rto     time.Duration
	min     time.Duration
	max     time.Duration
	backoff uint // consecutive timeout-retransmit doublings
}

// NewRTOEstimator returns an estimator starting at initial, clamped to
// [min, max] once samples arrive.
func NewRTOEstimator(initial, min, max time.Duration) *RTOEstimator {
	if min <= 0 {
		min = 100 * time.Microsecond
	}
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if max < min {
		max = min
	}
	if initial <= 0 {
		initial = min
	}
	if initial > max {
		initial = max
	}
	return &RTOEstimator{rto: initial, min: min, max: max}
}

// Observe feeds one RTT sample (RFC 6298 §2) and clears the back-off.
func (e *RTOEstimator) Observe(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		d := e.srtt - sample
		if d < 0 {
			d = -d
		}
		e.rttvar = (3*e.rttvar + d) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	e.backoff = 0
	e.rto = e.clampLocked(e.srtt + 4*e.rttvar)
}

// RTO returns the current retransmission timeout, including back-off.
func (e *RTOEstimator) RTO() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	rto := e.rto << e.backoff
	if rto > e.max || rto < e.rto {
		rto = e.max
	}
	return rto
}

// Backoff doubles the effective RTO (called after a timeout retransmission,
// RFC 6298 §5.5); the next Observe resets it.
func (e *RTOEstimator) Backoff() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.backoff < 16 {
		e.backoff++
	}
}

// SRTT returns the smoothed RTT (0 before the first sample; diagnostics).
func (e *RTOEstimator) SRTT() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srtt
}

func (e *RTOEstimator) clampLocked(d time.Duration) time.Duration {
	if d < e.min {
		return e.min
	}
	if d > e.max {
		return e.max
	}
	return d
}
