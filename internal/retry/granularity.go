package retry

import (
	"sync"
	"time"
)

var (
	granOnce sync.Once
	granVal  time.Duration
)

// TimerGranularity reports (once, then cached) how coarse this host's sleep
// timers actually are: the worst observed overshoot of a short time.Sleep.
// Virtualized and containerized hosts routinely stretch a 50µs sleep past a
// millisecond; timeouts racing against timer-driven events (delayed acks,
// flush ticks) must be floored by this value or they fire spuriously.
func TimerGranularity() time.Duration {
	granOnce.Do(func() {
		const probe = 50 * time.Microsecond
		var worst time.Duration
		for i := 0; i < 4; i++ {
			start := time.Now()
			time.Sleep(probe)
			if over := time.Since(start) - probe; over > worst {
				worst = over
			}
		}
		if worst < 50*time.Microsecond {
			worst = 50 * time.Microsecond
		}
		if worst > 5*time.Millisecond {
			worst = 5 * time.Millisecond
		}
		granVal = worst
	})
	return granVal
}
