package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPolicyExhaustionByAttempts(t *testing.T) {
	p := Policy{InitialBackoff: time.Microsecond, MaxBackoff: time.Microsecond, MaxAttempts: 5}
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, nil, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		return boom
	})
	if calls != 5 {
		t.Fatalf("calls = %d, want 5", calls)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrExhausted joined with boom", err)
	}
}

func TestPolicyExhaustionByElapsed(t *testing.T) {
	p := Policy{InitialBackoff: time.Millisecond, MaxBackoff: time.Millisecond, MaxElapsed: 10 * time.Millisecond}
	start := time.Now()
	err := Do(context.Background(), p, nil, func(int) error { return errors.New("x") })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if e := time.Since(start); e > 200*time.Millisecond {
		t.Fatalf("took %v, budget was 10ms", e)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	p := Policy{InitialBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	calls := 0
	err := Do(context.Background(), p, nil, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("again")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Do(context.Background(), Policy{}, func(err error) bool { return !errors.Is(err, fatal) },
		func(int) error { calls++; return fatal })
	if !errors.Is(err, fatal) || errors.Is(err, ErrExhausted) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoHonoursContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{InitialBackoff: time.Second, MaxBackoff: time.Second}
	err := Do(ctx, p, nil, func(int) error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestJitterBounds(t *testing.T) {
	p := Policy{InitialBackoff: 100 * time.Microsecond, MaxBackoff: 100 * time.Microsecond, Jitter: 1}
	for i := 0; i < 100; i++ {
		r := p.Start()
		w, ok := r.Next()
		if !ok {
			t.Fatal("exhausted immediately")
		}
		// With Jitter=1 the wait lies in [backoff, 2*backoff].
		if w < 100*time.Microsecond || w > 200*time.Microsecond {
			t.Fatalf("wait %v outside [100µs, 200µs]", w)
		}
	}
}

func TestNoJitter(t *testing.T) {
	p := Policy{InitialBackoff: 50 * time.Microsecond, MaxBackoff: 400 * time.Microsecond, Jitter: -1}
	r := p.Start()
	want := []time.Duration{50, 100, 200, 400, 400} // microseconds, capped
	for i, w := range want {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if got != w*time.Microsecond {
			t.Fatalf("backoff[%d] = %v, want %v", i, got, w*time.Microsecond)
		}
	}
}

func TestSleepWake(t *testing.T) {
	wake := make(chan struct{})
	go func() { close(wake) }()
	start := time.Now()
	if err := Sleep(context.Background(), time.Second, wake); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Fatalf("wake signal ignored: slept %v", e)
	}
}

func TestRTOEstimatorConverges(t *testing.T) {
	e := NewRTOEstimator(10*time.Millisecond, 100*time.Microsecond, time.Second)
	if e.RTO() != 10*time.Millisecond {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	for i := 0; i < 50; i++ {
		e.Observe(200 * time.Microsecond)
	}
	rto := e.RTO()
	// Steady 200µs RTT: SRTT→200µs, RTTVAR→~0, RTO well under the initial.
	if rto > 2*time.Millisecond {
		t.Fatalf("RTO did not adapt down: %v", rto)
	}
	if rto < 100*time.Microsecond {
		t.Fatalf("RTO below floor: %v", rto)
	}
}

func TestRTOEstimatorBackoffAndReset(t *testing.T) {
	e := NewRTOEstimator(0, time.Millisecond, 100*time.Millisecond)
	e.Observe(2 * time.Millisecond)
	base := e.RTO()
	e.Backoff()
	e.Backoff()
	if got := e.RTO(); got < 4*base && got != 100*time.Millisecond {
		t.Fatalf("two backoffs: RTO %v, want >= 4*%v or capped", got, base)
	}
	e.Observe(2 * time.Millisecond)
	if got := e.RTO(); got >= 4*base && got > 2*base {
		t.Fatalf("sample did not reset backoff: %v", got)
	}
}

func TestRTOEstimatorClamps(t *testing.T) {
	e := NewRTOEstimator(0, time.Millisecond, 10*time.Millisecond)
	e.Observe(time.Nanosecond)
	if e.RTO() != time.Millisecond {
		t.Fatalf("RTO below min: %v", e.RTO())
	}
	e.Observe(time.Hour)
	if e.RTO() != 10*time.Millisecond {
		t.Fatalf("RTO above max: %v", e.RTO())
	}
	for i := 0; i < 32; i++ {
		e.Backoff()
	}
	if e.RTO() != 10*time.Millisecond {
		t.Fatalf("backoff overflowed the cap: %v", e.RTO())
	}
}
