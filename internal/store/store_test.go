package store

import (
	"sync"
	"testing"
	"testing/quick"

	"zeus/internal/wire"
)

func TestGetOrCreateDefaults(t *testing.T) {
	s := New()
	o, created := s.GetOrCreate(7)
	if !created {
		t.Fatal("first insert must report created")
	}
	if o.Level != wire.NonReplica || o.Replicas.Owner != wire.NoNode ||
		o.LocalOwner != NoLocalOwner || o.TState != TValid || o.OState != OValid {
		t.Fatalf("bad defaults: %+v", o)
	}
	o2, created2 := s.GetOrCreate(7)
	if created2 || o2 != o {
		t.Fatal("second GetOrCreate must return the same object")
	}
	if _, ok := s.Get(7); !ok {
		t.Fatal("Get after create failed")
	}
	if _, ok := s.Get(8); ok {
		t.Fatal("Get of absent object succeeded")
	}
}

func TestDeleteAndLen(t *testing.T) {
	s := New()
	for i := wire.ObjectID(0); i < 100; i++ {
		s.GetOrCreate(i)
	}
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Delete(50)
	if s.Len() != 99 {
		t.Fatalf("len after delete = %d", s.Len())
	}
	if _, ok := s.Get(50); ok {
		t.Fatal("deleted object still present")
	}
}

func TestForEachVisitsAllAndStops(t *testing.T) {
	s := New()
	for i := wire.ObjectID(0); i < 64; i++ {
		s.GetOrCreate(i)
	}
	seen := map[wire.ObjectID]bool{}
	s.ForEach(func(o *Object) bool {
		seen[o.ID] = true
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("visited %d objects", len(seen))
	}
	n := 0
	s.ForEach(func(*Object) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLocalOwnership(t *testing.T) {
	s := New()
	o, _ := s.GetOrCreate(1)
	if !o.TryAcquireLocal(3) {
		t.Fatal("free object must be acquirable")
	}
	if !o.TryAcquireLocal(3) {
		t.Fatal("same worker re-acquire must succeed")
	}
	if o.TryAcquireLocal(4) {
		t.Fatal("held object acquired by another worker")
	}
	o.ReleaseLocal(4) // not the holder: no-op
	if o.TryAcquireLocal(4) {
		t.Fatal("release by non-holder freed the object")
	}
	o.ReleaseLocal(3)
	if !o.TryAcquireLocal(4) {
		t.Fatal("released object must be acquirable")
	}
}

func TestLocalOwnershipMutualExclusion(t *testing.T) {
	s := New()
	o, _ := s.GetOrCreate(1)
	const workers = 8
	var wg sync.WaitGroup
	counter := 0
	for w := int32(0); w < workers; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if o.TryAcquireLocal(w) {
					counter++ // protected by local ownership
					o.ReleaseLocal(w)
				}
			}
		}(w)
	}
	wg.Wait()
	if counter == 0 {
		t.Fatal("no acquisitions at all")
	}
}

func TestSnapshotAndDataCopyIsolation(t *testing.T) {
	s := New()
	o, _ := s.GetOrCreate(1)
	o.Mu.Lock()
	o.Data = []byte("abc")
	o.TVersion = 5
	o.TState = TWrite
	o.Mu.Unlock()

	st, ver, data := o.Snapshot()
	if st != TWrite || ver != 5 || string(data) != "abc" {
		t.Fatalf("snapshot: %v %d %q", st, ver, data)
	}
	data[0] = 'X'
	if string(o.DataCopy()) != "abc" {
		t.Fatal("snapshot aliases object data")
	}
	c := o.DataCopy()
	c[0] = 'Y'
	if string(o.DataCopy()) != "abc" {
		t.Fatal("DataCopy aliases object data")
	}
	// Nil data stays nil.
	o2, _ := s.GetOrCreate(2)
	if o2.DataCopy() != nil {
		t.Fatal("nil data should copy to nil")
	}
	if _, _, d := o2.Snapshot(); d != nil {
		t.Fatal("nil data snapshot should be nil")
	}
}

// TestSnapshotRefStableAcrossReplace pins the replace-only contract behind
// the copy-on-read elision: a no-copy snapshot keeps observing exactly the
// bytes read, because writers install fresh slices instead of mutating the
// published array.
func TestSnapshotRefStableAcrossReplace(t *testing.T) {
	s := New()
	o, _ := s.GetOrCreate(1)
	o.Mu.Lock()
	o.Data = []byte("v1")
	o.SetTLocked(1, TValid)
	o.Mu.Unlock()

	st, ver, lvl, ref := o.SnapshotRef()
	if st != TValid || ver != 1 || lvl != wire.NonReplica || string(ref) != "v1" {
		t.Fatalf("snapshot ref: %v %d %v %q", st, ver, lvl, ref)
	}
	if &ref[0] != &o.Data[0] {
		t.Fatal("SnapshotRef must alias, not copy")
	}

	// A commit REPLACES the payload; the snapshot stays the old bytes.
	o.Mu.Lock()
	o.Data = []byte("v2")
	o.SetTLocked(2, TWrite)
	o.Mu.Unlock()
	if string(ref) != "v1" {
		t.Fatalf("snapshot mutated by replace: %q", ref)
	}
	if _, _, _, ref2 := o.SnapshotRef(); string(ref2) != "v2" {
		t.Fatalf("fresh snapshot: %q", ref2)
	}
}

// TestTSnapshotMirrorsSetTLocked pins the packed atomic word the lock-free
// read-only validation reads.
func TestTSnapshotMirrorsSetTLocked(t *testing.T) {
	s := New()
	o, _ := s.GetOrCreate(1)
	if v, st := o.TSnapshot(); v != 0 || st != TValid {
		t.Fatalf("zero value: %d %v", v, st)
	}
	o.Mu.Lock()
	o.SetTLocked(7, TInvalid)
	o.Mu.Unlock()
	if v, st := o.TSnapshot(); v != 7 || st != TInvalid {
		t.Fatalf("after SetTLocked: %d %v", v, st)
	}
	if o.TVersion != 7 || o.TState != TInvalid {
		t.Fatal("SetTLocked must also set the locked fields")
	}
	o.Mu.Lock()
	o.SetTLocked(8, TWrite)
	o.Mu.Unlock()
	if v, st := o.TSnapshot(); v != 8 || st != TWrite {
		t.Fatalf("after second SetTLocked: %d %v", v, st)
	}
}

func TestShardingDistribution(t *testing.T) {
	// Dense sequential IDs (the benchmarks' pattern) should scatter across
	// shards reasonably evenly thanks to Fibonacci hashing.
	s := New()
	for i := wire.ObjectID(0); i < 6400; i++ {
		s.GetOrCreate(i)
	}
	max := 0
	for i := range s.shards {
		if n := len(s.shards[i].objs); n > max {
			max = n
		}
	}
	if max > 400 { // perfectly even would be 100 per shard
		t.Fatalf("worst shard holds %d/6400 objects", max)
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := wire.ObjectID(i % 97)
				o, _ := s.GetOrCreate(id)
				o.Mu.Lock()
				o.TVersion++
				o.Mu.Unlock()
				s.Get(id)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 97 {
		t.Fatalf("len = %d, want 97", s.Len())
	}
	var total uint64
	s.ForEach(func(o *Object) bool {
		total += o.TVersion
		return true
	})
	if total != 4000 {
		t.Fatalf("version increments lost: %d, want 4000", total)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []TState{TValid, TInvalid, TWrite, TState(9)} {
		if s.String() == "" {
			t.Fatal("empty TState string")
		}
	}
	for _, s := range []OState{OValid, OInvalid, ORequest, ODrive, OState(9)} {
		if s.String() == "" {
			t.Fatal("empty OState string")
		}
	}
}

func TestGetOrCreatePropertyIdempotent(t *testing.T) {
	s := New()
	f := func(id uint64) bool {
		a, _ := s.GetOrCreate(wire.ObjectID(id))
		b, created := s.GetOrCreate(wire.ObjectID(id))
		return a == b && !created
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
