// Package store is the sharded in-memory object store underlying a Zeus
// node. Each object carries the reliable-commit metadata of §5 (t_state,
// t_version, t_data), the ownership metadata of §4 (o_state, o_ts,
// o_replicas), this node's access level (Table 1), and the local-ownership
// marker used by the multi-threaded local commit of §7.
package store

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/shardmap"
	"zeus/internal/wire"
)

// TState is the reliable-commit state of an object replica (§5).
type TState uint8

const (
	// TValid: the replica holds a reliably committed value and may serve
	// reads and read-only transactions.
	TValid TState = iota
	// TInvalid: an R-INV has been applied; the new value is not yet
	// reliably committed, so neither old nor new value may be returned.
	TInvalid
	// TWrite: the owner locally committed an update whose reliable commit
	// is pending.
	TWrite
)

func (s TState) String() string {
	switch s {
	case TValid:
		return "Valid"
	case TInvalid:
		return "Invalid"
	case TWrite:
		return "Write"
	default:
		return "TState(?)"
	}
}

// OState is the ownership state of an object at an arbiter (§4).
type OState uint8

const (
	// OValid: ownership metadata is stable.
	OValid OState = iota
	// OInvalid: an ownership INV has been applied; awaiting VAL.
	OInvalid
	// ORequest: this node has an outstanding ownership request.
	ORequest
	// ODrive: this directory node is driving an ownership request.
	ODrive
)

func (s OState) String() string {
	switch s {
	case OValid:
		return "Valid"
	case OInvalid:
		return "Invalid"
	case ORequest:
		return "Request"
	case ODrive:
		return "Drive"
	default:
		return "OState(?)"
	}
}

// NoLocalOwner marks an object not currently held by any local worker.
const NoLocalOwner int32 = -1

// PendingOwn is the arbitration record an arbiter keeps between processing an
// ownership INV and the matching VAL. It contains everything needed to replay
// the exact INV during failure recovery (arb-replay, §4.1).
type PendingOwn struct {
	ReqID       uint64
	TS          wire.OTS
	Requester   wire.NodeID
	Driver      wire.NodeID
	Mode        wire.ReqMode
	NewReplicas wire.ReplicaSet
	PrevOwner   wire.NodeID
	Arbiters    wire.Bitmap
	Epoch       wire.Epoch
	// Since records when this arbitration was applied locally; drivers
	// force-complete (arb-replay) arbitrations that linger past a
	// staleness threshold, e.g. because the requester gave up.
	Since time.Time
}

// Object is one object replica (or bare directory entry) at a node. Fields
// are protected by Mu; engines lock the object across multi-field updates.
type Object struct {
	Mu sync.Mutex

	ID wire.ObjectID

	// Reliable-commit metadata (meaningful on owner and readers).
	// TState/TVersion must be written through SetTLocked (under Mu) so the
	// packed atomic mirror (tsv) that the lock-free read-only validation
	// reads stays coherent.
	TState   TState
	TVersion uint64
	// Data is the object payload. The slice is REPLACE-ONLY: every writer
	// installs a freshly allocated (or freshly received) slice under Mu,
	// and no code path ever mutates a published backing array in place —
	// local commits install the transaction's private copy, R-INV apply
	// installs the decoded update slab, ownership transfer installs the
	// ACK payload, drops install nil. This contract is what makes the
	// no-copy read paths safe: SnapshotRef, the transaction layer's
	// owner-local read buffers, the ownership ACK piggyback and the
	// zero-copy FabricMem delivery all alias the array after Mu is
	// released. TestSnapshotRefStableAcrossReplace pins it.
	Data []byte

	// tsv mirrors ⟨TVersion, TState⟩ as one packed atomic word
	// (version<<2 | state), maintained by SetTLocked. Read-only
	// transactions re-validate against it without taking Mu (TSnapshot) —
	// the seqlock-style check where the single-word payload makes the
	// double-read degenerate to one consistent load.
	tsv atomic.Uint64

	// Ownership metadata (meaningful on the owner and directory nodes).
	OState   OState
	OTS      wire.OTS
	Replicas wire.ReplicaSet
	// Pending is the in-flight ownership request applied at INV time and
	// finalized (or superseded) at VAL time; nil when none.
	Pending *PendingOwn

	// Level is this node's access level for the object.
	Level wire.AccessLevel

	// LocalOwner is the local worker currently holding the object for a
	// write transaction (§7's local ownership), or NoLocalOwner.
	LocalOwner int32

	// PendingCommits counts reliable commits involving this object that
	// have not been validated yet; the owner NACKs ownership requests
	// while it is non-zero (§4.1, §5.2). Writers (the local-commit path and
	// the commit engine's slot completion) always also hold Mu, so the
	// counter stays consistent with TState; it is atomic so the ownership
	// engine's HasPendingCommit hook can read it without taking Mu — the
	// hook runs with other object locks held, and a lock-free read keeps
	// pending checks off every engine-global structure.
	PendingCommits atomic.Int32

	// YieldLocalUntil implements transfer fairness (§6.2 starvation
	// avoidance): after NACKing an ownership request for pending commits,
	// the owner briefly defers granting *new* local write ownership of
	// this object, so a back-to-back local write stream cannot starve a
	// remote requester forever — the pipeline drains and the requester's
	// next probe wins. Zero means no yield.
	YieldLocalUntil time.Time

	// CommitCTS is the commit timestamp of the newest reliably-committed
	// version this replica knows about (0 when unknown, e.g. an object
	// seeded before snapshot reads or recovered without a timestamp).
	// Guarded by Mu; written only via PublishRingLocked / ResetRingLocked.
	CommitCTS uint64

	// Ring is the per-object MVCC version ring: the last few committed
	// ⟨CTS, version, payload⟩ triples, newest last, serving snapshot reads
	// at a timestamp. Entries follow the same REPLACE-ONLY discipline as
	// Data — VersionEntry.Data aliases published payloads and is never
	// mutated in place — and the slice itself changes only through
	// PublishRingLocked / ResetRingLocked under Mu (enforced by the
	// zeuslint ringpublish analyzer). A published entry's payload may be
	// aliased by concurrent snapshot readers after Mu is released.
	Ring []VersionEntry
}

// VersionEntry is one committed version in an object's ring.
type VersionEntry struct {
	// CTS is the commit timestamp the coordinator minted for the reliable
	// commit that produced Version.
	CTS     uint64
	Version uint64
	// Data is the committed payload. Replace-only, like Object.Data.
	Data []byte
}

// DefaultRingEntries is the per-object ring capacity: enough to cover the
// read-timestamp window (a few safe-time exchange intervals) without
// retaining unbounded history.
const DefaultRingEntries = 8

// PublishRingLocked records a committed version in the ring (caller holds
// Mu). Publication is a sorted insert by version with dedupe: slot
// completions race (ack handlers run per follower), so version k may be
// published after k+1 — an append-only ring would drop k and serve a stale
// read at timestamps in [cts_k, cts_{k+1}). When the ring is full the
// oldest entry is dropped. CommitCTS tracks the newest published entry.
func (o *Object) PublishRingLocked(cts, ver uint64, data []byte) {
	if cts == 0 {
		return // no timestamp known (e.g. pre-snapshot-reads seed): nothing to publish
	}
	i := len(o.Ring)
	for i > 0 && o.Ring[i-1].Version >= ver {
		if o.Ring[i-1].Version == ver {
			return // already published
		}
		i--
	}
	o.Ring = append(o.Ring, VersionEntry{})
	copy(o.Ring[i+1:], o.Ring[i:])
	o.Ring[i] = VersionEntry{CTS: cts, Version: ver, Data: data}
	if len(o.Ring) > DefaultRingEntries {
		o.Ring = o.Ring[:copy(o.Ring, o.Ring[1:])]
	}
	if cts > o.CommitCTS {
		o.CommitCTS = cts
	}
}

// ResetRingLocked drops the ring and commit timestamp (caller holds Mu):
// used when a replica's history stops being authoritative — recovery
// installs, ownership drops — so a rejoining node can never serve pre-sync
// versions from a stale ring.
func (o *Object) ResetRingLocked() {
	o.Ring = nil
	o.CommitCTS = 0
}

// RingReadLocked returns the newest committed version with CTS ≤ ts
// (caller holds Mu). When the ring has no entries at or below ts, the
// current committed value stands in: a validated object whose CommitCTS ≤
// ts (including CommitCTS 0 — committed before timestamps existed, hence
// before any read timestamp) is itself the snapshot. ok=false means this
// replica's retained history starts after ts and the read must retry at a
// fresher timestamp.
func (o *Object) RingReadLocked(ts uint64) (VersionEntry, bool) {
	for i := len(o.Ring) - 1; i >= 0; i-- {
		if o.Ring[i].CTS <= ts {
			return o.Ring[i], true
		}
	}
	if o.TState == TValid && o.CommitCTS <= ts {
		return VersionEntry{CTS: o.CommitCTS, Version: o.TVersion, Data: o.Data}, true
	}
	return VersionEntry{}, false
}

// TryAcquireLocal attempts to make worker the local owner. It succeeds if
// the object is free or already held by the same worker (re-entrancy within
// one transaction is handled by the caller's write set, so same-worker
// re-acquisition only happens for distinct objects in one tx).
func (o *Object) TryAcquireLocal(worker int32) bool {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	return o.GrantLocalLocked(worker)
}

// GrantLocalLocked is TryAcquireLocal for callers already holding o.Mu. A
// *new* grant is refused while the transfer-fairness yield (YieldLocalUntil)
// is active; a worker that already holds the object keeps it.
func (o *Object) GrantLocalLocked(worker int32) bool {
	if o.LocalOwner == worker {
		return true
	}
	if o.LocalOwner != NoLocalOwner {
		return false
	}
	if !o.YieldLocalUntil.IsZero() && time.Now().Before(o.YieldLocalUntil) {
		return false
	}
	o.LocalOwner = worker
	return true
}

// ReleaseLocal releases local ownership if held by worker.
func (o *Object) ReleaseLocal(worker int32) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.LocalOwner == worker {
		o.LocalOwner = NoLocalOwner
	}
}

// SetTLocked installs the reliable-commit version and state (caller holds
// Mu) and publishes the packed atomic mirror for lock-free RO validation.
func (o *Object) SetTLocked(ver uint64, st TState) {
	o.TVersion = ver
	o.TState = st
	o.tsv.Store(ver<<2 | uint64(st))
}

// TSnapshot returns ⟨t_version, t_state⟩ from one atomic load, without
// taking Mu. Because both ride in a single word, the value is always a
// consistent pair — the read-only re-validation path uses this instead of
// the object lock.
func (o *Object) TSnapshot() (uint64, TState) {
	w := o.tsv.Load()
	return w >> 2, TState(w & 3)
}

// SnapshotRef returns (t_state, t_version, access level, data) WITHOUT
// copying the payload — the transaction layer's read path. The returned
// slice aliases the object's current Data, which is safe to read
// indefinitely thanks to the replace-only contract (see the Data field): a
// later commit installs a new slice and never touches the array this
// snapshot points at. Callers must uphold the same rule and never write
// through the result.
func (o *Object) SnapshotRef() (TState, uint64, wire.AccessLevel, []byte) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	return o.TState, o.TVersion, o.Level, o.Data
}

// DataCopy returns a copy of the object's data under the object lock.
func (o *Object) DataCopy() []byte {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Data == nil {
		return nil
	}
	out := make([]byte, len(o.Data))
	copy(out, o.Data)
	return out
}

// Snapshot returns (t_state, t_version, copy-of-data) atomically.
func (o *Object) Snapshot() (TState, uint64, []byte) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	var d []byte
	if o.Data != nil {
		d = make([]byte, len(o.Data))
		copy(d, o.Data)
	}
	return o.TState, o.TVersion, d
}

// shardCount scales with the host (the same policy as the ownership
// engine's stripes — see shardmap.ScaledCount).
var shardCount = shardmap.ScaledCount(runtime.GOMAXPROCS(0))

type shard struct {
	mu   sync.RWMutex
	objs map[wire.ObjectID]*Object
}

// Store is a sharded map of objects.
type Store struct {
	shift  uint
	shards []shard
}

// New creates an empty store.
func New() *Store {
	n := shardCount
	s := &Store{
		// Top log2(n) bits of the mixed hash index the shard.
		shift:  64 - uint(bits.TrailingZeros(uint(n))),
		shards: make([]shard, n),
	}
	for i := range s.shards {
		s.shards[i].objs = make(map[wire.ObjectID]*Object)
	}
	return s
}

func (s *Store) shard(id wire.ObjectID) *shard {
	// Fibonacci hashing spreads dense benchmark key ranges.
	return &s.shards[(uint64(id)*0x9E3779B97F4A7C15)>>s.shift]
}

// Get returns the object if present.
func (s *Store) Get(id wire.ObjectID) (*Object, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	o, ok := sh.objs[id]
	sh.mu.RUnlock()
	return o, ok
}

// GetOrCreate returns the object, creating a zero-value entry (non-replica,
// no owner) if absent. created reports whether insertion happened.
func (s *Store) GetOrCreate(id wire.ObjectID) (o *Object, created bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if o, ok := sh.objs[id]; ok {
		return o, false
	}
	o = &Object{
		ID:         id,
		Level:      wire.NonReplica,
		Replicas:   wire.ReplicaSet{Owner: wire.NoNode},
		LocalOwner: NoLocalOwner,
	}
	sh.objs[id] = o
	return o, true
}

// Delete removes the object.
func (s *Store) Delete(id wire.ObjectID) {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.objs, id)
	sh.mu.Unlock()
}

// Len returns the number of objects stored.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].objs)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// ForEach calls fn for every object. fn must not call back into the store.
// Iteration order is unspecified; objects inserted concurrently may or may
// not be visited.
func (s *Store) ForEach(fn func(*Object) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		objs := make([]*Object, 0, len(sh.objs))
		for _, o := range sh.objs {
			objs = append(objs, o)
		}
		sh.mu.RUnlock()
		for _, o := range objs {
			if !fn(o) {
				return
			}
		}
	}
}
