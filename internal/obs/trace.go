package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvents bounds the span ring of one trace. Events past the cap are
// dropped (counted), never reallocated: a trace must stay a fixed-size
// record the commit pipeline can stamp lock-free.
const TraceEvents = 16

type traceEvent struct {
	label string
	at    int64 // nanoseconds since Start
}

// Trace is one sampled transaction's span recorder: a fixed ring of
// timestamped events threaded from dbapi.Run through core.Tx into the
// commit slot. Event is nil-receiver-safe, so unsampled transactions carry
// a nil *Trace end to end and pay exactly one predictable branch per span
// point. Slots are claimed with an atomic index, so concurrent recorders
// (the worker goroutine and the commit dispatch goroutine) never race on a
// slot; readers render only after the transaction completed.
type Trace struct {
	ReqID uint64
	Start time.Time

	n       atomic.Int32
	dropped atomic.Uint32
	ev      [TraceEvents]traceEvent
}

// NewTrace starts a trace for one sampled transaction.
func NewTrace(reqID uint64) *Trace {
	return &Trace{ReqID: reqID, Start: time.Now()}
}

// Event stamps one span point. Safe on a nil Trace (unsampled transaction).
func (t *Trace) Event(label string) {
	if t == nil {
		return
	}
	i := t.n.Add(1) - 1
	if int(i) >= TraceEvents {
		t.dropped.Add(1)
		return
	}
	t.ev[i].at = int64(time.Since(t.Start))
	t.ev[i].label = label
}

// Dropped returns how many events overflowed the ring.
func (t *Trace) Dropped() uint32 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// TraceEvent is one rendered span point.
type TraceEvent struct {
	Label string
	At    time.Duration
}

// Events returns the recorded span points in stamp order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	if n > TraceEvents {
		n = TraceEvents
	}
	out := make([]TraceEvent, n)
	for i := 0; i < n; i++ {
		out[i] = TraceEvent{Label: t.ev[i].label, At: time.Duration(t.ev[i].at)}
	}
	return out
}

// Total returns the offset of the last event (the transaction's observed
// end-to-end latency).
func (t *Trace) Total() time.Duration {
	ev := t.Events()
	if len(ev) == 0 {
		return 0
	}
	return ev[len(ev)-1].At
}

// String renders the per-phase breakdown:
//
//	trace reqid=64 total=812µs: begin +0s → inv +11µs → ack +640µs → val +700µs → applied +812µs
func (t *Trace) String() string {
	if t == nil {
		return "trace <nil>"
	}
	s := fmt.Sprintf("trace reqid=%d total=%s:", t.ReqID, t.Total())
	for i, e := range t.Events() {
		sep := " "
		if i > 0 {
			sep = " → "
		}
		s += fmt.Sprintf("%s%s +%s", sep, e.Label, e.At)
	}
	if d := t.Dropped(); d > 0 {
		s += fmt.Sprintf(" (+%d dropped)", d)
	}
	return s
}

// Sampler decides deterministically which transactions to trace: reqID
// multiples of the sampling period. Determinism (no RNG) makes sampled runs
// reproducible and keeps the decision to one integer op on the begin path.
type Sampler struct {
	every uint64
}

// NewSampler samples every N-th request; 0 disables sampling entirely.
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		return nil
	}
	return &Sampler{every: every}
}

// Sample reports whether reqID should carry a trace. Safe on a nil Sampler.
func (s *Sampler) Sample(reqID uint64) bool {
	return s != nil && reqID%s.every == 0
}

// tableSlowest is how many traces a window retains.
const tableSlowest = 8

// tableWindow is the retention window: the table resets when the first
// entry is older than this, so "slowest" reflects recent behaviour, not the
// warm-up outlier from minutes ago.
const tableWindow = 10 * time.Second

// TraceRecord is one completed trace retained by the table.
type TraceRecord struct {
	ReqID   uint64
	Total   time.Duration
	Dropped uint32
	Events  []TraceEvent
	When    time.Time
}

// TraceTable keeps the slowest-N completed traces of the current window.
// Offer runs on the commit completion path but only for sampled
// transactions, so the mutex and the Events copy are off the common case.
type TraceTable struct {
	mu    sync.Mutex
	start time.Time
	recs  []TraceRecord
}

// NewTraceTable returns an empty table.
func NewTraceTable() *TraceTable { return &TraceTable{} }

// Offer submits a completed trace; it is retained iff it ranks among the
// window's slowest. Safe on a nil table or nil trace.
func (tt *TraceTable) Offer(t *Trace) {
	if tt == nil || t == nil {
		return
	}
	rec := TraceRecord{ReqID: t.ReqID, Total: t.Total(), Dropped: t.Dropped(), Events: t.Events(), When: time.Now()}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tt.start.IsZero() || time.Since(tt.start) > tableWindow {
		tt.start = time.Now()
		tt.recs = tt.recs[:0]
	}
	tt.recs = append(tt.recs, rec)
	sort.Slice(tt.recs, func(i, j int) bool { return tt.recs[i].Total > tt.recs[j].Total })
	if len(tt.recs) > tableSlowest {
		tt.recs = tt.recs[:tableSlowest]
	}
}

// Slowest returns the window's retained traces, slowest first.
func (tt *TraceTable) Slowest() []TraceRecord {
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return append([]TraceRecord(nil), tt.recs...)
}

// WriteText renders the table for /debug/trace and zeusctl.
func (tt *TraceTable) WriteText(w io.Writer) error {
	for _, r := range tt.Slowest() {
		if _, err := fmt.Fprintf(w, "reqid=%d total=%s", r.ReqID, r.Total); err != nil {
			return err
		}
		for _, e := range r.Events {
			if _, err := fmt.Fprintf(w, " %s=+%s", e.Label, e.At); err != nil {
				return err
			}
		}
		if r.Dropped > 0 {
			if _, err := fmt.Fprintf(w, " dropped=%d", r.Dropped); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Incident is one structured watchdog report: a condition that should not
// persist (a commit slot past the age threshold, stored R-INV debt, a stuck
// replay) captured in-flight with enough engine state to diagnose it.
type Incident struct {
	When   time.Time
	Kind   string
	Detail string
}

// incidentRing bounds the retained incident history.
const incidentRing = 64

// IncidentLog retains the last incidentRing incidents and a total count.
// The zero value is ready.
type IncidentLog struct {
	mu    sync.Mutex
	ring  []Incident
	total atomic.Uint64

	// Mirror, when set (wiring time, before any Report), additionally
	// receives every incident — the hook CI uses to surface wedges on
	// stderr the moment the watchdog sees them.
	Mirror func(Incident)
}

// Report files an incident.
func (l *IncidentLog) Report(kind, detail string) {
	if l == nil {
		return
	}
	inc := Incident{When: time.Now(), Kind: kind, Detail: detail}
	l.total.Add(1)
	l.mu.Lock()
	l.ring = append(l.ring, inc)
	if len(l.ring) > incidentRing {
		l.ring = l.ring[len(l.ring)-incidentRing:]
	}
	mirror := l.Mirror
	l.mu.Unlock()
	if mirror != nil {
		mirror(inc)
	}
}

// Total returns how many incidents were ever reported.
func (l *IncidentLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Recent returns the retained incidents, oldest first.
func (l *IncidentLog) Recent() []Incident {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Incident(nil), l.ring...)
}

// WriteText renders the log for /debug/incidents and zeusctl.
func (l *IncidentLog) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "incidents_total %d\n", l.Total()); err != nil {
		return err
	}
	for _, inc := range l.Recent() {
		if _, err := fmt.Fprintf(w, "%s [%s] %s\n", inc.When.Format(time.RFC3339Nano), inc.Kind, inc.Detail); err != nil {
			return err
		}
	}
	return nil
}
