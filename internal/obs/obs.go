// Package obs is the engine's observability subsystem: per-node metrics
// (counters, gauges, log-linear histograms), opt-in per-transaction traces
// and a structured incident log, all stdlib-only and allocation-free on the
// record path.
//
// The wiring contract mirrors commit.Engine.EnableTimestamps: a deployment
// opts in by handing each engine an obs handle at wiring time (SetObs,
// before the engine receives traffic), and every record site is gated on a
// nil check of that handle, so disabled deployments keep the seed hot path
// bit for bit. Engines cache the metric handles they record into — the
// Registry's name→metric maps are touched at registration time only, never
// per event (zeuslint obsrecord enforces both disciplines).
//
// Counters that already exist as engine atomics are not double-counted:
// CounterFunc/GaugeFunc register a read callback that pull-scrapes the
// source at render time, so the hot path is untouched. Only quantities that
// do not exist otherwise (phase latencies, batch sizes) pay an atomic on the
// record path.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready;
// handles are cached at wiring time and recorded into lock-free.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a point-in-time int64 (lag, depth, size).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram buckets: log-linear with 4 sub-buckets per power of two
// (histSubBits = 2), exact below 4. Relative error ≤ 1/4 across the whole
// uint64 range — enough to separate a 10 µs commit from a 14 µs one at any
// magnitude — in a fixed 252-slot array of independent atomics.
const (
	histSubBits = 2
	histSubs    = 1 << histSubBits
	// NumBuckets is the bucket count: histSubs exact low buckets plus
	// histSubs per octave for exponents histSubBits..63.
	NumBuckets = histSubs + (64-histSubBits)*histSubs // 252
)

// histStripe is one stripe of the histogram's count/sum hot words, padded to
// its own cache line so concurrent recorders on different stripes never
// false-share.
type histStripe struct {
	count atomic.Uint64
	sum   atomic.Uint64
	_     [48]byte
}

// Histogram is a lock-free log-linear histogram. Record is wait-free and
// allocation-free: one atomic add into the value's bucket plus one into a
// count/sum stripe selected by hashing the value ("per-CPU-ish" striping —
// Go exposes no CPU id, so the hash spreads concurrent recorders across
// cache lines statistically instead of exactly). Latencies are recorded in
// nanoseconds via RecordSince, so record sites never split a time.Now()
// pair across locks (zeuslint obsrecord).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	stripes [8]histStripe
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSubs - 1)
	return (exp-1)*histSubs + int(sub)
}

// BucketUpper returns the inclusive upper bound of bucket i (the value a
// quantile estimate reports for samples landing in it).
func BucketUpper(i int) uint64 {
	if i < histSubs {
		return uint64(i)
	}
	exp := uint(i/histSubs + 1)
	sub := uint64(i % histSubs)
	lower := uint64(1)<<exp + sub<<(exp-histSubBits)
	return lower + uint64(1)<<(exp-histSubBits) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	s := &h.stripes[(v*0x9E3779B97F4A7C15)>>61]
	s.count.Add(1)
	s.sum.Add(v)
}

// RecordSince records the elapsed nanoseconds since start. This is the
// sanctioned shape for latency record sites: the site stamps start once
// (gated on the obs nil check) and hands it here, instead of carrying a
// time.Now() pair across locks.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(uint64(time.Since(start)))
}

// HistSnapshot is a point-in-time copy of a histogram. Concurrent records
// may make Count disagree with the bucket sum by in-flight samples.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	for i := range h.stripes {
		s.Count += h.stripes[i].count.Load()
		s.Sum += h.stripes[i].sum.Load()
	}
	return s
}

// Merge folds o into s (cross-node aggregation).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Max returns the upper bound of the highest non-empty bucket (0 for an
// empty histogram) — the histogram's max-sample estimate, within the
// bucketing's ≤1/4 relative error.
func (s *HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Quantile returns the value at quantile q in [0, 1] (bucket upper bound; 0
// for an empty histogram).
func (s *HistSnapshot) Quantile(q float64) uint64 {
	total := uint64(0)
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Registry is one node's metric namespace. Metric lookup takes a mutex and
// may allocate — it runs at wiring time; engines cache the returned handles
// and record into them lock-free. The zero Registry is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cfuncs   map[string]func() uint64
	gfuncs   map[string]func() int64

	// Traces captures the slowest sampled transactions per window;
	// Incidents is the watchdog's structured incident log. Both are always
	// present on a NewRegistry.
	Traces    *TraceTable
	Incidents *IncidentLog
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		cfuncs:    make(map[string]func() uint64),
		gfuncs:    make(map[string]func() int64),
		Traces:    NewTraceTable(),
		Incidents: &IncidentLog{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a counter whose value is read from fn at render
// time: the pull-scrape bridge for quantities that already exist as engine
// atomics (commit/ownership stats, transport counters), so enabling obs
// never double-counts a hot path.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	r.cfuncs[name] = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at render time (safe-time lag,
// applied watermark, pipeline depth).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gfuncs[name] = fn
	r.mu.Unlock()
}

// CounterValue reads the named counter — direct or func-registered — and
// reports whether it exists (test and tooling accessor; does not create).
func (r *Registry) CounterValue(name string) (uint64, bool) {
	r.mu.Lock()
	c := r.counters[name]
	fn := r.cfuncs[name]
	r.mu.Unlock()
	switch {
	case c != nil:
		return c.Load(), true
	case fn != nil:
		return fn(), true
	}
	return 0, false
}

// Counters returns a name→value snapshot of every counter, direct and
// func-registered (render-time accessor: the load harness folds per-node
// registries into its run summary — retransmits, NACK reasons — without
// naming each counter up front).
func (r *Registry) Counters() map[string]uint64 {
	r.mu.Lock()
	out := make(map[string]uint64, len(r.counters)+len(r.cfuncs))
	fns := make(map[string]func() uint64, len(r.cfuncs))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, fn := range r.cfuncs {
		fns[name] = fn
	}
	r.mu.Unlock()
	// Pull-scraped counters read their sources outside the registry lock.
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// HistogramSnapshot returns a snapshot of the named histogram and whether it
// exists (test and tooling accessor; does not create).
func (r *Registry) HistogramSnapshot(name string) (HistSnapshot, bool) {
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return HistSnapshot{}, false
	}
	return h.Snapshot(), true
}

// WriteText renders every metric as "name value" lines sorted by name —
// grep-friendly for smoke tests and zeusctl. Histograms expand to
// name_count, name_sum and p50/p99/p999 upper bounds (nanoseconds for
// latency histograms).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type entry struct {
		name string
		val  string
	}
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.cfuncs)+len(r.gfuncs)+5*len(r.hists))
	for name, c := range r.counters {
		entries = append(entries, entry{name, fmt.Sprintf("%d", c.Load())})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name, fmt.Sprintf("%d", g.Load())})
	}
	for name, fn := range r.cfuncs {
		entries = append(entries, entry{name, fmt.Sprintf("%d", fn())})
	}
	for name, fn := range r.gfuncs {
		entries = append(entries, entry{name, fmt.Sprintf("%d", fn())})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		entries = append(entries,
			entry{name + "_count", fmt.Sprintf("%d", s.Count)},
			entry{name + "_sum", fmt.Sprintf("%d", s.Sum)},
			entry{name + "_p50", fmt.Sprintf("%d", s.Quantile(0.50))},
			entry{name + "_p99", fmt.Sprintf("%d", s.Quantile(0.99))},
			entry{name + "_p999", fmt.Sprintf("%d", s.Quantile(0.999))},
		)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%s %s\n", e.name, e.val); err != nil {
			return err
		}
	}
	return nil
}
