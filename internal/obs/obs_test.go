package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear bucket layout: values below 4 are
// exact, every bucket's range is contiguous with its neighbours, and the
// relative error of the upper-bound estimate stays within one sub-bucket.
func TestBucketBoundaries(t *testing.T) {
	for v := uint64(0); v < 4; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact bucket", v, got)
		}
		if got := BucketUpper(int(v)); got != v {
			t.Fatalf("BucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	// Contiguity: BucketUpper(i)+1 must land in bucket i+1.
	for i := 0; i < NumBuckets-1; i++ {
		upper := BucketUpper(i)
		if got := bucketOf(upper); got != i {
			t.Fatalf("bucketOf(BucketUpper(%d)=%d) = %d", i, upper, got)
		}
		if got := bucketOf(upper + 1); got != i+1 {
			t.Fatalf("bucketOf(%d) = %d, want %d", upper+1, got, i+1)
		}
	}
	// Extremes.
	if got := bucketOf(^uint64(0)); got != NumBuckets-1 {
		t.Fatalf("bucketOf(max) = %d, want %d", got, NumBuckets-1)
	}
	if got := BucketUpper(NumBuckets - 1); got != ^uint64(0) {
		t.Fatalf("BucketUpper(last) = %d, want max uint64", got)
	}
	// Known spot checks: [4,5) .. [8,10) boundaries at subBits=2.
	for _, tc := range []struct {
		v    uint64
		want int
	}{
		{4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}, {9, 8}, {10, 9}, {15, 11}, {16, 12},
	} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Fatalf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestHistogramQuantileAndMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
	}
	s := a.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("snapshot count=%d sum=%d, want 100/5050", s.Count, s.Sum)
	}
	p50 := s.Quantile(0.50)
	// Bucket upper bounds overshoot by at most 25%.
	if p50 < 50 || p50 > 63 {
		t.Fatalf("p50 = %d, want in [50, 63]", p50)
	}
	if p0 := s.Quantile(0); p0 > 1 {
		t.Fatalf("p0 = %d, want <= 1", p0)
	}
	p100 := s.Quantile(1)
	if p100 < 100 || p100 > 127 {
		t.Fatalf("p100 = %d, want in [100, 127]", p100)
	}

	for v := uint64(1000); v < 1100; v++ {
		b.Record(v)
	}
	sb := b.Snapshot()
	s.Merge(&sb)
	if s.Count != 200 {
		t.Fatalf("merged count = %d, want 200", s.Count)
	}
	if p99 := s.Quantile(0.99); p99 < 1000 {
		t.Fatalf("merged p99 = %d, want >= 1000", p99)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		per     = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(seed*1000 + uint64(i))
			}
		}(uint64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	bucketTotal := uint64(0)
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_depth").Set(-2)
	r.CounterFunc("c_scraped", func() uint64 { return 7 })
	r.GaugeFunc("d_lag", func() int64 { return 9 })
	r.Histogram("e_ns").Record(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a_total 3\n", "b_depth -2\n", "c_scraped 7\n", "d_lag 9\n", "e_ns_count 1\n", "e_ns_sum 5\n", "e_ns_p50 5\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q in:\n%s", want, out)
		}
	}
	// Same handle on repeat lookup.
	if r.Counter("a_total").Load() != 3 {
		t.Fatal("Counter lookup did not return the existing handle")
	}
}

// TestTraceRingTruncation: events past the ring cap are dropped and counted,
// never reallocated.
func TestTraceRingTruncation(t *testing.T) {
	tr := NewTrace(1)
	for i := 0; i < TraceEvents+5; i++ {
		tr.Event("e")
	}
	if got := len(tr.Events()); got != TraceEvents {
		t.Fatalf("events = %d, want %d", got, TraceEvents)
	}
	if got := tr.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	if !strings.Contains(tr.String(), "dropped") {
		t.Fatalf("String() should flag drops: %s", tr.String())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Event("ignored") // must not panic
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Total() != 0 {
		t.Fatal("nil trace accessors must be zero")
	}
}

// TestSamplerDeterminism: the sampling decision is a pure function of reqID.
func TestSamplerDeterminism(t *testing.T) {
	s := NewSampler(4)
	want := []bool{true, false, false, false, true, false, false, false, true}
	for id, w := range want {
		if got := s.Sample(uint64(id)); got != w {
			t.Fatalf("Sample(%d) = %v, want %v", id, got, w)
		}
		// Repeatable.
		if got := s.Sample(uint64(id)); got != w {
			t.Fatalf("Sample(%d) not deterministic", id)
		}
	}
	if NewSampler(0).Sample(0) {
		t.Fatal("every=0 must disable sampling")
	}
	if !NewSampler(1).Sample(12345) {
		t.Fatal("every=1 must sample everything")
	}
}

func TestTraceTableSlowestWindow(t *testing.T) {
	tt := NewTraceTable()
	for i := 0; i < tableSlowest+4; i++ {
		tr := NewTrace(uint64(i))
		tr.Event("begin")
		// Synthesize distinct totals without sleeping: stamp directly.
		tr.ev[0].at = int64(i) * int64(time.Millisecond)
		tt.Offer(tr)
	}
	recs := tt.Slowest()
	if len(recs) != tableSlowest {
		t.Fatalf("retained %d, want %d", len(recs), tableSlowest)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Total > recs[i-1].Total {
			t.Fatal("slowest not sorted descending")
		}
	}
	// The fastest offers must have been evicted.
	if recs[len(recs)-1].Total < 4*time.Millisecond {
		t.Fatalf("fast trace survived eviction: %v", recs[len(recs)-1].Total)
	}
}

func TestIncidentLog(t *testing.T) {
	var l IncidentLog
	var mirrored int
	l.Mirror = func(Incident) { mirrored++ }
	for i := 0; i < incidentRing+10; i++ {
		l.Report("wedge", "detail")
	}
	if l.Total() != incidentRing+10 {
		t.Fatalf("total = %d", l.Total())
	}
	if got := len(l.Recent()); got != incidentRing {
		t.Fatalf("retained = %d, want %d", got, incidentRing)
	}
	if mirrored != incidentRing+10 {
		t.Fatalf("mirrored = %d", mirrored)
	}
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "incidents_total 74") {
		t.Fatalf("WriteText: %s", sb.String())
	}
}
