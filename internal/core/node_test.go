package core_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/ownership"
	"zeus/internal/store"
	"zeus/internal/wire"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.DefaultOptions(n))
	t.Cleanup(c.Close)
	return c
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func fromU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func TestWriteThenReadLocal(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(1, 0, []byte("init"))
	tx := c.Node(0).BeginOn(0)
	got, err := tx.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "init" {
		t.Fatalf("got %q", got)
	}
	if err := tx.Set(1, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the transaction.
	if got, _ := tx.Get(1); string(got) != "updated" {
		t.Fatalf("read-own-write: %q", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed value visible to a follow-up transaction immediately
	// (pipelining: no wait for replication).
	tx2 := c.Node(0).BeginOn(0)
	if got, _ := tx2.Get(1); string(got) != "updated" {
		t.Fatalf("after commit: %q", got)
	}
	tx2.Abort()
}

func TestReplicationReachesReaders(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(2, 0, []byte("v0"))
	tx := c.Node(0).BeginOn(0)
	if err := tx.Set(2, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tx.Durable():
	case <-time.After(2 * time.Second):
		t.Fatal("replication never completed")
	}
	// Readers (nodes 1 and 2 by default placement) serve the new value via
	// local read-only transactions (§5.3). The R-VAL that re-validates
	// followers is asynchronous, so retry on conflict like a real client.
	for _, i := range []int{1, 2} {
		var got []byte
		err := dbapi.RunRO(c.Node(i).DB(), 0, func(tx dbapi.Txn) error {
			var err error
			got, err = tx.Get(2)
			return err
		})
		if err != nil {
			t.Fatalf("node %d RO: %v", i, err)
		}
		if string(got) != "v1" {
			t.Fatalf("node %d read %q", i, got)
		}
	}
}

func TestRemoteWriteMigratesOwnershipOnce(t *testing.T) {
	// Replica trimming issues one background ownership request after the
	// migration; disable it so the assertion counts only tx-driven ones.
	opts := cluster.DefaultOptions(4)
	opts.TrimReplicas = false
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	c.SeedAt(3, 0, []byte("x"))
	n3 := c.Node(3)
	// First write from node 3: invokes the ownership protocol.
	if err := dbapi.Run(n3.DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(3, []byte("first"))
	}); err != nil {
		t.Fatal(err)
	}
	reqsAfterFirst := n3.OwnershipEngine().Stats().Requests
	if reqsAfterFirst == 0 {
		t.Fatal("first remote write should invoke ownership")
	}
	// Subsequent writes are fully local: no new ownership requests (§3.2).
	for i := 0; i < 10; i++ {
		if err := dbapi.Run(n3.DB(), 0, func(tx dbapi.Txn) error {
			return tx.Set(3, []byte("again"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n3.OwnershipEngine().Stats().Requests; got != reqsAfterFirst {
		t.Fatalf("locality broken: %d extra ownership requests", got-reqsAfterFirst)
	}
}

func TestMultiObjectTransactionColocates(t *testing.T) {
	c := newCluster(t, 4)
	c.SeedAt(10, 0, u64(100)) // "phone" at node 0
	c.SeedAt(11, 1, u64(200)) // "base station" at node 1
	// A handover-style transaction on node 3 touches both: both migrate.
	err := dbapi.Run(c.Node(3).DB(), 0, func(tx dbapi.Txn) error {
		a, err := tx.Get(10)
		if err != nil {
			return err
		}
		b, err := tx.Get(11)
		if err != nil {
			return err
		}
		if err := tx.Set(10, u64(fromU64(a)-10)); err != nil {
			return err
		}
		return tx.Set(11, u64(fromU64(b)+10))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []wire.ObjectID{10, 11} {
		o, ok := c.Node(3).Store().Get(obj)
		if !ok {
			t.Fatalf("obj %d missing at node 3", obj)
		}
		o.Mu.Lock()
		lvl := o.Level
		o.Mu.Unlock()
		if lvl != wire.Owner {
			t.Fatalf("obj %d level %v at node 3", obj, lvl)
		}
	}
	var a, b []byte
	if err := dbapi.RunRO(c.Node(3).DB(), 0, func(tx dbapi.Txn) error {
		var err error
		if a, err = tx.Get(10); err != nil {
			return err
		}
		b, err = tx.Get(11)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fromU64(a) != 90 || fromU64(b) != 210 {
		t.Fatalf("values %d %d", fromU64(a), fromU64(b))
	}
}

func TestLocalWorkerContentionAborts(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(20, 0, []byte("c"))
	n := c.Node(0)
	tx1 := n.BeginOn(0)
	if err := tx1.Set(20, []byte("w0")); err != nil {
		t.Fatal(err)
	}
	// Worker 1 conflicts on the local ownership.
	tx2 := n.BeginOn(1)
	if err := tx2.Set(20, []byte("w1")); !errors.Is(err, dbapi.ErrConflict) {
		t.Fatalf("expected local conflict, got %v", err)
	}
	tx2.Abort()
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit the object is free again.
	tx3 := n.BeginOn(1)
	if err := tx3.Set(20, []byte("w1")); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestOpacityConsistentSnapshot(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(30, 0, u64(1))
	c.SeedAt(31, 0, u64(1))
	n := c.Node(0)
	tx := n.BeginOn(0)
	if _, err := tx.Get(30); err != nil {
		t.Fatal(err)
	}
	// A concurrent transaction on another worker changes obj 30.
	other := n.BeginOn(1)
	if err := other.Set(30, u64(2)); err != nil {
		t.Fatal(err)
	}
	if err := other.Commit(); err != nil {
		t.Fatal(err)
	}
	// The next read of tx must fail the snapshot check (opacity, §6.2):
	// it can never observe 30=1 and 31 after the other commit.
	_, err := tx.Get(31)
	if !errors.Is(err, dbapi.ErrConflict) {
		t.Fatalf("expected opacity conflict, got %v", err)
	}
	tx.Abort()
}

func TestReadOnlyAbortsOnConcurrentWrite(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(40, 0, u64(1))
	n := c.Node(0)
	ro := n.BeginRO()
	if _, err := ro.Get(40); err != nil {
		t.Fatal(err)
	}
	w := n.BeginOn(2)
	if err := w.Set(40, u64(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); !errors.Is(err, dbapi.ErrConflict) {
		t.Fatalf("RO commit after concurrent write: %v", err)
	}
}

func TestSerializableCounterAcrossNodes(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(50, 0, u64(0))
	const perNode = 30
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := c.Node(i).DB()
			for k := 0; k < perNode; k++ {
				err := dbapi.Run(db, i, func(tx dbapi.Txn) error {
					v, err := tx.Get(50)
					if err != nil {
						return err
					}
					return tx.Set(50, u64(fromU64(v)+1))
				})
				if err != nil {
					t.Errorf("node %d inc %d: %v", i, k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Serializability: no increment may be lost.
	var final uint64
	for i := 0; i < 3; i++ {
		o, ok := c.Node(i).Store().Get(50)
		if !ok {
			continue
		}
		o.Mu.Lock()
		if o.Level == wire.Owner {
			final = fromU64(o.Data)
		}
		o.Mu.Unlock()
	}
	if final != 3*perNode {
		t.Fatalf("lost updates: counter = %d, want %d", final, 3*perNode)
	}
}

func TestOwnerDeathTakeoverPreservesData(t *testing.T) {
	c := newCluster(t, 4)
	c.SeedAt(60, 0, []byte("precious"))
	// Write once so there is real replicated state.
	if err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(60, []byte("precious-v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).WaitReplication(2 * time.Second) {
		t.Fatal("replication stalled")
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	// Node 3 (non-replica, directory is 0..2) takes over on next write.
	err := dbapi.Run(c.Node(3).DB(), 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(60)
		if err != nil {
			return err
		}
		if string(v) != "precious-v2" {
			return fmt.Errorf("takeover read %q", v)
		}
		return tx.Set(60, []byte("precious-v3"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateAndDeleteObject(t *testing.T) {
	c := newCluster(t, 3)
	n := c.Node(1)
	if err := n.CreateObject(70, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	var v []byte
	if err := dbapi.RunRO(n.DB(), 0, func(tx dbapi.Txn) error {
		var err error
		v, err = tx.Get(70)
		return err
	}); err != nil || string(v) != "fresh" {
		t.Fatalf("get after create: %q %v", v, err)
	}
	if err := n.DeleteObject(70); err != nil {
		t.Fatal(err)
	}
	// Writes to the deleted object fail permanently.
	werr := dbapi.Run(c.Node(2).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(70, []byte("zombie"))
	})
	if !errors.Is(werr, ownership.ErrUnknownObject) {
		t.Fatalf("post-delete write: %v", werr)
	}
}

func TestUnknownObjectError(t *testing.T) {
	c := newCluster(t, 3)
	err := dbapi.Run(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(9999, []byte("nope"))
	})
	if !errors.Is(err, ownership.ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicaTrimRestoresDegree(t *testing.T) {
	c := newCluster(t, 5)
	c.SeedAt(80, 0, []byte("t")) // replicas {0,1,2}
	// Node 4 (non-replica) takes ownership: replicas grow to 4, then the
	// trim drops a reader out of the critical path (§6.2).
	if err := dbapi.Run(c.Node(4).DB(), 0, func(tx dbapi.Txn) error {
		return tx.Set(80, []byte("t2"))
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		o, ok := c.Node(4).Store().Get(80)
		if ok {
			o.Mu.Lock()
			count := o.Replicas.All().Count()
			lvl := o.Level
			o.Mu.Unlock()
			if lvl == wire.Owner && count == 3 {
				return
			}
		}
		if time.Now().After(deadline) {
			o.Mu.Lock()
			defer o.Mu.Unlock()
			t.Fatalf("replicas never trimmed: %v", o.Replicas)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadOnlyNoNetworkTraffic(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(90, 0, []byte("quiet"))
	if !c.WaitIdle(2 * time.Second) {
		t.Fatal("cluster not idle")
	}
	before := c.Messages()
	// 100 read-only transactions on a reader node: zero messages (§5.3).
	for i := 0; i < 100; i++ {
		ro := c.Node(1).BeginRO()
		if _, err := ro.Get(90); err != nil {
			t.Fatal(err)
		}
		if err := ro.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Messages(); got != before {
		t.Fatalf("read-only transactions produced %d messages", got-before)
	}
}

func TestPipelinedCommitsDoNotBlock(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(95, 0, []byte("p"))
	n := c.Node(0)
	start := time.Now()
	var last *struct{ d <-chan struct{} }
	for i := 0; i < 200; i++ {
		tx := n.BeginOn(0)
		if err := tx.Set(95, u64(uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		last = &struct{ d <-chan struct{} }{tx.Durable()}
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("200 pipelined commits took %v", e)
	}
	select {
	case <-last.d:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline never drained")
	}
}

func TestClusterOverLossySimulatedNetwork(t *testing.T) {
	opts := cluster.DefaultOptions(3)
	opts.Fabric = cluster.FabricSim
	opts.Net = netsim.Config{
		Seed:       7,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 50 * time.Microsecond,
		LossProb:   0.05,
		DupProb:    0.05,
		InboxDepth: 1 << 14,
	}
	c := cluster.New(opts)
	defer c.Close()
	c.SeedAt(100, 0, u64(0))
	const N = 20
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := c.Node(i).DB()
			for k := 0; k < N; k++ {
				if err := dbapi.Run(db, i, func(tx dbapi.Txn) error {
					v, err := tx.Get(100)
					if err != nil {
						return err
					}
					return tx.Set(100, u64(fromU64(v)+1))
				}); err != nil {
					t.Errorf("node %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var final uint64
	for i := 0; i < 3; i++ {
		if o, ok := c.Node(i).Store().Get(100); ok {
			o.Mu.Lock()
			if o.Level == wire.Owner {
				final = fromU64(o.Data)
			}
			o.Mu.Unlock()
		}
	}
	if final != 3*N {
		t.Fatalf("lossy network lost updates: %d, want %d", final, 3*N)
	}
}

func TestStoreStateMachineValidAfterCommit(t *testing.T) {
	c := newCluster(t, 3)
	c.SeedAt(110, 0, []byte("s"))
	tx := c.Node(0).BeginOn(0)
	if err := tx.Set(110, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	<-tx.Durable()
	// Every replica is Valid with identical data (TLA+ invariant 1).
	deadline := time.Now().Add(2 * time.Second)
	for {
		allValid := true
		for i := 0; i < 3; i++ {
			o, ok := c.Node(i).Store().Get(110)
			if !ok {
				continue
			}
			o.Mu.Lock()
			if o.Level != wire.NonReplica &&
				(o.TState != store.TValid || string(o.Data) != "s2") {
				allValid = false
			}
			o.Mu.Unlock()
		}
		if allValid {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged to Valid with identical data")
		}
		time.Sleep(time.Millisecond)
	}
}
