// Package core assembles a Zeus datastore node: the object store, the
// reliable ownership engine (§4), the reliable commit engine (§5), and the
// transactional memory API of §7 (tr_create / tr_r_create / tr_open_read /
// tr_open_write / tr_commit / tr_abort — here Begin / BeginRO / Get / Set /
// Commit / Abort).
//
// Transactions follow the three steps of §3.2:
//
//  1. Prepare & Execute — before accessing an object the worker verifies it
//     holds the needed ownership level, acquiring it via the ownership
//     protocol otherwise (blocking, the only blocking step). The first
//     update creates a private copy (opacity, §6.2).
//  2. Local Commit — contention across local workers is resolved with a
//     local version of the ownership protocol: per-object local ownership
//     taken by try-lock, conflicts abort and retry with back-off (§7).
//  3. Reliable Commit — the validated updates enter the worker's pipeline
//     and replicate in the background; the application never blocks (§5.2).
package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/commit"
	"zeus/internal/dbapi"
	"zeus/internal/directory"
	"zeus/internal/membership"
	"zeus/internal/obs"
	"zeus/internal/ownership"
	"zeus/internal/retry"
	"zeus/internal/safetime"
	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Config tunes a node.
type Config struct {
	// Degree is the replication degree: replicas per object including the
	// owner. The paper evaluates 3-way replication.
	Degree int
	// Workers is the number of worker threads; each owns a commit pipeline.
	Workers int
	// DispatchShards is the number of inbound handler goroutines for keyed
	// protocol traffic (per-pipe for reliable commits, per-object for
	// ownership — see transport.Router). 0 picks min(Workers, GOMAXPROCS);
	// values <= 1 keep inline dispatch (single delivery goroutine, the
	// right choice on single-core hosts where extra hops only add cost).
	DispatchShards int
	// TrimReplicas restores the replication degree out of the critical
	// path after a non-replica acquired ownership (§6.2).
	TrimReplicas bool
	// AutoAcquireRead lets read accesses on non-replica nodes acquire
	// reader level via the ownership protocol (first access only).
	AutoAcquireRead bool
	// LeaseRenewEvery is the period of the node's background membership
	// lease renewal (§3.1: live nodes continuously renew so that failure
	// declarations wait out a full lease). 0 picks a 5ms default;
	// negative disables the loop (tests that drive renewals manually).
	// Renewal state is striped per node all the way down (an atomic slot
	// plus a throttled multicast at the membership client), so these
	// loops never contend on a shared mutex.
	LeaseRenewEvery time.Duration
	// DirectoryShards selects the ownership-directory implementation
	// (§6.2): a value > 0 builds the sharded directory subsystem
	// (internal/directory) — object → shard → drivers resolved from the
	// placement map replicated through the view service, with the value as
	// the shard count of the local fallback placement. 0 keeps the legacy
	// static directory over Ownership.DirNodes (the degenerate 1-shard
	// compat shim).
	DirectoryShards int
	// Ownership configures the ownership engine (directory nodes etc).
	Ownership ownership.Config
	// Storage, when non-nil, makes the node durable: followers persist
	// R-INVs before acking (the cluster-level durability choke point),
	// committed values and ownership grants append to the same WAL, and a
	// background loop snapshots the store to bound replay. NewNode replays
	// whatever the driver recovered BEFORE traffic flows — recovered
	// objects come back demoted (NonReplica, TInvalid) and regain their
	// level and validity through StateSync, never by trusting possibly
	// stale local state. Nil keeps the node memory-only (tests, sims).
	Storage storage.Storage
	// SnapshotEvery is the number of WAL records between background
	// snapshots (0 picks 16384). Only meaningful with Storage set.
	SnapshotEvery int
	// SnapshotReads enables MVCC snapshot reads (§5.3 extended): reliable
	// commits carry an HLC commit timestamp and publish into per-object
	// version rings, nodes exchange applied watermarks to advance a
	// quorum-agreed safe-time, and read-only transactions read at that
	// safe-time from ANY local replica — zero owner traffic, strictly
	// serializable. Snapshot transactions never auto-acquire read level: a
	// non-replica returns ErrNoReplica instead of generating ownership
	// traffic.
	SnapshotReads bool
	// SafeTimeInterval is the period of the safe-time exchange (applied
	// watermark broadcast). 0 picks 50µs. Only meaningful with
	// SnapshotReads.
	SafeTimeInterval time.Duration
	// Obs, when non-nil, wires the observability registry through every
	// engine at construction time (metrics, traces, incidents — see
	// internal/obs). Nil keeps every record site behind its nil check: the
	// seed hot paths are untouched. The registry is also reachable remotely
	// via wire.ObsPull regardless (the reply just carries less).
	Obs *obs.Registry
	// TraceSample samples every Nth write transaction with a per-phase
	// obs.Trace (begin → inv → ack → val → applied). 0 disables tracing.
	// Requires Obs.
	TraceSample uint64
	// WatchdogAge arms the commit-engine debt watchdog: replication slots,
	// stored R-INVs or replay probes older than this threshold raise
	// structured incidents. 0 defers to the ZEUS_WATCHDOG_AGE environment
	// variable (a Go duration; unset leaves the watchdog off). When the
	// watchdog is armed without Config.Obs, a private registry is created so
	// incidents have somewhere to land — CI race jobs catch wedges without
	// every test opting into metrics.
	WatchdogAge time.Duration
}

// DefaultConfig mirrors the paper's evaluation setup: 3-way replication, the
// directory on the first three nodes.
func DefaultConfig() Config {
	return Config{
		Degree:          3,
		Workers:         8,
		TrimReplicas:    true,
		AutoAcquireRead: true,
		Ownership:       ownership.DefaultConfig(wire.BitmapOf(0, 1, 2)),
	}
}

// Stats aggregates transaction counters for one node.
type Stats struct {
	Commits   uint64
	Aborts    uint64
	ROCommits uint64
	ROAborts  uint64
	// SnapshotReads counts object reads served from the version ring by
	// snapshot transactions (SnapshotReads mode only).
	SnapshotReads uint64
}

// Node is one Zeus datastore server.
type Node struct {
	id     wire.NodeID
	cfg    Config
	st     *store.Store
	tr     transport.Transport
	router *transport.Router
	agent  *membership.Agent
	own    *ownership.Engine
	cmt    *commit.Engine
	dirsvc *directory.Service // nil with the static compat directory

	// Safe-time plane (always wired; the exchange loop only runs with
	// Config.SnapshotReads): the node's HLC (shared with the commit and
	// ownership engines) and the per-node watermark tracker.
	clk   *safetime.Clock
	safet *safetime.Tracker

	nextWorker atomic.Uint32

	// trimQ feeds the bounded replica-trim pool (see maybeTrim): dropping a
	// reader is best-effort background work, so a fixed pool with a bounded
	// queue replaces the old unbounded one-goroutine-per-object spawn —
	// an ownership churn storm used to fork one goroutine per object.
	trimQ     chan trimReq
	closedCh  chan struct{}
	closeOnce sync.Once

	// Durability (nil without Config.Storage): the group-commit WAL front
	// end shared by the commit and ownership engines, and the recovery
	// census taken before the first message was handled.
	log         *storage.Log
	stg         storage.Storage
	recovered   int
	incarnation uint64

	// State-sync bookkeeping (see sync.go): objects recovered from storage
	// that still await an authoritative answer from a current owner.
	syncMu      sync.Mutex
	syncPending map[wire.ObjectID]syncOrigin

	stCommits   atomic.Uint64
	stAborts    atomic.Uint64
	stROCommits atomic.Uint64
	stROAborts  atomic.Uint64
	stSnapReads atomic.Uint64

	// Observability (nil without Config.Obs / ZEUS_WATCHDOG_AGE): the node's
	// registry, the write-transaction trace sampler, and the sampling
	// sequence. Set once in NewNode before traffic; read unsynchronized.
	obs     *obs.Registry
	sampler *obs.Sampler
	txSeq   atomic.Uint64
	// liveTraces parks sampled transactions' traces between Begin and
	// Commit/Abort (nil without sampling). See traceTable for why it is a
	// separate allocation and why Tx carries a numeric key instead of the
	// trace pointer.
	liveTraces *traceTable
}

// traceTable parks sampled write transactions' traces between Begin and
// Commit/Abort, keyed by the sampling sequence number. Escape-analysis
// discipline keeps the unsampled hot path allocation-free: (1) the Tx
// carries only the uint64 key — a *obs.Trace field would give Commit a
// depth-1 content-leak summary and heap-allocate EVERY transaction's maps,
// read-only ones included; (2) the table is its own allocation rather than
// inline Node fields — its methods lock the mutex, which leaks their
// receiver, and as a Node field that would put tx.n one dereference from
// the heap in Commit's summary with the same effect. BenchmarkReadOnlyTx's
// 1 alloc/op pins this.
type traceTable struct {
	mu sync.Mutex
	m  map[uint64]*obs.Trace
}

// park stores a freshly sampled transaction's trace under its key.
func (t *traceTable) park(id uint64, tr *obs.Trace) {
	t.mu.Lock()
	t.m[id] = tr
	t.mu.Unlock()
}

// take claims (and removes) a parked trace; nil if the key is unknown.
func (t *traceTable) take(id uint64) *obs.Trace {
	t.mu.Lock()
	tr := t.m[id]
	delete(t.m, id)
	t.mu.Unlock()
	return tr
}

// NewNode builds and wires a node on the given transport and membership
// agent. The node installs its message handler on the transport; extra
// handlers (e.g. the load balancer's Hermes KV) can be registered on
// Router() before traffic flows.
func NewNode(id wire.NodeID, tr transport.Transport, agent *membership.Agent, cfg Config) *Node {
	if cfg.Degree <= 0 {
		cfg.Degree = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	// Watchdog arming via the environment (CI race jobs set a low threshold
	// for every test binary without code changes). Resolved before the Node
	// copies cfg so there is exactly one Config to read.
	if cfg.WatchdogAge == 0 {
		if v := os.Getenv("ZEUS_WATCHDOG_AGE"); v != "" {
			if d, err := time.ParseDuration(v); err == nil && d > 0 {
				cfg.WatchdogAge = d
			}
		}
	}
	if cfg.Obs == nil && cfg.WatchdogAge > 0 {
		cfg.Obs = obs.NewRegistry()
	}
	st := store.New()
	// Durable recovery happens FIRST, before any engine or handler exists:
	// the store is rebuilt from the snapshot + WAL replay while no message
	// can race the install. See installRecovered for the demotion rules.
	var recovered int
	var incarnation, maxCTS uint64
	pending := make(map[wire.ObjectID]syncOrigin)
	if cfg.Storage != nil {
		rec, err := cfg.Storage.Recover()
		if err != nil {
			// A node must not serve with a half-recovered store; the
			// operator decides between repair and a fresh data dir.
			panic(fmt.Sprintf("core: storage recovery failed: %v", err))
		}
		recovered = installRecovered(id, st, rec, pending)
		incarnation = rec.Incarnation
		maxCTS = rec.MaxCTS
	}
	// Sharded ownership directory (§6.2): when enabled, ownership REQs
	// resolve object → shard → drivers through the replicated placement
	// map instead of the fixed DirNodes set. The service registers its
	// view-change hook here, BEFORE the engines', so a placement diff (and
	// the shard metadata pulls it triggers) precedes the ownership pause /
	// recovery machinery of the same view change. The cfg fix-up happens
	// before the Node copies it, so there is exactly one Config to read.
	var dirsvc *directory.Service
	if cfg.DirectoryShards > 0 && cfg.Ownership.Directory == nil {
		dirsvc = directory.NewService(id, st, tr, agent, directory.Options{
			Shards: cfg.DirectoryShards,
			Degree: 3,
		})
		cfg.Ownership.Directory = dirsvc
	}
	n := &Node{id: id, cfg: cfg, st: st, tr: tr, agent: agent, dirsvc: dirsvc,
		trimQ: make(chan trimReq, trimQueueDepth), closedCh: make(chan struct{}),
		stg: cfg.Storage, recovered: recovered, incarnation: incarnation,
		syncPending: pending}
	n.router = transport.NewRouter()
	n.cmt = commit.New(id, st, tr, agent)
	n.own = ownership.New(id, st, tr, agent, cfg.Ownership)
	// One HLC per node, shared by both engines: commit stamps CTSs from it,
	// ownership merges the CTS riding on grants back in. Recovery seeds it
	// above every persisted timestamp so the new lifetime never reuses one.
	n.clk = n.cmt.Clock()
	n.clk.Update(maxCTS)
	n.own.SetClock(n.clk)
	if cfg.SnapshotReads {
		// Commit timestamping (and with it ring publication) is paid only
		// by deployments that serve snapshot reads.
		n.cmt.EnableTimestamps()
	}
	n.safet = safetime.NewTracker()
	{
		v := agent.View()
		n.safet.OnViewChange(v.Epoch, v.Live, 0)
	}
	if cfg.Storage != nil {
		n.log = storage.NewLog(cfg.Storage)
		n.cmt.SetLog(n.log)
		// The durable incarnation replaces the view epoch as PipeID.Incar:
		// a fast rejoin that beats the failure detector never bumps the
		// epoch, but the counter advances on every Recover.
		n.cmt.SetIncarnation(incarnation)
		n.own.SetLog(n.log)
		go n.snapshotLoop()
	}
	// Observability (wiring time, before any traffic): fan the registry out
	// to every engine, register the node-level scrape callbacks, and hook the
	// trace sampler. Every record site below this point is behind a nil
	// check, so a nil registry costs the seed paths nothing.
	if cfg.Obs != nil {
		r := cfg.Obs
		n.obs = r
		n.sampler = obs.NewSampler(cfg.TraceSample)
		if n.sampler != nil {
			n.liveTraces = &traceTable{m: make(map[uint64]*obs.Trace)}
		}
		n.cmt.SetObs(r)
		n.own.SetObs(r)
		if n.log != nil {
			n.log.SetObs(r)
		}
		n.registerNodeMetrics(r)
		if cfg.WatchdogAge > 0 {
			n.cmt.StartWatchdog(cfg.WatchdogAge)
		}
	}
	n.router.HandleMany(n.handleSync, wire.KindSyncPull, wire.KindSyncState)
	n.router.Handle(wire.KindSafeTime, n.handleSafeTime)
	n.router.Handle(wire.KindObsPull, n.handleObsPull)
	// The owner refuses ownership transfers while the object is involved
	// in a pending reliable commit (§4.1). Executing local transactions
	// (local ownership held) are detected by the ownership engine itself
	// via Object.LocalOwner — this hook must not lock the object.
	n.own.HasPendingCommit = n.cmt.HasPending
	n.own.Register(n.router)
	n.cmt.Register(n.router)
	if n.dirsvc != nil {
		n.dirsvc.Register(n.router)
	}
	// Sharded delivery (§5.2/§7): keyed protocol traffic fans out to
	// per-pipe / per-object handler goroutines so independent pipelines
	// apply in parallel. Defaults to min(Workers, GOMAXPROCS) — extra
	// shards on a single-core host only add queue hops.
	shards := cfg.DispatchShards
	if shards == 0 {
		shards = cfg.Workers
		if p := runtime.GOMAXPROCS(0); p < shards {
			shards = p
		}
	}
	n.router.EnableSharding(shards)
	tr.SetHandler(n.router.Dispatch)
	transport.SetTick(tr, n.router.Tick)
	for i := 0; i < trimWorkers; i++ {
		go n.trimLoop()
	}

	agent.OnChange(func(old, next wire.View, removed wire.Bitmap) {
		// The safe-time tracker resets on EVERY view change (cross-epoch
		// watermarks are not comparable) and pauses on removals until the
		// recovery barrier closes; the ownership/commit machinery below
		// only reacts to removals.
		n.safet.OnViewChange(next.Epoch, next.Live, removed)
		if removed.Count() == 0 {
			return
		}
		n.own.Pause()
		n.own.PruneDead(next.Live)
		n.cmt.OnViewChange(next, removed) // reports recovery-done when drained
	})
	agent.OnRecovered(func(ep wire.Epoch) {
		n.own.Resume()
		n.safet.Resume(ep)
	})
	if cfg.SnapshotReads {
		go n.safetimeLoop()
	}
	if cfg.LeaseRenewEvery >= 0 {
		every := cfg.LeaseRenewEvery
		if every == 0 {
			every = 5 * time.Millisecond
		}
		go n.renewLoop(every)
	}
	return n
}

// safetimeLoop drives the safe-time exchange (SnapshotReads mode): each
// tick computes this node's applied watermark — every reliable commit this
// node coordinated with CTS ≤ W is validated at all followers — folds it
// into the local tracker and broadcasts it to the live peers. The exchange
// is tiny (one 20-byte message per peer per tick) and off every critical
// path; its period bounds how far behind real time the safe-time trails.
func (n *Node) safetimeLoop() {
	every := n.cfg.SafeTimeInterval
	if every <= 0 {
		every = 50 * time.Microsecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.closedCh:
			return
		case <-t.C:
		}
		v := n.agent.View()
		w := n.cmt.Watermark()
		n.safet.Observe(n.id, v.Epoch, w)
		m := &wire.SafeTime{From: n.id, Epoch: v.Epoch, WM: w}
		for _, nd := range v.Live.Nodes() {
			if nd != n.id {
				_ = n.tr.Send(nd, m)
			}
		}
		transport.Flush(n.tr)
	}
}

func (n *Node) handleSafeTime(from wire.NodeID, m wire.Msg) {
	st := m.(*wire.SafeTime)
	n.safet.Observe(st.From, st.Epoch, st.WM)
}

// SafeTime returns the node's current quorum-advanced safe-time (0 until
// the first full exchange completes). Tests and tooling.
func (n *Node) SafeTime() uint64 { return n.safet.Safe() }

// Obs returns the node's observability registry (nil unless Config.Obs was
// set or ZEUS_WATCHDOG_AGE armed the watchdog).
func (n *Node) Obs() *obs.Registry { return n.obs }

// registerNodeMetrics exposes the node-level transaction counters and the
// safe-time plane through the registry. Pure pull-scrape over the existing
// engine atomics — the callbacks run at render time only, never on a hot
// path, and the atomics stay the single source of truth (no double counting
// against Stats()).
func (n *Node) registerNodeMetrics(r *obs.Registry) {
	r.CounterFunc("core_commits_total", n.stCommits.Load)
	r.CounterFunc("core_aborts_total", n.stAborts.Load)
	r.CounterFunc("core_ro_commits_total", n.stROCommits.Load)
	r.CounterFunc("core_ro_aborts_total", n.stROAborts.Load)
	r.CounterFunc("core_snapshot_reads_total", n.stSnapReads.Load)
	r.GaugeFunc("st_applied_wm", func() int64 { return int64(n.cmt.Watermark()) })
	r.GaugeFunc("st_safe_time", func() int64 { return int64(n.safet.Safe()) })
	// Safe-time lag: how far the quorum-advanced safe-time trails the local
	// HLC, in nanoseconds (the HLC is ns-based). 0 until the first full
	// exchange — "lag since 1970" would drown every real reading.
	r.GaugeFunc("st_safe_lag_ns", func() int64 {
		s := n.safet.Safe()
		if s == 0 {
			return 0
		}
		if now := n.clk.Now(); now > s {
			return int64(now - s)
		}
		return 0
	})
}

// handleObsPull answers a remote metrics pull (zeusctl metrics / status):
// the cheap header — epoch, applied watermark, safe-time, clock, commit
// count, incident count — always; the full text rendering of the registry
// only when asked (Full), since it allocates.
func (n *Node) handleObsPull(from wire.NodeID, m wire.Msg) {
	pull := m.(*wire.ObsPull)
	st := &wire.ObsState{
		From:      n.id,
		Epoch:     n.agent.View().Epoch,
		AppliedWM: n.cmt.Watermark(),
		SafeTime:  n.safet.Safe(),
		Clock:     n.clk.Now(),
		Commits:   n.stCommits.Load(),
	}
	if r := n.obs; r != nil {
		st.Incidents = r.Incidents.Total()
		if pull.Full {
			var buf bytes.Buffer
			_ = r.WriteText(&buf)
			st.Metrics = buf.Bytes()
		}
	}
	_ = n.tr.Send(from, st)
	transport.Flush(n.tr)
}

// maybeTrace attaches a per-phase trace to every sampler-selected write
// transaction. One atomic add and a modulo when sampling is on; one nil
// check when it is off. The trace parks in liveTraces (only the numeric
// key rides the Tx — see that field's comment) until Commit/Abort claims
// it via takeTrace.
func (n *Node) maybeTrace(tx *Tx) {
	s := n.sampler
	if s == nil {
		return
	}
	if id := n.txSeq.Add(1); s.Sample(id) {
		tr := obs.NewTrace(id)
		tr.Event("begin")
		n.liveTraces.park(id, tr)
		tx.trID = id
	}
}

// Clock exposes the node's hybrid-logical clock (tests and tooling).
func (n *Node) Clock() *safetime.Clock { return n.clk }

// renewLoop keeps this node's membership lease fresh. The membership client
// throttles the wire traffic, so the ticker can run finer than the lease.
func (n *Node) renewLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.closedCh:
			return
		case <-t.C:
			n.agent.Renew()
		}
	}
}

// ID returns the node id.
func (n *Node) ID() wire.NodeID { return n.id }

// Store exposes the object store (tests and tooling).
func (n *Node) Store() *store.Store { return n.st }

// Router exposes the message router for co-located services.
func (n *Node) Router() *transport.Router { return n.router }

// OwnershipEngine exposes the ownership engine (experiments measure it).
func (n *Node) OwnershipEngine() *ownership.Engine { return n.own }

// DirectoryService exposes the sharded-directory service, or nil when the
// node runs the legacy static directory.
func (n *Node) DirectoryService() *directory.Service { return n.dirsvc }

// CommitEngine exposes the reliable-commit engine.
func (n *Node) CommitEngine() *commit.Engine { return n.cmt }

// Agent returns the membership agent.
func (n *Node) Agent() *membership.Agent { return n.agent }

// Stats returns this node's transaction counters.
func (n *Node) Stats() Stats {
	return Stats{
		Commits:       n.stCommits.Load(),
		Aborts:        n.stAborts.Load(),
		ROCommits:     n.stROCommits.Load(),
		ROAborts:      n.stROAborts.Load(),
		SnapshotReads: n.stSnapReads.Load(),
	}
}

// Close shuts down the node's engines and releases the transport.
func (n *Node) Close() { n.shutdown(true) }

// Shutdown is Close with control over the transport: restart harnesses pass
// closeTransport=false so the fabric-side endpoint (a hub slot or listening
// socket) survives for the reincarnated process to reuse.
func (n *Node) Shutdown(closeTransport bool) { n.shutdown(closeTransport) }

func (n *Node) shutdown(closeTransport bool) {
	n.closeOnce.Do(func() { close(n.closedCh) })
	n.own.Close()
	n.cmt.Close()
	n.router.CloseShards()
	// The engines are quiesced: no new appends can be staged, so closing
	// the log drains the final group-commit batch before the driver goes.
	if n.log != nil {
		n.log.Close()
	}
	if n.stg != nil {
		_ = n.stg.Close()
	}
	if closeTransport {
		_ = n.tr.Close()
	}
}

// WaitReplication blocks until all pending reliable commits validated.
func (n *Node) WaitReplication(timeout time.Duration) bool {
	return n.cmt.WaitIdle(timeout)
}

// ---------------------------------------------------------------------------
// Object lifecycle (malloc / free, §7).
// ---------------------------------------------------------------------------

// Placement returns the default replica set for a new object: this node as
// owner plus Degree-1 readers chosen round-robin from the live view.
func (n *Node) Placement(obj wire.ObjectID) wire.Bitmap {
	live := n.agent.View().Live.Nodes()
	var readers wire.Bitmap
	if len(live) == 0 {
		return readers
	}
	// Start after self, offset by the object id for spread.
	start := 0
	for i, nd := range live {
		if nd == n.id {
			start = i + 1
			break
		}
	}
	need := n.cfg.Degree - 1
	for i := 0; i < len(live) && readers.Count() < need; i++ {
		cand := live[(start+i)%len(live)]
		if cand != n.id {
			readers = readers.Add(cand)
		}
	}
	return readers
}

// CreateObject registers obj with this node as owner and default placement,
// then reliably replicates the initial value.
func (n *Node) CreateObject(obj wire.ObjectID, data []byte) error {
	return n.CreateObjectWithReaders(obj, data, n.Placement(obj))
}

// CreateObjectWithReaders is CreateObject with an explicit reader set.
func (n *Node) CreateObjectWithReaders(obj wire.ObjectID, data []byte, readers wire.Bitmap) error {
	if err := n.own.Create(obj, readers); err != nil {
		return err
	}
	o, _ := n.st.GetOrCreate(obj)
	o.Mu.Lock()
	o.Data = append([]byte(nil), data...)
	o.SetTLocked(o.TVersion+1, store.TWrite)
	o.PendingCommits.Add(1)
	followers := o.Replicas.Readers
	ver := o.TVersion
	o.Mu.Unlock()
	n.cmt.Commit(wire.Worker(0), []wire.Update{{Obj: obj, Version: ver, Data: append([]byte(nil), data...)}}, followers)
	return nil
}

// DeleteObject unregisters obj deployment-wide (free).
func (n *Node) DeleteObject(obj wire.ObjectID) error { return n.own.Delete(obj) }

// ---------------------------------------------------------------------------
// Transactions.
// ---------------------------------------------------------------------------

// Tx is one transaction (see package comment for the lifecycle).
type Tx struct {
	n        *Node
	worker   int
	ro       bool
	snap     bool                     // snapshot read (SnapshotReads mode): serve from the ring
	at       uint64                   // snapshot timestamp (snap only)
	reads    map[wire.ObjectID]uint64 // version observed at first read
	readBuf  map[wire.ObjectID][]byte // stable snapshot of reads
	writes   map[wire.ObjectID][]byte // private copies (opacity)
	held     map[wire.ObjectID]*store.Object
	finished bool
	durable  <-chan struct{}
	// trID keys this transaction's sampled trace in Node.liveTraces (0 for
	// the unsampled majority). Deliberately NOT a *obs.Trace: a pointer
	// field handed to the commit engine would leak the Tx's content in
	// Commit's escape summary and heap-allocate every transaction's maps.
	trID uint64
}

// Begin starts a write transaction on an automatically assigned worker.
func (n *Node) Begin() *Tx {
	tx := n.BeginOn(int(n.nextWorker.Add(1)) % n.cfg.Workers)
	n.maybeTrace(tx)
	return tx
}

// BeginOn starts a write transaction on a specific worker thread. Worker ids
// map 1:1 onto reliable-commit pipelines (§5.2, §7).
func (n *Node) BeginOn(worker int) *Tx {
	return &Tx{
		n: n, worker: worker % n.cfg.Workers,
		reads:   make(map[wire.ObjectID]uint64),
		readBuf: make(map[wire.ObjectID][]byte),
		writes:  make(map[wire.ObjectID][]byte),
		held:    make(map[wire.ObjectID]*store.Object),
	}
}

// BeginRO starts a read-only transaction: local, strictly serializable on
// any replica, no network traffic (§5.3). With Config.SnapshotReads the
// transaction reads at a fixed HLC timestamp from the version ring instead
// of validating current versions (see snapshotGet).
func (n *Node) BeginRO() *Tx {
	return n.beginRO(int(n.nextWorker.Add(1)))
}

// beginRO must stay inlinable (with BeginOn) into its callers: the whole
// Tx, maps included, then stack-allocates for short transactions. The
// snapshot timestamp is therefore minted lazily in snapshotGet, not here —
// a clock call would blow the inlining budget for every RO transaction,
// snapshot mode or not.
func (n *Node) beginRO(worker int) *Tx {
	tx := n.BeginOn(worker)
	tx.ro = true
	tx.snap = n.cfg.SnapshotReads
	return tx
}

// errNeedOwnership is an internal marker: the access level must be acquired.
var errNeedOwnership = fmt.Errorf("core: ownership level missing")

// Get returns the value of obj as seen by the transaction (tr_open_read).
func (tx *Tx) Get(obj uint64) ([]byte, error) {
	id := wire.ObjectID(obj)
	if !tx.ro {
		if w, ok := tx.writes[id]; ok {
			return append([]byte(nil), w...), nil
		}
	}
	if b, ok := tx.readBuf[id]; ok {
		return append([]byte(nil), b...), nil
	}
	if tx.snap {
		return tx.snapshotGet(id)
	}
	if err := tx.ensureReadable(id); err != nil {
		return nil, err
	}
	o, ok := tx.n.st.Get(id)
	if !ok {
		return nil, dbapi.ErrNoReplica
	}
	// Copy-on-read elision: the read buffer aliases the object's payload
	// instead of copying it under the lock (store.Object.SnapshotRef; Data
	// is replace-only) — a later commit installs a new slice and never
	// mutates this one, so the buffered snapshot stays exactly the bytes
	// read at `ver`, which is what opacity needs anyway. Only the
	// app-facing return below pays a copy.
	st, ver, lvl, data := o.SnapshotRef()

	// Invalidated objects cannot be read (§5.3); the owner may read its
	// own locally committed (Write-state) values thanks to pipelining.
	switch {
	case st == store.TValid:
	case st == store.TWrite && lvl == wire.Owner && !tx.ro:
	default:
		tx.release()
		return nil, dbapi.ErrConflict
	}
	// Opacity (§6.2): every prior read must still be valid, so the
	// transaction always observes a consistent snapshot, even if it will
	// abort later.
	if !tx.validateReads() {
		tx.release()
		return nil, dbapi.ErrConflict
	}
	tx.reads[id] = ver
	tx.readBuf[id] = data
	return append([]byte(nil), data...), nil
}

// snapshotGet serves a read at the transaction's snapshot timestamp from
// the local version ring: any replica answers, the owner is never
// contacted. The read delays (waitSafe) until the quorum-advanced
// safe-time covers the timestamp — at that point every commit that could
// order before it is ring-published on this replica, so the newest ring
// entry with CTS ≤ at is exactly the strictly-serializable answer. A miss
// (non-replica, ring evicted past the timestamp, or safe-time not
// advancing) returns ErrConflict and the dbapi retry loop re-begins with a
// fresh, later timestamp.
func (tx *Tx) snapshotGet(id wire.ObjectID) ([]byte, error) {
	n := tx.n
	if tx.at == 0 {
		// Lazy mint (see beginRO): from the local HLC, NOT the current
		// safe-time — reading at a fresh T (and delaying until S ≥ T) is
		// what makes the snapshot strictly serializable. The first read is
		// still inside the transaction's lifetime, so T orders after every
		// commit that completed before the transaction began.
		tx.at = n.clk.Next()
	}
	o, ok := n.st.Get(id)
	if !ok {
		return nil, dbapi.ErrNoReplica
	}
	o.Mu.Lock()
	lvl := o.Level
	o.Mu.Unlock()
	if lvl == wire.NonReplica {
		// Snapshot reads never generate ownership traffic; the caller
		// routes to a replica instead.
		return nil, dbapi.ErrNoReplica
	}
	if err := tx.waitSafe(); err != nil {
		return nil, err
	}
	o.Mu.Lock()
	e, ok := o.RingReadLocked(tx.at)
	o.Mu.Unlock()
	if !ok {
		return nil, dbapi.ErrConflict
	}
	tx.reads[id] = e.Version
	tx.readBuf[id] = e.Data
	n.stSnapReads.Add(1)
	return append([]byte(nil), e.Data...), nil
}

// waitSafe delays until the safe-time covers the snapshot timestamp
// (SAFETIME-style pacing via internal/retry — no raw sleeps in engine
// code). A replica that cannot catch up within the policy's horizon gives
// up with ErrConflict rather than blocking the reader forever.
func (tx *Tx) waitSafe() error {
	n := tx.n
	if n.safet.Safe() >= tx.at {
		return nil
	}
	r := retry.Policy{
		InitialBackoff: 5 * time.Microsecond,
		MaxBackoff:     200 * time.Microsecond,
		MaxElapsed:     2 * time.Second,
	}.Start()
	for n.safet.Safe() < tx.at {
		select {
		case <-n.closedCh:
			return dbapi.ErrConflict
		default:
		}
		d, ok := r.Next()
		if !ok {
			return dbapi.ErrConflict
		}
		_ = retry.Sleep(nil, d, n.closedCh)
	}
	return nil
}

// Set buffers a full-object write in the transaction's private copy
// (tr_open_write + update).
func (tx *Tx) Set(obj uint64, val []byte) error {
	if tx.ro {
		return fmt.Errorf("core: Set on read-only transaction")
	}
	id := wire.ObjectID(obj)
	if _, ok := tx.held[id]; !ok {
		if err := tx.ensureWritable(id); err != nil {
			return err
		}
		// If the object was read before being locked, it must not have
		// changed in between (snapshot consistency).
		if ver, wasRead := tx.reads[id]; wasRead {
			o, _ := tx.n.st.Get(id)
			o.Mu.Lock()
			cur := o.TVersion
			o.Mu.Unlock()
			if cur != ver {
				tx.release()
				return dbapi.ErrConflict
			}
		}
	}
	tx.writes[id] = append([]byte(nil), val...)
	return nil
}

// ensureReadable secures reader (or owner) level for the object.
func (tx *Tx) ensureReadable(id wire.ObjectID) error {
	n := tx.n
	if o, ok := n.st.Get(id); ok {
		o.Mu.Lock()
		lvl, ost := o.Level, o.OState
		o.Mu.Unlock()
		if lvl != wire.NonReplica && (ost == store.OValid || ost == store.ORequest) {
			return nil
		}
	}
	if tx.ro && !n.cfg.AutoAcquireRead {
		return dbapi.ErrNoReplica
	}
	if err := n.own.AcquireRead(id); err != nil {
		return ownershipErr(err)
	}
	return nil
}

// ensureWritable secures exclusive write access: owner level via the
// ownership protocol (remote) plus local ownership via try-lock (§7).
func (tx *Tx) ensureWritable(id wire.ObjectID) error {
	n := tx.n
	o, _ := n.st.GetOrCreate(id)
	for attempt := 0; attempt < 3; attempt++ {
		o.Mu.Lock()
		if o.Level == wire.Owner && (o.OState == store.OValid || o.OState == store.ORequest) {
			// GrantLocalLocked refuses both local contention and the
			// transfer-fairness yield (§6.2): after a remote requester
			// was NACKed for pending commits, new local write grants
			// hold off so the pipeline drains and the transfer wins.
			if !o.GrantLocalLocked(int32(tx.worker)) {
				o.Mu.Unlock()
				tx.release()
				return dbapi.ErrConflict // abort + retry
			}
			tx.held[id] = o
			o.Mu.Unlock()
			return nil
		}
		o.Mu.Unlock()
		if err := n.own.AcquireOwnership(id); err != nil {
			tx.release()
			return ownershipErr(err)
		}
		n.maybeTrim(id)
	}
	tx.release()
	return dbapi.ErrConflict
}

// ownershipErr maps ownership failures to the retryable conflict error,
// keeping permanent errors (unknown object) intact.
func ownershipErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ownership.ErrUnknownObject):
		return err
	default:
		return dbapi.ErrConflict
	}
}

// trimWorkers / trimQueueDepth bound the background replica-trim pool: a
// fixed number of goroutines drain a bounded queue, so a burst of ownership
// acquisitions (or a view change re-homing thousands of objects) can no
// longer spawn one DropReader goroutine per object. Overflow is dropped —
// trimming is best-effort and retried on the object's next acquisition.
const (
	trimWorkers    = 2
	trimQueueDepth = 1024
)

type trimReq struct {
	obj  wire.ObjectID
	drop wire.NodeID
}

func (n *Node) trimLoop() {
	for {
		select {
		case r := <-n.trimQ:
			_ = n.own.DropReader(r.obj, r.drop)
		case <-n.closedCh:
			return
		}
	}
}

// maybeTrim restores the replication degree after ownership grew the replica
// set, out of the critical path (§6.2), via the bounded trim pool.
func (n *Node) maybeTrim(id wire.ObjectID) {
	if !n.cfg.TrimReplicas {
		return
	}
	o, ok := n.st.Get(id)
	if !ok {
		return
	}
	o.Mu.Lock()
	var drop wire.NodeID = wire.NoNode
	if o.Level == wire.Owner && o.Replicas.All().Count() > n.cfg.Degree {
		// Drop the lowest-id reader; deterministic and simple.
		if rd := o.Replicas.Readers.Nodes(); len(rd) > 0 {
			drop = rd[0]
		}
	}
	o.Mu.Unlock()
	if drop != wire.NoNode {
		select {
		case n.trimQ <- trimReq{obj: id, drop: drop}:
		default: // pool saturated: skip, the next acquisition re-trims
		}
	}
}

// validateReads re-checks every read version (caller holds no locks).
// Read-only transactions validate lock-free: a single atomic load of the
// packed ⟨t_version, t_state⟩ word (store.Object.TSnapshot) replaces the
// object lock — the seqlock-style check of the ROADMAP's "reader-local RO
// snapshots" item, exact because RO only ever accepts TValid. Write
// transactions still lock briefly: their validation additionally reads the
// access level (owner-visible TWrite values).
func (tx *Tx) validateReads() bool {
	for id, ver := range tx.reads {
		if _, written := tx.writes[id]; written {
			continue // protected by local ownership
		}
		o, ok := tx.n.st.Get(id)
		if !ok {
			return false
		}
		if tx.ro {
			v, st := o.TSnapshot()
			if v != ver || st != store.TValid {
				return false
			}
			continue
		}
		o.Mu.Lock()
		okv := o.TVersion == ver && (o.TState == store.TValid ||
			(o.TState == store.TWrite && o.Level == wire.Owner))
		o.Mu.Unlock()
		if !okv {
			return false
		}
	}
	return true
}

// Commit finishes the transaction: read-only transactions verify their
// snapshot (§5.3); write transactions perform the local commit and hand the
// updates to the reliable-commit pipeline without blocking (§5.2).
func (tx *Tx) Commit() error {
	if tx.finished {
		return fmt.Errorf("core: transaction already finished")
	}
	tx.finished = true
	n := tx.n
	// Claim the parked trace (sampled write transactions only). Aborting
	// paths below simply drop it — the trace table keeps no entry behind.
	var tr *obs.Trace
	if tx.trID != 0 {
		tr = n.liveTraces.take(tx.trID)
	}

	if tx.ro || len(tx.writes) == 0 {
		// Snapshot transactions are already serializable at their fixed
		// timestamp: every read came from an immutable ring entry chosen
		// at `at`, so there is nothing to re-validate (and validating
		// against the CURRENT version would wrongly abort them).
		ok := tx.snap || tx.validateReads()
		tx.release()
		if !ok {
			if tx.ro {
				n.stROAborts.Add(1)
			} else {
				n.stAborts.Add(1)
			}
			return dbapi.ErrConflict
		}
		if tx.ro {
			n.stROCommits.Add(1)
		} else {
			n.stCommits.Add(1)
		}
		return nil
	}

	// Local commit: verify ownership of the write set (still held), then
	// validate the read snapshot.
	ids := make([]wire.ObjectID, 0, len(tx.writes))
	for id := range tx.writes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := tx.held[id]
		if o == nil {
			tx.release()
			n.stAborts.Add(1)
			return dbapi.ErrConflict
		}
		o.Mu.Lock()
		ok := o.Level == wire.Owner &&
			(o.OState == store.OValid || o.OState == store.ORequest) &&
			o.LocalOwner == int32(tx.worker)
		o.Mu.Unlock()
		if !ok {
			tx.release()
			n.stAborts.Add(1)
			return dbapi.ErrConflict
		}
	}
	if !tx.validateReads() {
		tx.release()
		n.stAborts.Add(1)
		return dbapi.ErrConflict
	}

	// Apply: install private copies, bump versions, mark Write state.
	updates := make([]wire.Update, 0, len(ids))
	var followers wire.Bitmap
	for _, id := range ids {
		o := tx.held[id]
		data := tx.writes[id]
		o.Mu.Lock()
		o.Data = data
		o.SetTLocked(o.TVersion+1, store.TWrite)
		o.PendingCommits.Add(1)
		updates = append(updates, wire.Update{Obj: id, Version: o.TVersion, Data: data})
		followers = followers.Union(o.Replicas.Readers)
		o.Mu.Unlock()
	}
	tx.release()

	// Reliable commit: pipelined, never blocks the worker (§5.2).
	_, done := n.cmt.CommitTraced(wire.Worker(tx.worker), updates, followers, tr)
	tx.durable = done
	n.stCommits.Add(1)
	return nil
}

// Abort abandons the transaction and releases local ownership (tr_abort).
func (tx *Tx) Abort() {
	if tx.finished {
		return
	}
	tx.finished = true
	if tx.trID != 0 {
		tx.n.liveTraces.take(tx.trID) // drop the parked trace
	}
	tx.release()
	if tx.ro {
		tx.n.stROAborts.Add(1)
	} else {
		tx.n.stAborts.Add(1)
	}
}

// Durable returns a channel closed once the transaction's reliable commit
// validated on all followers (nil if the transaction wrote nothing).
// Applications do not wait on it — the pipeline guarantees ordering — but
// tests and drain paths do.
func (tx *Tx) Durable() <-chan struct{} { return tx.durable }

func (tx *Tx) release() {
	for id, o := range tx.held {
		o.ReleaseLocal(int32(tx.worker))
		delete(tx.held, id)
	}
}

// ---------------------------------------------------------------------------
// dbapi adapters.
// ---------------------------------------------------------------------------

type dbAdapter struct{ n *Node }

// DB returns the node as a dbapi.DB for the shared benchmark workloads.
func (n *Node) DB() dbapi.DB { return dbAdapter{n} }

func (a dbAdapter) Begin(worker int) dbapi.Txn {
	tx := a.n.BeginOn(worker)
	a.n.maybeTrace(tx)
	return tx
}
func (a dbAdapter) BeginRO(worker int) dbapi.Txn {
	return a.n.beginRO(worker)
}

var _ dbapi.Txn = (*Tx)(nil)
