// Rejoin as state sync, not cold start. A node restarting from its WAL +
// snapshot knows, for every object it replicated, the last version it
// persisted — but it cannot know what it missed while down. So recovery
// installs everything DEMOTED (NonReplica, TInvalid) and StateSync turns the
// local knowledge into a delta protocol:
//
//	restarting node  --- SYNC-PULL {obj, version}* --->  live nodes
//	current owner    --- SYNC-STATE/owner {obj, version, replicas, ts, data?}
//	owner mid-commit --- SYNC-STATE/claim {obj}
//	other replicas   --- SYNC-STATE/hint  {obj, version, ts, data?}
//
// Only the current owner of an object answers authoritatively (owners are
// the single authority for both the value and the replica set); it sends the
// payload only when the puller's version is stale, so a node that was
// briefly down re-arms mostly with metadata-sized messages. Objects whose
// recovered state named this node as owner and that no live owner claims
// within the quiet period are RECLAIMED from local durable state: the grant
// WAL says ownership was never transferred away, and a transfer performed
// while this node was down would have produced a new owner that answers the
// pull.
//
// Reclaim is FENCED by the two non-authoritative answer classes, because
// "no owner answered" does not imply "my durable state is current":
//
//   - A CLAIM says some live node holds owner level but is mid-commit or
//     mid-transfer (it will answer once its pipeline settles). Reclaiming
//     over a claim would mint a second owner, so claimed objects are never
//     reclaimed — the puller just keeps retrying.
//   - A HINT is a non-owner replica reporting a version NEWER than the
//     puller's. The canonical case: this node crashed as coordinator after
//     the local commit of V+1 but before validation, so the followers hold
//     V+1 (validated via dead-coordinator replay) while the recovered WAL
//     stops at V — and no current owner exists to answer. A validated hint
//     ships the value and the reclaim installs it; a staged (unvalidated)
//     hint, or one whose grant timestamp names a different owner, blocks
//     the reclaim until it resolves.
package core

import (
	"fmt"
	"time"

	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// syncOrigin is what recovery remembered about a pending object — whether
// the durable state named this node as owner (reclaim eligibility) and
// whether the recovered value had completed a commit (reclaim validity) —
// plus the reclaim fences learned from non-authoritative SYNC-STATE answers
// while the pull is open (see the package comment).
type syncOrigin struct {
	selfOwner bool
	valid     bool

	// claimed: a live node announced owner level (SyncClaim). The object
	// must never be reclaimed; the claimant answers once it settles.
	claimed bool

	// Best hint seen so far (highest version; at equal versions a validated
	// value or a newer grant timestamp upgrades it). hintValid means the
	// hint shipped a committed value in hintData. hintCTS is the commit
	// timestamp of the hinted version (for the snapshot-read ring).
	hintSeen     bool
	hintVer      uint64
	hintTS       wire.OTS
	hintReplicas wire.ReplicaSet
	hintData     []byte
	hintValid    bool
	hintCTS      uint64
}

// installRecovered replays a storage.Recovered census into a fresh store,
// before any transport handler exists. Every object comes back conservative:
//
//   - Level NonReplica and TState TInvalid — the node serves nothing until
//     StateSync (or reclaim) proves the local value current;
//   - data, version, ownership timestamp and replica set retained as hints,
//     except that a recovered "self is owner" is rewritten to NoNode —
//     ownership may have migrated while the node was down.
//
// It returns the number of objects installed and records each object's
// sync origin in pending.
func installRecovered(self wire.NodeID, st *store.Store, rec *storage.Recovered, pending map[wire.ObjectID]syncOrigin) int {
	for id, r := range rec.Objects {
		o, _ := st.GetOrCreate(id)
		o.Mu.Lock()
		o.Data = r.Data
		o.SetTLocked(r.Version, store.TInvalid)
		// The version ring does not survive a restart: ring entries vouch
		// for "committed and safe-time-covered" and a rejoiner can vouch
		// for nothing until state sync re-arms it. The recovered CTS is
		// kept as a hint so a validity flip re-enables the implicit
		// current-version entry.
		o.ResetRingLocked()
		o.CommitCTS = r.CTS
		o.OState = store.OValid
		o.OTS = r.TS
		reps := r.Replicas
		selfOwner := reps.Owner == self
		if selfOwner {
			reps.Owner = wire.NoNode
		}
		o.Replicas = reps
		o.Level = wire.NonReplica
		o.Mu.Unlock()
		pending[id] = syncOrigin{selfOwner: selfOwner, valid: r.Valid}
	}
	return len(rec.Objects)
}

// Recovered returns how many objects storage recovery installed (0 without
// Config.Storage).
func (n *Node) Recovered() int { return n.recovered }

// Incarnation returns the durable per-process incarnation number the storage
// driver reported at recovery (0 without Config.Storage; 1 for the first
// lifetime over a data dir). Values above 1 mean this process is a restart
// over existing durable state.
func (n *Node) Incarnation() uint64 { return n.incarnation }

// SyncPending returns how many recovered objects still await an
// authoritative owner answer (tests poll it; 0 once StateSync finished).
func (n *Node) SyncPending() int {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	return len(n.syncPending)
}

// syncChunk bounds the entries per SYNC message so a large store syncs as a
// stream of bounded frames rather than one giant allocation.
const syncChunk = 256

// StateSync drives the pull protocol until every recovered object was either
// answered by a current owner or reclaimed from local durable state. It must
// run after the node joined the view (peers need the view to route replies)
// and BEFORE the application serves traffic. It is a no-op for nodes that
// recovered nothing.
func (n *Node) StateSync(timeout time.Duration) error {
	if n.SyncPending() == 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	// Objects whose durable state names this node as owner are reclaimed
	// after a short quiet period — several resend rounds with no owner
	// claiming them — rather than at the full deadline: a live owner
	// answers a pull in far less than one round, so waiting longer only
	// delays the rejoin.
	quiet := 500 * time.Millisecond
	if timeout/2 < quiet {
		quiet = timeout / 2
	}
	reclaimAt := time.Now().Add(quiet)
	reclaimed := false
	resend := time.NewTicker(100 * time.Millisecond)
	defer resend.Stop()
	n.sendPulls()
	for {
		if n.SyncPending() == 0 {
			return nil
		}
		if !reclaimed && time.Now().After(reclaimAt) {
			n.reclaimLeftovers()
			reclaimed = true
			continue
		}
		if time.Now().After(deadline) {
			break
		}
		select {
		case <-n.closedCh:
			return fmt.Errorf("core: node closed during state sync")
		case <-resend.C:
			n.sendPulls()
		case <-time.After(10 * time.Millisecond):
		}
	}
	if left := n.reclaimLeftovers(); left > 0 {
		return fmt.Errorf("core: state sync timed out with %d unresolved objects", left)
	}
	return nil
}

// sendPulls multicasts the still-pending ⟨obj, version⟩ entries to every
// live peer, in bounded chunks. Versions are re-read from the store so a
// pull raced by an install advertises the freshest local knowledge.
func (n *Node) sendPulls() {
	n.syncMu.Lock()
	ids := make([]wire.ObjectID, 0, len(n.syncPending))
	for id := range n.syncPending {
		ids = append(ids, id)
	}
	n.syncMu.Unlock()
	if len(ids) == 0 {
		return
	}
	live := n.agent.View().Live
	entries := make([]wire.SyncEntry, 0, syncChunk)
	flush := func() {
		if len(entries) == 0 {
			return
		}
		transport.Broadcast(n.tr, live, &wire.SyncPull{From: n.id, Entries: entries})
		entries = make([]wire.SyncEntry, 0, syncChunk)
	}
	for _, id := range ids {
		var ver uint64
		if o, ok := n.st.Get(id); ok {
			o.Mu.Lock()
			ver = o.TVersion
			o.Mu.Unlock()
		}
		entries = append(entries, wire.SyncEntry{Obj: id, Version: ver})
		if len(entries) == syncChunk {
			flush()
		}
	}
	flush()
	transport.Flush(n.tr)
}

// reclaimLeftovers resolves pending objects that no live owner claimed. An
// object whose durable grant history names this node as owner is restored to
// owner level — see the package comment for why "no answer" implies "no new
// owner" — unless a fence blocks it: a live claimant exists (claimed), a
// hint's grant timestamp names a different owner (this node's grant history
// is stale), or a replica reported a newer version that has not validated
// yet (its commit outcome is unknown). Fenced objects stay pending and keep
// being re-pulled. A validated newer hint is installed before re-arming, so
// the reclaimed owner serves the cluster's latest committed value rather
// than its own older one. Values that had not completed a commit at crash
// time stay TInvalid (the next write re-validates them); committed values
// come back readable. Returns how many objects could NOT be reclaimed.
func (n *Node) reclaimLeftovers() int {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	for id, org := range n.syncPending {
		if !org.selfOwner || org.claimed {
			continue
		}
		o, ok := n.st.Get(id)
		if !ok {
			delete(n.syncPending, id)
			continue
		}
		o.Mu.Lock()
		if org.hintSeen && org.hintVer > o.TVersion {
			if owner := org.hintReplicas.Owner; owner != n.id && owner != wire.NoNode {
				// A replica's grant history names someone else: ownership
				// moved while this node was down. Whoever holds it answers
				// (or restarts and reclaims) — never this node.
				o.Mu.Unlock()
				continue
			}
			if !org.hintValid {
				// Newer version staged somewhere but not validated; its
				// commit outcome is unknown. Wait for the replay/validation
				// to settle — the next pull round gets a validated hint.
				o.Mu.Unlock()
				continue
			}
			o.Data = org.hintData
			o.SetTLocked(org.hintVer, store.TValid)
			o.CommitCTS = org.hintCTS
			o.PublishRingLocked(org.hintCTS, org.hintVer, org.hintData)
			if o.OTS.Less(org.hintTS) {
				o.OTS = org.hintTS
				o.Replicas = org.hintReplicas
			}
			org.valid = true
		}
		reps := o.Replicas
		reps.Owner = n.id
		o.Replicas = reps
		o.Level = wire.Owner
		o.OState = store.OValid
		if org.valid {
			o.SetTLocked(o.TVersion, store.TValid)
		}
		o.Mu.Unlock()
		delete(n.syncPending, id)
	}
	return len(n.syncPending)
}

// handleSync dispatches both sync kinds; it is registered on the router for
// KindSyncPull and KindSyncState.
func (n *Node) handleSync(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.SyncPull:
		n.handleSyncPull(v)
	case *wire.SyncState:
		n.handleSyncState(v)
	}
}

// handleSyncPull answers the entries this node knows something about. As
// current owner with a validated value it answers authoritatively
// (SyncOwner, retiring the pull). As an owner mid-commit or mid-transfer it
// sends a claim — no state yet, but the puller learns a live owner exists
// and must not reclaim; it retries and picks the object up once the
// pipeline settles. As a non-owner replica holding a version NEWER than the
// puller's it sends a hint (with the value iff validated) so the puller can
// fence — and feed — a reclaim even when no current owner exists. Entries
// this node knows nothing useful about are skipped silently.
func (n *Node) handleSyncPull(p *wire.SyncPull) {
	var out []wire.SyncEntry
	for _, e := range p.Entries {
		o, ok := n.st.Get(e.Obj)
		if !ok {
			continue
		}
		o.Mu.Lock()
		ans := wire.SyncEntry{
			Obj:      e.Obj,
			Version:  o.TVersion,
			TS:       o.OTS,
			Replicas: o.Replicas,
			CTS:      o.CommitCTS,
		}
		switch {
		case o.Level == wire.Owner && o.OState == store.OValid && o.TState == store.TValid:
			ans.Class = wire.SyncOwner
			if o.TVersion != e.Version {
				// Stale puller: ship the payload. Data is replace-only, so
				// aliasing it beyond the lock is safe (store.Object.Data).
				ans.HasData = true
				ans.Data = o.Data
			}
		case o.Level == wire.Owner:
			ans.Class = wire.SyncClaim
		case o.Level != wire.NonReplica && o.TVersion > e.Version:
			ans.Class = wire.SyncHint
			if o.TState == store.TValid {
				ans.HasData = true
				ans.Data = o.Data
			}
		default:
			o.Mu.Unlock()
			continue
		}
		o.Mu.Unlock()
		out = append(out, ans)
		if len(out) == syncChunk {
			_ = n.tr.Send(p.From, &wire.SyncState{From: n.id, Entries: out})
			out = nil
		}
	}
	if len(out) > 0 {
		_ = n.tr.Send(p.From, &wire.SyncState{From: n.id, Entries: out})
	}
	transport.Flush(n.tr)
}

// handleSyncState installs an owner's authoritative answers on the puller:
// the replica set and ownership timestamp verbatim, this node's level as the
// replica set implies it, and either the shipped payload (stale puller) or a
// validity flip of the local bytes (versions matched). Each object accepts
// exactly ONE authoritative answer — the first to arrive retires the pending
// entry, and later duplicates (resend overlap) or stragglers are dropped.
// Installing a second answer would be a regression hazard: by the time it
// arrives the object may have rejoined the live protocol and advanced past
// the answered version.
//
// Claim and hint answers do not retire the entry; they accumulate on its
// syncOrigin as reclaim fences (and, for validated hints, as the value a
// reclaim installs) — see reclaimLeftovers.
func (n *Node) handleSyncState(s *wire.SyncState) {
	for _, e := range s.Entries {
		switch e.Class {
		case wire.SyncClaim:
			n.syncMu.Lock()
			if org, ok := n.syncPending[e.Obj]; ok {
				org.claimed = true
				n.syncPending[e.Obj] = org
			}
			n.syncMu.Unlock()
			continue
		case wire.SyncHint:
			n.syncMu.Lock()
			if org, ok := n.syncPending[e.Obj]; ok {
				better := !org.hintSeen || e.Version > org.hintVer
				if !better && e.Version == org.hintVer {
					// At equal versions a validated value wins; beyond that
					// only a newer grant timestamp upgrades, and a dataless
					// hint never displaces a validated one.
					if e.HasData {
						better = !org.hintValid || org.hintTS.Less(e.TS)
					} else {
						better = !org.hintValid && org.hintTS.Less(e.TS)
					}
				}
				if better {
					org.hintSeen = true
					org.hintVer = e.Version
					org.hintTS = e.TS
					org.hintReplicas = e.Replicas
					org.hintValid = e.HasData
					org.hintData = nil
					org.hintCTS = e.CTS
					if e.HasData {
						org.hintData = append([]byte(nil), e.Data...)
					}
					n.syncPending[e.Obj] = org
				}
			}
			n.syncMu.Unlock()
			continue
		}
		n.syncMu.Lock()
		_, pending := n.syncPending[e.Obj]
		if pending {
			delete(n.syncPending, e.Obj)
		}
		n.syncMu.Unlock()
		if !pending {
			continue
		}
		o, _ := n.st.GetOrCreate(e.Obj)
		o.Mu.Lock()
		if e.Version < o.TVersion || e.TS.Less(o.OTS) {
			// The object already advanced past the answer — a racing
			// invalidation bumped the version, or a racing ownership grant
			// minted a newer o_ts (this node may drive the object's
			// directory shard, so regressing its replica set would mint
			// grants that silently drop replicas). The live protocol owns
			// the object now; the answer is stale wholesale.
			o.Mu.Unlock()
			continue
		}
		o.Replicas = e.Replicas
		o.OTS = e.TS
		o.OState = store.OValid
		o.Level = e.Replicas.LevelOf(n.id)
		if e.HasData {
			o.Data = append([]byte(nil), e.Data...)
			o.SetTLocked(e.Version, store.TValid)
			o.CommitCTS = e.CTS
			o.PublishRingLocked(e.CTS, e.Version, o.Data)
		} else if o.TVersion == e.Version {
			o.SetTLocked(o.TVersion, store.TValid)
			o.CommitCTS = e.CTS
			o.PublishRingLocked(e.CTS, o.TVersion, o.Data)
		}
		o.Mu.Unlock()
		n.clk.Update(e.CTS)
	}
}

// ---------------------------------------------------------------------------
// Background snapshots.
// ---------------------------------------------------------------------------

// defaultSnapshotEvery is the WAL record count between background snapshots.
const defaultSnapshotEvery = 1 << 14

// snapshotLoop watches the WAL growth counter and rolls a snapshot whenever
// enough records accumulated since the last one. Runs only with Storage set.
func (n *Node) snapshotLoop() {
	every := n.cfg.SnapshotEvery
	if every <= 0 {
		every = defaultSnapshotEvery
	}
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-n.closedCh:
			return
		case <-t.C:
			if n.log.AppendedSinceMark() >= int64(every) {
				_ = n.SnapshotNow()
			}
		}
	}
}

// SnapshotNow scans the store into a durable snapshot and retires the WAL
// segments the snapshot covers (the driver's contract). Safe to call
// concurrently with traffic: each object is read under its own lock, and the
// driver rolls the WAL segment before the scan so records racing the scan
// stay replayable.
func (n *Node) SnapshotNow() error {
	if n.log == nil {
		return nil
	}
	return n.log.Snapshot(func(emit func(storage.SnapObject) error) error {
		var err error
		n.st.ForEach(func(o *store.Object) bool {
			o.Mu.Lock()
			so := storage.SnapObject{
				Obj:      o.ID,
				Version:  o.TVersion,
				Data:     o.Data,
				Valid:    o.TState == store.TValid,
				TS:       o.OTS,
				Replicas: o.Replicas,
				Level:    o.Level,
				CTS:      o.CommitCTS,
			}
			o.Mu.Unlock()
			err = emit(so)
			return err == nil
		})
		return err
	})
}
