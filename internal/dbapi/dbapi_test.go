package dbapi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeDB is an in-memory dbapi implementation with injectable conflicts.
type fakeDB struct {
	mu        sync.Mutex
	vals      map[uint64][]byte
	conflicts int // number of commits to fail before succeeding
	commits   int
	roCommits int
}

func newFakeDB() *fakeDB { return &fakeDB{vals: map[uint64][]byte{}} }

type fakeTxn struct {
	db     *fakeDB
	ro     bool
	writes map[uint64][]byte
	done   bool
}

func (db *fakeDB) Begin(worker int) Txn {
	return &fakeTxn{db: db, writes: map[uint64][]byte{}}
}

func (db *fakeDB) BeginRO(worker int) Txn {
	t := db.Begin(worker).(*fakeTxn)
	t.ro = true
	return t
}

func (t *fakeTxn) Get(obj uint64) ([]byte, error) {
	if w, ok := t.writes[obj]; ok {
		return w, nil
	}
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	v, ok := t.db.vals[obj]
	if !ok {
		return nil, ErrNoReplica
	}
	return append([]byte(nil), v...), nil
}

func (t *fakeTxn) Set(obj uint64, val []byte) error {
	if t.ro {
		return fmt.Errorf("set on read-only")
	}
	t.writes[obj] = append([]byte(nil), val...)
	return nil
}

func (t *fakeTxn) Commit() error {
	if t.done {
		return fmt.Errorf("already finished")
	}
	t.done = true
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.db.conflicts > 0 {
		t.db.conflicts--
		return ErrConflict
	}
	for k, v := range t.writes {
		t.db.vals[k] = v
	}
	if t.ro {
		t.db.roCommits++
	} else {
		t.db.commits++
	}
	return nil
}

func (t *fakeTxn) Abort() { t.done = true }

func TestRunCommitsOnce(t *testing.T) {
	db := newFakeDB()
	err := Run(db, 0, func(tx Txn) error { return tx.Set(1, []byte("x")) })
	if err != nil {
		t.Fatal(err)
	}
	if db.commits != 1 || string(db.vals[1]) != "x" {
		t.Fatalf("commits=%d vals=%v", db.commits, db.vals)
	}
}

func TestRunRetriesConflicts(t *testing.T) {
	db := newFakeDB()
	db.conflicts = 3
	attempts := 0
	err := Run(db, 0, func(tx Txn) error {
		attempts++
		return tx.Set(1, []byte("y"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
}

func TestRunStopsOnPermanentError(t *testing.T) {
	db := newFakeDB()
	boom := errors.New("boom")
	attempts := 0
	err := Run(db, 0, func(tx Txn) error {
		attempts++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent errors)", attempts)
	}
}

func TestRunROUsesReadOnlyTxn(t *testing.T) {
	db := newFakeDB()
	db.vals[7] = []byte("r")
	err := RunRO(db, 0, func(tx Txn) error {
		if err := tx.Set(7, []byte("w")); err == nil {
			t.Error("Set allowed on read-only txn")
		}
		v, err := tx.Get(7)
		if err != nil {
			return err
		}
		if string(v) != "r" {
			t.Errorf("got %q", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.roCommits != 1 {
		t.Fatalf("roCommits = %d", db.roCommits)
	}
}

func TestRunFnErrorAborts(t *testing.T) {
	db := newFakeDB()
	calls := 0
	err := Run(db, 0, func(tx Txn) error {
		calls++
		if calls == 1 {
			return ErrConflict // fn-level conflict: retried
		}
		return tx.Set(1, []byte("second"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || string(db.vals[1]) != "second" {
		t.Fatalf("calls=%d vals=%v", calls, db.vals)
	}
}
