// Package dbapi defines the minimal transactional interface shared by the
// Zeus datastore (internal/core) and the distributed-commit baseline
// (internal/baseline), so that every benchmark workload runs unchanged
// against both systems — mirroring how the paper compares Zeus with
// FaRM/FaSST/DrTM on identical workloads.
package dbapi

import (
	"context"
	"errors"
	"time"

	"zeus/internal/retry"
)

// ErrConflict is the retryable abort error: the transaction lost a conflict
// (local contention, lost ownership, failed OCC validation, or a read of an
// invalidated object) and should be retried by the application.
var ErrConflict = errors.New("db: transaction conflict, retry")

// ErrNoReplica reports a read-only access on a node that stores no replica
// and could not (or was configured not to) acquire one.
var ErrNoReplica = errors.New("db: object has no local replica")

// Txn is one transaction: reads and writes of whole objects, finished by
// exactly one Commit or Abort.
type Txn interface {
	// Get returns the object's value. In a write transaction the value
	// reflects the transaction's own pending writes.
	Get(obj uint64) ([]byte, error)
	// Set buffers a full-object write (invalid on read-only transactions).
	Set(obj uint64, val []byte) error
	// Commit attempts to commit; ErrConflict means retry.
	Commit() error
	// Abort abandons the transaction.
	Abort()
}

// DB is a transactional datastore node.
type DB interface {
	// Begin starts a write transaction on the given worker thread.
	Begin(worker int) Txn
	// BeginRO starts a read-only transaction (§5.3 in Zeus: local and
	// strictly serializable on any replica).
	BeginRO(worker int) Txn
}

// DefaultPolicy is the conflict-retry policy used by Run/RunRO. It is
// deliberately crash-recovery tolerant: no attempt cap, a generous elapsed
// budget, so applications ride through an owner failover (membership lease
// expiry + view change + replay, §5.1 — milliseconds to seconds) and observe
// the retried transaction committing instead of a spurious ErrConflict.
var DefaultPolicy = retry.Policy{
	InitialBackoff: 2 * time.Microsecond,
	MaxBackoff:     2 * time.Millisecond,
	Multiplier:     2,
	Jitter:         1,
	MaxElapsed:     30 * time.Second,
}

// Run executes fn inside a write transaction with retry-on-conflict under
// DefaultPolicy, the standard application loop.
func Run(db DB, worker int, fn func(Txn) error) error {
	return RunWith(context.Background(), db, worker, DefaultPolicy, fn)
}

// RunRO is Run for read-only transactions.
func RunRO(db DB, worker int, fn func(Txn) error) error {
	return RunROWith(context.Background(), db, worker, DefaultPolicy, fn)
}

// RunWith executes fn inside a write transaction, retrying conflicts under
// the given policy until it commits, the policy is exhausted (the last
// ErrConflict is returned, wrapped with retry.ErrExhausted), or ctx is done.
func RunWith(ctx context.Context, db DB, worker int, p retry.Policy, fn func(Txn) error) error {
	return run(ctx, db, worker, p, fn, false)
}

// RunROWith is RunWith for read-only transactions.
func RunROWith(ctx context.Context, db DB, worker int, p retry.Policy, fn func(Txn) error) error {
	return run(ctx, db, worker, p, fn, true)
}

func run(ctx context.Context, db DB, worker int, p retry.Policy, fn func(Txn) error, ro bool) error {
	return retry.Do(ctx, p,
		func(err error) bool { return errors.Is(err, ErrConflict) },
		func(int) error {
			var tx Txn
			if ro {
				tx = db.BeginRO(worker)
			} else {
				tx = db.Begin(worker)
			}
			err := fn(tx)
			if err == nil {
				return tx.Commit()
			}
			tx.Abort()
			return err
		})
}
