// Package dbapi defines the minimal transactional interface shared by the
// Zeus datastore (internal/core) and the distributed-commit baseline
// (internal/baseline), so that every benchmark workload runs unchanged
// against both systems — mirroring how the paper compares Zeus with
// FaRM/FaSST/DrTM on identical workloads.
package dbapi

import (
	"errors"
	"math/rand"
	"time"
)

// ErrConflict is the retryable abort error: the transaction lost a conflict
// (local contention, lost ownership, failed OCC validation, or a read of an
// invalidated object) and should be retried by the application.
var ErrConflict = errors.New("db: transaction conflict, retry")

// ErrNoReplica reports a read-only access on a node that stores no replica
// and could not (or was configured not to) acquire one.
var ErrNoReplica = errors.New("db: object has no local replica")

// Txn is one transaction: reads and writes of whole objects, finished by
// exactly one Commit or Abort.
type Txn interface {
	// Get returns the object's value. In a write transaction the value
	// reflects the transaction's own pending writes.
	Get(obj uint64) ([]byte, error)
	// Set buffers a full-object write (invalid on read-only transactions).
	Set(obj uint64, val []byte) error
	// Commit attempts to commit; ErrConflict means retry.
	Commit() error
	// Abort abandons the transaction.
	Abort()
}

// DB is a transactional datastore node.
type DB interface {
	// Begin starts a write transaction on the given worker thread.
	Begin(worker int) Txn
	// BeginRO starts a read-only transaction (§5.3 in Zeus: local and
	// strictly serializable on any replica).
	BeginRO(worker int) Txn
}

// Run executes fn inside a write transaction with retry-on-conflict and
// exponential back-off, the standard application loop.
func Run(db DB, worker int, fn func(Txn) error) error {
	return run(db, worker, fn, false)
}

// RunRO is Run for read-only transactions.
func RunRO(db DB, worker int, fn func(Txn) error) error {
	return run(db, worker, fn, true)
}

func run(db DB, worker int, fn func(Txn) error, ro bool) error {
	backoff := 2 * time.Microsecond
	const maxBackoff = 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var tx Txn
		if ro {
			tx = db.BeginRO(worker)
		} else {
			tx = db.Begin(worker)
		}
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		if attempt > 1000 {
			return err
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}
