package filestorage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zeus/internal/storage"
	"zeus/internal/wire"
)

func rec(obj wire.ObjectID, ver uint64, data string) storage.Record {
	return storage.Record{Kind: storage.RecCommit, Obj: obj, Version: ver, Data: []byte(data)}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []storage.Record{
		{Kind: storage.RecInv, Obj: 7, Version: 2, Data: []byte("staged")},
		{Kind: storage.RecCommit, Obj: 7, Version: 2},
		{Kind: storage.RecGrant, Obj: 7, TS: wire.OTS{Ver: 4, Node: 3},
			Replicas: wire.ReplicaSet{Owner: 3, Readers: wire.BitmapOf(1, 2)}, Level: wire.Reader},
		{Kind: storage.RecCommit, Obj: 8, Version: 1, Data: []byte{}}, // empty but present data
	}
	if err := s.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	o := r.Objects[7]
	if o == nil || !o.Valid || string(o.Data) != "staged" || o.Version != 2 {
		t.Fatalf("obj 7: %+v", o)
	}
	if o.Replicas.Owner != 3 || !o.Replicas.Readers.Contains(2) || o.Level != wire.Reader {
		t.Fatalf("obj 7 grant: %+v", o)
	}
	if o8 := r.Objects[8]; o8 == nil || o8.Data == nil || len(o8.Data) != 0 {
		t.Fatalf("obj 8 empty-data roundtrip: %+v", o8)
	}
	if r.Grants != 1 {
		t.Fatalf("grants = %d", r.Grants)
	}
}

// TestTornTailTruncation simulates a crash mid-append: bytes of a frame are
// written but the fsync never completed. Reopen must truncate the torn
// frame and keep everything before it, and the segment must accept new
// appends afterwards.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.Record{rec(1, 1, "keep")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "wal-00000001.log")
	for name, torn := range map[string][]byte{
		"torn-header":  {0x03, 0x00},
		"torn-payload": {0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
		"bad-crc":      {0x02, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
	} {
		clean, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, append(append([]byte(nil), clean...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if got, err := os.ReadFile(seg); err != nil || len(got) != len(clean) {
			t.Fatalf("%s: tail not truncated: %d bytes, want %d (err %v)", name, len(got), len(clean), err)
		}
		if err := s.Append([]storage.Record{rec(2, 1, "after-"+name)}); err != nil {
			t.Fatalf("%s: append after truncation: %v", name, err)
		}
		r, err := s.Recover()
		if err != nil {
			t.Fatalf("%s: recover: %v", name, err)
		}
		if o := r.Objects[1]; o == nil || string(o.Data) != "keep" {
			t.Fatalf("%s: lost durable record: %+v", name, o)
		}
		if o := r.Objects[2]; o == nil || string(o.Data) != "after-"+name {
			t.Fatalf("%s: lost post-truncation record: %+v", name, o)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIncarnationAdvances: every Recover over the same data dir must report
// a strictly larger incarnation, durably (the INCAR file), so a restarted
// process can never stamp its commit pipes with a previous life's number.
func TestIncarnationAdvances(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if r.Incarnation != want {
			t.Fatalf("lifetime %d: incarnation = %d", want, r.Incarnation)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "INCAR"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "3" {
		t.Fatalf("INCAR file = %q, want 3", b)
	}
}

// TestAppendFailStop: an Append whose write (and rewind) failed must poison
// the store — a later "successful" append would land after torn bytes and be
// silently dropped by the restart truncation, despite having been ACKed.
func TestAppendFailStop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.Record{rec(1, 1, "keep")}); err != nil {
		t.Fatal(err)
	}
	s.seg.Close() // kill the fd underneath: the next write errors
	if err := s.Append([]storage.Record{rec(2, 1, "torn")}); err == nil {
		t.Fatal("append over a dead fd did not error")
	}
	// The rewind could not run either (same dead fd), so the store must
	// refuse everything from here on instead of writing past unknown bytes.
	if err := s.Append([]storage.Record{rec(3, 1, "after")}); err == nil {
		t.Fatal("append accepted after the store failed")
	}
	s.closed = true // skip the double-close in Close

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if o := r.Objects[1]; o == nil || string(o.Data) != "keep" {
		t.Fatalf("lost pre-error record: %+v", o)
	}
	if r.Objects[2] != nil || r.Objects[3] != nil {
		t.Fatalf("unacknowledged records resurrected: %+v", r.Objects)
	}
}

// TestSnapshotManifestAtomicity: after a snapshot, recovery uses it plus
// the retained tail; a crash before the manifest flip (simulated by a
// leftover tmp file) must leave the previous state intact.
func TestSnapshotManifestAtomicity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.Record{rec(1, 1, "pre")}); err != nil {
		t.Fatal(err)
	}
	err = s.Snapshot(func(emit func(storage.SnapObject) error) error {
		// Record appended mid-scan lands in the rolled (retained) segment.
		if err := s.Append([]storage.Record{rec(2, 1, "during")}); err != nil {
			return err
		}
		return emit(storage.SnapObject{Obj: 1, Version: 1, Data: []byte("pre"), Valid: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]storage.Record{rec(3, 1, "post")}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.log")); !os.IsNotExist(err) {
		t.Fatalf("pre-snapshot segment not retired: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A half-written snapshot attempt that died before rename/manifest.
	if err := os.WriteFile(filepath.Join(dir, "snap-00000009.snap.tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for obj, want := range map[wire.ObjectID]string{1: "pre", 2: "during", 3: "post"} {
		if o := r.Objects[obj]; o == nil || string(o.Data) != want {
			t.Fatalf("obj %d: %+v, want %q", obj, o, want)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "snapshot snap-00000002.snap") {
		t.Fatalf("manifest does not reference committed snapshot: %q", b)
	}
}
