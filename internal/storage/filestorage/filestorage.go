// Package filestorage is the durable storage driver used by zeusd: CRC-framed
// append-only WAL segments, snapshot files, and an atomically-replaced
// manifest, all under one data directory.
//
// Layout:
//
//	MANIFEST          points at the live snapshot and first retained segment
//	wal-%08d.log      WAL segments, frames of [len u32][crc u32][payload]
//	snap-%08d.snap    object snapshots, same framing
//
// Crash rules: a torn frame at the tail of the newest segment is truncated
// at Open (an append that never finished fsync was by contract never
// acknowledged); a torn frame anywhere else is corruption. Snapshot files
// are written to a temp name, fsynced and renamed before the manifest
// references them, and the manifest itself is replaced by rename, so
// recovery always sees either the old or the new snapshot — never half of
// one.
package filestorage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"zeus/internal/storage"
)

const (
	manifestName = "MANIFEST"
	incarName    = "INCAR"
	frameHeader  = 8        // u32 len + u32 crc
	segMaxBytes  = 64 << 20 // roll threshold
	maxFrame     = 1 << 30  // sanity bound on a single payload
)

// Store implements storage.Storage on a local directory.
type Store struct {
	dir string

	mu       sync.Mutex
	seg      *os.File // open tail segment (append position at EOF)
	segID    uint64
	segSize  int64
	firstSeg uint64 // oldest retained segment
	snapName string // "" when no snapshot yet
	closed   bool
	failed   bool // tail segment in an unknown state; all appends refused

	buf []byte // append scratch, reused under mu
}

// Open opens (or initialises) the data directory dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, firstSeg: 1}
	if err := s.readManifest(); err != nil {
		return nil, err
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	last := s.firstSeg
	if n := len(segs); n > 0 {
		last = segs[n-1]
	}
	if err := s.openTail(last, len(segs) > 0); err != nil {
		return nil, err
	}
	return s, nil
}

func segName(id uint64) string  { return fmt.Sprintf("wal-%08d.log", id) }
func snapFile(id uint64) string { return fmt.Sprintf("snap-%08d.snap", id) }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// readManifest loads MANIFEST; a missing file means a fresh directory.
func (s *Store) readManifest() error {
	b, err := os.ReadFile(s.path(manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "snapshot":
			if fields[1] != "-" {
				s.snapName = fields[1]
			}
		case "firstseg":
			if _, err := fmt.Sscanf(fields[1], "%d", &s.firstSeg); err != nil {
				return fmt.Errorf("filestorage: bad manifest line %q: %w", line, err)
			}
		}
	}
	if s.firstSeg == 0 {
		s.firstSeg = 1
	}
	return nil
}

// writeManifestLocked atomically replaces MANIFEST.
func (s *Store) writeManifestLocked() error {
	snap := s.snapName
	if snap == "" {
		snap = "-"
	}
	body := fmt.Sprintf("zeuswal v1\nsnapshot %s\nfirstseg %d\n", snap, s.firstSeg)
	tmp := s.path(manifestName + ".tmp")
	if err := writeFileSync(tmp, []byte(body)); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path(manifestName)); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// listSegments returns retained segment ids in ascending order.
func (s *Store) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &id); err == nil && id >= s.firstSeg {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openTail opens segment id for appending, truncating a torn tail frame
// left by a crash mid-append.
func (s *Store) openTail(id uint64, exists bool) error {
	f, err := os.OpenFile(s.path(segName(id)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	valid, err := scanValid(f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segID, s.segSize = f, id, valid
	if !exists {
		if err := f.Sync(); err != nil {
			return err
		}
		return syncDir(s.dir)
	}
	return nil
}

// scanValid returns the byte offset of the last complete, CRC-valid frame
// sequence from the start of f.
func scanValid(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(f)
	var off int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // torn/corrupt frame: stop here
		}
		off += frameHeader + int64(n)
	}
}

// Append implements storage.Storage: encode the batch, one write, one
// fsync. A failed write must not leave torn bytes in front of the append
// position: recovery truncates at the first bad frame, so any later
// successful (acknowledged) append landing after torn bytes would be
// silently dropped on restart. On a write error we rewind the file to the
// last known-good offset; if the rewind (or an fsync, whose on-disk
// outcome is unknowable) fails, the store fail-stops and refuses all
// further appends.
func (s *Store) Append(recs []storage.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("filestorage: closed")
	}
	if s.failed {
		return fmt.Errorf("filestorage: store failed by earlier append error")
	}
	buf := s.buf[:0]
	for i := range recs {
		buf = appendFrame(buf, encodeRecord(nil, recs[i]))
	}
	s.buf = buf[:0]
	if _, err := s.seg.Write(buf); err != nil {
		if terr := s.seg.Truncate(s.segSize); terr != nil {
			s.failed = true
			return err
		}
		if _, serr := s.seg.Seek(s.segSize, io.SeekStart); serr != nil {
			s.failed = true
		}
		return err
	}
	if err := s.seg.Sync(); err != nil {
		s.failed = true
		return err
	}
	s.segSize += int64(len(buf))
	if s.segSize >= segMaxBytes {
		return s.rollLocked()
	}
	return nil
}

// rollLocked closes the tail segment and starts the next one.
func (s *Store) rollLocked() error {
	if err := s.seg.Close(); err != nil {
		return err
	}
	return s.openTail(s.segID+1, false)
}

// Snapshot implements storage.Storage. The segment roll happens before the
// scan, so every record not covered by the snapshot lives in a retained
// segment; the manifest flips only after the snapshot file is fully synced.
func (s *Store) Snapshot(scan func(emit func(storage.SnapObject) error) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("filestorage: closed")
	}
	if err := s.rollLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	cut := s.segID // first retained segment once the snapshot lands
	oldSnap := s.snapName
	s.mu.Unlock()

	name := snapFile(cut)
	tmp := s.path(name + ".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	err = scan(func(o storage.SnapObject) error {
		_, werr := w.Write(appendFrame(nil, encodeSnapObject(nil, o)))
		return werr
	})
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(name)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapName = name
	s.firstSeg = cut
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	// Old segments and snapshots are unreferenced now; best-effort GC.
	entries, _ := os.ReadDir(s.dir)
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &id); err == nil && id < cut {
			os.Remove(s.path(e.Name()))
		}
	}
	if oldSnap != "" && oldSnap != name {
		os.Remove(s.path(oldSnap))
	}
	return nil
}

// Recover implements storage.Storage: snapshot first, then retained
// segments in order. A torn tail in the newest segment ends replay; torn
// frames elsewhere are corruption. Recover also durably advances the INCAR
// counter (written before it returns, so a crash right after Recover still
// burned the number) and reports it in Recovered.Incarnation.
func (s *Store) Recover() (*storage.Recovered, error) {
	s.mu.Lock()
	snapName, first, last := s.snapName, s.firstSeg, s.segID
	s.mu.Unlock()

	incar, err := s.bumpIncarnation()
	if err != nil {
		return nil, err
	}
	r := storage.NewRecovered()
	r.Incarnation = incar
	if snapName != "" {
		err := readFrames(s.path(snapName), false, func(payload []byte) error {
			o, err := decodeSnapObject(payload)
			if err != nil {
				return err
			}
			r.ApplySnap(o)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("filestorage: snapshot %s: %w", snapName, err)
		}
	}
	for id := first; id <= last; id++ {
		p := s.path(segName(id))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			continue // never created (empty manifest range)
		}
		err := readFrames(p, id == last, func(payload []byte) error {
			rec, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			r.ApplyRecord(rec)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("filestorage: segment %d: %w", id, err)
		}
	}
	return r, nil
}

// bumpIncarnation reads, increments and durably replaces the INCAR file.
// Write-to-temp + rename + dir fsync: a crash mid-bump leaves either the
// old or the new value, and re-running the bump on the old value still
// yields a number the previous lifetime never reported.
func (s *Store) bumpIncarnation() (uint64, error) {
	var cur uint64
	b, err := os.ReadFile(s.path(incarName))
	if err == nil {
		if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &cur); err != nil {
			return 0, fmt.Errorf("filestorage: bad INCAR file %q: %w", string(b), err)
		}
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	next := cur + 1
	tmp := s.path(incarName + ".tmp")
	if err := writeFileSync(tmp, []byte(fmt.Sprintf("%d\n", next))); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, s.path(incarName)); err != nil {
		return 0, err
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return next, nil
}

// readFrames streams the CRC-framed payloads of one file. tornOK makes a
// trailing invalid frame a clean EOF instead of an error.
func readFrames(path string, tornOK bool, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if tornOK {
				return nil
			}
			return fmt.Errorf("torn frame header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			if tornOK {
				return nil
			}
			return fmt.Errorf("frame length %d exceeds bound", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if tornOK {
				return nil
			}
			return fmt.Errorf("torn frame payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			if tornOK {
				return nil
			}
			return fmt.Errorf("frame CRC mismatch")
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// Close implements storage.Storage.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.seg.Close()
}

func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
