package filestorage

import (
	"encoding/binary"
	"fmt"

	"zeus/internal/storage"
	"zeus/internal/wire"
)

// Frame payloads use a fixed little-endian layout (no varints: WAL bytes
// are cheap, decode branches are not):
//
//	record:  kind u8 | level u8 | flags u8 | obj u64 | version u64 |
//	         tsVer u64 | tsNode u16 | owner u16 | readers u64 | cts u64 |
//	         dataLen u32 | data
//	snapobj: valid u8 | level u8 | flags u8 | same tail as record
//
// flags bit0 = data present (distinguishes nil from empty data).

const fixedPayload = 1 + 1 + 1 + 8 + 8 + 8 + 2 + 2 + 8 + 8 + 4

func appendCommon(dst []byte, obj wire.ObjectID, version uint64, ts wire.OTS, reps wire.ReplicaSet, cts uint64, data []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(obj))
	dst = binary.LittleEndian.AppendUint64(dst, version)
	dst = binary.LittleEndian.AppendUint64(dst, ts.Ver)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(ts.Node))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(reps.Owner))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(reps.Readers))
	dst = binary.LittleEndian.AppendUint64(dst, cts)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(data)))
	return append(dst, data...)
}

func encodeRecord(dst []byte, r storage.Record) []byte {
	var flags byte
	if r.Data != nil {
		flags |= 1
	}
	dst = append(dst, byte(r.Kind), byte(r.Level), flags)
	return appendCommon(dst, r.Obj, r.Version, r.TS, r.Replicas, r.CTS, r.Data)
}

func encodeSnapObject(dst []byte, o storage.SnapObject) []byte {
	var valid, flags byte
	if o.Valid {
		valid = 1
	}
	if o.Data != nil {
		flags |= 1
	}
	dst = append(dst, valid, byte(o.Level), flags)
	return appendCommon(dst, o.Obj, o.Version, o.TS, o.Replicas, o.CTS, o.Data)
}

type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) u8() byte {
	v := p.b[p.off]
	p.off++
	return v
}
func (p *payloadReader) u16() uint16 {
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}
func (p *payloadReader) u32() uint32 {
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}
func (p *payloadReader) u64() uint64 {
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func decodeCommon(p *payloadReader, hasData bool) (obj wire.ObjectID, version uint64, ts wire.OTS, reps wire.ReplicaSet, cts uint64, data []byte, err error) {
	obj = wire.ObjectID(p.u64())
	version = p.u64()
	ts = wire.OTS{Ver: p.u64(), Node: wire.NodeID(p.u16())}
	reps = wire.ReplicaSet{Owner: wire.NodeID(p.u16()), Readers: wire.Bitmap(p.u64())}
	cts = p.u64()
	n := int(p.u32())
	if n > len(p.b)-p.off {
		return obj, version, ts, reps, cts, nil, fmt.Errorf("data length %d exceeds payload", n)
	}
	if hasData {
		data = make([]byte, n)
		copy(data, p.b[p.off:p.off+n])
	}
	return obj, version, ts, reps, cts, data, nil
}

func decodeRecord(payload []byte) (storage.Record, error) {
	if len(payload) < fixedPayload {
		return storage.Record{}, fmt.Errorf("record payload too short: %d", len(payload))
	}
	p := &payloadReader{b: payload}
	var r storage.Record
	r.Kind = storage.RecKind(p.u8())
	r.Level = wire.AccessLevel(p.u8())
	flags := p.u8()
	var err error
	r.Obj, r.Version, r.TS, r.Replicas, r.CTS, r.Data, err = decodeCommon(p, flags&1 != 0)
	return r, err
}

func decodeSnapObject(payload []byte) (storage.SnapObject, error) {
	if len(payload) < fixedPayload {
		return storage.SnapObject{}, fmt.Errorf("snapshot payload too short: %d", len(payload))
	}
	p := &payloadReader{b: payload}
	var o storage.SnapObject
	o.Valid = p.u8() != 0
	o.Level = wire.AccessLevel(p.u8())
	flags := p.u8()
	var err error
	o.Obj, o.Version, o.TS, o.Replicas, o.CTS, o.Data, err = decodeCommon(p, flags&1 != 0)
	return o, err
}
