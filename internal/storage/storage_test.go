package storage_test

import (
	"sync"
	"testing"

	"zeus/internal/storage"
	"zeus/internal/storage/memstorage"
	"zeus/internal/wire"
)

func TestReplayRules(t *testing.T) {
	r := storage.NewRecovered()
	// Staged write: invalid until its commit record shows up.
	r.ApplyRecord(storage.Record{Kind: storage.RecInv, Obj: 1, Version: 5, Data: []byte("v5")})
	if o := r.Objects[1]; o.Valid || o.Version != 5 {
		t.Fatalf("after inv: %+v", o)
	}
	r.ApplyRecord(storage.Record{Kind: storage.RecCommit, Obj: 1, Version: 5})
	if o := r.Objects[1]; !o.Valid || string(o.Data) != "v5" {
		t.Fatalf("after commit: %+v", o)
	}
	// Stale inv replayed after a newer version must not regress.
	r.ApplyRecord(storage.Record{Kind: storage.RecInv, Obj: 1, Version: 4, Data: []byte("v4")})
	if o := r.Objects[1]; !o.Valid || o.Version != 5 {
		t.Fatalf("stale inv regressed: %+v", o)
	}
	// Coordinator-style commit carries data directly.
	r.ApplyRecord(storage.Record{Kind: storage.RecCommit, Obj: 2, Version: 9, Data: []byte("v9")})
	if o := r.Objects[2]; !o.Valid || string(o.Data) != "v9" {
		t.Fatalf("coordinator commit: %+v", o)
	}
	// Grants apply by ownership-timestamp order, not arrival order.
	newer := storage.Record{Kind: storage.RecGrant, Obj: 2, TS: wire.OTS{Ver: 7, Node: 1},
		Replicas: wire.ReplicaSet{Owner: 1}, Level: wire.Reader}
	older := storage.Record{Kind: storage.RecGrant, Obj: 2, TS: wire.OTS{Ver: 3, Node: 2},
		Replicas: wire.ReplicaSet{Owner: 2}, Level: wire.Owner}
	r.ApplyRecord(newer)
	r.ApplyRecord(older)
	if o := r.Objects[2]; o.Replicas.Owner != 1 || o.Level != wire.Reader {
		t.Fatalf("stale grant won: %+v", o)
	}
	if r.Grants != 2 {
		t.Fatalf("grants = %d, want 2", r.Grants)
	}
}

func TestMemstorageSnapshotRetainsTail(t *testing.T) {
	ms := memstorage.New()
	log := storage.NewLog(ms)
	defer log.Close()

	if err := log.Append(storage.Record{Kind: storage.RecCommit, Obj: 1, Version: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	// Snapshot whose scan races a concurrent append: the raced record must
	// survive replay via the retained WAL tail.
	err := ms.Snapshot(func(emit func(storage.SnapObject) error) error {
		if err := log.Append(storage.Record{Kind: storage.RecCommit, Obj: 2, Version: 3, Data: []byte("b")}); err != nil {
			return err
		}
		return emit(storage.SnapObject{Obj: 1, Version: 1, Data: []byte("a"), Valid: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ms.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if o := r.Objects[1]; o == nil || !o.Valid || string(o.Data) != "a" {
		t.Fatalf("snapshotted object: %+v", o)
	}
	if o := r.Objects[2]; o == nil || !o.Valid || o.Version != 3 {
		t.Fatalf("raced append lost: %+v", o)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	ms := memstorage.New()
	log := storage.NewLog(ms)

	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				obj := wire.ObjectID(w*per + i)
				if err := log.Append(storage.Record{Kind: storage.RecCommit, Obj: obj, Version: 1, Data: []byte{byte(w)}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := log.AppendedSinceMark(); got != writers*per {
		t.Fatalf("appended = %d, want %d", got, writers*per)
	}
	log.Close()
	if err := log.Append(storage.Record{Kind: storage.RecCommit, Obj: 1}); err != storage.ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	r, err := ms.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Objects) != writers*per {
		t.Fatalf("recovered %d objects, want %d", len(r.Objects), writers*per)
	}
}
