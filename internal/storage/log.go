package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/obs"
)

// ErrClosed is returned by Log.Append after Close.
var ErrClosed = errors.New("storage: log closed")

// Log is the group-commit front end over a Storage driver. Concurrent
// appenders stage records under a mutex; a single flusher goroutine hands
// whole batches to the driver, so the hot path pays one driver Append (one
// fsync for filestorage) per batch instead of per record. Append returns
// once the batch containing the caller's records is durable.
type Log struct {
	s    Storage
	mu   sync.Mutex
	cur  *logBatch
	kick chan struct{}
	quit chan struct{}
	done sync.WaitGroup

	closed   atomic.Bool
	appended atomic.Int64 // records appended since the last mark

	// obs, when set (SetObs, wiring time), holds the group-commit metric
	// handles; nil keeps the seed flush path.
	obs *logObs
}

// logObs caches the WAL metric handles (resolved once at wiring time).
type logObs struct {
	// appendNS is the driver Append latency per batch (the fsync for
	// filestorage); batchRecs is the group-commit batch size — together
	// they show how well concurrent appenders amortize the sync.
	appendNS  *obs.Histogram
	batchRecs *obs.Histogram
}

// SetObs wires the observability registry. Must be called before the log
// sees traffic (node wiring time): drain reads l.obs unsynchronized.
func (l *Log) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	l.obs = &logObs{
		appendNS:  r.Histogram("wal_append_ns"),
		batchRecs: r.Histogram("wal_batch_records"),
	}
	// Gauge, not counter: the mark resets at every snapshot.
	r.GaugeFunc("wal_records_since_mark", l.appended.Load)
}

type logBatch struct {
	recs []Record
	done chan struct{}
	err  error
}

// NewLog starts a group-commit log over s.
func NewLog(s Storage) *Log {
	l := &Log{s: s, kick: make(chan struct{}, 1), quit: make(chan struct{})}
	l.done.Add(1)
	go l.run()
	return l
}

// Append stages the records and blocks until they are durable (the driver
// Append covering them has returned). Records are frozen once passed in.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	b := l.cur
	if b == nil {
		b = &logBatch{done: make(chan struct{})}
		l.cur = b
	}
	b.recs = append(b.recs, recs...)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	if l.closed.Load() {
		// The flusher may already have drained and exited; flush the
		// staged batch on this goroutine so we cannot block forever.
		l.drain()
	}
	<-b.done
	return b.err
}

func (l *Log) run() {
	defer l.done.Done()
	for {
		select {
		case <-l.kick:
			l.drain()
		case <-l.quit:
			l.drain() // staged batch racing Close
			return
		}
	}
}

func (l *Log) drain() {
	for {
		l.mu.Lock()
		b := l.cur
		l.cur = nil
		l.mu.Unlock()
		if b == nil {
			return
		}
		if ob := l.obs; ob != nil {
			start := time.Now()
			b.err = l.s.Append(b.recs)
			ob.appendNS.RecordSince(start)
			ob.batchRecs.Record(uint64(len(b.recs)))
		} else {
			b.err = l.s.Append(b.recs)
		}
		l.appended.Add(int64(len(b.recs)))
		close(b.done)
	}
}

// AppendedSinceMark returns the number of records flushed since the last
// ResetMark — the snapshot-cadence trigger.
func (l *Log) AppendedSinceMark() int64 { return l.appended.Load() }

// ResetMark zeroes the append counter (called after a snapshot).
func (l *Log) ResetMark() { l.appended.Store(0) }

// Snapshot forwards to the driver's Snapshot and resets the cadence mark.
func (l *Log) Snapshot(scan func(emit func(SnapObject) error) error) error {
	err := l.s.Snapshot(scan)
	if err == nil {
		l.ResetMark()
	}
	return err
}

// Close stops the flusher after draining staged batches. In-flight Append
// calls complete; later ones fail with ErrClosed.
func (l *Log) Close() {
	if l.closed.Swap(true) {
		return
	}
	close(l.quit)
	l.done.Wait()
}
