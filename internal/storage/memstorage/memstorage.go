// Package memstorage is the in-memory storage driver: the default for
// tests and in-process clusters. It keeps the WAL as record slices and the
// snapshot as a map, so a restarted node in the same process recovers real
// state while benchmarks pay only a mutex and a slice append per group
// commit. The segment-roll/snapshot choreography mirrors filestorage so
// the replay path is exercised identically by both drivers.
package memstorage

import (
	"errors"
	"sync"

	"zeus/internal/storage"
)

// Store implements storage.Storage in memory. A Store survives the node it
// belongs to: the cluster harness keeps it across Kill/Restart so recovery
// replays the same bytes a file-backed node would read from disk.
type Store struct {
	mu     sync.Mutex
	snap   []storage.SnapObject
	wal    []storage.Record // records since the snapshot
	incar  uint64           // advanced once per Recover (process lifetime)
	closed bool
}

// New returns an empty in-memory store.
func New() *Store { return &Store{} }

// Append implements storage.Storage. Records are retained by reference:
// the storage contract freezes them at this call.
func (s *Store) Append(recs []storage.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("memstorage: closed")
	}
	s.wal = append(s.wal, recs...)
	return nil
}

// Snapshot implements storage.Storage. The "segment roll" marks the WAL
// length before the scan; records appended during the scan stay in the
// retained tail, so replay (idempotent) never loses them.
func (s *Store) Snapshot(scan func(emit func(storage.SnapObject) error) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("memstorage: closed")
	}
	rolled := len(s.wal)
	s.mu.Unlock()

	var objs []storage.SnapObject
	err := scan(func(o storage.SnapObject) error {
		objs = append(objs, o)
		return nil
	})
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = objs
	s.wal = append([]storage.Record(nil), s.wal[rolled:]...)
	return nil
}

// Recover implements storage.Storage.
func (s *Store) Recover() (*storage.Recovered, error) {
	s.mu.Lock()
	snap := s.snap
	wal := append([]storage.Record(nil), s.wal...)
	s.incar++
	incar := s.incar
	s.mu.Unlock()

	r := storage.NewRecovered()
	r.Incarnation = incar
	for _, o := range snap {
		r.ApplySnap(o)
	}
	for _, rec := range wal {
		r.ApplyRecord(rec)
	}
	return r, nil
}

// Close implements storage.Storage. The retained WAL and snapshot stay
// readable via Reopen (a crashed process's disk does not disappear).
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Reopen makes a closed store appendable again, modeling a restarted
// process opening the same data directory.
func (s *Store) Reopen() {
	s.mu.Lock()
	s.closed = false
	s.mu.Unlock()
}
