// Package storage defines the pluggable persistence layer behind a Zeus
// node: an append-only WAL of committed R-VALs and ownership grants plus
// periodic object snapshots, behind a small Storage interface with two
// drivers (memstorage for tests and in-process clusters, filestorage for
// zeusd). The split mirrors the istorage/istorageimpl shape: this package
// owns the record model, the replay rules and the group-commit front end;
// drivers only move bytes durably.
//
// Durability contract (enforced by the zeuslint walfrozen analyzer):
//
//   - A Record handed to Append is frozen: the WAL may retain and encode it
//     asynchronously, so callers must not mutate it (or the Data it aliases)
//     afterwards. Aliasing store data is safe because object Data is
//     replace-only.
//   - Append returns only once the records are durable at the driver's
//     level (fsynced for filestorage). Apply-side protocol code must not
//     acknowledge a commit before the Append call covering it returns.
//
// Replay is idempotent and version/timestamp monotonic, so a snapshot that
// overlaps the tail of the WAL (the snapshot scan races concurrent appends
// into the rolled segment) recovers to the same state.
package storage

import "zeus/internal/wire"

// RecKind distinguishes WAL record types.
type RecKind uint8

const (
	// RecInv records a replicated write applied from an R-INV: the new
	// version and data, not yet known committed. Followers persist it
	// before acking so an acked write can never be forgotten.
	RecInv RecKind = iota + 1
	// RecCommit records that a version became valid (R-VAL locally applied
	// or coordinator validation). Coordinator-side records carry the data
	// (the coordinator never logged a RecInv for its own write); follower
	// records carry only the version.
	RecCommit
	// RecGrant records an applied ownership grant: the object's new
	// timestamp, replica set and this node's access level.
	RecGrant
)

func (k RecKind) String() string {
	switch k {
	case RecInv:
		return "inv"
	case RecCommit:
		return "commit"
	case RecGrant:
		return "grant"
	default:
		return "rec?"
	}
}

// Record is one WAL entry. Fields beyond (Kind, Obj) are kind-dependent;
// unused fields are zero. Records are immutable after Append.
type Record struct {
	Kind     RecKind
	Obj      wire.ObjectID
	Version  uint64
	Data     []byte // RecInv always; RecCommit on the coordinator
	TS       wire.OTS
	Replicas wire.ReplicaSet
	Level    wire.AccessLevel
	// CTS is the commit timestamp of the recorded version (RecInv /
	// RecCommit; 0 when unknown). Replay keeps the newest so a restarted
	// node reseeds its hybrid-logical clock above everything it ever
	// persisted.
	CTS uint64
}

// SnapObject is one object in a snapshot: the store's durable fields at
// scan time. Valid distinguishes committed data from a staged (invalidated
// but not yet validated) version.
type SnapObject struct {
	Obj      wire.ObjectID
	Version  uint64
	Data     []byte
	Valid    bool
	TS       wire.OTS
	Replicas wire.ReplicaSet
	Level    wire.AccessLevel
	// CTS is the object's commit timestamp at scan time (Object.CommitCTS).
	CTS uint64
}

// Storage is the driver interface. Implementations must be safe for
// concurrent use; Append and Snapshot may be called concurrently with each
// other (drivers serialize internally).
type Storage interface {
	// Append durably persists the records, in order. It returns only once
	// they would survive a crash of this process.
	Append(recs []Record) error

	// Snapshot persists a full object snapshot and retires WAL segments
	// older than it. The driver first rolls to a fresh WAL segment, then
	// invokes scan, so any record appended after the roll is either in the
	// snapshot, in a retained segment, or both — never lost. scan must
	// call emit once per object.
	Snapshot(scan func(emit func(SnapObject) error) error) error

	// Recover replays snapshot + WAL into a recovered image. Call before
	// the first Append of a process lifetime. Recover also advances the
	// store's incarnation counter (durably, for durable drivers) and
	// reports it in Recovered.Incarnation, so two process lifetimes over
	// the same store can never observe the same value.
	Recover() (*Recovered, error)

	// Close releases driver resources. Appends after Close fail.
	Close() error
}

// RecoveredObject is the replayed durable state of one object.
type RecoveredObject struct {
	Version  uint64
	Data     []byte
	Valid    bool // false: staged R-INV whose commit outcome is unknown
	TS       wire.OTS
	Replicas wire.ReplicaSet
	Level    wire.AccessLevel
	CTS      uint64 // commit timestamp of Version (0 when unknown)
}

// Recovered is the result of WAL + snapshot replay.
type Recovered struct {
	Objects map[wire.ObjectID]*RecoveredObject
	// Records counts WAL records replayed on top of the snapshot.
	Records int
	// Grants counts RecGrant records replayed (for "no lost grants"
	// assertions in recovery tests).
	Grants int
	// Incarnation is this process lifetime's strictly-increasing sequence
	// number over the store (1 for the first lifetime). The commit engine
	// stamps it into wire.PipeID.Incar so a crashed-and-restarted
	// coordinator can never alias its previous life's pipelines at the
	// followers, even when the restart beat the failure detector and the
	// view epoch never bumped.
	Incarnation uint64
	// MaxCTS is the largest commit timestamp seen across the snapshot and
	// WAL: the restarted node's hybrid-logical clock must start above it so
	// commits of the new lifetime never reuse a persisted timestamp.
	MaxCTS uint64
}

// NewRecovered returns an empty recovery image for drivers to fill.
func NewRecovered() *Recovered {
	return &Recovered{Objects: make(map[wire.ObjectID]*RecoveredObject)}
}

// ApplySnap installs one snapshot object into the image. Snapshot objects
// are applied before WAL records.
func (r *Recovered) ApplySnap(s SnapObject) {
	r.Objects[s.Obj] = &RecoveredObject{
		Version:  s.Version,
		Data:     s.Data,
		Valid:    s.Valid,
		TS:       s.TS,
		Replicas: s.Replicas,
		Level:    s.Level,
		CTS:      s.CTS,
	}
	if s.CTS > r.MaxCTS {
		r.MaxCTS = s.CTS
	}
}

// ApplyRecord replays one WAL record. Application is idempotent and
// monotonic in (Version, TS), so replaying records already reflected in the
// snapshot is harmless.
func (r *Recovered) ApplyRecord(rec Record) {
	o := r.Objects[rec.Obj]
	if o == nil {
		o = &RecoveredObject{Replicas: wire.ReplicaSet{Owner: wire.NoNode}}
		r.Objects[rec.Obj] = o
	}
	r.Records++
	if rec.CTS > r.MaxCTS {
		r.MaxCTS = rec.CTS
	}
	switch rec.Kind {
	case RecInv:
		if rec.Version > o.Version {
			o.Version = rec.Version
			o.Data = rec.Data
			o.Valid = false
			o.CTS = rec.CTS
		}
	case RecCommit:
		switch {
		case rec.Version == o.Version:
			o.Valid = true
			if rec.Data != nil {
				o.Data = rec.Data
			}
			if rec.CTS > o.CTS {
				o.CTS = rec.CTS
			}
		case rec.Version > o.Version:
			// A commit for a version we never staged: install what we
			// have. Without data the object stays invalid and state sync
			// fetches it from the current owner.
			o.Version = rec.Version
			o.Data = rec.Data
			o.Valid = rec.Data != nil
			o.CTS = rec.CTS
		}
	case RecGrant:
		r.Grants++
		if !rec.TS.Less(o.TS) {
			o.TS = rec.TS
			o.Replicas = rec.Replicas
			o.Level = rec.Level
		}
	}
}
