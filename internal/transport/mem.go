package transport

import (
	"sync"
	"sync/atomic"

	"zeus/internal/wire"
)

// Hub is a perfect in-process fabric: exactly-once, per-sender FIFO, no loss.
// It is the unit-test substrate; protocol tests that need faults use the
// Reliable transport over netsim instead.
type Hub struct {
	mu    sync.RWMutex
	nodes map[wire.NodeID]*MemTransport

	msgs   atomic.Uint64
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{nodes: make(map[wire.NodeID]*MemTransport)}
}

// Messages returns the number of messages carried so far (a multicast or
// batch counts once per message per destination, like the real fabrics).
func (h *Hub) Messages() uint64 { return h.msgs.Load() }

// Frames returns delivery hops carried: a SendBatch counts once however many
// messages it coalesces, mirroring the reliable transport's frame batching.
func (h *Hub) Frames() uint64 { return h.frames.Load() }

// Bytes returns the marshalled payload bytes carried so far (an approximation
// of network bandwidth used, for the bandwidth comparisons in §8).
func (h *Hub) Bytes() uint64 { return h.bytes.Load() }

// MemTransport is one node's attachment to a Hub.
type MemTransport struct {
	hub     *Hub
	self    wire.NodeID
	inbox   chan memFrame
	handler atomic.Value // Handler
	tick    atomic.Value // func(), invoked after each frame's dispatch
	closed  chan struct{}
	once    sync.Once
	down    atomic.Bool
}

// memFrame is one delivery hop: a single message (msg) or a batch.
type memFrame struct {
	from  wire.NodeID
	msg   wire.Msg
	batch []wire.Msg
}

// Node returns (creating if needed) the transport for node id.
func (h *Hub) Node(id wire.NodeID) *MemTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.nodes[id]; ok {
		return t
	}
	t := &MemTransport{
		hub:    h,
		self:   id,
		inbox:  make(chan memFrame, 1<<16),
		closed: make(chan struct{}),
	}
	h.nodes[id] = t
	go t.loop()
	return t
}

// SetDown makes the node drop all inbound and outbound traffic (crash-stop).
func (h *Hub) SetDown(id wire.NodeID, down bool) {
	h.Node(id).down.Store(down)
}

// Self returns the local node id.
func (t *MemTransport) Self() wire.NodeID { return t.self }

// SetHandler installs the inbound handler.
func (t *MemTransport) SetHandler(h Handler) { t.handler.Store(h) }

// SetTickHandler installs the delivery-tick hook, run after each inbox
// frame's messages (one, or a SendBatch's worth) have been dispatched.
func (t *MemTransport) SetTickHandler(f func()) { t.tick.Store(f) }

func (t *MemTransport) sendable() error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if t.down.Load() {
		return ErrClosed
	}
	return nil
}

// commitMsgSize returns the exact marshalled size of the reliable-commit
// messages (used by the zero-copy fast path to keep byte accounting honest
// without actually encoding).
func commitMsgSize(m wire.Msg) (int, bool) {
	switch v := m.(type) {
	case *wire.CommitInv:
		n := 42 // kind + tx + epoch + followers + prevval + replay + count + cts
		for _, u := range v.Updates {
			n += 20 + len(u.Data)
		}
		return n, true
	case *wire.CommitAck:
		return 30, true // + applied watermark
	case *wire.CommitVal:
		return 20, true
	}
	return 0, false
}

// roundtrip runs m through the codec so that tests exercise serialization
// and receivers never alias sender memory. The encode buffer is pooled.
//
// Exception — the reliable-commit hot path (R-INV/R-ACK/R-VAL) is delivered
// zero-copy, like the ownership engine's self-queue: the receiver gets the
// sender's message pointer with no marshal/unmarshal round trip. This is
// safe because commit-protocol messages are immutable once handed to the
// transport (the engine copy-on-writes them for epoch rewrites, see
// commit.OnViewChange/resendLoop) and Update.Data/object data are never
// mutated in place anywhere (writes replace the slice wholesale). Byte
// accounting uses the exact encoded size so bandwidth numbers stay
// comparable with the real fabrics.
func (t *MemTransport) roundtrip(m wire.Msg) (wire.Msg, error) {
	if n, ok := commitMsgSize(m); ok {
		t.hub.msgs.Add(1)
		t.hub.bytes.Add(uint64(n))
		return m, nil
	}
	buf := wire.GetBuf()
	buf.B = wire.AppendMarshal(buf.B, m)
	t.hub.msgs.Add(1)
	t.hub.bytes.Add(uint64(len(buf.B)))
	mm, err := wire.Unmarshal(buf.B)
	wire.PutBuf(buf)
	return mm, err
}

func (t *MemTransport) deliver(to wire.NodeID, f memFrame) error {
	t.hub.mu.RLock()
	dst, ok := t.hub.nodes[to]
	t.hub.mu.RUnlock()
	if !ok || dst.down.Load() {
		return nil // silently dropped, like a network
	}
	t.hub.frames.Add(1)
	select {
	case dst.inbox <- f:
	case <-dst.closed:
	}
	return nil
}

// Send delivers m to the peer's inbox (exactly once, FIFO per sender).
func (t *MemTransport) Send(to wire.NodeID, m wire.Msg) error {
	if err := t.sendable(); err != nil {
		return err
	}
	mm, err := t.roundtrip(m)
	if err != nil {
		return err
	}
	return t.deliver(to, memFrame{from: t.self, msg: mm})
}

// SendBatch delivers msgs to the peer as one inbox hop, preserving order.
func (t *MemTransport) SendBatch(to wire.NodeID, msgs []wire.Msg) error {
	if err := t.sendable(); err != nil {
		return err
	}
	if len(msgs) == 0 {
		return nil
	}
	batch := make([]wire.Msg, 0, len(msgs))
	for _, m := range msgs {
		mm, err := t.roundtrip(m)
		if err != nil {
			return err
		}
		batch = append(batch, mm)
	}
	return t.deliver(to, memFrame{from: t.self, batch: batch})
}

// Multicast sends m to every destination, marshalling once. Each receiver
// gets its own decoded copy (no cross-node aliasing), except commit-protocol
// messages, which ride the zero-copy fast path (see roundtrip).
func (t *MemTransport) Multicast(dsts []wire.NodeID, m wire.Msg) error {
	if err := t.sendable(); err != nil {
		return err
	}
	if len(dsts) == 0 {
		return nil
	}
	if n, ok := commitMsgSize(m); ok {
		t.hub.msgs.Add(uint64(len(dsts)))
		t.hub.bytes.Add(uint64(n) * uint64(len(dsts)))
		var err error
		for _, to := range dsts {
			if e := t.deliver(to, memFrame{from: t.self, msg: m}); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	buf := wire.GetBuf()
	buf.B = wire.AppendMarshal(buf.B, m)
	t.hub.msgs.Add(uint64(len(dsts)))
	t.hub.bytes.Add(uint64(len(buf.B)) * uint64(len(dsts)))
	var err error
	for _, to := range dsts {
		mm, e := wire.Unmarshal(buf.B)
		if e != nil {
			err = e
			continue
		}
		if e := t.deliver(to, memFrame{from: t.self, msg: mm}); e != nil && err == nil {
			err = e
		}
	}
	wire.PutBuf(buf)
	return err
}

func (t *MemTransport) loop() {
	for {
		select {
		case f := <-t.inbox:
			if t.down.Load() {
				continue
			}
			h, _ := t.handler.Load().(Handler)
			if h == nil {
				continue
			}
			if f.batch != nil {
				for _, m := range f.batch {
					h(f.from, m)
				}
			} else {
				h(f.from, f.msg)
			}
			if tf, _ := t.tick.Load().(func()); tf != nil {
				tf()
			}
		case <-t.closed:
			return
		}
	}
}

// Close stops the dispatch goroutine.
func (t *MemTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

var _ Transport = (*MemTransport)(nil)
var _ BatchSender = (*MemTransport)(nil)
var _ Multicaster = (*MemTransport)(nil)
var _ TickNotifier = (*MemTransport)(nil)
var _ Transport = (*Reliable)(nil)
var _ BatchSender = (*Reliable)(nil)
var _ Multicaster = (*Reliable)(nil)
var _ Flusher = (*Reliable)(nil)
var _ TickNotifier = (*Reliable)(nil)
