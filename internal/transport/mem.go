package transport

import (
	"sync"
	"sync/atomic"

	"zeus/internal/wire"
)

// Hub is a perfect in-process fabric: exactly-once, per-sender FIFO, no loss.
// It is the unit-test substrate; protocol tests that need faults use the
// Reliable transport over netsim instead.
type Hub struct {
	mu    sync.RWMutex
	nodes map[wire.NodeID]*MemTransport

	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{nodes: make(map[wire.NodeID]*MemTransport)}
}

// Messages returns the number of messages carried so far.
func (h *Hub) Messages() uint64 { return h.msgs.Load() }

// Bytes returns the marshalled payload bytes carried so far (an approximation
// of network bandwidth used, for the bandwidth comparisons in §8).
func (h *Hub) Bytes() uint64 { return h.bytes.Load() }

// MemTransport is one node's attachment to a Hub.
type MemTransport struct {
	hub     *Hub
	self    wire.NodeID
	inbox   chan memFrame
	handler atomic.Value // Handler
	closed  chan struct{}
	once    sync.Once
	down    atomic.Bool
}

type memFrame struct {
	from wire.NodeID
	msg  wire.Msg
}

// Node returns (creating if needed) the transport for node id.
func (h *Hub) Node(id wire.NodeID) *MemTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.nodes[id]; ok {
		return t
	}
	t := &MemTransport{
		hub:    h,
		self:   id,
		inbox:  make(chan memFrame, 1<<16),
		closed: make(chan struct{}),
	}
	h.nodes[id] = t
	go t.loop()
	return t
}

// SetDown makes the node drop all inbound and outbound traffic (crash-stop).
func (h *Hub) SetDown(id wire.NodeID, down bool) {
	h.Node(id).down.Store(down)
}

// Self returns the local node id.
func (t *MemTransport) Self() wire.NodeID { return t.self }

// SetHandler installs the inbound handler.
func (t *MemTransport) SetHandler(h Handler) { t.handler.Store(h) }

// Send delivers m to the peer's inbox (exactly once, FIFO per sender).
func (t *MemTransport) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if t.down.Load() {
		return ErrClosed
	}
	// Round-trip through the codec so that tests exercise serialization
	// and receivers never alias sender memory.
	b := wire.Marshal(m)
	t.hub.msgs.Add(1)
	t.hub.bytes.Add(uint64(len(b)))
	mm, err := wire.Unmarshal(b)
	if err != nil {
		return err
	}
	t.hub.mu.RLock()
	dst, ok := t.hub.nodes[to]
	t.hub.mu.RUnlock()
	if !ok || dst.down.Load() {
		return nil // silently dropped, like a network
	}
	select {
	case dst.inbox <- memFrame{from: t.self, msg: mm}:
	case <-dst.closed:
	}
	return nil
}

func (t *MemTransport) loop() {
	for {
		select {
		case f := <-t.inbox:
			if t.down.Load() {
				continue
			}
			if h, _ := t.handler.Load().(Handler); h != nil {
				h(f.from, f.msg)
			}
		case <-t.closed:
			return
		}
	}
}

// Close stops the dispatch goroutine.
func (t *MemTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

var _ Transport = (*MemTransport)(nil)
var _ Transport = (*Reliable)(nil)
