package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/wire"
)

// TCP implements Transport over real sockets for multi-process deployments
// (cmd/zeusd). TCP already provides reliable FIFO delivery per connection, so
// no extra sequencing is needed. Frames are length-prefixed wire messages
// preceded by a one-time handshake carrying the sender's node id; SendBatch
// and Multicast marshal once and issue a single write per connection.
type TCP struct {
	self wire.NodeID
	ln   net.Listener

	mu      sync.Mutex
	addrs   map[wire.NodeID]string // guarded by mu; extended via SetAddr
	conns   map[wire.NodeID]*tcpConn
	handler atomic.Value // Handler
	tick    atomic.Value // func(), invoked after each message dispatch
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	decodeDrops atomic.Uint64
}

// tcpConn serializes writes per connection so Send never holds the
// transport-wide lock across a syscall.
type tcpConn struct {
	c   net.Conn
	wmu sync.Mutex
}

// NewTCP starts a listener on listenAddr and returns a transport that can
// dial the peers in addrs (node id → host:port). The address book is copied;
// grow it later with SetAddr as the cluster's replicated address book
// delivers more endpoints.
func NewTCP(self wire.NodeID, listenAddr string, addrs map[wire.NodeID]string) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	book := make(map[wire.NodeID]string, len(addrs))
	for id, a := range addrs {
		book[id] = a
	}
	t := &TCP{
		self:   self,
		addrs:  book,
		ln:     ln,
		conns:  make(map[wire.NodeID]*tcpConn),
		closed: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// SetAddr records (or replaces) a peer's dial address. An existing
// connection to the peer stays up; the address applies on the next dial.
func (t *TCP) SetAddr(id wire.NodeID, addr string) {
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self returns the local node id.
func (t *TCP) Self() wire.NodeID { return t.self }

// SetHandler installs the inbound handler.
func (t *TCP) SetHandler(h Handler) { t.handler.Store(h) }

// SetTickHandler installs the delivery-tick hook. TCP has no frame-batch
// boundaries (batches are concatenated writes), so the hook runs after every
// message — engines respond immediately and coalescing happens sender-side.
func (t *TCP) SetTickHandler(f func()) { t.tick.Store(f) }

// DecodeDrops reports inbound frames dropped because they failed to
// unmarshal; non-zero means peers are sending corrupt or incompatible data.
func (t *TCP) DecodeDrops() uint64 { return t.decodeDrops.Load() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(c)
		}()
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer c.Close()
	// Handshake: peer sends its node id.
	var hdr [2]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	peer := wire.NodeID(binary.LittleEndian.Uint16(hdr[:]))
	// Register the inbound connection for outbound use (first one wins): a
	// peer with no listed address — a zeusctl client, or a joiner the
	// address book has not delivered yet — becomes reachable the moment it
	// dials in, so replies and pushes need no reverse dial.
	t.mu.Lock()
	reg, registered := t.conns[peer]
	if !registered {
		reg = &tcpConn{c: c}
		t.conns[peer] = reg
	}
	t.mu.Unlock()
	t.readLoop(peer, c)
	// The peer hung up: drop the registration (if still ours) so a later
	// Send redials instead of writing into a dead socket.
	t.mu.Lock()
	if cur, ok := t.conns[peer]; ok && cur == reg && reg.c == c {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
}

func (t *TCP) readLoop(peer wire.NodeID, c net.Conn) {
	var lenBuf [4]byte
	var buf []byte // grows to the high-water frame size, then zero-alloc
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 64<<20 {
			return
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		b := buf[:n]
		if _, err := io.ReadFull(c, b); err != nil {
			return
		}
		m, err := wire.Unmarshal(b)
		if err != nil {
			t.decodeDrops.Add(1)
			continue
		}
		if h, _ := t.handler.Load().(Handler); h != nil {
			h(peer, m)
		}
		if tf, _ := t.tick.Load().(func()); tf != nil {
			tf()
		}
	}
}

func (t *TCP) conn(to wire.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(t.self))
	if _, err := c.Write(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}
	tc := &tcpConn{c: c}
	t.conns[to] = tc
	// Also read from outbound connections so a pair of nodes can share
	// one connection in each direction without confusion.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(to, c)
	}()
	return tc, nil
}

// write sends one pre-framed buffer on the peer's connection, dropping the
// connection on error so a later Send redials.
func (t *TCP) write(to wire.NodeID, tc *tcpConn, buf []byte) error {
	tc.wmu.Lock()
	_, err := tc.c.Write(buf)
	tc.wmu.Unlock()
	if err != nil {
		t.mu.Lock()
		if cur, ok := t.conns[to]; ok && cur == tc {
			delete(t.conns, to)
		}
		t.mu.Unlock()
		tc.c.Close()
	}
	return err
}

// Send transmits m to the peer, dialing on first use. Marshalling happens
// outside any lock, into a pooled buffer.
func (t *TCP) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	tc, err := t.conn(to)
	if err != nil {
		return err
	}
	buf := wire.GetBuf()
	buf.B = wire.AppendMessage(buf.B, m) // [len:u32][msg]: the TCP framing
	err = t.write(to, tc, buf.B)
	wire.PutBuf(buf)
	return err
}

// SendBatch transmits msgs back-to-back in a single write (one syscall); the
// on-wire framing is unchanged, so mixed-version peers interoperate.
func (t *TCP) SendBatch(to wire.NodeID, msgs []wire.Msg) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if len(msgs) == 0 {
		return nil
	}
	tc, err := t.conn(to)
	if err != nil {
		return err
	}
	buf := wire.GetBuf()
	for _, m := range msgs {
		buf.B = wire.AppendMessage(buf.B, m)
	}
	err = t.write(to, tc, buf.B)
	wire.PutBuf(buf)
	return err
}

// Multicast marshals m once and writes it to every destination.
func (t *TCP) Multicast(dsts []wire.NodeID, m wire.Msg) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if len(dsts) == 0 {
		return nil
	}
	buf := wire.GetBuf()
	buf.B = wire.AppendMessage(buf.B, m)
	var err error
	for _, to := range dsts {
		tc, e := t.conn(to)
		if e == nil {
			e = t.write(to, tc, buf.B)
		}
		if e != nil && err == nil {
			err = e
		}
	}
	wire.PutBuf(buf)
	return err
}

// Close shuts the listener and all connections down.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.c.Close()
		}
		t.conns = make(map[wire.NodeID]*tcpConn)
		t.mu.Unlock()
	})
	return nil
}

var _ Transport = (*TCP)(nil)
var _ BatchSender = (*TCP)(nil)
var _ Multicaster = (*TCP)(nil)
var _ TickNotifier = (*TCP)(nil)
