package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/wire"
)

// TCP implements Transport over real sockets for multi-process deployments
// (cmd/zeusd). TCP already provides reliable FIFO delivery per connection, so
// no extra sequencing is needed. Frames are length-prefixed wire messages
// preceded by a one-time handshake carrying the sender's node id.
type TCP struct {
	self  wire.NodeID
	addrs map[wire.NodeID]string
	ln    net.Listener

	mu      sync.Mutex
	conns   map[wire.NodeID]net.Conn
	handler atomic.Value // Handler
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

// NewTCP starts a listener on listenAddr and returns a transport that can
// dial the peers in addrs (node id → host:port).
func NewTCP(self wire.NodeID, listenAddr string, addrs map[wire.NodeID]string) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		self:   self,
		addrs:  addrs,
		ln:     ln,
		conns:  make(map[wire.NodeID]net.Conn),
		closed: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self returns the local node id.
func (t *TCP) Self() wire.NodeID { return t.self }

// SetHandler installs the inbound handler.
func (t *TCP) SetHandler(h Handler) { t.handler.Store(h) }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(c)
		}()
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer c.Close()
	// Handshake: peer sends its node id.
	var hdr [2]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	peer := wire.NodeID(binary.LittleEndian.Uint16(hdr[:]))
	t.readLoop(peer, c)
}

func (t *TCP) readLoop(peer wire.NodeID, c net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 64<<20 {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		m, err := wire.Unmarshal(buf)
		if err != nil {
			continue
		}
		if h, _ := t.handler.Load().(Handler); h != nil {
			h(peer, m)
		}
	}
}

func (t *TCP) conn(to wire.NodeID) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(t.self))
	if _, err := c.Write(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}
	t.conns[to] = c
	// Also read from outbound connections so a pair of nodes can share
	// one connection in each direction without confusion.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(to, c)
	}()
	return c, nil
}

// Send transmits m to the peer, dialing on first use.
func (t *TCP) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	c, err := t.conn(to)
	if err != nil {
		return err
	}
	payload := wire.Marshal(m)
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	t.mu.Lock()
	_, err = c.Write(buf)
	if err != nil {
		// Drop the broken connection; a later Send will redial.
		delete(t.conns, to)
		c.Close()
	}
	t.mu.Unlock()
	return err
}

// Close shuts the listener and all connections down.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.conns = make(map[wire.NodeID]net.Conn)
		t.mu.Unlock()
	})
	return nil
}

var _ Transport = (*TCP)(nil)
