package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/wire"
)

// waitFor polls until cond or the deadline; sharded dispatch is asynchronous
// so tests synchronize on observed effects.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestShardedDispatchPreservesPerKeyFIFO floods a sharded router with
// interleaved commit traffic on many pipes and ownership traffic on many
// objects, from several producer goroutines (one per pipe/object, so each
// key's stream is well-ordered at the source like a transport link), and
// asserts every key's messages were handled in order — the FIFO the commit
// pipeline (§5.2) and per-object arbitration rely on.
func TestShardedDispatchPreservesPerKeyFIFO(t *testing.T) {
	const (
		shards  = 4
		pipes   = 8
		objects = 8
		perKey  = 500
	)
	r := NewRouter()
	r.EnableSharding(shards)
	defer r.CloseShards()

	var handled atomic.Int64
	pipeSeq := make([][]uint64, pipes)
	objSeq := make([][]uint64, objects)
	var mu sync.Mutex // guards the slices' append; per-key order is the assertion
	r.Handle(wire.KindCommitInv, func(_ wire.NodeID, m wire.Msg) {
		inv := m.(*wire.CommitInv)
		mu.Lock()
		pipeSeq[inv.Tx.Pipe.Worker] = append(pipeSeq[inv.Tx.Pipe.Worker], inv.Tx.Local)
		mu.Unlock()
		handled.Add(1)
	})
	r.Handle(wire.KindOwnInv, func(_ wire.NodeID, m wire.Msg) {
		inv := m.(*wire.OwnInv)
		mu.Lock()
		objSeq[inv.Obj] = append(objSeq[inv.Obj], inv.TS.Ver)
		mu.Unlock()
		handled.Add(1)
	})

	var wg sync.WaitGroup
	for p := 0; p < pipes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= perKey; i++ {
				r.Dispatch(1, &wire.CommitInv{Tx: wire.TxID{
					Pipe: wire.PipeID{Node: 1, Worker: wire.Worker(p)}, Local: uint64(i)}})
			}
		}(p)
	}
	for o := 0; o < objects; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for i := 1; i <= perKey; i++ {
				r.Dispatch(2, &wire.OwnInv{Obj: wire.ObjectID(o), TS: wire.OTS{Ver: uint64(i)}})
			}
		}(o)
	}
	wg.Wait()
	waitFor(t, "all messages handled", func() bool {
		return handled.Load() == int64((pipes+objects)*perKey)
	})

	for p, seq := range pipeSeq {
		if len(seq) != perKey {
			t.Fatalf("pipe %d: %d messages, want %d", p, len(seq), perKey)
		}
		for i, v := range seq {
			if v != uint64(i+1) {
				t.Fatalf("pipe %d reordered at %d: got local %d", p, i, v)
			}
		}
	}
	for o, seq := range objSeq {
		if len(seq) != perKey {
			t.Fatalf("obj %d: %d messages, want %d", o, len(seq), perKey)
		}
		for i, v := range seq {
			if v != uint64(i+1) {
				t.Fatalf("obj %d reordered at %d: got ts %d", o, i, v)
			}
		}
	}
}

// TestShardedDispatchKeepsUnkeyedInline verifies that kinds without a shard
// key (membership, KV, baseline RPCs) are still handled synchronously on the
// dispatching goroutine, exactly as without sharding.
func TestShardedDispatchKeepsUnkeyedInline(t *testing.T) {
	r := NewRouter()
	r.EnableSharding(4)
	defer r.CloseShards()
	called := false
	r.Handle(wire.KindView, func(wire.NodeID, wire.Msg) { called = true })
	r.Dispatch(0, &wire.View{Epoch: 1})
	if !called {
		t.Fatal("unkeyed message was not dispatched inline")
	}
}

// TestShardedTickRunsAfterFrameMessages asserts the delivery-tick contract
// engines coalesce on: when Tick fires after a burst of keyed messages, the
// hooks observe a state where those messages have been handled (the tick
// token trails them in the shard FIFO).
func TestShardedTickRunsAfterFrameMessages(t *testing.T) {
	const msgs = 200
	r := NewRouter()
	r.EnableSharding(4)
	defer r.CloseShards()

	var handled atomic.Int64
	r.Handle(wire.KindCommitInv, func(wire.NodeID, wire.Msg) { handled.Add(1) })
	var sawAll atomic.Bool
	r.OnTick(func() {
		if handled.Load() == msgs {
			sawAll.Store(true)
		}
	})
	for i := 1; i <= msgs; i++ {
		// One key: all messages and the trailing tick share a shard FIFO.
		r.Dispatch(1, &wire.CommitInv{Tx: wire.TxID{
			Pipe: wire.PipeID{Node: 1, Worker: 0}, Local: uint64(i)}})
	}
	r.Tick()
	waitFor(t, "tick after all messages", func() bool { return sawAll.Load() })
}

// TestCloseShardsStopsDelivery ensures shutdown drops queued work without
// wedging dispatchers.
func TestCloseShardsStopsDelivery(t *testing.T) {
	r := NewRouter()
	r.EnableSharding(2)
	var n atomic.Int64
	r.Handle(wire.KindCommitInv, func(wire.NodeID, wire.Msg) { n.Add(1) })
	for i := 0; i < 100; i++ {
		r.Dispatch(1, &wire.CommitInv{Tx: wire.TxID{Pipe: wire.PipeID{Node: 1}, Local: uint64(i)}})
	}
	r.CloseShards()
	// Dispatch after close: inline again (shards gone), must not panic.
	r.Dispatch(1, &wire.CommitInv{Tx: wire.TxID{Pipe: wire.PipeID{Node: 1}, Local: 1}})
}
