package transport

import (
	"zeus/internal/obs"
)

// RegisterObs exposes the reliable layer's counters through a registry. Pure
// pull-scrape: every quantity already exists as an engine atomic, so the
// frame hot path is untouched — the callbacks read at render time only.
func (r *Reliable) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("tr_msgs_sent_total", r.MessagesSent)
	reg.CounterFunc("tr_data_frames_total", r.DataFramesSent)
	reg.CounterFunc("tr_pure_acks_total", r.PureAcksSent)
	reg.CounterFunc("tr_retransmits_total", r.Retransmits)
	reg.CounterFunc("tr_fast_retransmits_total", r.FastRetransmits)
	reg.CounterFunc("tr_decode_drops_total", r.DecodeDrops)
	reg.CounterFunc("tr_corrupt_frames_total", r.CorruptFrames)
	reg.CounterFunc("tr_send_errors_total", r.SendErrors)
	reg.GaugeFunc("tr_inflight_frames", func() int64 { return int64(r.InFlight()) })
	reg.GaugeFunc("tr_rto_max_ns", func() int64 { return int64(r.MaxRTO()) })
}

// MaxRTO returns the largest current adaptive retransmission timeout across
// peers (0 with no peers): the worst link this node is speaking over.
func (r *Reliable) MaxRTO() int64 {
	var max int64
	for _, p := range r.snapshotPeers() {
		p.sendMu.Lock()
		rto := int64(p.est.RTO())
		p.sendMu.Unlock()
		if rto > max {
			max = rto
		}
	}
	return max
}
