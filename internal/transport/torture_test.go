package transport

import (
	"fmt"
	"testing"
	"time"

	"zeus/internal/netsim"
)

// TestReliableTortureLossSweep drives bidirectional traffic through the
// reliable transport at increasing loss rates (with duplication and jitter-
// induced reordering on top) and asserts the §3.1 contract exactly: every
// message delivered exactly once, in per-peer FIFO order, at every rate.
// Deterministic drops make each rate's fault pattern reproducible run to run.
func TestReliableTortureLossSweep(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.20} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			cfg := netsim.Config{
				Seed:               1234,
				MinLatency:         2 * time.Microsecond,
				MaxLatency:         60 * time.Microsecond,
				LossProb:           loss,
				DupProb:            loss / 2,
				DeterministicDrops: true,
				InboxDepth:         1 << 14,
			}
			n := netsim.New(cfg)
			defer n.Close()
			rc := ReliableConfig{RTO: time.Millisecond}
			a := NewReliable(n.Endpoint(0), rc)
			b := NewReliable(n.Endpoint(1), rc)
			defer a.Close()
			defer b.Close()

			ca, cb := newCollect(), newCollect()
			a.SetHandler(ca.handler)
			b.SetHandler(cb.handler)

			const N = 1500
			go func() {
				for i := uint64(0); i < N; i++ {
					_ = a.Send(1, ping(i))
				}
			}()
			go func() {
				for i := uint64(0); i < N; i++ {
					_ = b.Send(0, ping(i))
				}
			}()
			cb.waitN(t, N, 30*time.Second)
			ca.waitN(t, N, 30*time.Second)

			check := func(name string, c *collect) {
				c.mu.Lock()
				defer c.mu.Unlock()
				if len(c.msgs) != N {
					t.Fatalf("%s: delivered %d, want exactly %d (no losses, no dups)", name, len(c.msgs), N)
				}
				for i, m := range c.msgs {
					if pingSeq(m) != uint64(i) {
						t.Fatalf("%s: out of order at %d: got %d", name, i, pingSeq(m))
					}
				}
			}
			check("a→b", cb)
			check("b→a", ca)

			st := n.Stats()
			t.Logf("loss=%.0f%%: fabric dropped %d / duplicated %d of %d frames "+
				"(%d msgs in %d data frames); timeout retransmits a=%d b=%d, "+
				"fast retransmits a=%d b=%d",
				loss*100, st.Lost, st.Duplicate, st.Sent,
				a.MessagesSent()+b.MessagesSent(), a.DataFramesSent()+b.DataFramesSent(),
				a.Retransmits(), b.Retransmits(), a.FastRetransmits(), b.FastRetransmits())
			// Batching shrinks the frame count, so the deterministic drop
			// pattern may spare one direction entirely; recovery machinery
			// must have fired somewhere once real frames were lost.
			recoveries := a.Retransmits() + a.FastRetransmits() + b.Retransmits() + b.FastRetransmits()
			if loss >= 0.05 && st.Lost > 0 && recoveries == 0 {
				t.Fatalf("no retransmissions at %.0f%% loss: recovery machinery inert", loss*100)
			}
			if drops := a.DecodeDrops() + b.DecodeDrops(); drops != 0 {
				t.Fatalf("decode drops = %d, want 0: delivered frames lost above the retransmission layer", drops)
			}
			if corrupt := a.CorruptFrames() + b.CorruptFrames(); corrupt != 0 {
				t.Fatalf("corrupt frames = %d, want 0", corrupt)
			}
		})
	}
}

// TestReliableAdaptiveRTORecoversTailLoss checks the timer path alone: a
// single frame lost with no follow-up traffic (no duplicate-ACK signal) must
// be recovered by the adaptive RTO well under the configured initial timer
// once the estimator has samples. (MinRTO is floored by the host's measured
// timer granularity — see ReliableConfig — so the initial RTO here is set
// comfortably above that floor to keep adapted-vs-initial distinguishable.)
func TestReliableAdaptiveRTORecoversTailLoss(t *testing.T) {
	cfg := netsim.Config{
		Seed:       5,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 20 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{RTO: 20 * time.Millisecond, MinRTO: 100 * time.Microsecond}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	// Warm the estimator on a clean link, paced so RTT samples measure the
	// fabric rather than our own queue backlog.
	const warm = 100
	for i := uint64(0); i < warm; i++ {
		_ = a.Send(1, ping(i))
		time.Sleep(30 * time.Microsecond)
	}
	c.waitN(t, warm, 5*time.Second)

	// Drain the send window first: a frame queued behind leftover in-flight
	// traffic would ride the egress queue through the partition instead of
	// being lost on the wire.
	drainDeadline := time.Now().Add(2 * time.Second)
	for a.InFlight() > 0 {
		if time.Now().After(drainDeadline) {
			t.Fatal("send window never drained after warm-up")
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Now lose exactly the next frame (tail loss: nothing follows it).
	n.Partition(0, 1)
	_ = a.Send(1, ping(warm))
	time.Sleep(50 * time.Microsecond)
	n.Heal(0, 1)

	start := time.Now()
	c.waitN(t, warm+1, 5*time.Second)
	elapsed := time.Since(start)
	t.Logf("tail loss recovered in %v (adapted RTO; initial was %v)", elapsed, rc.RTO)
	if elapsed >= rc.RTO {
		t.Fatalf("tail-loss recovery took %v, not faster than the initial %v RTO: estimator not engaged", elapsed, rc.RTO)
	}
	if a.Retransmits() == 0 {
		t.Fatal("tail loss must be recovered by a timeout retransmission")
	}
}

// TestReliableFastRetransmitFiresOnDupAcks checks the fast path: when later
// frames follow a lost one, duplicate ACKs must trigger recovery without
// waiting for the retransmission timer.
func TestReliableFastRetransmitFiresOnDupAcks(t *testing.T) {
	cfg := netsim.Config{
		Seed:       6,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 10 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	// A huge MinRTO disables the timer path; only fast retransmit can save
	// the lost frame within the test's deadline.
	rc := ReliableConfig{RTO: 2 * time.Second, MinRTO: 2 * time.Second, MaxRTO: 4 * time.Second}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	_ = a.Send(1, ping(0))
	c.waitN(t, 1, 5*time.Second)

	// Lose frame 1, then send 2..5 which arrive out of order and generate
	// duplicate ACKs.
	n.Partition(0, 1)
	_ = a.Send(1, ping(1))
	time.Sleep(100 * time.Microsecond)
	n.Heal(0, 1)
	for i := uint64(2); i <= 5; i++ {
		_ = a.Send(1, ping(i))
	}
	c.waitN(t, 6, 5*time.Second)
	if a.FastRetransmits() == 0 {
		t.Fatal("recovery happened without a fast retransmission (timer path was disabled)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
}

// TestReliableAckCoalescingRatio drives a one-way burst over a perfect fabric
// and asserts the batching contract: messages coalesce into far fewer frames,
// the receiver's delayed acks stay below one pure ack per two data frames,
// and nothing is lost or dropped in decode.
func TestReliableAckCoalescingRatio(t *testing.T) {
	cfg := netsim.Config{
		Seed:       7,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 20 * time.Microsecond,
		InboxDepth: 1 << 14,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{RTO: 2 * time.Millisecond}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	const N = 1500
	for i := uint64(0); i < N; i++ {
		_ = a.Send(1, ping(i))
	}
	a.Flush()
	c.waitN(t, N, 10*time.Second)

	c.mu.Lock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			c.mu.Unlock()
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
	c.mu.Unlock()

	frames, acks, msgs := a.DataFramesSent(), b.PureAcksSent(), a.MessagesSent()
	t.Logf("%d msgs in %d data frames (avg batch %.1f), %d pure acks (ratio %.2f)",
		msgs, frames, float64(msgs)/float64(frames), acks, float64(acks)/float64(frames))
	if msgs != N {
		t.Fatalf("messages sent = %d, want %d", msgs, N)
	}
	if frames >= N/2 {
		t.Fatalf("batching inert: %d frames for %d messages", frames, N)
	}
	// Race instrumentation slows delivery enough that delayed-ack timers
	// beat the every-8th-frame counter; the tight ratio is asserted only on
	// un-instrumented builds (see race_off_test.go).
	ackBound := 0.5
	if raceEnabled {
		ackBound = 4.0
	}
	if ratio := float64(acks) / float64(frames); ratio >= ackBound {
		t.Fatalf("pure-ack:data frame ratio = %.2f, want < %.1f (ack coalescing inert)", ratio, ackBound)
	}
	if drops := b.DecodeDrops(); drops != 0 {
		t.Fatalf("decode drops = %d, want 0", drops)
	}
}

// TestReliableFlushOnClose queues messages behind a deliberately tiny send
// window and closes the transport: Close must flush the egress queue onto the
// wire first, and everything must arrive in FIFO order.
func TestReliableFlushOnClose(t *testing.T) {
	cfg := netsim.Config{
		Seed:       8,
		MinLatency: 200 * time.Microsecond, // acks too slow to clock the queue out
		MaxLatency: 200 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{RTO: 50 * time.Millisecond, WindowFrames: 1, FlushInterval: time.Hour}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	const N = 10
	for i := uint64(0); i < N; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	// With WindowFrames=1 and no timer, messages 1..9 sit in the egress
	// queue; Close must push them out before shutting down.
	_ = a.Close()
	c.waitN(t, N, 5*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d after flush-on-close: got %d", i, pingSeq(m))
		}
	}
	if err := a.Send(1, ping(99)); err == nil {
		t.Fatal("closed transport accepted a send")
	}
}

// TestReliableBatchLossRetransmitsAsUnit loses whole batch frames (every
// frame sent during a partition) and checks that the retransmission machinery
// recovers them as units, preserving FIFO order with no decode drops.
func TestReliableBatchLossRetransmitsAsUnit(t *testing.T) {
	cfg := netsim.Config{
		Seed:       9,
		MinLatency: 20 * time.Microsecond,
		MaxLatency: 50 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{RTO: 1 * time.Millisecond, WindowFrames: 1}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	// Everything sent now is lost: the first message leaves immediately
	// (window open), the rest coalesce into batch frames behind it.
	n.Partition(0, 1)
	const N = 21
	for i := uint64(0); i < N; i++ {
		_ = a.Send(1, ping(i))
	}
	a.Flush()
	time.Sleep(200 * time.Microsecond)
	n.Heal(0, 1)

	c.waitN(t, N, 10*time.Second)
	c.mu.Lock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			c.mu.Unlock()
			t.Fatalf("out of order at %d after batch loss: got %d", i, pingSeq(m))
		}
	}
	c.mu.Unlock()
	if a.Retransmits() == 0 {
		t.Fatal("partition-dropped batches must be recovered by retransmission")
	}
	if frames := a.DataFramesSent(); frames > 6 {
		t.Fatalf("batching inert under loss: %d first-transmission frames for %d messages", frames, N)
	}
	if drops := b.DecodeDrops(); drops != 0 {
		t.Fatalf("decode drops = %d, want 0 (batch boundaries corrupted?)", drops)
	}
}

// TestReliableDelayedAckPreservesFastRetransmit disables every timer path
// (huge RTO, delayed-ack timer parked at an hour) and verifies that a hole
// is still recovered promptly: out-of-order frames must generate immediate
// duplicate acks — the delayed-ack machinery may never swallow them.
func TestReliableDelayedAckPreservesFastRetransmit(t *testing.T) {
	cfg := netsim.Config{
		Seed:       10,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 10 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{
		RTO: 2 * time.Second, MinRTO: 2 * time.Second, MaxRTO: 4 * time.Second,
		FlushInterval: time.Hour, // delayed-ack/egress timer: never
		AckEvery:      1 << 20,   // count-triggered acks: never
	}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	_ = a.Send(1, ping(0))
	c.waitN(t, 1, 5*time.Second)

	// Lose frame 1, then send 2..5: they arrive out of order and must be
	// acked immediately (duplicate acks), triggering fast retransmit well
	// before the 2s RTO.
	n.Partition(0, 1)
	_ = a.Send(1, ping(1))
	time.Sleep(100 * time.Microsecond)
	n.Heal(0, 1)
	start := time.Now()
	for i := uint64(2); i <= 5; i++ {
		_ = a.Send(1, ping(i))
	}
	c.waitN(t, 6, 5*time.Second)
	elapsed := time.Since(start)
	if a.FastRetransmits() == 0 {
		t.Fatal("hole recovered without fast retransmission (all timers were disabled)")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("recovery took %v: rode the RTO instead of duplicate acks", elapsed)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
}
