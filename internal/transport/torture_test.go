package transport

import (
	"fmt"
	"testing"
	"time"

	"zeus/internal/netsim"
)

// TestReliableTortureLossSweep drives bidirectional traffic through the
// reliable transport at increasing loss rates (with duplication and jitter-
// induced reordering on top) and asserts the §3.1 contract exactly: every
// message delivered exactly once, in per-peer FIFO order, at every rate.
// Deterministic drops make each rate's fault pattern reproducible run to run.
func TestReliableTortureLossSweep(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.20} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			cfg := netsim.Config{
				Seed:               1234,
				MinLatency:         2 * time.Microsecond,
				MaxLatency:         60 * time.Microsecond,
				LossProb:           loss,
				DupProb:            loss / 2,
				DeterministicDrops: true,
				InboxDepth:         1 << 14,
			}
			n := netsim.New(cfg)
			defer n.Close()
			rc := ReliableConfig{RTO: time.Millisecond}
			a := NewReliable(n.Endpoint(0), rc)
			b := NewReliable(n.Endpoint(1), rc)
			defer a.Close()
			defer b.Close()

			ca, cb := newCollect(), newCollect()
			a.SetHandler(ca.handler)
			b.SetHandler(cb.handler)

			const N = 1500
			go func() {
				for i := uint64(0); i < N; i++ {
					_ = a.Send(1, ping(i))
				}
			}()
			go func() {
				for i := uint64(0); i < N; i++ {
					_ = b.Send(0, ping(i))
				}
			}()
			cb.waitN(t, N, 30*time.Second)
			ca.waitN(t, N, 30*time.Second)

			check := func(name string, c *collect) {
				c.mu.Lock()
				defer c.mu.Unlock()
				if len(c.msgs) != N {
					t.Fatalf("%s: delivered %d, want exactly %d (no losses, no dups)", name, len(c.msgs), N)
				}
				for i, m := range c.msgs {
					if pingSeq(m) != uint64(i) {
						t.Fatalf("%s: out of order at %d: got %d", name, i, pingSeq(m))
					}
				}
			}
			check("a→b", cb)
			check("b→a", ca)

			st := n.Stats()
			t.Logf("loss=%.0f%%: fabric dropped %d / duplicated %d of %d frames; "+
				"timeout retransmits a=%d b=%d, fast retransmits a=%d b=%d",
				loss*100, st.Lost, st.Duplicate, st.Sent,
				a.Retransmits(), b.Retransmits(), a.FastRetransmits(), b.FastRetransmits())
			if loss >= 0.05 && a.Retransmits()+a.FastRetransmits() == 0 {
				t.Fatalf("no retransmissions at %.0f%% loss: recovery machinery inert", loss*100)
			}
		})
	}
}

// TestReliableAdaptiveRTORecoversTailLoss checks the timer path alone: a
// single frame lost with no follow-up traffic (no duplicate-ACK signal) must
// be recovered by the adaptive RTO well under the old fixed 2 ms timer once
// the estimator has samples.
func TestReliableAdaptiveRTORecoversTailLoss(t *testing.T) {
	cfg := netsim.Config{
		Seed:       5,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 20 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	rc := ReliableConfig{RTO: 2 * time.Millisecond, MinRTO: 100 * time.Microsecond}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	// Warm the estimator on a clean link, paced so RTT samples measure the
	// fabric rather than our own queue backlog.
	const warm = 100
	for i := uint64(0); i < warm; i++ {
		_ = a.Send(1, ping(i))
		time.Sleep(30 * time.Microsecond)
	}
	c.waitN(t, warm, 5*time.Second)

	// Now lose exactly the next frame (tail loss: nothing follows it).
	n.Partition(0, 1)
	_ = a.Send(1, ping(warm))
	time.Sleep(50 * time.Microsecond)
	n.Heal(0, 1)

	start := time.Now()
	c.waitN(t, warm+1, 5*time.Second)
	elapsed := time.Since(start)
	t.Logf("tail loss recovered in %v (adapted RTO; initial was %v)", elapsed, rc.RTO)
	if elapsed >= rc.RTO {
		t.Fatalf("tail-loss recovery took %v, not faster than the initial %v RTO: estimator not engaged", elapsed, rc.RTO)
	}
	if a.Retransmits() == 0 {
		t.Fatal("tail loss must be recovered by a timeout retransmission")
	}
}

// TestReliableFastRetransmitFiresOnDupAcks checks the fast path: when later
// frames follow a lost one, duplicate ACKs must trigger recovery without
// waiting for the retransmission timer.
func TestReliableFastRetransmitFiresOnDupAcks(t *testing.T) {
	cfg := netsim.Config{
		Seed:       6,
		MinLatency: 5 * time.Microsecond,
		MaxLatency: 10 * time.Microsecond,
		InboxDepth: 4096,
	}
	n := netsim.New(cfg)
	defer n.Close()
	// A huge MinRTO disables the timer path; only fast retransmit can save
	// the lost frame within the test's deadline.
	rc := ReliableConfig{RTO: 2 * time.Second, MinRTO: 2 * time.Second, MaxRTO: 4 * time.Second}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	_ = a.Send(1, ping(0))
	c.waitN(t, 1, 5*time.Second)

	// Lose frame 1, then send 2..5 which arrive out of order and generate
	// duplicate ACKs.
	n.Partition(0, 1)
	_ = a.Send(1, ping(1))
	time.Sleep(100 * time.Microsecond)
	n.Heal(0, 1)
	for i := uint64(2); i <= 5; i++ {
		_ = a.Send(1, ping(i))
	}
	c.waitN(t, 6, 5*time.Second)
	if a.FastRetransmits() == 0 {
		t.Fatal("recovery happened without a fast retransmission (timer path was disabled)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
}
