// Package transport provides reliable, ordered message delivery between Zeus
// nodes over three interchangeable fabrics:
//
//   - Reliable: sequence numbers, cumulative acks, retransmission and
//     deduplication over the lossy simulated network (internal/netsim) —
//     the analogue of the paper's reliable messaging library over DPDK.
//   - Hub (memnet): a perfect in-process fabric for unit tests.
//   - TCP: real sockets for multi-process deployments (cmd/zeusd).
//
// All fabrics guarantee exactly-once, per-peer FIFO delivery of wire.Msg
// values, which the Zeus protocols rely on for pipeline ordering (§5.2).
package transport

import (
	"errors"
	"sync"

	"zeus/internal/wire"
)

// Handler consumes an inbound message. Handlers run on transport goroutines
// and must not block indefinitely.
type Handler func(from wire.NodeID, m wire.Msg)

// Transport sends and receives protocol messages.
type Transport interface {
	// Self returns the local node id.
	Self() wire.NodeID
	// Send transmits one message to a peer (reliable, FIFO per peer).
	Send(to wire.NodeID, m wire.Msg) error
	// SetHandler installs the inbound message handler. It must be called
	// before any peer sends traffic to this node.
	SetHandler(h Handler)
	// Close releases transport resources.
	Close() error
}

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("transport: closed")

// BatchSender is implemented by transports that can hand several messages to
// one peer as a unit (one frame on the reliable fabric, one write on TCP, one
// inbox hop on the hub). Protocol engines use it to coalesce responses.
type BatchSender interface {
	SendBatch(to wire.NodeID, msgs []wire.Msg) error
}

// Multicaster is implemented by transports that can send one message to many
// peers with a single marshal (the batched fan-out on the replication path).
type Multicaster interface {
	Multicast(dsts []wire.NodeID, m wire.Msg) error
}

// Flusher is implemented by transports that buffer egress (frame batching);
// Flush forces everything queued onto the wire.
type Flusher interface {
	Flush()
}

// TickNotifier is implemented by transports that signal delivery ticks: the
// hook runs once after each inbound frame's (or batch's) messages have been
// dispatched, so engines can flush responses coalesced across the frame.
type TickNotifier interface {
	SetTickHandler(func())
}

// SetTick installs f as the delivery-tick hook if the transport supports it.
func SetTick(t Transport, f func()) {
	if tn, ok := t.(TickNotifier); ok {
		tn.SetTickHandler(f)
	}
}

// SendBatch sends msgs to one peer, as a unit when the transport supports it.
func SendBatch(t Transport, to wire.NodeID, msgs []wire.Msg) error {
	if len(msgs) == 0 {
		return nil
	}
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(to, msgs)
	}
	for _, m := range msgs {
		if err := t.Send(to, m); err != nil {
			return err
		}
	}
	return nil
}

// Multicast sends m to every node in dsts (self included, if listed), with a
// single marshal when the transport supports it.
func Multicast(t Transport, dsts []wire.NodeID, m wire.Msg) error {
	if len(dsts) == 0 {
		return nil
	}
	if mc, ok := t.(Multicaster); ok {
		return mc.Multicast(dsts, m)
	}
	var err error
	for _, n := range dsts {
		if e := t.Send(n, m); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Flush forces any transport-buffered egress onto the wire.
func Flush(t Transport) {
	if f, ok := t.(Flusher); ok {
		f.Flush()
	}
}

// Broadcast sends m to every node in set except self (one marshal when the
// transport is a Multicaster).
func Broadcast(t Transport, set wire.Bitmap, m wire.Msg) {
	self := t.Self()
	nodes := set.Remove(self).Nodes()
	_ = Multicast(t, nodes, m)
}

// Router dispatches inbound messages to per-kind handlers, so that the
// ownership engine, reliable-commit engine, membership agent, Hermes KV and
// baseline engine can share one Transport.
type Router struct {
	mu       sync.RWMutex
	handlers [64]Handler
	fallback Handler
	ticks    []func()
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Handle registers h for message kind k, replacing any previous handler.
func (r *Router) Handle(k wire.Kind, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[k] = h
}

// HandleMany registers h for several kinds at once.
func (r *Router) HandleMany(h Handler, kinds ...wire.Kind) {
	for _, k := range kinds {
		r.Handle(k, h)
	}
}

// Fallback registers the handler for kinds with no specific handler.
func (r *Router) Fallback(h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = h
}

// OnTick registers f to run on every transport delivery tick (see
// TickNotifier); install Router.Tick as the transport's tick handler.
func (r *Router) OnTick(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ticks = append(r.ticks, f)
}

// Tick fans a delivery tick out to every registered hook.
func (r *Router) Tick() {
	r.mu.RLock()
	ticks := r.ticks
	r.mu.RUnlock()
	for _, f := range ticks {
		f()
	}
}

// Dispatch routes one message; it is the Handler to install on a Transport.
func (r *Router) Dispatch(from wire.NodeID, m wire.Msg) {
	r.mu.RLock()
	h := r.handlers[m.Kind()]
	if h == nil {
		h = r.fallback
	}
	r.mu.RUnlock()
	if h != nil {
		h(from, m)
	}
}
