// Package transport provides reliable, ordered message delivery between Zeus
// nodes over three interchangeable fabrics:
//
//   - Reliable: sequence numbers, cumulative acks, retransmission and
//     deduplication over the lossy simulated network (internal/netsim) —
//     the analogue of the paper's reliable messaging library over DPDK.
//   - Hub (memnet): a perfect in-process fabric for unit tests.
//   - TCP: real sockets for multi-process deployments (cmd/zeusd).
//
// All fabrics guarantee exactly-once, per-peer FIFO delivery of wire.Msg
// values, which the Zeus protocols rely on for pipeline ordering (§5.2).
package transport

import (
	"errors"
	"sync"

	"zeus/internal/wire"
)

// Handler consumes an inbound message. Handlers run on transport goroutines
// and must not block indefinitely.
type Handler func(from wire.NodeID, m wire.Msg)

// Transport sends and receives protocol messages.
type Transport interface {
	// Self returns the local node id.
	Self() wire.NodeID
	// Send transmits one message to a peer (reliable, FIFO per peer).
	Send(to wire.NodeID, m wire.Msg) error
	// SetHandler installs the inbound message handler. It must be called
	// before any peer sends traffic to this node.
	SetHandler(h Handler)
	// Close releases transport resources.
	Close() error
}

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Broadcast sends m to every node in set except self.
func Broadcast(t Transport, set wire.Bitmap, m wire.Msg) {
	self := t.Self()
	for _, n := range set.Nodes() {
		if n == self {
			continue
		}
		_ = t.Send(n, m)
	}
}

// Router dispatches inbound messages to per-kind handlers, so that the
// ownership engine, reliable-commit engine, membership agent, Hermes KV and
// baseline engine can share one Transport.
type Router struct {
	mu       sync.RWMutex
	handlers [64]Handler
	fallback Handler
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Handle registers h for message kind k, replacing any previous handler.
func (r *Router) Handle(k wire.Kind, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[k] = h
}

// HandleMany registers h for several kinds at once.
func (r *Router) HandleMany(h Handler, kinds ...wire.Kind) {
	for _, k := range kinds {
		r.Handle(k, h)
	}
}

// Fallback registers the handler for kinds with no specific handler.
func (r *Router) Fallback(h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = h
}

// Dispatch routes one message; it is the Handler to install on a Transport.
func (r *Router) Dispatch(from wire.NodeID, m wire.Msg) {
	r.mu.RLock()
	h := r.handlers[m.Kind()]
	if h == nil {
		h = r.fallback
	}
	r.mu.RUnlock()
	if h != nil {
		h(from, m)
	}
}
