// Package transport provides reliable, ordered message delivery between Zeus
// nodes over three interchangeable fabrics:
//
//   - Reliable: sequence numbers, cumulative acks, retransmission and
//     deduplication over the lossy simulated network (internal/netsim) —
//     the analogue of the paper's reliable messaging library over DPDK.
//   - Hub (memnet): a perfect in-process fabric for unit tests.
//   - TCP: real sockets for multi-process deployments (cmd/zeusd).
//
// All fabrics guarantee exactly-once, per-peer FIFO delivery of wire.Msg
// values, which the Zeus protocols rely on for pipeline ordering (§5.2).
package transport

import (
	"errors"
	"sync"

	"zeus/internal/wire"
)

// Handler consumes an inbound message. Handlers run on transport goroutines
// and must not block indefinitely.
type Handler func(from wire.NodeID, m wire.Msg)

// Transport sends and receives protocol messages.
type Transport interface {
	// Self returns the local node id.
	Self() wire.NodeID
	// Send transmits one message to a peer (reliable, FIFO per peer).
	Send(to wire.NodeID, m wire.Msg) error
	// SetHandler installs the inbound message handler. It must be called
	// before any peer sends traffic to this node.
	SetHandler(h Handler)
	// Close releases transport resources.
	Close() error
}

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("transport: closed")

// BatchSender is implemented by transports that can hand several messages to
// one peer as a unit (one frame on the reliable fabric, one write on TCP, one
// inbox hop on the hub). Protocol engines use it to coalesce responses.
type BatchSender interface {
	SendBatch(to wire.NodeID, msgs []wire.Msg) error
}

// Multicaster is implemented by transports that can send one message to many
// peers with a single marshal (the batched fan-out on the replication path).
type Multicaster interface {
	Multicast(dsts []wire.NodeID, m wire.Msg) error
}

// Flusher is implemented by transports that buffer egress (frame batching);
// Flush forces everything queued onto the wire.
type Flusher interface {
	Flush()
}

// TickNotifier is implemented by transports that signal delivery ticks: the
// hook runs once after each inbound frame's (or batch's) messages have been
// dispatched, so engines can flush responses coalesced across the frame.
type TickNotifier interface {
	SetTickHandler(func())
}

// SetTick installs f as the delivery-tick hook if the transport supports it.
func SetTick(t Transport, f func()) {
	if tn, ok := t.(TickNotifier); ok {
		tn.SetTickHandler(f)
	}
}

// SendBatch sends msgs to one peer, as a unit when the transport supports it.
func SendBatch(t Transport, to wire.NodeID, msgs []wire.Msg) error {
	if len(msgs) == 0 {
		return nil
	}
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(to, msgs)
	}
	for _, m := range msgs {
		if err := t.Send(to, m); err != nil {
			return err
		}
	}
	return nil
}

// Multicast sends m to every node in dsts (self included, if listed), with a
// single marshal when the transport supports it.
func Multicast(t Transport, dsts []wire.NodeID, m wire.Msg) error {
	if len(dsts) == 0 {
		return nil
	}
	if mc, ok := t.(Multicaster); ok {
		return mc.Multicast(dsts, m)
	}
	var err error
	for _, n := range dsts {
		if e := t.Send(n, m); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Flush forces any transport-buffered egress onto the wire.
func Flush(t Transport) {
	if f, ok := t.(Flusher); ok {
		f.Flush()
	}
}

// Broadcast sends m to every node in set except self (one marshal when the
// transport is a Multicaster).
func Broadcast(t Transport, set wire.Bitmap, m wire.Msg) {
	self := t.Self()
	nodes := set.Remove(self).Nodes()
	_ = Multicast(t, nodes, m)
}

// Router dispatches inbound messages to per-kind handlers, so that the
// ownership engine, reliable-commit engine, membership agent, Hermes KV and
// baseline engine can share one Transport.
//
// # Sharded dispatch
//
// By default every message is handled inline on the transport's delivery
// goroutine, which serializes the whole node on one goroutine even when the
// traffic targets independent commit pipelines. EnableSharding(n) switches
// keyed protocol traffic to n handler goroutines:
//
//   - reliable-commit messages (R-INV/R-ACK/R-VAL) are keyed by their
//     PipeID, preserving the per-pipe FIFO that pipeline ordering (§5.2)
//     requires while letting independent pipes apply in parallel;
//   - ownership messages (REQ/INV/ACK/VAL/NACK/RESP) are keyed by ObjectID,
//     preserving per-object FIFO while unrelated arbitrations proceed
//     concurrently.
//
// Messages of the same key always land on the same shard, so the only
// ordering the mode gives up is *across* keys (and between keyed and unkeyed
// traffic) — orderings the Zeus protocols do not rely on: cross-pipe commit
// ordering does not exist in the paper either, the ownership protocol
// tolerates cross-object reordering by construction (o_ts arbitration), and
// VAL-vs-INV races on one object are impossible across shards because both
// carry the same ObjectID. Unkeyed kinds (membership, Hermes KV, baseline
// RPCs) keep today's inline delivery. Shard queues are unbounded FIFOs: the
// commit pipeline's MaxPipelineDepth backpressure bounds them in steady
// state, and never blocking the transport goroutine rules out delivery
// deadlocks between mutually-loaded nodes.
type Router struct {
	mu       sync.RWMutex
	handlers [64]Handler
	fallback Handler
	ticks    []func()

	shards []*shardQ
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Handle registers h for message kind k, replacing any previous handler.
func (r *Router) Handle(k wire.Kind, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[k] = h
}

// HandleMany registers h for several kinds at once.
func (r *Router) HandleMany(h Handler, kinds ...wire.Kind) {
	for _, k := range kinds {
		r.Handle(k, h)
	}
}

// Fallback registers the handler for kinds with no specific handler.
func (r *Router) Fallback(h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = h
}

// OnTick registers f to run on every transport delivery tick (see
// TickNotifier); install Router.Tick as the transport's tick handler.
func (r *Router) OnTick(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ticks = append(r.ticks, f)
}

// Tick fans a delivery tick out to every registered hook. In sharded mode
// the tick is forwarded as a queue token to every shard that received a
// message since its last token, so hooks still run *after* the frame's
// messages were handled (the property engines use to coalesce responses);
// the inline run is reserved for frames whose messages all stayed inline —
// running it when tokens were pushed would fire the hooks mid-frame and
// split the coalesced response batch.
func (r *Router) Tick() {
	r.mu.RLock()
	shards := r.shards
	r.mu.RUnlock()
	forwarded := false
	for _, s := range shards {
		if s.pushTickIfDirty() {
			forwarded = true
		}
	}
	if !forwarded {
		r.runTicks()
	}
}

func (r *Router) runTicks() {
	r.mu.RLock()
	ticks := r.ticks
	r.mu.RUnlock()
	for _, f := range ticks {
		f()
	}
}

// Dispatch routes one message; it is the Handler to install on a Transport.
func (r *Router) Dispatch(from wire.NodeID, m wire.Msg) {
	r.mu.RLock()
	h := r.handlers[m.Kind()]
	if h == nil {
		h = r.fallback
	}
	shards := r.shards
	r.mu.RUnlock()
	if h == nil {
		return
	}
	if len(shards) > 0 {
		if key, ok := shardKey(m); ok {
			shards[key%uint64(len(shards))].push(shardItem{from: from, m: m, h: h})
			return
		}
	}
	h(from, m)
}

// shardKey maps a message to its FIFO domain: commit traffic to its pipe,
// ownership traffic to its object. Unkeyed kinds return false and stay on
// the inline path. Keys are Fibonacci-mixed so dense object ids and pipe ids
// spread across shards.
func shardKey(m wire.Msg) (uint64, bool) {
	const mix = 0x9E3779B97F4A7C15
	switch v := m.(type) {
	case *wire.CommitInv:
		return pipeKey(v.Tx.Pipe) * mix, true
	case *wire.CommitAck:
		return pipeKey(v.Tx.Pipe) * mix, true
	case *wire.CommitVal:
		return pipeKey(v.Tx.Pipe) * mix, true
	case *wire.OwnReq:
		return uint64(v.Obj) * mix, true
	case *wire.OwnInv:
		return uint64(v.Obj) * mix, true
	case *wire.OwnAck:
		return uint64(v.Obj) * mix, true
	case *wire.OwnVal:
		return uint64(v.Obj) * mix, true
	case *wire.OwnNack:
		return uint64(v.Obj) * mix, true
	case *wire.OwnResp:
		return uint64(v.Obj) * mix, true
	}
	return 0, false
}

func pipeKey(p wire.PipeID) uint64 {
	return uint64(p.Node)<<16 | uint64(p.Worker)
}

// EnableSharding starts n handler goroutines and routes keyed traffic to
// them (see the Router doc). n <= 1 is a no-op: dispatch stays inline.
// Call CloseShards when the node shuts down. Enabling must happen before
// traffic flows; re-enabling on a live router is not supported.
func (r *Router) EnableSharding(n int) {
	if n <= 1 {
		return
	}
	shards := make([]*shardQ, n)
	for i := range shards {
		s := &shardQ{router: r}
		s.cond = sync.NewCond(&s.mu)
		shards[i] = s
		go s.loop()
	}
	r.mu.Lock()
	r.shards = shards
	r.mu.Unlock()
}

// CloseShards stops the shard goroutines; queued messages are dropped (the
// node is shutting down).
func (r *Router) CloseShards() {
	r.mu.Lock()
	shards := r.shards
	r.shards = nil
	r.mu.Unlock()
	for _, s := range shards {
		s.close()
	}
}

// shardItem is one queued dispatch; a nil m is a tick token.
type shardItem struct {
	from wire.NodeID
	m    wire.Msg
	h    Handler
}

// shardQ is one shard's unbounded FIFO plus its worker goroutine state.
type shardQ struct {
	router *Router
	mu     sync.Mutex
	cond   *sync.Cond
	items  []shardItem
	dirty  bool // received a message since the last tick token
	closed bool
}

func (s *shardQ) push(it shardItem) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.items = append(s.items, it)
	s.dirty = true
	s.mu.Unlock()
	s.cond.Signal()
}

// pushTickIfDirty queues a tick token behind the shard's pending messages if
// any arrived since the last token; it reports whether a token was queued.
func (s *shardQ) pushTickIfDirty() bool {
	s.mu.Lock()
	if s.closed || !s.dirty {
		s.mu.Unlock()
		return false
	}
	s.dirty = false
	s.items = append(s.items, shardItem{})
	s.mu.Unlock()
	s.cond.Signal()
	return true
}

func (s *shardQ) close() {
	s.mu.Lock()
	s.closed = true
	s.items = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *shardQ) loop() {
	var batch []shardItem
	for {
		s.mu.Lock()
		for len(s.items) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		batch, s.items = s.items, batch[:0]
		s.mu.Unlock()
		for _, it := range batch {
			if it.m == nil {
				s.router.runTicks()
				continue
			}
			it.h(it.from, it.m)
		}
	}
}
