package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/netsim"
	"zeus/internal/wire"
)

// collect gathers inbound messages with ordering per sender.
type collect struct {
	mu   sync.Mutex
	msgs []wire.Msg
	from []wire.NodeID
	cond *sync.Cond
}

func newCollect() *collect {
	c := &collect{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collect) handler(from wire.NodeID, m wire.Msg) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collect) waitN(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		c.mu.Lock()
		for len(c.msgs) < n {
			c.cond.Wait()
		}
		c.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		t.Fatalf("timed out: got %d/%d messages", got, n)
	}
}

func ping(i uint64) wire.Msg { return &wire.CommitVal{Tx: wire.TxID{Local: i}} }

func pingSeq(m wire.Msg) uint64 { return m.(*wire.CommitVal).Tx.Local }

func TestHubBasicDelivery(t *testing.T) {
	h := NewHub()
	a, b := h.Node(0), h.Node(1)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)
	for i := uint64(0); i < 10; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitN(t, 10, time.Second)
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, m)
		}
	}
	if h.Messages() != 10 || h.Bytes() == 0 {
		t.Fatalf("stats: %d msgs %d bytes", h.Messages(), h.Bytes())
	}
}

func TestHubDownNodeDrops(t *testing.T) {
	h := NewHub()
	a, b := h.Node(0), h.Node(1)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)
	h.SetDown(1, true)
	_ = a.Send(1, ping(1))
	time.Sleep(5 * time.Millisecond)
	c.mu.Lock()
	n := len(c.msgs)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("down node received %d messages", n)
	}
	// Down node cannot send.
	if err := b.Send(0, ping(2)); err == nil {
		t.Fatal("down node sent")
	}
	h.SetDown(1, false)
	if err := a.Send(1, ping(3)); err != nil {
		t.Fatal(err)
	}
	c.waitN(t, 1, time.Second)
}

func TestRouterDispatch(t *testing.T) {
	r := NewRouter()
	var gotVal, gotAck, gotOther atomic.Int32
	r.Handle(wire.KindCommitVal, func(_ wire.NodeID, _ wire.Msg) { gotVal.Add(1) })
	r.Handle(wire.KindCommitAck, func(_ wire.NodeID, _ wire.Msg) { gotAck.Add(1) })
	r.Fallback(func(_ wire.NodeID, _ wire.Msg) { gotOther.Add(1) })
	r.Dispatch(0, &wire.CommitVal{})
	r.Dispatch(0, &wire.CommitAck{})
	r.Dispatch(0, &wire.View{})
	if gotVal.Load() != 1 || gotAck.Load() != 1 || gotOther.Load() != 1 {
		t.Fatalf("dispatch counts: %d %d %d", gotVal.Load(), gotAck.Load(), gotOther.Load())
	}
}

func TestRouterHandleMany(t *testing.T) {
	r := NewRouter()
	var n atomic.Int32
	r.HandleMany(func(_ wire.NodeID, _ wire.Msg) { n.Add(1) },
		wire.KindCommitVal, wire.KindCommitAck)
	r.Dispatch(1, &wire.CommitVal{})
	r.Dispatch(1, &wire.CommitAck{})
	if n.Load() != 2 {
		t.Fatalf("got %d", n.Load())
	}
}

func reliablePair(t *testing.T, cfg netsim.Config) (*Reliable, *Reliable, *netsim.Network) {
	t.Helper()
	n := netsim.New(cfg)
	rc := ReliableConfig{RTO: 5 * time.Millisecond}
	a := NewReliable(n.Endpoint(0), rc)
	b := NewReliable(n.Endpoint(1), rc)
	t.Cleanup(func() { a.Close(); b.Close(); n.Close() })
	return a, b, n
}

func TestReliablePerfectFabric(t *testing.T) {
	cfg := netsim.Config{Seed: 1, InboxDepth: 4096}
	a, b, _ := reliablePair(t, cfg)
	c := newCollect()
	b.SetHandler(c.handler)
	const N = 200
	for i := uint64(0); i < N; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitN(t, N, 2*time.Second)
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
}

func TestReliableSurvivesLossDupReorder(t *testing.T) {
	cfg := netsim.Config{
		Seed:       42,
		MinLatency: 0,
		MaxLatency: 500 * time.Microsecond, // jitter → reordering
		LossProb:   0.2,
		DupProb:    0.2,
		InboxDepth: 8192,
	}
	a, b, _ := reliablePair(t, cfg)
	c := newCollect()
	b.SetHandler(c.handler)
	const N = 500
	for i := uint64(0); i < N; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitN(t, N, 20*time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.msgs) != N {
		t.Fatalf("delivered %d, want exactly %d (no dups)", len(c.msgs), N)
	}
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
	if a.Retransmits() == 0 {
		t.Fatal("expected retransmissions under 20% loss")
	}
}

func TestReliableBidirectional(t *testing.T) {
	cfg := netsim.Config{Seed: 3, LossProb: 0.1, MaxLatency: 100 * time.Microsecond, InboxDepth: 8192}
	a, b, _ := reliablePair(t, cfg)
	ca, cb := newCollect(), newCollect()
	a.SetHandler(ca.handler)
	b.SetHandler(cb.handler)
	const N = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < N; i++ {
			_ = a.Send(1, ping(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint64(0); i < N; i++ {
			_ = b.Send(0, ping(i))
		}
	}()
	wg.Wait()
	ca.waitN(t, N, 10*time.Second)
	cb.waitN(t, N, 10*time.Second)
}

func TestReliableManyPeers(t *testing.T) {
	n := netsim.New(netsim.Config{Seed: 9, LossProb: 0.05, MaxLatency: 50 * time.Microsecond, InboxDepth: 8192})
	defer n.Close()
	const peers = 5
	rc := ReliableConfig{RTO: 3 * time.Millisecond}
	dst := NewReliable(n.Endpoint(0), rc)
	defer dst.Close()
	c := newCollect()
	dst.SetHandler(c.handler)
	var srcs []*Reliable
	for i := wire.NodeID(1); i <= peers; i++ {
		s := NewReliable(n.Endpoint(i), rc)
		defer s.Close()
		srcs = append(srcs, s)
	}
	const per = 50
	for _, s := range srcs {
		go func(s *Reliable) {
			for i := uint64(0); i < per; i++ {
				_ = s.Send(0, ping(i))
			}
		}(s)
	}
	c.waitN(t, peers*per, 20*time.Second)
	// Per-sender FIFO must hold.
	c.mu.Lock()
	defer c.mu.Unlock()
	last := map[wire.NodeID]uint64{}
	for i, m := range c.msgs {
		from := c.from[i]
		seq := pingSeq(m)
		if prev, ok := last[from]; ok && seq != prev+1 {
			t.Fatalf("sender %d: seq %d after %d", from, seq, prev)
		}
		last[from] = seq
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	h := NewHub()
	a := h.Node(0)
	b := h.Node(1)
	c2 := h.Node(2)
	defer a.Close()
	defer b.Close()
	defer c2.Close()
	cb, cc, ca := newCollect(), newCollect(), newCollect()
	a.SetHandler(ca.handler)
	b.SetHandler(cb.handler)
	c2.SetHandler(cc.handler)
	Broadcast(a, wire.BitmapOf(0, 1, 2), ping(7))
	cb.waitN(t, 1, time.Second)
	cc.waitN(t, 1, time.Second)
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if len(ca.msgs) != 0 {
		t.Fatal("broadcast delivered to self")
	}
}

func TestTCPTransport(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Addresses learned after construction (the address-book flow).
	a.SetAddr(1, b.Addr())
	b.SetAddr(0, a.Addr())

	ca, cb := newCollect(), newCollect()
	a.SetHandler(ca.handler)
	b.SetHandler(cb.handler)
	const N = 50
	for i := uint64(0); i < N; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	cb.waitN(t, N, 5*time.Second)
	for i, m := range cb.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("tcp out of order at %d", i)
		}
	}
	// Reverse direction (b dials a).
	for i := uint64(0); i < N; i++ {
		if err := b.Send(0, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	ca.waitN(t, N, 5*time.Second)
}

func TestTCPSendUnknownPeer(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", map[wire.NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(9, ping(0)); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

func TestClosedTransportsRefuseSend(t *testing.T) {
	h := NewHub()
	m := h.Node(0)
	m.Close()
	if err := m.Send(1, ping(0)); err == nil {
		t.Fatal("closed mem transport sent")
	}
	n := netsim.New(netsim.Config{Seed: 1})
	defer n.Close()
	r := NewReliable(n.Endpoint(0), DefaultReliableConfig())
	r.Close()
	if err := r.Send(1, ping(0)); err == nil {
		t.Fatal("closed reliable transport sent")
	}
}

func TestReliableThroughputSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := netsim.Config{Seed: 5, MinLatency: 5 * time.Microsecond, MaxLatency: 20 * time.Microsecond, InboxDepth: 1 << 15}
	a, b, _ := reliablePair(t, cfg)
	var got atomic.Int64
	done := make(chan struct{})
	b.SetHandler(func(_ wire.NodeID, _ wire.Msg) {
		if got.Add(1) == 2000 {
			close(done)
		}
	})
	start := time.Now()
	for i := uint64(0); i < 2000; i++ {
		if err := a.Send(1, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d/2000 delivered", got.Load())
	}
	elapsed := time.Since(start)
	t.Logf("2000 msgs in %v (%.0f msg/s)", elapsed, 2000/elapsed.Seconds())
}

func ExampleRouter() {
	r := NewRouter()
	r.Handle(wire.KindView, func(from wire.NodeID, m wire.Msg) {
		v := m.(*wire.View)
		fmt.Printf("view epoch=%d live=%s\n", v.Epoch, v.Live)
	})
	r.Dispatch(0, &wire.View{Epoch: 3, Live: wire.BitmapOf(0, 1, 2)})
	// Output: view epoch=3 live=[0 1 2]
}

func TestHubSendBatchFIFOAndFrames(t *testing.T) {
	h := NewHub()
	a, b := h.Node(0), h.Node(1)
	defer a.Close()
	defer b.Close()
	c := newCollect()
	b.SetHandler(c.handler)

	var batch []wire.Msg
	for i := uint64(0); i < 10; i++ {
		batch = append(batch, ping(i))
	}
	if err := a.SendBatch(1, batch); err != nil {
		t.Fatal(err)
	}
	_ = a.Send(1, ping(10))
	c.waitN(t, 11, time.Second)
	for i, m := range c.msgs {
		if pingSeq(m) != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, pingSeq(m))
		}
	}
	if h.Messages() != 11 {
		t.Fatalf("messages = %d, want 11", h.Messages())
	}
	if h.Frames() != 2 {
		t.Fatalf("frames = %d, want 2 (one batch hop + one single)", h.Frames())
	}
}

func TestHubMulticastDeliversFreshCopies(t *testing.T) {
	h := NewHub()
	a, b, c2 := h.Node(0), h.Node(1), h.Node(2)
	defer a.Close()
	defer b.Close()
	defer c2.Close()
	cb, cc := newCollect(), newCollect()
	b.SetHandler(cb.handler)
	c2.SetHandler(cc.handler)

	// Non-commit kinds go through the codec: receivers never alias.
	m := &wire.HermesInv{Key: 1, TS: wire.OTS{Ver: 1}, Val: []byte("abc")}
	if err := a.Multicast([]wire.NodeID{1, 2}, m); err != nil {
		t.Fatal(err)
	}
	cb.waitN(t, 1, time.Second)
	cc.waitN(t, 1, time.Second)
	mb := cb.msgs[0].(*wire.HermesInv)
	mc := cc.msgs[0].(*wire.HermesInv)
	if &mb.Val[0] == &mc.Val[0] {
		t.Fatal("multicast receivers alias the same memory")
	}
	if h.Messages() != 2 {
		t.Fatalf("multicast to 2 peers must count 2 messages, got %d", h.Messages())
	}

	// Commit-protocol kinds ride the zero-copy fast path: both receivers
	// observe the sender's message (immutable by protocol contract), with
	// no marshal/unmarshal round trip, and byte accounting stays exact.
	before := h.Bytes()
	inv := &wire.CommitInv{Tx: wire.TxID{Local: 1}, Updates: []wire.Update{{Obj: 1, Version: 1, Data: []byte("abc")}}}
	if err := a.Multicast([]wire.NodeID{1, 2}, inv); err != nil {
		t.Fatal(err)
	}
	cb.waitN(t, 2, time.Second)
	cc.waitN(t, 2, time.Second)
	if cb.msgs[1].(*wire.CommitInv) != inv || cc.msgs[1].(*wire.CommitInv) != inv {
		t.Fatal("commit fan-out must be zero-copy on the hub")
	}
	want := uint64(2 * len(wire.Marshal(inv)))
	if got := h.Bytes() - before; got != want {
		t.Fatalf("zero-copy byte accounting = %d, want %d", got, want)
	}
}

func TestDeliveryTickFiresPerFrame(t *testing.T) {
	h := NewHub()
	a, b := h.Node(0), h.Node(1)
	defer a.Close()
	defer b.Close()
	var msgs, ticks atomic.Int32
	b.SetHandler(func(_ wire.NodeID, _ wire.Msg) { msgs.Add(1) })
	b.SetTickHandler(func() { ticks.Add(1) })

	var batch []wire.Msg
	for i := uint64(0); i < 8; i++ {
		batch = append(batch, ping(i))
	}
	_ = a.SendBatch(1, batch)
	deadline := time.Now().Add(time.Second)
	for msgs.Load() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/8 delivered", msgs.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := ticks.Load(); got != 1 {
		t.Fatalf("delivery ticks = %d, want 1 for one batch frame", got)
	}
}
