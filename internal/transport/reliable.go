package transport

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/netsim"
	"zeus/internal/retry"
	"zeus/internal/wire"
)

// ReliableConfig tunes the retransmission, batching and delayed-ack machinery.
type ReliableConfig struct {
	// RTO is the initial retransmission timeout, used until RTT samples
	// arrive; after that the per-peer adaptive estimator (SRTT/RTTVAR, RFC
	// 6298 via retry.RTOEstimator) takes over.
	RTO time.Duration
	// MinRTO / MaxRTO clamp the adaptive timeout. With batching enabled,
	// MinRTO is floored at twice the larger of FlushInterval and the
	// host's measured timer granularity, so a delayed ack can never look
	// like a loss.
	MinRTO time.Duration
	MaxRTO time.Duration
	// DupAckThreshold is the number of duplicate pure ACKs that trigger a
	// fast retransmission of the first unacknowledged frame (à la TCP fast
	// retransmit; default 2). Out-of-order arrivals are always acked
	// immediately — delayed acks never mute this signal.
	DupAckThreshold int
	// ScanInterval is how often the retransmitter scans for timed-out
	// frames; defaults to max(MinRTO/2, 50µs).
	ScanInterval time.Duration
	// DeliveryDepth bounds the per-peer in-order delivery queue (frames).
	DeliveryDepth int

	// MaxBatchBytes flushes a peer's egress queue once the pending batch
	// payload reaches this size (default 16 KB).
	MaxBatchBytes int
	// MaxBatchMsgs flushes once this many messages are queued (default 64).
	MaxBatchMsgs int
	// WindowFrames is the Nagle-style batching trigger: egress flushes
	// immediately while fewer than this many frames are unacknowledged
	// (idle links get minimum latency), and queues into batch frames
	// beyond it, clocked out by returning acks (default 16; keep it above
	// AckEvery or sender and receiver deadlock onto their timers, the
	// classic Nagle/delayed-ack interaction).
	WindowFrames int
	// FlushInterval bounds how long queued messages and delayed acks wait
	// for more traffic to coalesce with (default 100µs). It is a backstop:
	// on hosts with coarse timers it can stretch to the clock granularity,
	// which is why the common case is clocked by acks and counts instead.
	FlushInterval time.Duration
	// AckEvery sends a cumulative ack after every Kth in-order data frame
	// (default 8); frames in between ride the FlushInterval timer or
	// piggyback on reverse data (TCP-style delayed ack). Timer-driven acks
	// carry a "delayed" flag so the sender's RTT estimator ignores their
	// inflated samples.
	AckEvery int
	// NoDelay disables egress batching and delayed acks: one frame per
	// message, one pure ack per in-order data frame (the pre-batching
	// behaviour; the transport ablation experiment uses it as a baseline).
	NoDelay bool
}

// DefaultReliableConfig matches the simulated fabric's latency scale.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{RTO: 2 * time.Millisecond, DeliveryDepth: 8192}
}

// frame header layout: [flags:1][seq:8][ack:8] + payload. A batch frame's
// payload is a wire batch (length-prefixed messages); a plain data frame
// carries one marshalled message. Sequence numbers are per *frame*, so a
// batch is acknowledged, retransmitted and delivered as a unit.
// flagDelayedAck marks a pure ack that waited out the delayed-ack timer:
// its timing says nothing about the path, so the RTT estimator skips it.
const (
	flagData       = 1 << 0
	flagBatch      = 1 << 1
	flagDelayedAck = 1 << 2
	hdrLen         = 17
)

// Reliable implements Transport over a lossy netsim endpoint using per-peer
// sequence numbers, cumulative acknowledgements, retransmission and
// deduplication. It delivers messages exactly once, in per-peer FIFO order,
// mirroring the paper's low-level reliable messaging (§3.1).
//
// The hot path is batched end-to-end: Send marshals into a per-peer egress
// queue (outside the retransmission lock), the queue is flushed into a single
// multi-message frame on size/count thresholds, on ack arrival, when the peer
// is idle, or at the latest after FlushInterval; receivers coalesce
// acknowledgements TCP-style (every AckEvery-th frame or a timer), keeping
// the immediate duplicate ACK on out-of-order arrival so fast retransmit
// still recovers holes in under an RTT. The adaptive per-peer RTO (SRTT/
// RTTVAR with exponential back-off, Karn's rule) catches tail losses.
type Reliable struct {
	ep  *netsim.Endpoint
	cfg ReliableConfig

	mu      sync.Mutex
	peers   map[wire.NodeID]*peerState
	handler atomic.Value // Handler
	tick    atomic.Value // func(), invoked after each frame's dispatch
	closed  chan struct{}
	once    sync.Once

	retransmits     atomic.Uint64
	fastRetransmits atomic.Uint64
	acksSent        atomic.Uint64
	dataFrames      atomic.Uint64
	msgsSent        atomic.Uint64
	decodeDrops     atomic.Uint64
	corruptFrames   atomic.Uint64
	sendErrs        atomic.Uint64
}

// peerState locks nest egMu > sendMu > recvMu (outermost first); any path
// may take an inner lock while holding an outer one, never the reverse.
type peerState struct {
	id wire.NodeID

	// Egress queue: marshalled, length-prefixed messages awaiting a frame.
	egMu    sync.Mutex
	egBuf   []byte
	egCount int

	// Sender side.
	sendMu   sync.Mutex
	nextSeq  uint64
	unacked  map[uint64]*unackedFrame
	est      *retry.RTOEstimator
	cumAck   uint64 // highest cumulative ack received from the peer
	dupAcks  int    // consecutive duplicate pure acks at cumAck
	fastRetx uint64 // highest seq already fast-retransmitted (one shot per hole)

	// Receiver side.
	recvMu   sync.Mutex
	expected uint64
	pending  map[uint64]pendingFrame
	ackOwed  int       // in-order data frames received since the last ack went out
	lastData time.Time // last in-order data frame arrival (quickack detection)

	deliver chan delivery
}

type unackedFrame struct {
	buf  []byte
	sent time.Time
	retx bool // retransmitted at least once (Karn: no RTT sample)
}

type pendingFrame struct {
	payload []byte
	batch   bool
}

type delivery struct {
	payload []byte
	batch   bool
}

// NewReliable wraps a netsim endpoint in the reliable messaging layer.
func NewReliable(ep *netsim.Endpoint, cfg ReliableConfig) *Reliable {
	if cfg.RTO <= 0 {
		cfg.RTO = 2 * time.Millisecond
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 16 << 10
	}
	if cfg.MaxBatchMsgs <= 0 {
		cfg.MaxBatchMsgs = 64
	}
	if cfg.WindowFrames <= 0 {
		cfg.WindowFrames = 16
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 100 * time.Microsecond
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 8
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 100 * time.Microsecond
	}
	if !cfg.NoDelay {
		// A delayed ack waits up to ~FlushInterval — in practice up to the
		// host's real timer granularity, which containers stretch to a
		// millisecond or more. The retransmission timeout must clear that
		// window with margin, or every traffic pause (sender stalled below
		// AckEvery with only the timer left to ack) turns into a spurious
		// retransmission storm.
		floor := 2 * cfg.FlushInterval
		if g := 2 * retry.TimerGranularity(); g > floor {
			floor = g
		}
		if cfg.MinRTO < floor {
			cfg.MinRTO = floor
		}
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = 100 * time.Millisecond
		if cfg.MaxRTO < 4*cfg.RTO {
			cfg.MaxRTO = 4 * cfg.RTO
		}
	}
	if cfg.DupAckThreshold <= 0 {
		cfg.DupAckThreshold = 2
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = cfg.MinRTO / 2
		if cfg.ScanInterval < 50*time.Microsecond {
			cfg.ScanInterval = 50 * time.Microsecond
		}
	}
	if cfg.DeliveryDepth <= 0 {
		cfg.DeliveryDepth = 8192
	}
	r := &Reliable{
		ep:     ep,
		cfg:    cfg,
		peers:  make(map[wire.NodeID]*peerState),
		closed: make(chan struct{}),
	}
	go r.recvLoop()
	go r.retransmitLoop()
	if !cfg.NoDelay {
		go r.flushLoop()
	}
	return r
}

// Self returns the local node id.
func (r *Reliable) Self() wire.NodeID { return r.ep.ID() }

// SetHandler installs the inbound handler.
func (r *Reliable) SetHandler(h Handler) { r.handler.Store(h) }

// SetTickHandler installs a delivery-tick hook, invoked once after the
// messages of each inbound frame (single or batch) have been dispatched.
// Protocol engines use it to flush responses they coalesced across the
// frame — the "ack the whole batch at once" half of the batching story.
func (r *Reliable) SetTickHandler(f func()) { r.tick.Store(f) }

// Retransmits reports how many frames were resent on timeout (diagnostics).
func (r *Reliable) Retransmits() uint64 { return r.retransmits.Load() }

// FastRetransmits reports how many frames duplicate ACKs resent early.
func (r *Reliable) FastRetransmits() uint64 { return r.fastRetransmits.Load() }

// DataFramesSent reports first transmissions of data frames (retransmissions
// are counted separately by Retransmits/FastRetransmits).
func (r *Reliable) DataFramesSent() uint64 { return r.dataFrames.Load() }

// PureAcksSent reports standalone acknowledgement frames sent (acks that
// piggybacked on data frames are not counted).
func (r *Reliable) PureAcksSent() uint64 { return r.acksSent.Load() }

// MessagesSent reports wire.Msg values accepted for transmission; divided by
// DataFramesSent it gives the average batch size.
func (r *Reliable) MessagesSent() uint64 { return r.msgsSent.Load() }

// DecodeDrops reports inbound messages dropped because they failed to
// unmarshal (a corrupt batch element or payload). Any non-zero value means
// delivered data was lost above the retransmission layer.
func (r *Reliable) DecodeDrops() uint64 { return r.decodeDrops.Load() }

// CorruptFrames reports inbound frames discarded before sequencing (shorter
// than a frame header).
func (r *Reliable) CorruptFrames() uint64 { return r.corruptFrames.Load() }

// SendErrors reports endpoint send failures (data, ack or retransmission);
// the retransmission machinery recovers the frames, but a growing count
// flags a dying link.
func (r *Reliable) SendErrors() uint64 { return r.sendErrs.Load() }

// InFlight reports frames sent and not yet cumulatively acknowledged.
func (r *Reliable) InFlight() int {
	n := 0
	for _, p := range r.snapshotPeers() {
		p.sendMu.Lock()
		n += len(p.unacked)
		p.sendMu.Unlock()
	}
	return n
}

func (r *Reliable) peer(id wire.NodeID) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[id]
	if !ok {
		p = &peerState{
			id:       id,
			nextSeq:  1,
			expected: 1,
			unacked:  make(map[uint64]*unackedFrame),
			pending:  make(map[uint64]pendingFrame),
			est:      retry.NewRTOEstimator(r.cfg.RTO, r.cfg.MinRTO, r.cfg.MaxRTO),
			deliver:  make(chan delivery, r.cfg.DeliveryDepth),
		}
		r.peers[id] = p
		go r.deliverLoop(p)
	}
	return p
}

func (r *Reliable) snapshotPeers() []*peerState {
	r.mu.Lock()
	peers := make([]*peerState, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	return peers
}

// Send transmits m reliably to the peer. The message is marshalled into the
// peer's egress queue (no lock shared with the retransmitter) and leaves in
// the next frame: immediately when the link is idle or the batch is full,
// otherwise within FlushInterval.
func (r *Reliable) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-r.closed:
		return ErrClosed
	default:
	}
	p := r.peer(to)
	r.msgsSent.Add(1)
	if r.cfg.NoDelay {
		return r.sendNoDelay(p, m)
	}
	p.egMu.Lock()
	p.egBuf = wire.AppendMessage(p.egBuf, m)
	p.egCount++
	full := len(p.egBuf) >= r.cfg.MaxBatchBytes || p.egCount >= r.cfg.MaxBatchMsgs
	p.egMu.Unlock()
	if full || r.belowWindow(p) {
		return r.flushPeer(p)
	}
	return nil
}

// SendBatch enqueues msgs back-to-back so they leave in as few frames as
// possible (one, below the batch thresholds).
func (r *Reliable) SendBatch(to wire.NodeID, msgs []wire.Msg) error {
	select {
	case <-r.closed:
		return ErrClosed
	default:
	}
	if len(msgs) == 0 {
		return nil
	}
	p := r.peer(to)
	r.msgsSent.Add(uint64(len(msgs)))
	if r.cfg.NoDelay {
		var err error
		for _, m := range msgs {
			if e := r.sendNoDelay(p, m); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	var err error
	p.egMu.Lock()
	for _, m := range msgs {
		p.egBuf = wire.AppendMessage(p.egBuf, m)
		p.egCount++
		// Enforce the frame bound per message, not per batch: a caller's
		// batch larger than the thresholds leaves as several frames.
		if len(p.egBuf) >= r.cfg.MaxBatchBytes || p.egCount >= r.cfg.MaxBatchMsgs {
			if e := r.flushPeerLocked(p); e != nil && err == nil {
				err = e
			}
		}
	}
	p.egMu.Unlock()
	if r.belowWindow(p) {
		if e := r.flushPeer(p); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Multicast sends one message to several peers with a single marshal: the
// encoded bytes are appended to every destination's egress queue.
func (r *Reliable) Multicast(dsts []wire.NodeID, m wire.Msg) error {
	select {
	case <-r.closed:
		return ErrClosed
	default:
	}
	if len(dsts) == 0 {
		return nil
	}
	if r.cfg.NoDelay {
		var err error
		for _, to := range dsts {
			if e := r.Send(to, m); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	enc := wire.GetBuf()
	enc.B = wire.AppendMessage(enc.B, m)
	var err error
	for _, to := range dsts {
		p := r.peer(to)
		r.msgsSent.Add(1)
		p.egMu.Lock()
		p.egBuf = append(p.egBuf, enc.B...)
		p.egCount++
		full := len(p.egBuf) >= r.cfg.MaxBatchBytes || p.egCount >= r.cfg.MaxBatchMsgs
		p.egMu.Unlock()
		if full || r.belowWindow(p) {
			if e := r.flushPeer(p); e != nil && err == nil {
				err = e
			}
		}
	}
	wire.PutBuf(enc)
	return err
}

// belowWindow reports whether p has spare in-flight budget — then queued
// egress leaves immediately for latency; at or above the window, egress
// batches up and the returning acks clock it out.
func (r *Reliable) belowWindow(p *peerState) bool {
	p.sendMu.Lock()
	below := len(p.unacked) < r.cfg.WindowFrames
	p.sendMu.Unlock()
	return below
}

// Flush forces every peer's queued egress onto the wire.
func (r *Reliable) Flush() {
	for _, p := range r.snapshotPeers() {
		_ = r.flushPeer(p)
	}
}

// flushPeer drains p's egress queue into one frame and transmits it. The
// egress lock is held through the endpoint send so concurrent flushes cannot
// reorder frames on the wire.
func (r *Reliable) flushPeer(p *peerState) error {
	p.egMu.Lock()
	err := r.flushPeerLocked(p)
	p.egMu.Unlock()
	return err
}

// flushPeerLocked is flushPeer's body; the caller holds p.egMu.
func (r *Reliable) flushPeerLocked(p *peerState) error {
	if p.egCount == 0 {
		return nil
	}
	payload := p.egBuf
	flags := byte(flagData)
	if p.egCount == 1 {
		payload = payload[4:] // single message: plain frame, no batch framing
	} else {
		flags |= flagBatch
	}
	buf := make([]byte, hdrLen+len(payload))
	buf[0] = flags
	copy(buf[hdrLen:], payload)
	p.egBuf = p.egBuf[:0]
	p.egCount = 0

	p.sendMu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	binary.LittleEndian.PutUint64(buf[1:], seq)
	p.recvMu.Lock()
	ack := p.expected - 1 // piggyback cumulative ack
	p.ackOwed = 0         // the data frame satisfies any delayed ack
	p.recvMu.Unlock()
	binary.LittleEndian.PutUint64(buf[9:], ack)
	p.unacked[seq] = &unackedFrame{buf: buf, sent: time.Now()}
	p.sendMu.Unlock()

	r.dataFrames.Add(1)
	err := r.ep.Send(p.id, buf)
	if err != nil {
		r.sendErrs.Add(1)
	}
	return err
}

// sendNoDelay transmits m as its own frame immediately (NoDelay mode).
func (r *Reliable) sendNoDelay(p *peerState, m wire.Msg) error {
	buf := make([]byte, hdrLen, hdrLen+64)
	buf[0] = flagData
	buf = wire.AppendMarshal(buf, m)

	p.egMu.Lock()
	p.sendMu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	binary.LittleEndian.PutUint64(buf[1:], seq)
	p.recvMu.Lock()
	ack := p.expected - 1
	p.ackOwed = 0
	p.recvMu.Unlock()
	binary.LittleEndian.PutUint64(buf[9:], ack)
	p.unacked[seq] = &unackedFrame{buf: buf, sent: time.Now()}
	p.sendMu.Unlock()
	r.dataFrames.Add(1)
	err := r.ep.Send(p.id, buf)
	p.egMu.Unlock()
	if err != nil {
		r.sendErrs.Add(1)
	}
	return err
}

func (r *Reliable) sendAck(to wire.NodeID, ack uint64, delayed bool) {
	buf := make([]byte, hdrLen)
	if delayed {
		buf[0] = flagDelayedAck
	}
	binary.LittleEndian.PutUint64(buf[9:], ack)
	r.acksSent.Add(1)
	if err := r.ep.Send(to, buf); err != nil {
		r.sendErrs.Add(1)
	}
}

// processAck handles one inbound cumulative ack: it releases covered frames,
// feeds the RTT estimator (Karn: only never-retransmitted frames, and never
// from timer-delayed acks, whose timing measures the peer's ack timer rather
// than the path), and counts duplicate pure acks, fast-retransmitting the
// first hole at the threshold. It reports whether the ack advanced (freed
// window) so the caller can clock out queued egress.
func (r *Reliable) processAck(p *peerState, ack uint64, pureAck, delayed bool) bool {
	now := time.Now()
	advanced := false
	var fastRetx []byte
	p.sendMu.Lock()
	switch {
	case ack > p.cumAck:
		advanced = true
		var sample time.Duration
		var sampleSeq uint64
		for s, uf := range p.unacked {
			if s > ack {
				continue
			}
			if !uf.retx && s > sampleSeq {
				sampleSeq = s
				sample = now.Sub(uf.sent)
			}
			delete(p.unacked, s)
		}
		p.cumAck = ack
		p.dupAcks = 0
		if sampleSeq != 0 && !delayed {
			p.est.Observe(sample)
		}
	case ack == p.cumAck && pureAck:
		// A duplicate ack means later frames arrived while ack+1 is
		// missing; after DupAckThreshold of them, resend it right away —
		// but only once per hole (à la TCP): every frame queued behind
		// the hole produces another duplicate ack, and re-firing on each
		// would amplify one loss into a burst of identical copies. If
		// the retransmission is lost too, the RTO timer recovers.
		if uf, ok := p.unacked[ack+1]; ok && ack+1 > p.fastRetx {
			p.dupAcks++
			if p.dupAcks >= r.cfg.DupAckThreshold {
				p.dupAcks = 0
				p.fastRetx = ack + 1
				uf.retx = true
				uf.sent = now
				fastRetx = uf.buf
			}
		}
	}
	p.sendMu.Unlock()
	if fastRetx != nil {
		r.fastRetransmits.Add(1)
		if err := r.ep.Send(p.id, fastRetx); err != nil {
			r.sendErrs.Add(1)
		}
	}
	return advanced
}

func (r *Reliable) recvLoop() {
	for {
		f, ok := r.ep.Recv()
		if !ok {
			return
		}
		if len(f.Payload) < hdrLen {
			r.corruptFrames.Add(1)
			continue
		}
		flags := f.Payload[0]
		seq := binary.LittleEndian.Uint64(f.Payload[1:])
		ack := binary.LittleEndian.Uint64(f.Payload[9:])
		p := r.peer(f.From)

		// Process the (cumulative) acknowledgement; an advancing ack opens
		// the window, so clock out anything the sender queued meanwhile.
		if r.processAck(p, ack, flags&flagData == 0, flags&flagDelayedAck != 0) {
			_ = r.flushPeer(p)
		}

		if flags&flagData == 0 {
			continue // pure ack
		}
		payload := f.Payload[hdrLen:]
		batch := flags&flagBatch != 0

		p.recvMu.Lock()
		switch {
		case seq < p.expected:
			// Duplicate of an already-delivered frame: re-ack right away
			// so the sender stops retransmitting.
			cum := p.expected - 1
			p.ackOwed = 0
			p.recvMu.Unlock()
			r.sendAck(f.From, cum, false)
			continue
		case seq == p.expected:
			p.expected++
			ready := []delivery{{payload: payload, batch: batch}}
			for {
				nxt, ok := p.pending[p.expected]
				if !ok {
					break
				}
				delete(p.pending, p.expected)
				p.expected++
				ready = append(ready, delivery{payload: nxt.payload, batch: nxt.batch})
			}
			// Delayed ack (TCP-style): ack every AckEvery-th in-order
			// frame immediately; otherwise the ack rides the flush timer
			// or piggybacks on reverse data. The first frame after an
			// idle gap is acked immediately (quickack): there is no
			// stream to coalesce with, and the prompt ack both trains
			// the sender's RTT estimator and keeps paced low-rate
			// traffic off the timer path entirely.
			now := time.Now()
			quick := now.Sub(p.lastData) > r.cfg.FlushInterval
			p.lastData = now
			p.ackOwed += len(ready)
			ackNow := r.cfg.NoDelay || quick || p.ackOwed >= r.cfg.AckEvery
			var cum uint64
			if ackNow {
				cum = p.expected - 1
				p.ackOwed = 0
			}
			p.recvMu.Unlock()
			if ackNow {
				r.sendAck(f.From, cum, false)
			}
			for _, d := range ready {
				select {
				case p.deliver <- d:
				case <-r.closed:
					return
				}
			}
		default:
			// Out of order: buffer (dedup re-buffering is harmless) and
			// re-ack the last in-order frame immediately — the duplicate
			// ack is the sender's fast-retransmit signal and must never
			// wait out the delayed-ack timer.
			if _, dup := p.pending[seq]; !dup {
				p.pending[seq] = pendingFrame{payload: payload, batch: batch}
			}
			cum := p.expected - 1
			p.ackOwed = 0
			p.recvMu.Unlock()
			r.sendAck(f.From, cum, false)
		}
	}
}

func (r *Reliable) deliverLoop(p *peerState) {
	for {
		select {
		case d := <-p.deliver:
			if !d.batch {
				r.dispatch(p.id, d.payload)
			} else {
				it := wire.NewBatchIter(d.payload)
				for {
					raw, err := it.Next()
					if err != nil {
						r.decodeDrops.Add(1)
						break
					}
					if raw == nil {
						break
					}
					r.dispatch(p.id, raw)
				}
			}
			// Delivery tick: the frame's messages are all dispatched;
			// let engines flush the responses they coalesced across it.
			if f, _ := r.tick.Load().(func()); f != nil {
				f()
			}
		case <-r.closed:
			return
		}
	}
}

func (r *Reliable) dispatch(from wire.NodeID, raw []byte) {
	m, err := wire.Unmarshal(raw)
	if err != nil {
		r.decodeDrops.Add(1)
		return
	}
	if h, _ := r.handler.Load().(Handler); h != nil {
		h(from, m)
	}
}

// flushLoop is the batching backstop: at most FlushInterval after a message
// was queued (or an in-order frame went unacknowledged) it pushes the egress
// frame or the owed cumulative ack out.
func (r *Reliable) flushLoop() {
	t := time.NewTicker(r.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
		}
		for _, p := range r.snapshotPeers() {
			_ = r.flushPeer(p) // piggybacks any owed ack
			p.recvMu.Lock()
			owed := p.ackOwed
			var cum uint64
			if owed > 0 {
				cum = p.expected - 1
				p.ackOwed = 0
			}
			p.recvMu.Unlock()
			if owed > 0 {
				r.sendAck(p.id, cum, true)
			}
		}
	}
}

func (r *Reliable) retransmitLoop() {
	t := time.NewTicker(r.cfg.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-t.C:
			for _, p := range r.snapshotPeers() {
				p.sendMu.Lock()
				rto := p.est.RTO()
				var resend [][]byte
				for _, uf := range p.unacked {
					if now.Sub(uf.sent) >= rto {
						uf.sent = now
						uf.retx = true
						resend = append(resend, uf.buf)
					}
				}
				if len(resend) > 0 {
					// One back-off per scan round, not per frame
					// (RFC 6298 §5.5 applied per flight).
					p.est.Backoff()
				}
				p.sendMu.Unlock()
				for _, buf := range resend {
					r.retransmits.Add(1)
					if err := r.ep.Send(p.id, buf); err != nil {
						r.sendErrs.Add(1)
					}
				}
			}
		}
	}
}

// Close flushes queued egress, then stops background goroutines. Frames
// already on the wire are not recalled; the underlying network stays open.
func (r *Reliable) Close() error {
	r.once.Do(func() {
		r.Flush()
		close(r.closed)
	})
	return nil
}
