package transport

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/netsim"
	"zeus/internal/wire"
)

// ReliableConfig tunes the retransmission machinery.
type ReliableConfig struct {
	// RTO is the retransmission timeout for unacknowledged frames.
	RTO time.Duration
	// ScanInterval is how often the retransmitter scans for timed-out
	// frames; defaults to RTO/2.
	ScanInterval time.Duration
	// DeliveryDepth bounds the per-peer in-order delivery queue.
	DeliveryDepth int
}

// DefaultReliableConfig matches the simulated fabric's latency scale.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{RTO: 2 * time.Millisecond, DeliveryDepth: 8192}
}

// frame header layout: [flags:1][seq:8][ack:8] + payload
const (
	flagData = 1 << 0
	hdrLen   = 17
)

// Reliable implements Transport over a lossy netsim endpoint using per-peer
// sequence numbers, cumulative acknowledgements, retransmission and
// deduplication. It delivers messages exactly once, in per-peer FIFO order,
// mirroring the paper's low-level reliable messaging (§3.1).
type Reliable struct {
	ep  *netsim.Endpoint
	cfg ReliableConfig

	mu      sync.Mutex
	peers   map[wire.NodeID]*peerState
	handler atomic.Value // Handler
	closed  chan struct{}
	once    sync.Once

	retransmits atomic.Uint64
	acksSent    atomic.Uint64
}

type peerState struct {
	id wire.NodeID

	// Sender side.
	sendMu  sync.Mutex
	nextSeq uint64
	unacked map[uint64]*unackedFrame
	// Receiver side.
	recvMu   sync.Mutex
	expected uint64
	pending  map[uint64][]byte

	deliver chan delivery
}

type unackedFrame struct {
	buf  []byte
	sent time.Time
}

type delivery struct {
	payload []byte
}

// NewReliable wraps a netsim endpoint in the reliable messaging layer.
func NewReliable(ep *netsim.Endpoint, cfg ReliableConfig) *Reliable {
	if cfg.RTO <= 0 {
		cfg.RTO = 2 * time.Millisecond
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = cfg.RTO / 2
	}
	if cfg.DeliveryDepth <= 0 {
		cfg.DeliveryDepth = 8192
	}
	r := &Reliable{
		ep:     ep,
		cfg:    cfg,
		peers:  make(map[wire.NodeID]*peerState),
		closed: make(chan struct{}),
	}
	go r.recvLoop()
	go r.retransmitLoop()
	return r
}

// Self returns the local node id.
func (r *Reliable) Self() wire.NodeID { return r.ep.ID() }

// SetHandler installs the inbound handler.
func (r *Reliable) SetHandler(h Handler) { r.handler.Store(h) }

// Retransmits reports how many frames were resent (diagnostics).
func (r *Reliable) Retransmits() uint64 { return r.retransmits.Load() }

func (r *Reliable) peer(id wire.NodeID) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[id]
	if !ok {
		p = &peerState{
			id:       id,
			nextSeq:  1,
			expected: 1,
			unacked:  make(map[uint64]*unackedFrame),
			pending:  make(map[uint64][]byte),
			deliver:  make(chan delivery, r.cfg.DeliveryDepth),
		}
		r.peers[id] = p
		go r.deliverLoop(p)
	}
	return p
}

// Send transmits m reliably to the peer.
func (r *Reliable) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-r.closed:
		return ErrClosed
	default:
	}
	payload := wire.Marshal(m)
	p := r.peer(to)
	p.sendMu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	buf := make([]byte, hdrLen+len(payload))
	buf[0] = flagData
	binary.LittleEndian.PutUint64(buf[1:], seq)
	p.recvMu.Lock()
	ack := p.expected - 1 // piggyback cumulative ack
	p.recvMu.Unlock()
	binary.LittleEndian.PutUint64(buf[9:], ack)
	copy(buf[hdrLen:], payload)
	p.unacked[seq] = &unackedFrame{buf: buf, sent: time.Now()}
	p.sendMu.Unlock()
	return r.ep.Send(to, buf)
}

func (r *Reliable) sendAck(to wire.NodeID, ack uint64) {
	buf := make([]byte, hdrLen)
	binary.LittleEndian.PutUint64(buf[9:], ack)
	r.acksSent.Add(1)
	_ = r.ep.Send(to, buf)
}

func (r *Reliable) recvLoop() {
	for {
		f, ok := r.ep.Recv()
		if !ok {
			return
		}
		if len(f.Payload) < hdrLen {
			continue // corrupt frame
		}
		flags := f.Payload[0]
		seq := binary.LittleEndian.Uint64(f.Payload[1:])
		ack := binary.LittleEndian.Uint64(f.Payload[9:])
		p := r.peer(f.From)

		// Process the (cumulative) acknowledgement.
		p.sendMu.Lock()
		for s := range p.unacked {
			if s <= ack {
				delete(p.unacked, s)
			}
		}
		p.sendMu.Unlock()

		if flags&flagData == 0 {
			continue // pure ack
		}
		payload := f.Payload[hdrLen:]

		p.recvMu.Lock()
		switch {
		case seq < p.expected:
			// Duplicate of an already-delivered frame: re-ack so the
			// sender stops retransmitting.
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
			continue
		case seq == p.expected:
			p.expected++
			ready := [][]byte{payload}
			for {
				nxt, ok := p.pending[p.expected]
				if !ok {
					break
				}
				delete(p.pending, p.expected)
				p.expected++
				ready = append(ready, nxt)
			}
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
			for _, pl := range ready {
				select {
				case p.deliver <- delivery{payload: pl}:
				case <-r.closed:
					return
				}
			}
		default:
			// Out of order: buffer (dedup re-buffering is harmless)
			// and re-ack the last in-order frame.
			if _, dup := p.pending[seq]; !dup {
				p.pending[seq] = payload
			}
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
		}
	}
}

func (r *Reliable) deliverLoop(p *peerState) {
	for {
		select {
		case d := <-p.deliver:
			m, err := wire.Unmarshal(d.payload)
			if err != nil {
				continue
			}
			if h, _ := r.handler.Load().(Handler); h != nil {
				h(p.id, m)
			}
		case <-r.closed:
			return
		}
	}
}

func (r *Reliable) retransmitLoop() {
	t := time.NewTicker(r.cfg.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-t.C:
			r.mu.Lock()
			peers := make([]*peerState, 0, len(r.peers))
			for _, p := range r.peers {
				peers = append(peers, p)
			}
			r.mu.Unlock()
			for _, p := range peers {
				p.sendMu.Lock()
				var resend [][]byte
				for _, uf := range p.unacked {
					if now.Sub(uf.sent) >= r.cfg.RTO {
						uf.sent = now
						resend = append(resend, uf.buf)
					}
				}
				p.sendMu.Unlock()
				for _, buf := range resend {
					r.retransmits.Add(1)
					_ = r.ep.Send(p.id, buf)
				}
			}
		}
	}
}

// Close stops background goroutines. The underlying network is not closed.
func (r *Reliable) Close() error {
	r.once.Do(func() { close(r.closed) })
	return nil
}
