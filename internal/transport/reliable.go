package transport

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/netsim"
	"zeus/internal/retry"
	"zeus/internal/wire"
)

// ReliableConfig tunes the retransmission machinery.
type ReliableConfig struct {
	// RTO is the initial retransmission timeout, used until RTT samples
	// arrive; after that the per-peer adaptive estimator (SRTT/RTTVAR, RFC
	// 6298 via retry.RTOEstimator) takes over.
	RTO time.Duration
	// MinRTO / MaxRTO clamp the adaptive timeout.
	MinRTO time.Duration
	MaxRTO time.Duration
	// DupAckThreshold is the number of duplicate pure ACKs that trigger a
	// fast retransmission of the first unacknowledged frame (à la TCP fast
	// retransmit; default 2 — the fabric re-acks every data frame, so the
	// signal is strong and sub-RTO recovery matters more than the odd
	// spurious resend, which deduplication makes harmless).
	DupAckThreshold int
	// ScanInterval is how often the retransmitter scans for timed-out
	// frames; defaults to max(MinRTO/2, 50µs).
	ScanInterval time.Duration
	// DeliveryDepth bounds the per-peer in-order delivery queue.
	DeliveryDepth int
}

// DefaultReliableConfig matches the simulated fabric's latency scale.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{RTO: 2 * time.Millisecond, DeliveryDepth: 8192}
}

// frame header layout: [flags:1][seq:8][ack:8] + payload
const (
	flagData = 1 << 0
	hdrLen   = 17
)

// Reliable implements Transport over a lossy netsim endpoint using per-peer
// sequence numbers, cumulative acknowledgements, retransmission and
// deduplication. It delivers messages exactly once, in per-peer FIFO order,
// mirroring the paper's low-level reliable messaging (§3.1).
//
// Loss recovery is two-tiered: duplicate cumulative ACKs trigger an immediate
// fast retransmission of the first hole (sub-RTT recovery whenever traffic
// follows the lost frame), and an adaptive per-peer RTO (SRTT/RTTVAR with
// exponential back-off, Karn's rule for samples) catches tail losses.
type Reliable struct {
	ep  *netsim.Endpoint
	cfg ReliableConfig

	mu      sync.Mutex
	peers   map[wire.NodeID]*peerState
	handler atomic.Value // Handler
	closed  chan struct{}
	once    sync.Once

	retransmits     atomic.Uint64
	fastRetransmits atomic.Uint64
	acksSent        atomic.Uint64
}

type peerState struct {
	id wire.NodeID

	// Sender side.
	sendMu  sync.Mutex
	nextSeq uint64
	unacked map[uint64]*unackedFrame
	est      *retry.RTOEstimator
	cumAck   uint64 // highest cumulative ack received from the peer
	dupAcks  int    // consecutive duplicate pure acks at cumAck
	fastRetx uint64 // highest seq already fast-retransmitted (one shot per hole)
	// Receiver side.
	recvMu   sync.Mutex
	expected uint64
	pending  map[uint64][]byte

	deliver chan delivery
}

type unackedFrame struct {
	buf  []byte
	sent time.Time
	retx bool // retransmitted at least once (Karn: no RTT sample)
}

type delivery struct {
	payload []byte
}

// NewReliable wraps a netsim endpoint in the reliable messaging layer.
func NewReliable(ep *netsim.Endpoint, cfg ReliableConfig) *Reliable {
	if cfg.RTO <= 0 {
		cfg.RTO = 2 * time.Millisecond
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 100 * time.Microsecond
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = 100 * time.Millisecond
		if cfg.MaxRTO < 4*cfg.RTO {
			cfg.MaxRTO = 4 * cfg.RTO
		}
	}
	if cfg.DupAckThreshold <= 0 {
		cfg.DupAckThreshold = 2
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = cfg.MinRTO / 2
		if cfg.ScanInterval < 50*time.Microsecond {
			cfg.ScanInterval = 50 * time.Microsecond
		}
	}
	if cfg.DeliveryDepth <= 0 {
		cfg.DeliveryDepth = 8192
	}
	r := &Reliable{
		ep:     ep,
		cfg:    cfg,
		peers:  make(map[wire.NodeID]*peerState),
		closed: make(chan struct{}),
	}
	go r.recvLoop()
	go r.retransmitLoop()
	return r
}

// Self returns the local node id.
func (r *Reliable) Self() wire.NodeID { return r.ep.ID() }

// SetHandler installs the inbound handler.
func (r *Reliable) SetHandler(h Handler) { r.handler.Store(h) }

// Retransmits reports how many frames were resent on timeout (diagnostics).
func (r *Reliable) Retransmits() uint64 { return r.retransmits.Load() }

// FastRetransmits reports how many frames duplicate ACKs resent early.
func (r *Reliable) FastRetransmits() uint64 { return r.fastRetransmits.Load() }

func (r *Reliable) peer(id wire.NodeID) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[id]
	if !ok {
		p = &peerState{
			id:       id,
			nextSeq:  1,
			expected: 1,
			unacked:  make(map[uint64]*unackedFrame),
			pending:  make(map[uint64][]byte),
			est:      retry.NewRTOEstimator(r.cfg.RTO, r.cfg.MinRTO, r.cfg.MaxRTO),
			deliver:  make(chan delivery, r.cfg.DeliveryDepth),
		}
		r.peers[id] = p
		go r.deliverLoop(p)
	}
	return p
}

// Send transmits m reliably to the peer.
func (r *Reliable) Send(to wire.NodeID, m wire.Msg) error {
	select {
	case <-r.closed:
		return ErrClosed
	default:
	}
	payload := wire.Marshal(m)
	p := r.peer(to)
	p.sendMu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	buf := make([]byte, hdrLen+len(payload))
	buf[0] = flagData
	binary.LittleEndian.PutUint64(buf[1:], seq)
	p.recvMu.Lock()
	ack := p.expected - 1 // piggyback cumulative ack
	p.recvMu.Unlock()
	binary.LittleEndian.PutUint64(buf[9:], ack)
	copy(buf[hdrLen:], payload)
	p.unacked[seq] = &unackedFrame{buf: buf, sent: time.Now()}
	p.sendMu.Unlock()
	return r.ep.Send(to, buf)
}

func (r *Reliable) sendAck(to wire.NodeID, ack uint64) {
	buf := make([]byte, hdrLen)
	binary.LittleEndian.PutUint64(buf[9:], ack)
	r.acksSent.Add(1)
	_ = r.ep.Send(to, buf)
}

// processAck handles one inbound cumulative ack: it releases covered frames,
// feeds the RTT estimator (Karn: only never-retransmitted frames), and counts
// duplicate pure acks, fast-retransmitting the first hole at the threshold.
func (r *Reliable) processAck(p *peerState, ack uint64, pureAck bool) {
	now := time.Now()
	var fastRetx []byte
	p.sendMu.Lock()
	switch {
	case ack > p.cumAck:
		var sample time.Duration
		var sampleSeq uint64
		for s, uf := range p.unacked {
			if s > ack {
				continue
			}
			if !uf.retx && s > sampleSeq {
				sampleSeq = s
				sample = now.Sub(uf.sent)
			}
			delete(p.unacked, s)
		}
		p.cumAck = ack
		p.dupAcks = 0
		if sampleSeq != 0 {
			p.est.Observe(sample)
		}
	case ack == p.cumAck && pureAck:
		// A duplicate ack means later frames arrived while ack+1 is
		// missing; after DupAckThreshold of them, resend it right away —
		// but only once per hole (à la TCP): every frame queued behind
		// the hole produces another duplicate ack, and re-firing on each
		// would amplify one loss into a burst of identical copies. If
		// the retransmission is lost too, the RTO timer recovers.
		if uf, ok := p.unacked[ack+1]; ok && ack+1 > p.fastRetx {
			p.dupAcks++
			if p.dupAcks >= r.cfg.DupAckThreshold {
				p.dupAcks = 0
				p.fastRetx = ack + 1
				uf.retx = true
				uf.sent = now
				fastRetx = uf.buf
			}
		}
	}
	p.sendMu.Unlock()
	if fastRetx != nil {
		r.fastRetransmits.Add(1)
		_ = r.ep.Send(p.id, fastRetx)
	}
}

func (r *Reliable) recvLoop() {
	for {
		f, ok := r.ep.Recv()
		if !ok {
			return
		}
		if len(f.Payload) < hdrLen {
			continue // corrupt frame
		}
		flags := f.Payload[0]
		seq := binary.LittleEndian.Uint64(f.Payload[1:])
		ack := binary.LittleEndian.Uint64(f.Payload[9:])
		p := r.peer(f.From)

		// Process the (cumulative) acknowledgement.
		r.processAck(p, ack, flags&flagData == 0)

		if flags&flagData == 0 {
			continue // pure ack
		}
		payload := f.Payload[hdrLen:]

		p.recvMu.Lock()
		switch {
		case seq < p.expected:
			// Duplicate of an already-delivered frame: re-ack so the
			// sender stops retransmitting.
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
			continue
		case seq == p.expected:
			p.expected++
			ready := [][]byte{payload}
			for {
				nxt, ok := p.pending[p.expected]
				if !ok {
					break
				}
				delete(p.pending, p.expected)
				p.expected++
				ready = append(ready, nxt)
			}
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
			for _, pl := range ready {
				select {
				case p.deliver <- delivery{payload: pl}:
				case <-r.closed:
					return
				}
			}
		default:
			// Out of order: buffer (dedup re-buffering is harmless)
			// and re-ack the last in-order frame — the duplicate ack
			// is the sender's fast-retransmit signal.
			if _, dup := p.pending[seq]; !dup {
				p.pending[seq] = payload
			}
			cum := p.expected - 1
			p.recvMu.Unlock()
			r.sendAck(f.From, cum)
		}
	}
}

func (r *Reliable) deliverLoop(p *peerState) {
	for {
		select {
		case d := <-p.deliver:
			m, err := wire.Unmarshal(d.payload)
			if err != nil {
				continue
			}
			if h, _ := r.handler.Load().(Handler); h != nil {
				h(p.id, m)
			}
		case <-r.closed:
			return
		}
	}
}

func (r *Reliable) retransmitLoop() {
	t := time.NewTicker(r.cfg.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case now := <-t.C:
			r.mu.Lock()
			peers := make([]*peerState, 0, len(r.peers))
			for _, p := range r.peers {
				peers = append(peers, p)
			}
			r.mu.Unlock()
			for _, p := range peers {
				p.sendMu.Lock()
				rto := p.est.RTO()
				var resend [][]byte
				for _, uf := range p.unacked {
					if now.Sub(uf.sent) >= rto {
						uf.sent = now
						uf.retx = true
						resend = append(resend, uf.buf)
					}
				}
				if len(resend) > 0 {
					// One back-off per scan round, not per frame
					// (RFC 6298 §5.5 applied per flight).
					p.est.Backoff()
				}
				p.sendMu.Unlock()
				for _, buf := range resend {
					r.retransmits.Add(1)
					_ = r.ep.Send(p.id, buf)
				}
			}
		}
	}
}

// Close stops background goroutines. The underlying network is not closed.
func (r *Reliable) Close() error {
	r.once.Do(func() { close(r.closed) })
	return nil
}
