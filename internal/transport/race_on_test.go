//go:build race

package transport

// raceEnabled reports whether the race detector instruments this build.
// See race_off_test.go for why torture assertions consult it.
const raceEnabled = true
