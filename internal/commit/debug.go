package commit

import (
	"fmt"
	"io"
	"sort"

	"zeus/internal/store"
	"zeus/internal/wire"
)

// DumpState writes a human-readable snapshot of the engine's invariant
// surface to w: every unvalidated coordinator slot, every follower pipe with
// stored or buffered R-INVs, the recovery replay table, and every store
// object still carrying commit debt (PendingCommits > 0 or a non-Valid
// t_state). It exists for the pending-commit wedge hunt (ROADMAP): when a
// torture final read exhausts NackPendingCommit retries, this is the trace
// that says WHICH slot pins the counter and on WHOSE pipe it is stranded.
//
// Diagnostic only: it takes each pipe/object lock briefly and in isolation,
// so a dump of a live (even wedged) engine is safe, but the snapshot is not
// atomic across pipes.
func (e *Engine) DumpState(w io.Writer) {
	fmt.Fprintf(w, "== commit.Engine node=%d epoch=%d live=%v ==\n",
		e.self, e.agent.Epoch(), e.agent.View().Live.Nodes())

	e.outPipes.Range(func(wk wire.Worker, p *outPipe) bool {
		p.mu.Lock()
		if len(p.slots) > 0 {
			fmt.Fprintf(w, "outPipe worker=%d nextLocal=%d openSlots=%d\n", wk, p.nextLocal, len(p.slots))
			for _, local := range sortedKeys(p.slots) {
				s := p.slots[local]
				fmt.Fprintf(w, "  slot local=%d tx=%v epoch=%d followers=%v acked=%v valed=%v updates=%d\n",
					local, s.tx, s.inv.Epoch, s.followers.Nodes(), s.acked.Nodes(), s.valed, len(s.inv.Updates))
			}
		}
		p.mu.Unlock()
		return true
	})

	e.inPipes.Range(func(id wire.PipeID, p *inPipe) bool {
		p.mu.Lock()
		if len(p.stored) > 0 || len(p.waiting) > 0 {
			fmt.Fprintf(w, "inPipe coord=%d worker=%d watermark=%d stored=%v waiting=%v\n",
				id.Node, id.Worker, p.watermark, sortedKeys(p.stored), sortedKeys(p.waiting))
			for _, local := range sortedKeys(p.stored) {
				inv := p.stored[local]
				objs := make([]wire.ObjectID, 0, len(inv.Updates))
				for _, u := range inv.Updates {
					objs = append(objs, u.Obj)
				}
				fmt.Fprintf(w, "  stored local=%d epoch=%d replay=%v objs=%v\n", local, inv.Epoch, inv.Replay, objs)
			}
		}
		p.mu.Unlock()
		return true
	})

	e.replayMu.Lock()
	if len(e.replays) > 0 {
		fmt.Fprintf(w, "replays epoch=%d n=%d\n", e.replayEpoch, len(e.replays))
		for tx, rs := range e.replays {
			fmt.Fprintf(w, "  replay tx=%v followers=%v acked=%v finished=%v\n",
				tx, rs.followers.Nodes(), rs.acked.Nodes(), rs.finished)
		}
	}
	e.replayMu.Unlock()

	e.st.ForEach(func(o *store.Object) bool {
		o.Mu.Lock()
		pending := o.PendingCommits.Load()
		if pending > 0 || o.TState != store.TValid {
			fmt.Fprintf(w, "object id=%d tver=%d tstate=%v pending=%d ostate=%v level=%v owner=%d localOwner=%d\n",
				o.ID, o.TVersion, o.TState, pending, o.OState, o.Level, o.Replicas.Owner, o.LocalOwner)
		}
		o.Mu.Unlock()
		return true
	})
}

// sortedKeys returns m's keys in ascending order (deterministic dumps).
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
