package commit

import (
	"testing"
	"time"

	"zeus/internal/obs"
	"zeus/internal/wire"
)

// TestWatchdogFiresOncePerOffender wedges a replication slot (follower
// unreachable), drives watchdog scans directly and checks the dedup
// contract: one incident per offender while it persists, forgotten once it
// resolves, and a fresh wedge fires again.
func TestWatchdogFiresOncePerOffender(t *testing.T) {
	c := newTestCluster(t, 3)
	eng := c.nodes[0].eng
	reg := obs.NewRegistry()
	eng.SetObs(reg)
	c.seedObject(1, 0, wire.BitmapOf(1, 2))

	c.hub.SetDown(1, true) // follower 1 cannot ack: the slot wedges open
	_, done := c.localWrite(0, 0, []wire.ObjectID{1}, "wedged")

	const age = 10 * time.Millisecond
	reported := make(map[string]bool)
	future := time.Now().Add(time.Hour) // every stamp is long past the threshold
	eng.watchdogScan(future, age, reported)
	eng.watchdogScan(future, age, reported)
	if n := reg.Incidents.Total(); n != 1 {
		t.Fatalf("wedged slot raised %d incidents across two scans, want exactly 1: %+v",
			n, reg.Incidents.Recent())
	}
	if k := reg.Incidents.Recent()[0].Kind; k != "open-slot" {
		t.Fatalf("incident kind = %q, want open-slot", k)
	}

	// Resolve the wedge the way the protocol does: declare the silent
	// follower failed; the view change re-evaluates completeness against the
	// live set and the slot validates. The next scan must forget the
	// resolved offender silently.
	c.mgr.Fail(1)
	if !c.mgr.WaitEpoch(2, 2*time.Second) {
		t.Fatal("no view change after failing the silent follower")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slot did not complete after pruning the dead follower")
	}
	eng.watchdogScan(time.Now().Add(time.Hour), age, reported)
	if n := reg.Incidents.Total(); n != 1 {
		t.Fatalf("resolved slot re-reported: %d incidents", n)
	}

	// A fresh wedge is a new offender and fires again.
	c.hub.SetDown(2, true)
	_, _ = c.localWrite(0, 0, []wire.ObjectID{1}, "wedged-again")
	eng.watchdogScan(time.Now().Add(time.Hour), age, reported)
	if n := reg.Incidents.Total(); n != 2 {
		t.Fatalf("fresh wedge raised no incident: total=%d", n)
	}
}

// TestWatchdogQuietWhenHealthy: a drained engine has no debt, so scans must
// stay silent regardless of the threshold.
func TestWatchdogQuietWhenHealthy(t *testing.T) {
	c := newTestCluster(t, 2)
	eng := c.nodes[0].eng
	reg := obs.NewRegistry()
	eng.SetObs(reg)
	c.seedObject(1, 0, wire.BitmapOf(1))
	_, done := c.localWrite(0, 0, []wire.ObjectID{1}, "healthy")
	<-done
	eng.watchdogScan(time.Now().Add(time.Hour), time.Nanosecond, make(map[string]bool))
	if n := reg.Incidents.Total(); n != 0 {
		t.Fatalf("healthy engine raised %d incidents: %+v", n, reg.Incidents.Recent())
	}
}
