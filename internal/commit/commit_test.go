package commit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"zeus/internal/membership"
	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

type tnode struct {
	id    wire.NodeID
	st    *store.Store
	eng   *Engine
	tr    *transport.MemTransport
	agent *membership.Agent
}

type tcluster struct {
	hub   *transport.Hub
	mgr   *membership.Manager
	nodes []*tnode
}

func newTestCluster(t *testing.T, n int) *tcluster {
	t.Helper()
	var members wire.Bitmap
	for i := 0; i < n; i++ {
		members = members.Add(wire.NodeID(i))
	}
	hub := transport.NewHub()
	mgr := membership.NewManager(membership.Config{Lease: 2 * time.Millisecond}, members)
	c := &tcluster{hub: hub, mgr: mgr}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		st := store.New()
		tr := hub.Node(id)
		agent := mgr.Agent(id)
		eng := New(id, st, tr, agent)
		r := transport.NewRouter()
		eng.Register(r)
		tr.SetHandler(r.Dispatch)
		tr.SetTickHandler(r.Tick)
		agent.OnChange(func(old, next wire.View, removed wire.Bitmap) {
			eng.OnViewChange(next, removed)
		})
		c.nodes = append(c.nodes, &tnode{id: id, st: st, eng: eng, tr: tr, agent: agent})
		t.Cleanup(func() { tr.Close() })
	}
	return c
}

// seedObject installs an object at the owner and its readers with version 0.
func (c *tcluster) seedObject(obj wire.ObjectID, owner wire.NodeID, readers wire.Bitmap) {
	reps := wire.ReplicaSet{Owner: owner, Readers: readers.Remove(owner)}
	for _, nd := range c.nodes {
		lvl := reps.LevelOf(nd.id)
		if lvl == wire.NonReplica {
			continue
		}
		o, _ := nd.st.GetOrCreate(obj)
		o.Mu.Lock()
		o.Level = lvl
		o.Replicas = reps
		o.TState = store.TValid
		o.Mu.Unlock()
	}
}

// localWrite performs the local-commit part of a write transaction at the
// owner (what internal/core does) and hands it to the reliable commit.
func (c *tcluster) localWrite(owner wire.NodeID, w wire.Worker, objs []wire.ObjectID, val string) (wire.TxID, <-chan struct{}) {
	nd := c.nodes[owner]
	var updates []wire.Update
	var followers wire.Bitmap
	for _, id := range objs {
		o, _ := nd.st.Get(id)
		o.Mu.Lock()
		o.TVersion++
		o.Data = []byte(val)
		o.TState = store.TWrite
		o.PendingCommits.Add(1)
		updates = append(updates, wire.Update{Obj: id, Version: o.TVersion, Data: []byte(val)})
		followers = followers.Union(o.Replicas.Readers)
		o.Mu.Unlock()
	}
	return nd.eng.Commit(w, updates, followers)
}

func (c *tcluster) waitValid(t *testing.T, node wire.NodeID, obj wire.ObjectID, wantVer uint64, wantData string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, ok := c.nodes[node].st.Get(obj); ok {
			o.Mu.Lock()
			st, ver, data := o.TState, o.TVersion, string(o.Data)
			o.Mu.Unlock()
			if st == store.TValid && ver == wantVer && data == wantData {
				return
			}
		}
		if time.Now().After(deadline) {
			o, _ := c.nodes[node].st.Get(obj)
			o.Mu.Lock()
			t.Fatalf("node %d obj %d never reached Valid v%d %q (now %v v%d %q)",
				node, obj, wantVer, wantData, o.TState, o.TVersion, o.Data)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestReliableCommitReplicates(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(1, 0, wire.BitmapOf(1, 2))
	_, done := c.localWrite(0, 0, []wire.ObjectID{1}, "v1")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("commit never validated")
	}
	for _, n := range []wire.NodeID{0, 1, 2} {
		c.waitValid(t, n, 1, 1, "v1")
	}
	if c.nodes[0].eng.HasPending(1) {
		t.Fatal("pending flag stuck after validation")
	}
}

func TestMultiObjectCommitUnionFollowers(t *testing.T) {
	c := newTestCluster(t, 4)
	c.seedObject(1, 0, wire.BitmapOf(1))
	c.seedObject(2, 0, wire.BitmapOf(2))
	_, done := c.localWrite(0, 0, []wire.ObjectID{1, 2}, "both")
	<-done
	c.waitValid(t, 1, 1, 1, "both")
	c.waitValid(t, 2, 2, 1, "both")
	// Node 3 is not a replica of either object.
	if _, ok := c.nodes[3].st.Get(1); ok {
		t.Fatal("non-replica received data")
	}
}

func TestPipelineOrderAndPendingCounts(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(5, 0, wire.BitmapOf(1, 2))
	const N = 50
	var last <-chan struct{}
	for i := 1; i <= N; i++ {
		_, done := c.localWrite(0, 0, []wire.ObjectID{5}, fmt.Sprintf("v%d", i))
		last = done
	}
	select {
	case <-last:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline never drained")
	}
	if !c.nodes[0].eng.WaitIdle(2 * time.Second) {
		t.Fatal("WaitIdle timed out")
	}
	for _, n := range []wire.NodeID{0, 1, 2} {
		c.waitValid(t, n, 5, N, fmt.Sprintf("v%d", N))
	}
	if c.nodes[0].eng.HasPending(5) {
		t.Fatal("pending count leaked")
	}
}

func TestPipeliningDoesNotBlockCoordinator(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(9, 0, wire.BitmapOf(1, 2))
	// Issue 100 commits back-to-back; all Commit calls must return without
	// waiting for any R-ACK round trip.
	start := time.Now()
	for i := 0; i < 100; i++ {
		c.localWrite(0, 0, []wire.ObjectID{9}, "x")
	}
	elapsed := time.Since(start)
	if elapsed > 500*time.Millisecond {
		t.Fatalf("coordinator blocked: 100 commits took %v", elapsed)
	}
	c.nodes[0].eng.WaitIdle(5 * time.Second)
}

func TestPerWorkerPipelinesIndependent(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(11, 0, wire.BitmapOf(1))
	c.seedObject(12, 0, wire.BitmapOf(2))
	var wg sync.WaitGroup
	for w := wire.Worker(0); w < 4; w++ {
		wg.Add(1)
		go func(w wire.Worker) {
			defer wg.Done()
			obj := wire.ObjectID(11)
			if w%2 == 1 {
				obj = 12
			}
			for i := 0; i < 20; i++ {
				c.localWrite(0, w, []wire.ObjectID{obj}, "w")
			}
		}(w)
	}
	wg.Wait()
	if !c.nodes[0].eng.WaitIdle(5 * time.Second) {
		t.Fatal("pipes never drained")
	}
	st := c.nodes[0].eng.Stats()
	if st.Committed != 80 {
		t.Fatalf("committed = %d, want 80", st.Committed)
	}
}

func TestFollowerInvalidationWindow(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(7, 0, wire.BitmapOf(1, 2))
	// Block ACK traffic from node 2 so the commit cannot validate.
	c.hub.SetDown(2, true)
	_, done := c.localWrite(0, 0, []wire.ObjectID{7}, "pending")
	// Node 1 must be Invalid (applied, not validated).
	deadline := time.Now().Add(2 * time.Second)
	for {
		o, ok := c.nodes[1].st.Get(7)
		if ok {
			o.Mu.Lock()
			st := o.TState
			o.Mu.Unlock()
			if st == store.TInvalid {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never invalidated")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if c.nodes[0].eng.HasPending(7) != true {
		t.Fatal("coordinator must report pending while unacked")
	}
	select {
	case <-done:
		t.Fatal("commit validated without all ACKs")
	default:
	}
	// Revive node 2; it missed the R-INV (down endpoints drop traffic), so
	// the view-change path re-sends: simulate by failing node 2 instead.
	c.mgr.Fail(2)
	if !c.mgr.WaitEpoch(2, 2*time.Second) {
		t.Fatal("no view change")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("commit never validated after pruning dead follower")
	}
	c.waitValid(t, 1, 7, 1, "pending")
}

func TestCoordinatorDeathFollowerReplays(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seedObject(21, 0, wire.BitmapOf(1, 2))
	// Deliver the R-INV straight to the followers, as if the coordinator
	// crashed right after broadcasting it and before any R-VAL.
	inv := &wire.CommitInv{
		Tx:        wire.TxID{Pipe: wire.PipeID{Node: 0, Worker: 0}, Local: 1},
		Epoch:     1,
		Followers: wire.BitmapOf(1, 2),
		PrevVal:   true,
		Updates:   []wire.Update{{Obj: 21, Version: 1, Data: []byte("orphan")}},
	}
	c.nodes[1].eng.Handle(0, inv)
	c.nodes[2].eng.Handle(0, inv)
	c.hub.SetDown(0, true)
	c.mgr.Fail(0)
	if !c.mgr.WaitEpoch(2, 2*time.Second) {
		t.Fatal("no view change")
	}
	// Followers replay the pending commit among themselves and validate.
	c.waitValid(t, 1, 21, 1, "orphan")
	c.waitValid(t, 2, 21, 1, "orphan")
	// The recovery barrier closes (both survivors report done).
	deadline := time.Now().Add(2 * time.Second)
	for c.mgr.RecoveryPending() {
		if time.Now().After(deadline) {
			t.Fatal("recovery barrier never closed")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if c.nodes[1].eng.Stats().Replays == 0 && c.nodes[2].eng.Stats().Replays == 0 {
		t.Fatal("no replays recorded")
	}
}

func TestIdempotentDuplicateInv(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(31, 0, wire.BitmapOf(1))
	inv := &wire.CommitInv{
		Tx:        wire.TxID{Pipe: wire.PipeID{Node: 0, Worker: 0}, Local: 1},
		Epoch:     1,
		Followers: wire.BitmapOf(1),
		PrevVal:   true,
		Updates:   []wire.Update{{Obj: 31, Version: 1, Data: []byte("once")}},
	}
	// Deliver the same R-INV three times.
	for i := 0; i < 3; i++ {
		c.nodes[1].eng.Handle(0, inv)
	}
	o, _ := c.nodes[1].st.Get(31)
	o.Mu.Lock()
	ver, data := o.TVersion, string(o.Data)
	o.Mu.Unlock()
	if ver != 1 || data != "once" {
		t.Fatalf("duplicate INV mis-applied: v%d %q", ver, data)
	}
	c.nodes[1].eng.Handle(0, &wire.CommitVal{Tx: inv.Tx, Epoch: 1})
	o.Mu.Lock()
	st := o.TState
	o.Mu.Unlock()
	if st != store.TValid {
		t.Fatalf("state after VAL: %v", st)
	}
	// Late duplicate after VAL: re-ACKed, not re-applied.
	c.nodes[1].eng.Handle(0, inv)
	o.Mu.Lock()
	st = o.TState
	o.Mu.Unlock()
	if st != store.TValid {
		t.Fatalf("late duplicate flipped state: %v", st)
	}
}

func TestStaleVersionSkipped(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(41, 0, wire.BitmapOf(1))
	o, _ := c.nodes[1].st.Get(41)
	o.Mu.Lock()
	o.TVersion = 5
	o.Data = []byte("newer")
	o.Mu.Unlock()
	inv := &wire.CommitInv{
		Tx:    wire.TxID{Pipe: wire.PipeID{Node: 0, Worker: 0}, Local: 1},
		Epoch: 1, Followers: wire.BitmapOf(1), PrevVal: true,
		Updates: []wire.Update{{Obj: 41, Version: 3, Data: []byte("older")}},
	}
	c.nodes[1].eng.Handle(0, inv)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.TVersion != 5 || string(o.Data) != "newer" {
		t.Fatalf("stale INV applied: v%d %q", o.TVersion, o.Data)
	}
}

func TestOutOfOrderSlotWaitsForPredecessor(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(51, 0, wire.BitmapOf(1))
	pipe := wire.PipeID{Node: 0, Worker: 0}
	// Slot 2 arrives first without the prev-VAL bit: must be buffered.
	inv2 := &wire.CommitInv{
		Tx: wire.TxID{Pipe: pipe, Local: 2}, Epoch: 1,
		Followers: wire.BitmapOf(1),
		Updates:   []wire.Update{{Obj: 51, Version: 2, Data: []byte("two")}},
	}
	c.nodes[1].eng.Handle(0, inv2)
	o, _ := c.nodes[1].st.Get(51)
	o.Mu.Lock()
	ver := o.TVersion
	o.Mu.Unlock()
	if ver != 0 {
		t.Fatalf("slot 2 applied before slot 1: v%d", ver)
	}
	// Slot 1 arrives: both apply in order.
	inv1 := &wire.CommitInv{
		Tx: wire.TxID{Pipe: pipe, Local: 1}, Epoch: 1,
		Followers: wire.BitmapOf(1),
		Updates:   []wire.Update{{Obj: 51, Version: 1, Data: []byte("one")}},
	}
	c.nodes[1].eng.Handle(0, inv1)
	o.Mu.Lock()
	ver, data := o.TVersion, string(o.Data)
	o.Mu.Unlock()
	if ver != 2 || data != "two" {
		t.Fatalf("drain failed: v%d %q", ver, data)
	}
}

func TestPrevValBitAllowsGap(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(61, 0, wire.BitmapOf(1))
	pipe := wire.PipeID{Node: 0, Worker: 0}
	// Node 1 was not a follower of slot 1; slot 2 carries prev-VAL.
	inv2 := &wire.CommitInv{
		Tx: wire.TxID{Pipe: pipe, Local: 2}, Epoch: 1, PrevVal: true,
		Followers: wire.BitmapOf(1),
		Updates:   []wire.Update{{Obj: 61, Version: 1, Data: []byte("gap")}},
	}
	c.nodes[1].eng.Handle(0, inv2)
	o, _ := c.nodes[1].st.Get(61)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.TVersion != 1 || string(o.Data) != "gap" {
		t.Fatalf("prev-VAL gap not applied: v%d %q", o.TVersion, o.Data)
	}
}

func TestRValInclusionUnblocksPartialFollower(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(71, 0, wire.BitmapOf(1))
	pipe := wire.PipeID{Node: 0, Worker: 0}
	// Slot 2 without prev-VAL: waits. Then the R-VAL of slot 1 arrives
	// (the coordinator included this node in slot 1's R-VAL broadcast).
	inv2 := &wire.CommitInv{
		Tx: wire.TxID{Pipe: pipe, Local: 2}, Epoch: 1,
		Followers: wire.BitmapOf(1),
		Updates:   []wire.Update{{Obj: 71, Version: 1, Data: []byte("late")}},
	}
	c.nodes[1].eng.Handle(0, inv2)
	c.nodes[1].eng.Handle(0, &wire.CommitVal{Tx: wire.TxID{Pipe: pipe, Local: 1}, Epoch: 1})
	o, _ := c.nodes[1].st.Get(71)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.TVersion != 1 || string(o.Data) != "late" {
		t.Fatalf("R-VAL inclusion did not unblock: v%d %q", o.TVersion, o.Data)
	}
}

func TestWrongEpochIgnored(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(81, 0, wire.BitmapOf(1))
	inv := &wire.CommitInv{
		Tx:    wire.TxID{Pipe: wire.PipeID{Node: 0, Worker: 0}, Local: 1},
		Epoch: 99, PrevVal: true, Followers: wire.BitmapOf(1),
		Updates: []wire.Update{{Obj: 81, Version: 1, Data: []byte("stale-epoch")}},
	}
	c.nodes[1].eng.Handle(0, inv)
	o, _ := c.nodes[1].st.Get(81)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.TVersion != 0 {
		t.Fatal("stale-epoch INV applied")
	}
}

func TestConcurrentCommitsManyObjects(t *testing.T) {
	c := newTestCluster(t, 3)
	const objs = 32
	for i := 0; i < objs; i++ {
		c.seedObject(wire.ObjectID(100+i), 0, wire.BitmapOf(1, 2))
	}
	var wg sync.WaitGroup
	for w := wire.Worker(0); w < 8; w++ {
		wg.Add(1)
		go func(w wire.Worker) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				obj := wire.ObjectID(100 + (int(w)*25+i)%objs)
				nd := c.nodes[0]
				o, _ := nd.st.Get(obj)
				o.Mu.Lock()
				o.TVersion++
				ver := o.TVersion
				o.TState = store.TWrite
				o.PendingCommits.Add(1)
				followers := o.Replicas.Readers
				o.Mu.Unlock()
				nd.eng.Commit(w, []wire.Update{{Obj: obj, Version: ver, Data: []byte("c")}}, followers)
			}
		}(w)
	}
	wg.Wait()
	if !c.nodes[0].eng.WaitIdle(10 * time.Second) {
		t.Fatal("pipes never drained")
	}
	// All replicas converge to the coordinator's versions.
	for i := 0; i < objs; i++ {
		obj := wire.ObjectID(100 + i)
		o0, _ := c.nodes[0].st.Get(obj)
		o0.Mu.Lock()
		ver := o0.TVersion
		o0.Mu.Unlock()
		for _, n := range []wire.NodeID{1, 2} {
			c.waitValid(t, n, obj, ver, "c")
		}
	}
}

// countingStore is a Storage stub that counts successfully appended records
// and can fail the next append (a transient storage error).
type countingStore struct {
	mu       sync.Mutex
	appended int
	failNext bool
}

func (c *countingStore) Append(recs []storage.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failNext {
		c.failNext = false
		return fmt.Errorf("transient append failure")
	}
	c.appended += len(recs)
	return nil
}
func (c *countingStore) Snapshot(func(func(storage.SnapObject) error) error) error { return nil }
func (c *countingStore) Recover() (*storage.Recovered, error)                      { return storage.NewRecovered(), nil }
func (c *countingStore) Close() error                                              { return nil }

func (c *countingStore) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appended
}

// TestDuplicateInvDoesNotRelog: duplicate R-INVs must re-ACK without
// re-appending (a resend storm must not grow the WAL), while a slot whose
// first append failed is retried by the next delivery — the ACK stays
// withheld until its records are durable.
func TestDuplicateInvDoesNotRelog(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := &countingStore{failNext: true}
	fl := c.nodes[1]
	fl.eng.SetLog(storage.NewLog(cs))

	inv := &wire.CommitInv{
		Tx:        wire.TxID{Pipe: wire.PipeID{Node: 0, Worker: 0}, Local: 1},
		Epoch:     fl.agent.Epoch(),
		Followers: wire.BitmapOf(1),
		PrevVal:   true,
		Updates:   []wire.Update{{Obj: 9, Version: 1, Data: []byte("v1")}},
	}
	fl.eng.Handle(0, inv) // applies; the append fails; no ACK
	if n := cs.count(); n != 0 {
		t.Fatalf("records durable after failed append: %d", n)
	}
	fl.eng.Handle(0, inv) // retransmit: retries the append, then ACKs
	if n := cs.count(); n != 1 {
		t.Fatalf("retransmit did not retry the append: %d records", n)
	}
	for i := 0; i < 5; i++ {
		fl.eng.Handle(0, inv) // pure duplicates: re-ACK only
	}
	if n := cs.count(); n != 1 {
		t.Fatalf("duplicates grew the WAL: %d records, want 1", n)
	}
	// Validation must not append either (version-only commit records are
	// recorded via recCommitted — one more record, exactly once).
	fl.eng.Handle(0, &wire.CommitVal{Tx: inv.Tx, Epoch: inv.Epoch})
	fl.eng.Handle(0, inv) // late duplicate after VAL: isDone path, re-ACK only
	if n := cs.count(); n != 2 {
		t.Fatalf("post-VAL records = %d, want 2 (RecInv + RecCommit)", n)
	}
}

// TestIncarnationPinsPipeID: with a durable incarnation armed, new pipes
// carry it instead of the view epoch, so a restart that never bumped the
// epoch still gets fresh pipe identities at the followers.
func TestIncarnationPinsPipeID(t *testing.T) {
	c := newTestCluster(t, 2)
	e := c.nodes[0].eng
	e.SetIncarnation(7)
	if got := e.pipe(3).id.Incar; got != 7 {
		t.Fatalf("pipe Incar = %d, want the armed incarnation 7", got)
	}
	want := c.nodes[1].agent.Epoch()
	if got := c.nodes[1].eng.pipe(0).id.Incar; got != want {
		t.Fatalf("memory-only pipe Incar = %d, want the epoch %d", got, want)
	}
}
