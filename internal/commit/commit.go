// Package commit implements Zeus' reliable commit protocol (§5): the
// propagation of a locally committed write transaction to its followers (the
// readers of all modified objects) via idempotent invalidations.
//
// Failure-free flow (Figure 4): after the local commit, the coordinator
// broadcasts R-INV {tx_id, e_id, followers, updates} and keeps it; followers
// apply newer versions, flip the objects to Invalid, store the R-INV and
// R-ACK. Once all followers ACKed, the coordinator validates locally and
// broadcasts R-VAL; followers validate (iff the version is unchanged) and
// discard the stored R-INV.
//
// Pipelining (§5.2, Figure 5): the coordinator never waits for replication —
// tx_id = ⟨local_tx_id, node_id⟩ (extended per worker thread, §7) orders the
// slots of one pipeline; followers apply an R-INV only once the previous slot
// of that pipe is applied or validated, with the prev-VAL bit / R-VAL
// inclusion rule covering followers that see only part of a pipe's stream.
//
// Recovery (§5.1): after an epoch bump, every live node replays the stored
// R-INVs of dead coordinators (epoch rewritten, dead followers pruned). All
// R-INVs of a transaction are idempotent — same tx_id and t_versions — so
// concurrent replayers are harmless. When a node has no pending commits left
// from dead nodes it reports recovery-done; the ownership protocol resumes
// only after every live node has reported (the membership barrier).
//
// Concurrency (§5.2/§7): the engine holds no global lock on any hot path.
// Pipelines are looked up lock-free (copy-on-write maps — pipes are created
// once per worker and read per message) and each outPipe/inPipe carries its
// own mutex, so commits and deliveries on independent pipes never contend.
// Per-object pending state lives on store.Object (an atomic counter), and
// only recovery (the replay table) takes a dedicated slow-path lock.
package commit

import (
	"errors"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/membership"
	"zeus/internal/obs"
	"zeus/internal/retry"
	"zeus/internal/safetime"
	"zeus/internal/shardmap"
	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Stats aggregates engine counters.
type Stats struct {
	Committed       uint64 // slots fully validated at this coordinator
	Invalidations   uint64 // R-INVs applied as a follower
	Replays         uint64 // slots replayed for dead coordinators
	Resends         uint64 // crash-aware R-INV re-broadcasts
	BytesReplicated uint64
}

// MaxPipelineDepth bounds the unvalidated slots per pipeline. The paper's
// pipelines are implicitly bounded by NIC queues; here the bound provides
// backpressure so a coordinator cannot outrun its followers indefinitely
// (which would keep objects pending forever and starve ownership requests).
const MaxPipelineDepth = 256

// resendPolicy paces the crash-aware slot resender: R-INVs and R-ACKs that
// cross a membership view change are dropped by the epoch filters on either
// side, so every unacked slot is periodically re-broadcast with the *current*
// epoch until its surviving followers acknowledge. The transport already
// guarantees delivery, so this only has to outlive epoch transitions — a
// gentle exponential keeps the steady-state overhead negligible.
var resendPolicy = retry.Policy{
	InitialBackoff: time.Millisecond,
	MaxBackoff:     16 * time.Millisecond,
	Multiplier:     2,
	Jitter:         0.25,
}

// backpressurePolicy paces the pipeline-full yield in Commit: fixed 20 µs
// probes, no growth, no jitter (retrydiscipline: all engine pacing goes
// through internal/retry).
var backpressurePolicy = retry.Policy{
	InitialBackoff: 20 * time.Microsecond,
	MaxBackoff:     20 * time.Microsecond,
	Multiplier:     1,
	Jitter:         -1,
}

// maxPeers bounds the per-peer coalescer array (wire.Bitmap caps a
// deployment at 64 nodes anyway).
const maxPeers = 64

// peerQueue is one peer's slice of the outbound coalescer. Each queue has
// its own lock so workers enqueueing to different followers never contend;
// two pipelines sharing a follower contend only on that follower's queue.
type peerQueue struct {
	mu   sync.Mutex
	msgs []wire.Msg
}

// Engine runs the reliable commit protocol on one node.
type Engine struct {
	self  wire.NodeID
	st    *store.Store
	tr    transport.Transport
	agent *membership.Agent

	// Pipelines: copy-on-write maps (lock-free lookup, mutex-serialized
	// insertion — a pipe is created once and read per message). Per-slot
	// state is guarded by each pipe's own mutex.
	outPipes shardmap.COW[wire.Worker, *outPipe]
	inPipes  shardmap.COW[wire.PipeID, *inPipe]

	// Recovery slow path: the replay table is only touched around view
	// changes, never on the failure-free hot path.
	replayMu    sync.Mutex
	replays     map[wire.TxID]*replaySlot
	replayEpoch wire.Epoch
	replayN     atomic.Int32 // fast-path probe: len(replays) without the lock

	// Outbound coalescer: R-INV fan-out, R-ACKs and R-VALs accumulate in
	// per-peer queues and leave as transport batches — either when a
	// delivery tick's worth piled up (coalesceFlushCount) or within
	// coalesceInterval. The pipeline never waits for any of these messages
	// (§5.2), so the added latency is invisible to transactions while the
	// per-message transport cost is amortized across the batch. The queues
	// are locked per peer (see peerQueue); coCount is the cross-peer total
	// that triggers count-based flushes.
	coQ     [maxPeers]peerQueue
	coDirty atomic.Uint64 // bitmask of peers with queued messages
	coCount atomic.Int32  // approximate total (flush-threshold heuristic only)
	coArmed atomic.Bool   // a timed flush cycle is pending
	coWake  chan struct{}

	closed chan struct{}
	once   sync.Once

	// log, when set, is the node's durability WAL. Followers persist R-INV
	// updates before acking (ackDurable) and both sides record committed
	// versions, so a restarted node replays every write it ever
	// acknowledged. nil (the zero default) disables durability.
	log *storage.Log

	// incar, when non-zero, is the durable per-process incarnation number
	// stamped into new pipelines' PipeID.Incar (see SetIncarnation). Zero
	// (no durable storage) falls back to the view epoch at pipe creation.
	incar wire.Epoch

	// clock mints the commit timestamp (CTS) stamped into every R-INV and
	// merges CTSs observed as a follower, so causally-related commits carry
	// increasing timestamps across owner migration. New installs a private
	// clock; SetClock shares the node-wide one.
	clock *safetime.Clock

	// ts enables commit timestamping (EnableTimestamps, wiring time):
	// without it commits carry CTS 0 and ring publication no-ops, so the
	// classic write path pays nothing for the snapshot-read machinery.
	ts bool

	// obs, when set (SetObs, wiring time), holds the cached metric handles
	// the hot path records into. nil (the zero default) keeps the seed
	// write path: every record site is gated on one nil check.
	obs *engineObs

	stCommitted atomic.Uint64
	stInvals    atomic.Uint64
	stReplays   atomic.Uint64
	stResends   atomic.Uint64
	stBytes     atomic.Uint64
}

// coalesceFlushCount / coalesceInterval bound the outbound coalescer: flush
// once this many messages queued, or this long after the first one.
const (
	coalesceFlushCount = 32
	coalesceInterval   = 100 * time.Microsecond
)

// outPipe is a coordinator-side pipeline (one per worker thread, §7).
type outPipe struct {
	id wire.PipeID

	mu        sync.Mutex
	nextLocal uint64
	slots     map[uint64]*outSlot
	// order is the registration-order FIFO of the same slots (CTS
	// ascending — timestamps are minted under mu). The AppliedWM sweep
	// walks it from the front and stops at the watermark instead of
	// iterating the slots map, whose cost is capacity- not
	// size-proportional and never shrinks. Validated slots are trimmed
	// off the head by compactLocked at the next mu acquisition.
	order []*outSlot
	// swept records, per follower, the highest AppliedWM a sweep has
	// processed. A follower's watermark is one of this pipe's own applied
	// CTSs, and every slot registered later mints a strictly larger CTS,
	// so slots at or below the cursor never need re-sweeping — without it
	// each ack would re-walk the whole in-flight window (every open slot
	// trails the follower's applied watermark under pipelining).
	swept map[wire.NodeID]uint64
}

// compactLocked drops validated slots off the head of the order FIFO.
// Amortized O(1): each slot is appended once and trimmed once.
func (p *outPipe) compactLocked() {
	for len(p.order) > 0 && p.order[0].valed {
		p.order[0] = nil // release the slot to the GC behind the reslice
		p.order = p.order[1:]
	}
	if len(p.order) == 0 {
		p.order = nil // let the grown backing array go
	}
}

type outSlot struct {
	tx        wire.TxID
	inv       *wire.CommitInv
	followers wire.Bitmap
	acked     wire.Bitmap
	// extraVal are nodes to include in this slot's R-VAL broadcast even
	// though they were not followers: they follow the *next* slot and need
	// the R-VAL to apply it (§5.2).
	extraVal wire.Bitmap
	valed    bool
	done     chan struct{}
	// Crash-aware resend pacing (see resendPolicy).
	retr       *retry.Retrier
	nextResend time.Time
	// Observability (zero unless the engine has an obs bundle): openedAt
	// feeds the phase-latency histograms and the watchdog's age scan, tr is
	// the sampled transaction's trace (nil for unsampled commits).
	openedAt time.Time
	tr       *obs.Trace
}

// inPipe tracks one remote coordinator pipeline at a follower.
type inPipe struct {
	mu sync.Mutex
	// stored holds applied-but-unvalidated R-INVs (pending commits).
	stored map[uint64]*wire.CommitInv
	// done marks slots applied or validated, compacted via watermark.
	done      map[uint64]bool
	watermark uint64
	// waiting buffers R-INVs whose predecessor has not been seen yet.
	waiting map[uint64]*wire.CommitInv
	// unlogged marks applied slots whose WAL append has not succeeded yet.
	// A slot enters on apply (durability armed) and leaves once an Append
	// covering it returns; an entry lingering here means the first append
	// failed, so the next delivery of the same R-INV retries it. Duplicates
	// of already-durable slots are *not* in this map and re-ACK without
	// re-appending — a resend storm must not grow the WAL.
	unlogged map[uint64]*wire.CommitInv
	// lastCTS is the highest CTS applied on this pipe, piggybacked on every
	// R-ACK (CommitAck.AppliedWM). CTSs increase along a pipe and slots
	// apply in pipe order, so lastCTS vouches for every earlier slot.
	lastCTS uint64
	// wdSeen is watchdog-only state: when the debt scanner first observed
	// each stored R-INV (under mu, but ONLY from watchdogScan — the apply
	// and validate hot paths never touch it, so obs costs nothing here).
	wdSeen map[uint64]time.Time
}

// New creates a reliable-commit engine.
func New(self wire.NodeID, st *store.Store, tr transport.Transport, agent *membership.Agent) *Engine {
	e := &Engine{
		self:    self,
		st:      st,
		tr:      tr,
		agent:   agent,
		replays: make(map[wire.TxID]*replaySlot),
		coWake:  make(chan struct{}, 1),
		closed:  make(chan struct{}),
		clock:   new(safetime.Clock),
	}
	go e.resendLoop()
	go e.coalesceLoop()
	return e
}

// SetLog arms write-ahead durability. Must be called before the engine
// receives traffic (node wiring time); the engine never closes the log.
func (e *Engine) SetLog(l *storage.Log) { e.log = l }

// SetIncarnation pins new coordinator pipelines to a durable per-process
// incarnation number (storage.Recovered.Incarnation) instead of the view
// epoch. The counter advances on every restart over the same store, so a
// crashed-and-restarted coordinator can never alias its previous life's
// pipelines at the followers — even when the restart beat the failure
// detector and the view epoch never bumped. Must be called before the
// engine receives traffic (node wiring time). A node must not alternate
// between durable and memory-only lifetimes: the counter and the epoch
// fallback draw from independent sequences.
func (e *Engine) SetIncarnation(n uint64) { e.incar = wire.Epoch(n) }

// SetClock replaces the engine's private hybrid-logical clock with the
// node-wide one (shared with the ownership engine and the RO snapshot
// path). Must be called before the engine receives traffic.
func (e *Engine) SetClock(c *safetime.Clock) {
	if c != nil {
		e.clock = c
	}
}

// Clock returns the engine's hybrid-logical clock.
func (e *Engine) Clock() *safetime.Clock { return e.clock }

// EnableTimestamps turns on commit timestamping: every R-INV carries a CTS
// minted from the clock and validated versions are published to the object
// version rings (the substrate of MVCC snapshot reads). Off by default —
// a deployment that never snapshot-reads skips the clock read on every
// commit and the ring insert on every validation. Must be called before
// the engine receives traffic (node wiring time) and uniformly across the
// cluster: a CTS-0 commit is invisible to the ring, so a mixed cluster
// would serve snapshots that miss other nodes' writes.
func (e *Engine) EnableTimestamps() { e.ts = true }

// Close flushes coalesced outbound messages and stops the background loops.
func (e *Engine) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.flushOut()
	})
}

// enqueue queues one outbound protocol message for peer-coalesced sending.
func (e *Engine) enqueue(to wire.NodeID, m wire.Msg) {
	if to == e.self || int(to) >= maxPeers {
		return
	}
	q := &e.coQ[to]
	q.mu.Lock()
	q.msgs = append(q.msgs, m)
	q.mu.Unlock()
	e.coDirty.Or(1 << to)
	if e.coCount.Add(1) >= coalesceFlushCount {
		e.flushOut()
		return
	}
	// Arm a timed flush unless one is already pending. The flag (not the
	// approximate count) carries the liveness guarantee: every enqueued
	// message is followed by a flush within coalesceInterval, because the
	// pending cycle disarms *before* it flushes — an enqueue racing with
	// the flush re-arms the next cycle.
	if !e.coArmed.Swap(true) {
		select {
		case e.coWake <- struct{}{}:
		default:
		}
	}
}

// flushOut drains the coalescer, sending each peer's queue as one batch.
// Only peers flagged dirty are visited; an enqueue racing with the swap
// re-flags its peer (the Or runs after the append), so at worst a queue is
// visited empty once or left for the already-armed next cycle.
func (e *Engine) flushOut() {
	dirty := e.coDirty.Swap(0)
	for dirty != 0 {
		to := bits.TrailingZeros64(dirty)
		dirty &^= 1 << to
		q := &e.coQ[to]
		q.mu.Lock()
		msgs := q.msgs
		q.msgs = nil
		q.mu.Unlock()
		if len(msgs) == 0 {
			continue
		}
		e.coCount.Add(int32(-len(msgs)))
		_ = transport.SendBatch(e.tr, wire.NodeID(to), msgs)
	}
}

// coalesceLoop flushes the outbound coalescer at most coalesceInterval after
// the first message of a batch was queued (count-triggered flushes happen
// inline in enqueue).
func (e *Engine) coalesceLoop() {
	for {
		select {
		case <-e.closed:
			return
		case <-e.coWake:
		}
		select {
		case <-e.closed:
			e.flushOut()
			return
		case <-time.After(coalesceInterval):
		}
		e.coArmed.Store(false) // before the flush: racing enqueues re-arm
		e.flushOut()
	}
}

// Register installs the engine's handlers on the router. The delivery-tick
// hook flushes the outbound coalescer the moment an inbound frame's messages
// are all handled, so a batch of R-INVs is answered by one batch of R-ACKs
// (and a batch of R-ACKs by one batch of R-VALs) with no timer in the loop.
func (e *Engine) Register(r *transport.Router) {
	r.HandleMany(e.Handle, wire.KindCommitInv, wire.KindCommitAck, wire.KindCommitVal)
	r.OnTick(e.flushOut)
}

// Handle dispatches one inbound reliable-commit message.
func (e *Engine) Handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.CommitInv:
		e.handleInv(from, v)
	case *wire.CommitAck:
		e.handleAck(v)
	case *wire.CommitVal:
		e.handleVal(v)
	}
}

// PendingReplays returns how many dead-coordinator replays are still
// unvalidated (0 in steady state; diagnostics and drain waits).
func (e *Engine) PendingReplays() int {
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	return len(e.replays)
}

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Committed:       e.stCommitted.Load(),
		Invalidations:   e.stInvals.Load(),
		Replays:         e.stReplays.Load(),
		Resends:         e.stResends.Load(),
		BytesReplicated: e.stBytes.Load(),
	}
}

func (e *Engine) pipe(w wire.Worker) *outPipe {
	return e.outPipes.GetOrCreate(w, func() *outPipe {
		// Incar pins the pipe to this coordinator incarnation: a restarted
		// node's pipes must not alias its previous life's at the followers
		// (wire.PipeID). The durable storage incarnation is the primary
		// source — it advances on every restart even when the restart beat
		// the failure detector and the view epoch never bumped. Memory-only
		// nodes fall back to the epoch read at pipe creation, which relies
		// on rejoining always bumping it.
		incar := e.incar
		if incar == 0 {
			incar = e.agent.Epoch()
		}
		return &outPipe{id: wire.PipeID{Node: e.self, Worker: w, Incar: incar}, nextLocal: 1, slots: make(map[uint64]*outSlot)}
	})
}

func (e *Engine) inPipe(id wire.PipeID) *inPipe {
	return e.inPipes.GetOrCreate(id, func() *inPipe {
		return &inPipe{stored: make(map[uint64]*wire.CommitInv), done: make(map[uint64]bool), waiting: make(map[uint64]*wire.CommitInv), unlogged: make(map[uint64]*wire.CommitInv)}
	})
}

// HasPending reports whether reliable commits involving obj are in flight at
// this coordinator. The ownership protocol NACKs transfers while true (§4.1).
// The check is an atomic counter read on the object itself — no engine state,
// no object lock — so it is safe from callers holding other object mutexes.
func (e *Engine) HasPending(obj wire.ObjectID) bool {
	o, ok := e.st.Get(obj)
	return ok && o.PendingCommits.Load() > 0
}

// PendingSlots returns the number of unvalidated coordinator slots.
func (e *Engine) PendingSlots() int {
	n := 0
	e.outPipes.Range(func(_ wire.Worker, p *outPipe) bool {
		p.mu.Lock()
		n += len(p.slots)
		p.mu.Unlock()
		return true
	})
	return n
}

// errSlotsPending drives WaitIdle's retry.Do poll; never escapes.
var errSlotsPending = errors.New("commit: coordinator slots pending")

// WaitIdle blocks until every coordinator slot validated or timeout elapses.
func (e *Engine) WaitIdle(timeout time.Duration) bool {
	e.flushOut() // push queued R-INVs out instead of waiting a tick
	if timeout <= 0 {
		return e.PendingSlots() == 0
	}
	err := retry.Do(nil, retry.Policy{
		InitialBackoff: 100 * time.Microsecond,
		MaxBackoff:     time.Millisecond,
		Jitter:         -1,
		MaxElapsed:     timeout,
	}, nil, func(int) error {
		if e.PendingSlots() > 0 {
			return errSlotsPending
		}
		return nil
	})
	return err == nil
}

// Commit starts the reliable commit of a locally committed transaction on
// worker w's pipeline and returns immediately (the pipeline never blocks the
// application, §5.2). The store must already hold the new t_data/t_version
// with t_state = Write; PendingCommits must already be incremented by the
// caller under the object locks (that counter is the engine's only per-object
// pending state — see HasPending). The returned channel closes when the slot
// is validated (tests and drain paths wait on it; applications do not).
func (e *Engine) Commit(w wire.Worker, updates []wire.Update, followers wire.Bitmap) (wire.TxID, <-chan struct{}) {
	return e.CommitTraced(w, updates, followers, nil)
}

// CommitTraced is Commit carrying a sampled transaction's trace recorder
// (nil for unsampled transactions — Trace.Event is nil-receiver-safe). The
// slot stamps "inv" after the R-INV fan-out and "ack"/"val"/"applied"
// through completeSlot, and offers the finished trace to the registry's
// slowest-N table.
func (e *Engine) CommitTraced(w wire.Worker, updates []wire.Update, followers wire.Bitmap, tr *obs.Trace) (wire.TxID, <-chan struct{}) {
	p := e.pipe(w)
	live := e.agent.View().Live
	epoch := e.agent.Epoch()
	followers = followers.Remove(e.self).Intersect(live)

	// Backpressure: a full pipeline means the followers lag; yield until
	// R-ACKs drain some slots. This bounds memory and keeps the pending
	// window of every object finite. The yield is paced through the shared
	// retry machinery (fixed cadence: the wait ends as soon as R-ACKs drain
	// a slot, so growth would only add drain latency); the Retrier is
	// allocated lazily because the fast path never blocks here.
	var bp *retry.Retrier
	for {
		p.mu.Lock()
		if len(p.slots) < MaxPipelineDepth {
			break
		}
		p.mu.Unlock()
		if bp == nil {
			bp = backpressurePolicy.Start()
		}
		wait, _ := bp.Next()
		_ = retry.Sleep(nil, wait, nil)
	}
	local := p.nextLocal
	p.nextLocal++
	tx := wire.TxID{Pipe: p.id, Local: local}

	// prev-VAL rule (§5.2): if the previous slot's R-VAL has already been
	// broadcast (or there is no previous slot), piggyback the bit so
	// followers seeing only part of the stream can apply immediately.
	// Otherwise make sure this slot's followers receive the previous
	// slot's R-VAL by adding them to its broadcast set.
	prevVal := true
	if prev, ok := p.slots[local-1]; ok && !prev.valed {
		prevVal = false
		prev.extraVal = prev.extraVal.Union(followers.Remove(e.self))
	}

	// The CTS is minted while p.mu is held, atomically with slot
	// registration: Watermark reads the clock first and then scans open
	// slots, so a timestamp must never exist without its slot being
	// visible — otherwise a watermark could vouch for a commit it has
	// never seen. CTS 0 (timestamping off) keeps the seed write path:
	// no clock read here, no ring publish at validation.
	var cts uint64
	if e.ts {
		cts = e.clock.Next()
	}

	inv := &wire.CommitInv{Tx: tx, Epoch: epoch, Followers: followers, PrevVal: prevVal, Updates: updates, CTS: cts}
	slot := &outSlot{tx: tx, inv: inv, followers: followers, done: make(chan struct{}), retr: resendPolicy.Start(), tr: tr}
	if wait, ok := slot.retr.Next(); ok {
		// Share one clock read between resend pacing and the obs phase
		// stamp: on this path time.Now() is the dominant obs cost.
		now := time.Now()
		slot.nextResend = now.Add(wait)
		if e.obs != nil {
			slot.openedAt = now
		}
	} else if e.obs != nil {
		slot.openedAt = time.Now()
	}
	p.slots[local] = slot
	p.order = append(p.order, slot)
	//lint:allow lockedsuffix p.mu is held: the backpressure loop above exits via break with the lock taken
	p.compactLocked()
	p.mu.Unlock()

	if followers.Count() == 0 {
		// No live followers (replication degree 1 or all backups dead):
		// the commit is trivially reliable.
		e.completeSlot(p, slot)
		return tx, slot.done
	}
	// Batched fan-out: marshal once for the byte accounting, then hand the
	// R-INV to the per-peer coalescer, so back-to-back pipeline slots to
	// the same follower ride one transport batch.
	enc := wire.GetBuf()
	enc.B = wire.AppendMarshal(enc.B, inv)
	size := uint64(len(enc.B))
	wire.PutBuf(enc)
	for _, n := range followers.Nodes() {
		e.enqueue(n, inv)
		e.stBytes.Add(size)
	}
	if ob := e.obs; ob != nil {
		ob.fanout.Add(uint64(followers.Count()))
	}
	tr.Event("inv")
	// Shallow pipeline = nothing behind this slot to coalesce with: push the
	// R-INV out now (plus any still-queued R-VALs). A busy pipeline leaves
	// the fan-out to the count threshold and the inbound R-ACK tick.
	p.mu.Lock()
	shallow := len(p.slots) <= 1
	p.mu.Unlock()
	if shallow {
		e.flushOut()
	}
	return tx, slot.done
}

// completeSlot validates a coordinator slot: flip local objects whose version
// is unchanged back to Valid, publish the committed versions into the MVCC
// rings, release pending counts, broadcast R-VAL. The slot is removed from
// the pipe only AFTER the object flips and ring publications: Watermark
// counts every present slot as open, so deleting first would let a
// watermark advance past a version that is not ring-published yet — a
// snapshot reader at that watermark would miss the commit.
func (e *Engine) completeSlot(p *outPipe, s *outSlot) {
	p.mu.Lock()
	if s.valed {
		p.mu.Unlock()
		return
	}
	s.valed = true
	extra := s.extraVal
	cts := s.inv.CTS
	p.mu.Unlock()

	s.tr.Event("ack")
	if ob := e.obs; ob != nil && !s.openedAt.IsZero() {
		ob.ackNS.RecordSince(s.openedAt)
	}

	for _, u := range s.inv.Updates {
		if o, ok := e.st.Get(u.Obj); ok {
			o.Mu.Lock()
			if o.TVersion == u.Version && o.TState == store.TWrite {
				o.SetTLocked(o.TVersion, store.TValid)
			}
			// Publish regardless of the version check: a superseding write
			// does not un-commit this version, and the ring insert is
			// version-sorted.
			o.PublishRingLocked(cts, u.Version, u.Data)
			if o.PendingCommits.Load() > 0 {
				o.PendingCommits.Add(-1)
			}
			o.Mu.Unlock()
		}
	}

	// Coordinator-side commit record carries the data: the coordinator
	// never logged a RecInv for its own write. Cluster-wide durability does
	// not depend on it (followers persisted the updates before acking);
	// it spares the restarted coordinator a data delta during state sync.
	s.tr.Event("val")
	e.recCommitted(s.inv.Updates, true, cts)

	val := &wire.CommitVal{Tx: s.tx, Epoch: s.inv.Epoch}
	for _, n := range s.followers.Union(extra).Nodes() {
		e.enqueue(n, val) // coalesced with neighbouring slots' R-VALs
	}
	e.stCommitted.Add(1)
	s.tr.Event("applied")
	if ob := e.obs; ob != nil {
		if !s.openedAt.IsZero() {
			ob.appliedNS.RecordSince(s.openedAt)
		}
		ob.reg.Traces.Offer(s.tr)
	}
	close(s.done)

	p.mu.Lock()
	delete(p.slots, s.tx.Local)
	p.mu.Unlock()
}

// Watermark computes this node's applied watermark W: every reliable commit
// this node is responsible for completing (its own open coordinator slots
// plus any dead-coordinator replays it carries) with CTS ≤ W has been
// validated — applied and ring-published at all followers and locally. The
// clock is read FIRST, then open slots lower the bound: a slot registered
// after the read minted its CTS after (hence above) the candidate, so the
// result is safe against concurrent commits. Taken over all live nodes
// (min, monotone — safetime.Tracker), W yields the snapshot-read safe-time.
func (e *Engine) Watermark() uint64 {
	w := e.clock.Next()
	e.outPipes.Range(func(_ wire.Worker, p *outPipe) bool {
		p.mu.Lock()
		// CTSs ascend along the registration FIFO, so after trimming
		// validated slots off the head the front entry carries the
		// pipe's minimum open CTS — no need to scan the rest.
		p.compactLocked()
		if len(p.order) > 0 {
			if cts := p.order[0].inv.CTS; cts != 0 && cts <= w {
				w = cts - 1
			}
		}
		p.mu.Unlock()
		return true
	})
	if e.replayN.Load() != 0 {
		e.replayMu.Lock()
		for _, rs := range e.replays {
			if cts := rs.inv.CTS; cts != 0 && cts <= w {
				w = cts - 1
			}
		}
		e.replayMu.Unlock()
	}
	return w
}

// ---------------------------------------------------------------------------
// Follower side.
// ---------------------------------------------------------------------------

func (e *Engine) handleInv(from wire.NodeID, m *wire.CommitInv) {
	if m.Epoch != e.agent.Epoch() {
		return
	}
	p := e.inPipe(m.Tx.Pipe)
	p.mu.Lock()
	if p.isDone(m.Tx.Local) || p.stored[m.Tx.Local] != nil {
		// Already applied (replay or duplicate): just re-ACK (§5.1). Still
		// routed through ackDurable so a slot whose first WAL append failed
		// gets it retried (unlogged); an already-durable slot re-ACKs
		// without re-appending, so resend storms cannot grow the WAL.
		e.ackDurable(p, from, m)
		p.mu.Unlock()
		return
	}
	// Pipeline ordering (§5.2): apply iff the previous slot was applied or
	// validated here, or the coordinator vouched via the prev-VAL bit.
	// Replayed R-INVs apply immediately: version checks keep them safe and
	// affected objects stay Invalid until their own R-VAL anyway.
	ready := m.Tx.Local == 1 || m.PrevVal || m.Replay ||
		p.isDone(m.Tx.Local-1) || p.stored[m.Tx.Local-1] != nil
	if !ready {
		p.waiting[m.Tx.Local] = m
		p.mu.Unlock()
		return
	}
	e.applyInvLocked(p, from, m)
	p.mu.Unlock()
}

// applyInvLocked applies one R-INV (p.mu held), ACKs, and drains any waiting
// successors that became applicable.
func (e *Engine) applyInvLocked(p *inPipe, from wire.NodeID, m *wire.CommitInv) {
	e.applyOneLocked(p, m)
	e.ackDurable(p, from, m)

	// A successor may have been waiting on this slot.
	for {
		next, ok := p.waiting[m.Tx.Local+1]
		if !ok {
			break
		}
		delete(p.waiting, m.Tx.Local+1)
		m = next
		e.applyOneLocked(p, m)
		e.ackDurable(p, m.Tx.Pipe.Node, m)
	}
}

// applyOneLocked installs one R-INV's updates and records it in the pipe
// (p.mu held). The ring entry is published at APPLY time, before the R-VAL:
// a reliable commit never aborts once the coordinator locally committed, so
// the version is already history — and publish-before-ACK is what lets a
// follower's ACK vouch that snapshot readers here can see the version.
func (e *Engine) applyOneLocked(p *inPipe, m *wire.CommitInv) {
	for _, u := range m.Updates {
		o, _ := e.st.GetOrCreate(u.Obj)
		o.Mu.Lock()
		if u.Version > o.TVersion {
			o.Data = u.Data
			o.SetTLocked(u.Version, store.TInvalid)
		}
		o.PublishRingLocked(m.CTS, u.Version, u.Data)
		o.Mu.Unlock()
	}
	e.clock.Update(m.CTS)
	if m.CTS > p.lastCTS {
		p.lastCTS = m.CTS
	}
	p.stored[m.Tx.Local] = m
	if e.log != nil && len(m.Updates) > 0 {
		p.unlogged[m.Tx.Local] = m
	}
	e.stInvals.Add(1)
}

// ackDurable is the single choke point between applying an R-INV and
// acknowledging it (zeuslint walfrozen; p.mu held): when durability is
// armed and the slot is still in p.unlogged, the updates are appended to
// the WAL — group-committed, durable on return — strictly before the R-ACK
// is queued, so a coordinator can never observe an acknowledgement for a
// write the follower could forget in a crash. A slot already logged (not
// in unlogged) re-ACKs without touching the WAL: duplicates and resend
// storms must not grow it. The ACK itself stays coalesced: one delivery
// tick's worth of R-ACKs leaves as a single transport batch.
func (e *Engine) ackDurable(p *inPipe, to wire.NodeID, m *wire.CommitInv) {
	if l := e.log; l != nil {
		if inv, needs := p.unlogged[m.Tx.Local]; needs {
			recs := make([]storage.Record, len(inv.Updates))
			for i, u := range inv.Updates {
				// Data aliases the applied update; safe because store data
				// is replace-only and WAL records are frozen at Append.
				recs[i] = storage.Record{Kind: storage.RecInv, Obj: u.Obj, Version: u.Version, Data: u.Data, CTS: inv.CTS}
			}
			if l.Append(recs...) != nil {
				// No durability, no ACK: stay silent and let the coordinator
				// resend (the slot stays in unlogged, so the retransmit
				// retries the append). Failing storage degrades liveness,
				// never safety.
				return
			}
			delete(p.unlogged, m.Tx.Local)
		}
	}
	e.enqueue(to, &wire.CommitAck{Tx: m.Tx, Epoch: m.Epoch, From: e.self, AppliedWM: p.lastCTS})
}

// recCommitted records validated versions in the WAL (best effort: the
// records only shorten state sync after a restart; R-INV durability is what
// acks depend on).
func (e *Engine) recCommitted(updates []wire.Update, withData bool, cts uint64) {
	l := e.log
	if l == nil || len(updates) == 0 {
		return
	}
	recs := make([]storage.Record, len(updates))
	for i, u := range updates {
		recs[i] = storage.Record{Kind: storage.RecCommit, Obj: u.Obj, Version: u.Version, CTS: cts}
		if withData {
			recs[i].Data = u.Data
		}
	}
	_ = l.Append(recs...)
}

func (e *Engine) handleVal(m *wire.CommitVal) {
	// No epoch filter: an R-VAL states the fact "every follower applied
	// Tx", which stays true across view changes. Dropping a VAL in flight
	// over an epoch bump would strand the stored R-INV (the coordinator
	// has already completed the slot and never re-VALs), pinning the
	// object Invalid forever; the t_version checks below keep stale VALs
	// harmless.
	p := e.inPipe(m.Tx.Pipe)
	p.mu.Lock()
	inv := p.stored[m.Tx.Local]
	delete(p.stored, m.Tx.Local)
	delete(p.unlogged, m.Tx.Local)
	p.markDone(m.Tx.Local)
	// The R-VAL may unblock a waiting successor (prev-VAL inclusion rule).
	if next, ok := p.waiting[m.Tx.Local+1]; ok {
		delete(p.waiting, m.Tx.Local+1)
		e.applyInvLocked(p, next.Tx.Pipe.Node, next)
	}
	p.mu.Unlock()
	if inv == nil {
		return // VAL for a slot this node did not follow: ordering-only
	}
	for _, u := range inv.Updates {
		if o, ok := e.st.Get(u.Obj); ok {
			o.Mu.Lock()
			if o.TVersion == u.Version && o.TState == store.TInvalid {
				o.SetTLocked(o.TVersion, store.TValid)
			}
			o.Mu.Unlock()
		}
	}
	// Follower-side commit record: version only, the matching RecInv
	// already carries the data.
	e.recCommitted(inv.Updates, false, inv.CTS)
}

func (p *inPipe) isDone(local uint64) bool {
	if local == 0 {
		return true
	}
	return local <= p.watermark || p.done[local]
}

func (p *inPipe) markDone(local uint64) {
	p.done[local] = true
	for p.done[p.watermark+1] {
		p.watermark++
		delete(p.done, p.watermark)
	}
}

// ---------------------------------------------------------------------------
// Coordinator ACK collection.
// ---------------------------------------------------------------------------

func (e *Engine) handleAck(m *wire.CommitAck) {
	// No epoch filter (mirrors handleVal): "follower F applied Tx" is a
	// fact regardless of the epoch the ACK crossed; completeness is always
	// evaluated against the *current* live set anyway.
	if m.Tx.Pipe.Node == e.self {
		p, ok := e.outPipes.Get(m.Tx.Pipe.Worker)
		if !ok {
			return
		}
		live := e.agent.View().Live
		self := wire.BitmapOf(e.self)
		var complete []*outSlot
		p.mu.Lock()
		if s := p.slots[m.Tx.Local]; s != nil {
			s.acked = s.acked.Add(m.From)
			need := s.followers.Intersect(live)
			if !s.valed && s.acked.Union(self).Intersect(need) == need {
				complete = append(complete, s)
			}
		}
		// AppliedWM coverage: the follower vouches for every slot on this
		// pipe with CTS ≤ AppliedWM (pipes apply in order, CTSs increase
		// along the pipe), so open slots whose individual R-ACK was lost
		// in flight are marked acked too. The walk follows the
		// registration-order FIFO and stops at the watermark — in the
		// common case (slots complete in order) it touches one or two
		// slots, never the whole map.
		p.compactLocked()
		if prev := p.swept[m.From]; m.AppliedWM > prev {
			i := sort.Search(len(p.order), func(i int) bool {
				return p.order[i].inv.CTS > prev
			})
			for ; i < len(p.order); i++ {
				s := p.order[i]
				if s.inv.CTS == 0 || s.inv.CTS > m.AppliedWM {
					break
				}
				if s.valed || !s.followers.Contains(m.From) || s.acked.Contains(m.From) {
					continue
				}
				s.acked = s.acked.Add(m.From)
				need := s.followers.Intersect(live)
				if s.acked.Union(self).Intersect(need) == need {
					complete = append(complete, s)
				}
			}
			if p.swept == nil {
				p.swept = make(map[wire.NodeID]uint64)
			}
			p.swept[m.From] = m.AppliedWM
		}
		p.mu.Unlock()
		for _, s := range complete {
			e.completeSlot(p, s)
		}
		return
	}
	// ACK for a transaction this node is replaying (dead coordinator).
	// Fast-path probe: replays are empty except around a view change, so
	// stray ACKs for foreign pipes skip the slow-path lock entirely.
	if e.replayN.Load() == 0 {
		return
	}
	e.replayMu.Lock()
	rs := e.replays[m.Tx]
	if rs != nil {
		rs.acked = rs.acked.Add(m.From)
		if rs.acked.Intersect(rs.followers) == rs.followers && !rs.finished {
			rs.finished = true
			e.finishReplayLocked(rs)
		}
	}
	e.replayMu.Unlock()
}

// ---------------------------------------------------------------------------
// Recovery: replaying pending reliable commits of dead coordinators (§5.1).
// ---------------------------------------------------------------------------

type replaySlot struct {
	inv       *wire.CommitInv
	followers wire.Bitmap
	acked     wire.Bitmap
	finished  bool
	// Crash-aware resend pacing (see resendPolicy).
	retr       *retry.Retrier
	nextResend time.Time
	// since stamps replay creation for the watchdog's age scan.
	since time.Time
}

// OnViewChange prunes dead followers from this coordinator's open slots and
// replays every stored R-INV of dead coordinators. It reports recovery-done
// to the membership agent once all replays validate.
func (e *Engine) OnViewChange(next wire.View, removed wire.Bitmap) {
	if removed.Count() == 0 {
		return
	}
	// Drain the coalescer first so recovery's direct sends below cannot
	// overtake still-queued pre-change messages on the same links.
	e.flushOut()
	live := next.Live
	epoch := next.Epoch

	// 1. Own open slots: rewrite epochs, drop dead followers, re-send to
	// the survivors (they may have missed the original in the old epoch).
	var toComplete []struct {
		p *outPipe
		s *outSlot
	}
	e.outPipes.Range(func(_ wire.Worker, p *outPipe) bool {
		p.mu.Lock()
		for _, s := range p.slots {
			s.followers = s.followers.Intersect(live)
			// Copy-on-write: the original R-INV may still be in flight
			// on transport goroutines.
			inv := *s.inv
			inv.Followers = s.followers
			inv.Epoch = epoch
			inv.Replay = true
			s.inv = &inv
			if s.acked.Intersect(s.followers) == s.followers {
				toComplete = append(toComplete, struct {
					p *outPipe
					s *outSlot
				}{p, s})
			} else {
				for _, n := range s.followers.Nodes() {
					if !s.acked.Contains(n) {
						_ = e.tr.Send(n, s.inv)
					}
				}
			}
		}
		p.mu.Unlock()
		return true
	})
	for _, c := range toComplete {
		e.completeSlot(c.p, c.s)
	}

	// 2. Stored R-INVs of dead coordinators: replay them.
	type item struct {
		pipe wire.PipeID
		inv  *wire.CommitInv
	}
	var items []item
	e.inPipes.Range(func(id wire.PipeID, p *inPipe) bool {
		if live.Contains(id.Node) {
			return true
		}
		p.mu.Lock()
		for _, inv := range p.stored {
			items = append(items, item{pipe: id, inv: inv})
		}
		p.mu.Unlock()
		return true
	})
	e.replayMu.Lock()
	e.replayEpoch = epoch
	for _, it := range items {
		inv := *it.inv // shallow copy; updates shared (immutable)
		inv.Epoch = epoch
		inv.Replay = true
		inv.Followers = it.inv.Followers.Intersect(live).Remove(e.self)
		rs := &replaySlot{inv: &inv, followers: inv.Followers, retr: resendPolicy.Start(), since: time.Now()}
		if wait, ok := rs.retr.Next(); ok {
			rs.nextResend = time.Now().Add(wait)
		}
		if _, dup := e.replays[inv.Tx]; !dup {
			e.replayN.Add(1)
		}
		e.replays[inv.Tx] = rs
		e.stReplays.Add(1)
	}
	// Snapshot inv/followers under replayMu: the resendLoop rewrites both
	// fields (also under replayMu), so they must not be read lock-free below.
	type replayOut struct {
		rs        *replaySlot
		inv       *wire.CommitInv
		followers wire.Bitmap
	}
	replays := make([]replayOut, 0, len(e.replays))
	for _, rs := range e.replays {
		replays = append(replays, replayOut{rs: rs, inv: rs.inv, followers: rs.followers})
	}
	e.replayMu.Unlock()

	for _, ro := range replays {
		if ro.followers.Count() == 0 {
			e.replayMu.Lock()
			if !ro.rs.finished {
				ro.rs.finished = true
				e.finishReplayLocked(ro.rs)
			}
			e.replayMu.Unlock()
			continue
		}
		for _, n := range ro.followers.Nodes() {
			_ = e.tr.Send(n, ro.inv)
		}
	}
	e.maybeReportDone()
}

// finishReplayLocked validates a replayed transaction (replayMu held): the
// local stored copy flips Valid, survivors get R-VAL.
func (e *Engine) finishReplayLocked(rs *replaySlot) {
	tx := rs.inv.Tx
	delete(e.replays, tx)
	e.replayN.Add(-1)
	epoch := rs.inv.Epoch
	followers := rs.followers
	go func() {
		// Validate locally exactly like a follower receiving R-VAL.
		e.handleVal(&wire.CommitVal{Tx: tx, Epoch: epoch})
		for _, n := range followers.Nodes() {
			if n != e.self {
				_ = e.tr.Send(n, &wire.CommitVal{Tx: tx, Epoch: epoch})
			}
		}
		e.maybeReportDone()
	}()
}

// resendLoop is the liveness backstop behind the epoch filter on R-INVs:
// handleInv silently drops an invalidation whose epoch does not match the
// local agent's, so an R-INV in flight across a view change is lost at the
// protocol layer even though the transport delivered it (the two agents bump
// epochs asynchronously). Every unacknowledged coordinator slot and replay
// slot is therefore periodically re-broadcast with the *current* epoch and
// the Replay bit (version checks make re-application idempotent and
// order-independent, §5.1), and completeness is re-evaluated against the
// live set so slots whose missing followers died still validate.
func (e *Engine) resendLoop() {
	// Epoch mismatches can only arise around a view change (the agents bump
	// epochs asynchronously but settle quickly), so the resender works in a
	// grace window after each epoch change — extended while it still finds
	// unacknowledged slots — and is completely idle in steady state. Under
	// saturation slots legitimately sit unvalidated for tens of
	// milliseconds behind follower backlogs; resending those would double
	// the message volume exactly when the pipeline is busiest.
	const (
		epochGrace = 50 * time.Millisecond
		activeTick = 500 * time.Microsecond // while recovering
		idleTick   = 10 * time.Millisecond  // steady state: just watch the epoch
	)
	lastEpoch := e.agent.Epoch()
	var graceUntil time.Time
	t := time.NewTimer(idleTick)
	defer t.Stop()
	for {
		var now time.Time
		select {
		case <-e.closed:
			return
		case now = <-t.C:
		}
		view := e.agent.View()
		live, epoch := view.Live, view.Epoch
		if epoch != lastEpoch {
			lastEpoch = epoch
			graceUntil = now.Add(epochGrace)
		}
		if now.After(graceUntil) && e.replayN.Load() == 0 {
			t.Reset(idleTick)
			continue
		}
		t.Reset(activeTick)

		type send struct {
			to  wire.NodeID
			inv *wire.CommitInv
		}
		var sends []send
		var complete []struct {
			p *outPipe
			s *outSlot
		}

		e.outPipes.Range(func(_ wire.Worker, p *outPipe) bool {
			p.mu.Lock()
			for _, s := range p.slots {
				if s.valed || now.Before(s.nextResend) {
					continue
				}
				need := s.followers.Intersect(live)
				if s.acked.Union(wire.BitmapOf(e.self)).Intersect(need) == need {
					complete = append(complete, struct {
						p *outPipe
						s *outSlot
					}{p, s})
					continue
				}
				wait, _ := s.retr.Next()
				s.nextResend = now.Add(wait)
				inv := *s.inv // copy-on-write: the original may be in flight
				inv.Epoch = epoch
				inv.Replay = true
				inv.Followers = need
				s.inv = &inv
				for _, n := range need.Nodes() {
					if n != e.self && !s.acked.Contains(n) {
						sends = append(sends, send{n, s.inv})
					}
				}
			}
			p.mu.Unlock()
			return true
		})
		for _, c := range complete {
			e.completeSlot(c.p, c.s)
		}

		e.replayMu.Lock()
		for _, rs := range e.replays {
			if rs.finished || now.Before(rs.nextResend) {
				continue
			}
			need := rs.followers.Intersect(live)
			if rs.acked.Intersect(need) == need {
				rs.finished = true
				rs.followers = need
				e.finishReplayLocked(rs)
				continue
			}
			wait, _ := rs.retr.Next()
			rs.nextResend = now.Add(wait)
			inv := *rs.inv
			inv.Epoch = epoch
			rs.inv = &inv
			for _, n := range need.Nodes() {
				if n != e.self && !rs.acked.Contains(n) {
					sends = append(sends, send{n, rs.inv})
				}
			}
		}
		e.replayMu.Unlock()

		if len(sends) > 0 {
			// Still-unacked slots right after an epoch change: keep the
			// window open until the protocol quiesces.
			graceUntil = now.Add(epochGrace)
			e.flushOut() // keep per-link FIFO with queued originals
		}
		for _, s := range sends {
			e.stResends.Add(1)
			_ = e.tr.Send(s.to, s.inv)
		}
	}
}

// maybeReportDone reports recovery completion once no replays remain.
func (e *Engine) maybeReportDone() {
	e.replayMu.Lock()
	n := len(e.replays)
	epoch := e.replayEpoch
	e.replayMu.Unlock()
	if n == 0 && epoch != 0 {
		e.agent.ReportRecoveryDone(epoch)
	}
}
