package commit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"zeus/internal/wire"
)

// TestDumpStateShowsWedgedSlot pins the wedge-dump format: a coordinator
// slot stranded by an unreachable (but still-live-in-the-view) follower must
// surface in DumpState with its pipe, slot and the object's pending debt —
// that is exactly the trace the ZEUS_WEDGE_DUMP torture hook relies on.
func TestDumpStateShowsWedgedSlot(t *testing.T) {
	c := newTestCluster(t, 2)
	c.seedObject(7, 0, wire.BitmapOf(1))
	// Strand the R-INV: the follower stays in the view (no Fail report) but
	// never sees the message or ACKs, so the slot stays open and
	// PendingCommits stays pinned. SetDown drops frames before the inbox;
	// Close would race its select and occasionally let one message through.
	c.hub.SetDown(1, true)

	_, done := c.localWrite(0, 0, []wire.ObjectID{7}, "wedge")
	select {
	case <-done:
		t.Fatal("slot validated despite the unreachable follower")
	case <-time.After(10 * time.Millisecond):
	}

	var buf bytes.Buffer
	c.nodes[0].eng.DumpState(&buf)
	out := buf.String()
	for _, want := range []string{
		"commit.Engine node=0",
		"outPipe worker=0",
		"slot local=1",
		"object id=7",
		"tstate=Write",
		"pending=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	// A healthy engine dumps no slots and no indebted objects.
	var clean bytes.Buffer
	c.nodes[1].eng.DumpState(&clean)
	for _, stale := range []string{"outPipe", "object id="} {
		if strings.Contains(clean.String(), stale) {
			t.Errorf("idle follower dump shows %q:\n%s", stale, clean.String())
		}
	}
}
