package commit

import (
	"fmt"
	"time"

	"zeus/internal/obs"
	"zeus/internal/wire"
)

// engineObs is the commit engine's cached observability bundle: every handle
// the hot path records into is resolved once here (wiring time), so record
// sites are a nil check plus an atomic — no registry lookup, no allocation
// (zeuslint obsrecord).
type engineObs struct {
	reg *obs.Registry

	// ackNS is the slot-open → fully-acked latency (the replication round
	// trip the paper's §5.2 pipeline hides from the application); appliedNS
	// extends it through local validation, ring publish and the R-VAL
	// fan-out — the full open→acked→validated→applied phase chain.
	ackNS     *obs.Histogram
	appliedNS *obs.Histogram
	// fanout counts R-INVs enqueued to followers (per-follower, so the
	// ratio to committed transactions is the effective replication degree).
	fanout *obs.Counter
}

// SetObs wires the observability registry. Must be called before the engine
// receives traffic (node wiring time), like SetLog/SetClock: record sites
// read e.obs without synchronization. Quantities the engine already counts
// in its st* atomics are pull-scraped via CounterFunc — never double-counted
// on the hot path.
func (e *Engine) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	b := &engineObs{
		reg:       r,
		ackNS:     r.Histogram("cmt_ack_ns"),
		appliedNS: r.Histogram("cmt_applied_ns"),
		fanout:    r.Counter("cmt_rinv_fanout_total"),
	}
	r.CounterFunc("cmt_committed_total", e.stCommitted.Load)
	r.CounterFunc("cmt_invals_total", e.stInvals.Load)
	r.CounterFunc("cmt_replays_total", e.stReplays.Load)
	r.CounterFunc("cmt_resends_total", e.stResends.Load)
	r.CounterFunc("cmt_bytes_total", e.stBytes.Load)
	r.GaugeFunc("cmt_open_slots", func() int64 { return int64(e.PendingSlots()) })
	r.GaugeFunc("cmt_pending_replays", func() int64 { return int64(e.PendingReplays()) })
	e.obs = b
}

// Obs returns the engine's registry (nil when observability is disabled).
func (e *Engine) Obs() *obs.Registry {
	if e.obs == nil {
		return nil
	}
	return e.obs.reg
}

// ---------------------------------------------------------------------------
// Watchdog: the in-flight promotion of DumpState.
// ---------------------------------------------------------------------------

// StartWatchdog arms the slot-age scanner: any coordinator slot, stored
// R-INV (pending-commit debt at a follower) or dead-coordinator replay older
// than age emits ONE structured incident into the registry's IncidentLog,
// with the engine state DumpState would show post-mortem — so a wedge in the
// CI race gate self-diagnoses while it is still observable. Requires SetObs;
// returns false if observability is off or age is zero. The scanner stops
// with the engine (Close).
func (e *Engine) StartWatchdog(age time.Duration) bool {
	if e.obs == nil || age <= 0 {
		return false
	}
	go e.watchdogLoop(age)
	return true
}

// watchdogLoop scans at a quarter of the age threshold (clamped to [1ms,1s])
// and fires once per offender: an offender already reported is skipped while
// it persists and forgotten once it resolves, so a genuinely new wedge on
// the same slot refires.
func (e *Engine) watchdogLoop(age time.Duration) {
	tick := age / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	reported := make(map[string]bool)
	t := time.NewTimer(tick)
	defer t.Stop()
	for {
		select {
		case <-e.closed:
			return
		case <-t.C:
		}
		e.watchdogScan(time.Now(), age, reported)
		t.Reset(tick)
	}
}

// watchdogScan is one pass over the engine's debt surface. Split out for the
// fires-once test, which drives scans directly instead of waiting on the
// timer.
func (e *Engine) watchdogScan(now time.Time, age time.Duration, reported map[string]bool) {
	log := e.obs.reg.Incidents
	epoch := e.agent.Epoch()
	alive := make(map[string]bool)

	report := func(key, kind, detail string) {
		alive[key] = true
		if reported[key] {
			return
		}
		reported[key] = true
		log.Report(kind, detail)
	}

	e.outPipes.Range(func(wk wire.Worker, p *outPipe) bool {
		p.mu.Lock()
		for _, s := range p.slots {
			if s.valed || s.openedAt.IsZero() || now.Sub(s.openedAt) < age {
				continue
			}
			report(fmt.Sprintf("slot:%v", s.tx), "open-slot",
				fmt.Sprintf("tx=%v age=%s followers=%v acked=%v epoch=%d updates=%d",
					s.tx, now.Sub(s.openedAt).Round(time.Millisecond),
					s.followers.Nodes(), s.acked.Nodes(), epoch, len(s.inv.Updates)))
		}
		p.mu.Unlock()
		return true
	})

	// Stored R-INV debt ages from when THIS scanner first saw it (wdSeen is
	// scan-owned — the apply/validate hot paths never stamp anything), so a
	// stored slot must survive at least two scan ticks plus the threshold
	// before it fires. Resolved entries are swept here too.
	e.inPipes.Range(func(id wire.PipeID, p *inPipe) bool {
		p.mu.Lock()
		for local := range p.wdSeen {
			if p.stored[local] == nil {
				delete(p.wdSeen, local) // resolved debt; drop the stamp
			}
		}
		for local, inv := range p.stored {
			at, ok := p.wdSeen[local]
			if !ok {
				if p.wdSeen == nil {
					p.wdSeen = make(map[uint64]time.Time)
				}
				p.wdSeen[local] = now
				continue
			}
			if now.Sub(at) < age {
				continue
			}
			report(fmt.Sprintf("stored:%v/%d", id, local), "stored-rinv",
				fmt.Sprintf("coord=%d worker=%d local=%d age=%s watermark=%d epoch=%d invEpoch=%d replay=%v",
					id.Node, id.Worker, local, now.Sub(at).Round(time.Millisecond),
					p.watermark, epoch, inv.Epoch, inv.Replay))
		}
		p.mu.Unlock()
		return true
	})

	e.replayMu.Lock()
	for tx, rs := range e.replays {
		if rs.finished || rs.since.IsZero() || now.Sub(rs.since) < age {
			continue
		}
		report(fmt.Sprintf("replay:%v", tx), "replay-stuck",
			fmt.Sprintf("tx=%v age=%s followers=%v acked=%v epoch=%d",
				tx, now.Sub(rs.since).Round(time.Millisecond),
				rs.followers.Nodes(), rs.acked.Nodes(), epoch))
	}
	e.replayMu.Unlock()

	// Forget resolved offenders so a later wedge on the same key refires.
	for key := range reported {
		if !alive[key] {
			delete(reported, key)
		}
	}
}
