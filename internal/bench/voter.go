package bench

import (
	"math/rand"

	"zeus/internal/dbapi"
)

// Voter is the phone-voting benchmark of §8.4 (Table 2: 3 tables, 9 columns,
// 1 transaction type, popularity skew). A vote updates two objects: the
// voter's history (vote-count limit) and the contestant's running total. The
// load balancer routes votes by contestant, so each contestant's votes
// execute on its owner node; moving a popular contestant (and its voters) to
// another node is the object-migration experiment of Figures 10–12.
type Voter struct {
	cfg VoterConfig
	ids IDSpace
}

// VoterConfig sizes the benchmark.
type VoterConfig struct {
	Nodes         int
	Contestants   int
	VotersPerNode int
	// VoteLimit caps votes per voter (per the benchmark's phone rules);
	// 0 means unlimited.
	VoteLimit uint64
	// HotContestant, when ≥ 0, receives HotFrac of all votes (popularity
	// skew; the Figure 11 experiment).
	HotContestant int
	HotFrac       float64
	PayloadSize   int
}

// DefaultVoterConfig returns a simulation-scaled configuration (the paper
// uses 20 contestants, 1 M voters).
func DefaultVoterConfig(nodes int) VoterConfig {
	return VoterConfig{
		Nodes:         nodes,
		Contestants:   20,
		VotersPerNode: 20000,
		HotContestant: -1,
		PayloadSize:   32,
	}
}

// Object kinds.
const (
	vtContestant = iota
	vtVoter
)

// NewVoter builds the workload.
func NewVoter(cfg VoterConfig) *Voter {
	if cfg.Contestants <= 0 {
		cfg.Contestants = 20
	}
	if cfg.VotersPerNode <= 0 {
		cfg.VotersPerNode = 20000
	}
	if cfg.PayloadSize < 8 {
		cfg.PayloadSize = 32
	}
	return &Voter{cfg: cfg, ids: IDSpace{Nodes: cfg.Nodes}}
}

// ContestantObj returns the contestant's total object; contestants are
// homed round-robin.
func (v *Voter) ContestantObj(c int) uint64 {
	return v.ids.Obj(vtContestant, c, c%v.cfg.Nodes)
}

// ContestantHome returns a contestant's initial home node.
func (v *Voter) ContestantHome(c int) int { return c % v.cfg.Nodes }

// VoterObj returns a voter's history object. Voters are homed with the
// contestant they (mostly) vote for, which is what the load balancer's
// sticky routing produces.
func (v *Voter) VoterObj(node, i int) uint64 {
	return v.ids.Obj(vtVoter, i, node)
}

// VoterObjects lists every voter object homed at node — the bulk-migration
// experiments (Figures 10 and 11) move these between nodes.
func (v *Voter) VoterObjects(node int) []uint64 {
	out := make([]uint64, 0, v.cfg.VotersPerNode)
	for i := 0; i < v.cfg.VotersPerNode; i++ {
		out = append(out, v.VoterObj(node, i))
	}
	return out
}

// Seed installs contestants and voters.
func (v *Voter) Seed(seed Seeder) {
	for c := 0; c < v.cfg.Contestants; c++ {
		seed(v.ContestantObj(c), v.ContestantHome(c), Pad(0, v.cfg.PayloadSize))
	}
	for node := 0; node < v.cfg.Nodes; node++ {
		for i := 0; i < v.cfg.VotersPerNode; i++ {
			seed(v.VoterObj(node, i), node, Pad(0, v.cfg.PayloadSize))
		}
	}
}

// pickContestant applies the popularity skew: contestants homed at this
// node, with the hot contestant (if configured and homed here) favoured.
func (v *Voter) pickContestant(node int, rng *rand.Rand) int {
	if v.cfg.HotContestant >= 0 && v.ContestantHome(v.cfg.HotContestant) == node &&
		rng.Float64() < v.cfg.HotFrac {
		return v.cfg.HotContestant
	}
	// A contestant whose home is this node (LB routes votes by contestant).
	n := v.cfg.Contestants
	for i := 0; i < 32; i++ {
		c := rng.Intn(n)
		if v.ContestantHome(c) == node {
			return c
		}
	}
	return node % n
}

// MakeOp returns the single vote transaction: bump the voter's history and
// the contestant's total (2 objects, §8.4).
func (v *Voter) MakeOp(node int, db dbapi.DB) Op {
	return func(worker int, rng *rand.Rand) error {
		c := v.pickContestant(node, rng)
		voter := v.VoterObj(node, rng.Intn(v.cfg.VotersPerNode))
		contestant := v.ContestantObj(c)
		return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
			hv, err := tx.Get(voter)
			if err != nil {
				return err
			}
			votes := FromU64(hv)
			if v.cfg.VoteLimit > 0 && votes >= v.cfg.VoteLimit {
				return nil // over the limit: vote rejected, tx still commits
			}
			cv, err := tx.Get(contestant)
			if err != nil {
				return err
			}
			if err := tx.Set(voter, Pad(votes+1, v.cfg.PayloadSize)); err != nil {
				return err
			}
			return tx.Set(contestant, Pad(FromU64(cv)+1, v.cfg.PayloadSize))
		})
	}
}
