// Package bench implements the paper's evaluation workloads (§8): the
// cellular Handovers benchmark, Smallbank, TATP and Voter (Table 2), the
// locality analyses (Boston handovers, Venmo graph, TPC-C closed form), and
// a generic runner that measures throughput and abort rates against any
// dbapi.DB — Zeus or the distributed-commit baseline.
package bench

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/dbapi"
	"zeus/internal/obs"
)

// U64 encodes a counter value as an object payload.
func U64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// FromU64 decodes a counter payload.
func FromU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Pad returns a payload of the given size with the counter in front —
// workloads with large contexts (Handovers commits ~400 B per transaction)
// use it to keep replication costs realistic.
func Pad(v uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// Result summarizes one benchmark run.
type Result struct {
	Name     string
	Duration time.Duration
	Ops      uint64 // committed transactions
	Failures uint64 // operations that gave up (non-conflict errors)
	// PerNode is the committed-op count per node index.
	PerNode []uint64
}

// Tps returns committed transactions per second.
func (r Result) Tps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// TpsPerNode returns throughput divided by node count.
func (r Result) TpsPerNode() float64 {
	if len(r.PerNode) == 0 {
		return r.Tps()
	}
	return r.Tps() / float64(len(r.PerNode))
}

// Op is one benchmark operation: it runs one transaction (including
// retry-on-conflict, typically via dbapi.Run) on the given worker.
type Op func(worker int, rng *rand.Rand) error

// Runner drives a fixed number of operations per worker on every node.
type Runner struct {
	// Name labels the result.
	Name string
	// DBs holds one dbapi.DB per participating node.
	DBs []dbapi.DB
	// WorkersPerNode is the number of concurrent workers per node.
	WorkersPerNode int
	// OpsPerWorker is how many operations each worker executes.
	OpsPerWorker int
	// WarmupPerWorker operations run untimed before measurement starts
	// (defaults to OpsPerWorker/4), absorbing allocator and scheduler
	// warm-up so that back-to-back configurations compare fairly.
	WarmupPerWorker int
	// Seed makes workload choices reproducible.
	Seed int64
}

// Run executes makeOp(node, db) once per (node, worker), running the
// returned Op OpsPerWorker times, and aggregates the results.
func (r Runner) Run(makeOp func(node int, db dbapi.DB) Op) Result {
	return r.RunCounted(makeOp)
}

// TimedRunner is like Runner but runs for a fixed duration; used by the
// timeline experiments (Voter Figures 10/11, Nginx Figure 15).
type TimedRunner struct {
	Name           string
	DBs            []dbapi.DB
	WorkersPerNode int
	Duration       time.Duration
	Seed           int64
	// Latencies, when set, receives every committed op's service latency —
	// the experiments report the same _p50/_p99/_p999 fields the load
	// harness gates on instead of ad-hoc sorted-slice percentiles. (This is
	// closed-loop timing: op start to op return. Open-loop intended-send
	// measurement lives in internal/loadgen.)
	Latencies *obs.Histogram
}

// RunTimed executes ops until the duration expires, sampling per-node
// throughput every interval. It returns the samples (ops committed per node
// per interval) and the total.
func (r TimedRunner) RunTimed(makeOp func(node int, db dbapi.DB) Op, interval time.Duration) (samples [][]uint64, total Result) {
	if r.WorkersPerNode <= 0 {
		r.WorkersPerNode = 4
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	counters := make([]*atomic.Uint64, len(r.DBs))
	for i := range counters {
		counters[i] = &atomic.Uint64{}
	}
	var failures atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for node := range r.DBs {
		op := makeOp(node, r.DBs[node])
		for w := 0; w < r.WorkersPerNode; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(r.Seed + int64(node)*1000 + int64(w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					if err := op(w, rng); err != nil {
						failures.Add(1)
						continue
					}
					if r.Latencies != nil {
						r.Latencies.RecordSince(t0)
					}
					counters[node].Add(1)
				}
			}(node, w)
		}
	}
	start := time.Now()
	prev := make([]uint64, len(r.DBs))
	for time.Since(start) < r.Duration {
		time.Sleep(interval)
		row := make([]uint64, len(r.DBs))
		for i, c := range counters {
			cur := c.Load()
			row[i] = cur - prev[i]
			prev[i] = cur
		}
		samples = append(samples, row)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	perNode := make([]uint64, len(r.DBs))
	var ops uint64
	for i, c := range counters {
		perNode[i] = c.Load()
		ops += perNode[i]
	}
	return samples, Result{
		Name: r.Name, Duration: elapsed, Ops: ops,
		Failures: failures.Load(), PerNode: perNode,
	}
}

// RunCounted is the counting engine behind Run.
func (r Runner) RunCounted(makeOp func(node int, db dbapi.DB) Op) Result {
	if r.WorkersPerNode <= 0 {
		r.WorkersPerNode = 4
	}
	if r.OpsPerWorker <= 0 {
		r.OpsPerWorker = 100
	}
	warmup := r.WarmupPerWorker
	if warmup == 0 {
		warmup = r.OpsPerWorker / 4
	}
	counters := make([]*atomic.Uint64, len(r.DBs))
	for i := range counters {
		counters[i] = &atomic.Uint64{}
	}
	var failures atomic.Uint64
	var wg sync.WaitGroup
	ops := make([]Op, len(r.DBs))
	for node := range r.DBs {
		ops[node] = makeOp(node, r.DBs[node])
	}
	// Warm-up phase: untimed, uncounted.
	for node := range r.DBs {
		for w := 0; w < r.WorkersPerNode; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(r.Seed + 7777 + int64(node)*1000 + int64(w)))
				for i := 0; i < warmup; i++ {
					_ = ops[node](w, rng)
				}
			}(node, w)
		}
	}
	wg.Wait()
	start := time.Now()
	for node := range r.DBs {
		for w := 0; w < r.WorkersPerNode; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(r.Seed + int64(node)*1000 + int64(w)))
				for i := 0; i < r.OpsPerWorker; i++ {
					if err := ops[node](w, rng); err != nil {
						failures.Add(1)
						continue
					}
					counters[node].Add(1)
				}
			}(node, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	perNode := make([]uint64, len(r.DBs))
	var total uint64
	for i, c := range counters {
		perNode[i] = c.Load()
		total += perNode[i]
	}
	return Result{
		Name: r.Name, Duration: elapsed, Ops: total,
		Failures: failures.Load(), PerNode: perNode,
	}
}
