package bench

import (
	"math/rand"
	"sync"

	"zeus/internal/dbapi"
	"zeus/internal/mobility"
)

// Handovers is the cellular control-plane benchmark introduced by the paper
// (§8.1; Table 2: 5 tables, 36 columns, 4 transaction types, 0 % reads,
// ~400 B committed per transaction). The entities are UE (phone) contexts
// and base-station contexts; the operations are:
//
//   - service request — the phone wakes up: one write transaction over the
//     UE context and its current station's context;
//   - release — the phone sleeps: same shape;
//   - handover — the phone moves: two write transactions (start at the old
//     station, finish at the new one), per the 3GPP flow.
//
// Mobility follows internal/mobility: a handover is remote (requires an
// ownership change in Zeus) when the two stations live on different nodes.
// Ideal mode keeps every handover within the local partition — the
// "all-local (ideal)" line of Figure 7.
type Handovers struct {
	cfg HandoverConfig
	ids IDSpace
	mob *mobility.Model

	// userState tracks each user's current station, partitioned per
	// (node, worker) so workers never share users (the load balancer
	// guarantees per-user locality, §3.1).
	mu          sync.Mutex
	userStation map[int]mobility.StationID
}

// HandoverConfig sizes the benchmark.
type HandoverConfig struct {
	Nodes        int
	UsersPerNode int
	// HandoverRatio is the fraction of operations that are handovers
	// (2.5 % typical, 5 % doubled mobility, §8.1).
	HandoverRatio float64
	// Ideal pins every handover inside the local partition (Figure 7's
	// all-local ideal).
	Ideal bool
	// CtxSize is the committed payload per transaction (~400 B, §8.1).
	CtxSize int
	// Mobility drives station choices; defaults to the Boston-like model.
	Mobility mobility.Config
}

// DefaultHandoverConfig returns a simulation-scaled configuration.
func DefaultHandoverConfig(nodes int) HandoverConfig {
	return HandoverConfig{
		Nodes:         nodes,
		UsersPerNode:  5000,
		HandoverRatio: 0.025,
		CtxSize:       400,
		Mobility:      mobility.DefaultConfig(nodes),
	}
}

// Object kinds.
const (
	hoUserCtx = iota
	hoStationCtx
)

// NewHandovers builds the workload.
func NewHandovers(cfg HandoverConfig) *Handovers {
	if cfg.UsersPerNode <= 0 {
		cfg.UsersPerNode = 5000
	}
	if cfg.CtxSize < 8 {
		cfg.CtxSize = 400
	}
	cfg.Mobility.Nodes = cfg.Nodes
	return &Handovers{
		cfg:         cfg,
		ids:         IDSpace{Nodes: cfg.Nodes},
		mob:         mobility.New(cfg.Mobility),
		userStation: make(map[int]mobility.StationID),
	}
}

// Mobility exposes the underlying model (the locality analysis uses it).
func (h *Handovers) Mobility() *mobility.Model { return h.mob }

// stationHome returns the node hosting a station under the geographic
// sharding.
func (h *Handovers) stationHome(s mobility.StationID) int { return h.mob.NodeOf(s) }

// stationObj maps a station to its context object, homed geographically.
func (h *Handovers) stationObj(s mobility.StationID) uint64 {
	return h.ids.Obj(hoStationCtx, int(s), h.stationHome(s))
}

// userObj maps a user to its context object, homed at its original node.
func (h *Handovers) userObj(node, u int) uint64 {
	return h.ids.Obj(hoUserCtx, u, node)
}

// Seed installs every user context (homed at its node) and every station
// context (homed geographically).
func (h *Handovers) Seed(seed Seeder) {
	for node := 0; node < h.cfg.Nodes; node++ {
		for u := 0; u < h.cfg.UsersPerNode; u++ {
			seed(h.userObj(node, u), node, Pad(uint64(u), h.cfg.CtxSize))
		}
	}
	for s := 0; s < h.mob.Stations(); s++ {
		st := mobility.StationID(s)
		seed(h.stationObj(st), h.stationHome(st), Pad(uint64(s), h.cfg.CtxSize))
	}
}

// localStations returns a station on the given node's partition.
func (h *Handovers) localStation(node int, rng *rand.Rand) mobility.StationID {
	for {
		s := mobility.StationID(rng.Intn(h.mob.Stations()))
		if h.stationHome(s) == node {
			return s
		}
	}
}

// curStation returns (and lazily initializes) a user's current station.
func (h *Handovers) curStation(node, u int, rng *rand.Rand) mobility.StationID {
	key := node*h.cfg.UsersPerNode + u
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.userStation[key]
	if !ok {
		s = h.localStation(node, rng)
		h.userStation[key] = s
	}
	return s
}

func (h *Handovers) setStation(node, u int, s mobility.StationID) {
	h.mu.Lock()
	h.userStation[node*h.cfg.UsersPerNode+u] = s
	h.mu.Unlock()
}

// nextStation picks the station a handover moves to: a random neighbour in
// the mobility grid normally; in Ideal mode, a station on the same node.
func (h *Handovers) nextStation(node int, cur mobility.StationID, rng *rand.Rand) mobility.StationID {
	if h.cfg.Ideal {
		return h.localStation(node, rng)
	}
	// One step of a commute: move to an adjacent station (any direction).
	w := h.mob.Stations()
	gw := 32
	x, y := int(cur)%gw, int(cur)/gw
	for i := 0; i < 8; i++ {
		nx := x + rng.Intn(3) - 1
		ny := y + rng.Intn(3) - 1
		if nx < 0 || ny < 0 || nx >= gw || ny*gw+nx >= w {
			continue
		}
		next := mobility.StationID(ny*gw + nx)
		if next != cur {
			return next
		}
	}
	return cur
}

// MakeOp returns the handover operation mix for one node. Users are
// partitioned per worker; every op is a write transaction (Table 2: 0 %
// reads).
func (h *Handovers) MakeOp(node int, db dbapi.DB) Op {
	return func(worker int, rng *rand.Rand) error {
		u := rng.Intn(h.cfg.UsersPerNode)
		cur := h.curStation(node, u, rng)
		if rng.Float64() < h.cfg.HandoverRatio {
			next := h.nextStation(node, cur, rng)
			if err := h.handover(db, node, worker, u, cur, next, rng); err != nil {
				return err
			}
			h.setStation(node, u, next)
			return nil
		}
		// Service request or release: same transactional shape.
		return h.touch(db, worker, h.userObj(node, u), h.stationObj(cur), rng)
	}
}

// handover is the two-transaction 3GPP flow: detach from the old station,
// attach to the new one.
func (h *Handovers) handover(db dbapi.DB, node, worker, u int, oldS, newS mobility.StationID, rng *rand.Rand) error {
	if err := h.touch(db, worker, h.userObj(node, u), h.stationObj(oldS), rng); err != nil {
		return err
	}
	return h.touch(db, worker, h.userObj(node, u), h.stationObj(newS), rng)
}

// touch is one control-plane write transaction over a UE context and a
// station context (~400 B each).
func (h *Handovers) touch(db dbapi.DB, worker int, userObj, stationObj uint64, rng *rand.Rand) error {
	stamp := rng.Uint64()
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(userObj); err != nil {
			return err
		}
		if _, err := tx.Get(stationObj); err != nil {
			return err
		}
		if err := tx.Set(userObj, Pad(stamp, h.cfg.CtxSize)); err != nil {
			return err
		}
		return tx.Set(stationObj, Pad(stamp+1, h.cfg.CtxSize))
	})
}
