package bench

// IDSpace maps workload entities onto object ids such that the *initial home
// node* of an object is recoverable as obj mod Nodes. The distributed-commit
// baseline statically shards by exactly that function, so seeding Zeus's
// initial owner to the same node gives both systems the identical initial
// sharding the paper prescribes ("The initial sharding of all systems is the
// same", §8).
type IDSpace struct {
	Nodes int
}

// kindSpan separates object kinds within one home's id sequence.
const kindSpan = 1 << 32

// Obj returns the object id for entity (kind, idx) homed at node home.
func (s IDSpace) Obj(kind, idx, home int) uint64 {
	return uint64(s.Nodes)*(uint64(kind)*kindSpan+uint64(idx)) + uint64(home%s.Nodes)
}

// Home returns the initial home node of an object id.
func (s IDSpace) Home(obj uint64) int {
	return int(obj % uint64(s.Nodes))
}

// Seeder installs one object with its initial home and value into a
// deployment (Zeus cluster or baseline nodes).
type Seeder func(obj uint64, home int, data []byte)
