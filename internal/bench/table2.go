package bench

import "fmt"

// BenchmarkInfo is one row of Table 2: the static characteristics of the
// evaluated benchmarks.
type BenchmarkInfo struct {
	Name           string
	Characteristic string
	Tables         int
	Columns        int
	TxTypes        int
	ReadTxPercent  int
}

// Table2 returns the paper's benchmark summary (Table 2).
func Table2() []BenchmarkInfo {
	return []BenchmarkInfo{
		{Name: "Handovers", Characteristic: "large contexts", Tables: 5, Columns: 36, TxTypes: 4, ReadTxPercent: 0},
		{Name: "Smallbank", Characteristic: "write-intensive", Tables: 3, Columns: 6, TxTypes: 6, ReadTxPercent: 15},
		{Name: "TATP", Characteristic: "read-intensive", Tables: 4, Columns: 51, TxTypes: 7, ReadTxPercent: 80},
		{Name: "Voter", Characteristic: "popularity skew", Tables: 3, Columns: 9, TxTypes: 1, ReadTxPercent: 0},
	}
}

// String renders the row like the paper's table.
func (b BenchmarkInfo) String() string {
	return fmt.Sprintf("%-10s %-16s tables=%d columns=%d txs=%d read-txs=%d%%",
		b.Name, b.Characteristic, b.Tables, b.Columns, b.TxTypes, b.ReadTxPercent)
}
