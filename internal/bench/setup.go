package bench

import (
	"time"

	"zeus/internal/baseline"
	"zeus/internal/cluster"
	"zeus/internal/core"
	"zeus/internal/dbapi"
	"zeus/internal/netsim"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// ZeusSeeder adapts a Zeus cluster to the Seeder interface (bulk initial
// sharding, bypassing the protocols).
func ZeusSeeder(c *cluster.Cluster) Seeder {
	return func(obj uint64, home int, data []byte) {
		c.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
	}
}

// ZeusDBs returns the dbapi view of every node in the cluster.
func ZeusDBs(c *cluster.Cluster, n int) []dbapi.DB {
	out := make([]dbapi.DB, n)
	for i := 0; i < n; i++ {
		out[i] = c.Node(i).DB()
	}
	return out
}

// BaselineDeployment is a self-contained baseline cluster.
type BaselineDeployment struct {
	Nodes []*baseline.Node
	hub   *transport.Hub
	net   *netsim.Network
	trs   []transport.Transport
}

// NewBaselineDeployment builds n baseline nodes over the in-memory fabric.
func NewBaselineDeployment(n, degree int) *BaselineDeployment {
	hub := transport.NewHub()
	d := &BaselineDeployment{hub: hub}
	cfg := baseline.Config{Nodes: n, Degree: degree}
	for i := 0; i < n; i++ {
		tr := hub.Node(wire.NodeID(i))
		r := transport.NewRouter()
		d.Nodes = append(d.Nodes, baseline.NewNode(wire.NodeID(i), tr, r, cfg))
		tr.SetHandler(r.Dispatch)
		d.trs = append(d.trs, tr)
	}
	return d
}

// NewBaselineDeploymentSim builds n baseline nodes over the simulated fabric
// (with real per-message latency), so the cost of remote accesses and the
// blocking distributed commit is visible — the comparison substrate for
// Figures 8/9/13.
func NewBaselineDeploymentSim(n, degree int, netCfg netsim.Config) *BaselineDeployment {
	nw := netsim.New(netCfg)
	d := &BaselineDeployment{net: nw}
	cfg := baseline.Config{Nodes: n, Degree: degree}
	rc := transport.DefaultReliableConfig()
	if rto := 4*netCfg.MaxLatency + 2*time.Millisecond; rto > rc.RTO {
		rc.RTO = rto
	}
	for i := 0; i < n; i++ {
		tr := transport.NewReliable(nw.Endpoint(wire.NodeID(i)), rc)
		r := transport.NewRouter()
		d.Nodes = append(d.Nodes, baseline.NewNode(wire.NodeID(i), tr, r, cfg))
		tr.SetHandler(r.Dispatch)
		d.trs = append(d.trs, tr)
	}
	return d
}

// Close releases transports.
func (d *BaselineDeployment) Close() {
	for _, tr := range d.trs {
		_ = tr.Close()
	}
	if d.net != nil {
		d.net.Close()
	}
}

// DBs returns the dbapi view of the deployment.
func (d *BaselineDeployment) DBs() []dbapi.DB {
	out := make([]dbapi.DB, len(d.Nodes))
	for i, n := range d.Nodes {
		out[i] = n
	}
	return out
}

// Seeder installs objects at their static primary and backups. The home
// argument must equal obj mod nodes (IDSpace guarantees it), so Zeus and the
// baseline start from the identical sharding.
func (d *BaselineDeployment) Seeder() Seeder {
	return func(obj uint64, home int, data []byte) {
		id := wire.ObjectID(obj)
		p := d.Nodes[0].Primary(id)
		d.Nodes[p].Seed(id, 1, data)
		for _, b := range d.Nodes[0].Backups(id) {
			d.Nodes[b].Seed(id, 1, data)
		}
	}
}

// MigrationResult reports a bulk ownership migration (Figures 10–12).
type MigrationResult struct {
	Moved    int
	Failed   int
	Duration time.Duration
}

// Rate returns objects moved per second.
func (m MigrationResult) Rate() float64 {
	if m.Duration <= 0 {
		return 0
	}
	return float64(m.Moved) / m.Duration.Seconds()
}

// MoveObjects acquires ownership of every object at dst, sequentially on one
// worker — the paper's measurement unit ("a single worker thread can move
// 25k objects per second", §8.4). Run several concurrently for aggregate
// rates.
func MoveObjects(dst *core.Node, objs []uint64) MigrationResult {
	start := time.Now()
	var res MigrationResult
	for _, o := range objs {
		if err := dst.OwnershipEngine().AcquireOwnership(wire.ObjectID(o)); err != nil {
			res.Failed++
			continue
		}
		res.Moved++
	}
	res.Duration = time.Since(start)
	return res
}

// MoveObjectsParallel splits objs across workers concurrent movers.
func MoveObjectsParallel(dst *core.Node, objs []uint64, workers int) MigrationResult {
	if workers <= 1 {
		return MoveObjects(dst, objs)
	}
	start := time.Now()
	type part struct{ moved, failed int }
	results := make(chan part, workers)
	chunk := (len(objs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(objs) {
			hi = len(objs)
		}
		go func(sub []uint64) {
			var p part
			for _, o := range sub {
				if err := dst.OwnershipEngine().AcquireOwnership(wire.ObjectID(o)); err != nil {
					p.failed++
				} else {
					p.moved++
				}
			}
			results <- p
		}(objs[lo:hi])
	}
	var res MigrationResult
	for w := 0; w < workers; w++ {
		p := <-results
		res.Moved += p.moved
		res.Failed += p.failed
	}
	res.Duration = time.Since(start)
	return res
}
