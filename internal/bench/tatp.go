package bench

import (
	"math/rand"

	"zeus/internal/dbapi"
)

// TATP is the telecom benchmark of §8.3 (Table 2: 4 tables, 51 columns, 7
// transaction types, 80 % read transactions). Each subscriber owns four
// objects: the subscriber row, access-info, special-facility and
// call-forwarding. The "% remote write transactions" knob reproduces
// Figure 9's x-axis.
type TATP struct {
	cfg TATPConfig
	ids IDSpace
}

// TATPConfig sizes the benchmark.
type TATPConfig struct {
	Nodes              int
	SubscribersPerNode int
	RemoteWriteFrac    float64
	PayloadSize        int
}

// DefaultTATPConfig returns a simulation-scaled configuration (the paper
// uses 1 M subscribers per server).
func DefaultTATPConfig(nodes int) TATPConfig {
	return TATPConfig{Nodes: nodes, SubscribersPerNode: 20000, PayloadSize: 64}
}

// Object kinds (the four TATP tables).
const (
	tatpSubscriber = iota
	tatpAccessInfo
	tatpSpecialFacility
	tatpCallForwarding
)

// NewTATP builds the workload.
func NewTATP(cfg TATPConfig) *TATP {
	if cfg.SubscribersPerNode <= 0 {
		cfg.SubscribersPerNode = 20000
	}
	if cfg.PayloadSize < 8 {
		cfg.PayloadSize = 64
	}
	return &TATP{cfg: cfg, ids: IDSpace{Nodes: cfg.Nodes}}
}

// Seed installs all four objects per subscriber.
func (t *TATP) Seed(seed Seeder) {
	for home := 0; home < t.cfg.Nodes; home++ {
		for i := 0; i < t.cfg.SubscribersPerNode; i++ {
			for kind := tatpSubscriber; kind <= tatpCallForwarding; kind++ {
				seed(t.ids.Obj(kind, i, home), home, Pad(uint64(i), t.cfg.PayloadSize))
			}
		}
	}
}

func (t *TATP) pickSub(rng *rand.Rand) int { return rng.Intn(t.cfg.SubscribersPerNode) }

func (t *TATP) pickHome(node int, rng *rand.Rand) int {
	if t.cfg.Nodes > 1 && rng.Float64() < t.cfg.RemoteWriteFrac {
		h := rng.Intn(t.cfg.Nodes - 1)
		if h >= node {
			h++
		}
		return h
	}
	return node
}

// MakeOp returns the standard TATP mix: reads 80 % (get-subscriber-data
// 35 %, get-access-data 35 %, get-new-destination 10 %) and writes 20 %
// (update-location 14 %, update-subscriber-data 2 %, insert-call-forwarding
// 2 %, delete-call-forwarding 2 %).
func (t *TATP) MakeOp(node int, db dbapi.DB) Op {
	return func(worker int, rng *rand.Rand) error {
		roll := rng.Float64()
		switch {
		case roll < 0.35:
			return t.getSubscriberData(db, node, worker, rng)
		case roll < 0.70:
			return t.getAccessData(db, node, worker, rng)
		case roll < 0.80:
			return t.getNewDestination(db, node, worker, rng)
		case roll < 0.94:
			return t.updateLocation(db, node, worker, rng)
		case roll < 0.96:
			return t.updateSubscriberData(db, node, worker, rng)
		case roll < 0.98:
			return t.insertCallForwarding(db, node, worker, rng)
		default:
			return t.deleteCallForwarding(db, node, worker, rng)
		}
	}
}

func (t *TATP) getSubscriberData(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	obj := t.ids.Obj(tatpSubscriber, t.pickSub(rng), node)
	return dbapi.RunRO(db, worker, func(tx dbapi.Txn) error {
		_, err := tx.Get(obj)
		return err
	})
}

func (t *TATP) getAccessData(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	obj := t.ids.Obj(tatpAccessInfo, t.pickSub(rng), node)
	return dbapi.RunRO(db, worker, func(tx dbapi.Txn) error {
		_, err := tx.Get(obj)
		return err
	})
}

func (t *TATP) getNewDestination(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	sub := t.pickSub(rng)
	sf := t.ids.Obj(tatpSpecialFacility, sub, node)
	cf := t.ids.Obj(tatpCallForwarding, sub, node)
	return dbapi.RunRO(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(sf); err != nil {
			return err
		}
		_, err := tx.Get(cf)
		return err
	})
}

func (t *TATP) updateLocation(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := t.pickHome(node, rng)
	obj := t.ids.Obj(tatpSubscriber, t.pickSub(rng), home)
	loc := rng.Uint64()
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(obj); err != nil {
			return err
		}
		return tx.Set(obj, Pad(loc, t.cfg.PayloadSize))
	})
}

func (t *TATP) updateSubscriberData(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := t.pickHome(node, rng)
	sub := t.pickSub(rng)
	s := t.ids.Obj(tatpSubscriber, sub, home)
	sf := t.ids.Obj(tatpSpecialFacility, sub, home)
	bit := rng.Uint64()
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		if err := tx.Set(s, Pad(bit, t.cfg.PayloadSize)); err != nil {
			return err
		}
		return tx.Set(sf, Pad(bit+1, t.cfg.PayloadSize))
	})
}

func (t *TATP) insertCallForwarding(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := t.pickHome(node, rng)
	sub := t.pickSub(rng)
	sf := t.ids.Obj(tatpSpecialFacility, sub, home)
	cf := t.ids.Obj(tatpCallForwarding, sub, home)
	dst := rng.Uint64()
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(sf); err != nil {
			return err
		}
		return tx.Set(cf, Pad(dst, t.cfg.PayloadSize))
	})
}

func (t *TATP) deleteCallForwarding(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := t.pickHome(node, rng)
	cf := t.ids.Obj(tatpCallForwarding, t.pickSub(rng), home)
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(cf); err != nil {
			return err
		}
		return tx.Set(cf, Pad(0, t.cfg.PayloadSize))
	})
}
