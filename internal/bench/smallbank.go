package bench

import (
	"math/rand"

	"zeus/internal/dbapi"
)

// Smallbank is the financial-transaction benchmark of §8.2 (Table 2: 3
// tables, 6 columns, 6 transaction types, 15 % read transactions). Each
// account has a checking and a savings object. The "% remote write
// transactions" knob reproduces the x-axis of Figure 8: a remote write picks
// its accounts from another node's partition, forcing an ownership change in
// Zeus and remote accesses + distributed commit in the baseline.
type Smallbank struct {
	cfg SmallbankConfig
	ids IDSpace
}

// SmallbankConfig sizes the benchmark.
type SmallbankConfig struct {
	Nodes           int
	AccountsPerNode int
	// RemoteWriteFrac is the fraction of write transactions whose accounts
	// live on another node (Figure 8's x-axis).
	RemoteWriteFrac float64
	// HotFrac/HotAccounts model the FaSST-style access skew: HotFrac of
	// account picks land on the first HotAccounts accounts of a partition.
	HotFrac     float64
	HotAccounts int
	// PayloadSize is the per-object value size.
	PayloadSize int
}

// DefaultSmallbankConfig returns a simulation-scaled configuration.
func DefaultSmallbankConfig(nodes int) SmallbankConfig {
	return SmallbankConfig{
		Nodes:           nodes,
		AccountsPerNode: 20000,
		RemoteWriteFrac: 0,
		HotFrac:         0.25,
		HotAccounts:     100,
		PayloadSize:     64,
	}
}

// Object kinds.
const (
	sbChecking = iota
	sbSavings
)

// NewSmallbank builds the workload.
func NewSmallbank(cfg SmallbankConfig) *Smallbank {
	if cfg.AccountsPerNode <= 0 {
		cfg.AccountsPerNode = 20000
	}
	if cfg.PayloadSize < 8 {
		cfg.PayloadSize = 64
	}
	return &Smallbank{cfg: cfg, ids: IDSpace{Nodes: cfg.Nodes}}
}

// Seed installs every account with an initial balance of 1000.
func (s *Smallbank) Seed(seed Seeder) {
	for home := 0; home < s.cfg.Nodes; home++ {
		for i := 0; i < s.cfg.AccountsPerNode; i++ {
			seed(s.ids.Obj(sbChecking, i, home), home, Pad(1000, s.cfg.PayloadSize))
			seed(s.ids.Obj(sbSavings, i, home), home, Pad(1000, s.cfg.PayloadSize))
		}
	}
}

// pickAccount selects an account index with the configured hot-set skew.
func (s *Smallbank) pickAccount(rng *rand.Rand) int {
	if s.cfg.HotFrac > 0 && rng.Float64() < s.cfg.HotFrac {
		return rng.Intn(s.cfg.HotAccounts)
	}
	return rng.Intn(s.cfg.AccountsPerNode)
}

// pickHome returns the partition a write transaction targets: the local node
// usually, another node with probability RemoteWriteFrac.
func (s *Smallbank) pickHome(node int, rng *rand.Rand) int {
	if s.cfg.Nodes > 1 && rng.Float64() < s.cfg.RemoteWriteFrac {
		h := rng.Intn(s.cfg.Nodes - 1)
		if h >= node {
			h++
		}
		return h
	}
	return node
}

// MakeOp returns the Smallbank operation mix for one node: 15 % balance
// (read-only), 25 % send-payment, 15 % each amalgamate / deposit-checking /
// transact-savings / write-check.
func (s *Smallbank) MakeOp(node int, db dbapi.DB) Op {
	return func(worker int, rng *rand.Rand) error {
		roll := rng.Float64()
		switch {
		case roll < 0.15:
			return s.balance(db, node, worker, rng)
		case roll < 0.40:
			return s.sendPayment(db, node, worker, rng)
		case roll < 0.55:
			return s.amalgamate(db, node, worker, rng)
		case roll < 0.70:
			return s.depositChecking(db, node, worker, rng)
		case roll < 0.85:
			return s.transactSavings(db, node, worker, rng)
		default:
			return s.writeCheck(db, node, worker, rng)
		}
	}
}

// balance reads both balances of one local account (read-only, 3 objects in
// the paper's accounting: account row + both balances).
func (s *Smallbank) balance(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	a := s.pickAccount(rng)
	return dbapi.RunRO(db, worker, func(tx dbapi.Txn) error {
		if _, err := tx.Get(s.ids.Obj(sbChecking, a, node)); err != nil {
			return err
		}
		_, err := tx.Get(s.ids.Obj(sbSavings, a, node))
		return err
	})
}

// sendPayment moves money between the checking objects of two accounts
// (2 modified objects — the 30 % bucket of §8.2).
func (s *Smallbank) sendPayment(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := s.pickHome(node, rng)
	from := s.ids.Obj(sbChecking, s.pickAccount(rng), home)
	to := s.ids.Obj(sbChecking, s.pickAccount(rng), home)
	if from == to {
		return nil
	}
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		fv, err := tx.Get(from)
		if err != nil {
			return err
		}
		tv, err := tx.Get(to)
		if err != nil {
			return err
		}
		amount := uint64(1 + rng.Intn(10))
		bal := FromU64(fv)
		if bal < amount {
			amount = 0 // insufficient funds: commit a no-op transfer
		}
		if err := tx.Set(from, Pad(bal-amount, s.cfg.PayloadSize)); err != nil {
			return err
		}
		return tx.Set(to, Pad(FromU64(tv)+amount, s.cfg.PayloadSize))
	})
}

// amalgamate zeroes one account's balances into another's checking
// (4 modified objects — the ≥3 bucket of §8.2).
func (s *Smallbank) amalgamate(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := s.pickHome(node, rng)
	a := s.pickAccount(rng)
	b := s.pickAccount(rng)
	if a == b {
		return nil
	}
	ac := s.ids.Obj(sbChecking, a, home)
	as := s.ids.Obj(sbSavings, a, home)
	bc := s.ids.Obj(sbChecking, b, home)
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		cv, err := tx.Get(ac)
		if err != nil {
			return err
		}
		sv, err := tx.Get(as)
		if err != nil {
			return err
		}
		bv, err := tx.Get(bc)
		if err != nil {
			return err
		}
		total := FromU64(cv) + FromU64(sv)
		if err := tx.Set(ac, Pad(0, s.cfg.PayloadSize)); err != nil {
			return err
		}
		if err := tx.Set(as, Pad(0, s.cfg.PayloadSize)); err != nil {
			return err
		}
		return tx.Set(bc, Pad(FromU64(bv)+total, s.cfg.PayloadSize))
	})
}

// depositChecking adds to one checking object.
func (s *Smallbank) depositChecking(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := s.pickHome(node, rng)
	obj := s.ids.Obj(sbChecking, s.pickAccount(rng), home)
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(obj)
		if err != nil {
			return err
		}
		return tx.Set(obj, Pad(FromU64(v)+5, s.cfg.PayloadSize))
	})
}

// transactSavings adds to one savings object.
func (s *Smallbank) transactSavings(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := s.pickHome(node, rng)
	obj := s.ids.Obj(sbSavings, s.pickAccount(rng), home)
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(obj)
		if err != nil {
			return err
		}
		return tx.Set(obj, Pad(FromU64(v)+7, s.cfg.PayloadSize))
	})
}

// writeCheck reads both balances and debits checking.
func (s *Smallbank) writeCheck(db dbapi.DB, node, worker int, rng *rand.Rand) error {
	home := s.pickHome(node, rng)
	a := s.pickAccount(rng)
	ac := s.ids.Obj(sbChecking, a, home)
	as := s.ids.Obj(sbSavings, a, home)
	return dbapi.Run(db, worker, func(tx dbapi.Txn) error {
		cv, err := tx.Get(ac)
		if err != nil {
			return err
		}
		if _, err := tx.Get(as); err != nil {
			return err
		}
		bal := FromU64(cv)
		if bal == 0 {
			return tx.Set(ac, Pad(0, s.cfg.PayloadSize))
		}
		return tx.Set(ac, Pad(bal-1, s.cfg.PayloadSize))
	})
}

// TotalMoney sums all balances via read-only transactions on one node —
// the serializability invariant used by tests (transfers conserve money;
// deposits grow it deterministically per committed op).
func (s *Smallbank) Objects() []uint64 {
	var out []uint64
	for home := 0; home < s.cfg.Nodes; home++ {
		for i := 0; i < s.cfg.AccountsPerNode; i++ {
			out = append(out, s.ids.Obj(sbChecking, i, home), s.ids.Obj(sbSavings, i, home))
		}
	}
	return out
}
