package bench

import "math"

// TPCCParams parameterizes the closed-form remote-transaction analysis of
// TPC-C (§8, "Locality in workloads"). Under the TPC-C specification only
// new-order and payment transactions may access a remote warehouse:
//
//   - each of the ~10 items in a new-order is supplied by a remote
//     warehouse with probability 1 %;
//   - a payment pays through a remote warehouse/district with
//     probability 15 %.
//
// A "remote warehouse" only leaves the node when it is hosted elsewhere;
// with W warehouses per node out of W×N total, that conditional probability
// is (N-1)·W / (N·W - 1).
type TPCCParams struct {
	// Mix fractions (spec defaults).
	NewOrderFrac float64
	PaymentFrac  float64
	// ItemsPerOrder is the average new-order line count.
	ItemsPerOrder int
	// RemoteItemProb is the per-item remote-supply probability.
	RemoteItemProb float64
	// RemotePaymentProb is the remote-customer probability for payments.
	RemotePaymentProb float64
	// WarehousesPerNode and Nodes fix the placement.
	WarehousesPerNode int
	Nodes             int
}

// DefaultTPCCParams returns the spec mix on a six-node deployment.
func DefaultTPCCParams(nodes int) TPCCParams {
	return TPCCParams{
		NewOrderFrac:      0.45,
		PaymentFrac:       0.43,
		ItemsPerOrder:     10,
		RemoteItemProb:    0.01,
		RemotePaymentProb: 0.15,
		WarehousesPerNode: 16,
		Nodes:             nodes,
	}
}

// CrossNodeProb is the probability that a spec-level "remote warehouse"
// pick lands on another node.
func (p TPCCParams) CrossNodeProb() float64 {
	w := float64(p.WarehousesPerNode)
	n := float64(p.Nodes)
	if n <= 1 || w*n <= 1 {
		return 0
	}
	return (n - 1) * w / (n*w - 1)
}

// RemoteFraction computes the fraction of transactions touching another
// node:
//
//	f = f_no·(1-(1-p_item·x)^k) + f_pay·p_cust·x,  x = CrossNodeProb.
//
// With the spec mix this yields ≈9–10 % — noticeably above the 2.45 % the
// paper reports, which implies additional colocation assumptions the paper
// does not spell out (see EXPERIMENTS.md). PaperCalibrated applies the
// implied correction.
func (p TPCCParams) RemoteFraction() float64 {
	x := p.CrossNodeProb()
	noRemote := 1 - math.Pow(1-p.RemoteItemProb*x, float64(p.ItemsPerOrder))
	return p.NewOrderFrac*noRemote + p.PaymentFrac*p.RemotePaymentProb*x
}

// PaperCalibrated returns the parameters with the cross-node probability
// scaled so the formula reproduces the paper's 2.45 % headline: solving
// 0.45·(1-(1-0.01x)^10) + 0.43·0.15x = 0.0245 gives x ≈ 0.224, i.e. the
// paper effectively assumes ~78 % of spec-level remote picks stay on-node
// (districts/customers colocated with their home warehouse's node).
func (p TPCCParams) PaperCalibrated() float64 {
	const x = 0.224
	noRemote := 1 - math.Pow(1-p.RemoteItemProb*x, float64(p.ItemsPerOrder))
	return p.NewOrderFrac*noRemote + p.PaymentFrac*p.RemotePaymentProb*x
}
