package bench

import (
	"math/rand"
)

// VenmoGraph synthesizes a peer-to-peer payment graph calibrated to the
// published Venmo studies the paper cites (§2.2, §8): transactions occur
// mostly within small, stable friend groups (local clustering far above
// Facebook/Twitter), with a small fraction of cross-group payments. Groups
// are partitioned across nodes; a transaction is remote when its two users
// live on different nodes. The paper measures 0.7 % remote at 3 nodes and
// 1.2 % at 6 nodes from the real dataset; the synthetic graph reproduces
// that band and its growth with node count.
type VenmoGraph struct {
	cfg    VenmoConfig
	groups [][]int // user ids per group
	home   []int   // user -> node
}

// VenmoConfig shapes the synthetic graph.
type VenmoConfig struct {
	Nodes int
	Users int
	// GroupMin/GroupMax bound friend-group sizes.
	GroupMin, GroupMax int
	// CrossGroupFrac is the fraction of payments that leave the payer's
	// friend group (the studies' inter-cluster tail).
	CrossGroupFrac float64
	Seed           int64
}

// DefaultVenmoConfig returns the calibrated configuration.
func DefaultVenmoConfig(nodes int) VenmoConfig {
	return VenmoConfig{
		Nodes:          nodes,
		Users:          100000,
		GroupMin:       4,
		GroupMax:       16,
		CrossGroupFrac: 0.012,
		Seed:           1,
	}
}

// NewVenmoGraph builds the graph: users are grouped, groups are assigned to
// nodes round-robin (each group entirely on one node — the locality the load
// balancer would create).
func NewVenmoGraph(cfg VenmoConfig) *VenmoGraph {
	if cfg.Users <= 0 {
		cfg.Users = 100000
	}
	if cfg.GroupMin <= 0 {
		cfg.GroupMin = 4
	}
	if cfg.GroupMax < cfg.GroupMin {
		cfg.GroupMax = cfg.GroupMin + 12
	}
	g := &VenmoGraph{cfg: cfg, home: make([]int, cfg.Users)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := 0
	for u < cfg.Users {
		size := cfg.GroupMin + rng.Intn(cfg.GroupMax-cfg.GroupMin+1)
		if u+size > cfg.Users {
			size = cfg.Users - u
		}
		grp := make([]int, size)
		node := len(g.groups) % cfg.Nodes
		for i := 0; i < size; i++ {
			grp[i] = u
			g.home[u] = node
			u++
		}
		g.groups = append(g.groups, grp)
	}
	return g
}

// Groups returns the number of friend groups.
func (g *VenmoGraph) Groups() int { return len(g.groups) }

// Home returns the node hosting a user.
func (g *VenmoGraph) Home(user int) int { return g.home[user] }

// SamplePayment draws one payment (payer, payee): intra-group with
// probability 1-CrossGroupFrac, anywhere otherwise.
func (g *VenmoGraph) SamplePayment(rng *rand.Rand) (int, int) {
	gi := rng.Intn(len(g.groups))
	grp := g.groups[gi]
	payer := grp[rng.Intn(len(grp))]
	if len(grp) > 1 && rng.Float64() >= g.cfg.CrossGroupFrac {
		for {
			payee := grp[rng.Intn(len(grp))]
			if payee != payer {
				return payer, payee
			}
		}
	}
	for {
		payee := rng.Intn(g.cfg.Users)
		if payee != payer {
			return payer, payee
		}
	}
}

// VenmoAnalysis is the remote-transaction study over the graph.
type VenmoAnalysis struct {
	Payments int
	Remote   int
}

// RemoteFraction returns remote payments / payments.
func (a VenmoAnalysis) RemoteFraction() float64 {
	if a.Payments == 0 {
		return 0
	}
	return float64(a.Remote) / float64(a.Payments)
}

// Analyze samples payments and counts those crossing nodes — §8's Venmo
// locality analysis (0.7 % at 3 nodes, 1.2 % at 6 nodes in the paper).
func (g *VenmoGraph) Analyze(payments int) VenmoAnalysis {
	rng := rand.New(rand.NewSource(g.cfg.Seed + 7))
	var out VenmoAnalysis
	out.Payments = payments
	for i := 0; i < payments; i++ {
		payer, payee := g.SamplePayment(rng)
		if g.home[payer] != g.home[payee] {
			out.Remote++
		}
	}
	return out
}
