package bench

import (
	"math/rand"
	"testing"
	"time"

	"zeus/internal/cluster"
	"zeus/internal/dbapi"
	"zeus/internal/obs"
)

func smallZeus(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	opts := cluster.DefaultOptions(nodes)
	opts.Workers = 4
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	return c
}

func TestIDSpaceHomeRoundTrip(t *testing.T) {
	s := IDSpace{Nodes: 6}
	seen := map[uint64]bool{}
	for kind := 0; kind < 4; kind++ {
		for idx := 0; idx < 50; idx++ {
			for home := 0; home < 6; home++ {
				obj := s.Obj(kind, idx, home)
				if s.Home(obj) != home {
					t.Fatalf("home(%d) = %d, want %d", obj, s.Home(obj), home)
				}
				if seen[obj] {
					t.Fatalf("duplicate id %d", obj)
				}
				seen[obj] = true
			}
		}
	}
}

func TestPadAndU64(t *testing.T) {
	b := Pad(77, 400)
	if len(b) != 400 || FromU64(b) != 77 {
		t.Fatalf("pad round trip: len=%d v=%d", len(b), FromU64(b))
	}
	if FromU64(U64(5)) != 5 || FromU64(nil) != 0 {
		t.Fatal("u64 round trip failed")
	}
	if len(Pad(1, 2)) != 8 {
		t.Fatal("pad must clamp to 8 bytes")
	}
}

func TestSmallbankOnZeus(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultSmallbankConfig(nodes)
	cfg.AccountsPerNode = 200
	sb := NewSmallbank(cfg)
	sb.Seed(ZeusSeeder(c))
	r := Runner{Name: "smallbank", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 50, Seed: 1}
	res := r.Run(sb.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Failures > res.Ops/10 {
		t.Fatalf("too many failures: %d of %d", res.Failures, res.Ops)
	}
	if res.Tps() <= 0 || res.TpsPerNode() <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestSmallbankOnBaselineSameSharding(t *testing.T) {
	const nodes = 3
	d := NewBaselineDeployment(nodes, 3)
	defer d.Close()
	cfg := DefaultSmallbankConfig(nodes)
	cfg.AccountsPerNode = 200
	sb := NewSmallbank(cfg)
	sb.Seed(d.Seeder())
	r := Runner{Name: "smallbank-baseline", DBs: d.DBs(), WorkersPerNode: 2, OpsPerWorker: 50, Seed: 1}
	res := r.Run(sb.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no transactions committed on baseline")
	}
}

func TestSmallbankRemoteFractionDrivesOwnership(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultSmallbankConfig(nodes)
	cfg.AccountsPerNode = 500
	cfg.RemoteWriteFrac = 0.5
	sb := NewSmallbank(cfg)
	sb.Seed(ZeusSeeder(c))
	r := Runner{Name: "sb-remote", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 40, Seed: 2}
	res := r.Run(sb.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	var reqs uint64
	for i := 0; i < nodes; i++ {
		reqs += c.Node(i).OwnershipEngine().Stats().Succeeded
	}
	if reqs == 0 {
		t.Fatal("remote writes never triggered ownership changes")
	}
}

func TestTATPOnZeusReadHeavy(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultTATPConfig(nodes)
	cfg.SubscribersPerNode = 300
	tp := NewTATP(cfg)
	tp.Seed(ZeusSeeder(c))
	before := c.Messages()
	r := Runner{Name: "tatp", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 100, Seed: 3}
	res := r.Run(tp.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no transactions committed")
	}
	// 80% of TATP is read-only and local: messages per op must be well
	// below the write-tx replication cost (~2 messages per write × 2
	// followers). This is the §5.3 no-network-reads property.
	msgs := c.Messages() - before
	perOp := float64(msgs) / float64(res.Ops)
	if perOp > 4 {
		t.Fatalf("read-heavy TATP used %.1f messages/op", perOp)
	}
}

func TestVoterOnZeusAndMigration(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultVoterConfig(nodes)
	cfg.VotersPerNode = 300
	vt := NewVoter(cfg)
	vt.Seed(ZeusSeeder(c))
	r := Runner{Name: "voter", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 60, Seed: 4}
	res := r.Run(vt.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no votes")
	}
	// Figure 10's core primitive: bulk-move node 0's voters to node 1.
	objs := vt.VoterObjects(0)[:100]
	mig := MoveObjects(c.Node(1), objs)
	if mig.Moved != 100 || mig.Failed != 0 {
		t.Fatalf("migration: %+v", mig)
	}
	if mig.Rate() <= 0 {
		t.Fatal("migration rate not computed")
	}
}

func TestVoterVoteLimit(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultVoterConfig(nodes)
	cfg.VotersPerNode = 5
	cfg.Contestants = 3
	cfg.VoteLimit = 2
	vt := NewVoter(cfg)
	vt.Seed(ZeusSeeder(c))
	op := vt.MakeOp(0, c.Node(0).DB())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if err := op(0, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Every voter history is capped at the limit.
	for i := 0; i < 5; i++ {
		var got uint64
		err := dbapi.RunRO(c.Node(0).DB(), 0, func(tx dbapi.Txn) error {
			v, err := tx.Get(vt.VoterObj(0, i))
			if err != nil {
				return err
			}
			got = FromU64(v)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got > 2 {
			t.Fatalf("voter %d has %d votes, limit 2", i, got)
		}
	}
}

func TestHandoversOnZeus(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultHandoverConfig(nodes)
	cfg.UsersPerNode = 200
	cfg.HandoverRatio = 0.05
	h := NewHandovers(cfg)
	h.Seed(ZeusSeeder(c))
	r := Runner{Name: "handover", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 40, Seed: 5}
	res := r.Run(h.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no control-plane operations")
	}
}

func TestHandoversIdealNoOwnershipTraffic(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultHandoverConfig(nodes)
	cfg.UsersPerNode = 200
	cfg.HandoverRatio = 0.05
	cfg.Ideal = true
	h := NewHandovers(cfg)
	h.Seed(ZeusSeeder(c))
	r := Runner{Name: "handover-ideal", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, OpsPerWorker: 40, Seed: 6}
	res := r.Run(h.MakeOp)
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	for i := 0; i < nodes; i++ {
		if got := c.Node(i).OwnershipEngine().Stats().Requests; got != 0 {
			t.Fatalf("ideal mode issued %d ownership requests on node %d", got, i)
		}
	}
}

func TestTimedRunnerSamples(t *testing.T) {
	const nodes = 3
	c := smallZeus(t, nodes)
	cfg := DefaultVoterConfig(nodes)
	cfg.VotersPerNode = 200
	vt := NewVoter(cfg)
	vt.Seed(ZeusSeeder(c))
	// Duration ≫ interval: sleeps oversleep badly on loaded (-race,
	// single-core) hosts, and a too-tight ratio yields a lone sample.
	lats := &obs.Histogram{}
	tr := TimedRunner{Name: "timed", DBs: ZeusDBs(c, nodes), WorkersPerNode: 2, Duration: 360 * time.Millisecond, Seed: 7, Latencies: lats}
	samples, total := tr.RunTimed(vt.MakeOp, 30*time.Millisecond)
	if len(samples) < 2 {
		t.Fatalf("only %d samples", len(samples))
	}
	if total.Ops == 0 {
		t.Fatal("no ops in timed run")
	}
	var sampled uint64
	for _, row := range samples {
		for _, v := range row {
			sampled += v
		}
	}
	if sampled == 0 {
		t.Fatal("samples all zero")
	}
	if snap := lats.Snapshot(); snap.Count != total.Ops {
		t.Fatalf("latency histogram recorded %d samples for %d committed ops", snap.Count, total.Ops)
	}
}

func TestVenmoAnalysisBands(t *testing.T) {
	a3 := NewVenmoGraph(DefaultVenmoConfig(3)).Analyze(200000)
	a6 := NewVenmoGraph(DefaultVenmoConfig(6)).Analyze(200000)
	f3, f6 := a3.RemoteFraction(), a6.RemoteFraction()
	// Paper: 0.7% at 3 nodes, 1.2% at 6 nodes. Accept the right band and
	// monotonic growth.
	if f3 < 0.002 || f3 > 0.02 {
		t.Fatalf("3-node remote fraction %.4f outside band", f3)
	}
	if f6 < f3 {
		t.Fatalf("remote fraction not monotonic: %.4f then %.4f", f3, f6)
	}
	if f6 > 0.03 {
		t.Fatalf("6-node remote fraction %.4f too high", f6)
	}
}

func TestVenmoGraphStructure(t *testing.T) {
	g := NewVenmoGraph(DefaultVenmoConfig(3))
	if g.Groups() == 0 {
		t.Fatal("no groups")
	}
	rng := rand.New(rand.NewSource(1))
	intra := 0
	const N = 10000
	for i := 0; i < N; i++ {
		a, b := g.SamplePayment(rng)
		if a == b {
			t.Fatal("self-payment")
		}
		if g.Home(a) == g.Home(b) {
			intra++
		}
	}
	if float64(intra)/N < 0.95 {
		t.Fatalf("clustering too weak: %.2f intra-node", float64(intra)/N)
	}
}

func TestTPCCAnalysis(t *testing.T) {
	p := DefaultTPCCParams(6)
	x := p.CrossNodeProb()
	if x <= 0.8 || x > 0.85 {
		t.Fatalf("cross-node prob %.3f unexpected", x)
	}
	std := p.RemoteFraction()
	if std < 0.05 || std > 0.15 {
		t.Fatalf("spec remote fraction %.4f outside plausible band", std)
	}
	cal := p.PaperCalibrated()
	if cal < 0.02 || cal > 0.03 {
		t.Fatalf("calibrated remote fraction %.4f should be ≈2.45%%", cal)
	}
	if (TPCCParams{Nodes: 1, WarehousesPerNode: 10}).CrossNodeProb() != 0 {
		t.Fatal("single node must have zero cross-node probability")
	}
}

func TestTable2Static(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	names := map[string]BenchmarkInfo{}
	for _, r := range rows {
		names[r.Name] = r
		if r.String() == "" {
			t.Fatal("empty row rendering")
		}
	}
	if names["TATP"].ReadTxPercent != 80 || names["Smallbank"].ReadTxPercent != 15 {
		t.Fatal("read percentages wrong")
	}
	if names["Handovers"].Tables != 5 || names["Voter"].TxTypes != 1 {
		t.Fatal("table metadata wrong")
	}
}
