// Package hermes is a compact implementation of the Hermes replication
// protocol (Katsarakis et al., ASPLOS '20) — the substrate the paper uses for
// its application-level load balancer's replicated key-value store (§3.1).
//
// Hermes is invalidation-based: a write at any replica broadcasts an INV
// carrying a lexicographically ordered timestamp and the new value; replicas
// invalidate, apply the higher-timestamped value and ACK; once all live
// replicas ACKed, the writer validates locally and broadcasts VAL. Reads are
// local and serve only Valid entries, which makes them linearizable.
// Concurrent writes to one key resolve by timestamp (exactly one wins).
package hermes

import (
	"errors"
	"sync"
	"time"

	"zeus/internal/membership"
	"zeus/internal/retry"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Errors.
var (
	// ErrTimeout: a write did not gather all ACKs in time.
	ErrTimeout = errors.New("hermes: write timed out")
	// ErrInvalid: the key is invalidated (a write is in flight).
	ErrInvalid = errors.New("hermes: key invalidated")
)

type state uint8

const (
	valid state = iota
	invalid
	writeState
)

type entry struct {
	state state
	ts    wire.OTS
	val   []byte
}

type pendingWrite struct {
	ts    wire.OTS
	acked wire.Bitmap
	need  wire.Bitmap
	done  chan bool
}

// KV is one replica of the Hermes-replicated store.
type KV struct {
	self     wire.NodeID
	replicas wire.Bitmap
	tr       transport.Transport
	agent    *membership.Agent
	timeout  time.Duration

	mu      sync.Mutex
	entries map[uint64]*entry
	writes  map[uint64]*pendingWrite // one per key at a time (per writer)
}

// New creates a KV replica; replicas is the full replica group (all nodes of
// the load balancer tier). Register installs the handlers.
func New(self wire.NodeID, replicas wire.Bitmap, tr transport.Transport, agent *membership.Agent) *KV {
	return &KV{
		self:     self,
		replicas: replicas,
		tr:       tr,
		agent:    agent,
		timeout:  time.Second,
		entries:  make(map[uint64]*entry),
		writes:   make(map[uint64]*pendingWrite),
	}
}

// Register installs the KV's message handlers on the router.
func (kv *KV) Register(r *transport.Router) {
	r.HandleMany(kv.Handle, wire.KindHermesInv, wire.KindHermesAck, wire.KindHermesVal)
}

// Handle dispatches one inbound Hermes message.
func (kv *KV) Handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.HermesInv:
		kv.handleInv(v)
	case *wire.HermesAck:
		kv.handleAck(v)
	case *wire.HermesVal:
		kv.handleVal(v)
	}
}

// Get returns the local value of key; ok is false when absent. A key under
// invalidation returns ErrInvalid (callers retry — Hermes reads block until
// the write completes).
func (kv *KV) Get(key uint64) ([]byte, bool, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.entries[key]
	if !ok {
		return nil, false, nil
	}
	if e.state != valid {
		return nil, false, ErrInvalid
	}
	return append([]byte(nil), e.val...), true, nil
}

// getWaitPolicy paces GetWait's invalidation poll: fixed 50 µs probes
// (retrydiscipline: engine pacing goes through internal/retry), bounded by
// the caller's timeout via MaxElapsed.
var getWaitPolicy = retry.Policy{
	InitialBackoff: 50 * time.Microsecond,
	MaxBackoff:     50 * time.Microsecond,
	Multiplier:     1,
	Jitter:         -1,
}

// GetWait is Get with a bounded wait for in-flight writes to validate.
func (kv *KV) GetWait(key uint64, timeout time.Duration) ([]byte, bool, error) {
	var (
		v       []byte
		found   bool
		lastErr error
	)
	p := getWaitPolicy
	p.MaxElapsed = timeout
	if timeout <= 0 {
		p.MaxAttempts = 1
	}
	if err := retry.Do(nil, p, nil, func(int) error {
		v, found, lastErr = kv.Get(key)
		return lastErr
	}); err != nil {
		return nil, false, lastErr
	}
	return v, found, nil
}

// Put writes key=val, blocking until all live replicas acknowledged the
// invalidation. Returns the winning-or-not state implicitly: a concurrent
// higher-timestamped write may supersede this one (last-writer-wins).
func (kv *KV) Put(key uint64, val []byte) error {
	epoch := kv.agent.Epoch()
	live := kv.agent.View().Live.Intersect(kv.replicas)

	kv.mu.Lock()
	e, ok := kv.entries[key]
	if !ok {
		e = &entry{}
		kv.entries[key] = e
	}
	ts := wire.OTS{Ver: e.ts.Ver + 1, Node: kv.self}
	e.state = writeState
	e.ts = ts
	e.val = append([]byte(nil), val...)
	pw := &pendingWrite{ts: ts, need: live.Remove(kv.self), done: make(chan bool, 1)}
	kv.writes[key] = pw
	kv.mu.Unlock()

	inv := &wire.HermesInv{Key: key, TS: ts, Epoch: epoch, From: kv.self, Val: val}
	if pw.need.Count() == 0 {
		kv.finishWrite(key, ts)
		return nil
	}
	for _, n := range pw.need.Nodes() {
		_ = kv.tr.Send(n, inv)
	}
	select {
	case <-pw.done:
		return nil
	case <-time.After(kv.timeout):
		return ErrTimeout
	}
}

func (kv *KV) handleInv(m *wire.HermesInv) {
	if m.Epoch != kv.agent.Epoch() {
		return
	}
	kv.mu.Lock()
	e, ok := kv.entries[m.Key]
	if !ok {
		e = &entry{}
		kv.entries[m.Key] = e
	}
	if e.ts.Less(m.TS) {
		e.state = invalid
		e.ts = m.TS
		e.val = m.Val
		// A lower-timestamped local write lost; its VAL will be ignored
		// everywhere, and this INV's writer revalidates the key.
	}
	kv.mu.Unlock()
	_ = kv.tr.Send(m.From, &wire.HermesAck{Key: m.Key, TS: m.TS, Epoch: m.Epoch, From: kv.self})
}

func (kv *KV) handleAck(m *wire.HermesAck) {
	if m.Epoch != kv.agent.Epoch() {
		return
	}
	kv.mu.Lock()
	pw, ok := kv.writes[m.Key]
	if !ok || pw.ts != m.TS {
		kv.mu.Unlock()
		return
	}
	pw.acked = pw.acked.Add(m.From)
	complete := pw.acked.Intersect(pw.need) == pw.need
	kv.mu.Unlock()
	if complete {
		kv.finishWrite(m.Key, m.TS)
	}
}

func (kv *KV) finishWrite(key uint64, ts wire.OTS) {
	kv.mu.Lock()
	pw := kv.writes[key]
	if pw == nil || pw.ts != ts {
		kv.mu.Unlock()
		return
	}
	delete(kv.writes, key)
	if e := kv.entries[key]; e != nil && e.ts == ts {
		e.state = valid
	}
	kv.mu.Unlock()
	select {
	case pw.done <- true:
	default:
	}
	epoch := kv.agent.Epoch()
	for _, n := range kv.replicas.Intersect(kv.agent.View().Live).Nodes() {
		if n != kv.self {
			_ = kv.tr.Send(n, &wire.HermesVal{Key: key, TS: ts, Epoch: epoch})
		}
	}
}

func (kv *KV) handleVal(m *wire.HermesVal) {
	if m.Epoch != kv.agent.Epoch() {
		return
	}
	kv.mu.Lock()
	if e := kv.entries[m.Key]; e != nil && e.ts == m.TS && e.state == invalid {
		e.state = valid
	}
	kv.mu.Unlock()
}

// Len returns the number of keys stored locally.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.entries)
}
