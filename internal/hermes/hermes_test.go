package hermes

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"zeus/internal/membership"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

func newKVGroup(t *testing.T, n int) []*KV {
	t.Helper()
	var members wire.Bitmap
	for i := 0; i < n; i++ {
		members = members.Add(wire.NodeID(i))
	}
	hub := transport.NewHub()
	mgr := membership.NewManager(membership.Config{Lease: time.Millisecond}, members)
	kvs := make([]*KV, n)
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		tr := hub.Node(id)
		r := transport.NewRouter()
		kvs[i] = New(id, members, tr, mgr.Agent(id))
		kvs[i].Register(r)
		tr.SetHandler(r.Dispatch)
		t.Cleanup(func() { tr.Close() })
	}
	return kvs
}

func TestPutThenLocalReadEverywhere(t *testing.T) {
	kvs := newKVGroup(t, 3)
	if err := kvs[0].Put(7, []byte("dest")); err != nil {
		t.Fatal(err)
	}
	for i, kv := range kvs {
		deadline := time.Now().Add(time.Second)
		for {
			v, ok, err := kv.Get(7)
			if err == nil && ok && string(v) == "dest" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never validated: %q %v %v", i, v, ok, err)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	kvs := newKVGroup(t, 2)
	v, ok, err := kvs[0].Get(99)
	if v != nil || ok || err != nil {
		t.Fatalf("missing key: %q %v %v", v, ok, err)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	kvs := newKVGroup(t, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = kvs[i].Put(5, []byte(fmt.Sprintf("writer%d", i)))
		}(i)
	}
	wg.Wait()
	// All replicas converge to the same (highest-timestamp) value.
	deadline := time.Now().Add(2 * time.Second)
	for {
		vals := make([]string, 3)
		allValid := true
		for i, kv := range kvs {
			v, ok, err := kv.Get(5)
			if err != nil || !ok {
				allValid = false
				break
			}
			vals[i] = string(v)
		}
		if allValid && vals[0] == vals[1] && vals[1] == vals[2] {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged: %v", vals)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestOverwriteVersionsMonotonic(t *testing.T) {
	kvs := newKVGroup(t, 3)
	for i := 0; i < 10; i++ {
		w := kvs[i%3]
		if err := w.Put(1, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, ok, err := kvs[0].Get(1)
		if err == nil && ok && string(v) == "v9" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("final value %q ok=%v err=%v", v, ok, err)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestGetWaitRidesOutInvalidation(t *testing.T) {
	kvs := newKVGroup(t, 3)
	if err := kvs[0].Put(3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Wait for the write to validate at replica 1, then manually
	// invalidate with a higher timestamp, as if a new write were in
	// flight (a stray VAL of the old write cannot re-validate it).
	if _, _, err := kvs[1].GetWait(3, time.Second); err != nil {
		t.Fatal(err)
	}
	kvs[1].mu.Lock()
	e := kvs[1].entries[3]
	e.state = invalid
	e.ts.Ver++
	kvs[1].mu.Unlock()
	// GetWait bounds the wait and reports ErrInvalid on expiry.
	_, _, err := kvs[1].GetWait(3, 5*time.Millisecond)
	if err != ErrInvalid {
		t.Fatalf("err = %v", err)
	}
	// Validating releases the reader.
	kvs[1].mu.Lock()
	e.state = valid
	kvs[1].mu.Unlock()
	v, ok, err := kvs[1].GetWait(3, time.Second)
	if err != nil || !ok || string(v) != "a" {
		t.Fatalf("after validation: %q %v %v", v, ok, err)
	}
}

func TestSingleReplicaFastPath(t *testing.T) {
	kvs := newKVGroup(t, 1)
	if err := kvs[0].Put(1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := kvs[0].Get(1)
	if err != nil || !ok || string(v) != "solo" {
		t.Fatalf("%q %v %v", v, ok, err)
	}
	if kvs[0].Len() != 1 {
		t.Fatalf("len = %d", kvs[0].Len())
	}
}
