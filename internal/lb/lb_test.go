package lb

import (
	"testing"
	"time"

	"zeus/internal/hermes"
	"zeus/internal/membership"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

func newBalancers(t *testing.T, n int) ([]*Balancer, *membership.Manager) {
	t.Helper()
	var members wire.Bitmap
	for i := 0; i < n; i++ {
		members = members.Add(wire.NodeID(i))
	}
	hub := transport.NewHub()
	mgr := membership.NewManager(membership.Config{Lease: time.Millisecond}, members)
	out := make([]*Balancer, n)
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		tr := hub.Node(id)
		r := transport.NewRouter()
		kv := hermes.New(id, members, tr, mgr.Agent(id))
		kv.Register(r)
		tr.SetHandler(r.Dispatch)
		out[i] = New(kv, mgr.Agent(id), int64(i)+1)
		t.Cleanup(func() { tr.Close() })
	}
	return out, mgr
}

func TestRouteIsSticky(t *testing.T) {
	bs, _ := newBalancers(t, 3)
	first, err := bs[0].Route(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := bs[0].Route(42)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("route flapped: %d then %d", first, got)
		}
	}
}

func TestRouteConsistentAcrossBalancers(t *testing.T) {
	bs, _ := newBalancers(t, 3)
	first, err := bs[0].Route(7)
	if err != nil {
		t.Fatal(err)
	}
	// Other balancer replicas must agree (possibly after the VAL settles).
	deadline := time.Now().Add(time.Second)
	for _, b := range bs[1:] {
		for {
			got, err := b.Route(7)
			if err == nil && got == first {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("balancers disagree: %d vs %d (%v)", got, first, err)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func TestRouteSpreadsKeys(t *testing.T) {
	bs, _ := newBalancers(t, 3)
	seen := map[wire.NodeID]int{}
	for k := uint64(0); k < 60; k++ {
		dst, err := bs[0].Route(k)
		if err != nil {
			t.Fatal(err)
		}
		seen[dst]++
	}
	if len(seen) < 2 {
		t.Fatalf("all 60 keys routed to one node: %v", seen)
	}
}

func TestRouteReassignsAfterNodeDeath(t *testing.T) {
	bs, mgr := newBalancers(t, 3)
	if err := bs[0].Assign(9, 2); err != nil {
		t.Fatal(err)
	}
	mgr.Fail(2)
	if !mgr.WaitEpoch(2, time.Second) {
		t.Fatal("no view change")
	}
	dst, err := bs[0].Route(9)
	if err != nil {
		t.Fatal(err)
	}
	if dst == 2 {
		t.Fatal("routed to a dead node")
	}
}

func TestRouteString(t *testing.T) {
	bs, _ := newBalancers(t, 3)
	a, err := bs[0].RouteString("user:alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bs[0].RouteString("user:alice")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("string route not sticky: %d vs %d", a, b)
	}
	if HashKey("user:alice") == HashKey("user:bob") {
		t.Fatal("hash collision on trivial keys")
	}
}
