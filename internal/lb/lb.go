// Package lb is the application-level load balancer of §3.1: it extracts a
// key from each request and always forwards requests with the same key to
// the same Zeus node, which is what creates the access locality Zeus
// exploits. The key → destination map lives in a Hermes-replicated KV
// (internal/hermes); unknown keys are assigned a destination at random and
// remembered.
package lb

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"zeus/internal/hermes"
	"zeus/internal/membership"
	"zeus/internal/wire"
)

// Balancer routes request keys to Zeus nodes.
type Balancer struct {
	kv    *hermes.KV
	agent *membership.Agent

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a balancer over an existing Hermes KV replica.
func New(kv *hermes.KV, agent *membership.Agent, seed int64) *Balancer {
	return &Balancer{kv: kv, agent: agent, rng: rand.New(rand.NewSource(seed))}
}

// HashKey maps an application-level string key onto the KV keyspace.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Route returns the destination node for key, assigning one at random on
// first sight (sticky thereafter).
func (b *Balancer) Route(key uint64) (wire.NodeID, error) {
	v, ok, err := b.kv.GetWait(key, 100*time.Millisecond)
	if err != nil {
		return wire.NoNode, err
	}
	if ok && len(v) >= 2 {
		dst := wire.NodeID(binary.LittleEndian.Uint16(v))
		if b.agent.IsLive(dst) {
			return dst, nil
		}
		// The sticky destination died: re-assign below.
	}
	dst := b.pick()
	if err := b.Assign(key, dst); err != nil {
		return wire.NoNode, err
	}
	// Re-read: a concurrent assignment may have won (last-writer-wins);
	// every balancer converges to the same destination either way.
	if v, ok, err := b.kv.GetWait(key, 100*time.Millisecond); err == nil && ok && len(v) >= 2 {
		return wire.NodeID(binary.LittleEndian.Uint16(v)), nil
	}
	return dst, nil
}

// Assign pins key to dst explicitly (used by re-sharding policies and the
// scale-in/out experiments).
func (b *Balancer) Assign(key uint64, dst wire.NodeID) error {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], uint16(dst))
	return b.kv.Put(key, buf[:])
}

// RouteString is Route over a string key.
func (b *Balancer) RouteString(key string) (wire.NodeID, error) {
	return b.Route(HashKey(key))
}

func (b *Balancer) pick() wire.NodeID {
	live := b.agent.View().Live.Nodes()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(live) == 0 {
		return wire.NoNode
	}
	return live[b.rng.Intn(len(live))]
}
