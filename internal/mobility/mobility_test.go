package mobility

import (
	"math/rand"
	"testing"
)

func TestSquarestFactors(t *testing.T) {
	cases := []struct{ n, a, b int }{
		{1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 2, 2}, {6, 3, 2}, {12, 4, 3},
	}
	for _, c := range cases {
		a, b := squarestFactors(c.n)
		if a*b != c.n {
			t.Fatalf("factors(%d) = %d×%d", c.n, a, b)
		}
		if a != c.a || b != c.b {
			t.Errorf("factors(%d) = %d×%d, want %d×%d", c.n, a, b, c.a, c.b)
		}
	}
}

func TestShardingCoversAllNodesEvenly(t *testing.T) {
	m := New(DefaultConfig(6))
	counts := map[int]int{}
	for s := StationID(0); int(s) < m.Stations(); s++ {
		n := m.NodeOf(s)
		if n < 0 || n >= 6 {
			t.Fatalf("station %d on node %d", s, n)
		}
		counts[n]++
	}
	if len(counts) != 6 {
		t.Fatalf("only %d nodes used", len(counts))
	}
	min, max := m.Stations(), 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 2*min {
		t.Fatalf("unbalanced sharding: min %d max %d", min, max)
	}
}

func TestTripStaysInGridAndMoves(t *testing.T) {
	m := New(DefaultConfig(6))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		path := m.Trip(rng, i%2 == 0)
		if len(path) == 0 {
			t.Fatal("empty trip")
		}
		for j, s := range path {
			if int(s) < 0 || int(s) >= m.Stations() {
				t.Fatalf("station %d out of grid", s)
			}
			if j > 0 && s == path[j-1] {
				t.Fatalf("trip %d repeats station %d consecutively", i, s)
			}
		}
	}
}

func TestTripLengths(t *testing.T) {
	m := New(DefaultConfig(6))
	if got := m.TripLenKm(true); got != 20 {
		t.Fatalf("driver trip = %d km, want 20 (100 km over 5 trips)", got)
	}
	if got := m.TripLenKm(false); got != 4 {
		t.Fatalf("non-driver trip = %d km, want 4 (20 km over 5 trips)", got)
	}
}

func TestRemoteHandoverFractionBand(t *testing.T) {
	// The paper reports up to 6.2% remote handovers on six nodes. The
	// geometric model should land in a single-digit band around that.
	m := New(DefaultConfig(6))
	a := m.Analyze(20000)
	frac := a.RemoteFraction()
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("six-node remote fraction %.3f outside [0.02, 0.15]", frac)
	}
	if a.Handovers == 0 || a.Trips != 20000 {
		t.Fatalf("analysis incomplete: %+v", a)
	}
}

func TestRemoteFractionGrowsWithNodes(t *testing.T) {
	f3 := New(DefaultConfig(3)).Analyze(20000).RemoteFraction()
	f6 := New(DefaultConfig(6)).Analyze(20000).RemoteFraction()
	f12 := New(DefaultConfig(12)).Analyze(20000).RemoteFraction()
	if !(f3 < f6 && f6 < f12) {
		t.Fatalf("remote fraction not monotonic: %.3f %.3f %.3f", f3, f6, f12)
	}
	f1 := New(DefaultConfig(1)).Analyze(5000).RemoteFraction()
	if f1 != 0 {
		t.Fatalf("single node has remote handovers: %.3f", f1)
	}
}

func TestRemoteTransactionFraction(t *testing.T) {
	// 5% handovers of which ~6% remote ⇒ ~0.3% remote transactions (§8).
	m := New(DefaultConfig(6))
	frac := m.RemoteTransactionFraction(0.05, 20000)
	if frac <= 0 || frac > 0.01 {
		t.Fatalf("remote tx fraction %.4f outside (0, 1%%]", frac)
	}
}

func TestAnalysisDeterministicUnderSeed(t *testing.T) {
	a := New(DefaultConfig(6)).Analyze(2000)
	b := New(DefaultConfig(6)).Analyze(2000)
	if a != b {
		t.Fatalf("same seed, different analyses: %+v vs %+v", a, b)
	}
}
