// Package mobility models the cellular-handover geography of §2.2 and §8:
// base stations spread on a 1 km grid over a metro area (the paper's Boston
// model [12]), users that are mostly stationary plus a mobile minority
// commuting on straight-line trips (5 one-way trips/day; 100 km/day for
// drivers, 20 km/day for non-drivers), and stations sharded across Zeus
// nodes in contiguous geographic tiles.
//
// A handover between consecutive stations on a trip is *remote* when the two
// stations belong to different nodes. The paper reports up to 6.2 % remote
// handovers on six nodes; RemoteHandoverFraction reproduces that analysis.
package mobility

import (
	"math"
	"math/rand"
)

// StationID identifies one base station.
type StationID int

// Config describes the metro area and deployment.
type Config struct {
	// GridW × GridH base stations at 1 km spacing (the paper provisions
	// ~1000 stations for 2 M users).
	GridW, GridH int
	// Nodes is the number of Zeus servers the stations are sharded over.
	Nodes int
	// DriverFrac is the fraction of mobile users that drive (100 km/day);
	// the rest are non-drivers (20 km/day).
	DriverFrac float64
	// TripsPerDay is the average number of one-way trips per person.
	TripsPerDay int
	// Seed makes analyses reproducible.
	Seed int64
}

// DefaultConfig returns the paper's setup: ~1000 stations, 5 trips/day.
func DefaultConfig(nodes int) Config {
	return Config{GridW: 32, GridH: 32, Nodes: nodes, DriverFrac: 0.5, TripsPerDay: 5, Seed: 1}
}

// Model is an instantiated mobility model.
type Model struct {
	cfg Config
	// tile decomposition: tilesX × tilesY contiguous regions, one per node.
	tilesX, tilesY int
}

// New builds a model, choosing the most square tile decomposition for the
// node count (geographically contiguous shards, as a deployment would).
func New(cfg Config) *Model {
	if cfg.GridW <= 0 {
		cfg.GridW = 32
	}
	if cfg.GridH <= 0 {
		cfg.GridH = 32
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.TripsPerDay <= 0 {
		cfg.TripsPerDay = 5
	}
	m := &Model{cfg: cfg}
	m.tilesX, m.tilesY = squarestFactors(cfg.Nodes)
	return m
}

// squarestFactors returns the factor pair (a, b) of n with a*b = n and the
// smallest |a-b| (e.g. 6 → 3×2, 4 → 2×2, 5 → 5×1).
func squarestFactors(n int) (int, int) {
	best, bestB := n, 1
	for a := 1; a*a <= n; a++ {
		if n%a == 0 {
			best, bestB = n/a, a
		}
	}
	return best, bestB
}

// Stations returns the number of base stations.
func (m *Model) Stations() int { return m.cfg.GridW * m.cfg.GridH }

// Nodes returns the deployment size.
func (m *Model) Nodes() int { return m.cfg.Nodes }

// NodeOf returns the Zeus node hosting station s under the tile sharding.
func (m *Model) NodeOf(s StationID) int {
	x := int(s) % m.cfg.GridW
	y := int(s) / m.cfg.GridW
	tx := x * m.tilesX / m.cfg.GridW
	if tx >= m.tilesX {
		tx = m.tilesX - 1
	}
	ty := y * m.tilesY / m.cfg.GridH
	if ty >= m.tilesY {
		ty = m.tilesY - 1
	}
	return ty*m.tilesX + tx
}

// IsRemote reports whether a handover from station a to b crosses nodes.
func (m *Model) IsRemote(a, b StationID) bool { return m.NodeOf(a) != m.NodeOf(b) }

// TripLenKm returns the per-trip length for a driver or non-driver:
// daily distance divided by trips per day (100/20 km per the study [12]).
func (m *Model) TripLenKm(driver bool) int {
	daily := 20
	if driver {
		daily = 100
	}
	l := daily / m.cfg.TripsPerDay
	if l < 1 {
		l = 1
	}
	return l
}

// Trip generates a straight-line commute: the sequence of stations visited,
// starting at a uniformly random station, heading in a uniformly random
// direction, one station per km, clipped at the grid boundary. Consecutive
// entries are distinct (each step is one handover).
func (m *Model) Trip(rng *rand.Rand, driver bool) []StationID {
	lenKm := m.TripLenKm(driver)
	x := float64(rng.Intn(m.cfg.GridW))
	y := float64(rng.Intn(m.cfg.GridH))
	theta := rng.Float64() * 2 * math.Pi
	dx, dy := math.Cos(theta), math.Sin(theta)
	path := make([]StationID, 0, lenKm+1)
	last := StationID(-1)
	for step := 0; step <= lenKm; step++ {
		cx := int(math.Round(x))
		cy := int(math.Round(y))
		if cx < 0 {
			cx = 0
		}
		if cx >= m.cfg.GridW {
			cx = m.cfg.GridW - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= m.cfg.GridH {
			cy = m.cfg.GridH - 1
		}
		s := StationID(cy*m.cfg.GridW + cx)
		if s != last {
			path = append(path, s)
			last = s
		}
		x += dx
		y += dy
	}
	return path
}

// Analysis is the outcome of a remote-handover study.
type Analysis struct {
	Trips           int
	Handovers       int
	RemoteHandovers int
}

// RemoteFraction returns remote handovers / handovers.
func (a Analysis) RemoteFraction() float64 {
	if a.Handovers == 0 {
		return 0
	}
	return float64(a.RemoteHandovers) / float64(a.Handovers)
}

// Analyze simulates trips commute trips and counts remote handovers — the
// locality analysis behind §8's "up to 6.2 % for six nodes".
func (m *Model) Analyze(trips int) Analysis {
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	var out Analysis
	out.Trips = trips
	for i := 0; i < trips; i++ {
		path := m.Trip(rng, rng.Float64() < m.cfg.DriverFrac)
		for j := 1; j < len(path); j++ {
			out.Handovers++
			if m.IsRemote(path[j-1], path[j]) {
				out.RemoteHandovers++
			}
		}
	}
	return out
}

// RemoteTransactionFraction combines the handover ratio (handovers as a
// fraction of all control-plane requests, 2.5 %–5 % per [45]) with the
// remote-handover fraction to yield the overall remote-transaction fraction
// quoted in §8 (e.g. 5 % × 6.2 % ≈ 0.31 %).
func (m *Model) RemoteTransactionFraction(handoverRatio float64, trips int) float64 {
	return handoverRatio * m.Analyze(trips).RemoteFraction()
}
