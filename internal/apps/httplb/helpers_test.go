package httplb

import "time"

func cfg2s() time.Duration { return 2 * time.Second }
