// Package httplb ports an Nginx-style session-persistence HTTP load
// balancer onto the Zeus datastore (§8.5, Figure 15). The proxy looks up a
// session cookie in the replicated store: if present it routes the request
// to the remembered backend (a local read-only transaction); if absent it
// picks a backend and stores the assignment (a write transaction). Because
// the mapping is replicated, proxies can be added and removed (scale-out /
// scale-in) without losing session stickiness.
package httplb

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"zeus/internal/dbapi"
)

// Config shapes one proxy instance.
type Config struct {
	// Backends is the number of HTTP backend servers to spread over.
	Backends int
	// Sessions is the cookie space size (pre-created assignments).
	Sessions int
	// Node/Nodes locate this proxy's partition in the id space.
	Node, Nodes int
}

// DefaultConfig returns a simulation-scaled proxy.
func DefaultConfig(node, nodes int) Config {
	return Config{Backends: 2, Sessions: 2000, Node: node, Nodes: nodes}
}

// Proxy is one HTTP load balancer instance.
type Proxy struct {
	cfg Config
	db  dbapi.DB

	handled atomic.Uint64
	misses  atomic.Uint64
}

// New binds a proxy to its datastore.
func New(cfg Config, db dbapi.DB) *Proxy {
	if cfg.Backends <= 0 {
		cfg.Backends = 2
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 2000
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	return &Proxy{cfg: cfg, db: db}
}

// SessionObj maps a cookie to its object id (homed at the proxy's node).
func (p *Proxy) SessionObj(cookie int) uint64 {
	return uint64(p.cfg.Nodes)*uint64(cookie) + uint64(p.cfg.Node%p.cfg.Nodes)
}

// SeedObjects enumerates the unassigned session objects (value 0 = no
// backend yet; backends are stored 1-based).
func (p *Proxy) SeedObjects(emit func(obj uint64, home int, data []byte)) {
	for s := 0; s < p.cfg.Sessions; s++ {
		emit(p.SessionObj(s), p.cfg.Node, encodeBackend(0))
	}
}

func encodeBackend(b int) []byte {
	return []byte{byte(b), byte(b >> 8), 0, 0, 0, 0, 0, 0}
}

func decodeBackend(v []byte) int {
	if len(v) < 2 {
		return 0
	}
	return int(v[0]) | int(v[1])<<8
}

// Handle processes one HTTP request carrying the given cookie and returns
// the backend it routes to (1-based).
func (p *Proxy) Handle(worker, cookie int, rng *rand.Rand) (int, error) {
	if cookie < 0 || cookie >= p.cfg.Sessions {
		return 0, fmt.Errorf("httplb: cookie %d out of range", cookie)
	}
	obj := p.SessionObj(cookie)
	// Fast path: sticky lookup with a local read-only transaction.
	var backend int
	err := dbapi.RunRO(p.db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(obj)
		if err != nil {
			return err
		}
		backend = decodeBackend(v)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if backend != 0 {
		p.handled.Add(1)
		return backend, nil
	}
	// Miss: assign a random backend and persist (replicated write).
	p.misses.Add(1)
	choice := 1 + rng.Intn(p.cfg.Backends)
	err = dbapi.Run(p.db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(obj)
		if err != nil {
			return err
		}
		if b := decodeBackend(v); b != 0 {
			choice = b // another proxy assigned concurrently: keep it
			return nil
		}
		return tx.Set(obj, encodeBackend(choice))
	})
	if err != nil {
		return 0, err
	}
	p.handled.Add(1)
	return choice, nil
}

// Stats returns (requests handled, assignment misses).
func (p *Proxy) Stats() (uint64, uint64) { return p.handled.Load(), p.misses.Load() }
