package httplb

import (
	"math/rand"
	"testing"

	"zeus/internal/cluster"
	"zeus/internal/wire"
)

func zeusProxy(t *testing.T, nodes int) ([]*Proxy, *cluster.Cluster) {
	t.Helper()
	opts := cluster.DefaultOptions(nodes)
	opts.Degree = 2
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	var proxies []*Proxy
	for n := 0; n < nodes; n++ {
		cfg := DefaultConfig(n, nodes)
		cfg.Sessions = 100
		p := New(cfg, c.Node(n).DB())
		p.SeedObjects(func(obj uint64, home int, data []byte) {
			c.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
		})
		proxies = append(proxies, p)
	}
	return proxies, c
}

func TestAssignmentIsSticky(t *testing.T) {
	ps, _ := zeusProxy(t, 2)
	rng := rand.New(rand.NewSource(1))
	first, err := ps[0].Handle(0, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if first < 1 || first > 2 {
		t.Fatalf("backend %d out of range", first)
	}
	for i := 0; i < 20; i++ {
		got, err := ps[0].Handle(0, 7, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("session flapped: %d then %d", first, got)
		}
	}
	handled, misses := ps[0].Stats()
	if handled != 21 || misses != 1 {
		t.Fatalf("stats: handled=%d misses=%d", handled, misses)
	}
}

func TestCookieOutOfRange(t *testing.T) {
	ps, _ := zeusProxy(t, 2)
	rng := rand.New(rand.NewSource(1))
	if _, err := ps[0].Handle(0, -1, rng); err == nil {
		t.Fatal("negative cookie accepted")
	}
	if _, err := ps[0].Handle(0, 100000, rng); err == nil {
		t.Fatal("oversized cookie accepted")
	}
}

func TestBackendsSpread(t *testing.T) {
	ps, _ := zeusProxy(t, 2)
	rng := rand.New(rand.NewSource(2))
	seen := map[int]int{}
	for cookie := 0; cookie < 100; cookie++ {
		b, err := ps[0].Handle(0, cookie, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[b]++
	}
	if len(seen) != 2 {
		t.Fatalf("backends used: %v", seen)
	}
}

func TestScaleOutServesExistingSessions(t *testing.T) {
	// Start with one proxy node; assign sessions; scale out and verify the
	// new node routes the same sessions identically (Figure 15's
	// seamless scale-out).
	opts := cluster.DefaultOptions(2)
	opts.Degree = 2
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	cfg := DefaultConfig(0, 2)
	cfg.Sessions = 50
	p0 := New(cfg, c.Node(0).DB())
	p0.SeedObjects(func(obj uint64, home int, data []byte) {
		c.SeedAt(wire.ObjectID(obj), wire.NodeID(home), data)
	})
	rng := rand.New(rand.NewSource(3))
	want := map[int]int{}
	for cookie := 0; cookie < 50; cookie++ {
		b, err := p0.Handle(0, cookie, rng)
		if err != nil {
			t.Fatal(err)
		}
		want[cookie] = b
	}
	if !c.Node(0).WaitReplication(cfg2s()) {
		t.Fatal("replication stalled")
	}
	// The scale-out proxy on node 1 shares the same session objects.
	p1 := New(cfg, c.Node(1).DB())
	for cookie := 0; cookie < 50; cookie++ {
		b, err := p1.Handle(1, cookie, rng)
		if err != nil {
			t.Fatalf("cookie %d on new proxy: %v", cookie, err)
		}
		if b != want[cookie] {
			t.Fatalf("cookie %d rerouted: %d vs %d", cookie, b, want[cookie])
		}
	}
}
