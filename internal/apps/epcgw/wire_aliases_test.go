package epcgw

import "zeus/internal/wire"

// Tiny conversion helpers keeping the test bodies readable.
func wireObj(o uint64) wire.ObjectID { return wire.ObjectID(o) }
func wireNode(n int) wire.NodeID     { return wire.NodeID(n) }
