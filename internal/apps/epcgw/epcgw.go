// Package epcgw ports the control plane of a cellular packet gateway onto
// the Zeus datastore, reproducing the paper's OpenEPC port (§8.5, Figure 13).
//
// The gateway keeps one UE (user equipment) session context and one bearer
// context per subscriber. The control-plane operations are the ones from the
// handover benchmark minus mobility: a *service request* moves the session
// to CONNECTED and installs a bearer; a *release* moves it to IDLE. Each
// operation is one write transaction over both contexts (§8.5: "Each of
// these operations is one transaction").
//
// The gateway runs over any dbapi.DB, which yields the four Figure 13
// configurations: local memory (no replication), a Redis-like blocking store
// (every access a blocking RPC), Zeus with one active and one passive
// replica, and Zeus with two active nodes.
package epcgw

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"zeus/internal/dbapi"
)

// Session states.
const (
	StateIdle uint64 = iota
	StateConnected
)

// Config sizes one gateway instance.
type Config struct {
	// Node is this gateway's node index (its users are homed here).
	Node int
	// Nodes is the deployment size (for the id space).
	Nodes int
	// Users is the number of subscribers homed at this gateway.
	Users int
	// CtxSize is the per-context payload (~400 B, §8.1).
	CtxSize int
	// ParseWork models the signalling-parse cost that bottlenecks the real
	// gateway (Figure 13: "the bottleneck is in parsing and processing the
	// signalling messages, not in the datastore"); it is iterations of a
	// small hash loop per operation.
	ParseWork int
}

// DefaultConfig returns a simulation-scaled gateway. ParseWork is sized so
// signalling parse dominates the per-operation cost, as the paper observes
// of the real gateway ("the bottleneck is in parsing and processing the
// signalling messages, not in the datastore access").
func DefaultConfig(node, nodes int) Config {
	return Config{Node: node, Nodes: nodes, Users: 2000, CtxSize: 400, ParseWork: 600}
}

// Gateway is one control-plane instance bound to a datastore node.
type Gateway struct {
	cfg Config
	db  dbapi.DB
}

// New binds a gateway to its datastore.
func New(cfg Config, db dbapi.DB) *Gateway {
	if cfg.Users <= 0 {
		cfg.Users = 2000
	}
	if cfg.CtxSize < 16 {
		cfg.CtxSize = 400
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	return &Gateway{cfg: cfg, db: db}
}

// UEObj returns the UE context object id for subscriber ue at this gateway.
func (g *Gateway) UEObj(ue int) uint64 {
	return uint64(g.cfg.Nodes)*uint64(ue)*2 + uint64(g.cfg.Node%g.cfg.Nodes)
}

// BearerObj returns the bearer context object id for subscriber ue.
func (g *Gateway) BearerObj(ue int) uint64 {
	return uint64(g.cfg.Nodes)*(uint64(ue)*2+1) + uint64(g.cfg.Node%g.cfg.Nodes)
}

// SeedObjects enumerates (obj, home, initial value) for every context so a
// cluster or baseline deployment can install the initial sharding.
func (g *Gateway) SeedObjects(emit func(obj uint64, home int, data []byte)) {
	for ue := 0; ue < g.cfg.Users; ue++ {
		emit(g.UEObj(ue), g.cfg.Node, g.encode(StateIdle, 0))
		emit(g.BearerObj(ue), g.cfg.Node, g.encode(0, 0))
	}
}

func (g *Gateway) encode(state, seq uint64) []byte {
	b := make([]byte, g.cfg.CtxSize)
	binary.LittleEndian.PutUint64(b, state)
	binary.LittleEndian.PutUint64(b[8:], seq)
	return b
}

func decode(b []byte) (state, seq uint64) {
	if len(b) < 16 {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:])
}

// parse burns the configured signalling-parse cost.
func (g *Gateway) parse(ue int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	acc := uint64(ue)
	for i := 0; i < g.cfg.ParseWork; i++ {
		binary.LittleEndian.PutUint64(buf[:], acc)
		_, _ = h.Write(buf[:])
		acc = h.Sum64()
	}
	return acc
}

// ServiceRequest processes a UE wake-up: one write transaction that marks
// the session CONNECTED and installs the bearer.
func (g *Gateway) ServiceRequest(worker, ue int) error {
	if ue < 0 || ue >= g.cfg.Users {
		return fmt.Errorf("epcgw: ue %d out of range", ue)
	}
	stamp := g.parse(ue)
	ueObj, brObj := g.UEObj(ue), g.BearerObj(ue)
	return dbapi.Run(g.db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(ueObj)
		if err != nil {
			return err
		}
		_, seq := decode(v)
		if err := tx.Set(ueObj, g.encode(StateConnected, seq+1)); err != nil {
			return err
		}
		return tx.Set(brObj, g.encode(stamp, seq+1))
	})
}

// Release processes a UE sleep: one write transaction back to IDLE.
func (g *Gateway) Release(worker, ue int) error {
	if ue < 0 || ue >= g.cfg.Users {
		return fmt.Errorf("epcgw: ue %d out of range", ue)
	}
	g.parse(ue)
	ueObj, brObj := g.UEObj(ue), g.BearerObj(ue)
	return dbapi.Run(g.db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(ueObj)
		if err != nil {
			return err
		}
		_, seq := decode(v)
		if err := tx.Set(ueObj, g.encode(StateIdle, seq+1)); err != nil {
			return err
		}
		return tx.Set(brObj, g.encode(0, seq+1))
	})
}

// State returns a subscriber's session state via a read-only transaction.
func (g *Gateway) State(worker, ue int) (uint64, error) {
	var state uint64
	err := dbapi.RunRO(g.db, worker, func(tx dbapi.Txn) error {
		v, err := tx.Get(g.UEObj(ue))
		if err != nil {
			return err
		}
		state, _ = decode(v)
		return nil
	})
	return state, err
}

// Step processes the i-th operation of the Figure 13 mix for one subscriber:
// even steps are service requests, odd steps releases. Open-loop drivers use
// it so each scheduled arrival maps to exactly one signalling transaction.
func (g *Gateway) Step(worker, ue, i int) error {
	if i%2 == 0 {
		return g.ServiceRequest(worker, ue)
	}
	return g.Release(worker, ue)
}

// Drive runs the Figure 13 mix (alternating service requests and releases)
// for ops operations and returns the number completed.
func (g *Gateway) Drive(worker, ops int, rng *rand.Rand) (int, error) {
	done := 0
	for i := 0; i < ops; i++ {
		ue := rng.Intn(g.cfg.Users)
		var err error
		if i%2 == 0 {
			err = g.ServiceRequest(worker, ue)
		} else {
			err = g.Release(worker, ue)
		}
		if err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// LocalDB is the "local memory, no replication" datastore of Figure 13: a
// process-local map with the dbapi interface and single-writer semantics per
// object (no cross-node anything).
type LocalDB struct {
	objs map[uint64]*localObj
}

type localObj struct {
	val []byte
	ver uint64
}

// NewLocalDB creates an empty local store.
func NewLocalDB() *LocalDB { return &LocalDB{objs: make(map[uint64]*localObj)} }

// Seed installs an object.
func (l *LocalDB) Seed(obj uint64, data []byte) {
	l.objs[obj] = &localObj{val: append([]byte(nil), data...)}
}

type localTxn struct {
	db     *LocalDB
	reads  map[uint64]uint64
	writes map[uint64][]byte
	ro     bool
}

// Begin starts a write transaction. LocalDB is not thread-safe across
// workers by design (the real gateway's local-memory mode is single-threaded
// per UE partition); callers partition users per worker.
func (l *LocalDB) Begin(worker int) dbapi.Txn {
	return &localTxn{db: l, reads: map[uint64]uint64{}, writes: map[uint64][]byte{}}
}

// BeginRO starts a read-only transaction.
func (l *LocalDB) BeginRO(worker int) dbapi.Txn {
	t := l.Begin(worker).(*localTxn)
	t.ro = true
	return t
}

func (t *localTxn) Get(obj uint64) ([]byte, error) {
	if w, ok := t.writes[obj]; ok {
		return append([]byte(nil), w...), nil
	}
	o, ok := t.db.objs[obj]
	if !ok {
		return nil, dbapi.ErrNoReplica
	}
	t.reads[obj] = o.ver
	return append([]byte(nil), o.val...), nil
}

func (t *localTxn) Set(obj uint64, val []byte) error {
	if t.ro {
		return fmt.Errorf("epcgw: Set on read-only txn")
	}
	t.writes[obj] = append([]byte(nil), val...)
	return nil
}

func (t *localTxn) Commit() error {
	for obj, ver := range t.reads {
		if o, ok := t.db.objs[obj]; !ok || o.ver != ver {
			return dbapi.ErrConflict
		}
	}
	for obj, val := range t.writes {
		o, ok := t.db.objs[obj]
		if !ok {
			o = &localObj{}
			t.db.objs[obj] = o
		}
		o.val = val
		o.ver++
	}
	return nil
}

func (t *localTxn) Abort() {}

var _ dbapi.DB = (*LocalDB)(nil)
