package epcgw

import (
	"math/rand"
	"testing"

	"zeus/internal/cluster"
)

func zeusGateway(t *testing.T, nodes, activeNode int) (*Gateway, *cluster.Cluster) {
	t.Helper()
	opts := cluster.DefaultOptions(nodes)
	opts.Degree = 2
	opts.Workers = 4
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	cfg := DefaultConfig(activeNode, nodes)
	cfg.Users = 100
	cfg.ParseWork = 4
	g := New(cfg, c.Node(activeNode).DB())
	g.SeedObjects(func(obj uint64, home int, data []byte) {
		c.SeedAt(wireObj(obj), wireNode(home), data)
	})
	return g, c
}

func TestServiceRequestTransitionsState(t *testing.T) {
	g, _ := zeusGateway(t, 2, 0)
	if err := g.ServiceRequest(0, 7); err != nil {
		t.Fatal(err)
	}
	st, err := g.State(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st != StateConnected {
		t.Fatalf("state = %d, want CONNECTED", st)
	}
	if err := g.Release(0, 7); err != nil {
		t.Fatal(err)
	}
	st, err = g.State(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st != StateIdle {
		t.Fatalf("state = %d, want IDLE", st)
	}
}

func TestOutOfRangeUE(t *testing.T) {
	g, _ := zeusGateway(t, 2, 0)
	if err := g.ServiceRequest(0, -1); err == nil {
		t.Fatal("negative ue accepted")
	}
	if err := g.Release(0, 10000); err == nil {
		t.Fatal("oversized ue accepted")
	}
}

func TestDriveMix(t *testing.T) {
	g, _ := zeusGateway(t, 2, 0)
	done, err := g.Drive(0, 50, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if done != 50 {
		t.Fatalf("drove %d/50", done)
	}
}

func TestTwoActiveGateways(t *testing.T) {
	opts := cluster.DefaultOptions(2)
	opts.Degree = 2
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	var gws []*Gateway
	for n := 0; n < 2; n++ {
		cfg := DefaultConfig(n, 2)
		cfg.Users = 50
		cfg.ParseWork = 4
		g := New(cfg, c.Node(n).DB())
		g.SeedObjects(func(obj uint64, home int, data []byte) {
			c.SeedAt(wireObj(obj), wireNode(home), data)
		})
		gws = append(gws, g)
	}
	// Both active nodes process their own users concurrently.
	done := make(chan error, 2)
	for n := 0; n < 2; n++ {
		go func(n int) {
			_, err := gws[n].Drive(n, 40, rand.New(rand.NewSource(int64(n))))
			done <- err
		}(n)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocalDBGateway(t *testing.T) {
	ldb := NewLocalDB()
	cfg := DefaultConfig(0, 1)
	cfg.Users = 20
	cfg.ParseWork = 2
	g := New(cfg, ldb)
	g.SeedObjects(func(obj uint64, home int, data []byte) { ldb.Seed(obj, data) })
	if err := g.ServiceRequest(0, 3); err != nil {
		t.Fatal(err)
	}
	st, err := g.State(0, 3)
	if err != nil || st != StateConnected {
		t.Fatalf("local state: %d %v", st, err)
	}
	// Missing object error.
	tx := ldb.Begin(0)
	if _, err := tx.Get(999999); err == nil {
		t.Fatal("missing object read succeeded")
	}
	tx.Abort()
}

func TestSequenceNumbersAdvance(t *testing.T) {
	g, c := zeusGateway(t, 2, 0)
	for i := 0; i < 5; i++ {
		if err := g.ServiceRequest(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.Release(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	o, ok := c.Node(0).Store().Get(wireObj(g.UEObj(1)))
	if !ok {
		t.Fatal("ue ctx missing")
	}
	o.Mu.Lock()
	_, seq := decode(o.Data)
	o.Mu.Unlock()
	if seq != 10 {
		t.Fatalf("seq = %d, want 10", seq)
	}
}
