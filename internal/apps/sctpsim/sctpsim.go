// Package sctpsim ports an SCTP-like transport protocol onto the Zeus
// datastore, reproducing the paper's usrsctp port (§8.5, Figure 14).
//
// The association state — TSNs, congestion window, RTO, in-flight
// accounting — lives in a single large Zeus object (the paper reports
// ~6.8 KB replicated per packet event). Every packet transmission, SACK
// reception and timer expiry is one write transaction, so a node failure
// looks to the peer like network loss and the surviving replica resumes the
// association (the paper's motivation: current SCTP stacks cannot survive a
// node failure).
//
// The simulation drives a single flow: DATA chunks are "sent" in
// transactions; every SackEvery packets a SACK event acknowledges them. The
// measured quantity is goodput (payload bytes per second) for a given packet
// size, with and without replication — the Figure 14 comparison.
package sctpsim

import (
	"encoding/binary"
	"fmt"

	"zeus/internal/dbapi"
)

// Config shapes one association.
type Config struct {
	// StateSize is the serialized association state (~6.8 KB in §8.5).
	StateSize int
	// MTU bounds packet payloads.
	MTU int
	// InitialCwnd and MaxCwnd are in packets (simplified byte-less cwnd).
	InitialCwnd int
	MaxCwnd     int
	// SackEvery is how many DATA packets one SACK acknowledges.
	SackEvery int
}

// DefaultConfig mirrors the paper's experiment.
func DefaultConfig() Config {
	return Config{StateSize: 6800, MTU: 1500, InitialCwnd: 10, MaxCwnd: 1024, SackEvery: 2}
}

// State is the replicated association state.
type State struct {
	NextTSN   uint64 // next transmission sequence number
	CumAck    uint64 // highest cumulatively acked TSN
	Cwnd      uint64 // congestion window (packets)
	SSThresh  uint64
	InFlight  uint64 // unacked packets
	RTOMillis uint64
	Retrans   uint64 // retransmission count
	BytesSent uint64
	BytesAck  uint64
}

// Encode serializes the state padded to size.
func (s State) Encode(size int) []byte {
	if size < 72 {
		size = 72
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:], s.NextTSN)
	binary.LittleEndian.PutUint64(b[8:], s.CumAck)
	binary.LittleEndian.PutUint64(b[16:], s.Cwnd)
	binary.LittleEndian.PutUint64(b[24:], s.SSThresh)
	binary.LittleEndian.PutUint64(b[32:], s.InFlight)
	binary.LittleEndian.PutUint64(b[40:], s.RTOMillis)
	binary.LittleEndian.PutUint64(b[48:], s.Retrans)
	binary.LittleEndian.PutUint64(b[56:], s.BytesSent)
	binary.LittleEndian.PutUint64(b[64:], s.BytesAck)
	return b
}

// DecodeState parses a serialized association state.
func DecodeState(b []byte) (State, error) {
	if len(b) < 72 {
		return State{}, fmt.Errorf("sctpsim: state too short (%d bytes)", len(b))
	}
	return State{
		NextTSN:   binary.LittleEndian.Uint64(b[0:]),
		CumAck:    binary.LittleEndian.Uint64(b[8:]),
		Cwnd:      binary.LittleEndian.Uint64(b[16:]),
		SSThresh:  binary.LittleEndian.Uint64(b[24:]),
		InFlight:  binary.LittleEndian.Uint64(b[32:]),
		RTOMillis: binary.LittleEndian.Uint64(b[40:]),
		Retrans:   binary.LittleEndian.Uint64(b[48:]),
		BytesSent: binary.LittleEndian.Uint64(b[56:]),
		BytesAck:  binary.LittleEndian.Uint64(b[64:]),
	}, nil
}

// Assoc is one SCTP-like association whose state lives in a datastore.
type Assoc struct {
	cfg    Config
	db     dbapi.DB
	obj    uint64
	worker int
}

// InitialState returns a fresh association state.
func InitialState(cfg Config) State {
	return State{
		NextTSN: 1, CumAck: 0,
		Cwnd: uint64(cfg.InitialCwnd), SSThresh: uint64(cfg.MaxCwnd / 2),
		RTOMillis: 200,
	}
}

// New binds an association to its datastore object. The object must already
// exist holding InitialState(cfg).Encode(cfg.StateSize).
func New(cfg Config, db dbapi.DB, obj uint64, worker int) *Assoc {
	if cfg.StateSize < 72 {
		cfg.StateSize = 6800
	}
	if cfg.SackEvery <= 0 {
		cfg.SackEvery = 2
	}
	return &Assoc{cfg: cfg, db: db, obj: obj, worker: worker}
}

// update applies fn to the association state in one write transaction —
// every packet, SACK and timer event goes through here (§8.5).
func (a *Assoc) update(fn func(*State)) error {
	return dbapi.Run(a.db, a.worker, func(tx dbapi.Txn) error {
		raw, err := tx.Get(a.obj)
		if err != nil {
			return err
		}
		st, err := DecodeState(raw)
		if err != nil {
			return err
		}
		fn(&st)
		return tx.Set(a.obj, st.Encode(a.cfg.StateSize))
	})
}

// SendData transmits one DATA chunk of payload bytes (clipped to MTU);
// returns false when the congestion window is full (caller should SACK or
// expire a timer).
func (a *Assoc) SendData(payload int) (bool, error) {
	if payload > a.cfg.MTU {
		payload = a.cfg.MTU
	}
	sent := false
	err := a.update(func(s *State) {
		if s.InFlight >= s.Cwnd {
			sent = false
			return
		}
		s.NextTSN++
		s.InFlight++
		s.BytesSent += uint64(payload)
		sent = true
	})
	return sent, err
}

// RecvSack processes a cumulative SACK for n packets of payload bytes each:
// in-flight shrinks and the congestion window grows (slow start below
// ssthresh, congestion avoidance above).
func (a *Assoc) RecvSack(n int, payload int) error {
	return a.update(func(s *State) {
		adv := uint64(n)
		if adv > s.InFlight {
			adv = s.InFlight
		}
		s.CumAck += adv
		s.InFlight -= adv
		s.BytesAck += adv * uint64(payload)
		if s.Cwnd < s.SSThresh {
			s.Cwnd += adv // slow start
		} else if adv > 0 {
			s.Cwnd++ // congestion avoidance (per-SACK approximation)
		}
		if s.Cwnd > uint64(a.cfg.MaxCwnd) {
			s.Cwnd = uint64(a.cfg.MaxCwnd)
		}
	})
}

// PacketEvent processes one open-loop arrival: a DATA transmission when the
// congestion window has room, otherwise the SACK that reopens it. Either way
// it is exactly one write transaction over the association state — the
// per-packet-event unit the paper replicates (§8.5).
func (a *Assoc) PacketEvent(payload int) error {
	ok, err := a.SendData(payload)
	if err != nil || ok {
		return err
	}
	return a.RecvSack(a.cfg.SackEvery, payload)
}

// TimerExpiry handles a retransmission timeout: multiplicative decrease,
// RTO backoff, and one retransmission.
func (a *Assoc) TimerExpiry() error {
	return a.update(func(s *State) {
		s.SSThresh = s.Cwnd / 2
		if s.SSThresh < 2 {
			s.SSThresh = 2
		}
		s.Cwnd = uint64(a.cfg.InitialCwnd)
		s.RTOMillis *= 2
		if s.RTOMillis > 60000 {
			s.RTOMillis = 60000
		}
		s.Retrans++
	})
}

// State reads the association state via a read-only transaction.
func (a *Assoc) State() (State, error) {
	var st State
	err := dbapi.RunRO(a.db, a.worker, func(tx dbapi.Txn) error {
		raw, err := tx.Get(a.obj)
		if err != nil {
			return err
		}
		var derr error
		st, derr = DecodeState(raw)
		return derr
	})
	return st, err
}

// TransferResult reports one measured transfer.
type TransferResult struct {
	Packets uint64
	Bytes   uint64
	Sacks   uint64
	Stalls  uint64 // cwnd-full events resolved by an immediate SACK
}

// Transfer pushes packets DATA chunks of payload bytes through the
// association, SACKing every SackEvery packets — the Figure 14 inner loop.
func (a *Assoc) Transfer(packets int, payload int) (TransferResult, error) {
	var res TransferResult
	if payload > a.cfg.MTU {
		payload = a.cfg.MTU
	}
	pendingSack := 0
	for int(res.Packets) < packets {
		ok, err := a.SendData(payload)
		if err != nil {
			return res, err
		}
		if !ok {
			// Window full: the peer's SACK arrives.
			if err := a.RecvSack(pendingSack+1, payload); err != nil {
				return res, err
			}
			res.Sacks++
			res.Stalls++
			pendingSack = 0
			continue
		}
		res.Packets++
		res.Bytes += uint64(payload)
		pendingSack++
		if pendingSack >= a.cfg.SackEvery {
			if err := a.RecvSack(pendingSack, payload); err != nil {
				return res, err
			}
			res.Sacks++
			pendingSack = 0
		}
	}
	return res, nil
}
