package sctpsim

import "time"

const cfgTimeout = 2 * time.Second
