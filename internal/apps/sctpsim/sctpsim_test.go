package sctpsim

import (
	"testing"

	"zeus/internal/cluster"
	"zeus/internal/wire"
)

func zeusAssoc(t *testing.T, degree int) *Assoc {
	t.Helper()
	opts := cluster.DefaultOptions(2)
	opts.Degree = degree
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	cfg := DefaultConfig()
	cfg.StateSize = 512 // keep test payloads small
	c.SeedAt(wire.ObjectID(1), wire.NodeID(0), InitialState(cfg).Encode(cfg.StateSize))
	return New(cfg, c.Node(0).DB(), 1, 0)
}

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	s := State{NextTSN: 10, CumAck: 5, Cwnd: 32, SSThresh: 16, InFlight: 5,
		RTOMillis: 400, Retrans: 2, BytesSent: 7000, BytesAck: 3500}
	got, err := DecodeState(s.Encode(6800))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v vs %+v", got, s)
	}
	if _, err := DecodeState(make([]byte, 10)); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestSendDataRespectsCwnd(t *testing.T) {
	a := zeusAssoc(t, 2)
	// InitialCwnd = 10: the 11th unacked send must refuse.
	for i := 0; i < 10; i++ {
		ok, err := a.SendData(150)
		if err != nil || !ok {
			t.Fatalf("send %d: ok=%v err=%v", i, ok, err)
		}
	}
	ok, err := a.SendData(150)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send beyond cwnd succeeded")
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 10 || st.NextTSN != 11 {
		t.Fatalf("state after window fill: %+v", st)
	}
}

func TestSackAdvancesAndGrowsWindow(t *testing.T) {
	a := zeusAssoc(t, 2)
	for i := 0; i < 4; i++ {
		if _, err := a.SendData(150); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.RecvSack(4, 150); err != nil {
		t.Fatal(err)
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 || st.CumAck != 4 {
		t.Fatalf("after sack: %+v", st)
	}
	if st.Cwnd <= 10 {
		t.Fatalf("slow start did not grow cwnd: %d", st.Cwnd)
	}
	if st.BytesAck != 600 {
		t.Fatalf("bytes acked = %d", st.BytesAck)
	}
}

func TestTimerExpiryBacksOff(t *testing.T) {
	a := zeusAssoc(t, 2)
	if err := a.TimerExpiry(); err != nil {
		t.Fatal(err)
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.RTOMillis != 400 || st.Retrans != 1 {
		t.Fatalf("after timeout: %+v", st)
	}
	if st.SSThresh < 2 {
		t.Fatalf("ssthresh floor violated: %d", st.SSThresh)
	}
}

func TestTransferCompletes(t *testing.T) {
	a := zeusAssoc(t, 2)
	res, err := a.Transfer(100, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 100 || res.Bytes != 15000 {
		t.Fatalf("transfer: %+v", res)
	}
	if res.Sacks == 0 {
		t.Fatal("no sacks during transfer")
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesSent != 15000 {
		t.Fatalf("bytes sent = %d", st.BytesSent)
	}
}

func TestTransferLargePacketsClippedToMTU(t *testing.T) {
	a := zeusAssoc(t, 2)
	res, err := a.Transfer(10, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 10*1500 {
		t.Fatalf("MTU clipping failed: %d bytes", res.Bytes)
	}
}

func TestReplicationSurvivesStateOnBackup(t *testing.T) {
	opts := cluster.DefaultOptions(2)
	opts.Degree = 2
	c := cluster.New(opts)
	t.Cleanup(c.Close)
	cfg := DefaultConfig()
	cfg.StateSize = 512
	c.SeedAt(wire.ObjectID(1), wire.NodeID(0), InitialState(cfg).Encode(cfg.StateSize))
	a := New(cfg, c.Node(0).DB(), 1, 0)
	if _, err := a.Transfer(20, 150); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).WaitReplication(cfgTimeout) {
		t.Fatal("replication stalled")
	}
	// The backup replica holds the association state: a failover peer
	// could resume from here.
	o, ok := c.Node(1).Store().Get(wire.ObjectID(1))
	if !ok {
		t.Fatal("no replica on backup")
	}
	o.Mu.Lock()
	st, err := DecodeState(o.Data)
	o.Mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesSent != 20*150 {
		t.Fatalf("backup state stale: %+v", st)
	}
}
