// Package linttest is a minimal analysistest-style harness for the zeuslint
// analyzers: it loads a fixture package from internal/lint/testdata, runs one
// analyzer over it through lint.Run (so //lint:allow waivers apply exactly as
// in production), and matches the findings against `// want` comments.
//
// A want comment annotates the line the diagnostic lands on and carries a
// backquoted regular expression the message must match:
//
//	o.Data[0] = 1 // want `in-place element write`
//
// Unmatched wants and unexpected findings both fail the test, which makes the
// comments the committed golden diagnostics for each analyzer.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"zeus/internal/lint"
	"zeus/internal/lint/analysis"
	"zeus/internal/lint/loader"
)

// want is one expected diagnostic: a file/line anchor plus a message regexp.
type want struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/<dir> (relative to internal/lint), runs a through
// lint.Run, and matches findings against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadPkg(t, dir)
	findings := runAnalyzer(t, pkg, a)
	wants := collectWants(t, pkg)
	for _, f := range findings {
		if w := match(wants, f.Pos.Filename, f.Pos.Line, f.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// Findings loads testdata/<dir> and returns the raw lint.Run output for a —
// for tests that assert on rules directly (e.g. the malformed-waiver case).
func Findings(t *testing.T, dir string, a *analysis.Analyzer) []lint.Finding {
	t.Helper()
	return runAnalyzer(t, loadPkg(t, dir), a)
}

// loadPkg type-checks the fixture once; wants and findings both come from it.
func loadPkg(t *testing.T, dir string) *loader.Package {
	t.Helper()
	pkg, err := loader.LoadDir(testdataDir(t, dir), "zeus/internal/lint/testdata/"+dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	return pkg
}

func runAnalyzer(t *testing.T, pkg *loader.Package, a *analysis.Analyzer) []lint.Finding {
	t.Helper()
	findings, err := lint.Run([]*loader.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkg.Path, err)
	}
	return findings
}

// testdataDir resolves internal/lint/testdata/<dir> from this source file's
// location, so the harness works regardless of the test's working directory.
func testdataDir(t *testing.T, dir string) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(filepath.Dir(self)), "testdata", dir)
}

// collectWants parses the fixture's `// want` comments.
func collectWants(t *testing.T, pkg *loader.Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, "// want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				re, err := parseWant(strings.TrimSpace(text))
				if err != nil {
					t.Fatalf("%s:%d: %v", name, pos.Line, err)
				}
				wants = append(wants, &want{file: name, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// parseWant extracts the backquoted regexp from a want comment body.
func parseWant(s string) (*regexp.Regexp, error) {
	if len(s) < 2 || s[0] != '`' || s[len(s)-1] != '`' {
		return nil, fmt.Errorf("want comment must carry a backquoted regexp, got %q", s)
	}
	re, err := regexp.Compile(s[1 : len(s)-1])
	if err != nil {
		return nil, fmt.Errorf("bad want regexp %q: %v", s, err)
	}
	return re, nil
}

// match finds the first unmatched want on the finding's file/line whose
// regexp matches the message.
func match(wants []*want, filename string, line int, msg string) *want {
	base := filepath.Base(filename)
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
