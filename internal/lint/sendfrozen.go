package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"zeus/internal/lint/analysis"
)

// SendFrozen enforces the zero-copy fabric contract: a wire message value is
// frozen the moment it is handed to a send-side entry point. FabricMem
// delivers commit messages with no codec round trip (the receiver aliases
// the very struct the sender built), the reliable transport's retransmit
// queue holds the message until it is acked, and the commit engine's
// copy-on-write resend path assumes the original R-INV is immutable once in
// flight. Writing a field after the hand-off therefore races with delivery:
// the receiver may observe either value, or a torn mix.
//
// The analyzer tracks, per function, local variables of wire message type
// (pointers to structs in zeus/internal/wire, or wire.Msg interfaces) passed
// to a callee named Send, SendBatch, Multicast, Broadcast, send, enqueue or
// Enqueue, and flags any later write *through* the variable (m.Field = …,
// m.Updates[i] = …, *m = …). Rebinding the variable itself (m = &…{}) un-
// freezes it: that is a new message, not a mutation of the sent one. The
// walk is lexical (source order approximates program order inside one
// function), which is exactly the shape of the PR-4 failure mode this rule
// pins: build message, send it, then "fix up" a field for the next use.
var SendFrozen = &analysis.Analyzer{
	Name: "sendfrozen",
	Doc:  "wire messages must not be written after Send/SendBatch/Multicast/enqueue",
	Run:  runSendFrozen,
}

// sendNames are callee names that freeze their message arguments.
var sendNames = map[string]bool{
	"Send": true, "SendBatch": true, "Multicast": true, "Broadcast": true,
	"send": true, "enqueue": true, "Enqueue": true,
}

func runSendFrozen(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSendFrozenFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// sfEvent is one ordered occurrence of a tracked variable.
type sfEvent struct {
	pos  token.Pos
	kind int // 0 = sent, 1 = rebound, 2 = written through
	expr ast.Expr
	fn   string // send callee, for the diagnostic
}

func checkSendFrozenFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	events := make(map[types.Object][]sfEvent)

	add := func(obj types.Object, ev sfEvent) {
		events[obj] = append(events[obj], ev)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			name := calleeName(v)
			if !sendNames[name] {
				return true
			}
			for _, arg := range v.Args {
				if obj := wireMsgVar(info, arg); obj != nil {
					add(obj, sfEvent{pos: v.Pos(), kind: 0, fn: name})
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					// Plain rebind: a fresh message takes over the name.
					if obj := info.Uses[id]; obj != nil && events[obj] != nil {
						add(obj, sfEvent{pos: lhs.Pos(), kind: 1})
					}
					continue
				}
				if base, obj := writeBase(info, lhs); obj != nil {
					add(obj, sfEvent{pos: base.Pos(), kind: 2, expr: lhs})
				}
			}
		case *ast.IncDecStmt:
			if base, obj := writeBase(info, v.X); obj != nil {
				add(obj, sfEvent{pos: base.Pos(), kind: 2, expr: v.X})
			}
		}
		return true
	})

	for obj, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		frozenBy := ""
		for _, ev := range evs {
			switch ev.kind {
			case 0:
				frozenBy = ev.fn
			case 1:
				frozenBy = ""
			case 2:
				if frozenBy != "" {
					pass.Reportf(ev.pos, "wire message %s written after being handed to %s: the zero-copy fabric and retransmit queues may still reference it (copy-on-write a fresh message instead)", obj.Name(), frozenBy)
				}
			}
		}
	}
}

// wireMsgVar returns the local/param variable denoted by arg (looking
// through &x) when sending it shares the variable's storage with the
// transport: &value, a *wire.SomeStruct pointer, or a wire.Msg interface. A
// bare struct value is copied into the interface at the call, so later
// writes to the variable cannot reach the sent message and are not tracked.
func wireMsgVar(info *types.Info, arg ast.Expr) types.Object {
	addressed := false
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = u.X
		addressed = true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !isWireMsgType(obj.Type()) {
		return nil
	}
	if !addressed {
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Interface:
		default:
			return nil // sent by value: the transport got a copy
		}
	}
	return obj
}

// isWireMsgType reports whether t is a pointer to a struct declared in
// zeus/internal/wire, or a named interface from that package (wire.Msg).
func isWireMsgType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != wirePkg {
		return false
	}
	switch n.Underlying().(type) {
	case *types.Struct, *types.Interface:
		return true
	}
	return false
}

// writeBase unwraps an assignment target (m.F, m.F[i], (*m).F, *m) to the
// root identifier when that identifier is a wire message variable; the
// write then mutates the sent value rather than rebinding the name.
func writeBase(info *types.Info, lhs ast.Expr) (*ast.Ident, types.Object) {
	e := lhs
	depth := 0
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
			depth++
		case *ast.IndexExpr:
			e = v.X
			depth++
		case *ast.SliceExpr:
			e = v.X
			depth++
		case *ast.StarExpr:
			e = v.X
			depth++
		case *ast.Ident:
			if depth == 0 {
				return nil, nil // plain rebind, handled by the caller
			}
			obj, ok := info.Uses[v].(*types.Var)
			if !ok || !isWireMsgType(obj.Type()) {
				return nil, nil
			}
			return v, obj
		default:
			return nil, nil
		}
	}
}
