// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that zeuslint's analyzers are
// written against. The build environment pins the module to the standard
// library only, so the real framework is unavailable; this package keeps the
// analyzers source-compatible with it (same Analyzer/Pass/Diagnostic shapes,
// same Run signature) so they can be moved onto x/tools unchanged if the
// dependency ever lands.
//
// Only the subset zeuslint needs is implemented: single-pass analyzers over
// one type-checked package, reporting position+message diagnostics. Facts,
// requires-graphs and suggested fixes are out of scope.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one lint rule.
type Analyzer struct {
	// Name identifies the rule; it is the key used by //lint:allow waivers
	// and the -rules command-line filter.
	Name string
	// Doc is the human-readable contract the rule enforces. The first line
	// is the one-line summary.
	Doc string
	// Run applies the rule to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass carries one package's load results to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
