package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"zeus/internal/lint/analysis"
)

// storagePkg is the import path owning the WAL record model.
const storagePkg = "zeus/internal/storage"

// WalFrozen enforces the storage package's durability contract at the
// call sites that carry it:
//
//   - A storage.Record (or slice of records) handed to an Append is frozen:
//     the group-commit log retains and encodes it asynchronously, so a later
//     write through the same variable races the WAL encoder — the segment
//     may persist either value, or a torn mix, and replay diverges from what
//     the follower acknowledged.
//
//   - An R-ACK must not leave before the storage write it depends on
//     returns. In any function that both appends WAL records and hands a
//     CommitAck to a send-side entry point, the append must come first
//     (source order approximates program order, as in sendfrozen), and the
//     Append error must be consumed — a discarded error acks a write that
//     may not be durable. ackDurable in the commit engine is the sanctioned
//     choke point; best-effort appends (recCommitted, recGrant) live in
//     functions that send no acks and stay exempt.
var WalFrozen = &analysis.Analyzer{
	Name: "walfrozen",
	Doc:  "WAL records are frozen at Append; acks follow the Append they depend on, with its error checked",
	Run:  runWalFrozen,
}

func runWalFrozen(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWalFrozenFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// wfEvent is one ordered occurrence of a tracked record variable.
type wfEvent struct {
	pos  token.Pos
	kind int // 0 = appended (frozen), 1 = rebound, 2 = written through
}

func checkWalFrozenFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	events := make(map[types.Object][]wfEvent)
	var appends []token.Pos   // WAL Append call positions
	var discarded []token.Pos // WAL Appends whose error is dropped
	var acks []token.Pos      // CommitAck send positions

	add := func(obj types.Object, ev wfEvent) {
		events[obj] = append(events[obj], ev)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			// A WAL Append as a bare statement drops its error.
			if call, ok := v.X.(*ast.CallExpr); ok && isWalAppend(info, call) {
				discarded = append(discarded, call.Pos())
			}
		case *ast.AssignStmt:
			// `_ = l.Append(...)` drops the error just as silently.
			if call, ok := soleRHSCall(v); ok && isWalAppend(info, call) && allBlank(v.Lhs) {
				discarded = append(discarded, call.Pos())
			}
			for _, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && events[obj] != nil {
						add(obj, wfEvent{pos: lhs.Pos(), kind: 1})
					}
					continue
				}
				if base, obj := recordWriteBase(info, lhs); obj != nil {
					add(obj, wfEvent{pos: base.Pos(), kind: 2})
				}
			}
		case *ast.IncDecStmt:
			if base, obj := recordWriteBase(info, v.X); obj != nil {
				add(obj, wfEvent{pos: base.Pos(), kind: 2})
			}
		case *ast.CallExpr:
			if isWalAppend(info, v) {
				appends = append(appends, v.Pos())
				for _, arg := range v.Args {
					if obj := recordVar(info, arg); obj != nil {
						add(obj, wfEvent{pos: v.Pos(), kind: 0})
					}
				}
				return true
			}
			if sendNames[calleeName(v)] {
				for _, arg := range v.Args {
					if isCommitAckExpr(info, arg) {
						acks = append(acks, v.Pos())
						break
					}
				}
			}
		}
		return true
	})

	// Contract 1: records are frozen at Append.
	for obj, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		frozen := false
		for _, ev := range evs {
			switch ev.kind {
			case 0:
				frozen = true
			case 1:
				frozen = false
			case 2:
				if frozen {
					pass.Reportf(ev.pos, "WAL record %s written after being handed to Append: the group-commit log may still be encoding it (build a fresh record instead)", obj.Name())
				}
			}
		}
	}

	// Contract 2: in an acknowledging function, durability precedes the ack
	// and its outcome is checked.
	if len(acks) == 0 || len(appends) == 0 {
		return
	}
	first := appends[0]
	for _, p := range appends[1:] {
		if p < first {
			first = p
		}
	}
	for _, ack := range acks {
		if ack < first {
			pass.Reportf(ack, "CommitAck sent before the WAL Append it depends on returns: a coordinator must never see an ack for a write the follower could forget")
		}
	}
	for _, p := range discarded {
		pass.Reportf(p, "WAL Append error discarded in a function that sends CommitAck: a failed append must suppress the ack, not race past it")
	}
}

// isWalAppend reports whether call is an Append carrying storage records.
func isWalAppend(info *types.Info, call *ast.CallExpr) bool {
	if calleeName(call) != "Append" {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isRecordType(tv.Type) {
			return true
		}
	}
	return false
}

// isRecordType reports whether t (possibly behind a pointer or slice) is
// storage.Record.
func isRecordType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		t = u.Elem()
	case *types.Slice:
		t = u.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Record" && obj.Pkg() != nil && obj.Pkg().Path() == storagePkg
}

// recordVar returns the variable denoted by arg (looking through &x) when
// handing it to Append shares the variable's storage with the log: a slice
// of records, a pointer, or an addressed value. A bare Record value is
// copied at the call and stays writable.
func recordVar(info *types.Info, arg ast.Expr) types.Object {
	addressed := false
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = u.X
		addressed = true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !isRecordType(obj.Type()) {
		return nil
	}
	if !addressed {
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice:
		default:
			return nil // passed by value: the log got a copy
		}
	}
	return obj
}

// recordWriteBase unwraps an assignment target (recs[i], recs[i].Data, r.F)
// to the root identifier when that identifier is a tracked record variable.
func recordWriteBase(info *types.Info, lhs ast.Expr) (*ast.Ident, types.Object) {
	e := lhs
	depth := 0
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
			depth++
		case *ast.IndexExpr:
			e = v.X
			depth++
		case *ast.SliceExpr:
			e = v.X
			depth++
		case *ast.StarExpr:
			e = v.X
			depth++
		case *ast.Ident:
			if depth == 0 {
				return nil, nil // plain rebind, handled by the caller
			}
			obj, ok := info.Uses[v].(*types.Var)
			if !ok || !isRecordType(obj.Type()) {
				return nil, nil
			}
			return v, obj
		default:
			return nil, nil
		}
	}
}

// isCommitAckExpr reports whether arg's type is wire.CommitAck (possibly
// behind a pointer) — the message whose departure the WAL gates.
func isCommitAckExpr(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "CommitAck" && obj.Pkg() != nil && obj.Pkg().Path() == wirePkg
}

// soleRHSCall returns the call when assign's RHS is exactly one call expr.
func soleRHSCall(assign *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(assign.Rhs) != 1 {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	return call, ok
}

// allBlank reports whether every LHS is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
