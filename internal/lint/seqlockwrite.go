package lint

import (
	"go/ast"

	"zeus/internal/lint/analysis"
)

// SeqlockWrite enforces the seqlock-mirror contract on ⟨TVersion, TState⟩:
// the pair may only be written through store.Object.SetTLocked (under Mu),
// which also publishes the packed atomic word (tsv) that lock-free read-only
// validation reads. A direct field write leaves the mirror stale, so an RO
// transaction can validate against a version the object no longer holds —
// exactly the lost-update window the seqlock exists to close.
//
// Flagged everywhere (including the store package, except inside SetTLocked
// itself):
//
//	o.TState = store.TValid        // direct field write
//	o.TVersion++                   // increment
//	&o.TVersion                    // address escape (enables later writes)
//	store.Object{TState: ...}      // keyed construction outside the store
//
// Inside the store package, the mirror field tsv may additionally only be
// touched by SetTLocked and TSnapshot.
var SeqlockWrite = &analysis.Analyzer{
	Name: "seqlockwrite",
	Doc:  "Object.TState/TVersion may only be written through SetTLocked",
	Run:  runSeqlockWrite,
}

func runSeqlockWrite(pass *analysis.Pass) (interface{}, error) {
	inStore := pass.Pkg.Path() == storePkg
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fname := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range v.Lhs {
						checkSeqlockWrite(pass, lhs, inStore, fname, "write")
					}
				case *ast.IncDecStmt:
					checkSeqlockWrite(pass, v.X, inStore, fname, "write")
				case *ast.UnaryExpr:
					if v.Op.String() == "&" {
						checkSeqlockWrite(pass, v.X, inStore, fname, "address-of")
					}
				case *ast.SelectorExpr:
					if inStore {
						if name, ok := objectField(pass.TypesInfo, v); ok && name == "tsv" &&
							fname != "SetTLocked" && fname != "TSnapshot" {
							pass.Reportf(v.Pos(), "seqlock mirror tsv touched outside SetTLocked/TSnapshot")
						}
					}
				case *ast.CompositeLit:
					checkSeqlockComposite(pass, v, inStore)
				}
				return true
			})
		}
	}
	return nil, nil
}

func checkSeqlockWrite(pass *analysis.Pass, e ast.Expr, inStore bool, fname, verb string) {
	name, ok := objectField(pass.TypesInfo, e)
	if !ok || (name != "TState" && name != "TVersion") {
		return
	}
	if inStore && fname == "SetTLocked" {
		return
	}
	pass.Reportf(e.Pos(), "direct %s of store.Object.%s desynchronizes the packed seqlock mirror: go through SetTLocked under Mu", verb, name)
}

// checkSeqlockComposite flags store.Object{TState: ..., TVersion: ...}
// construction outside the store package: the mirror word starts at zero, so
// a keyed non-zero seed already diverges.
func checkSeqlockComposite(pass *analysis.Pass, cl *ast.CompositeLit, inStore bool) {
	if inStore {
		return
	}
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || !isObjectType(tv.Type) {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && (id.Name == "TState" || id.Name == "TVersion") {
			pass.Reportf(kv.Pos(), "store.Object constructed with keyed %s bypasses the seqlock mirror: build the object empty and SetTLocked it", id.Name)
		}
	}
}
