// Package loader loads and type-checks Go packages for zeuslint using only
// the standard library: package discovery shells out to `go list -json`
// (the same resolver the build uses, so build tags and file exclusions
// match), parsing uses go/parser, and type-checking uses go/types with the
// source importer, which type-checks dependencies from source — no compiled
// export data and no network are required.
//
// Test files (*_test.go) are deliberately excluded: zeuslint enforces the
// engine's runtime contracts on shipped code, while tests routinely build
// throwaway objects they own exclusively (and the analyzers' own fixtures
// violate every contract on purpose).
package loader

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (e.g. zeus/internal/commit)
	Name  string // package name
	Dir   string // directory holding the sources
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
}

// Load resolves patterns (e.g. "./...") relative to dir with `go list` and
// returns every matched package parsed and type-checked. All packages share
// one FileSet and one source importer, so dependency type-checks are done
// once per load.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("loader: go list %s: %s", strings.Join(patterns, " "), msg)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var lp listedPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		p, err := check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir (non-test files only) under
// the given import path. It is the fixture loader for analyzer tests:
// testdata directories are invisible to `go list` patterns, so they are read
// straight from disk.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, importPath, dir, files)
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		// The tree builds before it is linted, so a type error here means
		// the loader mis-resolved something; fail loudly instead of
		// silently analyzing a half-checked package.
		return nil, fmt.Errorf("loader: type-checking %s: %v", path, firstErr)
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{Path: path, Name: name, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
