package lint

import (
	"go/ast"
	"go/types"

	"zeus/internal/lint/analysis"
)

// ReplaceOnly enforces the store.Object.Data contract: outside the store
// package the payload slice is REPLACE-ONLY. Every legal write installs a
// whole new slice (o.Data = newSlice); no code path may mutate the published
// backing array in place, because the zero-copy read paths (SnapshotRef, the
// transaction layer's read buffers, the ownership ACK piggyback, FabricMem
// delivery) alias that array after the object lock is released. A single
// mutated byte is a silent lost update that even the -race torture gates can
// miss (the readers are in other processes' logical pasts, not other
// goroutines).
//
// Flagged, for o.Data or any local aliasing it (d := o.Data):
//
//	o.Data[i] = x            // element write
//	append(o.Data, ...)      // may write into spare capacity
//	copy(o.Data, src)        // bulk overwrite (Data as destination)
//	clear(o.Data)
//	r.Read(o.Data)           // fill-style callees (Read/ReadFull)
//
// The check is lexical per function: aliases through function returns or
// struct fields are not tracked (the store package owns those paths).
var ReplaceOnly = &analysis.Analyzer{
	Name: "replaceonly",
	Doc:  "store.Object.Data must be replaced whole, never mutated in place",
	Run:  runReplaceOnly,
}

func runReplaceOnly(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == storePkg {
		return nil, nil // the store package owns the field
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkReplaceOnlyFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

func checkReplaceOnlyFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect locals that alias Object.Data (d := o.Data, possibly
	// sliced). The data-source set is the field itself plus these aliases.
	aliases := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isDataExpr(info, rhs, aliases) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					aliases[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				// Whole-slice replacement (lhs exactly the Data selector or
				// an alias ident) is the legal write; an element or
				// sub-slice write is not.
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					if isDataExpr(info, l.X, aliases) {
						pass.Reportf(l.Pos(), "in-place element write to store.Object.Data (replace-only: install a fresh slice under Mu)")
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := v.X.(*ast.IndexExpr); ok && isDataExpr(info, ix.X, aliases) {
				pass.Reportf(v.Pos(), "in-place element write to store.Object.Data (replace-only: install a fresh slice under Mu)")
			}
		case *ast.CallExpr:
			checkReplaceOnlyCall(pass, v, aliases)
		}
		return true
	})
}

func checkReplaceOnlyCall(pass *analysis.Pass, call *ast.CallExpr, aliases map[types.Object]bool) {
	info := pass.TypesInfo
	if len(call.Args) == 0 {
		return
	}
	switch {
	case isBuiltin(info, call, "append"):
		if isDataExpr(info, call.Args[0], aliases) {
			pass.Reportf(call.Pos(), "append to store.Object.Data may write into the published backing array (replace-only: build a fresh slice)")
		}
	case isBuiltin(info, call, "copy"):
		if isDataExpr(info, call.Args[0], aliases) {
			pass.Reportf(call.Pos(), "copy into store.Object.Data overwrites the published backing array (replace-only: install a fresh slice)")
		}
	case isBuiltin(info, call, "clear"):
		if isDataExpr(info, call.Args[0], aliases) {
			pass.Reportf(call.Pos(), "clear of store.Object.Data overwrites the published backing array (replace-only)")
		}
	default:
		// Fill-style callees that write into their []byte argument.
		name := calleeName(call)
		if name != "Read" && name != "ReadFull" {
			return
		}
		for _, arg := range call.Args {
			if isDataExpr(info, arg, aliases) {
				pass.Reportf(call.Pos(), "store.Object.Data passed as %s's fill buffer mutates the published backing array (replace-only)", name)
			}
		}
	}
}

// isDataExpr reports whether e denotes Object.Data or a tracked alias,
// looking through parentheses and sub-slicing (o.Data[:n] shares the array).
func isDataExpr(info *types.Info, e ast.Expr, aliases map[types.Object]bool) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			name, ok := objectField(info, v)
			return ok && name == "Data"
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return aliases[obj]
			}
			return false
		default:
			return false
		}
	}
}
