package lint

import (
	"go/ast"
	"go/types"

	"zeus/internal/lint/analysis"
)

// obsPkg is the import path of the observability subsystem.
const obsPkg = "zeus/internal/obs"

// Obsrecord enforces the observability discipline of internal/obs: metric
// record sites must be allocation-free and nil-guarded, so an instrumented
// engine with obs disabled keeps the seed hot path bit for bit.
//
// Three rules:
//
//  1. Metric names handed to Registry.Counter/Gauge/Histogram (and the
//     *Func variants) must be compile-time constants — no fmt.Sprintf or
//     string concatenation label construction. Dynamic metric families
//     (per-shard heat counters) are registered once at wiring time behind
//     an explicit //lint:allow obsrecord waiver.
//  2. Histogram/Counter/Gauge record arguments must not derive from
//     time.Now() at the record site: a Now() pair split across locks
//     measures lock wait, not the phase. Stamp the start once under the
//     obs gate and record via RecordSince (which wraps time.Since).
//  3. A record call reached through a field path (e.obs.committed.Add)
//     must be dominated by a nil check on the obs handle — an enclosing
//     `if e.obs != nil`, a `x != nil &&` conjunct, or an early
//     `if e.obs == nil { return }`. Bare local handles (h.Record) are
//     wiring-scoped and exempt; a record on the result of a registry
//     lookup (r.Counter("x").Inc()) is a per-event map lookup and is
//     flagged outright.
//
// Scope: the whole tree except internal/obs itself (its internals are the
// implementation); test files are never analyzed.
var Obsrecord = &analysis.Analyzer{
	Name: "obsrecord",
	Doc:  "metric record sites must be allocation-free and nil-guarded",
	Run:  runObsRecord,
}

// obsRecordMethods are the hot-path record entry points of the metric types.
var obsRecordMethods = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Record": true, "RecordSince": true,
}

// obsLookupMethods are the Registry's registration-time lookups.
var obsLookupMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

func runObsRecord(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == obsPkg {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obsCheckStmts(pass, fn.Body.List, nil)
		}
	}
	return nil, nil
}

// obsCheckStmts walks a statement list carrying the set of expressions
// proven non-nil (by exprKey) at each point. The facts map is flow-
// insensitive within a statement but respects lexical dominance: enclosing
// `!= nil` guards and terminating `== nil` early returns. Obs handles are
// set once at wiring time (the SetObs contract), so lexical facts are never
// invalidated by assignment.
func obsCheckStmts(pass *analysis.Pass, stmts []ast.Stmt, facts map[string]bool) {
	facts = copyFacts(facts)
	for _, s := range stmts {
		obsCheckStmt(pass, s, facts)
		// `if x == nil { return }` proves x non-nil for the statements
		// below it.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && obsTerminates(ifs.Body) {
			if key, ok := obsNilEq(ifs.Cond); ok {
				facts[key] = true
			}
		}
	}
}

func obsCheckStmt(pass *analysis.Pass, s ast.Stmt, facts map[string]bool) {
	switch v := s.(type) {
	case *ast.IfStmt:
		if v.Init != nil {
			obsCheckStmt(pass, v.Init, facts)
		}
		obsScan(pass, v.Cond, facts)
		thenFacts := copyFacts(facts)
		for _, key := range obsNilNeqConjuncts(v.Cond) {
			thenFacts[key] = true
		}
		obsCheckStmts(pass, v.Body.List, thenFacts)
		if v.Else != nil {
			elseFacts := copyFacts(facts)
			if key, ok := obsNilEq(v.Cond); ok {
				elseFacts[key] = true
			}
			switch e := v.Else.(type) {
			case *ast.BlockStmt:
				obsCheckStmts(pass, e.List, elseFacts)
			case *ast.IfStmt:
				obsCheckStmt(pass, e, elseFacts)
			}
		}
	case *ast.BlockStmt:
		obsCheckStmts(pass, v.List, facts)
	case *ast.ForStmt:
		if v.Init != nil {
			obsCheckStmt(pass, v.Init, facts)
		}
		bodyFacts := copyFacts(facts)
		if v.Cond != nil {
			obsScan(pass, v.Cond, facts)
			for _, key := range obsNilNeqConjuncts(v.Cond) {
				bodyFacts[key] = true
			}
		}
		if v.Post != nil {
			obsCheckStmt(pass, v.Post, bodyFacts)
		}
		obsCheckStmts(pass, v.Body.List, bodyFacts)
	case *ast.RangeStmt:
		obsScan(pass, v.X, facts)
		obsCheckStmts(pass, v.Body.List, facts)
	case *ast.SwitchStmt:
		if v.Init != nil {
			obsCheckStmt(pass, v.Init, facts)
		}
		if v.Tag != nil {
			obsScan(pass, v.Tag, facts)
		}
		for _, cc := range v.Body.List {
			c := cc.(*ast.CaseClause)
			for _, e := range c.List {
				obsScan(pass, e, facts)
			}
			obsCheckStmts(pass, c.Body, facts)
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			obsCheckStmt(pass, v.Init, facts)
		}
		obsCheckStmt(pass, v.Assign, facts)
		for _, cc := range v.Body.List {
			c := cc.(*ast.CaseClause)
			obsCheckStmts(pass, c.Body, facts)
		}
	case *ast.SelectStmt:
		for _, cc := range v.Body.List {
			c := cc.(*ast.CommClause)
			if c.Comm != nil {
				obsCheckStmt(pass, c.Comm, facts)
			}
			obsCheckStmts(pass, c.Body, facts)
		}
	case *ast.LabeledStmt:
		obsCheckStmt(pass, v.Stmt, facts)
	default:
		obsScan(pass, s, facts)
	}
}

// obsScan inspects an expression-bearing node for obs calls, recursing into
// function literals with the current facts (obs handles are set-once, so a
// closure defined under a guard stays guarded when it runs).
func obsScan(pass *analysis.Pass, n ast.Node, facts map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			obsCheckStmts(pass, v.Body.List, facts)
			return false
		case *ast.CallExpr:
			obsCheckCall(pass, v, facts)
		}
		return true
	})
}

func obsCheckCall(pass *analysis.Pass, call *ast.CallExpr, facts map[string]bool) {
	recvType, method, ok := obsMethodCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	if recvType == "Registry" && obsLookupMethods[method] {
		if len(call.Args) > 0 && pass.TypesInfo.Types[call.Args[0]].Value == nil {
			pass.Reportf(call.Pos(), "metric name is not a compile-time constant: no fmt/concat label construction at lookup sites; register dynamic metric families once at wiring time under an explicit waiver")
		}
		return
	}
	if !obsRecordMethods[method] {
		return
	}
	if recvType != "Counter" && recvType != "Gauge" && recvType != "Histogram" {
		return
	}
	// Rule 2: no time.Now() arithmetic at the record site.
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok && isPkgFunc(pass.TypesInfo, c, "time", "Now") {
				found = true
			}
			return !found
		})
		if found {
			pass.Reportf(call.Pos(), "%s.%s argument derives from time.Now() at the record site: stamp the start once under the obs gate and record via RecordSince", recvType, method)
		}
	}
	// Rule 3: the receiver path must be nil-guarded (or a cached handle).
	recv := call.Fun.(*ast.SelectorExpr).X
	recv = obsUnwrap(recv)
	switch rv := recv.(type) {
	case *ast.CallExpr:
		pass.Reportf(call.Pos(), "%s on the result of a registry lookup: the record path pays a map lookup per event — cache the metric handle at wiring time and record through it", method)
	case *ast.SelectorExpr:
		if !obsGuarded(rv, facts) {
			pass.Reportf(call.Pos(), "metric record through %s without a dominating nil check on its obs handle: gate record sites so disabled deployments keep the seed hot path", exprKey(rv))
		}
	}
}

// obsUnwrap strips index and paren layers off a receiver expression
// (e.obs.nacks[i] → e.obs.nacks).
func obsUnwrap(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}

// obsGuarded reports whether the receiver path or any selector prefix of it
// carries a non-nil fact ("e.obs.committed" is guarded by facts on
// "e.obs.committed", "e.obs" or "e").
func obsGuarded(sel ast.Expr, facts map[string]bool) bool {
	e := obsUnwrap(sel)
	for {
		if facts[exprKey(e)] {
			return true
		}
		s, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		e = obsUnwrap(s.X)
	}
}

// obsMethodCall resolves call as a method on a zeus/internal/obs named type.
func obsMethodCall(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, k := call.Fun.(*ast.SelectorExpr)
	if !k {
		return "", "", false
	}
	fn, k := info.Uses[sel.Sel].(*types.Func)
	if !k {
		return "", "", false
	}
	sig, k := fn.Type().(*types.Signature)
	if !k || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, k := t.(*types.Named)
	if !k {
		return "", "", false
	}
	o := n.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != obsPkg {
		return "", "", false
	}
	return o.Name(), fn.Name(), true
}

// obsNilNeqConjuncts returns the exprKeys proven non-nil when cond is true:
// every `x != nil` conjunct of a && chain.
func obsNilNeqConjuncts(cond ast.Expr) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = obsUnparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok {
			switch b.Op.String() {
			case "&&":
				walk(b.X)
				walk(b.Y)
			case "!=":
				if other, ok := obsNonNilSide(b); ok {
					out = append(out, exprKey(other))
				}
			}
		}
	}
	walk(cond)
	return out
}

// obsNilEq matches a bare `x == nil` condition and returns x's key.
func obsNilEq(cond ast.Expr) (string, bool) {
	b, ok := obsUnparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op.String() != "==" {
		return "", false
	}
	other, ok := obsNonNilSide(b)
	if !ok {
		return "", false
	}
	return exprKey(other), true
}

// obsNonNilSide returns the non-nil operand of a binary comparison against
// the nil identifier.
func obsNonNilSide(b *ast.BinaryExpr) (ast.Expr, bool) {
	if obsIsNil(b.Y) {
		return obsUnparen(b.X), true
	}
	if obsIsNil(b.X) {
		return obsUnparen(b.Y), true
	}
	return nil, false
}

func obsIsNil(e ast.Expr) bool {
	id, ok := obsUnparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func obsUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// obsTerminates reports whether a block always transfers control away
// (return, break/continue/goto, or panic as its last statement).
func obsTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyFacts(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
