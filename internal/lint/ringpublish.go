package lint

import (
	"go/ast"
	"go/token"

	"zeus/internal/lint/analysis"
)

// RingPublish enforces the version-ring contract behind MVCC snapshot
// reads: store.Object.Ring is replace-only and append-via-publish only.
// Ring entries are read lock-free of the writer's critical path by any
// replica serving a snapshot, so one in-place mutation rewrites history a
// committed snapshot already observed, and one hand-rolled append can
// publish a version before the object's seqlock word (⟨TVersion, TState⟩
// via SetTLocked) reflects it — a reader would then serve data the
// validation plane does not vouch for.
//
// Flagged outside the store package (inside it, only PublishRingLocked and
// ResetRingLocked may touch the field):
//
//	o.Ring = entries               // direct field write
//	o.Ring[0] = e                  // in-place element write
//	o.Ring = append(o.Ring, e)     // hand-rolled append
//	x := append(o.Ring, e)         // aliasing append (shares backing array)
//	&o.Ring                        // address escape (enables later writes)
//	store.Object{Ring: ...}        // keyed construction
//
// Additionally, in any function (any package) that calls PublishRingLocked,
// a SetTLocked call must appear textually earlier in the same function:
// publishing before the seqlock word advanced would let a ring reader
// observe a version the object does not carry yet.
var RingPublish = &analysis.Analyzer{
	Name: "ringpublish",
	Doc:  "Object.Ring entries enter only via PublishRingLocked, after SetTLocked",
	Run:  runRingPublish,
}

func runRingPublish(pass *analysis.Pass) (interface{}, error) {
	inStore := pass.Pkg.Path() == storePkg
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fname := fd.Name.Name
			// The two blessed mutators inside the store package.
			ringWriter := inStore && (fname == "PublishRingLocked" || fname == "ResetRingLocked")
			var setPos token.Pos = token.NoPos // earliest SetTLocked call
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					if !ringWriter {
						for _, lhs := range v.Lhs {
							checkRingWrite(pass, lhs, "write")
						}
					}
				case *ast.IncDecStmt:
					if !ringWriter {
						checkRingWrite(pass, v.X, "write")
					}
				case *ast.UnaryExpr:
					if !ringWriter && v.Op == token.AND {
						checkRingWrite(pass, v.X, "address-of")
					}
				case *ast.CallExpr:
					if !ringWriter && isBuiltin(pass.TypesInfo, v, "append") && len(v.Args) > 0 {
						if name, ok := objectField(pass.TypesInfo, ringBase(v.Args[0])); ok && name == "Ring" {
							pass.Reportf(v.Pos(), "append to store.Object.Ring bypasses PublishRingLocked (and may alias published entries)")
						}
					}
					if name := calleeName(v); name == "SetTLocked" {
						if setPos == token.NoPos || v.Pos() < setPos {
							setPos = v.Pos()
						}
					} else if name == "PublishRingLocked" && !inStore {
						if setPos == token.NoPos || v.Pos() < setPos {
							pass.Reportf(v.Pos(), "PublishRingLocked with no earlier SetTLocked in %s: the ring must not run ahead of the seqlock word", fname)
						}
					}
				case *ast.CompositeLit:
					checkRingComposite(pass, v, inStore)
				}
				return true
			})
		}
	}
	return nil, nil
}

// ringBase unwraps index/slice expressions so o.Ring[i] and o.Ring[i:j]
// resolve to the Ring selector.
func ringBase(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return e
		}
	}
}

func checkRingWrite(pass *analysis.Pass, e ast.Expr, verb string) {
	base := ringBase(e)
	name, ok := objectField(pass.TypesInfo, base)
	if !ok || name != "Ring" {
		return
	}
	if base != e {
		pass.Reportf(e.Pos(), "in-place %s of a store.Object.Ring entry rewrites history a snapshot may have observed: entries are immutable once published", verb)
		return
	}
	pass.Reportf(e.Pos(), "direct %s of store.Object.Ring: ring entries enter only via PublishRingLocked (ResetRingLocked to drop)", verb)
}

// checkRingComposite flags store.Object{Ring: ...} outside the store
// package: a keyed ring seed bypasses the publish ordering entirely.
func checkRingComposite(pass *analysis.Pass, cl *ast.CompositeLit, inStore bool) {
	if inStore {
		return
	}
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || !isObjectType(tv.Type) {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Ring" {
			pass.Reportf(kv.Pos(), "store.Object constructed with keyed Ring bypasses PublishRingLocked: build the object empty and publish entries")
		}
	}
}
