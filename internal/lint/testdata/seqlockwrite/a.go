// Package seqlockwrite exercises the seqlockwrite analyzer: every flagged
// line desynchronizes the packed atomic mirror (tsv) that lock-free
// read-only validation reads, by writing TState/TVersion without going
// through SetTLocked.
package seqlockwrite

import "zeus/internal/store"

func direct(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.TState = store.TInvalid // want `direct write of store\.Object\.TState`
	o.TVersion = 7            // want `direct write of store\.Object\.TVersion`
	o.TVersion++              // want `direct write of store\.Object\.TVersion`

	// The legal path: both fields and the mirror move together.
	o.SetTLocked(7, store.TInvalid)
}

// escape: taking the address lets arbitrary code write the field later.
func escape(o *store.Object) *uint64 {
	return &o.TVersion // want `direct address-of of store\.Object\.TVersion`
}

// construct: a keyed composite literal bypasses the mirror just as badly —
// the object would carry TState=TValid with tsv still zero.
func construct() *store.Object {
	return &store.Object{
		ID:     1,
		TState: store.TValid, // want `store\.Object constructed with keyed TState`
	}
}

// readsAreFine: reading the fields (the owner's commit paths do, under Mu)
// never flags; only writes desynchronize the mirror.
func readsAreFine(o *store.Object) (uint64, store.TState) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	return o.TVersion, o.TState
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.TVersion = 1 //lint:allow seqlockwrite fixture demonstrates the waiver syntax
}
