// Package walfrozen exercises the walfrozen analyzer: WAL records are
// frozen the moment they are handed to Append (the group-commit log encodes
// them asynchronously), and a CommitAck may only leave after the Append it
// depends on returns with its error consumed.
package walfrozen

import (
	"zeus/internal/storage"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// postAppendWrite is the regression shape the rule pins: the record slice
// "fixed up" after the hand-off, while the log's encoder may already be
// walking it.
func postAppendWrite(l *storage.Log, obj wire.ObjectID) {
	recs := []storage.Record{{Kind: storage.RecInv, Obj: obj}}
	if l.Append(recs...) != nil {
		return
	}
	recs[0].Version = 7 // want `WAL record recs written after being handed to Append`
}

// postAppendElemWrite: whole-element writes are caught too.
func postAppendElemWrite(l *storage.Log, obj wire.ObjectID) {
	recs := make([]storage.Record, 1)
	recs[0] = storage.Record{Kind: storage.RecCommit, Obj: obj}
	if l.Append(recs...) != nil {
		return
	}
	recs[0] = storage.Record{} // want `WAL record recs written after being handed to Append`
}

// rebindIsFine: a fresh slice taking over the name is a new batch, not a
// mutation of the appended one.
func rebindIsFine(l *storage.Log, obj wire.ObjectID) {
	recs := []storage.Record{{Kind: storage.RecInv, Obj: obj}}
	if l.Append(recs...) != nil {
		return
	}
	recs = []storage.Record{{Kind: storage.RecCommit, Obj: obj}}
	recs[0].Version = 1
	_ = l.Append(recs...)
}

// byValueIsFine: a bare Record value is copied at the call; the variable
// stays the caller's to mutate.
func byValueIsFine(l *storage.Log, obj wire.ObjectID) {
	r := storage.Record{Kind: storage.RecGrant, Obj: obj}
	_ = l.Append(r)
	r.Level = wire.Owner
}

// ackBeforeAppend inverts the choke-point order: the acknowledgement races
// ahead of the durability it promises.
func ackBeforeAppend(l *storage.Log, tr transport.Transport, to wire.NodeID, recs []storage.Record) {
	_ = tr.Send(to, &wire.CommitAck{}) // want `CommitAck sent before the WAL Append`
	if l.Append(recs...) != nil {
		return
	}
}

// ackAfterCheckedAppendIsFine is ackDurable's sanctioned shape: append,
// check, and only then ack.
func ackAfterCheckedAppendIsFine(l *storage.Log, tr transport.Transport, to wire.NodeID, recs []storage.Record) {
	if l.Append(recs...) != nil {
		return // no durability, no ack
	}
	_ = tr.Send(to, &wire.CommitAck{})
}

// discardedErrorThenAck: dropping Append's error in an acknowledging
// function acks a write that may not be durable.
func discardedErrorThenAck(l *storage.Log, tr transport.Transport, to wire.NodeID, recs []storage.Record) {
	_ = l.Append(recs...) // want `WAL Append error discarded in a function that sends CommitAck`
	_ = tr.Send(to, &wire.CommitAck{})
}

// bestEffortIsFine is the recCommitted/recGrant shape: a best-effort append
// in a function that sends no acks may drop the error.
func bestEffortIsFine(l *storage.Log, recs []storage.Record) {
	_ = l.Append(recs...)
}

// waived: the escape hatch works here like everywhere in zeuslint.
func waived(l *storage.Log, obj wire.ObjectID) {
	recs := []storage.Record{{Kind: storage.RecInv, Obj: obj}}
	if l.Append(recs...) != nil {
		return
	}
	recs[0].Version = 9 //lint:allow walfrozen fixture proves waivers apply
}
