// Package obsrecord exercises the obsrecord analyzer: metric record sites
// must be allocation-free (constant names, cached handles, no time.Now()
// pairs) and nil-guarded so a disabled deployment keeps the seed hot path.
package obsrecord

import (
	"fmt"
	"time"

	"zeus/internal/obs"
)

type engine struct {
	obs *engineObs
}

type engineObs struct {
	commits *obs.Counter
	latency *obs.Histogram
	depth   *obs.Gauge
	nacks   [4]*obs.Counter
}

// dynamicName is the allocation the first rule kills: a fmt label built at
// the lookup site instead of a constant registered once at wiring time.
func dynamicName(r *obs.Registry, shard int) {
	r.Counter(fmt.Sprintf("shard_%d_total", shard)) // want `metric name is not a compile-time constant`
	r.Histogram("prefix_" + suffix(shard))          // want `metric name is not a compile-time constant`
	r.Counter("static_ok_total")
}

func suffix(int) string { return "x" }

// constExpr: concatenation of constants is still a constant — allowed.
func constExpr(r *obs.Registry) {
	const layer = "commit_"
	r.Gauge(layer + "depth")
}

// chainedLookup records through the result of a registry lookup: a map
// lookup (and mutex) per event on what must be a lock-free path.
func chainedLookup(r *obs.Registry) {
	r.Counter("x_total").Inc() // want `result of a registry lookup`
}

// nowPair splits a time.Now() pair across the record site.
func nowPair(h *obs.Histogram, start time.Time) {
	h.Record(uint64(time.Now().Sub(start))) // want `derives from time\.Now\(\)`
}

// sanctioned latency shape: stamp once, record via RecordSince.
func sanctioned(h *obs.Histogram, start time.Time) {
	h.RecordSince(start)
	h.Record(uint64(time.Since(start)))
}

// unguarded reaches a metric through a field path with no dominating nil
// check on the obs handle.
func unguarded(e *engine) {
	e.obs.commits.Inc() // want `without a dominating nil check`
}

// guarded: the enclosing != nil check proves the handle.
func guarded(e *engine, start time.Time) {
	if e.obs != nil {
		e.obs.commits.Inc()
		e.obs.latency.RecordSince(start)
		e.obs.nacks[2].Add(1)
	}
}

// earlyReturn: a terminating == nil guard dominates the rest of the body.
func earlyReturn(e *engine) {
	if e.obs == nil {
		return
	}
	e.obs.depth.Set(1)
}

// conjunct: the != nil conjunct guards the record in the same condition's
// body.
func conjunct(e *engine, hot bool) {
	if hot && e.obs != nil {
		e.obs.commits.Inc()
	}
}

// localHandle: bare idents are wiring-scoped cached handles — exempt.
func localHandle(h *obs.Histogram) {
	h.Record(5)
}

// waived proves //lint:allow suppresses a finding (reason is mandatory):
// dynamic per-shard families are registered once at wiring time.
func waived(r *obs.Registry, shard int) {
	//lint:allow obsrecord per-shard heat counters are registered once at wiring time
	r.Counter(fmt.Sprintf("own_migrations_shard%d_total", shard))
}
