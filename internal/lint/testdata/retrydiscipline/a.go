// Package retrydiscipline exercises the retrydiscipline analyzer: engine
// code paces every wait through internal/retry (bounded, jittered,
// cancellable) instead of ad-hoc time.Sleep loops.
package retrydiscipline

import (
	"time"

	"zeus/internal/retry"
)

// adHocBackoff is the shape the rule exists to kill: an unbounded busy-wait
// with a hand-rolled sleep constant.
func adHocBackoff(ready func() bool) {
	for !ready() {
		time.Sleep(100 * time.Microsecond) // want `raw time\.Sleep in engine code`
	}
}

// pacedBackoff is the sanctioned replacement.
func pacedBackoff(ready func() bool) {
	r := retry.Policy{}.Start()
	for !ready() {
		wait, _ := r.Next()
		_ = retry.Sleep(nil, wait, nil)
	}
}

// timersAreFine: the rule targets blocking sleeps, not the time package.
func timersAreFine(done <-chan struct{}) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived() {
	time.Sleep(time.Millisecond) //lint:allow retrydiscipline fixture demonstrates a justified pacing waiver
}
