// Package replaceonly exercises the replaceonly analyzer. Every flagged
// line is a variant of the PR-5 failure mode: an in-place write to the
// zero-copy payload that SnapshotRef, the ownership ACK piggyback and the
// FabricMem delivery path may all still alias.
package replaceonly

import (
	"io"

	"zeus/internal/store"
)

// mutateDirect covers the direct in-place write shapes.
func mutateDirect(o *store.Object, src []byte, r io.Reader) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Data[0] = 1                   // want `in-place element write to store\.Object\.Data`
	o.Data[1]++                     // want `in-place element write to store\.Object\.Data`
	o.Data = append(o.Data, src...) // want `append to store\.Object\.Data`
	copy(o.Data, src)               // want `copy into store\.Object\.Data`
	copy(o.Data[4:], src)           // want `copy into store\.Object\.Data`
	clear(o.Data)                   // want `clear of store\.Object\.Data`
	_, _ = r.Read(o.Data)           // want `store\.Object\.Data passed as Read's fill buffer`
	_, _ = io.ReadFull(r, o.Data)   // want `store\.Object\.Data passed as ReadFull's fill buffer`

	// Whole-slice replacement is the one legal write.
	o.Data = append([]byte(nil), src...)
	o.Data = src
	o.Data = nil
}

// mutatePiggyback is the PR-4/PR-5 regression shape: the ownership ACK
// piggyback (ack.Data = o.Data) aliases the store payload, and scribbling on
// the alias after Mu is released corrupts every concurrent snapshot reader.
func mutatePiggyback(o *store.Object) []byte {
	o.Mu.Lock()
	d := o.Data
	o.Mu.Unlock()
	d[0] ^= 0xff // want `in-place element write to store\.Object\.Data`
	return d
}

// mutateAliasBuiltins: the alias carries the taint into the builtins too.
func mutateAliasBuiltins(o *store.Object, src []byte) {
	buf := o.Data
	copy(buf, src) // want `copy into store\.Object\.Data`
	clear(buf)     // want `clear of store\.Object\.Data`
}

// readersAreFine: reads, copies OUT of Data, and fresh slices never flag.
func readersAreFine(o *store.Object, dst []byte) byte {
	copy(dst, o.Data) // copying out of the payload is a read
	fresh := make([]byte, len(o.Data))
	copy(fresh, o.Data)
	fresh[0] = 1
	return o.Data[0]
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived(o *store.Object) {
	o.Data[0] = 0 //lint:allow replaceonly fixture demonstrates the waiver syntax
}
