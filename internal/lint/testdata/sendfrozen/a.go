// Package sendfrozen exercises the sendfrozen analyzer: a wire message is
// frozen the moment it is handed to a send-side entry point, because the
// zero-copy fabric and the reliable transport's retransmit queue may still
// reference the very struct the sender built.
package sendfrozen

import (
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// postSendWrite is the PR-4 regression shape: an R-INV "fixed up" after the
// hand-off, while FabricMem may already have delivered the original struct.
func postSendWrite(tr transport.Transport, to wire.NodeID, epoch wire.Epoch) {
	inv := &wire.CommitInv{Epoch: epoch}
	_ = tr.Send(to, inv)
	inv.Epoch = epoch + 1 // want `wire message inv written after being handed to Send`
	inv.Replay = true     // want `wire message inv written after being handed to Send`
}

// postSendDeepWrite: writes through the variable are caught at any depth.
func postSendDeepWrite(tr transport.Transport, to wire.NodeID) {
	inv := &wire.CommitInv{Updates: make([]wire.Update, 1)}
	_ = tr.Send(to, inv)
	inv.Updates[0] = wire.Update{} // want `wire message inv written after being handed to Send`
}

// rebindIsFine: a fresh message taking over the name is not a mutation of
// the sent one, and un-freezes the variable.
func rebindIsFine(tr transport.Transport, to wire.NodeID) {
	m := &wire.CommitVal{}
	_ = tr.Send(to, m)
	m = &wire.CommitVal{}
	m.Epoch = 1
	_ = tr.Send(to, m)
}

// copyOnWriteIsFine is the commit engine's replay idiom: clone the stored
// message, mutate the private copy, and only then hand it to the transport.
func copyOnWriteIsFine(tr transport.Transport, to wire.NodeID, orig *wire.CommitInv) {
	inv := *orig
	inv.Replay = true
	_ = tr.Send(to, &inv)
}

// valueAfterAddressSend: sending &value shares the variable's storage, so
// post-send writes to the value are just as racy as through a pointer.
func valueAfterAddressSend(tr transport.Transport, to wire.NodeID, orig *wire.CommitInv) {
	inv := *orig
	_ = tr.Send(to, &inv)
	inv.Replay = true // want `wire message inv written after being handed to Send`
}

// enqueueCounts: the reliable transport's retransmit queue holds the message
// until acked — enqueue-style hand-offs freeze too.
func enqueueCounts(q interface{ Enqueue(wire.NodeID, wire.Msg) }, to wire.NodeID) {
	ack := &wire.CommitAck{}
	q.Enqueue(to, ack)
	ack.From = 3 // want `wire message ack written after being handed to Enqueue`
}

// multicastCounts: one struct handed to many destinations at once.
func multicastCounts(tr transport.Transport, dsts []wire.NodeID) {
	val := &wire.CommitVal{}
	_ = transport.Multicast(tr, dsts, val)
	val.Epoch = 2 // want `wire message val written after being handed to Multicast`
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived(tr transport.Transport, to wire.NodeID) {
	m := &wire.CommitVal{}
	_ = tr.Send(to, m)
	m.Epoch = 9 //lint:allow sendfrozen fixture demonstrates the waiver syntax
}
