// Package waiver holds the malformed-waiver fixture: a //lint:allow with no
// reason is itself a finding, and the waiver it tried to express does NOT
// apply — the underlying diagnostic still fires.
package waiver

import "time"

func missingReason() {
	time.Sleep(time.Millisecond) //lint:allow retrydiscipline
}
