// Package lockedsuffix exercises the lockedsuffix analyzer: *Locked
// functions document "the caller holds the corresponding mutex", and
// Mu-guarded store.Object fields may only be written under a lock. The
// analyzer checks both directions with a lexical, lightly flow-sensitive
// walk.
package lockedsuffix

import (
	"sync"

	"zeus/internal/store"
	"zeus/internal/wire"
)

type engine struct {
	mu sync.Mutex
}

// applyLocked carries the suffix, so it may write guarded fields freely —
// the contract moved to its callers.
func (e *engine) applyLocked(o *store.Object) {
	o.Level = wire.NonReplica
}

// good: lock held lexically (defer-unlock keeps it held to scope end).
func good(e *engine, o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.GrantLocalLocked(1)
	e.applyLocked(o)
	o.LocalOwner = store.NoLocalOwner
}

// goodBranchReturn: the Unlock inside the early-return branch does not
// release the fallthrough path's lock.
func goodBranchReturn(o *store.Object) {
	o.Mu.Lock()
	if o.LocalOwner == store.NoLocalOwner {
		o.Mu.Unlock()
		return
	}
	o.SetTLocked(1, store.TValid)
	o.Mu.Unlock()
}

// bad: the lock-free call path that holds nothing at all.
func bad(e *engine, o *store.Object) {
	o.GrantLocalLocked(1) // want `GrantLocalLocked called without a lexically held mutex`
	e.applyLocked(o)      // want `applyLocked called without a lexically held mutex`
}

// badWrite: a guarded field write with no lock anywhere in sight.
func badWrite(o *store.Object) {
	o.LocalOwner = 3 // want `store\.Object\.LocalOwner is Mu-guarded but written with no lexically held mutex`
}

// badUnlockThen: an unconditional Unlock releases the lock for the
// statements after it.
func badUnlockThen(o *store.Object) {
	o.Mu.Lock()
	o.Mu.Unlock()
	o.SetTLocked(1, store.TValid) // want `SetTLocked called without a lexically held mutex`
}

// badGoroutine: a goroutine does not inherit its creator's locks — this is
// how "called under lock" bugs actually escape in the engine.
func badGoroutine(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	go func() {
		o.SetTLocked(2, store.TValid) // want `SetTLocked called without a lexically held mutex`
	}()
}

// badBranchMerge: only one branch locks, so the merge point holds nothing.
func badBranchMerge(o *store.Object, cond bool) {
	if cond {
		o.Mu.Lock()
	}
	o.GrantLocalLocked(4) // want `GrantLocalLocked called without a lexically held mutex`
	if cond {
		o.Mu.Unlock()
	}
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived(o *store.Object) {
	o.GrantLocalLocked(5) //lint:allow lockedsuffix fixture demonstrates the waiver syntax
}
