// Package ringpublish exercises the ringpublish analyzer: the version ring
// behind MVCC snapshot reads is append-via-publish only — entries enter
// through PublishRingLocked after the seqlock word advanced, are immutable
// once published, and leave only through ResetRingLocked.
package ringpublish

import "zeus/internal/store"

func directWrite(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Ring = nil // want `direct write of store\.Object\.Ring`
}

func elementWrite(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Ring[0] = store.VersionEntry{} // want `in-place write of a store\.Object\.Ring entry`
}

// aliasingAppend shares the ring's backing array: a later write through x
// mutates a published entry even though o.Ring itself was never assigned.
func aliasingAppend(o *store.Object) []store.VersionEntry {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	return append(o.Ring, store.VersionEntry{}) // want `append to store\.Object\.Ring`
}

// escape: taking the address lets arbitrary code write the field later.
func escape(o *store.Object) *[]store.VersionEntry {
	return &o.Ring // want `direct address-of of store\.Object\.Ring`
}

// construct: a keyed ring seed bypasses the publish ordering entirely.
func construct() *store.Object {
	return &store.Object{
		ID:   1,
		Ring: []store.VersionEntry{{CTS: 1}}, // want `store\.Object constructed with keyed Ring`
	}
}

// publishTooEarly publishes before the seqlock word advanced: a snapshot
// reader could serve version 2 while validation still vouches for 1.
func publishTooEarly(o *store.Object, data []byte) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.PublishRingLocked(9, 2, data) // want `PublishRingLocked with no earlier SetTLocked`
	o.SetTLocked(2, store.TValid)
}

// publishAfterSet is the legal ordering: the seqlock word first, then the
// ring entry that vouches for it.
func publishAfterSet(o *store.Object, data []byte) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Data = data
	o.SetTLocked(2, store.TValid)
	o.PublishRingLocked(9, 2, data)
}

// readsAreFine: iterating and measuring the ring never flags; only writes
// and unpublished appends rewrite history.
func readsAreFine(o *store.Object, ts uint64) (int, []byte) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if e, ok := o.RingReadLocked(ts); ok {
		return len(o.Ring), e.Data
	}
	for range o.Ring {
	}
	return len(o.Ring), nil
}

// resetIsFine: the blessed drop path is a method call, not a field write.
func resetIsFine(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.ResetRingLocked()
}

// waived proves //lint:allow suppresses a finding (reason is mandatory).
func waived(o *store.Object) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Ring = nil //lint:allow ringpublish fixture demonstrates the waiver syntax
}
