package lint_test

import (
	"testing"

	"zeus/internal/lint"
	"zeus/internal/lint/linttest"
)

// The analyzer suites: each loads its golden fixture from testdata and
// matches the diagnostics against the committed `// want` comments. Every
// fixture also carries a //lint:allow line proving the waiver suppresses the
// finding (the harness would report it as unexpected otherwise).

func TestReplaceOnly(t *testing.T) {
	linttest.Run(t, "replaceonly", lint.ReplaceOnly)
}

func TestSeqlockWrite(t *testing.T) {
	linttest.Run(t, "seqlockwrite", lint.SeqlockWrite)
}

func TestLockedSuffix(t *testing.T) {
	linttest.Run(t, "lockedsuffix", lint.LockedSuffix)
}

func TestSendFrozen(t *testing.T) {
	linttest.Run(t, "sendfrozen", lint.SendFrozen)
}

func TestRetryDiscipline(t *testing.T) {
	linttest.Run(t, "retrydiscipline", lint.RetryDiscipline)
}

func TestWalFrozen(t *testing.T) {
	linttest.Run(t, "walfrozen", lint.WalFrozen)
}

func TestRingPublish(t *testing.T) {
	linttest.Run(t, "ringpublish", lint.RingPublish)
}

func TestObsRecord(t *testing.T) {
	linttest.Run(t, "obsrecord", lint.Obsrecord)
}

// TestWaiverRequiresReason: a //lint:allow with no reason is itself a finding
// (rule "waiver"), and the waiver does not apply — the underlying diagnostic
// still fires. Both must surface.
func TestWaiverRequiresReason(t *testing.T) {
	findings := linttest.Findings(t, "waiver", lint.RetryDiscipline)
	var sawMalformed, sawSleep bool
	for _, f := range findings {
		switch f.Rule {
		case "waiver":
			sawMalformed = true
		case "retrydiscipline":
			sawSleep = true
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !sawMalformed {
		t.Error("malformed //lint:allow (missing reason) produced no waiver finding")
	}
	if !sawSleep {
		t.Error("malformed waiver suppressed the underlying finding; it must not apply")
	}
}
