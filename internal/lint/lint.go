// Package lint is zeuslint: a suite of static analyzers that mechanically
// enforce the Zeus engine's documented concurrency contracts. The paper's
// correctness argument (§4/§5) is model-checked against invariants that the
// code base otherwise carries only in comments and torture tests; each
// analyzer turns one such prose contract into a build-time error:
//
//   - replaceonly: store.Object.Data is replace-only outside the store
//     package — the zero-copy read paths (SnapshotRef, ownership ACK
//     piggyback, FabricMem delivery) alias its backing array after Mu is
//     released, so one in-place write is a silent lost update.
//   - seqlockwrite: ⟨TVersion, TState⟩ may only change through SetTLocked,
//     which maintains the packed atomic mirror the lock-free read-only
//     validation reads; a direct field write desynchronizes the seqlock.
//   - lockedsuffix: *Locked functions are only called with a mutex held (or
//     from another *Locked function), and Mu-guarded store.Object fields
//     are only written under a lock.
//   - sendfrozen: a wire message handed to Send/SendBatch/Multicast/
//     Broadcast/enqueue is frozen — zero-copy fabrics and retransmit
//     queues may still reference it.
//   - retrydiscipline: engine code does not call raw time.Sleep; retries,
//     polls and back-off go through internal/retry.
//   - walfrozen: a storage.Record handed to Append is frozen (the group-
//     commit log encodes it asynchronously), and in any function that sends
//     a CommitAck the WAL Append comes first with its error consumed — no
//     acknowledgement may outrun the durability it promises.
//   - obsrecord: metric record sites are allocation-free and nil-guarded —
//     constant metric names (dynamic families register at wiring time under
//     a waiver), no time.Now() pairs split across locks (RecordSince), no
//     registry lookups on the record path, and field-path records dominated
//     by a nil check of the obs handle so disabled deployments keep the
//     seed hot path.
//   - ringpublish: store.Object.Ring (the MVCC version ring behind snapshot
//     reads) is append-via-publish only — entries enter through
//     PublishRingLocked after SetTLocked advanced the seqlock word, are
//     immutable once published, and leave only through ResetRingLocked; a
//     direct write, in-place mutation or hand-rolled append rewrites history
//     a committed snapshot may already have observed.
//
// Findings can be waived in place with a trailing or preceding comment:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory; a waiver without one is itself a finding. The
// tree is expected to stay lint-clean (TestZeuslintTreeClean and the CI
// lint job enforce it), so every new invariant-bearing change either
// satisfies the contracts or carries an explicit, justified waiver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"zeus/internal/lint/analysis"
	"zeus/internal/lint/loader"
)

// storePkg is the import path owning the Object contracts.
const storePkg = "zeus/internal/store"

// wirePkg is the import path of the wire message types.
const wirePkg = "zeus/internal/wire"

// Analyzers returns the full zeuslint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ReplaceOnly,
		SeqlockWrite,
		LockedSuffix,
		SendFrozen,
		RetryDiscipline,
		WalFrozen,
		RingPublish,
		Obsrecord,
	}
}

// Finding is one post-waiver diagnostic.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Rule)
}

// Run applies the analyzers to every package and returns the surviving
// findings (waived diagnostics removed, malformed waivers added), sorted by
// position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, p := range pkgs {
		w := collectWaivers(p)
		out = append(out, w.malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			rule := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				if w.allows(rule, pos) {
					return
				}
				out = append(out, Finding{Pos: pos, Rule: rule, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, p.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

// waivers indexes //lint:allow comments of one package. A waiver suppresses
// matching findings on its own line and on the line directly below it (the
// comment-above form).
type waivers struct {
	// byLine maps file → line → rules allowed on that line.
	byLine    map[string]map[int][]string
	malformed []Finding
}

func collectWaivers(p *loader.Package) *waivers {
	w := &waivers{byLine: make(map[string]map[int][]string)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					w.malformed = append(w.malformed, Finding{
						Pos:     pos,
						Rule:    "waiver",
						Message: "malformed waiver: want //lint:allow <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				lines := w.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					w.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], rule)
				lines[pos.Line+1] = append(lines[pos.Line+1], rule)
			}
		}
	}
	return w
}

func (w *waivers) allows(rule string, pos token.Position) bool {
	for _, r := range w.byLine[pos.Filename][pos.Line] {
		if r == rule {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Shared type helpers.
// ---------------------------------------------------------------------------

// objectField reports whether e selects a field of store.Object (through a
// value or pointer receiver) and returns the field name.
func objectField(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", false
	}
	if !isObjectType(s.Recv()) {
		return "", false
	}
	return s.Obj().Name(), true
}

// isObjectType reports whether t (possibly a pointer) is store.Object.
func isObjectType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Object" && obj.Pkg() != nil && obj.Pkg().Path() == storePkg
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. time.Sleep).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isBuiltin reports whether call invokes the named builtin (append, copy, …).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// calleeName returns the bare name of the function/method being called
// ("Send" for tr.Send(...), "enqueue" for e.enqueue(...)).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isMutexExpr reports whether e's type (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprKey renders e as a stable key ("o.Mu") for lock tracking.
func exprKey(e ast.Expr) string { return types.ExprString(e) }
