package lint

import (
	"go/ast"
	"strings"

	"zeus/internal/lint/analysis"
)

// LockedSuffix enforces the codebase's lock-transfer naming convention: a
// function whose name ends in "Locked" (SetTLocked, GrantLocalLocked,
// applyInvLocked, …) documents "the caller holds the corresponding mutex".
// The analyzer checks both directions of that contract:
//
//   - a *Locked function may only be called from another *Locked function or
//     from a scope where some sync.Mutex/RWMutex is lexically held (a
//     visible X.Lock()/X.RLock() with no intervening unconditional
//     X.Unlock());
//   - a write to a Mu-guarded store.Object field (Data, OState, OTS,
//     Replicas, Pending, Level, LocalOwner, YieldLocalUntil, TState,
//     TVersion) outside a *Locked function requires a lexically held lock.
//
// The analysis is a per-function lexical walk with light flow sensitivity:
// an Unlock inside a branch that terminates (returns/breaks/continues) does
// not release the outer scope's lock; function literals are independent
// scopes (a goroutine does not inherit its creator's locks); loop bodies do
// not leak acquisitions. It deliberately does not chase the *specific*
// mutex a callee documents — cross-object helpers make that a convention,
// not a mechanically recoverable fact — so the check is "some lock is
// held", which still catches the real failure mode: the lock-free call
// path that holds nothing at all.
var LockedSuffix = &analysis.Analyzer{
	Name: "lockedsuffix",
	Doc:  "*Locked functions and Mu-guarded Object fields require a held mutex",
	Run:  runLockedSuffix,
}

// guardedObjectFields are the store.Object fields documented as Mu-guarded.
// (PendingCommits is atomic; tsv is seqlockwrite's business.)
var guardedObjectFields = map[string]bool{
	"Data": true, "TState": true, "TVersion": true,
	"OState": true, "OTS": true, "Replicas": true, "Pending": true,
	"Level": true, "LocalOwner": true, "YieldLocalUntil": true,
}

func runLockedSuffix(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ls := &lockScan{pass: pass, inLocked: strings.HasSuffix(fd.Name.Name, "Locked")}
			ls.block(fd.Body.List, map[string]bool{})
		}
	}
	return nil, nil
}

// lockScan walks one function scope tracking lexically held mutexes.
type lockScan struct {
	pass     *analysis.Pass
	inLocked bool
}

// block analyzes stmts sequentially, mutating held in place; it reports
// whether the statement list definitely terminates (return/branch/panic).
func (ls *lockScan) block(stmts []ast.Stmt, held map[string]bool) bool {
	for _, s := range stmts {
		if ls.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; it reports whether control definitely leaves
// the enclosing block afterwards.
func (ls *lockScan) stmt(s ast.Stmt, held map[string]bool) bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := mutexOp(ls.pass, v.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return false
		}
		ls.expr(v.X, held)
	case *ast.DeferStmt:
		// defer X.Unlock() keeps the lock held for the rest of the scope.
		if _, op, ok := mutexOp(ls.pass, v.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return false
		}
		for _, a := range v.Call.Args {
			ls.expr(a, held)
		}
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs at return time, when locks acquired
			// here may already be released: fresh scope.
			ls.funcLit(fl)
		} else {
			ls.expr(v.Call.Fun, held)
		}
	case *ast.GoStmt:
		for _, a := range v.Call.Args {
			ls.expr(a, held)
		}
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			ls.funcLit(fl) // goroutines do not inherit the creator's locks
		} else {
			ls.expr(v.Call.Fun, held)
		}
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			ls.expr(r, held)
		}
		for _, l := range v.Lhs {
			ls.checkGuardedWrite(l, held)
			ls.expr(l, held)
		}
	case *ast.IncDecStmt:
		ls.checkGuardedWrite(v.X, held)
		ls.expr(v.X, held)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			ls.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave the block
	case *ast.IfStmt:
		if v.Init != nil {
			ls.stmt(v.Init, held)
		}
		ls.expr(v.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := ls.block(v.Body.List, thenHeld)
		switch e := v.Else.(type) {
		case nil:
			if !thenTerm {
				intersectHeld(held, thenHeld)
			}
		case *ast.BlockStmt:
			elseHeld := copyHeld(held)
			elseTerm := ls.block(e.List, elseHeld)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replaceHeld(held, elseHeld)
			case elseTerm:
				replaceHeld(held, thenHeld)
			default:
				replaceHeld(held, thenHeld)
				intersectHeld(held, elseHeld)
			}
		case *ast.IfStmt:
			elseHeld := copyHeld(held)
			elseTerm := ls.stmt(e, elseHeld)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				replaceHeld(held, elseHeld)
			case elseTerm:
				replaceHeld(held, thenHeld)
			default:
				replaceHeld(held, thenHeld)
				intersectHeld(held, elseHeld)
			}
		}
	case *ast.ForStmt:
		if v.Init != nil {
			ls.stmt(v.Init, held)
		}
		if v.Cond != nil {
			ls.expr(v.Cond, held)
		}
		ls.block(v.Body.List, copyHeld(held)) // body effects stay in the body
	case *ast.RangeStmt:
		ls.expr(v.X, held)
		ls.block(v.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if v.Init != nil {
			ls.stmt(v.Init, held)
		}
		if v.Tag != nil {
			ls.expr(v.Tag, held)
		}
		ls.caseBodies(v.Body, held)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			ls.stmt(v.Init, held)
		}
		ls.stmt(v.Assign, held)
		ls.caseBodies(v.Body, held)
	case *ast.SelectStmt:
		ls.caseBodies(v.Body, held)
	case *ast.BlockStmt:
		return ls.block(v.List, held)
	case *ast.LabeledStmt:
		return ls.stmt(v.Stmt, held)
	case *ast.DeclStmt:
		ast.Inspect(v, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				ls.expr(e, held)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		ls.expr(v.Chan, held)
		ls.expr(v.Value, held)
	}
	return false
}

// caseBodies analyzes each clause with its own copy of held; acquisitions
// inside clauses do not leak out (conservative).
func (ls *lockScan) caseBodies(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				ls.expr(e, held)
			}
			ls.block(cc.Body, copyHeld(held))
		case *ast.CommClause:
			if cc.Comm != nil {
				ls.stmt(cc.Comm, copyHeld(held))
			}
			ls.block(cc.Body, copyHeld(held))
		}
	}
}

// expr inspects an expression for *Locked calls and nested function
// literals under the current lock state.
func (ls *lockScan) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			ls.funcLit(v)
			return false
		case *ast.CallExpr:
			name := calleeName(v)
			if strings.HasSuffix(name, "Locked") && name != "Locked" {
				if !ls.inLocked && len(held) == 0 {
					ls.pass.Reportf(v.Pos(), "%s called without a lexically held mutex (callers of *Locked functions must hold the documented lock or carry the suffix themselves)", name)
				}
			}
		}
		return true
	})
}

// funcLit analyzes a function literal as an independent scope.
func (ls *lockScan) funcLit(fl *ast.FuncLit) {
	if fl.Body == nil {
		return
	}
	inner := &lockScan{pass: ls.pass, inLocked: false}
	inner.block(fl.Body.List, map[string]bool{})
}

// checkGuardedWrite flags assignments to Mu-guarded store.Object fields made
// with no lock held and outside a *Locked function.
func (ls *lockScan) checkGuardedWrite(lhs ast.Expr, held map[string]bool) {
	name, ok := objectField(ls.pass.TypesInfo, lhs)
	if !ok || !guardedObjectFields[name] {
		return
	}
	if ls.inLocked || len(held) > 0 {
		return
	}
	ls.pass.Reportf(lhs.Pos(), "store.Object.%s is Mu-guarded but written with no lexically held mutex (and not in a *Locked function)", name)
}

// mutexOp decodes e as a Lock/RLock/Unlock/RUnlock call on a sync mutex and
// returns the receiver key and the operation.
func mutexOp(pass *analysis.Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexExpr(pass.TypesInfo, sel.X) {
		return "", "", false
	}
	return exprKey(sel.X), sel.Sel.Name, true
}

func copyHeld(h map[string]bool) map[string]bool {
	out := make(map[string]bool, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

// replaceHeld makes dst equal to src in place.
func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

// intersectHeld drops from dst every lock not also in other.
func intersectHeld(dst, other map[string]bool) {
	for k := range dst {
		if !other[k] {
			delete(dst, k)
		}
	}
}
