package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"zeus/internal/lint"
	"zeus/internal/lint/loader"
)

// TestZeuslintTreeClean runs every analyzer over the whole module and asserts
// zero findings: the concurrency contracts hold tree-wide, and any new
// violation (or unwaived exception) fails the build here and in CI's lint
// job. This is the same pass `go run ./cmd/zeuslint ./...` performs.
func TestZeuslintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check is slow; run without -short")
	}
	root := moduleRoot(t)
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// moduleRoot locates the module directory via go env GOMOD.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}
