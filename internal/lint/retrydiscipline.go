package lint

import (
	"go/ast"
	"strings"

	"zeus/internal/lint/analysis"
)

// RetryDiscipline keeps the PR-1 retry unification honest: engine code does
// not call raw time.Sleep. Every retry, poll and back-off goes through
// internal/retry (Policy/Retrier for paced loops, retry.Sleep for
// context/wake-aware waits, retry.Do for bounded retries), so pacing
// decisions live in one audited place — ad-hoc sleeps are how the three
// divergent pre-PR-1 retry stacks grew in the first place, and how
// unbounded 65-second NACK storms hide.
//
// Scope: engine packages only. Measurement harnesses, simulators and
// operator binaries pace wall-clock schedules, not protocol retries, and
// are exempt wholesale (see skipPkgPrefixes); test files are never
// analyzed. A legitimate engine-side sleep that is not a retry can carry a
// //lint:allow retrydiscipline <reason> waiver.
var RetryDiscipline = &analysis.Analyzer{
	Name: "retrydiscipline",
	Doc:  "engine code must pace retries through internal/retry, not raw time.Sleep",
	Run:  runRetryDiscipline,
}

// skipPkgPrefixes are import-path prefixes outside the analyzer's scope:
// the retry subsystem itself, timing-calibrated simulators, measurement
// harnesses and operator binaries.
var skipPkgPrefixes = []string{
	"zeus/internal/retry",       // the one place raw sleeps belong
	"zeus/internal/netsim",      // simulator clock calibration
	"zeus/internal/experiments", // measurement pacing
	"zeus/internal/bench",       // workload pacing
	"zeus/internal/loadgen",     // open-loop arrival pacing (wall-clock schedule)
	"zeus/internal/apps",        // application simulators
	"zeus/cmd",                  // operator binaries
	"zeus/examples",
}

func runRetryDiscipline(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	for _, skip := range skipPkgPrefixes {
		if path == skip || strings.HasPrefix(path, skip+"/") {
			return nil, nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.TypesInfo, call, "time", "Sleep") {
				pass.Reportf(call.Pos(), "raw time.Sleep in engine code: pace this wait through internal/retry (Policy/Retrier, retry.Sleep or retry.Do)")
			}
			return true
		})
	}
	return nil, nil
}
