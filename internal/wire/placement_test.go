package wire

import "testing"

func TestComputePlacementShape(t *testing.T) {
	live := BitmapOf(0, 1, 2, 3, 4, 5)
	p := ComputePlacement(64, 3, 1, live)
	if len(p.Shards) != 64 || p.Degree != 3 || p.Epoch != 1 {
		t.Fatalf("placement shape: %d shards, degree %d, epoch %d", len(p.Shards), p.Degree, p.Epoch)
	}
	for s, ds := range p.Shards {
		if ds.Count() != 3 {
			t.Fatalf("shard %d has %d drivers", s, ds.Count())
		}
		if ds.Intersect(live) != ds {
			t.Fatalf("shard %d drivers %v outside live set", s, ds)
		}
	}
}

func TestComputePlacementClampsToLiveSet(t *testing.T) {
	p := ComputePlacement(8, 3, 1, BitmapOf(2, 7))
	for s, ds := range p.Shards {
		if ds != BitmapOf(2, 7) {
			t.Fatalf("shard %d drivers %v; want both live nodes", s, ds)
		}
	}
	if got := ComputePlacement(4, 3, 1, 0); len(got.Shards) != 4 {
		t.Fatalf("empty live set should keep the shard count: %v", got.Shards)
	}
}

func TestComputePlacementDeterministic(t *testing.T) {
	live := BitmapOf(0, 1, 2, 3, 4)
	a := ComputePlacement(32, 3, 7, live)
	b := ComputePlacement(32, 3, 7, live)
	for s := range a.Shards {
		if a.Shards[s] != b.Shards[s] {
			t.Fatalf("shard %d differs across identical computations", s)
		}
	}
}

// TestPlacementStability pins the rendezvous property the sync machinery
// relies on: removing one node only changes the shards that node drove.
func TestPlacementStability(t *testing.T) {
	live := BitmapOf(0, 1, 2, 3, 4, 5)
	before := ComputePlacement(128, 3, 1, live)
	after := before.Recompute(2, live.Remove(3))
	moved := 0
	for s := range before.Shards {
		if before.Shards[s].Contains(3) {
			moved++
			if after.Shards[s].Contains(3) {
				t.Fatalf("shard %d still driven by removed node", s)
			}
			// Survivors keep their seats; exactly one replacement joins.
			kept := before.Shards[s].Remove(3)
			if after.Shards[s].Intersect(kept) != kept {
				t.Fatalf("shard %d evicted a surviving driver: %v -> %v", s, before.Shards[s], after.Shards[s])
			}
			continue
		}
		if before.Shards[s] != after.Shards[s] {
			t.Fatalf("shard %d moved without losing a driver: %v -> %v", s, before.Shards[s], after.Shards[s])
		}
	}
	if moved == 0 {
		t.Fatal("node 3 drove no shards at all (distribution broken)")
	}
}

func TestPlacementDistribution(t *testing.T) {
	// Every node should drive a reasonable share of shards, and dense
	// object ids should scatter across shards.
	live := BitmapOf(0, 1, 2, 3, 4, 5)
	p := ComputePlacement(256, 3, 1, live)
	perNode := map[NodeID]int{}
	for _, ds := range p.Shards {
		for _, n := range ds.Nodes() {
			perNode[n]++
		}
	}
	want := 256 * 3 / 6
	for n, got := range perNode {
		if got < want/2 || got > want*2 {
			t.Fatalf("node %d drives %d shards; expected around %d", n, got, want)
		}
	}
	perShard := make([]int, 64)
	q := ComputePlacement(64, 3, 1, live)
	for obj := ObjectID(0); obj < 6400; obj++ {
		perShard[q.ShardOf(obj)]++
	}
	for s, got := range perShard {
		if got > 4*6400/64 {
			t.Fatalf("shard %d holds %d of 6400 dense objects", s, got)
		}
	}
}

func TestPlacementResolvers(t *testing.T) {
	p := ComputePlacement(16, 3, 1, BitmapOf(0, 1, 2, 3))
	obj := ObjectID(42)
	sh := p.ShardOf(obj)
	if p.DriversFor(obj) != p.Shards[sh] {
		t.Fatal("DriversFor disagrees with ShardOf")
	}
	for _, n := range p.Shards[sh].Nodes() {
		if !p.Drives(n, obj) {
			t.Fatalf("driver %d not reported by Drives", n)
		}
	}
	var zero DirPlacement
	if !zero.IsZero() || zero.ShardOf(obj) != 0 || zero.DriversFor(obj) != 0 {
		t.Fatal("zero placement should resolve to shard 0 with no drivers")
	}
}
