package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrBadKind     = errors.New("wire: unknown message kind")
	ErrTooLarge    = errors.New("wire: field exceeds size limit")
)

// maxBlob bounds variable-length fields so a corrupt length prefix cannot
// trigger a huge allocation.
const maxBlob = 64 << 20

type enc struct{ b []byte }

func (e *enc) u8(v uint8)      { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)    { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)    { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)    { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) node(n NodeID)   { e.u16(uint16(n)) }
func (e *enc) obj(o ObjectID)  { e.u64(uint64(o)) }
func (e *enc) epoch(x Epoch)   { e.u32(uint32(x)) }
func (e *enc) bitmap(b Bitmap) { e.u64(uint64(b)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) ots(t OTS) {
	e.u64(t.Ver)
	e.node(t.Node)
}
func (e *enc) tx(t TxID) {
	e.node(t.Pipe.Node)
	e.u8(uint8(t.Pipe.Worker))
	e.epoch(t.Pipe.Incar)
	e.u64(t.Local)
}
func (e *enc) replicas(r ReplicaSet) {
	e.node(r.Owner)
	e.bitmap(r.Readers)
}
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) updates(us []Update) {
	e.u32(uint32(len(us)))
	for _, u := range us {
		e.obj(u.Obj)
		e.u64(u.Version)
		e.bytes(u.Data)
	}
}
func (e *enc) bvers(vs []BVer) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.obj(v.Obj)
		e.u64(v.Ver)
	}
}
func (e *enc) objs(os []ObjectID) {
	e.u32(uint32(len(os)))
	for _, o := range os {
		e.obj(o)
	}
}
func (e *enc) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) addrs(as []NodeAddr) {
	e.u16(uint16(len(as)))
	for _, a := range as {
		e.node(a.Node)
		e.str(a.Addr)
	}
}
func (e *enc) vscmd(c VSCommand) {
	e.u8(uint8(c.Op))
	e.node(c.Node)
	e.epoch(c.Epoch)
	e.str(c.Addr)
}
func (e *enc) vsstate(s VSState) {
	e.u64(s.Index)
	e.epoch(s.Epoch)
	e.bitmap(s.Live)
	e.bitmap(s.Barrier)
	e.epoch(s.BarrierEpoch)
	e.placement(s.Placement)
	e.addrs(s.Addrs)
}
func (e *enc) syncentries(es []SyncEntry) {
	e.u32(uint32(len(es)))
	for i := range es {
		x := &es[i]
		e.obj(x.Obj)
		e.u64(x.Version)
		e.ots(x.TS)
		e.replicas(x.Replicas)
		e.u8(uint8(x.Class))
		e.boolean(x.HasData)
		e.bytes(x.Data)
		e.u64(x.CTS)
	}
}
func (e *enc) placement(p DirPlacement) {
	e.epoch(p.Epoch)
	e.u8(p.Degree)
	e.u16(uint16(len(p.Shards)))
	for _, b := range p.Shards {
		e.bitmap(b)
	}
}
func (e *enc) direntries(es []DirEntry) {
	e.u32(uint32(len(es)))
	for _, x := range es {
		e.obj(x.Obj)
		e.ots(x.TS)
		e.replicas(x.Replicas)
		e.boolean(x.Pending)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrShortBuffer
	}
}
func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}
func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *dec) node() NodeID   { return NodeID(d.u16()) }
func (d *dec) obj() ObjectID  { return ObjectID(d.u64()) }
func (d *dec) epoch() Epoch   { return Epoch(d.u32()) }
func (d *dec) bitmap() Bitmap { return Bitmap(d.u64()) }
func (d *dec) boolean() bool  { return d.u8() != 0 }
func (d *dec) ots() OTS       { return OTS{Ver: d.u64(), Node: d.node()} }
func (d *dec) tx() TxID {
	return TxID{Pipe: PipeID{Node: d.node(), Worker: Worker(d.u8()), Incar: d.epoch()}, Local: d.u64()}
}
func (d *dec) replicas() ReplicaSet {
	return ReplicaSet{Owner: d.node(), Readers: d.bitmap()}
}
func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxBlob || d.off+int(n) > len(d.b) {
		if n > maxBlob {
			d.err = ErrTooLarge
		} else {
			d.fail()
		}
		return nil
	}
	if n == 0 {
		d.off += 0
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}
func (d *dec) skip(n int) {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return
	}
	d.off += n
}

// updates decodes an Update list with two allocations total — the Update
// array and one shared data slab carved into per-update sub-slices — instead
// of one allocation per update. R-INV decode sits on the replication hot
// path, so a pre-scan over the (already validated-length) buffer is cheaper
// than the saved allocator round trips. The slab is never reused: decoded
// updates are retained by followers (stored R-INVs) and by the store itself
// (o.Data aliases u.Data), so ownership must pass to the caller.
func (d *dec) updates() []Update {
	n := d.u32()
	if d.err != nil || n > math.MaxUint32 {
		return nil
	}
	if int(n) > len(d.b) { // each update is ≥21 bytes; cheap sanity bound
		d.err = ErrTooLarge
		return nil
	}
	start := d.off
	total := 0
	for i := uint32(0); i < n && d.err == nil; i++ {
		d.skip(16) // obj + version
		l := d.u32()
		if d.err == nil && l > maxBlob {
			d.err = ErrTooLarge
		}
		d.skip(int(l))
		total += int(l)
	}
	if d.err != nil {
		return nil
	}
	d.off = start
	slab := make([]byte, 0, total)
	out := make([]Update, n)
	for i := range out {
		out[i].Obj = d.obj()
		out[i].Version = d.u64()
		if l := int(d.u32()); l > 0 {
			slab = append(slab, d.b[d.off:d.off+l]...)
			out[i].Data = slab[len(slab)-l : len(slab) : len(slab)]
			d.off += l
		}
	}
	return out
}
func (d *dec) bvers() []BVer {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n) > len(d.b) {
		d.err = ErrTooLarge
		return nil
	}
	out := make([]BVer, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, BVer{Obj: d.obj(), Ver: d.u64()})
	}
	return out
}
func (d *dec) str() string {
	n := d.u16()
	if d.err != nil {
		return ""
	}
	if int(n) > len(d.b)-d.off {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
func (d *dec) addrsList() []NodeAddr {
	n := d.u16()
	if d.err != nil || n == 0 {
		return nil
	}
	if int(n)*4 > len(d.b) { // each entry is ≥4 encoded bytes
		d.err = ErrTooLarge
		return nil
	}
	out := make([]NodeAddr, 0, n)
	for i := uint16(0); i < n && d.err == nil; i++ {
		out = append(out, NodeAddr{Node: d.node(), Addr: d.str()})
	}
	return out
}
func (d *dec) vscmd() VSCommand {
	return VSCommand{Op: VSOp(d.u8()), Node: d.node(), Epoch: d.epoch(), Addr: d.str()}
}
func (d *dec) vsstate() VSState {
	return VSState{
		Index: d.u64(), Epoch: d.epoch(), Live: d.bitmap(),
		Barrier: d.bitmap(), BarrierEpoch: d.epoch(),
		Placement: d.placement(), Addrs: d.addrsList(),
	}
}
func (d *dec) syncentries() []SyncEntry {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n)*50 > len(d.b) { // each entry is ≥50 encoded bytes
		d.err = ErrTooLarge
		return nil
	}
	out := make([]SyncEntry, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, SyncEntry{
			Obj: d.obj(), Version: d.u64(), TS: d.ots(),
			Replicas: d.replicas(), Class: SyncClass(d.u8()),
			HasData: d.boolean(), Data: d.bytes(), CTS: d.u64(),
		})
	}
	return out
}
func (d *dec) placement() DirPlacement {
	p := DirPlacement{Epoch: d.epoch(), Degree: d.u8()}
	n := d.u16()
	if d.err != nil {
		return DirPlacement{}
	}
	if int(n)*8 > len(d.b) {
		d.err = ErrTooLarge
		return DirPlacement{}
	}
	if n == 0 {
		return p
	}
	p.Shards = make([]Bitmap, n)
	for i := range p.Shards {
		p.Shards[i] = d.bitmap()
	}
	return p
}
func (d *dec) shardList() []uint32 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n)*4 > len(d.b) {
		d.err = ErrTooLarge
		return nil
	}
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, d.u32())
	}
	return out
}
func (d *dec) direntries() []DirEntry {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n)*29 > len(d.b) { // each entry is 29 encoded bytes
		d.err = ErrTooLarge
		return nil
	}
	out := make([]DirEntry, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, DirEntry{Obj: d.obj(), TS: d.ots(), Replicas: d.replicas(), Pending: d.boolean()})
	}
	return out
}
func (d *dec) objsList() []ObjectID {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int(n) > len(d.b) {
		d.err = ErrTooLarge
		return nil
	}
	out := make([]ObjectID, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, d.obj())
	}
	return out
}

// EncodedSize returns an upper bound on m's marshalled size, exact for the
// payload-carrying kinds. Marshal uses it to allocate the output buffer in
// one shot instead of growing through append.
func EncodedSize(m Msg) int {
	const fixed = 128 // covers every fixed-size message kind
	switch v := m.(type) {
	case *CommitInv:
		n := fixed
		for _, u := range v.Updates {
			n += 24 + len(u.Data)
		}
		return n
	case *OwnAck:
		return fixed + len(v.Data)
	case *OwnResp:
		return fixed + len(v.Data)
	case *HermesInv:
		return fixed + len(v.Val)
	case *BReadResp:
		return fixed + len(v.Data)
	case *BLock:
		return fixed + 16*len(v.Items)
	case *BValidate:
		return fixed + 16*len(v.Items)
	case *BBackup:
		n := fixed
		for _, u := range v.Updates {
			n += 24 + len(u.Data)
		}
		return n
	case *BCommit:
		n := fixed
		for _, u := range v.Updates {
			n += 24 + len(u.Data)
		}
		return n
	case *BAbort:
		return fixed + 8*len(v.Objs)
	case *VSPropose:
		return fixed + len(v.Cmd.Addr)
	case *VSAccept:
		return fixed + vsstateSize(&v.State) + vsstateSize(&v.AccState) +
			len(v.Cmd.Addr) + len(v.AccCmd.Addr)
	case *VSCommit:
		return fixed + vsstateSize(&v.State) + len(v.Cmd.Addr)
	case *VSQuery:
		return fixed + vsstateSize(&v.State)
	case *DirState:
		return fixed + 29*len(v.Entries)
	case *DirPull:
		return fixed + 4*len(v.Shards)
	case *SyncPull:
		return fixed + syncSize(v.Entries)
	case *SyncState:
		return fixed + syncSize(v.Entries)
	}
	return fixed
}

// vsstateSize bounds the variable tail of one encoded VSState.
func vsstateSize(s *VSState) int {
	n := 8 * len(s.Placement.Shards)
	for _, a := range s.Addrs {
		n += 4 + len(a.Addr)
	}
	return n
}

func syncSize(es []SyncEntry) int {
	n := 50 * len(es)
	for i := range es {
		n += len(es[i].Data)
	}
	return n
}

// Marshal serializes a message: one kind byte followed by the body.
func Marshal(m Msg) []byte {
	return AppendMarshal(make([]byte, 0, EncodedSize(m)), m)
}

// AppendMarshal appends m's serialization to dst and returns the extended
// slice. It is the allocation-free core of Marshal: hot paths call it with a
// pooled buffer (GetBuf/PutBuf) or while building a batch payload.
func AppendMarshal(dst []byte, m Msg) []byte {
	e := &enc{b: dst}
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case *OwnReq:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.node(v.Requester)
		e.u8(uint8(v.Mode))
		e.epoch(v.Epoch)
		e.bitmap(v.Target)
		e.u32(v.Shard)
	case *OwnInv:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.ots(v.TS)
		e.epoch(v.Epoch)
		e.node(v.Requester)
		e.node(v.Driver)
		e.u8(uint8(v.Mode))
		e.replicas(v.NewReplicas)
		e.node(v.PrevOwner)
		e.bitmap(v.Arbiters)
		e.boolean(v.Recovery)
	case *OwnAck:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.ots(v.TS)
		e.epoch(v.Epoch)
		e.node(v.From)
		e.bitmap(v.Arbiters)
		e.replicas(v.NewReplicas)
		e.u8(uint8(v.Mode))
		e.boolean(v.HasData)
		e.u64(v.TVersion)
		e.bytes(v.Data)
		e.u64(v.CTS)
	case *OwnVal:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.ots(v.TS)
		e.epoch(v.Epoch)
	case *OwnNack:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.epoch(v.Epoch)
		e.node(v.From)
		e.u8(uint8(v.Reason))
	case *OwnResp:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.ots(v.TS)
		e.epoch(v.Epoch)
		e.node(v.Driver)
		e.bitmap(v.Arbiters)
		e.replicas(v.NewReplicas)
		e.u8(uint8(v.Mode))
		e.boolean(v.HasData)
		e.u64(v.TVersion)
		e.bytes(v.Data)
		e.u64(v.CTS)
	case *CommitInv:
		e.tx(v.Tx)
		e.epoch(v.Epoch)
		e.bitmap(v.Followers)
		e.boolean(v.PrevVal)
		e.boolean(v.Replay)
		e.updates(v.Updates)
		e.u64(v.CTS)
	case *CommitAck:
		e.tx(v.Tx)
		e.epoch(v.Epoch)
		e.node(v.From)
		e.u64(v.AppliedWM)
	case *CommitVal:
		e.tx(v.Tx)
		e.epoch(v.Epoch)
	case *View:
		e.epoch(v.Epoch)
		e.bitmap(v.Live)
	case *RecoveryDone:
		e.epoch(v.Epoch)
		e.node(v.From)
	case *HermesInv:
		e.u64(v.Key)
		e.ots(v.TS)
		e.epoch(v.Epoch)
		e.node(v.From)
		e.bytes(v.Val)
	case *HermesAck:
		e.u64(v.Key)
		e.ots(v.TS)
		e.epoch(v.Epoch)
		e.node(v.From)
	case *HermesVal:
		e.u64(v.Key)
		e.ots(v.TS)
		e.epoch(v.Epoch)
	case *BReadReq:
		e.u64(v.ReqID)
		e.node(v.From)
		e.obj(v.Obj)
	case *BReadResp:
		e.u64(v.ReqID)
		e.obj(v.Obj)
		e.u64(v.Ver)
		e.boolean(v.OK)
		e.bytes(v.Data)
	case *BLock:
		e.u64(v.ReqID)
		e.node(v.From)
		e.bvers(v.Items)
	case *BLockResp:
		e.u64(v.ReqID)
		e.node(v.From)
		e.boolean(v.OK)
	case *BValidate:
		e.u64(v.ReqID)
		e.node(v.From)
		e.bvers(v.Items)
	case *BValidateResp:
		e.u64(v.ReqID)
		e.node(v.From)
		e.boolean(v.OK)
	case *BBackup:
		e.u64(v.ReqID)
		e.node(v.From)
		e.updates(v.Updates)
	case *BBackupAck:
		e.u64(v.ReqID)
		e.node(v.From)
	case *BCommit:
		e.u64(v.ReqID)
		e.node(v.From)
		e.updates(v.Updates)
	case *BCommitAck:
		e.u64(v.ReqID)
		e.node(v.From)
	case *BAbort:
		e.u64(v.ReqID)
		e.node(v.From)
		e.objs(v.Objs)
	case *VSPropose:
		e.vscmd(v.Cmd)
	case *VSAccept:
		e.u64(v.Ballot)
		e.u8(v.Phase)
		e.vscmd(v.Cmd)
		e.vsstate(v.State)
		e.boolean(v.HasAcc)
		e.u64(v.AccBallot)
		e.vscmd(v.AccCmd)
		e.vsstate(v.AccState)
	case *VSCommit:
		e.u64(v.Ballot)
		e.vscmd(v.Cmd)
		e.vsstate(v.State)
		e.boolean(v.BarrierDone)
		e.epoch(v.DoneEpoch)
	case *VSLeaseMsg:
		e.bitmap(v.Nodes)
		e.boolean(v.Heartbeat)
		e.u64(v.Ballot)
	case *VSQuery:
		e.boolean(v.Resp)
		e.u64(v.Ballot)
		e.vsstate(v.State)
	case *DirPull:
		e.u32(uint32(len(v.Shards)))
		for _, sh := range v.Shards {
			e.u32(sh)
		}
		e.epoch(v.PlacementEpoch)
		e.node(v.From)
	case *DirState:
		e.u32(v.Shard)
		e.epoch(v.PlacementEpoch)
		e.node(v.From)
		e.direntries(v.Entries)
	case *SyncPull:
		e.node(v.From)
		e.syncentries(v.Entries)
	case *SyncState:
		e.node(v.From)
		e.syncentries(v.Entries)
	case *SafeTime:
		e.node(v.From)
		e.epoch(v.Epoch)
		e.u64(v.WM)
	case *ObsPull:
		e.node(v.From)
		e.boolean(v.Full)
	case *ObsState:
		e.node(v.From)
		e.epoch(v.Epoch)
		e.u64(v.AppliedWM)
		e.u64(v.SafeTime)
		e.u64(v.Clock)
		e.u64(v.Commits)
		e.u64(v.Incidents)
		e.bytes(v.Metrics)
	default:
		panic(fmt.Sprintf("wire: Marshal: unhandled message type %T", m))
	}
	return e.b
}

// Unmarshal parses a message produced by Marshal.
func Unmarshal(p []byte) (Msg, error) {
	if len(p) == 0 {
		return nil, ErrShortBuffer
	}
	d := &dec{b: p, off: 1}
	k := Kind(p[0])
	var m Msg
	switch k {
	case KindOwnReq:
		m = &OwnReq{
			ReqID: d.u64(), Obj: d.obj(), Requester: d.node(),
			Mode: ReqMode(d.u8()), Epoch: d.epoch(), Target: d.bitmap(),
			Shard: d.u32(),
		}
	case KindOwnInv:
		m = &OwnInv{
			ReqID: d.u64(), Obj: d.obj(), TS: d.ots(), Epoch: d.epoch(),
			Requester: d.node(), Driver: d.node(), Mode: ReqMode(d.u8()),
			NewReplicas: d.replicas(), PrevOwner: d.node(),
			Arbiters: d.bitmap(), Recovery: d.boolean(),
		}
	case KindOwnAck:
		m = &OwnAck{
			ReqID: d.u64(), Obj: d.obj(), TS: d.ots(), Epoch: d.epoch(),
			From: d.node(), Arbiters: d.bitmap(), NewReplicas: d.replicas(),
			Mode: ReqMode(d.u8()), HasData: d.boolean(), TVersion: d.u64(),
			Data: d.bytes(), CTS: d.u64(),
		}
	case KindOwnVal:
		m = &OwnVal{ReqID: d.u64(), Obj: d.obj(), TS: d.ots(), Epoch: d.epoch()}
	case KindOwnNack:
		m = &OwnNack{
			ReqID: d.u64(), Obj: d.obj(), Epoch: d.epoch(), From: d.node(),
			Reason: NackReason(d.u8()),
		}
	case KindOwnResp:
		m = &OwnResp{
			ReqID: d.u64(), Obj: d.obj(), TS: d.ots(), Epoch: d.epoch(),
			Driver: d.node(), Arbiters: d.bitmap(), NewReplicas: d.replicas(),
			Mode: ReqMode(d.u8()), HasData: d.boolean(), TVersion: d.u64(),
			Data: d.bytes(), CTS: d.u64(),
		}
	case KindCommitInv:
		m = &CommitInv{
			Tx: d.tx(), Epoch: d.epoch(), Followers: d.bitmap(),
			PrevVal: d.boolean(), Replay: d.boolean(), Updates: d.updates(),
			CTS: d.u64(),
		}
	case KindCommitAck:
		m = &CommitAck{Tx: d.tx(), Epoch: d.epoch(), From: d.node(), AppliedWM: d.u64()}
	case KindCommitVal:
		m = &CommitVal{Tx: d.tx(), Epoch: d.epoch()}
	case KindView:
		m = &View{Epoch: d.epoch(), Live: d.bitmap()}
	case KindRecoveryDone:
		m = &RecoveryDone{Epoch: d.epoch(), From: d.node()}
	case KindHermesInv:
		m = &HermesInv{Key: d.u64(), TS: d.ots(), Epoch: d.epoch(), From: d.node(), Val: d.bytes()}
	case KindHermesAck:
		m = &HermesAck{Key: d.u64(), TS: d.ots(), Epoch: d.epoch(), From: d.node()}
	case KindHermesVal:
		m = &HermesVal{Key: d.u64(), TS: d.ots(), Epoch: d.epoch()}
	case KindBReadReq:
		m = &BReadReq{ReqID: d.u64(), From: d.node(), Obj: d.obj()}
	case KindBReadResp:
		m = &BReadResp{ReqID: d.u64(), Obj: d.obj(), Ver: d.u64(), OK: d.boolean(), Data: d.bytes()}
	case KindBLock:
		m = &BLock{ReqID: d.u64(), From: d.node(), Items: d.bvers()}
	case KindBLockResp:
		m = &BLockResp{ReqID: d.u64(), From: d.node(), OK: d.boolean()}
	case KindBValidate:
		m = &BValidate{ReqID: d.u64(), From: d.node(), Items: d.bvers()}
	case KindBValidateResp:
		m = &BValidateResp{ReqID: d.u64(), From: d.node(), OK: d.boolean()}
	case KindBBackup:
		m = &BBackup{ReqID: d.u64(), From: d.node(), Updates: d.updates()}
	case KindBBackupAck:
		m = &BBackupAck{ReqID: d.u64(), From: d.node()}
	case KindBCommit:
		m = &BCommit{ReqID: d.u64(), From: d.node(), Updates: d.updates()}
	case KindBCommitAck:
		m = &BCommitAck{ReqID: d.u64(), From: d.node()}
	case KindBAbort:
		m = &BAbort{ReqID: d.u64(), From: d.node(), Objs: d.objsList()}
	case KindVSPropose:
		m = &VSPropose{Cmd: d.vscmd()}
	case KindVSAccept:
		m = &VSAccept{
			Ballot: d.u64(), Phase: d.u8(), Cmd: d.vscmd(), State: d.vsstate(),
			HasAcc: d.boolean(), AccBallot: d.u64(), AccCmd: d.vscmd(),
			AccState: d.vsstate(),
		}
	case KindVSCommit:
		m = &VSCommit{
			Ballot: d.u64(), Cmd: d.vscmd(), State: d.vsstate(),
			BarrierDone: d.boolean(), DoneEpoch: d.epoch(),
		}
	case KindVSLease:
		m = &VSLeaseMsg{Nodes: d.bitmap(), Heartbeat: d.boolean(), Ballot: d.u64()}
	case KindVSQuery:
		m = &VSQuery{Resp: d.boolean(), Ballot: d.u64(), State: d.vsstate()}
	case KindDirPull:
		m = &DirPull{Shards: d.shardList(), PlacementEpoch: d.epoch(), From: d.node()}
	case KindDirState:
		m = &DirState{
			Shard: d.u32(), PlacementEpoch: d.epoch(), From: d.node(),
			Entries: d.direntries(),
		}
	case KindSyncPull:
		m = &SyncPull{From: d.node(), Entries: d.syncentries()}
	case KindSyncState:
		m = &SyncState{From: d.node(), Entries: d.syncentries()}
	case KindSafeTime:
		m = &SafeTime{From: d.node(), Epoch: d.epoch(), WM: d.u64()}
	case KindObsPull:
		m = &ObsPull{From: d.node(), Full: d.boolean()}
	case KindObsState:
		m = &ObsState{
			From: d.node(), Epoch: d.epoch(), AppliedWM: d.u64(),
			SafeTime: d.u64(), Clock: d.u64(), Commits: d.u64(),
			Incidents: d.u64(), Metrics: d.bytes(),
		}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(k))
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}
