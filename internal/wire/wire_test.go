package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	if b.Count() != 0 {
		t.Fatalf("empty bitmap count = %d, want 0", b.Count())
	}
	b = b.Add(0).Add(3).Add(63)
	if !b.Contains(0) || !b.Contains(3) || !b.Contains(63) {
		t.Fatalf("bitmap missing inserted members: %v", b)
	}
	if b.Contains(1) || b.Contains(62) {
		t.Fatalf("bitmap contains members never added: %v", b)
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	b = b.Remove(3)
	if b.Contains(3) || b.Count() != 2 {
		t.Fatalf("remove failed: %v", b)
	}
	got := b.Nodes()
	want := []NodeID{0, 63}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
}

func TestBitmapOutOfRangeContains(t *testing.T) {
	b := BitmapOf(0, 1, 2)
	if b.Contains(MaxNodes) || b.Contains(NoNode) {
		t.Fatal("Contains must be false for out-of-range node ids")
	}
}

func TestBitmapSetAlgebra(t *testing.T) {
	a := BitmapOf(1, 2, 3)
	b := BitmapOf(3, 4)
	if got := a.Union(b); got != BitmapOf(1, 2, 3, 4) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b); got != BitmapOf(3) {
		t.Fatalf("intersect = %v", got)
	}
}

func TestOTSOrdering(t *testing.T) {
	cases := []struct {
		a, b OTS
		less bool
	}{
		{OTS{1, 0}, OTS{2, 0}, true},
		{OTS{2, 0}, OTS{1, 5}, false},
		{OTS{1, 1}, OTS{1, 2}, true},
		{OTS{1, 2}, OTS{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestOTSTotalOrderProperty(t *testing.T) {
	f := func(av, bv uint64, an, bn uint16) bool {
		a := OTS{Ver: av, Node: NodeID(an % MaxNodes)}
		b := OTS{Ver: bv, Node: NodeID(bn % MaxNodes)}
		// Exactly one of a<b, b<a, a==b holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetTransitions(t *testing.T) {
	r := ReplicaSet{Owner: NoNode}
	r = r.WithOwner(1)
	if r.Owner != 1 || r.Readers.Count() != 0 {
		t.Fatalf("after first owner: %v", r)
	}
	r = r.WithReader(2).WithReader(3)
	if r.LevelOf(2) != Reader || r.LevelOf(3) != Reader || r.LevelOf(1) != Owner {
		t.Fatalf("levels wrong: %v", r)
	}
	if r.LevelOf(9) != NonReplica {
		t.Fatalf("node 9 should be non-replica")
	}
	// Ownership transfer: old owner demotes to reader.
	r2 := r.WithOwner(2)
	if r2.Owner != 2 || !r2.Readers.Contains(1) || r2.Readers.Contains(2) {
		t.Fatalf("transfer wrong: %v", r2)
	}
	// Promoting the owner to reader is a no-op.
	r3 := r2.WithReader(2)
	if r3 != r2 {
		t.Fatalf("owner promoted to reader changed set: %v vs %v", r3, r2)
	}
	// All() includes everyone exactly once.
	if r2.All() != BitmapOf(1, 2, 3) {
		t.Fatalf("All() = %v", r2.All())
	}
}

func TestReplicaSetPrune(t *testing.T) {
	r := ReplicaSet{Owner: 2, Readers: BitmapOf(0, 1)}
	p := r.Prune(BitmapOf(0, 1))
	if p.Owner != NoNode || p.Readers != BitmapOf(0, 1) {
		t.Fatalf("prune dead owner: %v", p)
	}
	p2 := r.Prune(BitmapOf(1, 2))
	if p2.Owner != 2 || p2.Readers != BitmapOf(1) {
		t.Fatalf("prune dead reader: %v", p2)
	}
}

func TestReplicaSetWithOwnerSameOwner(t *testing.T) {
	r := ReplicaSet{Owner: 1, Readers: BitmapOf(2)}
	if got := r.WithOwner(1); got != r {
		t.Fatalf("re-owning by same node changed set: %v", got)
	}
}

// allMessages returns one populated instance of every message type.
func allMessages() []Msg {
	data := []byte("the quick brown fox")
	return []Msg{
		&OwnReq{ReqID: 7, Obj: 42, Requester: 3, Mode: AcquireOwner, Epoch: 2, Target: BitmapOf(1, 2), Shard: 13},
		&OwnInv{ReqID: 7, Obj: 42, TS: OTS{9, 1}, Epoch: 2, Requester: 3, Driver: 0,
			Mode: AcquireReader, NewReplicas: ReplicaSet{Owner: 3, Readers: BitmapOf(1)},
			PrevOwner: 1, Arbiters: BitmapOf(0, 1, 2), Recovery: true},
		&OwnAck{ReqID: 7, Obj: 42, TS: OTS{9, 1}, Epoch: 2, From: 1,
			Arbiters: BitmapOf(0, 1, 2), NewReplicas: ReplicaSet{Owner: 3, Readers: BitmapOf(1)},
			Mode: AcquireOwner, HasData: true, TVersion: 11, Data: data, CTS: 77},
		&OwnVal{ReqID: 7, Obj: 42, TS: OTS{9, 1}, Epoch: 2},
		&OwnNack{ReqID: 7, Obj: 42, Epoch: 2, From: 1, Reason: NackPendingCommit},
		&OwnResp{ReqID: 7, Obj: 42, TS: OTS{9, 1}, Epoch: 2, Driver: 0,
			Arbiters: BitmapOf(0, 1), NewReplicas: ReplicaSet{Owner: 3}, Mode: AcquireOwner,
			HasData: true, TVersion: 4, Data: data, CTS: 78},
		&CommitInv{Tx: TxID{Pipe: PipeID{Node: 2, Worker: 5}, Local: 99}, Epoch: 3,
			Followers: BitmapOf(0, 1), PrevVal: true, Replay: true,
			Updates: []Update{{Obj: 1, Version: 2, Data: data}, {Obj: 9, Version: 1, Data: nil}},
			CTS:     1234567},
		&CommitAck{Tx: TxID{Pipe: PipeID{Node: 2, Worker: 5}, Local: 99}, Epoch: 3, From: 1, AppliedWM: 1234566},
		&CommitVal{Tx: TxID{Pipe: PipeID{Node: 2, Worker: 5}, Local: 99}, Epoch: 3},
		&View{Epoch: 4, Live: BitmapOf(0, 1, 2, 4)},
		&RecoveryDone{Epoch: 4, From: 2},
		&HermesInv{Key: 77, TS: OTS{3, 2}, Epoch: 1, From: 2, Val: data},
		&HermesAck{Key: 77, TS: OTS{3, 2}, Epoch: 1, From: 0},
		&HermesVal{Key: 77, TS: OTS{3, 2}, Epoch: 1},
		&BReadReq{ReqID: 5, From: 2, Obj: 10},
		&BReadResp{ReqID: 5, Obj: 10, Ver: 3, OK: true, Data: data},
		&BLock{ReqID: 5, From: 2, Items: []BVer{{Obj: 1, Ver: 2}, {Obj: 3, Ver: 4}}},
		&BLockResp{ReqID: 5, From: 1, OK: true},
		&BValidate{ReqID: 5, From: 2, Items: []BVer{{Obj: 8, Ver: 0}}},
		&BValidateResp{ReqID: 5, From: 1, OK: false},
		&BBackup{ReqID: 5, From: 2, Updates: []Update{{Obj: 1, Version: 3, Data: data}}},
		&BBackupAck{ReqID: 5, From: 0},
		&BCommit{ReqID: 5, From: 2, Updates: []Update{{Obj: 1, Version: 3, Data: data}}},
		&BCommitAck{ReqID: 5, From: 0},
		&BAbort{ReqID: 5, From: 2, Objs: []ObjectID{1, 2, 3}},
		&VSPropose{Cmd: VSCommand{Op: VSJoin, Node: 3, Epoch: 0, Addr: "127.0.0.1:7003"}},
		&VSAccept{Ballot: 4, Phase: VSPhasePromise,
			Cmd:    VSCommand{Op: VSLeave, Node: 2},
			State:  VSState{Index: 9, Epoch: 5, Live: BitmapOf(0, 1), Barrier: BitmapOf(0), BarrierEpoch: 5},
			HasAcc: true, AccBallot: 3, AccCmd: VSCommand{Op: VSJoin, Node: 6},
			AccState: VSState{Index: 10, Epoch: 6, Live: BitmapOf(0, 1, 6)}},
		&VSCommit{Ballot: 4, Cmd: VSCommand{Op: VSRecoveryDone, Node: 1, Epoch: 5},
			State: VSState{Index: 11, Epoch: 5, Live: BitmapOf(0, 1),
				Placement: DirPlacement{Epoch: 5, Degree: 2, Shards: []Bitmap{BitmapOf(0, 1), BitmapOf(0, 1)}},
				Addrs:     []NodeAddr{{Node: 0, Addr: "10.0.0.1:7000"}, {Node: 1, Addr: "10.0.0.2:7000"}}},
			BarrierDone: true, DoneEpoch: 5},
		&VSLeaseMsg{Nodes: BitmapOf(2, 5), Heartbeat: true, Ballot: 7},
		&VSQuery{Resp: true, Ballot: 7, State: VSState{Index: 3, Epoch: 2, Live: BitmapOf(0, 1, 2),
			Placement: ComputePlacement(4, 3, 2, BitmapOf(0, 1, 2))}},
		&DirPull{Shards: []uint32{9, 11, 12}, PlacementEpoch: 3, From: 4},
		&DirState{Shard: 9, PlacementEpoch: 3, From: 2, Entries: []DirEntry{
			{Obj: 42, TS: OTS{9, 1}, Replicas: ReplicaSet{Owner: 3, Readers: BitmapOf(1, 2)}, Pending: true},
			{Obj: 43, TS: OTS{2, 0}, Replicas: ReplicaSet{Owner: NoNode}},
		}},
		&SyncPull{From: 2, Entries: []SyncEntry{
			{Obj: 42, Version: 9},
			{Obj: 43, Version: 0},
		}},
		&SyncState{From: 1, Entries: []SyncEntry{
			{Obj: 42, Version: 11, TS: OTS{9, 1},
				Replicas: ReplicaSet{Owner: 1, Readers: BitmapOf(0, 2)},
				HasData:  true, Data: data, CTS: 99},
			{Obj: 43, Version: 0, TS: OTS{2, 0}, Replicas: ReplicaSet{Owner: NoNode}},
		}},
		&SafeTime{From: 2, Epoch: 5, WM: 987654321},
		&ObsPull{From: 3, Full: true},
		&ObsState{From: 1, Epoch: 4, AppliedWM: 10, SafeTime: 9, Clock: 11,
			Commits: 5, Incidents: 1, Metrics: []byte("zeus_commits_total 5\n")},
	}
}

func TestMarshalRoundTripAllKinds(t *testing.T) {
	seen := map[Kind]bool{}
	for _, m := range allMessages() {
		seen[m.Kind()] = true
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(got)) {
			t.Fatalf("%T round trip mismatch:\n got %#v\nwant %#v", m, got, m)
		}
	}
	// Ensure the fixture covers every declared kind.
	for k := KindOwnReq; k < kindSentinel; k++ {
		if !seen[k] {
			t.Errorf("no round-trip fixture for kind %v", k)
		}
	}
}

// normalize maps nil and empty byte slices to a canonical form so that
// DeepEqual tolerates the codec returning nil for zero-length fields.
func normalize(m Msg) Msg {
	switch v := m.(type) {
	case *CommitInv:
		c := *v
		c.Updates = normUpdates(c.Updates)
		return &c
	case *BBackup:
		c := *v
		c.Updates = normUpdates(c.Updates)
		return &c
	case *BCommit:
		c := *v
		c.Updates = normUpdates(c.Updates)
		return &c
	}
	return m
}

func normUpdates(us []Update) []Update {
	out := make([]Update, len(us))
	for i, u := range us {
		if len(u.Data) == 0 {
			u.Data = nil
		}
		out[i] = u
	}
	return out
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer should fail")
	}
	if _, err := Unmarshal([]byte{0xEE}); err == nil {
		t.Fatal("unknown kind should fail")
	}
	// Truncations of every valid message must error, never panic.
	for _, m := range allMessages() {
		b := Marshal(m)
		for i := 1; i < len(b); i++ {
			if _, err := Unmarshal(b[:i]); err == nil {
				// Some prefixes can be self-consistent (e.g. a
				// shorter variable-length field); only require
				// no panic, but a full-length truncation that
				// cuts a fixed field must fail. Skip silently.
				_ = err
			}
		}
	}
}

func TestUnmarshalHugeLengthPrefix(t *testing.T) {
	// An OwnAck whose Data length claims 4 GiB must be rejected cleanly.
	m := &OwnAck{ReqID: 1, Obj: 2, HasData: true, Data: []byte{1, 2, 3}}
	b := Marshal(m)
	// The encoding ends [len u32][data 3][cts u64]; overwrite the length.
	copy(b[len(b)-15:len(b)-11], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Unmarshal(b[:len(b)-11]); err == nil {
		t.Fatal("huge length prefix must be rejected")
	}
}

func TestMarshalFuzzRoundTripCommitInv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(5)
		ups := make([]Update, n)
		for j := range ups {
			d := make([]byte, rng.Intn(64))
			rng.Read(d)
			var data []byte
			if len(d) > 0 {
				data = d
			}
			ups[j] = Update{Obj: ObjectID(rng.Uint64()), Version: rng.Uint64(), Data: data}
		}
		m := &CommitInv{
			Tx:        TxID{Pipe: PipeID{Node: NodeID(rng.Intn(MaxNodes)), Worker: Worker(rng.Intn(256))}, Local: rng.Uint64()},
			Epoch:     Epoch(rng.Uint32()),
			Followers: Bitmap(rng.Uint64()),
			PrevVal:   rng.Intn(2) == 0,
			Replay:    rng.Intn(2) == 0,
			Updates:   ups,
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		g := got.(*CommitInv)
		if g.Tx != m.Tx || g.Epoch != m.Epoch || g.Followers != m.Followers ||
			g.PrevVal != m.PrevVal || g.Replay != m.Replay || len(g.Updates) != len(m.Updates) {
			t.Fatalf("iter %d: header mismatch", i)
		}
		for j := range ups {
			if g.Updates[j].Obj != ups[j].Obj || g.Updates[j].Version != ups[j].Version ||
				!bytes.Equal(g.Updates[j].Data, ups[j].Data) {
				t.Fatalf("iter %d: update %d mismatch", i, j)
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k < kindSentinel; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	for _, s := range []fmt.Stringer{AccessLevel(9), ReqMode(9), NackReason(9)} {
		if s.String() == "" {
			t.Errorf("%T fallback string empty", s)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := []Msg{
		&CommitInv{Tx: TxID{Pipe: PipeID{Node: 1, Worker: 2}, Local: 7}, Epoch: 3,
			Updates: []Update{{Obj: 42, Version: 9, Data: []byte("payload")}}},
		&CommitAck{Tx: TxID{Local: 7}, Epoch: 3, From: 4},
		&CommitVal{Tx: TxID{Local: 7}, Epoch: 3},
	}
	var b []byte
	for _, m := range msgs {
		b = AppendMessage(b, m)
	}
	it := NewBatchIter(b)
	var got []Msg
	for {
		raw, err := it.Next()
		if err != nil {
			t.Fatalf("batch iter: %v", err)
		}
		if raw == nil {
			break
		}
		m, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("unmarshal batch element: %v", err)
		}
		got = append(got, m)
	}
	if len(got) != len(msgs) {
		t.Fatalf("round-tripped %d messages, want %d", len(got), len(msgs))
	}
	if inv, ok := got[0].(*CommitInv); !ok || string(inv.Updates[0].Data) != "payload" {
		t.Fatalf("first element corrupted: %#v", got[0])
	}
	if ack, ok := got[1].(*CommitAck); !ok || ack.From != 4 {
		t.Fatalf("second element corrupted: %#v", got[1])
	}
}

func TestBatchIterTruncated(t *testing.T) {
	b := AppendMessage(nil, &CommitVal{Tx: TxID{Local: 1}})
	// Truncated element body.
	it := NewBatchIter(b[:len(b)-2])
	if _, err := it.Next(); err == nil {
		t.Fatal("truncated element must error")
	}
	// Truncated length prefix.
	it = NewBatchIter(b[:2])
	if _, err := it.Next(); err == nil {
		t.Fatal("truncated length prefix must error")
	}
	// After an error the iterator is exhausted, not looping.
	if raw, err := it.Next(); raw != nil || err != nil {
		t.Fatalf("exhausted iterator returned (%v, %v)", raw, err)
	}
}

func TestAppendMarshalMatchesMarshal(t *testing.T) {
	m := &CommitInv{Tx: TxID{Pipe: PipeID{Node: 1}, Local: 5},
		Updates: []Update{{Obj: 1, Version: 2, Data: []byte("x")}}}
	prefix := []byte("prefix")
	out := AppendMarshal(append([]byte(nil), prefix...), m)
	if string(out[:len(prefix)]) != "prefix" {
		t.Fatal("AppendMarshal clobbered the prefix")
	}
	if string(out[len(prefix):]) != string(Marshal(m)) {
		t.Fatal("AppendMarshal and Marshal disagree")
	}
}

func TestBufPoolRecycles(t *testing.T) {
	b := GetBuf()
	if len(b.B) != 0 {
		t.Fatalf("fresh buf has len %d", len(b.B))
	}
	b.B = AppendMarshal(b.B, &CommitVal{Tx: TxID{Local: 9}})
	PutBuf(b)
	b2 := GetBuf()
	if len(b2.B) != 0 {
		t.Fatal("pooled buf not reset")
	}
	PutBuf(b2)
	// Oversized buffers are dropped, not pooled.
	big := &Buf{B: make([]byte, 1<<17)}
	PutBuf(big) // must not panic or pin
}
