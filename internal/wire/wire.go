// Package wire defines the identifiers, timestamps and protocol messages
// exchanged by Zeus nodes, together with a compact binary codec.
//
// Everything that crosses a node boundary in this repository — the ownership
// protocol (§4 of the paper), the reliable commit protocol (§5), membership
// views, the Hermes-lite KV used by the load balancer, and the distributed
// commit baseline — is expressed as a wire.Msg and serialized with
// wire.Marshal / wire.Unmarshal.
package wire

import "fmt"

// NodeID identifies a Zeus node (server). The paper uses the terms node and
// server interchangeably; so does this codebase.
type NodeID uint16

// NoNode is the sentinel "no such node" value (e.g. an object with no owner).
const NoNode NodeID = 0xFFFF

// MaxNodes bounds deployment size so that node sets fit in a Bitmap.
const MaxNodes = 64

// ObjectID names an object in the store. Applications map their keys onto
// ObjectIDs (the benchmarks use dense ranges; the apps hash).
type ObjectID uint64

// Epoch is the monotonically increasing membership epoch id (e_id). Every
// ownership and reliable-commit message carries the sender's epoch, and
// receivers ignore messages from other epochs (§3.1, §4.1, §5.1).
type Epoch uint32

// Worker identifies an application/datastore worker thread within a node.
// Reliable-commit pipelines are per (node, worker) pairs (§5.2, §7).
type Worker uint8

// Bitmap is a set of NodeIDs (bit i set ⇒ node i in the set).
type Bitmap uint64

// Add returns b with node n added.
func (b Bitmap) Add(n NodeID) Bitmap { return b | 1<<uint(n) }

// Remove returns b with node n removed.
func (b Bitmap) Remove(n NodeID) Bitmap { return b &^ (1 << uint(n)) }

// Contains reports whether node n is in the set.
func (b Bitmap) Contains(n NodeID) bool {
	return n < MaxNodes && b&(1<<uint(n)) != 0
}

// Count returns the number of nodes in the set.
func (b Bitmap) Count() int {
	c := 0
	for v := uint64(b); v != 0; v &= v - 1 {
		c++
	}
	return c
}

// Union returns the union of both sets.
func (b Bitmap) Union(o Bitmap) Bitmap { return b | o }

// Intersect returns the intersection of both sets.
func (b Bitmap) Intersect(o Bitmap) Bitmap { return b & o }

// Nodes returns the members in ascending order.
func (b Bitmap) Nodes() []NodeID {
	out := make([]NodeID, 0, b.Count())
	for i := NodeID(0); i < MaxNodes; i++ {
		if b.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// BitmapOf builds a Bitmap from the given nodes.
func BitmapOf(nodes ...NodeID) Bitmap {
	var b Bitmap
	for _, n := range nodes {
		b = b.Add(n)
	}
	return b
}

func (b Bitmap) String() string { return fmt.Sprintf("%v", b.Nodes()) }

// OTS is the ownership timestamp o_ts = ⟨obj_ver, node_id⟩ (§4). Timestamps
// are compared lexicographically; the node id breaks ties so concurrent
// drivers always produce totally ordered, per-object-unique timestamps.
type OTS struct {
	Ver  uint64
	Node NodeID
}

// Less reports whether o orders strictly before x (lexicographic compare).
func (o OTS) Less(x OTS) bool {
	if o.Ver != x.Ver {
		return o.Ver < x.Ver
	}
	return o.Node < x.Node
}

// Equal reports whether both timestamps are identical.
func (o OTS) Equal(x OTS) bool { return o == x }

func (o OTS) String() string { return fmt.Sprintf("⟨%d,%d⟩", o.Ver, o.Node) }

// PipeID names a reliable-commit pipeline: one per (node, worker) pair and
// per coordinator incarnation. A node that crashed and rejoined restarts its
// slot numbering at 1, and without the incarnation stamp a follower's pipe
// state from the previous life (watermark, done set) would misread the fresh
// slots as duplicates — acknowledging them without applying, which silently
// loses the write. Distinct incarnations are distinct pipes. Incar is the
// storage driver's durable per-process incarnation counter on durable nodes
// (it advances on every restart, even one that beats the failure detector so
// the view epoch never bumps); memory-only nodes fall back to the view epoch
// at pipe creation, which is safe because their rejoin always bumps it.
type PipeID struct {
	Node   NodeID
	Worker Worker
	Incar  Epoch
}

func (p PipeID) String() string { return fmt.Sprintf("n%d/w%d@%d", p.Node, p.Worker, p.Incar) }

// TxID is tx_id = ⟨local_tx_id, node_id⟩ extended with the worker so that
// pipelines are per-thread as in §7. Local is monotonically increasing within
// its pipe and orders causally-related reliable commits (§5.2).
type TxID struct {
	Pipe  PipeID
	Local uint64
}

func (t TxID) String() string { return fmt.Sprintf("%s#%d", t.Pipe, t.Local) }

// AccessLevel is a node's ownership level for an object (Table 1).
type AccessLevel uint8

const (
	// NonReplica nodes hold neither data nor access rights for the object.
	NonReplica AccessLevel = iota
	// Reader nodes hold a replica with read access; they may serve local
	// read-only transactions (§5.3) but never write transactions.
	Reader
	// Owner is the unique node with exclusive write (and read) access.
	Owner
)

func (a AccessLevel) String() string {
	switch a {
	case NonReplica:
		return "non-replica"
	case Reader:
		return "reader"
	case Owner:
		return "owner"
	default:
		return fmt.Sprintf("AccessLevel(%d)", uint8(a))
	}
}

// ReplicaSet is o_replicas: the owner plus the reader set of an object.
// Readers never contains the owner.
type ReplicaSet struct {
	Owner   NodeID
	Readers Bitmap
}

// All returns every node storing a replica (owner + readers).
func (r ReplicaSet) All() Bitmap {
	b := r.Readers
	if r.Owner != NoNode {
		b = b.Add(r.Owner)
	}
	return b
}

// LevelOf returns node n's access level under this replica set.
func (r ReplicaSet) LevelOf(n NodeID) AccessLevel {
	switch {
	case n == r.Owner:
		return Owner
	case r.Readers.Contains(n):
		return Reader
	default:
		return NonReplica
	}
}

// WithOwner returns a copy where n is the owner; the previous owner (if any,
// and if distinct) is demoted to reader so it keeps its replica.
func (r ReplicaSet) WithOwner(n NodeID) ReplicaSet {
	out := r
	if out.Owner != NoNode && out.Owner != n {
		out.Readers = out.Readers.Add(out.Owner)
	}
	out.Owner = n
	out.Readers = out.Readers.Remove(n)
	return out
}

// WithReader returns a copy where n is (additionally) a reader. Promoting the
// current owner is a no-op.
func (r ReplicaSet) WithReader(n NodeID) ReplicaSet {
	out := r
	if n != out.Owner {
		out.Readers = out.Readers.Add(n)
	}
	return out
}

// WithoutReader returns a copy with reader n dropped.
func (r ReplicaSet) WithoutReader(n NodeID) ReplicaSet {
	out := r
	out.Readers = out.Readers.Remove(n)
	return out
}

// Prune removes every replica that is not in live; a dead owner becomes
// NoNode (the next write transaction's requester takes over, §4.1).
func (r ReplicaSet) Prune(live Bitmap) ReplicaSet {
	out := r
	out.Readers = out.Readers.Intersect(live)
	if out.Owner != NoNode && !live.Contains(out.Owner) {
		out.Owner = NoNode
	}
	return out
}

func (r ReplicaSet) String() string {
	return fmt.Sprintf("{owner:%d readers:%s}", r.Owner, r.Readers)
}

// Update is one modified object carried by an R-INV message: the new
// t_version and t_data produced by a locally-committed write transaction.
type Update struct {
	Obj     ObjectID
	Version uint64
	Data    []byte
}

// ReqMode distinguishes the sharding request types carried by OwnReq (§6.2).
type ReqMode uint8

const (
	// AcquireOwner asks for exclusive write access (and the data if the
	// requester is a non-replica).
	AcquireOwner ReqMode = iota
	// AcquireReader asks for read access and the data (adds a replica).
	AcquireReader
	// DropReader removes a reader to restore the replication degree,
	// invoked out of the critical path after ownership grew the set.
	DropReader
	// CreateObject registers a fresh object with the directory: the
	// requester becomes owner and the given readers become replicas.
	CreateObject
	// DeleteObject unregisters an object deployment-wide.
	DeleteObject
)

func (m ReqMode) String() string {
	switch m {
	case AcquireOwner:
		return "acquire-owner"
	case AcquireReader:
		return "acquire-reader"
	case DropReader:
		return "drop-reader"
	case CreateObject:
		return "create"
	case DeleteObject:
		return "delete"
	default:
		return fmt.Sprintf("ReqMode(%d)", uint8(m))
	}
}

// NackReason explains a rejected ownership request.
type NackReason uint8

const (
	// NackLostArbitration: a concurrent request with a larger o_ts won.
	NackLostArbitration NackReason = iota
	// NackPendingCommit: the owner has pending reliable commits involving
	// the object (§4.1); retry after they drain.
	NackPendingCommit
	// NackWrongEpoch: the request was issued in a stale epoch.
	NackWrongEpoch
	// NackUnknownObject: the directory has no entry for the object.
	NackUnknownObject
	// NackRecovering: ownership requests are paused during recovery (§5.1).
	NackRecovering
	// NackNotDriver: the REQ reached a node that does not drive the
	// object's directory shard (stale or mismatched placement, §6.2); the
	// requester re-resolves the placement and retries.
	NackNotDriver
)

func (r NackReason) String() string {
	switch r {
	case NackLostArbitration:
		return "lost-arbitration"
	case NackPendingCommit:
		return "pending-commit"
	case NackWrongEpoch:
		return "wrong-epoch"
	case NackUnknownObject:
		return "unknown-object"
	case NackRecovering:
		return "recovering"
	case NackNotDriver:
		return "not-driver"
	default:
		return fmt.Sprintf("NackReason(%d)", uint8(r))
	}
}
