package wire

// DirPlacement is the sharded ownership directory's placement map (§6.2):
// the directory is hash-partitioned into shards, and each shard is driven by
// a small set of arbitration drivers (the paper replicates the directory
// three ways). The map is part of the replicated view-service state
// (wire.VSState), so every node resolves object → shard → drivers from the
// same quorum-committed placement, and a crashed driver's shards are
// re-driven only after its lease expired — placement epochs ride the
// membership epoch/ballot machinery instead of needing their own consensus.
//
// Driver sets are chosen by rendezvous (highest-random-weight) hashing over
// the live set, which gives the two properties the directory needs without
// storing any history: placement is a pure function of ⟨shard count, degree,
// live set⟩, and it is stable — a view change only moves the shards whose
// driver set actually lost (or, on scale-out, gains) a member.
type DirPlacement struct {
	// Epoch is the placement version: the membership epoch this placement
	// was derived from.
	Epoch Epoch
	// Degree is the target driver count per shard (clamped to the live set).
	Degree uint8
	// Shards maps shard index → driver set.
	Shards []Bitmap
}

// placeMix is a SplitMix64-style finalizer used for both object→shard
// hashing and the rendezvous weights (kept local so the wire package stays
// dependency-free).
func placeMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousDrivers picks the degree highest-weight live nodes for a shard.
func rendezvousDrivers(shard uint64, degree int, nodes []NodeID) Bitmap {
	var out Bitmap
	for picked := 0; picked < degree && picked < len(nodes); picked++ {
		best, bestW := NoNode, uint64(0)
		for _, n := range nodes {
			if out.Contains(n) {
				continue
			}
			w := placeMix(shard*0x9E3779B97F4A7C15 ^ uint64(n)*0xD6E8FEB86659FD93)
			if best == NoNode || w > bestW {
				best, bestW = n, w
			}
		}
		if best == NoNode {
			break
		}
		out = out.Add(best)
	}
	return out
}

// MaxDirShards caps the directory shard count: far above any useful scale
// (shards beyond the core count buy nothing) and safely inside the codec's
// u16 shard-count field.
const MaxDirShards = 4096

// ComputePlacement builds a fresh placement: shards hash partitions, each
// driven by (up to) degree nodes rendezvous-hashed from live. The shard
// count is clamped to [1, MaxDirShards].
func ComputePlacement(shards, degree int, epoch Epoch, live Bitmap) DirPlacement {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxDirShards {
		shards = MaxDirShards
	}
	if degree < 1 {
		degree = 3
	}
	p := DirPlacement{Epoch: epoch, Degree: uint8(degree), Shards: make([]Bitmap, shards)}
	nodes := live.Nodes()
	for s := range p.Shards {
		p.Shards[s] = rendezvousDrivers(uint64(s), degree, nodes)
	}
	return p
}

// Recompute derives the placement for a new live set, preserving the shard
// count and degree. Rendezvous hashing guarantees only shards whose driver
// set actually changed membership get a different driver set.
func (p DirPlacement) Recompute(epoch Epoch, live Bitmap) DirPlacement {
	shards, degree := len(p.Shards), int(p.Degree)
	if shards == 0 {
		shards = 1
	}
	if degree == 0 {
		degree = 3
	}
	return ComputePlacement(shards, degree, epoch, live)
}

// IsZero reports whether the placement is unset (no shards).
func (p DirPlacement) IsZero() bool { return len(p.Shards) == 0 }

// ShardOf maps an object to its directory shard.
func (p DirPlacement) ShardOf(obj ObjectID) int {
	if len(p.Shards) == 0 {
		return 0
	}
	return int(placeMix(uint64(obj)) % uint64(len(p.Shards)))
}

// DriversFor returns the driver set of obj's shard.
func (p DirPlacement) DriversFor(obj ObjectID) Bitmap {
	if len(p.Shards) == 0 {
		return 0
	}
	return p.Shards[p.ShardOf(obj)]
}

// Drives reports whether n drives obj's shard.
func (p DirPlacement) Drives(n NodeID, obj ObjectID) bool {
	return p.DriversFor(obj).Contains(n)
}
