package wire

import (
	"encoding/binary"
	"sync"
)

// Batch encoding: a batch payload is a sequence of length-prefixed messages,
//
//	[len:u32][Marshal(msg)] [len:u32][Marshal(msg)] ...
//
// with no count header — readers iterate until the payload is exhausted. The
// transport layer wraps one batch payload in a single reliable frame, so a
// whole batch is acknowledged, retransmitted and delivered as a unit,
// preserving per-peer FIFO order across loss (§3.1).

// AppendMessage appends one length-prefixed message to a batch payload.
func AppendMessage(dst []byte, m Msg) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendMarshal(dst, m)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

// BatchIter walks the raw message encodings of a batch payload.
type BatchIter struct {
	p   []byte
	off int
}

// NewBatchIter returns an iterator over the batch payload p.
func NewBatchIter(p []byte) BatchIter { return BatchIter{p: p} }

// Next returns the next raw message encoding, or (nil, nil) at the end. A
// truncated length prefix or element yields ErrShortBuffer; the iterator is
// then exhausted.
func (it *BatchIter) Next() ([]byte, error) {
	if it.off >= len(it.p) {
		return nil, nil
	}
	if it.off+4 > len(it.p) {
		it.off = len(it.p)
		return nil, ErrShortBuffer
	}
	n := binary.LittleEndian.Uint32(it.p[it.off:])
	it.off += 4
	if n > maxBlob || it.off+int(n) > len(it.p) {
		it.off = len(it.p)
		if n > maxBlob {
			return nil, ErrTooLarge
		}
		return nil, ErrShortBuffer
	}
	raw := it.p[it.off : it.off+int(n)]
	it.off += int(n)
	return raw, nil
}

// Buf is a pooled encode buffer. Use B[:0] as the append target and store the
// result back into B before releasing, so the pool retains grown capacity.
type Buf struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 512)} }}

// GetBuf returns a pooled encode buffer with len(B) == 0.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped so one huge message cannot pin memory in the pool.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > 1<<16 {
		return
	}
	bufPool.Put(b)
}
