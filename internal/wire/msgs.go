package wire

import "fmt"

// Kind discriminates message types on the wire.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Ownership protocol (§4).
	KindOwnReq  // requester → driver (a directory node)
	KindOwnInv  // driver → remaining arbiters
	KindOwnAck  // arbiter → requester (or → driver during recovery)
	KindOwnVal  // requester (or recovery driver) → arbiters
	KindOwnNack // arbiter/driver → requester
	KindOwnResp // recovery driver → live requester (confirms arbitration win)

	// Reliable commit protocol (§5).
	KindCommitInv // coordinator → followers (R-INV)
	KindCommitAck // follower → coordinator (R-ACK)
	KindCommitVal // coordinator → followers (R-VAL)

	// Membership.
	KindView         // manager → nodes: new membership view
	KindRecoveryDone // node → manager: finished replaying pending commits

	// Hermes-lite replicated KV (load balancer substrate).
	KindHermesInv
	KindHermesAck
	KindHermesVal

	// Distributed-commit baseline (FaRM/FaSST-style OCC + 2PC).
	KindBReadReq
	KindBReadResp
	KindBLock
	KindBLockResp
	KindBValidate
	KindBValidateResp
	KindBBackup
	KindBBackupAck
	KindBCommit
	KindBCommitAck
	KindBAbort

	kindSentinel // keep last
)

func (k Kind) String() string {
	names := [...]string{
		"invalid", "own-req", "own-inv", "own-ack", "own-val", "own-nack",
		"own-resp", "r-inv", "r-ack", "r-val", "view", "recovery-done",
		"h-inv", "h-ack", "h-val", "b-read-req", "b-read-resp", "b-lock",
		"b-lock-resp", "b-validate", "b-validate-resp", "b-backup",
		"b-backup-ack", "b-commit", "b-commit-ack", "b-abort",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Msg is any protocol message. Concrete messages are plain structs; Kind
// identifies them for dispatch and serialization.
type Msg interface {
	Kind() Kind
}

// ---------------------------------------------------------------------------
// Ownership protocol messages (§4.1, Figure 3).
// ---------------------------------------------------------------------------

// OwnReq starts an ownership request. The requester picks a locally unique
// ReqID (to match the responses), sets its local o_state = Request, and sends
// the REQ to an arbitrarily chosen directory node, which becomes the driver.
type OwnReq struct {
	ReqID     uint64
	Obj       ObjectID
	Requester NodeID
	Mode      ReqMode
	Epoch     Epoch
	// Target is the reader to drop (DropReader) or the initial reader set
	// encoded as a bitmap (CreateObject).
	Target Bitmap
}

func (*OwnReq) Kind() Kind { return KindOwnReq }

// OwnInv is the invalidation the driver broadcasts to the remaining arbiters
// (the other directory nodes and the current owner). It carries the request
// id and the full ownership metadata so that any arbiter can later replay the
// arbitration phase idempotently (arb-replay, §4.1).
type OwnInv struct {
	ReqID     uint64
	Obj       ObjectID
	TS        OTS
	Epoch     Epoch
	Requester NodeID
	Driver    NodeID
	Mode      ReqMode
	// NewReplicas is the replica set after the request applies.
	NewReplicas ReplicaSet
	// PrevOwner is the owner before the request (it must contribute data).
	PrevOwner NodeID
	// Arbiters is the full arbiter set for this request.
	Arbiters Bitmap
	// Recovery marks an arb-replay: ACKs must flow to the driver, not the
	// requester (bottom of Figure 3).
	Recovery bool
}

func (*OwnInv) Kind() Kind { return KindOwnInv }

// OwnAck is an arbiter's acknowledgement, sent directly to the requester in
// the failure-free case (latency optimization, §4.1) or to the recovery
// driver during arb-replay. The previous owner piggybacks the object data
// when the requester holds no replica.
type OwnAck struct {
	ReqID       uint64
	Obj         ObjectID
	TS          OTS
	Epoch       Epoch
	From        NodeID
	Arbiters    Bitmap
	NewReplicas ReplicaSet
	Mode        ReqMode
	HasData     bool
	TVersion    uint64
	Data        []byte
}

func (*OwnAck) Kind() Kind { return KindOwnAck }

// OwnVal finalizes a request: the requester (who must apply first) validates
// all arbiters.
type OwnVal struct {
	ReqID uint64
	Obj   ObjectID
	TS    OTS
	Epoch Epoch
}

func (*OwnVal) Kind() Kind { return KindOwnVal }

// OwnNack rejects a request (lost arbitration, pending reliable commits on
// the object, stale epoch, ...). The requester aborts or retries with
// exponential back-off (§6.2).
type OwnNack struct {
	ReqID  uint64
	Obj    ObjectID
	Epoch  Epoch
	From   NodeID
	Reason NackReason
}

func (*OwnNack) Kind() Kind { return KindOwnNack }

// OwnResp confirms the arbitration win to a live requester during recovery so
// that, as in the failure-free case, the requester applies the request before
// any arbiter (§4.1).
type OwnResp struct {
	ReqID       uint64
	Obj         ObjectID
	TS          OTS
	Epoch       Epoch
	Driver      NodeID
	Arbiters    Bitmap
	NewReplicas ReplicaSet
	Mode        ReqMode
	HasData     bool
	TVersion    uint64
	Data        []byte
}

func (*OwnResp) Kind() Kind { return KindOwnResp }

// ---------------------------------------------------------------------------
// Reliable commit messages (§5.1, Figure 4).
// ---------------------------------------------------------------------------

// CommitInv is R-INV: the idempotent invalidation broadcast by the
// coordinator at the start of the reliable commit. It contains everything a
// follower needs to finish the transaction after a fault.
type CommitInv struct {
	Tx        TxID
	Epoch     Epoch
	Followers Bitmap
	// PrevVal tells a follower that was not a follower of the previous
	// pipeline slot that the previous slot has already been validated, so
	// this R-INV may be applied (§5.2).
	PrevVal bool
	// Replay marks a replayed R-INV after a coordinator failure.
	Replay  bool
	Updates []Update
}

func (*CommitInv) Kind() Kind { return KindCommitInv }

// CommitAck is R-ACK. Because pipelines are FIFO, acknowledging tx_id implies
// the successful reception and processing of all previous slots in the pipe.
type CommitAck struct {
	Tx    TxID
	Epoch Epoch
	From  NodeID
}

func (*CommitAck) Kind() Kind { return KindCommitAck }

// CommitVal is R-VAL: followers flip the updated objects back to Valid iff
// their t_version has not been increased since, then discard the stored
// R-INV.
type CommitVal struct {
	Tx    TxID
	Epoch Epoch
}

func (*CommitVal) Kind() Kind { return KindCommitVal }

// ---------------------------------------------------------------------------
// Membership messages.
// ---------------------------------------------------------------------------

// View announces a membership view: the set of live nodes tagged with a
// monotonically increasing epoch id, published only after all leases of
// departed nodes have expired (§3.1).
type View struct {
	Epoch Epoch
	Live  Bitmap
}

func (*View) Kind() Kind { return KindView }

// RecoveryDone tells the membership manager that the sender has no more
// pending reliable commits from dead coordinators; once every live node has
// reported, the ownership protocol resumes (§5.1).
type RecoveryDone struct {
	Epoch Epoch
	From  NodeID
}

func (*RecoveryDone) Kind() Kind { return KindRecoveryDone }

// ---------------------------------------------------------------------------
// Hermes-lite messages (load-balancer KV, §3.1).
// ---------------------------------------------------------------------------

// HermesInv invalidates a key at all replicas with its new value.
type HermesInv struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
	From  NodeID
	Val   []byte
}

func (*HermesInv) Kind() Kind { return KindHermesInv }

// HermesAck acknowledges an invalidation.
type HermesAck struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
	From  NodeID
}

func (*HermesAck) Kind() Kind { return KindHermesAck }

// HermesVal validates a key once every replica acked the invalidation.
type HermesVal struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
}

func (*HermesVal) Kind() Kind { return KindHermesVal }

// ---------------------------------------------------------------------------
// Distributed-commit baseline messages (FaRM/FaSST-style, §6.1).
// ---------------------------------------------------------------------------

// BVer pairs an object with a version for validation.
type BVer struct {
	Obj ObjectID
	Ver uint64
}

// BReadReq fetches an object from its primary (remote access).
type BReadReq struct {
	ReqID uint64
	From  NodeID
	Obj   ObjectID
}

func (*BReadReq) Kind() Kind { return KindBReadReq }

// BReadResp returns the object value and version (OK=false: locked/missing).
type BReadResp struct {
	ReqID uint64
	Obj   ObjectID
	Ver   uint64
	OK    bool
	Data  []byte
}

func (*BReadResp) Kind() Kind { return KindBReadResp }

// BLock locks the write set entries homed at the receiving primary, checking
// that versions still match the coordinator's reads (phase LOCK).
type BLock struct {
	ReqID uint64
	From  NodeID
	Items []BVer
}

func (*BLock) Kind() Kind { return KindBLock }

// BLockResp reports lock acquisition success.
type BLockResp struct {
	ReqID uint64
	From  NodeID
	OK    bool
}

func (*BLockResp) Kind() Kind { return KindBLockResp }

// BValidate re-checks read-set versions at the primary (phase VALIDATE).
type BValidate struct {
	ReqID uint64
	From  NodeID
	Items []BVer
}

func (*BValidate) Kind() Kind { return KindBValidate }

// BValidateResp reports read validation success.
type BValidateResp struct {
	ReqID uint64
	From  NodeID
	OK    bool
}

func (*BValidateResp) Kind() Kind { return KindBValidateResp }

// BBackup ships new values to backup replicas (phase UPDATE-BACKUP).
type BBackup struct {
	ReqID   uint64
	From    NodeID
	Updates []Update
}

func (*BBackup) Kind() Kind { return KindBBackup }

// BBackupAck acknowledges durable receipt at a backup.
type BBackupAck struct {
	ReqID uint64
	From  NodeID
}

func (*BBackupAck) Kind() Kind { return KindBBackupAck }

// BCommit applies new values at the primary and releases locks
// (phase UPDATE-PRIMARY).
type BCommit struct {
	ReqID   uint64
	From    NodeID
	Updates []Update
}

func (*BCommit) Kind() Kind { return KindBCommit }

// BCommitAck acknowledges primary application.
type BCommitAck struct {
	ReqID uint64
	From  NodeID
}

func (*BCommitAck) Kind() Kind { return KindBCommitAck }

// BAbort releases locks held by an aborted transaction at the primary.
type BAbort struct {
	ReqID uint64
	From  NodeID
	Objs  []ObjectID
}

func (*BAbort) Kind() Kind { return KindBAbort }
